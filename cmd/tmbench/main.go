// Command tmbench regenerates every table and figure of the paper's
// evaluation section on the synthetic scenarios and prints them as text.
//
// Usage:
//
//	tmbench                 # run everything (takes a few minutes)
//	tmbench -only fig13     # a single experiment
//	tmbench -seed 7         # different synthetic universe
//	tmbench -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment by ID (e.g. fig13, table2)")
	seed := flag.Int64("seed", 1, "scenario seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, d := range experiments.AllDrivers() {
			fmt.Printf("%-8s %s\n", d.ID, d.Title)
		}
		return
	}
	suite, err := experiments.NewSuite(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmbench: %v\n", err)
		os.Exit(1)
	}
	drivers := experiments.AllDrivers()
	if *only != "" {
		d, ok := experiments.DriverByID(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "tmbench: unknown experiment %q (use -list)\n", *only)
			os.Exit(2)
		}
		drivers = []experiments.Driver{d}
	}
	for _, d := range drivers {
		t0 := time.Now()
		rep, err := d.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmbench: %s: %v\n", d.ID, err)
			os.Exit(1)
		}
		if err := rep.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tmbench: render %s: %v\n", d.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %.1fs)\n\n", d.ID, time.Since(t0).Seconds())
	}
}
