// Command tmbench regenerates every table and figure of the paper's
// evaluation section on the synthetic scenarios and prints them as text.
// Experiments run concurrently on a bounded worker pool; reports are
// always printed in paper order, so the report content is identical at
// any parallelism level (with -quiet, which drops the wall-clock timing
// lines, the whole output is byte-identical).
//
// -timeout and Ctrl-C cancel between drivers and between sweep
// iterations inside the expensive drivers; an individual solver call
// that is already running finishes before the abort takes effect.
//
// Usage:
//
//	tmbench                 # run everything on all cores
//	tmbench -parallel 1     # fully serial (same reports)
//	tmbench -run fig13      # a single experiment
//	tmbench -run fig10,fig11,table2
//	tmbench -run scale      # scenario lab: 100-PoP scale-out evaluation
//	tmbench -timeout 2m     # stop scheduling work after 2m
//	tmbench -seed 7         # different synthetic universe
//	tmbench -list           # list experiment IDs
//
// The scenario-lab drivers (-list marks everything after the extensions)
// run only when selected explicitly: their reports include wall-clock
// runtimes, so they are excluded from the byte-stable default suite.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "tmbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tmbench", flag.ExitOnError)
	runIDs := fs.String("run", "", "comma-separated experiment IDs to run (e.g. fig13,table2); empty = all")
	only := fs.String("only", "", "run a single experiment by ID (deprecated alias of -run)")
	seed := fs.Int64("seed", 1, "scenario seed")
	parallel := fs.Int("parallel", 0, "worker pool size; 0 = GOMAXPROCS, 1 = serial")
	timeout := fs.Duration("timeout", 0, "stop scheduling work after this long (in-flight solver calls finish); 0 = no timeout")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	quiet := fs.Bool("quiet", false, "suppress per-experiment timing lines (byte-stable output)")
	fs.Parse(args)

	if *list {
		for _, d := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", d.ID, d.Title)
		}
		return nil
	}
	drivers, err := selectDrivers(*runIDs, *only)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	// Once cancelled, restore default signal handling so a second
	// Ctrl-C kills the process even if a driver is mid-solve.
	context.AfterFunc(ctx, stop)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	suite, err := experiments.NewSuiteWithPool(*seed, runner.NewPool(*parallel))
	if err != nil {
		return err
	}
	t0 := time.Now()
	results, err := experiments.RunAll(ctx, suite, drivers, func(res experiments.RunResult) error {
		if res.Err != nil {
			return fmt.Errorf("%s: %w", res.ID, res.Err)
		}
		if err := res.Value.Render(os.Stdout); err != nil {
			return fmt.Errorf("render %s: %w", res.ID, err)
		}
		if !*quiet {
			fmt.Printf("(%s took %.1fs)\n\n", res.ID, res.Duration.Seconds())
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Printf("ran %d experiments in %.1fs (parallel=%d)\n",
			len(results), time.Since(t0).Seconds(), suite.Pool().Workers())
	}
	return nil
}

// selectDrivers resolves the -run/-only selection against the registry,
// preserving the order the IDs were given in.
func selectDrivers(runIDs, only string) ([]experiments.Driver, error) {
	sel := runIDs
	if sel == "" {
		sel = only
	}
	if sel == "" {
		return experiments.AllDrivers(), nil
	}
	var out []experiments.Driver
	for _, id := range strings.Split(sel, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		d, ok := experiments.DriverByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	return out, nil
}
