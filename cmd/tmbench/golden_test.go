package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./cmd/tmbench -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden report files")

// goldenIDs are the experiments pinned byte-for-byte. They cover the two
// report flavors — a table (table1, Vardi) and a sweep row set (fig10,
// fanout windows) — and both regions, so a change to routing, traffic
// generation, solver numerics or report formatting shows up as a golden
// diff that -update makes reviewable.
var goldenIDs = []string{"table1", "fig10"}

func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("golden drivers run full solves; skipped in -short mode")
	}
	// Pool size must not affect report bytes; use the machine default so
	// this test also exercises the determinism guarantee.
	suite, err := experiments.NewSuiteWithPool(1, runner.NewPool(0))
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			d, ok := experiments.DriverByID(id)
			if !ok {
				t.Fatalf("unknown driver %s", id)
			}
			rep, err := d.RunOn(context.Background(), suite)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			var buf bytes.Buffer
			if err := rep.Render(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from golden.\n--- got ---\n%s--- want ---\n%s", id, buf.Bytes(), want)
			}
		})
	}
}
