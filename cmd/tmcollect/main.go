// Command tmcollect runs the simulated SNMP collection pipeline end to end
// on the loopback interface: router agents serve per-LSP byte counters over
// UDP, distributed pollers collect them at accelerated 5-minute intervals
// with rate adjustment, and a central store ingests the rates over TCP. The
// collected traffic matrix is then compared against the generating ground
// truth.
//
// Usage:
//
//	tmcollect -region europe -cycles 8 -pollers 3 -drop 0.02
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/collector"
	"repro/internal/netsim"
)

func main() {
	region := flag.String("region", "europe", "europe or america")
	seed := flag.Int64("seed", 1, "scenario seed")
	cycles := flag.Int("cycles", 8, "polling rounds to run")
	pollers := flag.Int("pollers", 3, "distributed pollers")
	drop := flag.Float64("drop", 0.02, "per-datagram UDP loss probability")
	speed := flag.Float64("speed", 0.1, "simulated minutes per wall millisecond")
	flag.Parse()

	if err := run(*region, *seed, *cycles, *pollers, *drop, *speed); err != nil {
		fmt.Fprintf(os.Stderr, "tmcollect: %v\n", err)
		os.Exit(1)
	}
}

func run(region string, seed int64, cycles, pollers int, drop, speed float64) error {
	var (
		sc  *netsim.Scenario
		err error
	)
	switch region {
	case "europe":
		sc, err = netsim.BuildEurope(seed)
	case "america":
		sc, err = netsim.BuildAmerica(seed)
	default:
		return fmt.Errorf("unknown region %q", region)
	}
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %s, %d PoPs, %d LSPs, %d router agents\n",
		region, sc.Net.NumPoPs(), sc.Net.NumPairs(), sc.Net.NumPoPs())
	d := collector.NewDeployment(sc.Net, sc.Series, collector.DeploymentConfig{
		Pollers:         pollers,
		DropProb:        drop,
		MinutesPerMilli: speed,
		StepMinutes:     sc.Series.Cfg.StepMinutes,
		Seed:            seed,
	})
	if err := d.Run(cycles); err != nil {
		return err
	}
	var lost int
	for _, p := range d.Pollers {
		lost += p.Lost()
	}
	fmt.Printf("collected %d rate records over %d cycles (%d poll batches lost to UDP drops)\n",
		d.Store.Records(), cycles, lost)
	for _, iv := range d.Store.Intervals() {
		got, covered, _ := d.Store.Matrix(iv)
		if iv >= len(sc.Series.Demands) {
			continue
		}
		truth := sc.Series.Demands[iv]
		var re, n float64
		for p := range truth {
			if truth[p] > 1 && got[p] > 0 {
				re += math.Abs(got[p]-truth[p]) / truth[p]
				n++
			}
		}
		if n == 0 {
			continue
		}
		fmt.Printf("interval %2d: %3d/%3d LSPs covered, mean collection error %.2f%%\n",
			iv, covered, sc.Net.NumPairs(), 100*re/n)
	}
	return nil
}
