package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fleet"
	"repro/internal/runner"
	"repro/internal/stream"
)

// freeAddrs reserves n distinct loopback addresses for cluster nodes:
// the config must name the ports before the processes bind them.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// startClusterProc boots one tmserve role (node or coordinator) through
// the real run() and returns its base URL plus an idempotent stop —
// callable mid-test to kill a node, and again harmlessly from Cleanup.
func startClusterProc(t *testing.T, cfg config) (base string, stop func()) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	cfg.ready = ready
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, io.Discard) }()
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-done:
		t.Fatalf("process exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("process did not come up")
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			select {
			case err := <-done:
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("shutdown: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Error("process did not shut down within 10s")
			}
		})
	}
	t.Cleanup(stop)
	return base, stop
}

// clusterGet fetches a URL, decoding the body into `into` only on 200
// (failover windows legitimately answer 502/503 envelopes).
func clusterGet(t *testing.T, url string, into any) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode == http.StatusOK && into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: decode: %v (%s)", url, err, body)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestEndToEndClusterHandoff is the cross-process mirror of the fleet
// package's checkpoint-across-swap test: a scripted-timeline tenant
// runs on node n1 behind a coordinator, n1 is killed after the scripted
// topology swap, and the standby n2 must take over from its synced
// checkpoint — serving the tenant with the post-swap topology epoch
// preserved and the next re-solve warm-started, in measurably fewer
// solver iterations than the same checkpoint restored cold.
func TestEndToEndClusterHandoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster handoff takes seconds; skipped with -short")
	}
	// 60 intervals keep re-solves flowing long after the handoff; the
	// link fails at 5 and is restored at 14, as in the fleet-layer test.
	script := filepath.Join(t.TempDir(), "failover.json")
	if err := os.WriteFile(script, []byte(`{"format":1,"intervals":60,"events":[
		{"at":5,"fail_link":"Frankfurt-cr1-Brussels-cr1"},
		{"at":14,"restore":"Frankfurt-cr1-Brussels-cr1"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := fleet.TenantSpec{
		Name: "tl", Source: "scenario:script:" + script,
		Cycles: 1, Pace: "20ms", Window: 3, ResolveEvery: 3,
		Method: "entropy", ResolveMaxIter: 2000, ResolveTol: 1e-5,
	}
	addrs := freeAddrs(t, 2)
	dir1, dir2 := t.TempDir(), t.TempDir()
	cc := cluster.Config{
		Format:  cluster.ConfigFormat,
		Tenants: []fleet.TenantSpec{spec},
		Nodes: []cluster.NodeSpec{
			{Name: "n1", Addr: addrs[0]},
			{Name: "n2", Addr: addrs[1], Standby: true},
		},
		Placement:  map[string]string{"tl": "n1"},
		Standbys:   map[string]string{"tl": "n2"},
		ProbeEvery: "50ms", ProbeFailures: 2, SyncEvery: "50ms",
	}
	data, err := json.Marshal(cc)
	if err != nil {
		t.Fatal(err)
	}
	clusterPath := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(clusterPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, stopN2 := startClusterProc(t, config{addr: addrs[1], clusterPath: clusterPath, nodeName: "n2", checkpointDir: dir2})
	defer stopN2()
	_, stopN1 := startClusterProc(t, config{addr: addrs[0], clusterPath: clusterPath, nodeName: "n1", checkpointDir: dir1})
	coordBase, stopCoord := startClusterProc(t, config{addr: "127.0.0.1:0", clusterPath: clusterPath, coordinator: true})
	defer stopCoord()
	snapURL := coordBase + "/v1/t/tl/snapshot"

	// Phase 1: through the coordinator, wait for a re-solve published on
	// the post-swap topology (epoch >= 1), served by n1.
	deadline := time.Now().Add(time.Minute)
	var snap stream.Snapshot
	for {
		code, hdr := clusterGet(t, snapURL, &snap)
		if code == http.StatusOK && snap.TopologyEpoch >= 1 && snap.Resolve != nil && snap.ResolveInterval >= 5 {
			if node := hdr.Get("X-Tenant-Node"); node != "n1" {
				t.Fatalf("pre-handoff reads served by %q, want n1", node)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-swap re-solve never published: code %d, epoch %d, resolve@%d",
				code, snap.TopologyEpoch, snap.ResolveInterval)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: wait for n2's standby sync to capture a post-swap
	// checkpoint, then kill n1. The captured file doubles as the cold
	// control's starting state.
	standbyPath := filepath.Join(dir2, "tl.ckpt")
	var cp stream.Checkpoint
	for {
		loaded, err := stream.LoadCheckpoint(standbyPath)
		if err == nil && loaded.TopologyEpoch >= 1 && loaded.Snapshot != nil && loaded.Snapshot.Resolve != nil {
			cp = loaded
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby checkpoint never synced past the swap: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stopN1()

	// Phase 3: the coordinator's probes must notice, promote n2, and
	// serve the tenant from there with the topology epoch preserved —
	// the signature of a warm checkpoint restore, not a cold replay
	// (which would start over at epoch 0).
	var first stream.Snapshot
	for {
		code, hdr := clusterGet(t, snapURL, &first)
		if code == http.StatusOK && hdr.Get("X-Tenant-Node") == "n2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never took over: last code %d via %q", code, hdr.Get("X-Tenant-Node"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if first.TopologyEpoch < cp.TopologyEpoch {
		t.Fatalf("handoff lost the topology epoch: serving %d, checkpoint had %d",
			first.TopologyEpoch, cp.TopologyEpoch)
	}
	var listing struct {
		Tenants []struct {
			Name     string `json:"name"`
			Node     string `json:"node"`
			Restored bool   `json:"restored"`
		} `json:"tenants"`
	}
	if code, _ := clusterGet(t, coordBase+"/v1/tenants", &listing); code != http.StatusOK {
		t.Fatalf("/v1/tenants status %d", code)
	}
	found := false
	for _, row := range listing.Tenants {
		if row.Name == "tl" && row.Node == "n2" {
			found = true
			if !row.Restored {
				t.Fatalf("promoted tenant not marked restored: %+v", row)
			}
		}
	}
	if !found {
		t.Fatalf("aggregated listing has no tl row on n2: %+v", listing.Tenants)
	}

	// Phase 4: n2's first re-solve past the handoff point must be
	// warm-started. The metric history pins it exactly — polling served
	// snapshots could skip a publication, history cannot.
	var warm stream.MetricPoint
	for {
		var m struct {
			Points []stream.MetricPoint `json:"points"`
		}
		if code, _ := clusterGet(t, coordBase+"/v1/t/tl/metrics", &m); code == http.StatusOK {
			for _, p := range m.Points {
				if p.Interval > first.Interval && p.HasResolve && p.ResolveInterval > first.ResolveInterval {
					warm = p
					break
				}
			}
		}
		if warm.HasResolve {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no re-solve published after the handoff (restored at interval %d, resolve@%d)",
				first.Interval, first.ResolveInterval)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !warm.ResolveWarm {
		t.Fatalf("first post-handoff re-solve was cold: %+v", warm)
	}
	if warm.ResolveIterations <= 0 {
		t.Fatalf("post-handoff re-solve reports no iterations: %+v", warm)
	}

	// Phase 5 (cold control): the same synced checkpoint, stripped of
	// its warm-start material, restored into a fresh in-process fleet.
	// Its first post-restore re-solve runs cold and must need more
	// solver iterations than n2's warm one.
	cold := cp
	coldSnap := *cp.Snapshot
	coldSnap.Resolve = nil
	coldSnap.ResolveWarm = false
	coldSnap.ResolveIterations = 0
	cold.Snapshot = &coldSnap
	cold.WarmAlpha = nil
	coldDir := t.TempDir()
	if err := stream.SaveCheckpoint(filepath.Join(coldDir, "tl.ckpt"), cold); err != nil {
		t.Fatal(err)
	}
	cf := fleet.New(runner.NewPool(0), fleet.Options{CheckpointDir: coldDir})
	cten, err := cf.Add(spec)
	if err != nil {
		t.Fatal(err)
	}
	if restored, err := cf.RestoreAll(); err != nil || restored != 1 {
		t.Fatalf("cold control restore: %d tenants, %v", restored, err)
	}
	cctx, ccancel := context.WithCancel(context.Background())
	defer ccancel()
	cdone := make(chan error, 1)
	go func() { cdone <- cf.Run(cctx) }()
	var coldPoint stream.MetricPoint
	for {
		for _, p := range cten.Metrics() {
			if p.HasResolve && p.ResolveInterval > cp.Snapshot.ResolveInterval {
				coldPoint = p
				break
			}
		}
		if coldPoint.HasResolve {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cold control never re-solved past the checkpoint")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ccancel()
	<-cdone
	if coldPoint.ResolveWarm {
		t.Fatalf("cold control's first re-solve was warm: %+v", coldPoint)
	}
	if warm.ResolveIterations >= coldPoint.ResolveIterations {
		t.Fatalf("handoff re-solve took %d iterations, cold control %d — the checkpoint handoff did not preserve the warm start",
			warm.ResolveIterations, coldPoint.ResolveIterations)
	}
	t.Logf("warm post-handoff re-solve: %d iterations vs %d cold (epoch %d preserved)",
		warm.ResolveIterations, coldPoint.ResolveIterations, first.TopologyEpoch)
}
