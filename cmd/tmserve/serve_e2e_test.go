package main

// End-to-end coverage of the PR's serving additions: the uniform
// snapshot headers across the legacy and v1 surfaces, the conditional
// get / delta / SSE read path, and the -max-waiters load-shedding cap —
// all against the real daemon, not a handler fixture.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/stream"
)

// replayConfig is the smallest live-ish daemon: a short deterministic
// replay that publishes a handful of versions and then idles.
func replayConfig() config {
	return config{
		region: "europe", seed: 1, mode: "replay", cycles: 6,
		window: 4, minCoverage: 0.9, resolveEvery: 3,
		method: "entropy", reg: 1000, sigmaInv2: 0.01, pace: 0,
	}
}

// TestServeSnapshotHeadersE2E: every snapshot-serving route — legacy
// single, legacy tenant, and v1 — answers with the same Content-Type,
// Cache-Control and X-Snapshot-Version headers, and the v1 route adds
// the ETag the conditional-get flow needs.
func TestServeSnapshotHeadersE2E(t *testing.T) {
	base, shutdown := startServer(t, replayConfig())
	defer shutdown()

	// Wait until something is published, via the long-poll.
	var first stream.Snapshot
	if code := getJSON(t, base+"/snapshot?min_version=1", &first); code != http.StatusOK {
		t.Fatalf("long-poll status %d", code)
	}

	for _, path := range []string{"/snapshot", "/t/default/snapshot", "/v1/t/default/snapshot"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s: Content-Type %q", path, ct)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
			t.Errorf("GET %s: Cache-Control %q", path, cc)
		}
		if v := resp.Header.Get("X-Snapshot-Version"); v == "" {
			t.Errorf("GET %s: no X-Snapshot-Version", path)
		}
		etag := resp.Header.Get("ETag")
		if strings.HasPrefix(path, "/v1/") && etag == "" {
			t.Errorf("GET %s: v1 response without ETag", path)
		}
		if !strings.HasPrefix(path, "/v1/") && etag != "" {
			t.Errorf("GET %s: legacy response grew an ETag %q", path, etag)
		}
	}
}

// TestServeV1ReadPathE2E: conditional get, delta negotiation and the
// SSE stream against a replaying daemon. The delta legs tolerate a
// fallback to the full body (re-solve publications move every
// coordinate, where serving full IS the documented behavior) but the
// 304 leg and stream framing must hold exactly.
func TestServeV1ReadPathE2E(t *testing.T) {
	base, shutdown := startServer(t, replayConfig())
	defer shutdown()

	var snap stream.Snapshot
	if code := getJSON(t, base+"/v1/t/default/snapshot?min_version=2", &snap); code != http.StatusOK {
		t.Fatalf("long-poll status %d", code)
	}

	// Conditional get round trip at whatever version is now current.
	resp, err := http.Get(base + "/v1/t/default/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var cur stream.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag != serve.ETag(cur.Version) {
		t.Fatalf("etag %q for version %d", etag, cur.Version)
	}
	req, _ := http.NewRequest("GET", base+"/v1/t/default/snapshot", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The stream may have advanced between the two requests; then the
	// conditional get correctly serves the new version instead of 304.
	switch resp.StatusCode {
	case http.StatusNotModified:
	case http.StatusOK:
		if resp.Header.Get("ETag") == etag {
			t.Fatalf("matching If-None-Match answered 200 with the same etag %s", etag)
		}
	default:
		t.Fatalf("conditional get: %d", resp.StatusCode)
	}

	// Delta negotiation from the previous version: either a delta doc
	// that applies, or the full-snapshot fallback — never an error.
	req, _ = http.NewRequest("GET", fmt.Sprintf("%s/v1/t/default/snapshot?since=%d", base, cur.Version-1), nil)
	req.Header.Set("Accept", serve.DeltaMediaType+", application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK && resp.Header.Get("Content-Type") == serve.DeltaMediaType:
		var doc serve.DeltaDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		if doc.From != cur.Version-1 || doc.To < cur.Version || len(doc.Steps) == 0 {
			t.Fatalf("delta doc from=%d to=%d steps=%d (current %d)", doc.From, doc.To, len(doc.Steps), cur.Version)
		}
		if resp.Header.Get("X-Delta-From") != fmt.Sprint(doc.From) {
			t.Fatalf("X-Delta-From %q, doc.From %d", resp.Header.Get("X-Delta-From"), doc.From)
		}
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotModified:
		// Full-body fallback (ratio breach or evicted base), or the
		// stream caught the base up to current. Both are in-contract.
	default:
		t.Fatalf("delta request: %d", resp.StatusCode)
	}

	// SSE: the stream must open with the current version announcement.
	sseResp, err := http.Get(base + "/v1/t/default/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q", ct)
	}
	sc := bufio.NewScanner(sseResp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	deadline := time.After(10 * time.Second)
	lines := make(chan string, 16)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	var sawEvent, sawData bool
	for !(sawEvent && sawData) {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("event stream closed before the first announcement")
			}
			if line == "event: version" {
				sawEvent = true
			}
			if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"version"`) {
				sawData = true
			}
		case <-deadline:
			t.Fatal("no version announcement within 10s")
		}
	}
}

// TestServeMaxWaitersE2E: a daemon started with -max-waiters 1 sheds
// the second concurrent long-poll with 429 + Retry-After on both the
// legacy and the v1 surface.
func TestServeMaxWaitersE2E(t *testing.T) {
	cfg := replayConfig()
	// An enormous pace keeps the replay from ever publishing, so
	// min_version long-polls park deterministically.
	cfg.pace = time.Hour
	cfg.maxWaiters = 1
	// shutdown is called exactly once, at the end: it doubles as the
	// release of the parked waiter (and asserts the clean daemon exit).
	base, shutdown := startServer(t, cfg)

	parked := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/snapshot?min_version=99")
		if err != nil {
			parked <- -1
			return
		}
		resp.Body.Close()
		parked <- resp.StatusCode
	}()

	// The parked waiter registers asynchronously; /v1/tenants exposes the
	// live waiter count, so wait until it is really holding the one slot
	// (probing with another long-poll would race it for the cap).
	deadline := time.Now().Add(10 * time.Second)
	for {
		var tl struct {
			Tenants []struct {
				Serving struct {
					Waiters int `json:"waiters"`
				} `json:"serving"`
			} `json:"tenants"`
		}
		if code := getJSON(t, base+"/v1/tenants", &tl); code != http.StatusOK {
			t.Fatalf("/v1/tenants: %d", code)
		}
		if len(tl.Tenants) == 1 && tl.Tenants[0].Serving.Waiters >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("long-poll waiter never parked: %+v", tl)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(base + "/v1/t/default/snapshot?min_version=99")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("v1 over-cap: %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error.Code != "too_many_waiters" {
		t.Fatalf("429 envelope: %v %+v", err, envelope)
	}
	resp.Body.Close()
	// Legacy surface sheds identically.
	resp, err = http.Get(base + "/snapshot?min_version=99")
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(e.Error, "too many waiters") {
		t.Fatalf("legacy over-cap: %d %q", resp.StatusCode, e.Error)
	}
	shutdown() // releases the parked waiter with the shutdown 503
	if code := <-parked; code != http.StatusServiceUnavailable {
		t.Fatalf("parked waiter released with %d, want 503", code)
	}
}

// TestMaxWaitersValidation: the flag must be non-negative.
func TestMaxWaitersValidation(t *testing.T) {
	cfg := config{driftThreshold: 0.1, resolveEvery: 3, maxWaiters: -1}
	if err := cfg.validate(); err == nil || !strings.Contains(err.Error(), "max-waiters") {
		t.Fatalf("negative -max-waiters accepted (err %v)", err)
	}
	cfg.maxWaiters = 0
	if err := cfg.validate(); err != nil {
		t.Fatalf("zero -max-waiters rejected: %v", err)
	}
}
