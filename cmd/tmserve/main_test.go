package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/runner"
	"repro/internal/stream"
)

// handlerFleet builds a one-tenant fleet around an idle feed (never
// run), so handler behavior before any data — and during shutdown — can
// be tested without a collection.
func handlerFleet(t *testing.T) *fleet.Fleet {
	t.Helper()
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	f := fleet.New(runner.NewPool(1), fleet.Options{})
	if _, err := f.AddFeed(fleet.TenantSpec{Name: "default"}, sc, fleet.Feed{
		Store:   collector.NewStore(sc.Net.NumPairs()),
		Collect: func(context.Context) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

// startServer runs the daemon in-process on an ephemeral port and returns
// its base URL plus a shutdown function that asserts a clean exit.
func startServer(t *testing.T, cfg config) (base string, shutdown func()) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	cfg.addr = "127.0.0.1:0"
	cfg.ready = ready
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, io.Discard) }()
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server did not come up")
	}
	return base, func() {
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("shutdown returned %v, want context.Canceled", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down within 10s")
		}
	}
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// TestEndToEndReplay is the PR's acceptance demo: a simulated deployment
// (deterministic replay of the European scenario) streamed through the
// engine and served over HTTP must (a) emit at least 3 consecutive
// snapshots with monotonically non-increasing gravity estimation error
// and (b) produce an incremental gravity estimate that matches a batch
// gravity solve over the same window to within 1e-9.
func TestEndToEndReplay(t *testing.T) {
	const cycles, window = 12, 6
	base, shutdown := startServer(t, config{
		region: "europe", seed: 1, mode: "replay", cycles: cycles,
		window: window, minCoverage: 0.9, resolveEvery: 4,
		method: "entropy", reg: 1000, sigmaInv2: 0.01, pace: 0,
	})
	defer shutdown()

	// Progress gate: versions grow by one per publication (intervals and
	// re-solves both), so version >= cycles means the stream is moving.
	// Which publications those were is established from /metrics below.
	var progress stream.Snapshot
	if code := getJSON(t, fmt.Sprintf("%s/snapshot?min_version=%d", base, cycles), &progress); code != http.StatusOK {
		t.Fatalf("long-poll status %d", code)
	}

	// (a) The gravity-error trajectory over consumed intervals must hold
	// a non-increasing run of >= 3 consecutive snapshots.
	deadline := time.Now().Add(30 * time.Second)
	var perInterval []float64
	for {
		var m struct {
			Points []stream.MetricPoint `json:"points"`
		}
		getJSON(t, base+"/metrics", &m)
		perInterval = perInterval[:0]
		seen := -1
		for _, p := range m.Points {
			if p.Interval > seen { // skip re-solve publications of the same window
				perInterval = append(perInterval, p.GravityMRE)
				seen = p.Interval
			}
		}
		if len(perInterval) >= cycles {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d interval publications after %d cycles", len(perInterval), cycles)
		}
		time.Sleep(10 * time.Millisecond)
	}
	run, best := 1, 1
	for i := 1; i < len(perInterval); i++ {
		if perInterval[i] <= perInterval[i-1] {
			run++
		} else {
			run = 1
		}
		if run > best {
			best = run
		}
	}
	if best < 3 {
		t.Fatalf("longest non-increasing gravity-error run is %d snapshots, want >= 3 (trajectory %v)", best, perInterval)
	}

	// All intervals are published now (the /metrics loop above saw every
	// one), so the latest snapshot covers the final window; re-solve
	// publications never regress the window state.
	var final stream.Snapshot
	getJSON(t, base+"/snapshot", &final)

	// (b) Incremental vs batch gravity on the final window. Replay is
	// lossless, so the collected window equals the generating series.
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	meanLoads := linalg.NewVector(sc.Rt.R.Rows())
	for k := cycles - window; k < cycles; k++ {
		linalg.Axpy(1, sc.Rt.LinkLoads(sc.Series.Demands[k]), meanLoads)
	}
	meanLoads.Scale(1 / float64(window))
	inst, err := core.NewInstance(sc.Rt, meanLoads)
	if err != nil {
		t.Fatal(err)
	}
	batch := core.Gravity(inst)
	if len(final.Gravity) != len(batch) {
		t.Fatalf("snapshot gravity has %d demands, want %d", len(final.Gravity), len(batch))
	}
	for p := range batch {
		if d := math.Abs(batch[p] - final.Gravity[p]); d > 1e-9 {
			t.Fatalf("demand %d: served incremental %v vs batch %v (diff %g > 1e-9)", p, final.Gravity[p], batch[p], d)
		}
	}
	if final.Window != window || final.Interval != cycles-1 {
		t.Fatalf("final snapshot window %d interval %d, want %d/%d", final.Window, final.Interval, window, cycles-1)
	}

	// The periodic entropy re-solve must eventually be served too.
	deadline = time.Now().Add(60 * time.Second)
	for {
		var snap stream.Snapshot
		getJSON(t, base+"/snapshot", &snap)
		if snap.Resolve != nil {
			if snap.ResolveMethod != stream.MethodEntropy {
				t.Fatalf("resolve method %q, want entropy", snap.ResolveMethod)
			}
			if len(snap.Resolve) != sc.Net.NumPairs() {
				t.Fatalf("resolve has %d demands, want %d", len(snap.Resolve), sc.Net.NumPairs())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no re-solve served within 60s")
		}
		time.Sleep(20 * time.Millisecond)
	}

	var health struct {
		OK      bool   `json:"ok"`
		Version uint64 `json:"version"`
	}
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK || !health.OK || health.Version < uint64(cycles) {
		t.Fatalf("healthz: code=%d ok=%v version=%d", code, health.OK, health.Version)
	}
}

// TestEndToEndLive smoke-tests the UDP/TCP pipeline end to end under the
// daemon: a short lossless live collection must publish snapshots that
// the HTTP API serves. Timing-dependent, so assertions stay coarse.
func TestEndToEndLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live socket pipeline is timing-dependent; skipped in -short")
	}
	base, shutdown := startServer(t, config{
		region: "europe", seed: 1, mode: "live", cycles: 6,
		window: 0, minCoverage: 0.5, resolveEvery: 0,
		method: "entropy", reg: 1000, sigmaInv2: 0.01,
		pollers: 2, drop: 0, speed: 0.05,
	})
	defer shutdown()

	var snap stream.Snapshot
	if code := getJSON(t, base+"/snapshot?min_version=2", &snap); code != http.StatusOK {
		t.Fatalf("long-poll status %d", code)
	}
	if snap.Version < 2 || len(snap.Gravity) == 0 || len(snap.Mean) == 0 {
		t.Fatalf("implausible live snapshot: version=%d |gravity|=%d |mean|=%d",
			snap.Version, len(snap.Gravity), len(snap.Mean))
	}
	if snap.GravityMRE <= 0 || math.IsNaN(snap.GravityMRE) {
		t.Fatalf("implausible gravity MRE %v", snap.GravityMRE)
	}
}

// TestAPIBeforeFirstSnapshot drives the handler over an engine that has
// consumed nothing: /snapshot must 503, bad input must 400, /healthz
// must stay OK, and a pending long-poll must be released promptly when
// the daemon's run context is cancelled (the graceful-shutdown path).
func TestAPIBeforeFirstSnapshot(t *testing.T) {
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	srv := httptest.NewServer(newHandler(runCtx, handlerFleet(t), true))
	defer srv.Close()

	var e struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, srv.URL+"/snapshot", &e); code != http.StatusServiceUnavailable {
		t.Fatalf("/snapshot with no data gave status %d, want 503", code)
	}
	if code := getJSON(t, srv.URL+"/snapshot?min_version=notanumber", &e); code != http.StatusBadRequest {
		t.Fatalf("bad min_version gave status %d, want 400", code)
	}
	var health struct {
		OK   bool `json:"ok"`
		Have bool `json:"have_snapshot"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || !health.OK || health.Have {
		t.Fatalf("healthz before data: code=%d ok=%v have=%v", code, health.OK, health.Have)
	}

	// A long-poll for a version that will never arrive must be released
	// by run-context cancellation well before its own 30s bound — and
	// answered as a daemon shutdown (503), not mislabeled a timeout.
	pollDone := make(chan struct {
		code int
		err  string
	}, 1)
	go func() {
		var e struct {
			Error string `json:"error"`
		}
		code := getJSON(t, srv.URL+"/snapshot?min_version=1", &e)
		pollDone <- struct {
			code int
			err  string
		}{code, e.Error}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll block in WaitVersion
	cancelRun()
	select {
	case got := <-pollDone:
		if got.code != http.StatusServiceUnavailable {
			t.Fatalf("shutdown long-poll gave status %d, want 503", got.code)
		}
		if !strings.Contains(got.err, "shutting down") {
			t.Fatalf("shutdown long-poll error %q does not name the shutdown", got.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll not released by run-context cancellation")
	}
}

// TestLongPollClientDisconnect pins the third leg of the long-poll error
// mapping: when the *client* goes away, the handler must return without
// writing anything to the dead connection — previously it produced the
// same 504 + JSON body as a genuine timeout.
func TestLongPollClientDisconnect(t *testing.T) {
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	handler := newHandler(runCtx, handlerFleet(t), true)

	reqCtx, cancelReq := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/snapshot?min_version=1", nil).WithContext(reqCtx)
	rec := httptest.NewRecorder()
	served := make(chan struct{})
	go func() {
		handler.ServeHTTP(rec, req)
		close(served)
	}()
	time.Sleep(50 * time.Millisecond) // let the poll block in WaitVersion
	cancelReq()                       // the client hangs up
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("handler not released by client disconnect")
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("handler wrote %q to a disconnected client", rec.Body.String())
	}
	if rec.Header().Get("Content-Type") != "" {
		t.Fatal("handler set response headers for a disconnected client")
	}
}

// TestCheckpointRestart is the crash-safety acceptance demo: a daemon
// run with -checkpoint is killed after publishing, and its successor —
// pointed at the same file, with a pace so slow the collector cannot
// have produced anything yet — must serve the previous run's snapshot
// (same version, same re-solve) immediately on boot.
func TestCheckpointRestart(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "tm.ckpt")
	const cycles = 8
	base, shutdown := startServer(t, config{
		region: "europe", seed: 1, mode: "replay", cycles: cycles,
		window: 4, minCoverage: 0.9, resolveEvery: 2,
		method: "entropy", reg: 1000, sigmaInv2: 0.01, pace: 0,
		checkpoint: ckpt,
	})
	// Wait until the stream is quiescent — every interval consumed and
	// the final cadence re-solve (interval 7) published — so nothing can
	// publish between this read and the shutdown save, and the restored
	// snapshot must match it exactly.
	var last stream.Snapshot
	if code := getJSON(t, fmt.Sprintf("%s/snapshot?min_version=%d", base, cycles), &last); code != http.StatusOK {
		t.Fatalf("long-poll status %d", code)
	}
	deadline := time.Now().Add(time.Minute)
	for last.Interval != cycles-1 || last.ResolveInterval != cycles-1 || last.Resolve == nil {
		if time.Now().After(deadline) {
			t.Fatalf("stream not quiescent before shutdown (interval %d, resolve %d)", last.Interval, last.ResolveInterval)
		}
		time.Sleep(10 * time.Millisecond)
		getJSON(t, base+"/snapshot", &last)
	}
	// Publish-time persistence is what makes a hard kill survivable: the
	// checkpoint must already be on disk while the daemon is still up,
	// not only written by the graceful-shutdown save.
	deadline = time.Now().Add(time.Minute)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint on disk while the daemon is running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	shutdown() // SIGTERM-equivalent: the run context is cancelled

	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint on disk after shutdown: %v", err)
	}

	// The successor replays with an hour-long pace: any snapshot it
	// serves within the test's lifetime can only come from the restored
	// checkpoint.
	base2, shutdown2 := startServer(t, config{
		region: "europe", seed: 1, mode: "replay", cycles: cycles,
		window: 4, minCoverage: 0.9, resolveEvery: 2,
		method: "entropy", reg: 1000, sigmaInv2: 0.01, pace: time.Hour,
		checkpoint: ckpt,
	})
	defer shutdown2()
	var restored stream.Snapshot
	if code := getJSON(t, base2+"/snapshot", &restored); code != http.StatusOK {
		t.Fatalf("restarted daemon dark: /snapshot gave %d, want 200 immediately", code)
	}
	if restored.Version < last.Version {
		t.Fatalf("restored version %d older than the %d served before the restart", restored.Version, last.Version)
	}
	if restored.Interval != last.Interval || restored.Window != last.Window {
		t.Fatalf("restored snapshot covers interval %d window %d, want %d/%d",
			restored.Interval, restored.Window, last.Interval, last.Window)
	}
	if restored.Resolve == nil || restored.ResolveInterval != last.ResolveInterval {
		t.Fatalf("restored snapshot lost the re-solve (interval %d, want %d)",
			restored.ResolveInterval, last.ResolveInterval)
	}
	for p := range last.Mean {
		if restored.Mean[p] != last.Mean[p] {
			t.Fatalf("restored mean differs at demand %d: %v vs %v", p, restored.Mean[p], last.Mean[p])
		}
	}
	var health struct {
		OK   bool `json:"ok"`
		Have bool `json:"have_snapshot"`
	}
	if code := getJSON(t, base2+"/healthz", &health); code != http.StatusOK || !health.OK || !health.Have {
		t.Fatalf("restarted healthz: code=%d ok=%v have=%v", code, health.OK, health.Have)
	}
}

// TestFlagValidation covers the startup rejection of flag combinations
// that used to fail late (after the scenario build, with an error naming
// no flag) or not at all: -drift-threshold with re-solves disabled must
// be refused before any topology is generated, with an error that names
// both flags involved.
func TestFlagValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		what string
		cfg  config
		want []string // substrings the error must carry
	}{
		{
			what: "drift threshold with re-solves disabled",
			cfg:  config{driftThreshold: 0.1, resolveEvery: 0},
			want: []string{"-drift-threshold", "-resolve-every"},
		},
		{
			what: "negative drift threshold",
			cfg:  config{driftThreshold: -1, resolveEvery: 3},
			want: []string{"-drift-threshold"},
		},
		{
			what: "cadence back-off without a drift signal",
			cfg:  config{resolveEvery: 3, resolveMaxEvery: 12},
			want: []string{"-resolve-max-every", "-drift-threshold"},
		},
		{
			what: "fleet with live mode",
			cfg:  config{fleetPath: "fleet.json", mode: "live", resolveEvery: 3},
			want: []string{"-fleet", "-mode live"},
		},
		{
			what: "fleet with single-tenant checkpoint",
			cfg:  config{fleetPath: "fleet.json", checkpoint: "tm.ckpt", resolveEvery: 3},
			want: []string{"-checkpoint-dir"},
		},
		{
			what: "checkpoint file and dir together",
			cfg:  config{checkpoint: "tm.ckpt", checkpointDir: "ckpt", resolveEvery: 3},
			want: []string{"-checkpoint", "-checkpoint-dir"},
		},
		{
			what: "explicitly set single-tenant flag with -fleet",
			cfg: config{fleetPath: "fleet.json", method: "vardi", resolveEvery: 3,
				set: map[string]bool{"method": true}},
			want: []string{"-method", "fleet config"},
		},
		{
			what: "node role without a cluster config",
			cfg:  config{nodeName: "n1", resolveEvery: 3},
			want: []string{"-cluster"},
		},
		{
			what: "coordinator role without a cluster config",
			cfg:  config{coordinator: true, resolveEvery: 3},
			want: []string{"-cluster"},
		},
		{
			what: "cluster without a role",
			cfg:  config{clusterPath: "cluster.json", resolveEvery: 3},
			want: []string{"-node", "-coordinator"},
		},
		{
			what: "node and coordinator together",
			cfg: config{clusterPath: "cluster.json", nodeName: "n1",
				coordinator: true, checkpointDir: "ckpt", resolveEvery: 3},
			want: []string{"-node", "-coordinator", "mutually exclusive"},
		},
		{
			what: "cluster and fleet together",
			cfg: config{clusterPath: "cluster.json", fleetPath: "fleet.json",
				coordinator: true, resolveEvery: 3},
			want: []string{"-cluster", "-fleet", "mutually exclusive"},
		},
		{
			what: "cluster node without a checkpoint dir",
			cfg:  config{clusterPath: "cluster.json", nodeName: "n1", resolveEvery: 3},
			want: []string{"-checkpoint-dir", "handoff"},
		},
		{
			what: "coordinator with a checkpoint dir",
			cfg: config{clusterPath: "cluster.json", coordinator: true,
				checkpointDir: "ckpt", resolveEvery: 3},
			want: []string{"-checkpoint-dir"},
		},
		{
			what: "cluster node with single-tenant checkpoint",
			cfg: config{clusterPath: "cluster.json", nodeName: "n1",
				checkpointDir: "ckpt", checkpoint: "tm.ckpt", resolveEvery: 3},
			want: []string{"-checkpoint", "-checkpoint-dir"},
		},
		{
			what: "explicitly set single-tenant flag with -cluster",
			cfg: config{clusterPath: "cluster.json", coordinator: true, method: "vardi",
				resolveEvery: 3, set: map[string]bool{"method": true}},
			want: []string{"-method", "cluster config"},
		},
	}
	for _, tc := range cases {
		err := run(ctx, tc.cfg, io.Discard)
		if err == nil {
			t.Errorf("%s: accepted", tc.what)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not name %s", tc.what, err, want)
			}
		}
	}
	// The guard must fire from flag parsing to error without building a
	// scenario: a sub-second run() on a config whose scenario (a 150-PoP
	// generated backbone) takes far longer than that to build proves it.
	t0 := time.Now()
	err := run(ctx, config{region: "europe", scenario: "", driftThreshold: 0.1, resolveEvery: 0,
		mode: "replay", cycles: 4}, io.Discard)
	if err == nil {
		t.Fatal("bad combination accepted")
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("validation took %v; it must reject before doing real work", d)
	}
}

// writeFleetConfig writes a 4-tenant fleet config for the e2e tests:
// mixed sources and sizes, every tenant finishing its replay quickly.
func writeFleetConfig(t *testing.T, path string) []string {
	t.Helper()
	cfg := fleet.Config{
		Format: fleet.ConfigFormat,
		Tenants: []fleet.TenantSpec{
			{Name: "eu", Source: "europe", Cycles: 6, Pace: "0", Window: 3, ResolveEvery: 3, ResolveMaxIter: 4000, ResolveTol: 1e-5},
			{Name: "us", Source: "america", Cycles: 6, Pace: "0", Window: 3, ResolveEvery: 3, ResolveMaxIter: 4000, ResolveTol: 1e-5},
			{Name: "lab-noisy", Source: "scenario:noisy:europe:0.05", Cycles: 6, Pace: "0", Window: 3, ResolveEvery: 3, ResolveMaxIter: 4000, ResolveTol: 1e-5},
			{Name: "lab-16", Source: "scenario:scaled:16", Cycles: 6, Pace: "0", Window: 3, ResolveEvery: 3, ResolveMaxIter: 4000, ResolveTol: 1e-5},
		},
	}
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(cfg.Tenants))
	for i, ten := range cfg.Tenants {
		names[i] = ten.Name
	}
	return names
}

// TestEndToEndFleet boots a 4-tenant fleet daemon, waits for every
// tenant to finish its replay and publish a re-solve, exercises the
// tenant-scoped routes (/tenants, /t/{name}/snapshot, /t/{name}/metrics,
// unknown-tenant 404), kills the daemon, and restarts it against the
// same -checkpoint-dir with an hour-long pace: every restored tenant
// must serve its snapshot immediately.
func TestEndToEndFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet end-to-end run is slow; skipped in -short")
	}
	dir := t.TempDir()
	fleetPath := filepath.Join(dir, "fleet.json")
	ckptDir := filepath.Join(dir, "ckpt")
	names := writeFleetConfig(t, fleetPath)

	base, shutdown := startServer(t, config{
		fleetPath: fleetPath, checkpointDir: ckptDir,
		mode: "replay", resolveEvery: 3, // single-tenant flags that must be ignored cleanly
	})

	// /snapshot and /metrics must NOT exist in fleet mode (they are the
	// single-tenant aliases); tenants are addressed under /t/.
	resp, err := http.Get(base + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/snapshot in fleet mode gave %d, want 404", resp.StatusCode)
	}

	// Wait until every tenant is serving its final window + re-solve.
	finals := make(map[string]stream.Snapshot, len(names))
	deadline := time.Now().Add(2 * time.Minute)
	for _, name := range names {
		for {
			var snap stream.Snapshot
			code := getJSON(t, fmt.Sprintf("%s/t/%s/snapshot", base, name), &snap)
			if code == http.StatusOK && snap.Interval == 5 && snap.Resolve != nil && snap.ResolveInterval == 5 {
				finals[name] = snap
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tenant %s never quiesced (last code %d)", name, code)
			}
			time.Sleep(10 * time.Millisecond)
		}
		var m struct {
			Points []stream.MetricPoint `json:"points"`
		}
		if code := getJSON(t, fmt.Sprintf("%s/t/%s/metrics", base, name), &m); code != http.StatusOK || len(m.Points) < 6 {
			t.Fatalf("tenant %s metrics: code %d, %d points", name, code, len(m.Points))
		}
	}

	// Fleet-wide views: /tenants lists all four serving tenants, and
	// /healthz reports per-tenant state with the fleet healthy.
	var tl struct {
		Tenants []fleet.Status `json:"tenants"`
	}
	if code := getJSON(t, base+"/tenants", &tl); code != http.StatusOK || len(tl.Tenants) != len(names) {
		t.Fatalf("/tenants: code %d, %d tenants", code, len(tl.Tenants))
	}
	for _, st := range tl.Tenants {
		if st.State != fleet.StateServing || !st.HaveSnapshot {
			t.Fatalf("tenant %s: state %s, have_snapshot %v after replay end", st.Name, st.State, st.HaveSnapshot)
		}
	}
	var health struct {
		OK      bool           `json:"ok"`
		Tenants []fleet.Status `json:"tenants"`
	}
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK || !health.OK || len(health.Tenants) != len(names) {
		t.Fatalf("healthz: code=%d ok=%v tenants=%d", code, health.OK, len(health.Tenants))
	}

	var e struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, base+"/t/nosuch/snapshot", &e); code != http.StatusNotFound || !strings.Contains(e.Error, "nosuch") {
		t.Fatalf("unknown tenant gave code %d error %q", code, e.Error)
	}
	if code := getJSON(t, base+"/t/eu/teapot", &e); code != http.StatusNotFound {
		t.Fatalf("unknown tenant endpoint gave code %d", code)
	}
	// /t/eu without an endpoint names the missing endpoint, not a
	// (nonexistent) unknown tenant.
	if code := getJSON(t, base+"/t/eu", &e); code != http.StatusNotFound || !strings.Contains(e.Error, "missing endpoint") {
		t.Fatalf("endpointless tenant path gave code %d error %q", code, e.Error)
	}

	shutdown()
	for _, name := range names {
		if _, err := os.Stat(filepath.Join(ckptDir, name+".ckpt")); err != nil {
			t.Fatalf("tenant %s left no checkpoint: %v", name, err)
		}
	}

	// Restart against the same checkpoint dir, paced so slowly nothing
	// new can land: every tenant must serve its restored snapshot on the
	// first request.
	writeSlowFleetConfig(t, fleetPath)
	base2, shutdown2 := startServer(t, config{
		fleetPath: fleetPath, checkpointDir: ckptDir,
		mode: "replay", resolveEvery: 3,
	})
	defer shutdown2()
	for _, name := range names {
		var restored stream.Snapshot
		if code := getJSON(t, fmt.Sprintf("%s/t/%s/snapshot", base2, name), &restored); code != http.StatusOK {
			t.Fatalf("restarted tenant %s dark: code %d, want 200 immediately", name, code)
		}
		want := finals[name]
		if restored.Version < want.Version || restored.Interval != want.Interval {
			t.Fatalf("tenant %s restored version %d interval %d, want >= %d / %d",
				name, restored.Version, restored.Interval, want.Version, want.Interval)
		}
		if restored.Resolve == nil {
			t.Fatalf("tenant %s lost its re-solve across the restart", name)
		}
		for p := range want.Mean {
			if restored.Mean[p] != want.Mean[p] {
				t.Fatalf("tenant %s restored mean differs at demand %d", name, p)
			}
		}
	}
	var tl2 struct {
		Tenants []fleet.Status `json:"tenants"`
	}
	getJSON(t, base2+"/tenants", &tl2)
	for _, st := range tl2.Tenants {
		if !st.Restored {
			t.Fatalf("tenant %s status does not report the restore", st.Name)
		}
	}
}

// writeSlowFleetConfig rewrites the fleet config with an hour-long pace
// so the restarted daemon cannot consume anything new during the test.
func writeSlowFleetConfig(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fleet.ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Tenants {
		cfg.Tenants[i].Pace = "1h"
	}
	out, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}
