// Command tmserve is the continuous traffic-matrix estimation daemon: it
// drives a measurement source — a live simulated collector deployment
// (UDP agents, distributed pollers, TCP uploads; -mode live) or a
// deterministic replay of the scenario's demand series (-mode replay) —
// through the internal/stream engine and serves the evolving estimate
// over HTTP/JSON. After every consumed polling interval the engine
// refreshes the incremental gravity estimate; every -resolve-every
// intervals it schedules a full re-solve (-method entropy|bayes|vardi|
// fanout) on a dedicated latest-wins worker, so a slow solve never
// delays ingestion.
//
// Re-solves are warm-started from the previously published estimate
// (several times fewer solver iterations on slowly drifting demand —
// the resolve_iterations / resolve_warm fields of /snapshot and
// /metrics show it), and the cadence is optionally adaptive:
// -drift-threshold re-solves immediately when the window mean moves
// past the threshold, -resolve-max-every lets the cadence back off
// while the window is steady.
//
// With -checkpoint the daemon is crash-safe: engine state (window ring,
// cursor, latest snapshot, metric history) is restored from the file on
// boot — so a restarted daemon serves its last snapshot immediately
// instead of going dark while the collector refills — and persisted
// atomically on every publication and at shutdown. Interval indices
// identify the stream across restarts: a restarted simulated source
// renumbers from 0, so the intervals it re-feeds below the restored
// cursor are deduplicated (an idempotent restart, not a double count)
// and consumption resumes once it catches back up to the cursor.
//
// Endpoints:
//
//	GET /healthz   liveness plus the latest snapshot version
//	GET /snapshot  latest versioned snapshot (matrices + error metrics);
//	               ?min_version=N long-polls until version N exists
//	GET /metrics   estimation-error history (one point per publication)
//
// The daemon keeps serving after the collection finishes and shuts down
// gracefully on SIGINT/SIGTERM via the usual context plumbing.
//
// Usage:
//
//	tmserve -region europe -cycles 24 -window 6 -resolve-every 3
//	tmserve -scenario europe.json -mode replay -pace 200ms
//	tmserve -mode live -pollers 3 -drop 0.02 -speed 0.1
//	tmserve -checkpoint tm.ckpt -drift-threshold 0.1 -resolve-max-every 12
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/collector"
	"repro/internal/netsim"
	"repro/internal/stream"
)

type config struct {
	addr     string
	region   string
	scenario string
	seed     int64
	mode     string
	cycles   int

	window          int
	minCoverage     float64
	resolveEvery    int
	resolveMaxEvery int
	driftThreshold  float64
	method          string
	reg             float64
	sigmaInv2       float64
	checkpoint      string

	pace    time.Duration // replay
	pollers int           // live
	drop    float64       // live
	speed   float64       // live

	// ready, when non-nil, receives the bound listen address once the
	// HTTP server is up (used by the end-to-end test with -addr :0).
	ready chan<- net.Addr
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7080", "HTTP listen address")
	flag.StringVar(&cfg.region, "region", "europe", "scenario to simulate: europe or america")
	flag.StringVar(&cfg.scenario, "scenario", "", "scenario JSON produced by tmgen (overrides -region)")
	flag.Int64Var(&cfg.seed, "seed", 1, "scenario seed (ignored with -scenario)")
	flag.StringVar(&cfg.mode, "mode", "replay", "measurement source: replay (deterministic) or live (UDP/TCP pipeline)")
	flag.IntVar(&cfg.cycles, "cycles", 24, "polling intervals to collect; 0 = run until interrupted")
	flag.IntVar(&cfg.window, "window", 6, "sliding estimation window in intervals; 0 = expanding")
	flag.Float64Var(&cfg.minCoverage, "min-coverage", 0.9, "LSP coverage fraction required before a closed interval is used")
	flag.IntVar(&cfg.resolveEvery, "resolve-every", 3, "full re-solve every N intervals; 0 = incremental gravity only")
	flag.IntVar(&cfg.resolveMaxEvery, "resolve-max-every", 0, "adaptive cadence cap: steady windows back the cadence off up to this (needs -drift-threshold; 0 = fixed cadence)")
	flag.Float64Var(&cfg.driftThreshold, "drift-threshold", 0, "window drift (relative L1 between consecutive window means) that triggers an immediate re-solve; 0 = fixed cadence")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "checkpoint file: restore engine state on boot, persist it on every publication and at shutdown")
	flag.StringVar(&cfg.method, "method", "entropy", "full re-solve estimator: entropy | bayes | vardi | fanout")
	flag.Float64Var(&cfg.reg, "reg", 1000, "regularization parameter for entropy/bayes re-solves")
	flag.Float64Var(&cfg.sigmaInv2, "sigma", 0.01, "sigma^-2 for vardi re-solves")
	flag.DurationVar(&cfg.pace, "pace", 100*time.Millisecond, "replay: wall-clock time per polling interval")
	flag.IntVar(&cfg.pollers, "pollers", 3, "live: distributed pollers")
	flag.Float64Var(&cfg.drop, "drop", 0.02, "live: per-datagram UDP loss probability")
	flag.Float64Var(&cfg.speed, "speed", 0.1, "live: simulated minutes per wall millisecond")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "tmserve: %v\n", err)
		os.Exit(1)
	}
}

// run wires scenario, measurement source, engine and HTTP server, and
// blocks until ctx is cancelled (clean shutdown, returns nil) or a
// component fails. Separated from main so the end-to-end test can drive
// the real daemon in-process.
func run(ctx context.Context, cfg config, out io.Writer) error {
	sc, err := loadScenario(cfg)
	if err != nil {
		return err
	}
	engine, err := stream.New(sc.Rt, stream.Config{
		Window:          cfg.window,
		MinCoverage:     cfg.minCoverage,
		ResolveEvery:    cfg.resolveEvery,
		ResolveMaxEvery: cfg.resolveMaxEvery,
		DriftThreshold:  cfg.driftThreshold,
		Method:          stream.Method(cfg.method),
		Reg:             cfg.reg,
		SigmaInv2:       cfg.sigmaInv2,
		// The daemon's engine is the store's only consumer, so consumed
		// intervals can be discarded — this is what keeps -cycles 0
		// (run forever) at bounded memory.
		PruneConsumed: true,
	})
	if err != nil {
		return err
	}
	if cfg.checkpoint != "" {
		switch cp, err := stream.LoadCheckpoint(cfg.checkpoint); {
		case err == nil:
			if err := engine.Restore(cp); err != nil {
				return fmt.Errorf("restore %s: %w", cfg.checkpoint, err)
			}
			if snap, ok := engine.Latest(); ok {
				fmt.Fprintf(out, "tmserve: restored checkpoint %s (version %d, interval %d) — serving it now\n",
					cfg.checkpoint, snap.Version, snap.Interval)
			}
		case errors.Is(err, os.ErrNotExist):
			// Fresh start; the persist loop will create the file.
		default:
			// A checkpoint that exists but cannot be read is an operator
			// problem (corruption, version skew): fail loudly rather than
			// silently discarding the state it was supposed to carry.
			return err
		}
	}

	cycles := cfg.cycles
	if cycles <= 0 {
		cycles = int(^uint(0) >> 1) // run until interrupted
	}
	var store *collector.Store
	var collect func(context.Context) error
	switch cfg.mode {
	case "replay":
		store = collector.NewStore(sc.Net.NumPairs())
		collect = func(ctx context.Context) error {
			return collector.Replay(ctx, store, sc.Series, cycles, cfg.pace)
		}
	case "live":
		d := collector.NewDeployment(sc.Net, sc.Series, collector.DeploymentConfig{
			Pollers:         cfg.pollers,
			DropProb:        cfg.drop,
			MinutesPerMilli: cfg.speed,
			StepMinutes:     sc.Series.Cfg.StepMinutes,
			Seed:            cfg.seed,
		})
		store = d.Store
		collect = func(ctx context.Context) error { return d.RunContext(ctx, cycles) }
	default:
		return fmt.Errorf("unknown -mode %q (replay or live)", cfg.mode)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "tmserve: %s scenario %s (%d PoPs, %d LSPs), %s mode, window %d, %s re-solve every %d\n",
		sc.Region, ln.Addr(), sc.Net.NumPoPs(), sc.Net.NumPairs(), cfg.mode, cfg.window, cfg.method, cfg.resolveEvery)
	if cfg.ready != nil {
		cfg.ready <- ln.Addr()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	fail := make(chan error, 2)

	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := engine.Run(runCtx, store); err != nil && !errors.Is(err, context.Canceled) {
			fail <- fmt.Errorf("engine: %w", err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := collect(runCtx); err != nil && !errors.Is(err, context.Canceled) {
			fail <- fmt.Errorf("collect: %w", err)
			return
		}
		fmt.Fprintf(out, "tmserve: collection finished; serving last snapshot until interrupted\n")
	}()
	if cfg.checkpoint != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			persistLoop(runCtx, engine, cfg.checkpoint, out)
		}()
	}

	srv := &http.Server{Handler: newHandler(runCtx, engine)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var runErr error
	select {
	case <-ctx.Done():
		runErr = ctx.Err()
	case err := <-fail:
		runErr = err
	case err := <-serveErr:
		runErr = err
	}
	cancel()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	_ = srv.Shutdown(shutCtx)
	wg.Wait()
	if cfg.checkpoint != "" {
		// Final save after the engine has fully stopped, so the file holds
		// the very last published state, not a mid-shutdown one.
		saveCheckpoint(engine, cfg.checkpoint, out)
	}
	return runErr
}

// persistLoop writes a checkpoint after every publication (long-polling
// the next version, so bursts coalesce into one save per loop turn) and
// once more when the daemon shuts down. A failed save is reported and
// retried on the next publication — persistence trouble must not take
// the estimation service down.
func persistLoop(ctx context.Context, engine *stream.Engine, path string, out io.Writer) {
	var seen uint64
	if snap, ok := engine.Latest(); ok {
		// Persist whatever is already published before waiting: with a
		// fast source the stream may have gone quiescent before this
		// loop started, and waiting for the *next* version would leave
		// the state unsaved until shutdown.
		seen = snap.Version
		saveCheckpoint(engine, path, out)
	}
	for {
		snap, err := engine.WaitVersion(ctx, seen+1)
		if err != nil {
			return // shutting down; run() does the final save
		}
		seen = snap.Version
		saveCheckpoint(engine, path, out)
	}
}

func saveCheckpoint(engine *stream.Engine, path string, out io.Writer) {
	if err := stream.SaveCheckpoint(path, engine.Checkpoint()); err != nil {
		fmt.Fprintf(out, "tmserve: checkpoint save: %v\n", err)
	}
}

func loadScenario(cfg config) (*netsim.Scenario, error) {
	if cfg.scenario != "" {
		return netsim.LoadFile(cfg.scenario)
	}
	switch cfg.region {
	case "europe":
		return netsim.BuildEurope(cfg.seed)
	case "america":
		return netsim.BuildAmerica(cfg.seed)
	}
	return nil, fmt.Errorf("unknown -region %q (europe or america)", cfg.region)
}

// newHandler builds the HTTP API over an engine. Long-polls abort when
// runCtx is cancelled, so active handlers never hold srv.Shutdown to
// its timeout during the daemon's graceful shutdown.
func newHandler(runCtx context.Context, e *stream.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := e.Latest()
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "have_snapshot": ok, "version": snap.Version})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if mv := r.URL.Query().Get("min_version"); mv != "" {
			min, err := strconv.ParseUint(mv, 10, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad min_version"})
				return
			}
			// Long poll, bounded so an abandoned stream cannot pin the
			// handler forever, and released early on daemon shutdown.
			ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
			defer cancel()
			defer context.AfterFunc(runCtx, cancel)()
			snap, err := e.WaitVersion(ctx, min)
			if err != nil {
				// Three distinct release causes, three distinct answers:
				// a vanished client gets nothing (writing a body to a
				// dead connection just burns a broken-pipe error), a
				// shutting-down daemon says so with 503, and only a
				// genuine bounded-wait expiry is the long-poll timeout
				// 504. The order matters — during shutdown the client
				// may well be gone too, and skipping the write wins.
				switch {
				case r.Context().Err() != nil:
					// Client disconnected (or its own deadline fired).
				case runCtx.Err() != nil:
					writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "daemon shutting down"})
				default:
					writeJSON(w, http.StatusGatewayTimeout, map[string]any{"error": "timed out waiting for version"})
				}
				return
			}
			writeJSON(w, http.StatusOK, snap)
			return
		}
		snap, ok := e.Latest()
		if !ok {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no snapshot yet"})
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"points": e.Metrics()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
