// Command tmserve is the continuous traffic-matrix estimation daemon: it
// drives one or many measurement sources through internal/stream engines
// and serves the evolving estimates over HTTP/JSON. In single-tenant
// mode (the default) the classic flags pick one scenario and one
// measurement source — a live simulated collector deployment (UDP
// agents, distributed pollers, TCP uploads; -mode live) or a
// deterministic replay of the scenario's demand series (-mode replay).
// In fleet mode (-fleet config.json) one process shards many tenants —
// named subnetworks built from the paper's two backbones, scenario-lab
// families or tmgen files — each with its own engine, store and
// checkpoint, while all tenants' full re-solves are multiplexed onto one
// shared worker pool (-parallel) with round-robin fairness
// (internal/fleet). Single-tenant mode is just a one-tenant fleet, so
// the two modes behave identically where they overlap.
//
// In cluster mode a fleet is sharded across processes: every process
// reads the same cluster config (-cluster cluster.json) and runs either
// as a member node (-node <name>) hosting the tenants the config
// assigns to it, syncing standby checkpoints and answering adoption
// requests, or as the coordinator (-coordinator) — the fleet-wide
// front door that aggregates /v1/tenants across nodes, proxies (or 307
// redirects, routing "redirect") tenant reads to the owning node, and
// promotes standbys via checkpoint handoff when an owner fails health
// probes (internal/cluster; see docs/API.md and README "Running a
// cluster").
//
// After every consumed polling interval an engine refreshes its
// incremental gravity estimate; every -resolve-every intervals it
// schedules a full re-solve (-method entropy|bayes|vardi|fanout),
// warm-started from the previously published estimate, with an
// optionally adaptive cadence (-drift-threshold, -resolve-max-every;
// -drift-threshold requires re-solves to be enabled and tmserve rejects
// the combination with -resolve-every 0 at startup).
//
// With -checkpoint (single-tenant file) or -checkpoint-dir (one file
// per tenant) the daemon is crash-safe: engine state is restored on
// boot — a restarted daemon serves its last snapshots immediately
// instead of going dark while collectors refill — and persisted
// atomically on every publication and at shutdown.
//
// The HTTP surface (internal/serve) is a cached fan-out read path:
// every publication is encoded exactly once and shared by all clients,
// consecutive versions are delta encoded, and all long-polls and SSE
// subscribers multiplex off one observation loop per tenant, bounded by
// -max-waiters (excess clients get 429 + Retry-After).
//
// Endpoints (see docs/API.md):
//
//	GET /v1/tenants            every tenant's status + serving stats
//	GET /v1/t/{name}/snapshot  latest snapshot; ETag/If-None-Match
//	                           conditional gets, ?min_version=N
//	                           long-poll, delta responses via
//	                           Accept: application/vnd.tmserve.delta+json
//	GET /v1/t/{name}/events    SSE stream of versions + deltas
//	GET /v1/t/{name}/metrics   tenant's estimation-error history
//	GET /healthz               liveness plus per-tenant state
//	GET /tenants               every tenant's status (name, state, version)
//	GET /t/{name}/snapshot     tenant's latest versioned snapshot;
//	                           ?min_version=N long-polls until version N
//	GET /t/{name}/metrics      tenant's estimation-error history
//	GET /snapshot              single-tenant alias of /t/default/snapshot
//	GET /metrics               single-tenant alias of /t/default/metrics
//	GET /metrics/prom          Prometheus text-format telemetry: resolve
//	                           latency/iteration histograms, drift and
//	                           anomaly gauges, SLO degradation, serving
//	                           counters (docs/METRICS.md)
//
// Per-tenant SLO thresholds (-slo-max-drift, -slo-max-resolve-mre,
// -slo-max-ckpt-age; per tenant in fleet configs) mark a tenant
// degraded with a named cause on /healthz — the HTTP status stays 200,
// degradation is an operator signal, not a failover trigger — and the
// drift-anomaly detector (-anomaly-factor) raises tm_anomaly_active
// when window drift spikes past its rolling baseline.
//
// The daemon keeps serving after collections finish and shuts down
// gracefully on SIGINT/SIGTERM via the usual context plumbing.
//
// Usage:
//
//	tmserve -region europe -cycles 24 -window 6 -resolve-every 3
//	tmserve -scenario europe.json -mode replay -pace 200ms
//	tmserve -mode live -pollers 3 -drop 0.02 -speed 0.1
//	tmserve -checkpoint tm.ckpt -drift-threshold 0.1 -resolve-max-every 12
//	tmserve -timeline examples/timelines/failure_reroute.json -pace 50ms
//	tmserve -fleet fleet.json -checkpoint-dir ckpt -parallel 8
//	tmserve -cluster cluster.json -node n1 -checkpoint-dir ckpt-n1
//	tmserve -cluster cluster.json -coordinator -addr :7080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/collector"
	"repro/internal/fleet"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve"
)

type config struct {
	addr     string
	region   string
	scenario string
	timeline string
	seed     int64
	mode     string
	cycles   int

	window          int
	minCoverage     float64
	resolveEvery    int
	resolveMaxEvery int
	driftThreshold  float64
	method          string
	reg             float64
	sigmaInv2       float64
	checkpoint      string

	sloMaxDrift      float64
	sloMaxResolveMRE float64
	sloMaxCkptAge    time.Duration
	anomalyFactor    float64

	fleetPath     string
	checkpointDir string
	parallel      int
	maxWaiters    int

	clusterPath string
	nodeName    string
	coordinator bool

	pace    time.Duration // replay
	pollers int           // live
	drop    float64       // live
	speed   float64       // live

	// ready, when non-nil, receives the bound listen address once the
	// HTTP server is up (used by the end-to-end test with -addr :0).
	ready chan<- net.Addr

	// set records which flags appeared on the command line (flag.Visit),
	// so validate can reject single-tenant flags that -fleet would
	// silently ignore. Nil (as in the in-process tests, which fill the
	// struct directly) disables that check.
	set map[string]bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7080", "HTTP listen address")
	flag.StringVar(&cfg.region, "region", "europe", "scenario to simulate: europe or america")
	flag.StringVar(&cfg.scenario, "scenario", "", "scenario JSON produced by tmgen (overrides -region)")
	flag.StringVar(&cfg.timeline, "timeline", "", "timeline script JSON (internal/timeline): scripted demand events replayed with routing hot-swaps; overrides -region/-scenario, and -cycles then counts whole timeline passes")
	flag.Int64Var(&cfg.seed, "seed", 1, "scenario seed (ignored with -scenario)")
	flag.StringVar(&cfg.mode, "mode", "replay", "measurement source: replay (deterministic) or live (UDP/TCP pipeline)")
	flag.IntVar(&cfg.cycles, "cycles", 24, "polling intervals to collect; 0 = run until interrupted")
	flag.IntVar(&cfg.window, "window", 6, "sliding estimation window in intervals; 0 = expanding")
	flag.Float64Var(&cfg.minCoverage, "min-coverage", 0.9, "LSP coverage fraction required before a closed interval is used")
	flag.IntVar(&cfg.resolveEvery, "resolve-every", 3, "full re-solve every N intervals; 0 = incremental gravity only")
	flag.IntVar(&cfg.resolveMaxEvery, "resolve-max-every", 0, "adaptive cadence cap: steady windows back the cadence off up to this (needs -drift-threshold; 0 = fixed cadence)")
	flag.Float64Var(&cfg.driftThreshold, "drift-threshold", 0, "window drift (relative L1 between consecutive window means) that triggers an immediate re-solve; 0 = fixed cadence; requires -resolve-every > 0")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "checkpoint file: restore engine state on boot, persist it on every publication and at shutdown")
	flag.Float64Var(&cfg.sloMaxDrift, "slo-max-drift", 0, "SLO: window drift beyond this marks the tenant degraded on /healthz and tm_tenant_degraded; 0 = no threshold")
	flag.Float64Var(&cfg.sloMaxResolveMRE, "slo-max-resolve-mre", 0, "SLO: re-solve error (MRE against the window mean) beyond this marks the tenant degraded; 0 = no threshold")
	flag.DurationVar(&cfg.sloMaxCkptAge, "slo-max-ckpt-age", 0, "SLO: a last successful checkpoint save older than this marks the tenant degraded (needs -checkpoint); 0 = no threshold")
	flag.Float64Var(&cfg.anomalyFactor, "anomaly-factor", 0, "drift-anomaly detector: flag the tenant when window drift exceeds this factor times its rolling baseline (tm_anomaly_active); 0 = detector off")
	flag.StringVar(&cfg.fleetPath, "fleet", "", "fleet config JSON declaring many tenants (multi-tenant mode; replay sources only)")
	flag.StringVar(&cfg.clusterPath, "cluster", "", "cluster config JSON sharding a fleet across processes; combine with exactly one of -node or -coordinator")
	flag.StringVar(&cfg.nodeName, "node", "", "run as the named cluster member: host the tenants -cluster assigns to it (requires -checkpoint-dir)")
	flag.BoolVar(&cfg.coordinator, "coordinator", false, "run as the cluster's front door: aggregate /v1/tenants, route tenant reads to owning nodes, fail over via checkpoint handoff")
	flag.StringVar(&cfg.checkpointDir, "checkpoint-dir", "", "per-tenant checkpoint directory: each tenant restores from and persists to <dir>/<name>.ckpt")
	flag.IntVar(&cfg.parallel, "parallel", 0, "shared re-solve worker pool size across all tenants; 0 = GOMAXPROCS")
	flag.IntVar(&cfg.maxWaiters, "max-waiters", 0, "per-tenant cap on concurrent long-poll waiters + SSE subscribers, 429 beyond it; 0 = 65536 (tenant specs can override per tenant)")
	flag.StringVar(&cfg.method, "method", "entropy", "full re-solve estimator: entropy | bayes | vardi | fanout")
	flag.Float64Var(&cfg.reg, "reg", 1000, "regularization parameter for entropy/bayes re-solves")
	flag.Float64Var(&cfg.sigmaInv2, "sigma", 0.01, "sigma^-2 for vardi re-solves")
	flag.DurationVar(&cfg.pace, "pace", 100*time.Millisecond, "replay: wall-clock time per polling interval")
	flag.IntVar(&cfg.pollers, "pollers", 3, "live: distributed pollers")
	flag.Float64Var(&cfg.drop, "drop", 0.02, "live: per-datagram UDP loss probability")
	flag.Float64Var(&cfg.speed, "speed", 0.1, "live: simulated minutes per wall millisecond")
	flag.Parse()
	cfg.set = make(map[string]bool)
	flag.Visit(func(fl *flag.Flag) { cfg.set[fl.Name] = true })

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "tmserve: %v\n", err)
		os.Exit(1)
	}
}

// validate rejects flag combinations that would otherwise be silently
// ignored or fail deep inside engine construction with a message that
// names no flag. It runs before any scenario is built, so a bad command
// line fails in milliseconds, not after a 100-PoP topology generation.
func (cfg config) validate() error {
	if cfg.driftThreshold < 0 {
		return fmt.Errorf("-drift-threshold %v is negative", cfg.driftThreshold)
	}
	if cfg.maxWaiters < 0 {
		return fmt.Errorf("-max-waiters %d is negative", cfg.maxWaiters)
	}
	if cfg.sloMaxDrift < 0 || cfg.sloMaxResolveMRE < 0 || cfg.sloMaxCkptAge < 0 {
		return fmt.Errorf("SLO thresholds (-slo-max-drift, -slo-max-resolve-mre, -slo-max-ckpt-age) cannot be negative")
	}
	if cfg.anomalyFactor < 0 {
		return fmt.Errorf("-anomaly-factor %v is negative", cfg.anomalyFactor)
	}
	if cfg.sloMaxCkptAge > 0 && cfg.checkpoint == "" && cfg.checkpointDir == "" {
		return fmt.Errorf("-slo-max-ckpt-age watches checkpoint persistence: set -checkpoint (or -checkpoint-dir)")
	}
	if cfg.driftThreshold > 0 && cfg.resolveEvery <= 0 {
		return fmt.Errorf("-drift-threshold %v requires full re-solves: set -resolve-every > 0 (drift can only trigger a re-solve that is enabled)", cfg.driftThreshold)
	}
	if cfg.resolveMaxEvery > cfg.resolveEvery && cfg.driftThreshold == 0 {
		return fmt.Errorf("-resolve-max-every %d backs the cadence off only on a drift signal: set -drift-threshold > 0", cfg.resolveMaxEvery)
	}
	if (cfg.nodeName != "" || cfg.coordinator) && cfg.clusterPath == "" {
		return fmt.Errorf("-node and -coordinator pick a role within a cluster; both require -cluster <config>")
	}
	if cfg.clusterPath != "" {
		switch {
		case cfg.fleetPath != "":
			return fmt.Errorf("-cluster and -fleet are mutually exclusive: a cluster config already declares the tenants")
		case cfg.nodeName != "" && cfg.coordinator:
			return fmt.Errorf("-node and -coordinator are mutually exclusive: a process is one or the other")
		case cfg.nodeName == "" && !cfg.coordinator:
			return fmt.Errorf("-cluster needs a role: -node <name> to host tenants or -coordinator to front the cluster")
		case cfg.checkpoint != "":
			return fmt.Errorf("-checkpoint is single-tenant only; cluster nodes use -checkpoint-dir")
		}
		if cfg.coordinator && cfg.checkpointDir != "" {
			return fmt.Errorf("-checkpoint-dir is for nodes hosting engines; the coordinator holds no tenant state")
		}
		if cfg.nodeName != "" && cfg.checkpointDir == "" {
			return fmt.Errorf("-node requires -checkpoint-dir: checkpoint handoff and standby sync persist there")
		}
	}
	if cfg.fleetPath != "" || cfg.clusterPath != "" {
		multi := "-fleet"
		if cfg.clusterPath != "" {
			multi = "-cluster"
		}
		if cfg.mode == "live" {
			return fmt.Errorf("%s tenants are deterministic replays; -mode live is single-tenant only", multi)
		}
		if cfg.checkpoint != "" {
			return fmt.Errorf("-checkpoint is single-tenant only; with %s use -checkpoint-dir", multi)
		}
		// Every other single-tenant flag is superseded by the tenant
		// specs: passing one alongside -fleet/-cluster would be silently
		// ignored, which is exactly the class of mistake validate exists
		// to catch.
		for _, name := range []string{
			"region", "scenario", "timeline", "seed", "mode", "cycles", "window",
			"min-coverage", "resolve-every", "resolve-max-every",
			"drift-threshold", "method", "reg", "sigma", "pace",
			"pollers", "drop", "speed",
			"slo-max-drift", "slo-max-resolve-mre", "slo-max-ckpt-age",
			"anomaly-factor",
		} {
			if cfg.set[name] {
				return fmt.Errorf("-%s is single-tenant only and ignored with %s; set it per tenant in the %s config", name, multi, multi[1:])
			}
		}
	}
	if cfg.timeline != "" && cfg.mode == "live" {
		return fmt.Errorf("-timeline is a deterministic scripted replay; -mode live cannot drive it")
	}
	if cfg.checkpoint != "" && cfg.checkpointDir != "" {
		return fmt.Errorf("-checkpoint and -checkpoint-dir are mutually exclusive")
	}
	return nil
}

// singleTenantSpec maps the classic single-tenant flags onto a fleet
// tenant named "default", translating the flags' "0 means off"
// sentinels to the spec's "-1 means off" (0 is "use the default" there).
func singleTenantSpec(cfg config) (fleet.TenantSpec, error) {
	spec := fleet.TenantSpec{
		Name:            "default",
		Seed:            cfg.seed,
		Pace:            cfg.pace.String(),
		ResolveMaxEvery: cfg.resolveMaxEvery,
		DriftThreshold:  cfg.driftThreshold,
		Method:          cfg.method,
		Reg:             cfg.reg,
		SigmaInv2:       cfg.sigmaInv2,
		Checkpoint:      cfg.checkpoint,

		SLOMaxDrift:      cfg.sloMaxDrift,
		SLOMaxResolveMRE: cfg.sloMaxResolveMRE,
		AnomalyFactor:    cfg.anomalyFactor,
	}
	if cfg.sloMaxCkptAge > 0 {
		spec.SLOMaxCheckpointAge = cfg.sloMaxCkptAge.String()
	}
	switch {
	case cfg.timeline != "":
		spec.Source = "scenario:script:" + cfg.timeline
	case cfg.scenario != "":
		spec.Source = "file:" + cfg.scenario
	case cfg.region == "europe" || cfg.region == "america":
		spec.Source = cfg.region
	default:
		return spec, fmt.Errorf("unknown -region %q (europe or america)", cfg.region)
	}
	if cfg.cycles <= 0 {
		spec.Cycles = -1 // run until interrupted
	} else {
		spec.Cycles = cfg.cycles
	}
	if cfg.window <= 0 {
		spec.Window = -1 // expanding
	} else {
		spec.Window = cfg.window
	}
	if cfg.resolveEvery <= 0 {
		spec.ResolveEvery = -1 // incremental gravity only
	} else {
		spec.ResolveEvery = cfg.resolveEvery
	}
	if cfg.minCoverage <= 0 {
		spec.MinCoverage = 1 // the stream default: full coverage required
	} else {
		spec.MinCoverage = cfg.minCoverage
	}
	return spec, nil
}

// run wires tenants, measurement sources, the shared re-solve pool and
// the HTTP server, and blocks until ctx is cancelled (clean shutdown,
// returns nil) or a component fails. Separated from main so the
// end-to-end tests can drive the real daemon in-process.
func run(ctx context.Context, cfg config, out io.Writer) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.clusterPath != "" {
		cc, err := cluster.Load(cfg.clusterPath)
		if err != nil {
			return err
		}
		if cfg.coordinator {
			return runCoordinator(ctx, cc, cfg, out)
		}
		return runClusterNode(ctx, cc, cfg, out)
	}
	// One registry carries the whole daemon's telemetry: the fleet's
	// estimation/SLO families and the server's serving families land on
	// the same GET /metrics/prom scrape.
	reg := obs.NewRegistry()
	f := fleet.New(runner.NewPool(cfg.parallel), fleet.Options{
		CheckpointDir: cfg.checkpointDir,
		Metrics:       reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, "tmserve: "+format+"\n", args...)
		},
	})
	single := cfg.fleetPath == ""
	if single {
		spec, err := singleTenantSpec(cfg)
		if err != nil {
			return err
		}
		if cfg.timeline != "" {
			// A scripted timeline builds its own compiled replay feed and
			// arms the scripted routing hot-swaps; Fleet.Add owns that
			// wiring (the same path a scenario:script fleet tenant takes).
			if _, err := f.Add(spec); err != nil {
				return err
			}
		} else if err := addClassicTenant(f, cfg, spec); err != nil {
			return err
		}
	} else {
		fc, err := fleet.LoadConfig(cfg.fleetPath)
		if err != nil {
			return err
		}
		for _, spec := range fc.Tenants {
			if _, err := f.Add(spec); err != nil {
				return err
			}
		}
	}
	if _, err := f.RestoreAll(); err != nil {
		return err
	}

	return serveFleet(ctx, f, cfg, nil, reg, out)
}

// runClusterNode boots one cluster member: a fleet holding only the
// tenants the shared config assigns to this node (possibly none — a
// pure standby), wrapped in the cluster runtime that syncs standby
// checkpoints and answers the coordinator's adoption requests.
func runClusterNode(ctx context.Context, cc cluster.Config, cfg config, out io.Writer) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(out, "tmserve: "+format+"\n", args...)
	}
	reg := obs.NewRegistry()
	f := fleet.New(runner.NewPool(cfg.parallel), fleet.Options{
		CheckpointDir: cfg.checkpointDir,
		AllowEmpty:    true, // standby nodes start with zero tenants
		Metrics:       reg,
		Logf:          logf,
	})
	for _, spec := range cc.OwnedBy(cfg.nodeName) {
		if _, err := f.Add(spec); err != nil {
			return err
		}
	}
	node, err := cluster.NewNode(cc, cfg.nodeName, f, cfg.checkpointDir, nil, logf)
	if err != nil {
		return err
	}
	if _, err := f.RestoreAll(); err != nil {
		return err
	}
	fmt.Fprintf(out, "tmserve: cluster node %s: hosting %d tenant(s), standby for %d\n",
		cfg.nodeName, len(cc.OwnedBy(cfg.nodeName)), len(cc.StandbyOn(cfg.nodeName)))
	return serveFleet(ctx, f, cfg, node, reg, out)
}

// runCoordinator boots the cluster's front door: no engines, no
// checkpoints — just the routing brain (health probes, failover,
// migration) and the HTTP surface that fans /v1/tenants out across
// members and forwards tenant reads to their owners.
func runCoordinator(ctx context.Context, cc cluster.Config, cfg config, out io.Writer) error {
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	co := cluster.NewCoordinator(cc, nil, func(format string, args ...any) {
		fmt.Fprintf(out, "tmserve: "+format+"\n", args...)
	})
	style := "proxying"
	if cc.Redirect() {
		style = "redirecting"
	}
	fmt.Fprintf(out, "tmserve: coordinator on %s: %d node(s), %d tenant(s), %s tenant reads\n",
		ln.Addr(), len(cc.Nodes), len(cc.Tenants), style)
	if cfg.ready != nil {
		cfg.ready <- ln.Addr()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go co.Run(runCtx)
	srv := &http.Server{Handler: serve.NewCoordinator(co, nil).Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var runErr error
	select {
	case <-ctx.Done():
		runErr = ctx.Err()
	case err := <-serveErr:
		runErr = err
	}
	cancel()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	_ = srv.Shutdown(shutCtx)
	return runErr
}

// addClassicTenant feeds the single tenant exactly as the pre-fleet
// daemon was: loadScenario keeps the legacy flag semantics to the
// letter (-seed 0 really is seed 0, unlike a JSON spec where 0 means
// "default"), and the feed is built from the flags directly.
func addClassicTenant(f *fleet.Fleet, cfg config, spec fleet.TenantSpec) error {
	sc, err := loadScenario(cfg)
	if err != nil {
		return err
	}
	cycles := cfg.cycles
	if cycles <= 0 {
		cycles = int(^uint(0) >> 1) // run until interrupted
	}
	var feed fleet.Feed
	switch cfg.mode {
	case "live":
		d := collector.NewDeployment(sc.Net, sc.Series, collector.DeploymentConfig{
			Pollers:         cfg.pollers,
			DropProb:        cfg.drop,
			MinutesPerMilli: cfg.speed,
			StepMinutes:     sc.Series.Cfg.StepMinutes,
			Seed:            cfg.seed,
		})
		feed = fleet.Feed{
			Store:   d.Store,
			Collect: func(ctx context.Context) error { return d.RunContext(ctx, cycles) },
		}
	case "replay":
		store := collector.NewStore(sc.Net.NumPairs())
		feed = fleet.Feed{
			Store: store,
			Collect: func(ctx context.Context) error {
				return collector.Replay(ctx, store, sc.Series, cycles, cfg.pace)
			},
		}
	default:
		return fmt.Errorf("unknown -mode %q (replay or live)", cfg.mode)
	}
	_, err = f.AddFeed(spec, sc, feed)
	return err
}

// serveFleet binds the HTTP server over a fully declared (and possibly
// restored) fleet and blocks until ctx is done. node is non-nil only in
// cluster mode: it runs the standby sync loops and unlocks the
// cluster-only endpoints (checkpoint export, adoption).
func serveFleet(ctx context.Context, f *fleet.Fleet, cfg config, node *cluster.Node, reg *obs.Registry, out io.Writer) error {
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	for _, t := range f.Tenants() {
		sc := t.Scenario()
		fmt.Fprintf(out, "tmserve: tenant %s: %s (%d PoPs, %d LSPs), %s re-solves\n",
			t.Name(), sc.Region, sc.Net.NumPoPs(), sc.Net.NumPairs(), t.Spec().Method)
	}
	fmt.Fprintf(out, "tmserve: serving %d tenant(s) on %s (%d shared re-solve workers)\n",
		len(f.Tenants()), ln.Addr(), f.Pool().Workers())
	if cfg.ready != nil {
		cfg.ready <- ln.Addr()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	fleetDone := make(chan error, 1)
	go func() { fleetDone <- f.Run(runCtx) }()
	// The typed-nil guard matters: assigning a nil *cluster.Node into
	// the interface directly would make Options.Node non-nil and turn
	// every single-process daemon into a phantom cluster member.
	var admin serve.NodeAdmin
	if node != nil {
		admin = node
		go node.Run(runCtx)
	}
	srv := &http.Server{Handler: serve.New(runCtx, f, serve.Options{
		Single:     cfg.fleetPath == "" && cfg.clusterPath == "",
		MaxWaiters: cfg.maxWaiters,
		Node:       admin,
		Metrics:    reg,
	}).Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var runErr error
	fleetStopped := false
	select {
	case <-ctx.Done():
		runErr = ctx.Err()
	case err := <-fleetDone:
		// The fleet exits early only on startup-grade failures (e.g. an
		// unwritable checkpoint directory); serving without estimation
		// would be lying to clients, so shut down.
		fleetStopped = true
		runErr = err
	case err := <-serveErr:
		runErr = err
	}
	cancel()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	_ = srv.Shutdown(shutCtx)
	if !fleetStopped {
		<-fleetDone // the fleet's final SaveAll has then completed
	}
	return runErr
}

func loadScenario(cfg config) (*netsim.Scenario, error) {
	if cfg.scenario != "" {
		return netsim.LoadFile(cfg.scenario)
	}
	switch cfg.region {
	case "europe":
		return netsim.BuildEurope(cfg.seed)
	case "america":
		return netsim.BuildAmerica(cfg.seed)
	}
	return nil, fmt.Errorf("unknown -region %q (europe or america)", cfg.region)
}

// newHandler builds the HTTP API over a fleet (internal/serve does the
// real work: per-tenant broadcast hubs, the cached/delta read path, the
// v1 surface and the byte-compatible legacy aliases). Long-polls abort
// when runCtx is cancelled, so active handlers never hold srv.Shutdown
// to its timeout during the daemon's graceful shutdown. Kept as the
// seam the end-to-end tests drive directly.
func newHandler(runCtx context.Context, f *fleet.Fleet, single bool) http.Handler {
	return serve.New(runCtx, f, serve.Options{Single: single}).Handler()
}
