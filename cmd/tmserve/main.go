// Command tmserve is the continuous traffic-matrix estimation daemon: it
// drives a measurement source — a live simulated collector deployment
// (UDP agents, distributed pollers, TCP uploads; -mode live) or a
// deterministic replay of the scenario's demand series (-mode replay) —
// through the internal/stream engine and serves the evolving estimate
// over HTTP/JSON. After every consumed polling interval the engine
// refreshes the incremental gravity estimate; every -resolve-every
// intervals it schedules a full re-solve (-method entropy|bayes|vardi|
// fanout) on a dedicated latest-wins worker, so a slow solve never
// delays ingestion.
//
// Endpoints:
//
//	GET /healthz   liveness plus the latest snapshot version
//	GET /snapshot  latest versioned snapshot (matrices + error metrics);
//	               ?min_version=N long-polls until version N exists
//	GET /metrics   estimation-error history (one point per publication)
//
// The daemon keeps serving after the collection finishes and shuts down
// gracefully on SIGINT/SIGTERM via the usual context plumbing.
//
// Usage:
//
//	tmserve -region europe -cycles 24 -window 6 -resolve-every 3
//	tmserve -scenario europe.json -mode replay -pace 200ms
//	tmserve -mode live -pollers 3 -drop 0.02 -speed 0.1
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/collector"
	"repro/internal/netsim"
	"repro/internal/stream"
)

type config struct {
	addr     string
	region   string
	scenario string
	seed     int64
	mode     string
	cycles   int

	window       int
	minCoverage  float64
	resolveEvery int
	method       string
	reg          float64
	sigmaInv2    float64

	pace    time.Duration // replay
	pollers int           // live
	drop    float64       // live
	speed   float64       // live

	// ready, when non-nil, receives the bound listen address once the
	// HTTP server is up (used by the end-to-end test with -addr :0).
	ready chan<- net.Addr
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7080", "HTTP listen address")
	flag.StringVar(&cfg.region, "region", "europe", "scenario to simulate: europe or america")
	flag.StringVar(&cfg.scenario, "scenario", "", "scenario JSON produced by tmgen (overrides -region)")
	flag.Int64Var(&cfg.seed, "seed", 1, "scenario seed (ignored with -scenario)")
	flag.StringVar(&cfg.mode, "mode", "replay", "measurement source: replay (deterministic) or live (UDP/TCP pipeline)")
	flag.IntVar(&cfg.cycles, "cycles", 24, "polling intervals to collect; 0 = run until interrupted")
	flag.IntVar(&cfg.window, "window", 6, "sliding estimation window in intervals; 0 = expanding")
	flag.Float64Var(&cfg.minCoverage, "min-coverage", 0.9, "LSP coverage fraction required before a closed interval is used")
	flag.IntVar(&cfg.resolveEvery, "resolve-every", 3, "full re-solve every N intervals; 0 = incremental gravity only")
	flag.StringVar(&cfg.method, "method", "entropy", "full re-solve estimator: entropy | bayes | vardi | fanout")
	flag.Float64Var(&cfg.reg, "reg", 1000, "regularization parameter for entropy/bayes re-solves")
	flag.Float64Var(&cfg.sigmaInv2, "sigma", 0.01, "sigma^-2 for vardi re-solves")
	flag.DurationVar(&cfg.pace, "pace", 100*time.Millisecond, "replay: wall-clock time per polling interval")
	flag.IntVar(&cfg.pollers, "pollers", 3, "live: distributed pollers")
	flag.Float64Var(&cfg.drop, "drop", 0.02, "live: per-datagram UDP loss probability")
	flag.Float64Var(&cfg.speed, "speed", 0.1, "live: simulated minutes per wall millisecond")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "tmserve: %v\n", err)
		os.Exit(1)
	}
}

// run wires scenario, measurement source, engine and HTTP server, and
// blocks until ctx is cancelled (clean shutdown, returns nil) or a
// component fails. Separated from main so the end-to-end test can drive
// the real daemon in-process.
func run(ctx context.Context, cfg config, out io.Writer) error {
	sc, err := loadScenario(cfg)
	if err != nil {
		return err
	}
	engine, err := stream.New(sc.Rt, stream.Config{
		Window:       cfg.window,
		MinCoverage:  cfg.minCoverage,
		ResolveEvery: cfg.resolveEvery,
		Method:       stream.Method(cfg.method),
		Reg:          cfg.reg,
		SigmaInv2:    cfg.sigmaInv2,
		// The daemon's engine is the store's only consumer, so consumed
		// intervals can be discarded — this is what keeps -cycles 0
		// (run forever) at bounded memory.
		PruneConsumed: true,
	})
	if err != nil {
		return err
	}

	cycles := cfg.cycles
	if cycles <= 0 {
		cycles = int(^uint(0) >> 1) // run until interrupted
	}
	var store *collector.Store
	var collect func(context.Context) error
	switch cfg.mode {
	case "replay":
		store = collector.NewStore(sc.Net.NumPairs())
		collect = func(ctx context.Context) error {
			return collector.Replay(ctx, store, sc.Series, cycles, cfg.pace)
		}
	case "live":
		d := collector.NewDeployment(sc.Net, sc.Series, collector.DeploymentConfig{
			Pollers:         cfg.pollers,
			DropProb:        cfg.drop,
			MinutesPerMilli: cfg.speed,
			StepMinutes:     sc.Series.Cfg.StepMinutes,
			Seed:            cfg.seed,
		})
		store = d.Store
		collect = func(ctx context.Context) error { return d.RunContext(ctx, cycles) }
	default:
		return fmt.Errorf("unknown -mode %q (replay or live)", cfg.mode)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "tmserve: %s scenario %s (%d PoPs, %d LSPs), %s mode, window %d, %s re-solve every %d\n",
		sc.Region, ln.Addr(), sc.Net.NumPoPs(), sc.Net.NumPairs(), cfg.mode, cfg.window, cfg.method, cfg.resolveEvery)
	if cfg.ready != nil {
		cfg.ready <- ln.Addr()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	fail := make(chan error, 2)

	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := engine.Run(runCtx, store); err != nil && !errors.Is(err, context.Canceled) {
			fail <- fmt.Errorf("engine: %w", err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := collect(runCtx); err != nil && !errors.Is(err, context.Canceled) {
			fail <- fmt.Errorf("collect: %w", err)
			return
		}
		fmt.Fprintf(out, "tmserve: collection finished; serving last snapshot until interrupted\n")
	}()

	srv := &http.Server{Handler: newHandler(runCtx, engine)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var runErr error
	select {
	case <-ctx.Done():
		runErr = ctx.Err()
	case err := <-fail:
		runErr = err
	case err := <-serveErr:
		runErr = err
	}
	cancel()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	_ = srv.Shutdown(shutCtx)
	wg.Wait()
	return runErr
}

func loadScenario(cfg config) (*netsim.Scenario, error) {
	if cfg.scenario != "" {
		return netsim.LoadFile(cfg.scenario)
	}
	switch cfg.region {
	case "europe":
		return netsim.BuildEurope(cfg.seed)
	case "america":
		return netsim.BuildAmerica(cfg.seed)
	}
	return nil, fmt.Errorf("unknown -region %q (europe or america)", cfg.region)
}

// newHandler builds the HTTP API over an engine. Long-polls abort when
// runCtx is cancelled, so active handlers never hold srv.Shutdown to
// its timeout during the daemon's graceful shutdown.
func newHandler(runCtx context.Context, e *stream.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := e.Latest()
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "have_snapshot": ok, "version": snap.Version})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if mv := r.URL.Query().Get("min_version"); mv != "" {
			min, err := strconv.ParseUint(mv, 10, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad min_version"})
				return
			}
			// Long poll, bounded so an abandoned stream cannot pin the
			// handler forever, and released early on daemon shutdown.
			ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
			defer cancel()
			defer context.AfterFunc(runCtx, cancel)()
			snap, err := e.WaitVersion(ctx, min)
			if err != nil {
				writeJSON(w, http.StatusGatewayTimeout, map[string]any{"error": err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, snap)
			return
		}
		snap, ok := e.Latest()
		if !ok {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no snapshot yet"})
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"points": e.Metrics()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
