package main

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/stream"
)

// TestEndToEndTimeline drives the committed failure+reroute script
// under the real daemon: the served snapshot must ride through the
// scripted link failure (epoch 1) and restoration (epoch 2) with warm
// re-solves, and the status and metrics surfaces must expose the
// advancing topology epoch.
func TestEndToEndTimeline(t *testing.T) {
	base, shutdown := startServer(t, config{
		timeline: "../../examples/timelines/failure_reroute.json",
		seed:     1, mode: "replay", cycles: 1,
		window: 6, minCoverage: 0.9, resolveEvery: 3,
		method: "entropy", reg: 1000, sigmaInv2: 0.01,
		pace: 5 * time.Millisecond,
	})
	defer shutdown()

	// The script is 30 intervals with the restore at 20: wait for the
	// final interval's re-solve on the restored topology.
	deadline := time.Now().Add(time.Minute)
	var final stream.Snapshot
	for {
		getJSON(t, base+"/v1/t/default/snapshot", &final)
		if final.Interval == 29 && final.Resolve != nil && final.ResolveInterval == 29 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeline never finished: interval %d epoch %d resolve@%d",
				final.Interval, final.TopologyEpoch, final.ResolveInterval)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.TopologyEpoch != 2 {
		t.Fatalf("final snapshot on epoch %d, want 2 (failed link restored)", final.TopologyEpoch)
	}
	if !final.ResolveWarm {
		t.Fatal("final re-solve cold; hot-swaps should have preserved the warm start")
	}

	// The metric history must show the epoch advancing 0 -> 1 -> 2 as
	// the scripted failure and restoration hit.
	var m struct {
		Points []stream.MetricPoint `json:"points"`
	}
	getJSON(t, base+"/v1/t/default/metrics", &m)
	epochs := map[int]bool{}
	prev := 0
	for _, p := range m.Points {
		if p.TopologyEpoch < prev {
			t.Fatalf("topology epoch regressed %d -> %d at interval %d", prev, p.TopologyEpoch, p.Interval)
		}
		prev = p.TopologyEpoch
		epochs[p.TopologyEpoch] = true
	}
	for ep := 0; ep <= 2; ep++ {
		if !epochs[ep] {
			t.Fatalf("metrics never served a point on epoch %d (saw %v)", ep, epochs)
		}
	}

	// The tenant status surface reports the epoch the engine is on.
	var statuses struct {
		Tenants []struct {
			Name          string `json:"name"`
			State         string `json:"state"`
			TopologyEpoch int    `json:"topology_epoch"`
		} `json:"tenants"`
	}
	if code := getJSON(t, base+"/tenants", &statuses); code != http.StatusOK {
		t.Fatalf("/tenants status %d", code)
	}
	if len(statuses.Tenants) != 1 || statuses.Tenants[0].TopologyEpoch != 2 {
		t.Fatalf("tenant status %+v, want the single script tenant on epoch 2", statuses.Tenants)
	}

	var health struct {
		OK bool `json:"ok"`
	}
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz code=%d ok=%v after a completed timeline", code, health.OK)
	}
}
