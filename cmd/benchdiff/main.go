// Command benchdiff gates benchmark regressions in CI: it parses the
// text output of `go test -bench` and compares each benchmark's ns/op
// against one or more JSON baselines (the BENCH_*.json files at the repo
// root, written by `make bench-baseline`), failing when any benchmark
// slowed down by more than the allowed factor.
//
// Baselines are searched in the order given; the first one containing a
// benchmark wins, so a PR baseline can layer new benchmarks on top of the
// seed baseline without copying it. Benchmarks absent from every baseline
// are reported as new and pass (their numbers enter the next baseline).
//
// Benchmarks whose baseline is below the -min-ns noise floor (default
// 1 ms) are reported but not gated: a 100-microsecond benchmark measured
// for one iteration jitters past any sane factor.
//
// When the input was produced with -benchmem, each benchmark's allocs/op
// is additionally gated at -alloc-factor (default 2x) against the
// baseline's allocs_per_op — allocation counts are deterministic where
// wall-clock is noisy, so this catches a pooled hot path quietly losing
// its buffer reuse. Baselines under -min-allocs (default 100) are shown
// but not alloc-gated.
//
// Usage:
//
//	go test -bench Scale -benchtime 1x -run '^$' . | tee bench.out
//	go run ./cmd/benchdiff -factor 2 -baseline BENCH_seed.json -baseline BENCH_pr3.json bench.out
//
// Reading from stdin (pipe directly):
//
//	go test -bench Scale -benchtime 1x -run '^$' . | go run ./cmd/benchdiff -baseline BENCH_seed.json -
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineEntry mirrors the schema written by `make bench-baseline`.
type baselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// multiFlag collects repeated -baseline arguments.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// benchLineRe matches e.g. "BenchmarkScaleEntropy100-8   1   2049837 ns/op".
var benchLineRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// allocsRe picks the -benchmem allocation count off a benchmark line,
// e.g. "... 407988 B/op  613 allocs/op". Absent without -benchmem.
var allocsRe = regexp.MustCompile(`\s([0-9.]+) allocs/op`)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	var baselines multiFlag
	fs.Var(&baselines, "baseline", "baseline JSON file (repeatable; first file containing a benchmark wins)")
	factor := fs.Float64("factor", 2.0, "maximum allowed ns/op slowdown factor vs baseline")
	minNs := fs.Float64("min-ns", 1e6, "noise floor: benchmarks whose baseline ns/op is below this are reported but not gated (single-iteration microbenchmarks jitter past any factor)")
	allocFactor := fs.Float64("alloc-factor", 2.0, "maximum allowed allocs/op growth factor vs baseline (gated only when the input was run with -benchmem)")
	minAllocs := fs.Float64("min-allocs", 100, "noise floor: benchmarks whose baseline allocs/op is below this are not alloc-gated (a handful of allocations doubles on scheduler whim)")
	fs.Parse(args)
	if len(baselines) == 0 {
		return fmt.Errorf("at least one -baseline file is required")
	}
	if *factor <= 1 {
		return fmt.Errorf("-factor must exceed 1, got %v", *factor)
	}
	if *allocFactor <= 1 {
		return fmt.Errorf("-alloc-factor must exceed 1, got %v", *allocFactor)
	}

	base := make(map[string]baselineEntry)
	for i := len(baselines) - 1; i >= 0; i-- {
		// Reverse order + overwrite implements first-file-wins.
		data, err := os.ReadFile(baselines[i])
		if err != nil {
			return err
		}
		var m map[string]baselineEntry
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("%s: %w", baselines[i], err)
		}
		for k, v := range m {
			base[k] = v
		}
	}

	in := os.Stdin
	if n := fs.NArg(); n > 1 {
		return fmt.Errorf("at most one input file, got %d", n)
	} else if n == 1 && fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var failures, compared, fresh int
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLineRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		cur, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("parsing %q: %w", sc.Text(), err)
		}
		b, ok := base[name]
		if !ok || b.NsPerOp <= 0 {
			fresh++
			fmt.Fprintf(out, "NEW   %-50s %14.0f ns/op (no baseline)\n", name, cur)
			continue
		}
		compared++
		ratio := cur / b.NsPerOp
		status := "ok"
		switch {
		case b.NsPerOp < *minNs:
			status = "fast" // below the noise floor: informational only
		case ratio > *factor:
			status = "FAIL"
		}
		line := fmt.Sprintf("%-50s %14.0f ns/op  baseline %14.0f  (%.2fx)",
			name, cur, b.NsPerOp, ratio)
		// Allocation gate: only when the input line carries -benchmem
		// counts and the baseline has a count above the alloc noise floor.
		if am := allocsRe.FindStringSubmatch(sc.Text()); am != nil && b.AllocsPerOp > 0 {
			curAllocs, err := strconv.ParseFloat(am[1], 64)
			if err != nil {
				return fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
			aRatio := curAllocs / b.AllocsPerOp
			line += fmt.Sprintf("  %8.0f allocs/op  baseline %8.0f  (%.2fx)", curAllocs, b.AllocsPerOp, aRatio)
			if b.AllocsPerOp >= *minAllocs && aRatio > *allocFactor {
				status = "FAIL"
			}
		}
		if status == "FAIL" {
			failures++
		}
		fmt.Fprintf(out, "%-5s %s\n", status, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if compared+fresh == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	fmt.Fprintf(out, "compared %d benchmarks (%d new) against %s, threshold %.2gx\n",
		compared, fresh, strings.Join(baselines, "+"), *factor)
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.2gx", failures, *factor)
	}
	return nil
}
