package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBenchdiff(t *testing.T) {
	dir := t.TempDir()
	seed := write(t, dir, "seed.json", `{
  "BenchmarkAlpha": {"ns_per_op": 1000, "bytes_per_op": 1, "allocs_per_op": 1},
  "BenchmarkBeta": {"ns_per_op": 500, "bytes_per_op": 1, "allocs_per_op": 1}
}`)
	layer := write(t, dir, "pr.json", `{
  "BenchmarkBeta": {"ns_per_op": 2000, "bytes_per_op": 1, "allocs_per_op": 1},
  "BenchmarkGamma": {"ns_per_op": 300, "bytes_per_op": 1, "allocs_per_op": 1}
}`)

	t.Run("pass-with-layering", func(t *testing.T) {
		// Beta at 900 ns/op: 1.8x vs the seed's 500 — but the first
		// baseline listed wins, and listing the seed first means 900/500
		// stays under 2x; Gamma only exists in the layered file.
		bench := write(t, dir, "ok.out", strings.Join([]string{
			"goos: linux",
			"BenchmarkAlpha-8   \t10\t1100 ns/op",
			"BenchmarkBeta-8    \t10\t900 ns/op",
			"BenchmarkGamma     \t10\t500 ns/op",
			"BenchmarkDelta-8   \t10\t999999 ns/op",
			"PASS",
		}, "\n"))
		var sb strings.Builder
		err := run([]string{"-baseline", seed, "-baseline", layer, "-min-ns", "0", bench}, &sb)
		if err != nil {
			t.Fatalf("want pass, got %v\n%s", err, sb.String())
		}
		out := sb.String()
		for _, want := range []string{"ok    BenchmarkAlpha", "ok    BenchmarkBeta", "ok    BenchmarkGamma", "NEW   BenchmarkDelta"} {
			if !strings.Contains(out, want) {
				t.Errorf("output lacks %q:\n%s", want, out)
			}
		}
	})

	t.Run("fail-on-regression", func(t *testing.T) {
		bench := write(t, dir, "bad.out", "BenchmarkAlpha-4\t1\t2500 ns/op\n")
		var sb strings.Builder
		err := run([]string{"-baseline", seed, "-min-ns", "0", bench}, &sb)
		if err == nil || !strings.Contains(err.Error(), "regressed") {
			t.Fatalf("want regression failure, got %v\n%s", err, sb.String())
		}
		if !strings.Contains(sb.String(), "FAIL  BenchmarkAlpha") {
			t.Errorf("output lacks FAIL line:\n%s", sb.String())
		}
	})

	t.Run("custom-factor", func(t *testing.T) {
		bench := write(t, dir, "factor.out", "BenchmarkAlpha-4\t1\t2500 ns/op\n")
		var sb strings.Builder
		if err := run([]string{"-baseline", seed, "-factor", "3", "-min-ns", "0", bench}, &sb); err != nil {
			t.Fatalf("2.5x must pass at -factor 3, got %v", err)
		}
	})

	t.Run("noise-floor", func(t *testing.T) {
		// A 2.5x blowup on a baseline below the floor is reported as
		// "fast" and does not fail the gate.
		bench := write(t, dir, "fast.out", "BenchmarkAlpha-4\t1\t2500 ns/op\n")
		var sb strings.Builder
		if err := run([]string{"-baseline", seed, bench}, &sb); err != nil {
			t.Fatalf("sub-floor benchmark must not gate, got %v\n%s", err, sb.String())
		}
		if !strings.Contains(sb.String(), "fast  BenchmarkAlpha") {
			t.Errorf("output lacks fast line:\n%s", sb.String())
		}
	})

	t.Run("fail-on-alloc-regression", func(t *testing.T) {
		// ns/op is fine (1.0x) but allocs/op tripled past the 2x gate.
		heavy := write(t, dir, "heavy.json", `{
  "BenchmarkAlpha": {"ns_per_op": 1000, "bytes_per_op": 4096, "allocs_per_op": 200}
}`)
		bench := write(t, dir, "allocbad.out", "BenchmarkAlpha-4\t1\t1000 ns/op\t9000 B/op\t600 allocs/op\n")
		var sb strings.Builder
		err := run([]string{"-baseline", heavy, "-min-ns", "0", bench}, &sb)
		if err == nil || !strings.Contains(err.Error(), "regressed") {
			t.Fatalf("want alloc regression failure, got %v\n%s", err, sb.String())
		}
		if !strings.Contains(sb.String(), "FAIL  BenchmarkAlpha") || !strings.Contains(sb.String(), "allocs/op") {
			t.Errorf("output lacks alloc FAIL line:\n%s", sb.String())
		}
	})

	t.Run("alloc-noise-floor", func(t *testing.T) {
		// The seed baseline has 1 alloc/op: below -min-allocs, a 600x blowup
		// is reported but not gated.
		bench := write(t, dir, "allocsmall.out", "BenchmarkAlpha-4\t1\t1000 ns/op\t9000 B/op\t600 allocs/op\n")
		var sb strings.Builder
		if err := run([]string{"-baseline", seed, "-min-ns", "0", bench}, &sb); err != nil {
			t.Fatalf("sub-floor alloc baseline must not gate, got %v\n%s", err, sb.String())
		}
	})

	t.Run("no-benchmem-no-alloc-gate", func(t *testing.T) {
		// Input without -benchmem columns never alloc-gates, whatever the
		// baseline says.
		heavy := write(t, dir, "heavy2.json", `{
  "BenchmarkAlpha": {"ns_per_op": 1000, "bytes_per_op": 4096, "allocs_per_op": 200}
}`)
		bench := write(t, dir, "noallocs.out", "BenchmarkAlpha-4\t1\t1000 ns/op\n")
		var sb strings.Builder
		if err := run([]string{"-baseline", heavy, "-min-ns", "0", bench}, &sb); err != nil {
			t.Fatalf("input without allocs column must not gate, got %v\n%s", err, sb.String())
		}
	})

	t.Run("no-bench-lines", func(t *testing.T) {
		bench := write(t, dir, "empty.out", "PASS\nok  repro 1.0s\n")
		var sb strings.Builder
		if err := run([]string{"-baseline", seed, bench}, &sb); err == nil {
			t.Fatal("want error on input without benchmark lines")
		}
	})

	t.Run("requires-baseline", func(t *testing.T) {
		var sb strings.Builder
		if err := run([]string{"-"}, &sb); err == nil {
			t.Fatal("want error without -baseline")
		}
	})

	t.Run("bad-baseline-json", func(t *testing.T) {
		garbage := write(t, dir, "garbage.json", "not json")
		var sb strings.Builder
		if err := run([]string{"-baseline", garbage, "-"}, &sb); err == nil {
			t.Fatal("want error on malformed baseline")
		}
	})
}
