package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/linalg"
	"repro/internal/serve"
	"repro/internal/stream"
)

func TestArrivalOffsets(t *testing.T) {
	const n = 100
	window := 4 * time.Second
	uniform := arrivalOffsets("uniform", n, window)
	burst := arrivalOffsets("burst", n, window)
	ramp := arrivalOffsets("ramp", n, window)
	for i := 0; i < n; i++ {
		if burst[i] != 0 {
			t.Fatalf("burst client %d delayed %v, want 0", i, burst[i])
		}
		want := time.Duration(float64(i) / n * float64(window))
		if uniform[i] != want {
			t.Fatalf("uniform client %d at %v, want %v", i, uniform[i], want)
		}
		// Ramp's linearly increasing rate means each client arrives no
		// earlier than under uniform spacing, inside the window.
		if ramp[i] < uniform[i] || ramp[i] > window {
			t.Fatalf("ramp client %d at %v (uniform %v, window %v)", i, ramp[i], uniform[i], window)
		}
		if i > 0 && (uniform[i] < uniform[i-1] || ramp[i] < ramp[i-1]) {
			t.Fatalf("offsets not monotone at client %d", i)
		}
	}
}

func TestPickFraction(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 1} {
		n, count := 1000, 0
		for i := 0; i < n; i++ {
			if pick(i, frac) {
				count++
			}
		}
		if want := int(frac * float64(n)); count != want {
			t.Fatalf("frac %v picked %d of %d, want %d", frac, count, n, want)
		}
	}
	// Interleaved, not clustered: at frac 1/4, every aligned window of 4
	// consecutive indices holds exactly one pick.
	for base := 0; base < 100; base += 4 {
		count := 0
		for i := base; i < base+4; i++ {
			if pick(i, 0.25) {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("window [%d,%d) holds %d picks, want 1", base, base+4, count)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram has a nonzero quantile")
	}
	// 99 samples at ~1ms and one at 100ms: p50 near 1ms, p99 must not
	// reach the outlier, max must be exact.
	for i := 0; i < 99; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)
	if p50 := h.Quantile(0.50); p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 %v far from 1ms", p50)
	}
	if p99 := h.Quantile(0.99); p99 > 2*time.Millisecond {
		t.Fatalf("p99 %v reached the outlier", p99)
	}
	if h.Quantile(1) != 100*time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("p100 %v / max %v, want 100ms", h.Quantile(1), h.Max())
	}
	// Merge preserves totals and the max.
	o := NewHist()
	o.Observe(200 * time.Millisecond)
	h.Merge(o)
	if h.total != 101 || h.Max() != 200*time.Millisecond {
		t.Fatalf("after merge: total %d max %v", h.total, h.Max())
	}
}

func TestConfigValidate(t *testing.T) {
	ok := config{url: "http://x", tenants: "default", clients: 1, duration: time.Second,
		pattern: "uniform", pollInterval: time.Millisecond}
	if err := ok.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []config{
		func(c config) config { c.pattern = "poisson"; return c }(ok),
		func(c config) config { c.clients = 0; return c }(ok),
		func(c config) config { c.duration = 0; return c }(ok),
		func(c config) config { c.sseFrac = 1.5; return c }(ok),
		func(c config) config { c.deltaFrac = -0.1; return c }(ok),
		func(c config) config { c.tenants = " "; return c }(ok),
		func(c config) config { c.maxRedirects = -1; return c }(ok),
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// stubSnapshot builds a small deterministic snapshot for the API stub.
func stubSnapshot(version uint64) stream.Snapshot {
	n := 6
	v := linalg.NewVector(n)
	for i := range v {
		v[i] = float64(version*10 + uint64(i))
	}
	return stream.Snapshot{
		Version: version, Interval: int(version), Window: 3,
		Gravity: v, Mean: v.Clone(), Fanouts: v.Clone(),
		GravityMRE: 0.1, Time: time.Unix(1700000000+int64(version), 0).UTC(),
	}
}

// stubAPI implements just enough of the v1 surface for tmload: full
// snapshots, If-None-Match 304s, ?since deltas, and an SSE stream. The
// served version flips from 1 to 2 at a fixed point into the test.
type stubAPI struct {
	t        *testing.T
	mu       sync.Mutex
	snaps    map[uint64]stream.Snapshot
	current  uint64
	advanced chan struct{} // closed when version 2 goes live
}

func newStubAPI(t *testing.T) *stubAPI {
	return &stubAPI{
		t:        t,
		snaps:    map[uint64]stream.Snapshot{1: stubSnapshot(1), 2: stubSnapshot(2)},
		current:  1,
		advanced: make(chan struct{}),
	}
}

func (s *stubAPI) advance() {
	s.mu.Lock()
	s.current = 2
	s.mu.Unlock()
	close(s.advanced)
}

func (s *stubAPI) latest() stream.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snaps[s.current]
}

func (s *stubAPI) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasSuffix(r.URL.Path, "/snapshot"):
		s.serveSnapshot(w, r)
	case strings.HasSuffix(r.URL.Path, "/events"):
		s.serveEvents(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *stubAPI) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.latest()
	etag := serve.ETag(snap.Version)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Snapshot-Version", fmt.Sprint(snap.Version))
	if since := r.URL.Query().Get("since"); since == "1" && snap.Version == 2 &&
		strings.Contains(r.Header.Get("Accept"), serve.DeltaMediaType) {
		step, err := json.Marshal(serve.ComputeDelta(s.snaps[1], s.snaps[2]))
		if err != nil {
			s.t.Error(err)
			return
		}
		w.Header().Set("Content-Type", serve.DeltaMediaType)
		doc := serve.DeltaDoc{Format: serve.DeltaFormat, From: 1, To: 2, Steps: []json.RawMessage{step}}
		_ = json.NewEncoder(w).Encode(doc)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(snap)
}

func (s *stubAPI) serveEvents(w http.ResponseWriter, r *http.Request) {
	fl := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "event: version\nid: 1\ndata: {\"version\":1}\n\n")
	fl.Flush()
	select {
	case <-s.advanced:
		fmt.Fprintf(w, "event: version\nid: 2\ndata: {\"version\":2}\n\n")
		fmt.Fprintf(w, "event: delta\nid: 2\ndata: {}\n\n")
		fl.Flush()
	case <-r.Context().Done():
		return
	}
	<-r.Context().Done()
}

// TestRunAgainstStub drives the full client population — conditional
// pollers, delta pollers and SSE subscribers — against the API stub and
// checks every traffic class flowed without a single error.
func TestRunAgainstStub(t *testing.T) {
	stub := newStubAPI(t)
	srv := httptest.NewServer(stub)
	defer srv.Close()
	go func() {
		time.Sleep(300 * time.Millisecond)
		stub.advance()
	}()
	res, err := run(context.Background(), config{
		url: srv.URL, tenants: "default", clients: 12, duration: 900 * time.Millisecond,
		pattern: "burst", pollInterval: 20 * time.Millisecond,
		sseFrac: 0.25, deltaFrac: 0.5,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d errors: %v", res.Errors, res.ErrorMsgs)
	}
	if res.Requests == 0 || res.OK == 0 {
		t.Fatalf("no successful requests: %+v", res)
	}
	if res.NotMod == 0 {
		t.Fatal("no 304s: conditional polling never hit the hot path")
	}
	if res.Deltas == 0 {
		t.Fatal("no delta responses were served and verified")
	}
	if res.SSEEvents == 0 {
		t.Fatal("no SSE events received")
	}
	if res.Hist.Quantile(0.99) == 0 {
		t.Fatal("no latency samples recorded")
	}
}

// TestFollowsCoordinatorRedirects drives the pollers through a stub
// coordinator that 307s every tenant read to the owning node, the way
// tmserve -coordinator does in redirect routing: reads succeed
// transparently, the redirects are counted, and the per-node tally
// shows traffic on both hosts.
func TestFollowsCoordinatorRedirects(t *testing.T) {
	stub := newStubAPI(t)
	node := httptest.NewServer(stub)
	defer node.Close()
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Tenant-Node", "n1")
		http.Redirect(w, r, node.URL+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	}))
	defer coord.Close()
	var buf strings.Builder
	res, err := run(context.Background(), config{
		url: coord.URL, tenants: "default", clients: 4, duration: 300 * time.Millisecond,
		pattern: "burst", pollInterval: 20 * time.Millisecond, maxRedirects: 5,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d errors through the redirecting coordinator: %v", res.Errors, res.ErrorMsgs)
	}
	if res.OK == 0 {
		t.Fatalf("no successful reads: %+v", res)
	}
	if res.Redirects == 0 {
		t.Fatalf("no redirects counted: %+v", res)
	}
	coordHost := strings.TrimPrefix(coord.URL, "http://")
	nodeHost := strings.TrimPrefix(node.URL, "http://")
	if res.PerNode[coordHost] == 0 || res.PerNode[nodeHost] == 0 {
		t.Fatalf("per-node tally missing a host: %v (coord %s, node %s)", res.PerNode, coordHost, nodeHost)
	}
	if !strings.Contains(buf.String(), "redirects followed; requests per node:") {
		t.Fatalf("summary does not report the redirect tally:\n%s", buf.String())
	}
}

// TestRedirectLoopDetected pins the guard rails: a coordinator stuck
// redirecting a request back to itself must surface as a counted
// client error naming the loop, not an infinite chain.
func TestRedirectLoopDetected(t *testing.T) {
	var srv *httptest.Server
	srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, srv.URL+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	}))
	defer srv.Close()
	res, err := run(context.Background(), config{
		url: srv.URL, tenants: "default", clients: 1, duration: 150 * time.Millisecond,
		pattern: "burst", pollInterval: 20 * time.Millisecond, maxRedirects: 5,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || len(res.ErrorMsgs) == 0 {
		t.Fatalf("redirect loop went unnoticed: %+v", res)
	}
	if !strings.Contains(res.ErrorMsgs[0], "redirect loop") {
		t.Fatalf("error %q does not name the loop", res.ErrorMsgs[0])
	}
}

// TestRunCountsServerErrors pins the failure accounting: a server
// answering 500 must surface as counted errors with messages, and run
// itself must not error (the caller decides the exit code).
func TestRunCountsServerErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	res, err := run(context.Background(), config{
		url: srv.URL, tenants: "default", clients: 3, duration: 200 * time.Millisecond,
		pattern: "uniform", pollInterval: 20 * time.Millisecond,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || len(res.ErrorMsgs) == 0 {
		t.Fatalf("server 500s were not counted: %+v", res)
	}
	if !strings.Contains(res.ErrorMsgs[0], "status 500") {
		t.Fatalf("error message %q does not carry the status", res.ErrorMsgs[0])
	}
}
