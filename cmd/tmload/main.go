// Command tmload is the load generator for tmserve's read path: it
// drives a mixed population of snapshot pollers and SSE subscribers
// against a running daemon and reports per-request latency quantiles,
// status mix and error counts, exiting non-zero on any error or a
// breached p99 bound — the shape the CI loadtest job asserts.
//
// Clients arrive over the first quarter of the run following -pattern:
//
//	uniform  evenly spaced arrivals
//	burst    everyone at once (the thundering-herd worst case)
//	ramp     linearly increasing arrival rate (t_i ∝ sqrt(i/n))
//
// A -sse-frac fraction of clients subscribe to /v1/t/{name}/events and
// count version/delta events; the rest poll /v1/t/{name}/snapshot every
// -poll-interval with If-None-Match conditional gets (mostly 304s — the
// cached hot path), and a -delta-frac fraction of those pollers request
// delta responses and verify them by applying each patch to their local
// snapshot, checking the version matches the X-Snapshot-Version header.
// Clients spread round-robin across -tenants.
//
// Pointing -url at a cluster coordinator (tmserve -coordinator) works
// in both routing modes: proxied reads look like a single daemon, and
// 307 redirects are followed transparently — bounded by -max-redirects
// and loop-detected — with the summary reporting how many redirects
// were followed and how requests spread across the nodes behind the
// coordinator.
//
// Usage:
//
//	tmload -url http://127.0.0.1:7080 -clients 200 -duration 10s
//	tmload -pattern burst -sse-frac 0.3 -max-p99 500ms -tenants eu,us
//	tmload -url http://coordinator:7080 -tenants eu,us -max-redirects 3
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/stream"
)

type config struct {
	url          string
	tenants      string
	clients      int
	duration     time.Duration
	pattern      string
	pollInterval time.Duration
	sseFrac      float64
	deltaFrac    float64
	maxP99       time.Duration
	maxRedirects int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.url, "url", "http://127.0.0.1:7080", "base URL of the tmserve daemon under load")
	flag.StringVar(&cfg.tenants, "tenants", "default", "comma-separated tenant names to spread clients across")
	flag.IntVar(&cfg.clients, "clients", 100, "concurrent clients")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to run")
	flag.StringVar(&cfg.pattern, "pattern", "uniform", "client arrival pattern: uniform | burst | ramp")
	flag.DurationVar(&cfg.pollInterval, "poll-interval", 100*time.Millisecond, "pollers: delay between conditional gets")
	flag.Float64Var(&cfg.sseFrac, "sse-frac", 0.25, "fraction of clients subscribing via SSE instead of polling")
	flag.Float64Var(&cfg.deltaFrac, "delta-frac", 0.5, "fraction of pollers requesting and verifying delta responses")
	flag.DurationVar(&cfg.maxP99, "max-p99", 0, "fail (exit 1) when p99 request latency exceeds this; 0 = no bound")
	flag.IntVar(&cfg.maxRedirects, "max-redirects", 5, "follow at most this many 307s per request (a coordinator in redirect mode answers one per read); 0 = fail on any redirect")
	flag.Parse()
	res, err := run(context.Background(), cfg, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmload: %v\n", err)
		os.Exit(1)
	}
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "tmload: %d request errors\n", res.Errors)
		os.Exit(1)
	}
	if cfg.maxP99 > 0 && res.Hist.Quantile(0.99) > cfg.maxP99 {
		fmt.Fprintf(os.Stderr, "tmload: p99 %v exceeds bound %v\n", res.Hist.Quantile(0.99), cfg.maxP99)
		os.Exit(1)
	}
}

func (cfg config) validate() error {
	switch cfg.pattern {
	case "uniform", "burst", "ramp":
	default:
		return fmt.Errorf("unknown -pattern %q (uniform, burst or ramp)", cfg.pattern)
	}
	if cfg.clients <= 0 {
		return fmt.Errorf("-clients %d must be positive", cfg.clients)
	}
	if cfg.duration <= 0 {
		return fmt.Errorf("-duration %v must be positive", cfg.duration)
	}
	if cfg.sseFrac < 0 || cfg.sseFrac > 1 {
		return fmt.Errorf("-sse-frac %v out of [0,1]", cfg.sseFrac)
	}
	if cfg.deltaFrac < 0 || cfg.deltaFrac > 1 {
		return fmt.Errorf("-delta-frac %v out of [0,1]", cfg.deltaFrac)
	}
	if strings.TrimSpace(cfg.tenants) == "" {
		return fmt.Errorf("-tenants is empty")
	}
	if cfg.maxRedirects < 0 {
		return fmt.Errorf("-max-redirects %d is negative", cfg.maxRedirects)
	}
	return nil
}

// arrivalOffsets computes each client's start delay within the arrival
// window. uniform spaces them evenly, burst starts everyone at zero,
// and ramp's linearly growing rate puts client i at window*sqrt(i/n)
// (the cumulative arrival fraction by time t is (t/window)^2).
func arrivalOffsets(pattern string, n int, window time.Duration) []time.Duration {
	offs := make([]time.Duration, n)
	for i := range offs {
		frac := float64(i) / float64(n)
		switch pattern {
		case "burst":
			frac = 0
		case "ramp":
			frac = math.Sqrt(frac)
		}
		offs[i] = time.Duration(frac * float64(window))
	}
	return offs
}

// pick reports whether index i belongs to the `frac` fraction of a
// population, interleaved (not clustered at the front) so arrival
// patterns mix client kinds: it is true when floor((i+1)f) > floor(if).
func pick(i int, frac float64) bool {
	return math.Floor(float64(i+1)*frac) > math.Floor(float64(i)*frac)
}

// Result aggregates one load run.
type Result struct {
	Clients   int
	Requests  uint64 // poller gets (any status) + SSE connects
	OK        uint64 // 200 full snapshots
	NotMod    uint64 // 304s (the conditional-get hot path)
	Deltas    uint64 // 200 delta documents, each verified by local apply
	SSEEvents uint64 // version/delta events received
	Errors    uint64
	ErrorMsgs []string // first few distinct error messages
	Hist      *Hist

	// Redirects counts 3xx hops the clients followed, and PerNode the
	// wire-level requests by host — one entry against a plain daemon or
	// a proxying coordinator, one per member node behind a redirecting
	// coordinator.
	Redirects uint64
	PerNode   map[string]uint64
}

// countingTransport observes every request actually put on the wire —
// including the intermediate hops that the redirect-following client
// hides from the caller — tallying requests per host and 3xx answers.
type countingTransport struct {
	base http.RoundTripper

	mu        sync.Mutex
	hosts     map[string]uint64
	redirects uint64
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	t.mu.Lock()
	t.hosts[req.URL.Host]++
	if resp.StatusCode >= 300 && resp.StatusCode < 400 && resp.Header.Get("Location") != "" {
		t.redirects++
	}
	t.mu.Unlock()
	return resp, nil
}

func (t *countingTransport) snapshot() (perNode map[string]uint64, redirects uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	perNode = make(map[string]uint64, len(t.hosts))
	for h, n := range t.hosts {
		perNode[h] = n
	}
	return perNode, t.redirects
}

// checkRedirect bounds and loop-detects redirect chains: a coordinator
// in redirect mode answers exactly one 307 per read, so a chain longer
// than -max-redirects — or one that revisits a URL — is a routing bug
// worth failing loudly on, not following forever.
func checkRedirect(max int) func(*http.Request, []*http.Request) error {
	return func(req *http.Request, via []*http.Request) error {
		if len(via) > max {
			return fmt.Errorf("stopped after %d redirects", max)
		}
		for _, v := range via {
			if v.URL.String() == req.URL.String() {
				return fmt.Errorf("redirect loop at %s", req.URL)
			}
		}
		return nil
	}
}

// run executes one load generation and prints the summary to out.
func run(ctx context.Context, cfg config, out io.Writer) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tenants := strings.Split(cfg.tenants, ",")
	for i := range tenants {
		tenants[i] = strings.TrimSpace(tenants[i])
	}
	transport := &http.Transport{MaxIdleConnsPerHost: cfg.clients + 8}
	counting := &countingTransport{base: transport, hosts: make(map[string]uint64)}
	client := &http.Client{Transport: counting, CheckRedirect: checkRedirect(cfg.maxRedirects)}
	defer transport.CloseIdleConnections()

	ctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	offsets := arrivalOffsets(cfg.pattern, cfg.clients, cfg.duration/4)

	results := make([]*clientResult, cfg.clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		results[i] = newClientResult()
		c := &loadClient{
			http:         client,
			base:         cfg.url,
			tenant:       tenants[i%len(tenants)],
			sse:          pick(i, cfg.sseFrac),
			delta:        pick(i, cfg.deltaFrac),
			pollInterval: cfg.pollInterval,
			res:          results[i],
		}
		wg.Add(1)
		go func(delay time.Duration) {
			defer wg.Done()
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return
			}
			c.run(ctx)
		}(offsets[i])
	}
	wg.Wait()

	res := &Result{Clients: cfg.clients, Hist: NewHist()}
	seen := map[string]bool{}
	for _, r := range results {
		res.Requests += r.requests
		res.OK += r.ok
		res.NotMod += r.notMod
		res.Deltas += r.deltas
		res.SSEEvents += r.sseEvents
		res.Errors += uint64(len(r.errs))
		for _, msg := range r.errs {
			if !seen[msg] && len(res.ErrorMsgs) < 5 {
				seen[msg] = true
				res.ErrorMsgs = append(res.ErrorMsgs, msg)
			}
		}
		res.Hist.Merge(r.hist)
	}
	res.PerNode, res.Redirects = counting.snapshot()
	fmt.Fprintf(out, "tmload: %d clients (%s arrivals, %.0f%% sse) against %s for %v\n",
		cfg.clients, cfg.pattern, cfg.sseFrac*100, cfg.url, cfg.duration)
	fmt.Fprintf(out, "tmload: %d requests: %d full, %d not-modified, %d delta, %d sse events, %d errors\n",
		res.Requests, res.OK, res.NotMod, res.Deltas, res.SSEEvents, res.Errors)
	if res.Redirects > 0 || len(res.PerNode) > 1 {
		nodes := make([]string, 0, len(res.PerNode))
		for h := range res.PerNode {
			nodes = append(nodes, h)
		}
		sort.Strings(nodes)
		parts := make([]string, len(nodes))
		for i, h := range nodes {
			parts[i] = fmt.Sprintf("%s=%d", h, res.PerNode[h])
		}
		fmt.Fprintf(out, "tmload: %d redirects followed; requests per node: %s\n",
			res.Redirects, strings.Join(parts, " "))
	}
	fmt.Fprintf(out, "tmload: latency p50=%v p90=%v p99=%v max=%v\n",
		res.Hist.Quantile(0.50), res.Hist.Quantile(0.90), res.Hist.Quantile(0.99), res.Hist.Max())
	for _, msg := range res.ErrorMsgs {
		fmt.Fprintf(out, "tmload: error: %s\n", msg)
	}
	return res, nil
}

// clientResult is one client's private counters, merged after the run
// (no shared atomics on the request path).
type clientResult struct {
	requests, ok, notMod, deltas, sseEvents uint64
	errs                                    []string
	hist                                    *Hist
}

func newClientResult() *clientResult { return &clientResult{hist: NewHist()} }

func (r *clientResult) fail(format string, args ...any) {
	if len(r.errs) < 100 { // bound memory under a persistent failure
		r.errs = append(r.errs, fmt.Sprintf(format, args...))
	} else {
		r.errs[99] = fmt.Sprintf(format, args...)
	}
}

type loadClient struct {
	http         *http.Client
	base         string
	tenant       string
	sse          bool
	delta        bool
	pollInterval time.Duration
	res          *clientResult

	// poller state: the last decoded snapshot (delta base) and its ETag.
	snap stream.Snapshot
	etag string
	have bool
}

func (c *loadClient) run(ctx context.Context) {
	if c.sse {
		c.runSSE(ctx)
		return
	}
	for ctx.Err() == nil {
		c.poll(ctx)
		select {
		case <-time.After(c.pollInterval):
		case <-ctx.Done():
			return
		}
	}
}

// poll issues one conditional (and possibly delta) snapshot get.
func (c *loadClient) poll(ctx context.Context) {
	url := fmt.Sprintf("%s/v1/t/%s/snapshot", c.base, c.tenant)
	if c.delta && c.have {
		url += "?since=" + strconv.FormatUint(c.snap.Version, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		c.res.fail("build request: %v", err)
		return
	}
	if c.etag != "" {
		req.Header.Set("If-None-Match", c.etag)
	}
	if c.delta {
		req.Header.Set("Accept", serve.DeltaMediaType+", application/json")
	}
	t0 := time.Now()
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // the run ended mid-request; not a server error
		}
		c.res.fail("GET %s: %v", url, err)
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	c.res.hist.Observe(time.Since(t0))
	c.res.requests++
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		c.res.fail("GET %s: read: %v", url, err)
		return
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotModified:
		c.res.notMod++
		return
	case http.StatusServiceUnavailable:
		return // no snapshot yet: the daemon is warming up, poll again
	default:
		c.res.fail("GET %s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
		return
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), serve.DeltaMediaType) {
		c.applyDelta(url, resp, body)
		return
	}
	var snap stream.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		c.res.fail("GET %s: decode snapshot: %v", url, err)
		return
	}
	c.snap, c.etag, c.have = snap, resp.Header.Get("ETag"), true
	c.res.ok++
}

// applyDelta verifies a delta response by applying each step to the
// client's local snapshot and checking the announced target version.
func (c *loadClient) applyDelta(url string, resp *http.Response, body []byte) {
	var doc serve.DeltaDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		c.res.fail("GET %s: decode delta doc: %v", url, err)
		return
	}
	snap := c.snap
	for _, step := range doc.Steps {
		d, err := serve.DecodeDelta(step)
		if err != nil {
			c.res.fail("GET %s: %v", url, err)
			return
		}
		snap, err = serve.Apply(snap, d)
		if err != nil {
			c.res.fail("GET %s: apply delta: %v", url, err)
			return
		}
	}
	if want := resp.Header.Get("X-Snapshot-Version"); want != strconv.FormatUint(snap.Version, 10) {
		c.res.fail("GET %s: delta chain ends at version %d, header says %s", url, snap.Version, want)
		return
	}
	c.snap, c.etag, c.have = snap, resp.Header.Get("ETag"), true
	c.res.deltas++
}

// runSSE subscribes to the tenant's event stream for the rest of the
// run, counting events; the latency sample is time-to-first-event.
func (c *loadClient) runSSE(ctx context.Context) {
	url := fmt.Sprintf("%s/v1/t/%s/events", c.base, c.tenant)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		c.res.fail("build request: %v", err)
		return
	}
	t0 := time.Now()
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.res.fail("GET %s: %v", url, err)
		}
		return
	}
	defer resp.Body.Close()
	c.res.requests++
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		c.res.fail("GET %s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
		return
	}
	first := true
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "event: ") {
			continue
		}
		if first {
			c.res.hist.Observe(time.Since(t0))
			first = false
		}
		c.res.sseEvents++
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		c.res.fail("GET %s: stream: %v", url, err)
	}
}

// Hist is a log-bucketed latency histogram: buckets grow by 25% from a
// 10µs floor, which bounds quantile error to ~12% — plenty for a load
// report — in a few hundred bytes.
type Hist struct {
	counts []uint64
	total  uint64
	max    time.Duration
}

const (
	histBase   = 10 * time.Microsecond
	histGrowth = 1.25
	histSlots  = 80 // histBase * 1.25^79 ≈ 600s, past any sane request
)

// NewHist creates an empty histogram.
func NewHist() *Hist { return &Hist{counts: make([]uint64, histSlots)} }

func histIndex(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	i := int(math.Log(float64(d)/float64(histBase)) / math.Log(histGrowth))
	if i >= histSlots {
		return histSlots - 1
	}
	return i
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	h.counts[histIndex(d)]++
	h.total++
	if d > h.max {
		h.max = d
	}
}

// Merge folds another histogram into this one.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// sample (0 when the histogram is empty).
func (h *Hist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			upper := float64(histBase) * math.Pow(histGrowth, float64(i+1))
			d := time.Duration(upper)
			if d > h.max {
				d = h.max
			}
			return d
		}
	}
	return h.max
}

// Max returns the largest observed sample.
func (h *Hist) Max() time.Duration { return h.max }
