// Command tmgen generates a synthetic evaluation scenario (topology +
// calibrated 24-hour demand time series) and writes it as JSON.
//
// Scenarios come either from the paper's two subnetworks (-region) or
// from the scenario lab's parameterized families (-family), which scale
// and perturb far beyond them; `-family help` lists the grammar. ECMP
// scenarios record their routing model in the file, so loading them
// rebuilds the same fractional routing matrix.
//
// -timeline compiles a timeline script (internal/timeline) instead:
// the scripted demand series and topology-epoch sequence are written as
// indented JSON — full demand vectors included — for inspection or as
// input to other tooling. The same script fed to `tmserve` via a
// scenario:script:<file> tenant replays live with routing hot-swaps.
//
// Usage:
//
//	tmgen -region europe -seed 1 -out europe.json
//	tmgen -region america -seed 7 -out america.json
//	tmgen -family scaled:100 -out big.json
//	tmgen -family ecmp:25:150 -out ecmp.json
//	tmgen -family failure:25:worst -out failed.json
//	tmgen -family help
//	tmgen -timeline examples/timelines/failure_reroute.json -out compiled.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/timeline"
)

func main() {
	region := flag.String("region", "europe", "subnetwork to generate: europe or america")
	family := flag.String("family", "", "scenario-family spec (e.g. scaled:100, ecmp:25:150); overrides -region; 'help' lists families")
	tlScript := flag.String("timeline", "", "timeline script to compile (overrides -region/-family); writes the scripted series + epochs as JSON")
	seed := flag.Int64("seed", 1, "deterministic generator seed")
	out := flag.String("out", "", "output file (default <region>.json or <family spec with : replaced>.json)")
	flag.Parse()

	if *family == "help" {
		fmt.Println("Scenario families (spec grammar -> description):")
		for _, f := range scenario.Families() {
			fmt.Printf("  %-28s %s\n", f.Usage, f.Desc)
		}
		return
	}

	if *tlScript != "" {
		if err := compileTimeline(*tlScript, *seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "tmgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var (
		sc  *netsim.Scenario
		err error
	)
	switch {
	case *family != "":
		var in *scenario.Instance
		in, err = scenario.Build(*family, *seed)
		if err == nil {
			sc = in.Sc
			if in.Note != "" {
				fmt.Println(in.Note)
			}
		}
		if *out == "" {
			*out = strings.ReplaceAll(*family, ":", "-") + ".json"
		}
	case *region == "europe":
		sc, err = netsim.BuildEurope(*seed)
	case *region == "america":
		sc, err = netsim.BuildAmerica(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tmgen: unknown region %q (want europe or america)\n", *region)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmgen: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		*out = *region + ".json"
	}
	if err := sc.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "tmgen: %v\n", err)
		os.Exit(1)
	}
	model := sc.Model
	if model == "" {
		model = netsim.RoutingSPF
	}
	fmt.Printf("wrote %s: %d PoPs, %d demands, %d interior links, %d intervals, %s routing\n",
		*out, sc.Net.NumPoPs(), sc.Net.NumPairs(), sc.Net.InteriorLinks(), len(sc.Series.Demands), model)
}

// compileTimeline parses a script, compiles it against its base
// instance and writes the compiled series (demand vectors included).
func compileTimeline(path string, seed int64, out string) error {
	s, err := timeline.ParseFile(path)
	if err != nil {
		return err
	}
	tl, _, err := scenario.BuildScript(s, seed)
	if err != nil {
		return err
	}
	if out == "" {
		base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		out = base + "-compiled.json"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := tl.WriteCompiled(f, true); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d intervals, %d epochs, %d events over %s\n",
		out, len(tl.Steps), len(tl.Epochs), len(tl.Script.Events), tl.Base.Region)
	return nil
}
