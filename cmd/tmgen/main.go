// Command tmgen generates a synthetic evaluation scenario (topology +
// calibrated 24-hour demand time series) and writes it as JSON.
//
// Scenarios come either from the paper's two subnetworks (-region) or
// from the scenario lab's parameterized families (-family), which scale
// and perturb far beyond them; `-family help` lists the grammar. ECMP
// scenarios record their routing model in the file, so loading them
// rebuilds the same fractional routing matrix.
//
// Usage:
//
//	tmgen -region europe -seed 1 -out europe.json
//	tmgen -region america -seed 7 -out america.json
//	tmgen -family scaled:100 -out big.json
//	tmgen -family ecmp:25:150 -out ecmp.json
//	tmgen -family failure:25:worst -out failed.json
//	tmgen -family help
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/netsim"
	"repro/internal/scenario"
)

func main() {
	region := flag.String("region", "europe", "subnetwork to generate: europe or america")
	family := flag.String("family", "", "scenario-family spec (e.g. scaled:100, ecmp:25:150); overrides -region; 'help' lists families")
	seed := flag.Int64("seed", 1, "deterministic generator seed")
	out := flag.String("out", "", "output file (default <region>.json or <family spec with : replaced>.json)")
	flag.Parse()

	if *family == "help" {
		fmt.Println("Scenario families (spec grammar -> description):")
		for _, f := range scenario.Families() {
			fmt.Printf("  %-28s %s\n", f.Usage, f.Desc)
		}
		return
	}

	var (
		sc  *netsim.Scenario
		err error
	)
	switch {
	case *family != "":
		var in *scenario.Instance
		in, err = scenario.Build(*family, *seed)
		if err == nil {
			sc = in.Sc
			if in.Note != "" {
				fmt.Println(in.Note)
			}
		}
		if *out == "" {
			*out = strings.ReplaceAll(*family, ":", "-") + ".json"
		}
	case *region == "europe":
		sc, err = netsim.BuildEurope(*seed)
	case *region == "america":
		sc, err = netsim.BuildAmerica(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tmgen: unknown region %q (want europe or america)\n", *region)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmgen: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		*out = *region + ".json"
	}
	if err := sc.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "tmgen: %v\n", err)
		os.Exit(1)
	}
	model := sc.Model
	if model == "" {
		model = netsim.RoutingSPF
	}
	fmt.Printf("wrote %s: %d PoPs, %d demands, %d interior links, %d intervals, %s routing\n",
		*out, sc.Net.NumPoPs(), sc.Net.NumPairs(), sc.Net.InteriorLinks(), len(sc.Series.Demands), model)
}
