// Command tmgen generates a synthetic evaluation scenario (topology +
// calibrated 24-hour demand time series) and writes it as JSON.
//
// Usage:
//
//	tmgen -region europe -seed 1 -out europe.json
//	tmgen -region america -seed 7 -out america.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/netsim"
)

func main() {
	region := flag.String("region", "europe", "subnetwork to generate: europe or america")
	seed := flag.Int64("seed", 1, "deterministic generator seed")
	out := flag.String("out", "", "output file (default <region>.json)")
	flag.Parse()

	if *out == "" {
		*out = *region + ".json"
	}
	var (
		sc  *netsim.Scenario
		err error
	)
	switch *region {
	case "europe":
		sc, err = netsim.BuildEurope(*seed)
	case "america":
		sc, err = netsim.BuildAmerica(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tmgen: unknown region %q (want europe or america)\n", *region)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmgen: %v\n", err)
		os.Exit(1)
	}
	if err := sc.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "tmgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d PoPs, %d demands, %d interior links, %d intervals\n",
		*out, sc.Net.NumPoPs(), sc.Net.NumPairs(), sc.Net.InteriorLinks(), len(sc.Series.Demands))
}
