// Command tmestimate runs one or more traffic-matrix estimation methods
// on a scenario file produced by tmgen and reports their mean relative
// error over the large demands, exactly as the paper scores its methods
// (eq. 8, 90%-of-traffic threshold). Multiple methods run concurrently
// on a bounded worker pool; results print in the order the methods were
// given, whatever the pool size.
//
// Usage:
//
//	tmestimate -scenario europe.json -method entropy -reg 1000
//	tmestimate -scenario america.json -method gravity,entropy,bayes,wcb
//	tmestimate -scenario europe.json -method fanout -window 10 -parallel 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/runner"
)

func main() {
	path := flag.String("scenario", "", "scenario JSON produced by tmgen (required)")
	method := flag.String("method", "entropy",
		"comma-separated estimators: gravity | kruithof | entropy | bayes | bayes-wcb | wcb | fanout | vardi")
	reg := flag.Float64("reg", 1000, "regularization parameter for entropy/bayes")
	window := flag.Int("window", 10, "window length for fanout/vardi (samples)")
	sigmaInv2 := flag.Float64("sigma", 0.01, "sigma^-2 for vardi")
	parallel := flag.Int("parallel", 0, "worker pool size; 0 = GOMAXPROCS, 1 = serial")
	timeout := flag.Duration("timeout", 0, "stop scheduling methods after this long (an in-flight estimator finishes); 0 = no timeout")
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	// Once cancelled, restore default signal handling so a second
	// Ctrl-C kills the process even if an estimator is mid-solve.
	context.AfterFunc(ctx, stop)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *path, *method, *reg, *window, *sigmaInv2, *parallel); err != nil {
		fmt.Fprintf(os.Stderr, "tmestimate: %v\n", err)
		os.Exit(1)
	}
}

// estimation is one method's scored result.
type estimation struct {
	est    linalg.Vector
	truth  linalg.Vector
	thresh float64
}

func run(ctx context.Context, path, methods string, reg float64, window int, sigmaInv2 float64, parallel int) error {
	sc, err := netsim.LoadFile(path)
	if err != nil {
		return err
	}
	truth, inst, thresh, err := sc.Snapshot(50)
	if err != nil {
		return err
	}
	start := sc.BusyWindow(50)

	estimate := func(method string) (estimation, error) {
		out := estimation{truth: truth, thresh: thresh}
		var err error
		switch method {
		case "gravity":
			out.est = core.Gravity(inst)
		case "kruithof":
			out.est, err = core.Kruithof(inst, core.Gravity(inst))
		case "entropy":
			out.est, err = core.Entropy(inst, core.Gravity(inst), reg)
		case "bayes":
			out.est, err = core.Bayesian(inst, core.Gravity(inst), reg)
		case "bayes-wcb":
			var b *core.Bounds
			if b, err = core.WorstCaseBounds(inst); err == nil {
				out.est, err = core.Bayesian(inst, b.Midpoint(), reg)
			}
		case "wcb":
			var b *core.Bounds
			if b, err = core.WorstCaseBounds(inst); err == nil {
				out.est = b.Midpoint()
			}
		case "fanout":
			var fe *core.FanoutEstimate
			loads := sc.LoadSeries(start, window)
			if fe, err = core.EstimateFanouts(sc.Rt, loads, core.DefaultFanoutConfig()); err == nil {
				out.est = fe.MeanDemand
				out.truth = sc.Series.MeanDemand(start, window)
				out.thresh = core.ShareThreshold(out.truth, 0.9)
			}
		case "vardi":
			loads := sc.LoadSeries(start, window)
			out.est, err = core.Vardi(sc.Rt, loads, core.VardiConfig{
				SigmaInv2: sigmaInv2, MaxIter: 30000, Tol: 1e-9,
			})
		default:
			return out, fmt.Errorf("unknown method %q", method)
		}
		return out, err
	}

	var jobs []runner.Job[estimation]
	for _, m := range strings.Split(methods, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		m := m
		jobs = append(jobs, runner.Job[estimation]{
			ID: m,
			Run: func(ctx context.Context) (estimation, error) {
				// Estimators are uninterruptible once started, so the
				// best granularity is refusing to start late.
				if err := ctx.Err(); err != nil {
					return estimation{}, err
				}
				return estimate(m)
			},
		})
	}
	if len(jobs) == 0 {
		return fmt.Errorf("no methods given")
	}

	fmt.Printf("scenario: %s (%s, %d PoPs, %d demands)\n",
		path, sc.Region, sc.Net.NumPoPs(), sc.Net.NumPairs())
	pool := runner.NewPool(parallel)
	_, err = runner.Run(ctx, pool, jobs, func(res runner.Result[estimation]) error {
		if res.Err != nil {
			return fmt.Errorf("%s: %w", res.ID, res.Err)
		}
		e := res.Value
		fmt.Printf("method:   %s (%.1fs)\n", res.ID, res.Duration.Seconds())
		fmt.Printf("MRE over demands carrying 90%% of traffic (%d demands): %.4f\n",
			core.CountAbove(e.truth, e.thresh), core.MRE(e.est, e.truth, e.thresh))
		fmt.Printf("rank correlation with truth: %.4f\n", core.RankCorrelation(e.est, e.truth))
		return nil
	})
	return err
}
