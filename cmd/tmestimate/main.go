// Command tmestimate runs a traffic-matrix estimation method on a scenario
// file produced by tmgen and reports its mean relative error over the large
// demands, exactly as the paper scores its methods (eq. 8, 90%-of-traffic
// threshold).
//
// Usage:
//
//	tmestimate -scenario europe.json -method entropy -reg 1000
//	tmestimate -scenario america.json -method wcb
//	tmestimate -scenario europe.json -method fanout -window 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/netsim"
)

func main() {
	path := flag.String("scenario", "", "scenario JSON produced by tmgen (required)")
	method := flag.String("method", "entropy",
		"estimator: gravity | kruithof | entropy | bayes | bayes-wcb | wcb | fanout | vardi")
	reg := flag.Float64("reg", 1000, "regularization parameter for entropy/bayes")
	window := flag.Int("window", 10, "window length for fanout/vardi (samples)")
	sigmaInv2 := flag.Float64("sigma", 0.01, "sigma^-2 for vardi")
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*path, *method, *reg, *window, *sigmaInv2); err != nil {
		fmt.Fprintf(os.Stderr, "tmestimate: %v\n", err)
		os.Exit(1)
	}
}

func run(path, method string, reg float64, window int, sigmaInv2 float64) error {
	sc, err := netsim.LoadFile(path)
	if err != nil {
		return err
	}
	truth, inst, thresh, err := sc.Snapshot(50)
	if err != nil {
		return err
	}
	start := sc.BusyWindow(50)

	var est linalg.Vector
	switch method {
	case "gravity":
		est = core.Gravity(inst)
	case "kruithof":
		est, err = core.Kruithof(inst, core.Gravity(inst))
	case "entropy":
		est, err = core.Entropy(inst, core.Gravity(inst), reg)
	case "bayes":
		est, err = core.Bayesian(inst, core.Gravity(inst), reg)
	case "bayes-wcb":
		var b *core.Bounds
		if b, err = core.WorstCaseBounds(inst); err == nil {
			est, err = core.Bayesian(inst, b.Midpoint(), reg)
		}
	case "wcb":
		var b *core.Bounds
		if b, err = core.WorstCaseBounds(inst); err == nil {
			est = b.Midpoint()
		}
	case "fanout":
		var fe *core.FanoutEstimate
		loads := sc.LoadSeries(start, window)
		if fe, err = core.EstimateFanouts(sc.Rt, loads, core.DefaultFanoutConfig()); err == nil {
			est = fe.MeanDemand
			truth = sc.Series.MeanDemand(start, window)
			thresh = core.ShareThreshold(truth, 0.9)
		}
	case "vardi":
		loads := sc.LoadSeries(start, window)
		est, err = core.Vardi(sc.Rt, loads, core.VardiConfig{
			SigmaInv2: sigmaInv2, MaxIter: 30000, Tol: 1e-9,
		})
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %s (%s, %d PoPs, %d demands)\n",
		path, sc.Region, sc.Net.NumPoPs(), sc.Net.NumPairs())
	fmt.Printf("method:   %s\n", method)
	fmt.Printf("MRE over demands carrying 90%% of traffic (%d demands): %.4f\n",
		core.CountAbove(truth, thresh), core.MRE(est, truth, thresh))
	fmt.Printf("rank correlation with truth: %.4f\n", core.RankCorrelation(est, truth))
	return nil
}
