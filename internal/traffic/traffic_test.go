package traffic

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/stats"
)

func genEurope(t testing.TB) *Series {
	t.Helper()
	s, err := Generate(Europe(1))
	if err != nil {
		t.Fatalf("Generate(Europe): %v", err)
	}
	return s
}

func genAmerica(t testing.TB) *Series {
	t.Helper()
	s, err := Generate(America(1))
	if err != nil {
		t.Fatalf("Generate(America): %v", err)
	}
	return s
}

func TestGenerateShapes(t *testing.T) {
	s := genEurope(t)
	if s.N != 12 || s.P != 132 {
		t.Fatalf("N=%d P=%d", s.N, s.P)
	}
	if len(s.Demands) != 288 || len(s.Times) != 288 {
		t.Fatalf("samples %d/%d", len(s.Demands), len(s.Times))
	}
	for k, d := range s.Demands {
		if len(d) != 132 {
			t.Fatalf("interval %d has %d demands", k, len(d))
		}
		for p, v := range d {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("demand [%d][%d] = %v", k, p, v)
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{NumPoPs: 1, Samples: 10, StepMinutes: 5}); err == nil {
		t.Fatal("expected error for 1 PoP")
	}
	if _, err := Generate(Config{NumPoPs: 5, Samples: 0, StepMinutes: 5}); err == nil {
		t.Fatal("expected error for 0 samples")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genEurope(t)
	b := genEurope(t)
	for k := range a.Demands {
		for p := range a.Demands[k] {
			if a.Demands[k][p] != b.Demands[k][p] {
				t.Fatal("same seed produced different series")
			}
		}
	}
}

func TestDiurnalCycleAndBusyHourOverlap(t *testing.T) {
	eu := genEurope(t)
	us := genAmerica(t)
	totEU, totUS := eu.TotalTraffic(), us.TotalTraffic()
	// Pronounced diurnal cycle: trough well below peak.
	for name, tot := range map[string]linalg.Vector{"eu": totEU, "us": totUS} {
		mx, _ := tot.Max()
		mn, _ := tot.Min()
		if mn > 0.6*mx {
			t.Fatalf("%s: diurnal swing too small: min %v max %v", name, mn, mx)
		}
	}
	// Busy windows partly overlap around 18:00 GMT (minute 1080).
	we := eu.BusyWindow(50)
	wu := us.BusyWindow(50)
	euPeakMin := eu.Times[we+25]
	usPeakMin := us.Times[wu+25]
	if euPeakMin > usPeakMin {
		t.Fatalf("EU busy hour (%v) should precede US (%v)", euPeakMin, usPeakMin)
	}
	if usPeakMin-euPeakMin > 6*60 {
		t.Fatalf("busy hours too far apart: %v vs %v", euPeakMin, usPeakMin)
	}
}

func TestTopDemandsCarryMostTraffic(t *testing.T) {
	// Paper Fig. 2: top 20% of demands ≈ 80% of traffic in both networks.
	for _, s := range []*Series{genEurope(t), genAmerica(t)} {
		start := s.BusyWindow(50)
		mean := s.MeanDemand(start, 50)
		cs := stats.CumulativeShare(mean)
		at20 := cs[len(cs)/5-1]
		if at20 < 0.6 || at20 > 0.95 {
			t.Fatalf("top-20%% share = %v, want roughly 0.8", at20)
		}
	}
}

func TestMeanVarianceLawCalibration(t *testing.T) {
	// Paper Fig. 6: a strong power-law mean-variance relation with c ≈ 1.6
	// (EU) / 1.5 (US) on normalized busy-hour 5-minute demands. The
	// generator must reproduce its configured exponent and constant.
	cases := []struct {
		name string
		s    *Series
	}{
		{"europe", genEurope(t)},
		{"america", genAmerica(t)},
	}
	for _, tc := range cases {
		start := tc.s.BusyWindow(50)
		win := tc.s.Window(start, 50)
		s0, _ := tc.s.TotalTraffic().Max()
		var means, vars []float64
		for p := 0; p < tc.s.P; p++ {
			xs := make([]float64, len(win))
			for k := range win {
				xs[k] = win[k][p] / s0
			}
			means = append(means, stats.Mean(xs))
			vars = append(vars, stats.Variance(xs))
		}
		fit := stats.FitPowerLaw(means, vars)
		if math.Abs(fit.C-tc.s.Cfg.C) > 0.2 {
			t.Errorf("%s: fitted c = %.3f, want ≈ %.2f (%s)", tc.name, fit.C, tc.s.Cfg.C, fit)
		}
		if fit.Phi < tc.s.Cfg.Phi/3 || fit.Phi > tc.s.Cfg.Phi*3 {
			t.Errorf("%s: fitted φ = %.4f, want order of %.3f", tc.name, fit.Phi, tc.s.Cfg.Phi)
		}
		if fit.R2 < 0.85 {
			t.Errorf("%s: mean-variance relation too weak: R²=%.3f", tc.name, fit.R2)
		}
	}
}

func TestFanoutsMoreStableThanDemands(t *testing.T) {
	// Paper Figs. 4–5: for large demands, fanouts fluctuate much less than
	// demands over the 24 h period.
	s := genAmerica(t)
	mean := s.MeanDemand(0, len(s.Demands))
	// Pick the largest demand of the largest source PoP.
	_, pMax := mean.Max()
	var demandSeries, fanoutSeries []float64
	for k := range s.Demands {
		demandSeries = append(demandSeries, s.Demands[k][pMax])
		fanoutSeries = append(fanoutSeries, s.Fanouts(k)[pMax])
	}
	cvDemand := math.Sqrt(stats.Variance(demandSeries)) / stats.Mean(demandSeries)
	cvFanout := math.Sqrt(stats.Variance(fanoutSeries)) / stats.Mean(fanoutSeries)
	if cvFanout > 0.5*cvDemand {
		t.Fatalf("fanout CV %v not much smaller than demand CV %v", cvFanout, cvDemand)
	}
}

func TestLargestDemandMagnitude(t *testing.T) {
	// Paper §5.1.4: largest demands on the order of 1200 Mbps.
	s := genAmerica(t)
	start := s.BusyWindow(50)
	mean := s.MeanDemand(start, 50)
	mx, _ := mean.Max()
	if mx < 400 || mx > 4000 {
		t.Fatalf("largest busy-hour demand %v Mbps, want on the order of 1200", mx)
	}
}

func TestFanoutsSumToOne(t *testing.T) {
	s := genEurope(t)
	for _, k := range []int{0, 100, 287} {
		a := s.Fanouts(k)
		for src := 0; src < s.N; src++ {
			var sum float64
			for dst := 0; dst < s.N; dst++ {
				if dst != src {
					sum += a[pairIndex(s.N, src, dst)]
				}
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("interval %d src %d fanout sum %v", k, src, sum)
			}
		}
	}
}

func TestIngressTotalsMatchDemandSums(t *testing.T) {
	s := genEurope(t)
	te := s.IngressTotals(10)
	d := s.Demands[10]
	var want float64
	for _, v := range d {
		want += v
	}
	if math.Abs(te.Sum()-want) > 1e-6*want {
		t.Fatalf("ingress sum %v != demand sum %v", te.Sum(), want)
	}
}

func TestBusyWindowIsArgmax(t *testing.T) {
	s := genEurope(t)
	tot := s.TotalTraffic()
	k := 50
	best := s.BusyWindow(k)
	var bestSum float64
	for i := best; i < best+k; i++ {
		bestSum += tot[i]
	}
	for start := 0; start+k <= len(tot); start++ {
		var sum float64
		for i := start; i < start+k; i++ {
			sum += tot[i]
		}
		if sum > bestSum+1e-9 {
			t.Fatalf("window at %d has sum %v > chosen %v", start, sum, bestSum)
		}
	}
}

func TestSyntheticPoissonMoments(t *testing.T) {
	mean := linalg.Vector{5, 50, 500}
	series := SyntheticPoisson(mean, 4000, 9)
	for j, m := range mean {
		xs := make([]float64, len(series))
		for k := range series {
			xs[k] = series[k][j]
		}
		if got := stats.Mean(xs); math.Abs(got-m)/m > 0.1 {
			t.Fatalf("element %d mean %v, want %v", j, got, m)
		}
		if got := stats.Variance(xs); math.Abs(got-m)/m > 0.15 {
			t.Fatalf("element %d variance %v, want %v", j, got, m)
		}
	}
}

func TestDominantDestinationsStrongerInAmerica(t *testing.T) {
	// Gravity-model violation: the max fanout per source should be much
	// larger (relative to the gravity prediction) in the US config.
	eu, us := genEurope(t), genAmerica(t)
	skew := func(s *Series) float64 {
		// Average over sources of (max fanout) / (gravity fanout of that dst).
		var tot float64
		for src := 0; src < s.N; src++ {
			var mx float64
			var mxDst int
			for dst := 0; dst < s.N; dst++ {
				if dst == src {
					continue
				}
				if a := s.BaseFanouts[pairIndex(s.N, src, dst)]; a > mx {
					mx, mxDst = a, dst
				}
			}
			grav := s.PoPWeights[mxDst]
			tot += mx / grav
		}
		return tot / float64(s.N)
	}
	if skew(us) < 1.5*skew(eu) {
		t.Fatalf("US skew %v should exceed EU skew %v substantially", skew(us), skew(eu))
	}
}

func BenchmarkGenerateAmerica(b *testing.B) {
	cfg := America(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
