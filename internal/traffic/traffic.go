// Package traffic generates synthetic PoP-to-PoP demand time series
// calibrated to every statistical property the paper reports for the real
// Global Crossing data:
//
//   - pronounced diurnal cycles whose busy periods partly overlap around
//     18:00 GMT between the European and American subnetworks (Fig. 1),
//   - heavy-tailed spatial concentration: the top 20% of demands carry
//     roughly 80% of the traffic (Figs. 2–3),
//   - per-source dominant destinations that violate the gravity assumption,
//     much more strongly in the American network (§5.2.4, Fig. 7),
//   - fanout factors that are far more stable over time than the demands
//     themselves, especially for large demands (Figs. 4–5),
//   - a mean–variance scaling law Var{s_p} = φ·λ_p^c on normalized
//     5-minute busy-hour samples, with exponents c≈1.6 (Europe) and c≈1.5
//     (USA) as in Fig. 6. The multiplicative constant φ is deliberately
//     smaller than the paper's fitted values (0.82 / 2.44): at those
//     absolute levels the law implies >100% relative 5-minute fluctuations
//     for the largest demands, contradicting the stability visible in the
//     paper's own Fig. 4, so the generator keeps the law's form and
//     exponent at a noise level consistent with Figs. 4–5 (see
//     EXPERIMENTS.md, Fig. 6 entry),
//   - largest demands on the order of 1200 Mbps (§5.1.4).
//
// The generated series is the ground truth against which estimators are
// scored; link loads are always derived from it via t = R·s, so routing,
// demands and loads are consistent exactly as in the paper's evaluation
// protocol (§5.1.4).
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// MinutesPerDay is the length of the simulated measurement period.
const MinutesPerDay = 24 * 60

// Config parameterizes the demand generator. The Europe and America
// functions return configurations calibrated to the paper's two
// subnetworks.
type Config struct {
	Seed        int64
	NumPoPs     int
	Samples     int     // number of measurement intervals (288 = 24 h at 5 min)
	StepMinutes float64 // polling interval length

	PeakMinute       float64 // busy-period center, minutes after 00:00 GMT
	OffPeakLevel     float64 // trough-to-peak ratio of total traffic
	PeakSharpness    float64 // exponent of the raised-cosine diurnal shape
	TotalPeakMbps    float64 // total network traffic at the busy-period peak
	PoPSkew          float64 // Zipf exponent for PoP size weights
	DominantPerPoP   int     // preferred destinations per source PoP
	DominantStrength float64 // multiplier applied to preferred destinations
	Phi, C           float64 // mean–variance law on normalized demands
	SourceNoise      float64 // σ of the source-common lognormal noise factor
	FanoutDrift      float64 // relative amplitude of slow fanout wobble
	NodeWobble       float64 // relative amplitude of per-PoP diurnal deviation
	PairSpread       float64 // σ of the static lognormal fanout distortion
}

// Europe returns the generator configuration for the 12-PoP European
// subnetwork: earlier busy hour, milder destination skew (gravity works
// reasonably there), φ=0.82, c=1.6.
func Europe(seed int64) Config {
	return Config{
		Seed: seed, NumPoPs: 12, Samples: 288, StepMinutes: 5,
		PeakMinute: 16.5 * 60, OffPeakLevel: 0.3, PeakSharpness: 1.6,
		TotalPeakMbps: 12000, PoPSkew: 1.3,
		DominantPerPoP: 1, DominantStrength: 1.0,
		Phi: 0.01, C: 1.6, SourceNoise: 0.15,
		FanoutDrift: 0.04, NodeWobble: 0.05, PairSpread: 0.8,
	}
}

// America returns the generator configuration for the 25-PoP American
// subnetwork: later busy hour, strong per-source dominant destinations
// (which break the gravity model, §5.2.4), φ=2.44, c=1.5.
func America(seed int64) Config {
	return Config{
		Seed: seed, NumPoPs: 25, Samples: 288, StepMinutes: 5,
		PeakMinute: 20.5 * 60, OffPeakLevel: 0.3, PeakSharpness: 1.6,
		TotalPeakMbps: 30000, PoPSkew: 1.2,
		DominantPerPoP: 3, DominantStrength: 10.0,
		Phi: 0.01, C: 1.5, SourceNoise: 0.15,
		FanoutDrift: 0.04, NodeWobble: 0.05, PairSpread: 0.8,
	}
}

// Scaled returns a generator configuration for an n-PoP backbone, the
// demand side of the scenario lab's scaled(n) family. It keeps the
// paper-calibrated statistical shape (diurnal cycle, heavy-tailed spatial
// concentration, stable fanouts, mean–variance law with the American
// exponent) while growing total traffic linearly with the PoP count —
// 1200 Mbps of peak traffic per PoP, matching the America calibration at
// n = 25 — so per-PoP and per-demand magnitudes stay in the regime the
// estimators were tuned for at any scale.
func Scaled(seed int64, n int) Config {
	return Config{
		Seed: seed, NumPoPs: n, Samples: 288, StepMinutes: 5,
		PeakMinute: 18 * 60, OffPeakLevel: 0.3, PeakSharpness: 1.6,
		TotalPeakMbps: 1200 * float64(n), PoPSkew: 1.2,
		DominantPerPoP: 2, DominantStrength: 5.0,
		Phi: 0.01, C: 1.5, SourceNoise: 0.15,
		FanoutDrift: 0.04, NodeWobble: 0.05, PairSpread: 0.8,
	}
}

// Series is a generated demand time series: Demands[k][p] is the 5-minute
// average rate (Mbps) of PoP pair p during interval k.
type Series struct {
	Cfg     Config
	N       int             // PoPs
	P       int             // ordered pairs N(N−1)
	Times   []float64       // interval start, minutes after 00:00 GMT
	Demands []linalg.Vector // [Samples][P]

	// BaseFanouts are the time-averaged fanout factors α_nm used by the
	// generator (ground truth for fanout-stability analysis).
	BaseFanouts linalg.Vector
	// PoPWeights are the relative sizes of the PoPs.
	PoPWeights linalg.Vector
}

// pairIndex matches topology.Network.PairIndex: row-major with the diagonal
// removed. Kept local so the traffic package has no topology dependency.
func pairIndex(n, src, dst int) int {
	d := dst
	if dst > src {
		d--
	}
	return src*(n-1) + d
}

// Generate produces a demand series from cfg. It is deterministic in
// cfg.Seed.
func Generate(cfg Config) (*Series, error) {
	if cfg.NumPoPs < 2 {
		return nil, fmt.Errorf("traffic: need >= 2 PoPs, got %d", cfg.NumPoPs)
	}
	if cfg.Samples < 1 || cfg.StepMinutes <= 0 {
		return nil, fmt.Errorf("traffic: bad sampling config %d x %v", cfg.Samples, cfg.StepMinutes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.NumPoPs
	p := n * (n - 1)
	s := &Series{Cfg: cfg, N: n, P: p}

	// PoP size weights: Zipf over PoP index (low index = major city), with
	// mild lognormal distortion so no two networks look identical.
	w := linalg.NewVector(n)
	var wSum float64
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(i+1), -cfg.PoPSkew) * math.Exp(0.25*rng.NormFloat64())
		wSum += w[i]
	}
	w.Scale(1 / wSum)
	s.PoPWeights = w

	// Base fanouts: gravity-like (proportional to destination weight) with
	// lognormal distortion and a handful of dominant destinations per
	// source. DominantStrength >> 1 makes PoPs send most traffic to a few
	// destinations that differ per PoP — exactly what defeats the gravity
	// model in the American network.
	alpha := linalg.NewVector(p)
	for src := 0; src < n; src++ {
		dominant := map[int]bool{}
		for len(dominant) < cfg.DominantPerPoP && len(dominant) < n-1 {
			d := rng.Intn(n)
			if d != src {
				dominant[d] = true
			}
		}
		var rowSum float64
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			a := w[dst] * math.Exp(cfg.PairSpread*rng.NormFloat64())
			if dominant[dst] {
				a *= 1 + cfg.DominantStrength*rng.Float64()
			}
			alpha[pairIndex(n, src, dst)] = a
			rowSum += a
		}
		for dst := 0; dst < n; dst++ {
			if dst != src {
				alpha[pairIndex(n, src, dst)] /= rowSum
			}
		}
	}
	s.BaseFanouts = alpha

	// Slow fanout wobble: per-pair sinusoid with random phase and period.
	phase := make([]float64, p)
	period := make([]float64, p)
	for i := range phase {
		phase[i] = 2 * math.Pi * rng.Float64()
		period[i] = MinutesPerDay * (0.5 + rng.Float64())
	}
	// Per-PoP deviation from the network-wide diurnal shape.
	nodePhase := make([]float64, n)
	for i := range nodePhase {
		nodePhase[i] = 2 * math.Pi * rng.Float64()
	}

	s.Times = make([]float64, cfg.Samples)
	s.Demands = make([]linalg.Vector, cfg.Samples)
	s0 := cfg.TotalPeakMbps // normalization scale for the variance law
	for k := 0; k < cfg.Samples; k++ {
		tm := float64(k) * cfg.StepMinutes
		s.Times[k] = tm
		d := diurnal(tm, cfg)
		sk := linalg.NewVector(p)
		// Time-varying fanouts for this interval.
		for src := 0; src < n; src++ {
			ingress := w[src] * cfg.TotalPeakMbps * d *
				(1 + cfg.NodeWobble*math.Sin(2*math.Pi*tm/MinutesPerDay+nodePhase[src]))
			// Source-common fluctuation: shared by every demand of this
			// source, so it moves the demands but cancels out of the
			// fanouts — the mechanism behind the paper's Figs. 4–5.
			s2 := cfg.SourceNoise * cfg.SourceNoise
			common := math.Exp(cfg.SourceNoise*rng.NormFloat64() - s2/2)
			var rowSum float64
			row := make([]float64, 0, n-1)
			idx := make([]int, 0, n-1)
			for dst := 0; dst < n; dst++ {
				if dst == src {
					continue
				}
				pi := pairIndex(n, src, dst)
				a := alpha[pi] * (1 + cfg.FanoutDrift*math.Sin(2*math.Pi*tm/period[pi]+phase[pi]))
				row = append(row, a)
				idx = append(idx, pi)
				rowSum += a
			}
			for i, a := range row {
				lambda := ingress * a / rowSum
				if lambda <= 0 {
					sk[idx[i]] = 0
					continue
				}
				// Mean–variance law on normalized demands:
				// Var{s/s0} = φ·(λ/s0)^c. Realized with mean-preserving
				// lognormal noise, s = λ·common·pair, where the total
				// log-variance σ² = log(1 + φ·(λ/s0)^{c−2}) hits the law
				// exactly (no zero-censoring as an additive Gaussian would
				// need). The source-common factor's share σ0² is removed
				// from the per-pair share so the product keeps the law.
				relVar := cfg.Phi * math.Pow(lambda/s0, cfg.C-2)
				sp2 := math.Log1p(relVar) - s2
				if sp2 < 0 {
					sp2 = 0
				}
				sigma := math.Sqrt(sp2)
				sk[idx[i]] = lambda * common * math.Exp(sigma*rng.NormFloat64()-sp2/2)
			}
		}
		s.Demands[k] = sk
	}
	return s, nil
}

// diurnal is the raised-cosine daily shape, 1 at the peak and OffPeakLevel
// at the trough.
func diurnal(minute float64, cfg Config) float64 {
	x := 0.5 * (1 + math.Cos(2*math.Pi*(minute-cfg.PeakMinute)/MinutesPerDay))
	return cfg.OffPeakLevel + (1-cfg.OffPeakLevel)*math.Pow(x, cfg.PeakSharpness)
}

// TotalTraffic returns the total network traffic per interval.
func (s *Series) TotalTraffic() linalg.Vector {
	tot := linalg.NewVector(len(s.Demands))
	for k, d := range s.Demands {
		tot[k] = d.Sum()
	}
	return tot
}

// BusyWindow returns the start index of the length-k window with the
// largest average total traffic (the paper's shaded busy period).
func (s *Series) BusyWindow(k int) int {
	if k <= 0 || k > len(s.Demands) {
		panic(fmt.Sprintf("traffic: BusyWindow length %d out of range", k))
	}
	tot := s.TotalTraffic()
	var run float64
	for i := 0; i < k; i++ {
		run += tot[i]
	}
	best, bestAt := run, 0
	for i := k; i < len(tot); i++ {
		run += tot[i] - tot[i-k]
		if run > best {
			best, bestAt = run, i-k+1
		}
	}
	return bestAt
}

// Window returns the demand vectors of the half-open interval [start,
// start+k).
func (s *Series) Window(start, k int) []linalg.Vector {
	return s.Demands[start : start+k]
}

// MeanDemand returns the per-pair average over a window.
func (s *Series) MeanDemand(start, k int) linalg.Vector {
	m := linalg.NewVector(s.P)
	for _, d := range s.Window(start, k) {
		linalg.Axpy(1, d, m)
	}
	m.Scale(1 / float64(k))
	return m
}

// Fanouts returns the fanout vector α[k] of interval k: α_nm = s_nm / Σ_m
// s_nm. Sources with zero traffic get a uniform row.
func (s *Series) Fanouts(k int) linalg.Vector {
	return FanoutsOf(s.N, s.Demands[k])
}

// FanoutsOf derives the fanout vector α_nm = s_nm / Σ_m s_nm from any
// demand vector over n PoPs (pair indexing as in topology.Network:
// row-major with the diagonal removed). Sources with zero traffic get a
// uniform row. Shared by Series.Fanouts and the streaming engine's
// online fanout state, so the two can never drift.
func FanoutsOf(n int, d linalg.Vector) linalg.Vector {
	a := linalg.NewVector(n * (n - 1))
	for src := 0; src < n; src++ {
		var tot float64
		for dst := 0; dst < n; dst++ {
			if dst != src {
				tot += d[pairIndex(n, src, dst)]
			}
		}
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			pi := pairIndex(n, src, dst)
			if tot > 0 {
				a[pi] = d[pi] / tot
			} else {
				a[pi] = 1 / float64(n-1)
			}
		}
	}
	return a
}

// IngressTotals returns, for interval k, the total traffic entering at each
// PoP: te(n) of the paper.
func (s *Series) IngressTotals(k int) linalg.Vector {
	d := s.Demands[k]
	te := linalg.NewVector(s.N)
	for src := 0; src < s.N; src++ {
		for dst := 0; dst < s.N; dst++ {
			if dst != src {
				te[src] += d[pairIndex(s.N, src, dst)]
			}
		}
	}
	return te
}

// SyntheticPoisson generates a time series of K demand vectors whose
// elements are independent Poisson with the given means — the synthetic
// experiment of Fig. 12 that isolates covariance-estimation error.
func SyntheticPoisson(mean linalg.Vector, k int, seed int64) []linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]linalg.Vector, k)
	for i := range out {
		v := linalg.NewVector(len(mean))
		for j, m := range mean {
			v[j] = stats.PoissonSample(rng, m)
		}
		out[i] = v
	}
	return out
}
