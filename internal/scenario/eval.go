package scenario

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/runner"
)

// Method is one estimator wired for the cross-family evaluation harness.
type Method struct {
	Name string
	// Run estimates the instance's traffic matrix and reports the solver
	// iterations consumed (0 for closed-form methods).
	Run func(in *Instance) (linalg.Vector, int, error)
}

// Budget bounds the solver work per method. The paper-fidelity defaults
// (core's regIter/regTol, DefaultVardiConfig) converge to 1e-9 on the
// paper-sized networks but are wasteful at 10k demands, where the scoring
// metrics stabilize orders of magnitude earlier — the scenario lab trades
// the last digits of convergence for bounded runtime.
type Budget struct {
	EntropyReg  float64
	EntropyIter int
	EntropyTol  float64
	Vardi       core.VardiConfig
}

// DefaultBudget returns the budget the scale experiment and benchmarks
// use: the paper's regularization strengths with iteration caps sized for
// 100+-PoP instances.
func DefaultBudget() Budget {
	return Budget{
		EntropyReg: 1000, EntropyIter: 12000, EntropyTol: 1e-7,
		Vardi: core.VardiConfig{SigmaInv2: 0.01, MaxIter: 6000, Tol: 1e-7},
	}
}

// ForSize returns the budget with its iteration caps scaled down
// linearly for instances larger than the lab's 100-PoP / 9900-demand
// design point, keeping total solver work (iterations × per-iteration
// cost) roughly constant as the demand count grows. Instances at or
// below the design point keep the caps unchanged, so the paper-adjacent
// grid is unaffected.
func (b Budget) ForSize(pairs int) Budget {
	const refPairs = 9900
	if pairs <= refPairs {
		return b
	}
	scale := float64(refPairs) / float64(pairs)
	if b.EntropyIter = int(float64(b.EntropyIter) * scale); b.EntropyIter < 1 {
		b.EntropyIter = 1
	}
	if b.Vardi.MaxIter = int(float64(b.Vardi.MaxIter) * scale); b.Vardi.MaxIter < 1 {
		b.Vardi.MaxIter = 1
	}
	return b
}

// Methods returns the cross-family method set under the given budget:
// the gravity model (closed form), the entropy-regularized estimator with
// a gravity prior, and Vardi's second-moment method over the busy-window
// load series. Each solver cell applies the budget through ForSize, so
// oversized instances get proportionally tighter iteration caps.
func Methods(b Budget) []Method {
	return []Method{
		{Name: "gravity", Run: func(in *Instance) (linalg.Vector, int, error) {
			return core.Gravity(in.Inst), 0, nil
		}},
		{Name: "entropy", Run: func(in *Instance) (linalg.Vector, int, error) {
			bb := b.ForSize(in.Inst.NumPairs())
			prior := core.Gravity(in.Inst)
			return core.EntropyBudget(in.Inst, prior, bb.EntropyReg, bb.EntropyIter, bb.EntropyTol)
		}},
		{Name: "vardi", Run: func(in *Instance) (linalg.Vector, int, error) {
			bb := b.ForSize(in.Inst.NumPairs())
			return core.VardiIters(in.Sc.Rt, in.Loads, bb.Vardi)
		}},
	}
}

// Result scores one (instance, method) cell.
type Result struct {
	Spec   string `json:"spec"`
	Method string `json:"method"`
	// MRE is the paper's mean relative error over the demands carrying
	// 90% of traffic (eq. 8).
	MRE float64 `json:"mre"`
	// RelL1 and RelL2 are ‖ŝ−s‖₁/‖s‖₁ and ‖ŝ−s‖₂/‖s‖₂ over all demands.
	RelL1      float64       `json:"rel_l1"`
	RelL2      float64       `json:"rel_l2"`
	Iterations int           `json:"iterations"`
	Runtime    time.Duration `json:"runtime_ns"`
	// Err is the in-process failure cause. error values marshal to "{}"
	// under encoding/json, so it is excluded from serialization;
	// ErrMessage carries the cause in persisted/reported grids. Use
	// Failed to test either form.
	Err        error  `json:"-"`
	ErrMessage string `json:"error,omitempty"`
}

// Failed reports whether the cell records a method failure, in-process
// (Err) or deserialized (ErrMessage).
func (r *Result) Failed() bool { return r.Err != nil || r.ErrMessage != "" }

// RelL1 returns the relative L1 error ‖est−truth‖₁/‖truth‖₁ (0 when the
// truth is identically zero). Shared kernel: linalg.RelL1, which is
// also the streaming engine's window-drift signal.
func RelL1(est, truth linalg.Vector) float64 {
	return linalg.RelL1(est, truth)
}

// RelL2 returns the relative L2 error ‖est−truth‖₂/‖truth‖₂ (0 when the
// truth is identically zero).
func RelL2(est, truth linalg.Vector) float64 {
	if len(est) != len(truth) {
		panic("scenario: RelL2 length mismatch")
	}
	var num, den float64
	for i, t := range truth {
		d := est[i] - t
		num += d * d
		den += t * t
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// Evaluate scores every method on every instance, fanning the
// instance × method grid out on the pool. Results come back in grid
// order (instances outer, methods inner) regardless of execution order;
// a method failure is recorded in its cell, not fatal to the run.
func Evaluate(ctx context.Context, pool *runner.Pool, instances []*Instance, methods []Method) ([]Result, error) {
	jobs := make([]runner.Job[Result], 0, len(instances)*len(methods))
	for _, in := range instances {
		for _, m := range methods {
			in, m := in, m
			jobs = append(jobs, runner.Job[Result]{
				ID: fmt.Sprintf("%s/%s", in.Spec, m.Name),
				Run: func(ctx context.Context) (Result, error) {
					res := Result{Spec: in.Spec, Method: m.Name}
					t0 := time.Now()
					est, iters, err := m.Run(in)
					res.Runtime = time.Since(t0)
					res.Iterations = iters
					if err != nil {
						res.Err = err
						res.ErrMessage = err.Error()
						return res, nil
					}
					res.MRE = core.MRE(est, in.Truth, in.Thresh)
					res.RelL1 = RelL1(est, in.Truth)
					res.RelL2 = RelL2(est, in.Truth)
					return res, nil
				},
			})
		}
	}
	rs, err := runner.Run(ctx, pool, jobs, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = r.Value
	}
	return out, nil
}
