package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/timeline"
)

var update = flag.Bool("update", false, "rewrite golden compiled-timeline files")

// TestTimelineGoldens compiles every committed example script with the
// default seed and compares the compiled form (epochs + per-interval
// totals, demands elided) against the golden files. Regenerate with
//
//	go test ./internal/scenario -run TestTimelineGoldens -update
func TestTimelineGoldens(t *testing.T) {
	scripts, err := filepath.Glob(filepath.Join("..", "..", "examples", "timelines", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) < 4 {
		t.Fatalf("found %d example scripts, want the committed set of at least 4", len(scripts))
	}
	for _, path := range scripts {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			script, err := timeline.ParseFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tl, _, err := BuildScript(script, 1)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tl.WriteCompiled(&buf, false); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("compiled %s drifted from %s (run with -update to regenerate)", path, golden)
			}
		})
	}
}
