package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/runner"
	"repro/internal/stream"
	"repro/internal/timeline"
)

// evalScript is a short scripted timeline exercising two discrete event
// kinds over the default base: a flash crowd, then a failure/restore
// cycle on the first interior adjacency.
func evalScript(t *testing.T) *timeline.Script {
	t.Helper()
	s, err := timeline.Parse([]byte(`{"format":1,"intervals":18,"events":[
		{"at":3,"flash_crowd":{"pair":["London","Paris"],"factor":4,"until":6}},
		{"at":8,"fail_link":"Frankfurt-cr1-Brussels-cr1"},
		{"at":13,"restore":"Frankfurt-cr1-Brussels-cr1"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func evalConfig() TimelineConfig {
	// Small budgets keep the lockstep replay fast; entropy alone halves
	// the work and determinism is per-method anyway.
	return TimelineConfig{
		Methods:        []stream.Method{stream.MethodEntropy, stream.MethodVardi},
		Window:         4,
		ResolveEvery:   2,
		ResolveMaxIter: 400,
	}
}

// TestEvaluateTimelineDeterministic pins the satellite requirement:
// the same script and seed score byte-identically whether the method
// fan-out runs on one worker or eight.
func TestEvaluateTimelineDeterministic(t *testing.T) {
	tl, _, err := BuildScript(evalScript(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) []byte {
		t.Helper()
		scores, err := EvaluateTimeline(context.Background(), runner.NewPool(workers), tl, evalConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(scores)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := render(1)
	wide := render(8)
	if !bytes.Equal(serial, wide) {
		t.Fatalf("scores differ across pool sizes:\n-parallel 1: %s\n-parallel 8: %s", serial, wide)
	}
}

// TestEvaluateTimelineScoresRecoveries checks the scoring surface: lag
// and recovery are reported for at least two distinct event kinds, the
// engines end on the restored epoch, and swapped re-solves stayed warm.
func TestEvaluateTimelineScoresRecoveries(t *testing.T) {
	tl, _, err := BuildScript(evalScript(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Epochs) != 3 {
		t.Fatalf("%d epochs, want 3", len(tl.Epochs))
	}
	scores, err := EvaluateTimeline(context.Background(), runner.NewPool(2), tl, evalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("%d scores, want one per method", len(scores))
	}
	for _, sc := range scores {
		if sc.FinalEpoch != 2 {
			t.Errorf("%s: final epoch %d, want 2 (restored)", sc.Method, sc.FinalEpoch)
		}
		if sc.Resolves == 0 {
			t.Errorf("%s: no re-solves executed", sc.Method)
		}
		if sc.WarmResolves == 0 {
			t.Errorf("%s: every re-solve was cold; hot-swap should preserve warm starts", sc.Method)
		}
		kinds := map[string]int{}
		for _, r := range sc.Recoveries {
			kinds[r.Kind]++
			if r.At < 0 || r.EffectiveAt < r.At {
				t.Errorf("%s: recovery %q has anchors at=%d effective=%d", sc.Method, r.Event, r.At, r.EffectiveAt)
			}
			if r.Recovered && (r.RecoveredAt < r.EffectiveAt || r.LagWindows != r.RecoveredAt-r.EffectiveAt) {
				t.Errorf("%s: recovery %q lag accounting: recovered_at=%d lag=%d", sc.Method, r.Event, r.RecoveredAt, r.LagWindows)
			}
		}
		if len(kinds) < 2 {
			t.Errorf("%s: recoveries cover %d event kinds (%v), want at least 2", sc.Method, len(kinds), kinds)
		}
		observed := 0
		for _, e := range sc.Errors {
			if e >= 0 {
				observed++
			}
		}
		if observed == 0 {
			t.Errorf("%s: no per-interval errors observed", sc.Method)
		}
	}
}
