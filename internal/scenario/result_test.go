package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/linalg"
	"repro/internal/runner"
)

// TestResultErrorRoundTrip pins the persistence fix: a Result carrying a
// failure must keep its cause through a JSON round trip. The raw error
// field marshals to "{}" under encoding/json (error is an interface with
// no exported fields), which is how persisted grids used to lose every
// failure cause.
func TestResultErrorRoundTrip(t *testing.T) {
	in := Result{
		Spec:       "scaled:6",
		Method:     "vardi",
		Err:        errors.New("solver diverged at iteration 7"),
		ErrMessage: "solver diverged at iteration 7",
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ErrMessage != in.ErrMessage {
		t.Fatalf("failure cause lost: %q round-tripped to %q", in.ErrMessage, out.ErrMessage)
	}
	if !out.Failed() {
		t.Fatal("deserialized failure not reported by Failed()")
	}
	if out.Err != nil {
		t.Fatalf("raw error resurrected as %v — it is json:\"-\"", out.Err)
	}
	// A clean cell serializes without an error key at all.
	clean, err := json.Marshal(Result{Spec: "scaled:6", Method: "gravity", MRE: 0.23})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(clean, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["error"]; ok {
		t.Fatalf("clean result serialized an error key: %s", clean)
	}
	if (&Result{}).Failed() {
		t.Fatal("empty result reports failure")
	}
}

// TestEvaluateRecordsFailureCause checks the harness end: a method that
// fails must land in its grid cell with both the in-process error and
// the serializable message set.
func TestEvaluateRecordsFailureCause(t *testing.T) {
	in, err := Build("scaled:6", 1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom: no estimate for you")
	methods := []Method{{
		Name: "exploding",
		Run:  func(*Instance) (linalg.Vector, int, error) { return nil, 3, boom },
	}}
	results, err := Evaluate(context.Background(), runner.NewPool(1), []*Instance{in}, methods)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if !errors.Is(r.Err, boom) {
		t.Fatalf("cell error %v, want the method's", r.Err)
	}
	if r.ErrMessage != boom.Error() {
		t.Fatalf("cell message %q, want %q", r.ErrMessage, boom.Error())
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ErrMessage != boom.Error() || !back.Failed() {
		t.Fatalf("persisted cell lost the failure cause: %s", data)
	}
}
