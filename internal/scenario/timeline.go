package scenario

import (
	"context"
	"fmt"

	"repro/internal/collector"
	"repro/internal/runner"
	"repro/internal/stream"
	"repro/internal/timeline"
)

// DefaultScriptBase is the scenario family a script runs over when it
// does not name one.
const DefaultScriptBase = "scaled:europe"

// BuildScript materializes a timeline script: the base instance is
// built from the script's base family spec (DefaultScriptBase when the
// script names none) with the given seed, and the script is compiled
// against the instance's busy evaluation window — so the timeline's
// interval 0 replays the same busy period every batch evaluation
// scores, before the script starts bending it.
func BuildScript(s *timeline.Script, seed int64) (*timeline.Timeline, *Instance, error) {
	spec := s.Base
	if spec == "" {
		spec = DefaultScriptBase
	}
	in, err := Build(spec, seed)
	if err != nil {
		return nil, nil, err
	}
	tl, err := timeline.Compile(in.Sc, in.Start, s)
	if err != nil {
		return nil, nil, err
	}
	return tl, in, nil
}

// TimelineConfig tunes EvaluateTimeline.
type TimelineConfig struct {
	// Methods are the re-solve estimators to track. Default: entropy and
	// vardi (one regularized single-snapshot method, one second-moment
	// time-series method).
	Methods []stream.Method
	// Window and ResolveEvery configure each method's engine. Defaults: a
	// 6-interval sliding window, re-solving every interval — the finest
	// tracking granularity, which is what lag is measured against.
	Window       int
	ResolveEvery int
	// ResolveMaxIter/ResolveTol/Reg/SigmaInv2 budget the solves
	// (stream.Config semantics and defaults).
	ResolveMaxIter int
	ResolveTol     float64
	Reg            float64
	SigmaInv2      float64
	// ToleranceFactor sets each event's recovery tolerance to factor ×
	// the pre-event baseline error (default 1.5); Tolerance > 0 overrides
	// with an absolute relative-L1 bound.
	ToleranceFactor float64
	Tolerance       float64
	// BaselineWindow is how many observed pre-event intervals the
	// baseline error averages over (default 6).
	BaselineWindow int
}

func (c TimelineConfig) withDefaults() TimelineConfig {
	if len(c.Methods) == 0 {
		c.Methods = []stream.Method{stream.MethodEntropy, stream.MethodVardi}
	}
	if c.Window <= 0 {
		c.Window = 6
	}
	if c.ResolveEvery == 0 {
		c.ResolveEvery = 1
	}
	if c.ResolveMaxIter <= 0 {
		c.ResolveMaxIter = 4000
	}
	if c.ToleranceFactor <= 0 {
		c.ToleranceFactor = 1.5
	}
	if c.BaselineWindow <= 0 {
		c.BaselineWindow = 6
	}
	return c
}

// TimelineRecovery scores one scripted event for one method: how long
// the method's tracking error stayed outside tolerance after the event
// hit.
type TimelineRecovery struct {
	// Event is a human-readable label ("fail_link R3-R7"); Kind and At
	// are the script event's kind and anchor.
	Event string `json:"event"`
	Kind  string `json:"kind"`
	At    int    `json:"at"`
	// EffectiveAt is when recovery starts being measured — the event
	// anchor, except outages, which are measured from the window's end
	// (nothing is observable inside the hole).
	EffectiveAt int `json:"effective_at"`
	// Baseline is the mean relative-L1 error over the observed pre-event
	// intervals (-1 when the event is at the very start and there are
	// none); Tolerance is the re-entry bound derived from it.
	Baseline  float64 `json:"baseline_rel_l1"`
	Tolerance float64 `json:"tolerance_rel_l1"`
	// RecoveredAt is the first interval at or after EffectiveAt whose
	// error is back within Tolerance (-1: never during the timeline);
	// LagWindows is RecoveredAt − EffectiveAt.
	RecoveredAt int  `json:"recovered_at"`
	LagWindows  int  `json:"lag_windows"`
	Recovered   bool `json:"recovered"`
}

// TimelineScore is one method's tracking record over a timeline.
type TimelineScore struct {
	Method string `json:"method"`
	// Errors is the per-interval relative L1 error of the method's
	// published estimate against the scripted truth, indexed by timeline
	// interval; -1 marks intervals with no observation (outage holes and
	// intervals consumed in a close-out batch below the newest).
	Errors []float64 `json:"rel_l1"`
	// Resolves counts completed full re-solves; WarmResolves how many of
	// them were warm-started; Iterations their total solver iterations.
	Resolves     int `json:"resolves"`
	WarmResolves int `json:"warm_resolves"`
	Iterations   int `json:"iterations"`
	// FinalEpoch is the topology epoch the engine ended on.
	FinalEpoch int                `json:"final_epoch"`
	Recoveries []TimelineRecovery `json:"recoveries"`
}

// EvaluateTimeline replays a compiled timeline through one streaming
// engine per method — routing hot-swaps armed, outage holes skipped —
// and scores per-method tracking lag: the per-interval error of the
// published estimate against the scripted truth, and for every
// discrete event the number of windows until the error re-entered
// tolerance. Methods fan out on the pool; each method's replay is
// driven in deterministic lockstep (ingest, wait for the publication,
// execute the parked re-solve synchronously), so results are
// byte-identical regardless of pool parallelism.
func EvaluateTimeline(ctx context.Context, pool *runner.Pool, tl *timeline.Timeline, cfg TimelineConfig) ([]TimelineScore, error) {
	cfg = cfg.withDefaults()
	jobs := make([]runner.Job[TimelineScore], 0, len(cfg.Methods))
	for _, m := range cfg.Methods {
		m := m
		jobs = append(jobs, runner.Job[TimelineScore]{
			ID: "timeline/" + string(m),
			Run: func(ctx context.Context) (TimelineScore, error) {
				return trackTimeline(ctx, tl, m, cfg)
			},
		})
	}
	rs, err := runner.Run(ctx, pool, jobs, nil)
	if err != nil {
		return nil, err
	}
	out := make([]TimelineScore, len(rs))
	for i, r := range rs {
		out[i] = r.Value
	}
	return out, nil
}

// trackTimeline drives one method's engine through the timeline in
// lockstep. The driver mirrors the engine's close-out rule to know
// exactly how many intervals each ingested step consumes and whether a
// re-solve was parked, waits for precisely those publications, and runs
// every parked re-solve on this goroutine (dispatch mode) — no
// scheduling race, hence deterministic output.
func trackTimeline(ctx context.Context, tl *timeline.Timeline, m stream.Method, cfg TimelineConfig) (TimelineScore, error) {
	score := TimelineScore{Method: string(m), Errors: make([]float64, len(tl.Steps))}
	for i := range score.Errors {
		score.Errors[i] = -1
	}
	parks := make(chan struct{}, len(tl.Steps)+1)
	eng, err := stream.New(tl.Epochs[0].Rt, stream.Config{
		Window:          cfg.Window,
		ResolveEvery:    cfg.ResolveEvery,
		Method:          m,
		Reg:             cfg.Reg,
		SigmaInv2:       cfg.SigmaInv2,
		ResolveMaxIter:  cfg.ResolveMaxIter,
		ResolveTol:      cfg.ResolveTol,
		ResolveDispatch: func() { parks <- struct{}{} },
	})
	if err != nil {
		return score, err
	}
	if err := tl.RegisterSwaps(eng); err != nil {
		return score, err
	}
	store := collector.NewStore(tl.Base.Net.NumPairs())
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(runCtx, store) }()

	var version uint64
	cursor, since := 0, 0
	for _, st := range tl.Steps {
		if err := ctx.Err(); err != nil {
			return score, err
		}
		if st.Missing {
			continue // an outage: nothing reaches the store
		}
		for p, mbps := range st.Demand {
			store.Ingest(collector.RateRecord{LSP: p, Interval: st.Interval, RateMbps: mbps, Poller: "timeline-eval"})
		}
		consumed, parked := 0, 0
		for cursor <= st.Interval {
			if !tl.Steps[cursor].Missing {
				consumed++
				if cfg.ResolveEvery > 0 {
					if since++; since >= cfg.ResolveEvery {
						parked++
						since = 0
					}
				}
				cursor++
			} else if st.Interval > cursor+1 {
				cursor++ // hole closed out: skipped without a publication
			} else {
				break // hole still open: everything behind it waits
			}
		}
		if consumed == 0 {
			continue
		}
		version += uint64(consumed)
		snap, err := eng.WaitVersion(ctx, version)
		if err != nil {
			return score, err
		}
		if parked > 0 {
			// Every park pings ResolveDispatch; draining them all
			// guarantees the latest-wins slot holds the newest window
			// before this goroutine claims it.
			for i := 0; i < parked; i++ {
				select {
				case <-parks:
				case err := <-done:
					return score, fmt.Errorf("scenario: timeline engine stopped early: %v", err)
				case <-ctx.Done():
					return score, ctx.Err()
				}
			}
			if !eng.TryResolve(ctx) {
				return score, fmt.Errorf("scenario: timeline re-solve vanished")
			}
			version++
			if snap, err = eng.WaitVersion(ctx, version); err != nil {
				return score, err
			}
			score.Resolves++
			if snap.ResolveWarm {
				score.WarmResolves++
			}
			score.Iterations += snap.ResolveIterations
		}
		est := snap.Resolve
		if est == nil {
			est = snap.Gravity
		}
		score.Errors[snap.Interval] = RelL1(est, tl.Steps[snap.Interval].Demand)
		score.FinalEpoch = snap.TopologyEpoch
	}
	cancel()
	<-done
	score.Recoveries = recoveriesFor(tl, score.Errors, cfg)
	return score, nil
}

// recoveriesFor derives the per-event recovery records from one
// method's observed error series. Diurnal cycles are continuous bends,
// not step changes, so they carry no recovery record.
func recoveriesFor(tl *timeline.Timeline, errs []float64, cfg TimelineConfig) []TimelineRecovery {
	var out []TimelineRecovery
	for _, ev := range tl.Script.Events {
		if ev.Kind == "diurnal" {
			continue
		}
		effect := ev.At
		label := ev.Kind
		switch ev.Kind {
		case "fail_link", "restore":
			label = ev.Kind + " " + ev.Link
		case "flash_crowd":
			label = fmt.Sprintf("flash_crowd %s-%s x%g", ev.FlashCrowd.Src, ev.FlashCrowd.Dst, ev.FlashCrowd.Factor)
		case "outage":
			effect = ev.Outage.Until
			label = fmt.Sprintf("outage [%d,%d)", ev.At, ev.Outage.Until)
		}
		r := TimelineRecovery{
			Event: label, Kind: ev.Kind, At: ev.At, EffectiveAt: effect,
			Baseline: -1, RecoveredAt: -1, LagWindows: -1,
		}
		sum, n := 0.0, 0
		for t := ev.At - 1; t >= 0 && n < cfg.BaselineWindow; t-- {
			if errs[t] >= 0 {
				sum += errs[t]
				n++
			}
		}
		tol := cfg.Tolerance
		if n > 0 {
			r.Baseline = sum / float64(n)
			if tol <= 0 {
				tol = r.Baseline * cfg.ToleranceFactor
			}
		}
		r.Tolerance = tol
		for t := effect; t < len(errs); t++ {
			if errs[t] < 0 {
				continue
			}
			// With no baseline and no absolute tolerance, the first
			// observation counts as recovered — there is nothing to
			// compare against.
			if tol <= 0 || errs[t] <= tol {
				r.RecoveredAt = t
				r.LagWindows = t - effect
				r.Recovered = true
				break
			}
		}
		out = append(out, r)
	}
	return out
}
