// Package scenario is the scenario lab: a registry of parameterized
// scenario families that turn the seeded backbone generator, the routing
// engines and the calibrated traffic generator into a diverse, repeatable
// evaluation space far beyond the paper's two extracted subnetworks
// (12-PoP Europe, 25-PoP America).
//
// A family spec is a colon-separated string — "scaled:100",
// "failure:25:worst", "ecmp:25:150", "quantized:50:100", "noisy:50:0.05"
// — and Build turns it into a netsim.Scenario-compatible Instance with
// ground truth: the busy-window mean demand, a consistent (or
// deliberately perturbed) snapshot estimation problem, and the
// busy-window load series for the time-series methods. The companion
// evaluation harness (eval.go) scores any set of estimation methods
// across any set of instances, fanning out on internal/runner.
//
// The families deliberately stress the assumptions the paper's methods
// rest on: scaled(n) grows the underdetermined system to 10k+ demands,
// failure(link) reroutes the surviving topology (the what-if task of the
// paper's introduction), ecmp splits demands over equal-cost paths so the
// routing matrix becomes fractional (the generalization below eq. 1),
// quantized coarsens IGP metrics the way operators do, and noisy injects
// the SNMP measurement error the paper's clean data set excludes (§6).
package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/te"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// DefaultWindow is the busy-period length every instance is evaluated
// over: 50 five-minute samples, the paper's 250-minute busy period
// (§5.3.4, same constant as experiments.BusyWindowSamples).
const DefaultWindow = 50

// Instance is one fully materialized evaluation problem: a scenario plus
// its busy-window ground truth and the measurement views estimators see.
type Instance struct {
	// Spec is the canonical family spec this instance was built from.
	Spec string
	// Family is the family name (first spec component).
	Family string
	// Sc is the underlying scenario (topology, routing, demand series).
	Sc *netsim.Scenario
	// Start and Window delimit the busy period within the series.
	Start, Window int
	// Truth is the busy-window mean demand vector — the ground truth
	// every estimate is scored against.
	Truth linalg.Vector
	// Thresh is the 90%-of-traffic demand threshold for MRE scoring.
	Thresh float64
	// Inst is the snapshot estimation problem: routing matrix plus the
	// link loads of the mean busy-window demand (perturbed for the noisy
	// family).
	Inst *core.Instance
	// Loads is the busy-window link-load series for time-series methods
	// (Vardi, fanout), perturbed per interval for the noisy family.
	Loads []linalg.Vector
	// Note carries family-specific context (failed link, split demands,
	// noise level) for reports.
	Note string
}

// Family documents one registered scenario family.
type Family struct {
	// Name is the spec prefix.
	Name string
	// Usage is the spec grammar, e.g. "failure:<base>[:worst|<linkID>]".
	Usage string
	// Desc is a one-line description.
	Desc string

	build func(args []string, seed int64) (*Instance, error)
}

// families is the registry, in documentation order.
var families = []Family{
	{
		Name:  "scaled",
		Usage: "scaled:<n|europe|america>",
		Desc:  "generated backbone with n PoPs (ring + skewed chords, ~3 adjacencies/PoP), single shortest-path routing; europe/america are the paper's subnetworks",
		build: buildScaled,
	},
	{
		Name:  "failure",
		Usage: "failure:<base>[:worst|<linkID>]",
		Desc:  "single-link failure: the adjacency is removed and all demands reroute on the survivor topology; 'worst' (default) picks the adjacency whose failure maximizes post-failure utilization under the true demands",
		build: buildFailure,
	},
	{
		Name:  "ecmp",
		Usage: "ecmp:<base>[:step]",
		Desc:  "metrics quantized to a coarse grid (default step 150) so equal-cost ties appear, then ECMP fractional routing — the routing matrix generalization below eq. 1",
		build: buildECMP,
	},
	{
		Name:  "quantized",
		Usage: "quantized:<base>[:step]",
		Desc:  "metrics quantized to a coarse grid (default step 150) with single shortest-path routing — same topology as ecmp but the single-path model",
		build: buildQuantized,
	},
	{
		Name:  "noisy",
		Usage: "noisy:<base>[:relstd]",
		Desc:  "multiplicative Gaussian measurement noise (default 5% relative std) on every link load — the SNMP error the paper's clean data set excludes (§6)",
		build: buildNoisy,
	},
}

// Families lists the registered scenario families in documentation order.
func Families() []Family {
	out := make([]Family, len(families))
	copy(out, families)
	return out
}

// Build materializes the instance described by spec with the given seed.
// The seed flows into topology generation, traffic generation and any
// noise, so equal (spec, seed) always reproduces the same instance.
func Build(spec string, seed int64) (*Instance, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	name := parts[0]
	for _, f := range families {
		if f.Name == name {
			in, err := f.build(parts[1:], seed)
			if err != nil {
				return nil, fmt.Errorf("scenario %q: %w", spec, err)
			}
			in.Spec = spec
			in.Family = name
			return in, nil
		}
	}
	known := make([]string, len(families))
	for i, f := range families {
		known[i] = f.Name
	}
	return nil, fmt.Errorf("scenario %q: unknown family %q (have %s)", spec, name, strings.Join(known, ", "))
}

// baseParts resolves a family's <base> argument to a generated network
// and its calibrated traffic configuration: "europe", "america", or a
// PoP count for the scaled generator.
func baseParts(arg string, seed int64) (*topology.Network, traffic.Config, error) {
	switch arg {
	case "", "europe":
		return topology.Europe(seed), traffic.Europe(seed), nil
	case "america":
		return topology.America(seed), traffic.America(seed), nil
	}
	n, err := strconv.Atoi(arg)
	if err != nil {
		return nil, traffic.Config{}, fmt.Errorf("base %q is neither europe, america nor a PoP count", arg)
	}
	if n < 3 || n > 500 {
		return nil, traffic.Config{}, fmt.Errorf("PoP count %d out of range [3, 500]", n)
	}
	net, err := topology.Scaled(seed, n)
	if err != nil {
		return nil, traffic.Config{}, err
	}
	return net, traffic.Scaled(seed, n), nil
}

// finish derives the busy-window ground truth and measurement views from
// a routed scenario. noise > 0 perturbs every measured load vector (but
// never the truth) with multiplicative Gaussian noise of that relative
// standard deviation.
func finish(sc *netsim.Scenario, noise float64, seed int64) (*Instance, error) {
	w := DefaultWindow
	if n := len(sc.Series.Demands); w > n {
		w = n
	}
	start := sc.BusyWindow(w)
	truth := sc.Series.MeanDemand(start, w)
	loads := make([]linalg.Vector, w)
	for i := range loads {
		v := sc.LinkLoads(start + i)
		if noise > 0 {
			// Distinct derived seed per interval; offset 1 keeps the
			// snapshot's noise stream (below) independent of interval 0.
			v = netsim.PerturbLoads(v, noise, seed+int64(i+1)*7919)
		}
		loads[i] = v
	}
	snap := sc.Rt.LinkLoads(truth)
	if noise > 0 {
		snap = netsim.PerturbLoads(snap, noise, seed)
	}
	inst, err := core.NewInstance(sc.Rt, snap)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Sc: sc, Start: start, Window: w,
		Truth: truth, Thresh: core.ShareThreshold(truth, 0.9),
		Inst: inst, Loads: loads,
	}, nil
}

func buildScaled(args []string, seed int64) (*Instance, error) {
	arg := ""
	if len(args) > 0 {
		arg = args[0]
	}
	net, cfg, err := baseParts(arg, seed)
	if err != nil {
		return nil, err
	}
	sc, err := netsim.BuildWith(net.Name, net, cfg, netsim.RoutingSPF)
	if err != nil {
		return nil, err
	}
	return finish(sc, 0, seed)
}

func buildFailure(args []string, seed int64) (*Instance, error) {
	arg, which := "", "worst"
	if len(args) > 0 {
		arg = args[0]
	}
	if len(args) > 1 {
		which = args[1]
	}
	net, cfg, err := baseParts(arg, seed)
	if err != nil {
		return nil, err
	}
	base, err := netsim.BuildWith(net.Name, net, cfg, netsim.RoutingSPF)
	if err != nil {
		return nil, err
	}
	w := DefaultWindow
	start := base.BusyWindow(w)
	truth := base.Series.MeanDemand(start, w)
	var linkID int
	if which == "worst" {
		// The what-if sweep of internal/te: fail every adjacency, keep
		// the one with the worst post-failure utilization.
		worst, _, err := te.WorstCaseFailure(net, truth)
		if err != nil {
			return nil, fmt.Errorf("worst-case failure sweep: %w", err)
		}
		linkID = worst
	} else {
		linkID, err = strconv.Atoi(which)
		if err != nil {
			return nil, fmt.Errorf("failure link %q is neither worst nor a link ID", which)
		}
		if linkID < 0 || linkID >= net.NumLinks() || net.Links[linkID].Kind != topology.Interior {
			return nil, fmt.Errorf("link %d is not an interior link of the base network", linkID)
		}
	}
	// FromSeries reroutes the survivor (and fails if the failure
	// partitions it), so the post-failure utilization is read off the
	// instance's own routing rather than a redundant te.FailureImpact
	// reroute of the same topology.
	survivor := topology.RemoveAdjacency(net, linkID)
	sc, err := netsim.FromSeries(net.Name+"-failure", survivor, base.Series, netsim.RoutingSPF)
	if err != nil {
		return nil, fmt.Errorf("failing link %d: %w", linkID, err)
	}
	in, err := finish(sc, 0, seed)
	if err != nil {
		return nil, err
	}
	beforeUtil, _ := te.MaxUtilization(base.Rt, truth)
	afterUtil, _ := te.MaxUtilization(sc.Rt, truth)
	l := net.Links[linkID]
	in.Note = fmt.Sprintf("failed adjacency %d (%s-%s), max util %.3f -> %.3f",
		linkID, net.Routers[l.Src].Name, net.Routers[l.Dst].Name, beforeUtil, afterUtil)
	return in, nil
}

func quantizedNet(args []string, seed int64) (*topology.Network, traffic.Config, float64, error) {
	arg := ""
	if len(args) > 0 {
		arg = args[0]
	}
	step := 150.0
	if len(args) > 1 {
		s, err := strconv.ParseFloat(args[1], 64)
		if err != nil || s <= 0 {
			return nil, traffic.Config{}, 0, fmt.Errorf("metric step %q is not a positive number", args[1])
		}
		step = s
	}
	net, cfg, err := baseParts(arg, seed)
	if err != nil {
		return nil, traffic.Config{}, 0, err
	}
	return topology.QuantizeMetrics(net, step), cfg, step, nil
}

func buildECMP(args []string, seed int64) (*Instance, error) {
	net, cfg, step, err := quantizedNet(args, seed)
	if err != nil {
		return nil, err
	}
	sc, err := netsim.BuildWith(net.Name+"-ecmp", net, cfg, netsim.RoutingECMP)
	if err != nil {
		return nil, err
	}
	in, err := finish(sc, 0, seed)
	if err != nil {
		return nil, err
	}
	in.Note = fmt.Sprintf("metric step %g, %d/%d demands split", step, splitDemands(sc), net.NumPairs())
	return in, nil
}

func buildQuantized(args []string, seed int64) (*Instance, error) {
	net, cfg, step, err := quantizedNet(args, seed)
	if err != nil {
		return nil, err
	}
	sc, err := netsim.BuildWith(net.Name+"-quantized", net, cfg, netsim.RoutingSPF)
	if err != nil {
		return nil, err
	}
	in, err := finish(sc, 0, seed)
	if err != nil {
		return nil, err
	}
	in.Note = fmt.Sprintf("metric step %g", step)
	return in, nil
}

func buildNoisy(args []string, seed int64) (*Instance, error) {
	arg := ""
	if len(args) > 0 {
		arg = args[0]
	}
	noise := 0.05
	if len(args) > 1 {
		v, err := strconv.ParseFloat(args[1], 64)
		if err != nil || v < 0 || v >= 1 {
			return nil, fmt.Errorf("relative noise %q out of range [0, 1)", args[1])
		}
		noise = v
	}
	net, cfg, err := baseParts(arg, seed)
	if err != nil {
		return nil, err
	}
	sc, err := netsim.BuildWith(net.Name+"-noisy", net, cfg, netsim.RoutingSPF)
	if err != nil {
		return nil, err
	}
	in, err := finish(sc, noise, seed)
	if err != nil {
		return nil, err
	}
	in.Note = fmt.Sprintf("relative load noise %g", noise)
	return in, nil
}

// BusySeries repackages the instance's busy evaluation window as a
// standalone demand series: the Window intervals starting at Start,
// with their original timestamps. It is what turns a scenario-lab
// instance into a live replay source — collector.Replay (and the
// fleet's scenario tenants) can stream exactly the window every batch
// evaluation scores against, so a streaming engine's collected window
// mean converges to Truth. The demand vectors are shared with the
// underlying series, which replay treats as read-only.
func (in *Instance) BusySeries() *traffic.Series {
	s := in.Sc.Series
	out := *s
	out.Times = s.Times[in.Start : in.Start+in.Window]
	out.Demands = s.Demands[in.Start : in.Start+in.Window]
	out.Cfg.Samples = in.Window
	return &out
}

// splitDemands counts demands whose routing row set contains a fractional
// interior entry — demands actually split by ECMP.
func splitDemands(sc *netsim.Scenario) int {
	split := 0
	for p := 0; p < sc.Net.NumPairs(); p++ {
		for _, lid := range sc.Rt.PairPaths[p] {
			v := sc.Rt.R.At(lid, p)
			if v > 1e-9 && v < 1-1e-9 {
				split++
				break
			}
		}
	}
	return split
}
