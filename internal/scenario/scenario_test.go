package scenario

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"math"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/runner"
	"repro/internal/topology"
)

func TestBuildUnknownFamily(t *testing.T) {
	if _, err := Build("warp:9", 1); err == nil || !strings.Contains(err.Error(), "unknown family") {
		t.Fatalf("want unknown-family error, got %v", err)
	}
	if _, err := Build("scaled:nonsense", 1); err == nil {
		t.Fatal("want error for non-numeric base")
	}
	if _, err := Build("scaled:2", 1); err == nil {
		t.Fatal("want error for PoP count below 3")
	}
	if _, err := Build("noisy:12:1.5", 1); err == nil {
		t.Fatal("want error for out-of-range noise")
	}
	if _, err := Build("ecmp:12:-1", 1); err == nil {
		t.Fatal("want error for non-positive metric step")
	}
	if _, err := Build("failure:12:xyz", 1); err == nil {
		t.Fatal("want error for bad failure link")
	}
}

func TestFamiliesDocumented(t *testing.T) {
	fams := Families()
	if len(fams) < 5 {
		t.Fatalf("want at least 5 families, got %d", len(fams))
	}
	for _, f := range fams {
		if f.Name == "" || f.Usage == "" || f.Desc == "" {
			t.Errorf("family %+v lacks documentation", f)
		}
		if !strings.HasPrefix(f.Usage, f.Name+":") {
			t.Errorf("family %s usage %q does not start with its name", f.Name, f.Usage)
		}
	}
}

// TestScaledInstance checks the ground-truth consistency contract: the
// instance's snapshot loads are exactly R times the busy-window mean
// demand, and the threshold selects the demands carrying 90% of traffic.
func TestScaledInstance(t *testing.T) {
	in, err := Build("scaled:20", 3)
	if err != nil {
		t.Fatal(err)
	}
	if in.Sc.Net.NumPoPs() != 20 || in.Sc.Net.NumPairs() != 380 {
		t.Fatalf("got %d PoPs / %d pairs", in.Sc.Net.NumPoPs(), in.Sc.Net.NumPairs())
	}
	if in.Spec != "scaled:20" || in.Family != "scaled" {
		t.Fatalf("spec/family = %q/%q", in.Spec, in.Family)
	}
	want := in.Sc.Rt.LinkLoads(in.Truth)
	for i, v := range in.Inst.Loads {
		if v != want[i] {
			t.Fatalf("snapshot load %d = %v, want %v (must be noise-free)", i, v, want[i])
		}
	}
	if len(in.Loads) != in.Window {
		t.Fatalf("got %d load samples, want %d", len(in.Loads), in.Window)
	}
	if in.Thresh <= 0 {
		t.Fatalf("threshold %v", in.Thresh)
	}
	// Same (spec, seed) must reproduce the same instance.
	in2, err := Build("scaled:20", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Truth {
		if in.Truth[i] != in2.Truth[i] {
			t.Fatal("instance not deterministic in (spec, seed)")
		}
	}
}

func TestScaledRegionAliases(t *testing.T) {
	in, err := Build("scaled:europe", 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Sc.Net.NumPoPs() != 12 {
		t.Fatalf("europe alias built %d PoPs", in.Sc.Net.NumPoPs())
	}
	in, err = Build("scaled:america", 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Sc.Net.NumPoPs() != 25 {
		t.Fatalf("america alias built %d PoPs", in.Sc.Net.NumPoPs())
	}
}

// TestFailureInstance checks that the failure family removes exactly one
// adjacency, keeps the demand ground truth of the base scenario, and
// reroutes consistently.
func TestFailureInstance(t *testing.T) {
	base, err := Build("scaled:12", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit link: fail interior adjacency 0.
	in, err := Build("failure:12:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := in.Sc.Net.InteriorLinks(), base.Sc.Net.InteriorLinks()-2; got != want {
		t.Fatalf("survivor has %d interior links, want %d", got, want)
	}
	// Ground truth unchanged: same demand series, same busy window.
	for i := range in.Truth {
		if in.Truth[i] != base.Truth[i] {
			t.Fatal("failure family must keep the base demand ground truth")
		}
	}
	// Loads consistent on the rerouted topology.
	want := in.Sc.Rt.LinkLoads(in.Truth)
	for i, v := range in.Inst.Loads {
		if v != want[i] {
			t.Fatalf("rerouted load %d inconsistent", i)
		}
	}
	if !strings.Contains(in.Note, "failed adjacency") {
		t.Fatalf("note %q", in.Note)
	}

	// Worst-case selection must also work and name a valid link.
	worst, err := Build("failure:12:worst", 2)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Sc.Net.InteriorLinks() != base.Sc.Net.InteriorLinks()-2 {
		t.Fatal("worst-case failure did not remove exactly one adjacency")
	}
	// Failing an access link must be rejected.
	ingress := -1
	for _, l := range base.Sc.Net.Links {
		if l.Kind == topology.Ingress {
			ingress = l.ID
			break
		}
	}
	if _, err := Build("failure:12:"+strconv.Itoa(ingress), 2); err == nil {
		t.Fatal("want error when failing an access link")
	}
}

// TestECMPInstance checks that the ecmp family actually splits demands
// (fractional routing entries) and that its loads use the fractional
// matrix.
func TestECMPInstance(t *testing.T) {
	in, err := Build("ecmp:12:150", 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Sc.Model != netsim.RoutingECMP {
		t.Fatalf("model %q", in.Sc.Model)
	}
	if n := splitDemands(in.Sc); n == 0 {
		t.Fatal("quantized 12-PoP network splits no demands — ECMP family is vacuous")
	}
	if !strings.Contains(in.Note, "demands split") {
		t.Fatalf("note %q", in.Note)
	}
	// The quantized single-path variant shares the topology but not the
	// routing model.
	q, err := Build("quantized:12:150", 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Sc.Model != netsim.RoutingSPF {
		t.Fatalf("quantized model %q", q.Sc.Model)
	}
	if n := splitDemands(q.Sc); n != 0 {
		t.Fatalf("single-path routing reports %d split demands", n)
	}
}

// TestNoisyInstance checks that noise perturbs the measured loads but
// never the ground truth, and that noise level 0 reproduces the clean
// instance.
func TestNoisyInstance(t *testing.T) {
	clean, err := Build("scaled:12", 5)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Build("noisy:12:0.05", 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Truth {
		if clean.Truth[i] != noisy.Truth[i] {
			t.Fatal("noise must not touch the ground truth")
		}
	}
	diff := 0
	for i := range clean.Inst.Loads {
		if clean.Inst.Loads[i] != noisy.Inst.Loads[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("noisy instance has clean snapshot loads")
	}
	zero, err := Build("noisy:12:0", 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Inst.Loads {
		if clean.Inst.Loads[i] != zero.Inst.Loads[i] {
			t.Fatal("noisy:...:0 must equal the clean instance")
		}
	}
}

// TestEvaluate runs the full method set over two small instances and
// checks the result grid: order, scoring sanity, runtime accounting.
func TestEvaluate(t *testing.T) {
	a, err := Build("scaled:8", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("ecmp:8:150", 1)
	if err != nil {
		t.Fatal(err)
	}
	instances := []*Instance{a, b}
	methods := Methods(DefaultBudget())
	results, err := Evaluate(context.Background(), runner.NewPool(0), instances, methods)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(instances)*len(methods) {
		t.Fatalf("got %d results, want %d", len(results), len(instances)*len(methods))
	}
	i := 0
	for _, in := range instances {
		for _, m := range methods {
			r := results[i]
			i++
			if r.Spec != in.Spec || r.Method != m.Name {
				t.Fatalf("result %d is %s/%s, want %s/%s", i-1, r.Spec, r.Method, in.Spec, m.Name)
			}
			if r.Err != nil {
				t.Fatalf("%s/%s failed: %v", r.Spec, r.Method, r.Err)
			}
			if r.MRE < 0 || r.RelL1 < 0 || r.RelL2 < 0 {
				t.Fatalf("%s/%s negative error metric: %+v", r.Spec, r.Method, r)
			}
			if r.RelL1 > 2.5 || r.RelL2 > 10 {
				t.Fatalf("%s/%s implausible error: %+v", r.Spec, r.Method, r)
			}
			if r.Runtime < 0 {
				t.Fatalf("%s/%s negative runtime", r.Spec, r.Method)
			}
		}
	}
	// The entropy estimate must beat (or at least match) its gravity
	// prior in relative L2 on a clean consistent instance: it folds in
	// the interior link observations gravity ignores.
	var grav, ent Result
	for _, r := range results {
		if r.Spec == a.Spec && r.Method == "gravity" {
			grav = r
		}
		if r.Spec == a.Spec && r.Method == "entropy" {
			ent = r
		}
	}
	if ent.RelL2 > grav.RelL2+1e-9 {
		t.Fatalf("entropy relL2 %.4f worse than gravity prior %.4f", ent.RelL2, grav.RelL2)
	}
}

// TestRelErrors pins the metric definitions.
func TestRelErrors(t *testing.T) {
	est := []float64{1, 2, 3}
	truth := []float64{2, 2, 2}
	if got, want := RelL1(est, truth), 2.0/6.0; abs(got-want) > 1e-15 {
		t.Fatalf("RelL1 = %v, want %v", got, want)
	}
	if got, want := RelL2(est, truth), 0.40824829046386301637; abs(got-want) > 1e-12 {
		t.Fatalf("RelL2 = %v, want %v", got, want)
	}
	if RelL1(truth, truth) != 0 || RelL2(truth, truth) != 0 {
		t.Fatal("self-error must be zero")
	}
	zero := []float64{0, 0, 0}
	if RelL1(est, zero) != 0 || RelL2(est, zero) != 0 {
		t.Fatal("zero truth must yield zero relative error")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestGravityOnInstance ties the harness to core: gravity on a consistent
// instance reproduces the measured total traffic.
func TestGravityOnInstance(t *testing.T) {
	in, err := Build("scaled:10", 7)
	if err != nil {
		t.Fatal(err)
	}
	g := core.Gravity(in.Inst)
	if got, want := g.Sum(), in.Inst.TotalTraffic(); abs(got-want) > 1e-6*want {
		t.Fatalf("gravity total %v, measured total %v", got, want)
	}
}

// TestBusySeriesMatchesTruth pins the replay-source contract: the mean
// of BusySeries' demands is exactly the instance's ground truth, and
// the sub-series is the [Start, Start+Window) slice of the base series.
func TestBusySeriesMatchesTruth(t *testing.T) {
	in, err := Build("scaled:europe", 1)
	if err != nil {
		t.Fatal(err)
	}
	bs := in.BusySeries()
	if len(bs.Demands) != in.Window || len(bs.Times) != in.Window {
		t.Fatalf("busy series has %d demands / %d times, want %d", len(bs.Demands), len(bs.Times), in.Window)
	}
	if bs.Cfg.Samples != in.Window || bs.P != in.Sc.Series.P || bs.N != in.Sc.Series.N {
		t.Fatalf("busy series dims (samples=%d P=%d N=%d) drifted from instance", bs.Cfg.Samples, bs.P, bs.N)
	}
	for k := 0; k < in.Window; k++ {
		if &bs.Demands[k][0] != &in.Sc.Series.Demands[in.Start+k][0] {
			t.Fatalf("busy series demand %d is not the base series interval %d", k, in.Start+k)
		}
	}
	mean := linalg.NewVector(bs.P)
	for _, d := range bs.Demands {
		linalg.Axpy(1, d, mean)
	}
	mean.Scale(1 / float64(in.Window))
	for p := range mean {
		if d := math.Abs(mean[p] - in.Truth[p]); d > 1e-9 {
			t.Fatalf("demand %d: busy-series mean %v vs truth %v (diff %g)", p, mean[p], in.Truth[p], d)
		}
	}
}
