package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// europePoPs are the 12 European PoPs of the paper's extracted subnetwork.
// City names are representative of Global Crossing's European footprint.
var europePoPs = []string{
	"London", "Amsterdam", "Paris", "Frankfurt", "Brussels", "Zurich",
	"Milan", "Madrid", "Stockholm", "Copenhagen", "Dublin", "Vienna",
}

// americaPoPs are the 25 American PoPs of the paper's extracted subnetwork.
var americaPoPs = []string{
	"NewYork", "Newark", "Washington", "Atlanta", "Miami", "Chicago",
	"Dallas", "Houston", "Denver", "Seattle", "SanFrancisco", "SanJose",
	"LosAngeles", "SanDiego", "Phoenix", "LasVegas", "SaltLake",
	"Minneapolis", "StLouis", "KansasCity", "Detroit", "Cleveland",
	"Boston", "Philadelphia", "Tampa",
}

// GeneratorConfig controls the seeded backbone generator.
type GeneratorConfig struct {
	Name            string
	PoPNames        []string
	UndirectedEdges int     // interior adjacencies (each becomes two directed links)
	Seed            int64   // RNG seed for chord placement
	CapacityMbps    float64 // uniform interior link capacity
	AccessCapacity  float64 // ingress/egress link capacity
}

// Europe returns the 12-PoP European subnetwork with the paper's link
// count: 72 directed interior links (36 adjacencies). One ingress and one
// egress access link per PoP are added on top, making the marginal totals
// te(n) and tx(m) observable as the paper's methods require.
func Europe(seed int64) *Network {
	n, err := Generate(GeneratorConfig{
		Name:            "europe",
		PoPNames:        europePoPs,
		UndirectedEdges: 36,
		Seed:            seed,
		CapacityMbps:    10000, // STM-64-class trunks
		AccessCapacity:  20000,
	})
	if err != nil {
		panic(err) // static config cannot fail
	}
	return n
}

// America returns the 25-PoP American subnetwork with the paper's link
// count: 284 directed interior links (142 adjacencies), plus one ingress
// and one egress access link per PoP.
func America(seed int64) *Network {
	n, err := Generate(GeneratorConfig{
		Name:            "america",
		PoPNames:        americaPoPs,
		UndirectedEdges: 142,
		Seed:            seed,
		CapacityMbps:    10000,
		AccessCapacity:  20000,
	})
	if err != nil {
		panic(err)
	}
	return n
}

// ScaledNames returns n deterministic PoP names for generated backbones:
// the 37 real city names of the paper's two subnetworks first, then
// synthetic "PoP038"-style names. Used by the scaled scenario family to
// grow backbones past the paper's 25-PoP ceiling.
func ScaledNames(n int) []string {
	names := make([]string, 0, n)
	names = append(names, europePoPs...)
	names = append(names, americaPoPs...)
	if n <= len(names) {
		return names[:n]
	}
	for i := len(names); i < n; i++ {
		names = append(names, fmt.Sprintf("PoP%03d", i+1))
	}
	return names
}

// Scaled generates an n-PoP backbone with the same construction as the
// paper's two subnetworks (ring + skewed chords, Euclidean metrics, one
// ingress and one egress access link per PoP) at an adjacency density of
// about three adjacencies per PoP — sparse enough that the estimation
// problem stays as underdetermined as on the real networks (P = n(n−1)
// demands against ~8n link observations). It is the base topology of the
// scenario lab's scaled(n) family.
func Scaled(seed int64, n int) (*Network, error) {
	edges := 3 * n
	if max := n * (n - 1) / 2; edges > max {
		edges = max
	}
	return Generate(GeneratorConfig{
		Name:            fmt.Sprintf("scaled-%d", n),
		PoPNames:        ScaledNames(n),
		UndirectedEdges: edges,
		Seed:            seed,
		CapacityMbps:    10000,
		AccessCapacity:  40000,
	})
}

// Generate builds a connected backbone with one core router per PoP. PoPs
// are embedded at seeded random positions in a plane and link metrics are
// the Euclidean distances — exactly how IGP metrics track fiber distance in
// real backbones. Because Euclidean metrics satisfy the triangle
// inequality, every adjacent PoP pair routes over its direct link, which is
// what makes large demands well-identified from link loads (the property
// the paper's regularized estimators exploit). Connectivity comes from a
// tour over the PoPs in angular order; seeded chords preferring major
// (low-index) PoPs densify the core until the requested adjacency count is
// reached. Each PoP also receives one ingress and one egress access link.
func Generate(cfg GeneratorConfig) (*Network, error) {
	np := len(cfg.PoPNames)
	if np < 3 {
		return nil, fmt.Errorf("topology: need at least 3 PoPs, got %d", np)
	}
	maxEdges := np * (np - 1) / 2
	if cfg.UndirectedEdges < np || cfg.UndirectedEdges > maxEdges {
		return nil, fmt.Errorf("topology: %d adjacencies out of range [%d, %d]",
			cfg.UndirectedEdges, np, maxEdges)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := &Network{Name: cfg.Name}
	// Plane embedding: major PoPs nearer the center of the region.
	xs := make([]float64, np)
	ys := make([]float64, np)
	for i := 0; i < np; i++ {
		spread := 0.35 + 0.65*float64(i)/float64(np)
		xs[i] = 500 * spread * (2*rng.Float64() - 1)
		ys[i] = 500 * spread * (2*rng.Float64() - 1)
	}
	for i, name := range cfg.PoPNames {
		net.PoPs = append(net.PoPs, PoP{ID: i, Name: name, Routers: []int{i}})
		net.Routers = append(net.Routers, Router{ID: i, PoP: i, Name: name + "-cr1"})
	}
	type edge struct{ a, b int }
	have := make(map[edge]bool)
	addAdjacency := func(a, b int) {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		metric := math.Hypot(dx, dy) + 1 // +1 keeps metrics strictly positive
		for _, pair := range [2][2]int{{a, b}, {b, a}} {
			net.Links = append(net.Links, Link{
				ID: len(net.Links), Kind: Interior,
				Src: pair[0], Dst: pair[1],
				CapacityMbps: cfg.CapacityMbps, Metric: metric,
			})
		}
		have[edge{a, b}] = true
		have[edge{b, a}] = true
	}
	// Tour in angular order around the centroid: a planar-looking ring.
	var cx, cy float64
	for i := 0; i < np; i++ {
		cx += xs[i] / float64(np)
		cy += ys[i] / float64(np)
	}
	order := make([]int, np)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return math.Atan2(ys[order[a]]-cy, xs[order[a]]-cx) < math.Atan2(ys[order[b]]-cy, xs[order[b]]-cx)
	})
	for i := 0; i < np; i++ {
		addAdjacency(order[i], order[(i+1)%np])
	}
	// Random chords, preferring low-index ("large") PoPs so the generated
	// backbone is densest around major cities, like a real one.
	for added := np; added < cfg.UndirectedEdges; {
		a := pickSkewed(rng, np)
		b := pickSkewed(rng, np)
		if a == b || have[edge{a, b}] {
			continue
		}
		addAdjacency(a, b)
		added++
	}
	// Access links.
	for i := range net.PoPs {
		net.Links = append(net.Links, Link{
			ID: len(net.Links), Kind: Ingress, Src: i, Dst: net.HeadEnd(i),
			CapacityMbps: cfg.AccessCapacity, Metric: 0,
		})
		net.Links = append(net.Links, Link{
			ID: len(net.Links), Kind: Egress, Src: net.HeadEnd(i), Dst: i,
			CapacityMbps: cfg.AccessCapacity, Metric: 0,
		})
	}
	if err := net.validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// pickSkewed draws a PoP index with probability decreasing in the index,
// so low indices (major cities) get more chords.
func pickSkewed(rng *rand.Rand, n int) int {
	// Squaring a uniform variate biases toward 0.
	u := rng.Float64()
	return int(u * u * float64(n))
}

// QuantizeMetrics returns a copy of the network with every interior link
// metric rounded up to a multiple of step. Coarse metric grids are common
// in practice (operators assign small-integer IGP weights) and create
// equal-cost ties, which is what makes ECMP splitting actually occur.
func QuantizeMetrics(net *Network, step float64) *Network {
	if step <= 0 {
		panic("topology: QuantizeMetrics needs positive step")
	}
	c := &Network{Name: net.Name}
	c.PoPs = make([]PoP, len(net.PoPs))
	for i, p := range net.PoPs {
		c.PoPs[i] = p
		c.PoPs[i].Routers = append([]int(nil), p.Routers...)
	}
	c.Routers = append([]Router(nil), net.Routers...)
	c.Links = append([]Link(nil), net.Links...)
	for i := range c.Links {
		if c.Links[i].Kind == Interior {
			c.Links[i].Metric = math.Ceil(c.Links[i].Metric/step) * step
		}
	}
	if err := c.validate(); err != nil {
		panic(err) // metric changes cannot invalidate the structure
	}
	return c
}

// RemoveAdjacency returns a copy of the network with the given interior
// link and its reverse direction removed — the basic move of failure
// analysis. Link IDs are re-assigned contiguously in the copy.
func RemoveAdjacency(net *Network, linkID int) *Network {
	failed := net.Links[linkID]
	c := &Network{Name: net.Name}
	c.PoPs = make([]PoP, len(net.PoPs))
	for i, p := range net.PoPs {
		c.PoPs[i] = p
		c.PoPs[i].Routers = append([]int(nil), p.Routers...)
	}
	c.Routers = append([]Router(nil), net.Routers...)
	for _, l := range net.Links {
		if l.Kind == Interior &&
			((l.Src == failed.Src && l.Dst == failed.Dst) ||
				(l.Src == failed.Dst && l.Dst == failed.Src)) {
			continue
		}
		l.ID = len(c.Links)
		c.Links = append(c.Links, l)
	}
	if err := c.validate(); err != nil {
		panic(err) // removal cannot invalidate PoPs or routers
	}
	return c
}

// AddRouterToPoP grows PoP pop with an extra core router connected to every
// existing router of the PoP by a pair of high-capacity intra-PoP links.
// Used to model PoPs whose transit routers carry through-traffic.
func AddRouterToPoP(net *Network, pop int, metric float64) *Network {
	c := &Network{Name: net.Name}
	c.PoPs = append([]PoP(nil), net.PoPs...)
	c.Routers = append([]Router(nil), net.Routers...)
	c.Links = append([]Link(nil), net.Links...)
	id := len(c.Routers)
	c.Routers = append(c.Routers, Router{
		ID: id, PoP: pop,
		Name: fmt.Sprintf("%s-cr%d", c.PoPs[pop].Name, len(c.PoPs[pop].Routers)+1),
	})
	rs := append([]int(nil), c.PoPs[pop].Routers...)
	c.PoPs[pop].Routers = append(rs, id)
	for _, r := range rs {
		for _, pair := range [2][2]int{{r, id}, {id, r}} {
			c.Links = append(c.Links, Link{
				ID: len(c.Links), Kind: Interior, Src: pair[0], Dst: pair[1],
				CapacityMbps: 100000, Metric: metric,
			})
		}
	}
	if err := c.validate(); err != nil {
		panic(err)
	}
	return c
}
