// Package topology models the backbone network: PoPs, routers, directed
// links, CSPF-style path computation and the construction of the routing
// matrix R of equation (1) in the paper.
//
// The paper's data comes from Global Crossing's MPLS backbone, where a full
// mesh of LSPs connects the core routers and each LSP's path is computed by
// constraint-based shortest-path-first (CSPF). The paper itself reproduced
// those paths with an off-line routing simulation (Cariden MATE); this
// package plays that role here.
package topology

import (
	"fmt"
)

// LinkKind distinguishes interior backbone links from the access links over
// which traffic enters and leaves the network (the e(n) and x(m) links of
// the paper's notation).
type LinkKind int

const (
	// Interior links connect core routers.
	Interior LinkKind = iota
	// Ingress is the access link over which all traffic sourced at a PoP
	// enters the network: t_{e(n)}.
	Ingress
	// Egress is the access link over which all traffic destined to a PoP
	// leaves the network: t_{x(m)}.
	Egress
)

func (k LinkKind) String() string {
	switch k {
	case Interior:
		return "interior"
	case Ingress:
		return "ingress"
	case Egress:
		return "egress"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// PoP is a point of presence: one or more co-located core routers in a city.
type PoP struct {
	ID      int
	Name    string
	Routers []int // router IDs, first is the LSP head-end
}

// Router is a core router.
type Router struct {
	ID   int
	PoP  int
	Name string
}

// Link is a directed router-to-router link (Interior) or a PoP access link
// (Ingress/Egress, with the external side implicit).
type Link struct {
	ID           int
	Kind         LinkKind
	Src, Dst     int     // router IDs for Interior; PoP ID in Src for Ingress / Dst for Egress
	CapacityMbps float64 // CSPF constraint
	Metric       float64 // IGP metric used as CSPF path length
}

// Network is an immutable backbone description.
type Network struct {
	Name    string
	PoPs    []PoP
	Routers []Router
	Links   []Link

	outLinks [][]int // router -> outgoing Interior link IDs
}

// FromParts assembles and validates a Network from previously serialized
// pieces (see netsim's scenario files).
func FromParts(name string, pops []PoP, routers []Router, links []Link) (*Network, error) {
	n := &Network{Name: name, PoPs: pops, Routers: routers, Links: links}
	if err := n.validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// NumPoPs returns the number of PoPs.
func (n *Network) NumPoPs() int { return len(n.PoPs) }

// NumPairs returns the number of ordered PoP pairs P = N·(N−1).
func (n *Network) NumPairs() int { return len(n.PoPs) * (len(n.PoPs) - 1) }

// NumLinks returns the total number of links, access links included.
func (n *Network) NumLinks() int { return len(n.Links) }

// InteriorLinks returns the number of Interior links.
func (n *Network) InteriorLinks() int {
	c := 0
	for _, l := range n.Links {
		if l.Kind == Interior {
			c++
		}
	}
	return c
}

// PairIndex maps an ordered PoP pair (src, dst), src != dst, to its demand
// index p in 0..P-1. The enumeration is row-major with the diagonal removed.
func (n *Network) PairIndex(src, dst int) int {
	if src == dst {
		panic("topology: PairIndex of diagonal")
	}
	d := dst
	if dst > src {
		d--
	}
	return src*(len(n.PoPs)-1) + d
}

// PairFromIndex is the inverse of PairIndex.
func (n *Network) PairFromIndex(p int) (src, dst int) {
	nm1 := len(n.PoPs) - 1
	src = p / nm1
	d := p % nm1
	dst = d
	if d >= src {
		dst = d + 1
	}
	return src, dst
}

// HeadEnd returns the LSP head-end router of PoP n.
func (n *Network) HeadEnd(pop int) int { return n.PoPs[pop].Routers[0] }

// validate wires derived structures and sanity-checks the definition.
func (n *Network) validate() error {
	n.outLinks = make([][]int, len(n.Routers))
	for _, l := range n.Links {
		switch l.Kind {
		case Interior:
			if l.Src < 0 || l.Src >= len(n.Routers) || l.Dst < 0 || l.Dst >= len(n.Routers) {
				return fmt.Errorf("topology: link %d endpoints out of range", l.ID)
			}
			if l.Src == l.Dst {
				return fmt.Errorf("topology: link %d is a self-loop", l.ID)
			}
			n.outLinks[l.Src] = append(n.outLinks[l.Src], l.ID)
		case Ingress:
			if l.Src < 0 || l.Src >= len(n.PoPs) {
				return fmt.Errorf("topology: ingress link %d PoP out of range", l.ID)
			}
		case Egress:
			if l.Dst < 0 || l.Dst >= len(n.PoPs) {
				return fmt.Errorf("topology: egress link %d PoP out of range", l.ID)
			}
		}
	}
	for i, r := range n.Routers {
		if r.ID != i {
			return fmt.Errorf("topology: router %d has ID %d", i, r.ID)
		}
		if r.PoP < 0 || r.PoP >= len(n.PoPs) {
			return fmt.Errorf("topology: router %d PoP out of range", i)
		}
	}
	for i, l := range n.Links {
		if l.ID != i {
			return fmt.Errorf("topology: link %d has ID %d", i, l.ID)
		}
	}
	for i, p := range n.PoPs {
		if p.ID != i {
			return fmt.Errorf("topology: PoP %d has ID %d", i, p.ID)
		}
		if len(p.Routers) == 0 {
			return fmt.Errorf("topology: PoP %q has no routers", p.Name)
		}
		for _, r := range p.Routers {
			if r < 0 || r >= len(n.Routers) || n.Routers[r].PoP != i {
				return fmt.Errorf("topology: PoP %q router list inconsistent", p.Name)
			}
		}
	}
	return nil
}
