package topology

import (
	"container/heap"
	"context"
	"math"
	"sort"

	"repro/internal/sparse"
)

// RouteECMP computes equal-cost multipath routing: each demand is split
// evenly over all metric-shortest paths between its head-end routers, the
// way OSPF/IS-IS ECMP splits flows in practice. The resulting routing
// matrix has fractional entries, the generalization the paper notes below
// equation (1) ("the routing matrix may easily be transformed to reflect a
// situation where traffic demands are routed on more than one path ... by
// allowing fractional values").
//
// The per-link fractions are computed exactly by shortest-path DAG counting
// (as in betweenness centrality): with σ(v) shortest paths from the source
// to v, the share of traffic crossing DAG edge (u, v) equals the product of
// the split fractions along each path, summed over paths — evaluated in
// O(E) by a topological sweep.
func (n *Network) RouteECMP() (*Routing, error) {
	p := n.NumPairs()
	np := n.NumPoPs()
	rt := &Routing{Net: n, PairPaths: make([][]int, p)}
	// One shortest-path DAG per source PoP serves its N−1 demands; sources
	// are independent, so the per-source work fans out over the shared
	// routing pool. Each source appends its fractional entries to its own
	// slot and the slots are merged in source order afterwards, which
	// keeps the assembled matrix identical to a serial construction (no
	// two sources ever touch the same matrix column).
	perSrc := make([][]ecmpEntry, np)
	err := routePool.ForEach(context.Background(), np, func(srcPoP int) error {
		srcRouter := n.HeadEnd(srcPoP)
		dist, dagIn := n.shortestPathDAG(srcRouter)
		for dstPoP := 0; dstPoP < np; dstPoP++ {
			if dstPoP == srcPoP {
				continue
			}
			pair := n.PairIndex(srcPoP, dstPoP)
			dstRouter := n.HeadEnd(dstPoP)
			if math.IsInf(dist[dstRouter], 1) {
				return &unreachableError{src: srcRouter, dst: dstRouter}
			}
			// Restrict the shortest-path DAG to the ancestors of dst
			// (routers that lie on some shortest path to it).
			seen := map[int]bool{dstRouter: true}
			stack := []int{dstRouter}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, lid := range dagIn[v] {
					u := n.Links[lid].Src
					if !seen[u] {
						seen[u] = true
						stack = append(stack, u)
					}
				}
			}
			// Restricted out-edges per router (forward ECMP split set).
			outEdges := map[int][]int{}
			order := make([]int, 0, len(seen))
			for v := range seen {
				order = append(order, v)
				for _, lid := range dagIn[v] {
					u := n.Links[lid].Src
					outEdges[u] = append(outEdges[u], lid)
				}
			}
			sort.Slice(order, func(a, c int) bool {
				if dist[order[a]] != dist[order[c]] {
					return dist[order[a]] < dist[order[c]]
				}
				return order[a] < order[c]
			})
			// Forward sweep: at each router the passing share splits
			// equally over its next hops toward dst, exactly like
			// OSPF/IS-IS ECMP.
			frac := map[int]float64{srcRouter: 1}
			var pathLinks []int
			for _, u := range order {
				fu := frac[u]
				outs := outEdges[u]
				if fu == 0 || len(outs) == 0 {
					continue
				}
				share := fu / float64(len(outs))
				// Deterministic output order.
				sort.Ints(outs)
				for _, lid := range outs {
					perSrc[srcPoP] = append(perSrc[srcPoP], ecmpEntry{row: lid, col: pair, v: share})
					pathLinks = append(pathLinks, lid)
					frac[n.Links[lid].Dst] += share
				}
			}
			rt.PairPaths[pair] = pathLinks
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	b := sparse.NewBuilder(n.NumLinks(), p)
	for _, entries := range perSrc {
		for _, e := range entries {
			b.Add(e.row, e.col, e.v)
		}
	}
	// Access rows are unchanged: every demand fully enters and exits once.
	for _, l := range n.Links {
		switch l.Kind {
		case Ingress:
			for dst := range n.PoPs {
				if dst != l.Src {
					b.Add(l.ID, n.PairIndex(l.Src, dst), 1)
				}
			}
		case Egress:
			for src := range n.PoPs {
				if src != l.Dst {
					b.Add(l.ID, n.PairIndex(src, l.Dst), 1)
				}
			}
		}
	}
	rt.R = b.Build()
	rt.indexAccessRows()
	return rt, nil
}

// ecmpEntry is one fractional routing-matrix entry produced by a source's
// forward sweep.
type ecmpEntry struct {
	row, col int
	v        float64
}

type unreachableError struct{ src, dst int }

func (e *unreachableError) Error() string {
	return "topology: ECMP: unreachable router pair"
}

// shortestPathDAG runs Dijkstra from src and returns the distance array and,
// for every router v, the incoming interior links that lie on some shortest
// path from src to v.
func (n *Network) shortestPathDAG(src int) ([]float64, [][]int) {
	const eps = 1e-9
	dist := make([]float64, len(n.Routers))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &dijkstraPQ{}
	heap.Init(pq)
	heap.Push(pq, &dijkstraItem{router: src, dist: 0})
	done := make([]bool, len(n.Routers))
	for pq.Len() > 0 {
		it := heap.Pop(pq).(*dijkstraItem)
		u := it.router
		if done[u] {
			continue
		}
		done[u] = true
		for _, lid := range n.outLinks[u] {
			l := &n.Links[lid]
			if nd := dist[u] + l.Metric; nd < dist[l.Dst]-eps {
				dist[l.Dst] = nd
				heap.Push(pq, &dijkstraItem{router: l.Dst, dist: nd})
			}
		}
	}
	dagIn := make([][]int, len(n.Routers))
	for _, l := range n.Links {
		if l.Kind != Interior {
			continue
		}
		if math.IsInf(dist[l.Src], 1) {
			continue
		}
		if math.Abs(dist[l.Src]+l.Metric-dist[l.Dst]) <= eps*(1+dist[l.Dst]) {
			dagIn[l.Dst] = append(dagIn[l.Dst], l.ID)
		}
	}
	return dist, dagIn
}
