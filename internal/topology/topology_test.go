package topology

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestEuropeDimensionsMatchPaper(t *testing.T) {
	net := Europe(1)
	if got := net.NumPoPs(); got != 12 {
		t.Fatalf("Europe PoPs = %d, want 12", got)
	}
	if got := net.NumPairs(); got != 132 {
		t.Fatalf("Europe pairs = %d, want 132", got)
	}
	if got := net.InteriorLinks(); got != 72 {
		t.Fatalf("Europe interior links = %d, want 72", got)
	}
	if got := net.NumLinks(); got != 96 { // + 2 access links per PoP
		t.Fatalf("Europe total links = %d, want 96", got)
	}
}

func TestAmericaDimensionsMatchPaper(t *testing.T) {
	net := America(1)
	if got := net.NumPoPs(); got != 25 {
		t.Fatalf("America PoPs = %d, want 25", got)
	}
	if got := net.NumPairs(); got != 600 {
		t.Fatalf("America pairs = %d, want 600", got)
	}
	if got := net.InteriorLinks(); got != 284 {
		t.Fatalf("America interior links = %d, want 284", got)
	}
	if got := net.NumLinks(); got != 334 { // + 2 access links per PoP
		t.Fatalf("America total links = %d, want 334", got)
	}
}

func TestGenerateRejectsBadConfigs(t *testing.T) {
	_, err := Generate(GeneratorConfig{PoPNames: []string{"a", "b"}, UndirectedEdges: 1})
	if err == nil {
		t.Fatal("expected error for < 3 PoPs")
	}
	_, err = Generate(GeneratorConfig{
		PoPNames: []string{"a", "b", "c"}, UndirectedEdges: 99,
	})
	if err == nil {
		t.Fatal("expected error for too many edges")
	}
}

func TestPairIndexRoundTrip(t *testing.T) {
	net := Europe(1)
	seen := make(map[int]bool)
	for src := 0; src < net.NumPoPs(); src++ {
		for dst := 0; dst < net.NumPoPs(); dst++ {
			if src == dst {
				continue
			}
			p := net.PairIndex(src, dst)
			if p < 0 || p >= net.NumPairs() {
				t.Fatalf("PairIndex(%d,%d) = %d out of range", src, dst, p)
			}
			if seen[p] {
				t.Fatalf("duplicate pair index %d", p)
			}
			seen[p] = true
			s, d := net.PairFromIndex(p)
			if s != src || d != dst {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", src, dst, p, s, d)
			}
		}
	}
	if len(seen) != net.NumPairs() {
		t.Fatalf("covered %d pairs, want %d", len(seen), net.NumPairs())
	}
}

func TestShortestPathIsConnectedAndOrdered(t *testing.T) {
	net := Europe(7)
	path, err := net.ShortestPath(0, 5, nil)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if len(path) == 0 {
		t.Fatal("empty path between distinct routers")
	}
	// The path must be link-contiguous from 0 to 5.
	at := 0
	for _, lid := range path {
		l := net.Links[lid]
		if l.Src != at {
			t.Fatalf("discontiguous path at link %d: at router %d, link starts at %d", lid, at, l.Src)
		}
		at = l.Dst
	}
	if at != 5 {
		t.Fatalf("path ends at %d, want 5", at)
	}
}

func TestShortestPathOptimality(t *testing.T) {
	// Compare Dijkstra's distance with brute-force Bellman-Ford.
	net := Europe(3)
	nr := len(net.Routers)
	const inf = math.MaxFloat64 / 4
	dist := make([][]float64, nr)
	for i := range dist {
		dist[i] = make([]float64, nr)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = inf
			}
		}
	}
	for _, l := range net.Links {
		if l.Kind == Interior && l.Metric < dist[l.Src][l.Dst] {
			dist[l.Src][l.Dst] = l.Metric
		}
	}
	for k := 0; k < nr; k++ {
		for i := 0; i < nr; i++ {
			for j := 0; j < nr; j++ {
				if d := dist[i][k] + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	for src := 0; src < nr; src++ {
		for dst := 0; dst < nr; dst++ {
			if src == dst {
				continue
			}
			path, err := net.ShortestPath(src, dst, nil)
			if err != nil {
				t.Fatalf("unreachable %d->%d", src, dst)
			}
			var got float64
			for _, lid := range path {
				got += net.Links[lid].Metric
			}
			if math.Abs(got-dist[src][dst]) > 1e-9 {
				t.Fatalf("path %d->%d length %v, want %v", src, dst, got, dist[src][dst])
			}
		}
	}
}

func TestRouteBuildsConsistentMatrix(t *testing.T) {
	net := Europe(1)
	rt, err := net.Route()
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if rt.R.Rows() != 96 || rt.R.Cols() != 132 {
		t.Fatalf("R is %dx%d, want 96x132", rt.R.Rows(), rt.R.Cols())
	}
	// Every demand must appear in exactly one ingress and one egress row.
	for p := 0; p < net.NumPairs(); p++ {
		src, dst := net.PairFromIndex(p)
		if got := rt.R.At(rt.IngressRow(src), p); got != 1 {
			t.Fatalf("pair %d missing from its ingress row", p)
		}
		if got := rt.R.At(rt.EgressRow(dst), p); got != 1 {
			t.Fatalf("pair %d missing from its egress row", p)
		}
		for other := 0; other < net.NumPoPs(); other++ {
			if other != src {
				if rt.R.At(rt.IngressRow(other), p) != 0 {
					t.Fatalf("pair %d leaked into ingress row of PoP %d", p, other)
				}
			}
		}
	}
}

// Property: link loads satisfy flow conservation at transit routers — for a
// single unit demand, every interior router on the path has in-degree load
// equal to out-degree load.
func TestFlowConservation(t *testing.T) {
	net := America(2)
	rt, err := net.Route()
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		p := rng.Intn(net.NumPairs())
		s := linalg.NewVector(net.NumPairs())
		s[p] = 1
		loads := rt.LinkLoads(s)
		src, dst := net.PairFromIndex(p)
		in := make([]float64, len(net.Routers))
		out := make([]float64, len(net.Routers))
		for _, l := range net.Links {
			if l.Kind != Interior || loads[l.ID] == 0 {
				continue
			}
			out[l.Src] += loads[l.ID]
			in[l.Dst] += loads[l.ID]
		}
		for r := range net.Routers {
			net1 := out[r] - in[r]
			switch {
			case r == net.HeadEnd(src):
				if math.Abs(net1-1) > 1e-12 {
					t.Fatalf("source router imbalance %v", net1)
				}
			case r == net.HeadEnd(dst):
				if math.Abs(net1+1) > 1e-12 {
					t.Fatalf("sink router imbalance %v", net1)
				}
			default:
				if math.Abs(net1) > 1e-12 {
					t.Fatalf("transit router %d imbalance %v", r, net1)
				}
			}
		}
	}
}

func TestRouteCSPFAvoidsFullLinks(t *testing.T) {
	// Tiny triangle: direct A→B link has capacity 10; with an LSP of 100
	// CSPF must detour via C even though direct is shorter.
	net := &Network{
		Name: "tri",
		PoPs: []PoP{
			{ID: 0, Name: "A", Routers: []int{0}},
			{ID: 1, Name: "B", Routers: []int{1}},
			{ID: 2, Name: "C", Routers: []int{2}},
		},
		Routers: []Router{{0, 0, "a"}, {1, 1, "b"}, {2, 2, "c"}},
	}
	addL := func(kind LinkKind, src, dst int, capacity, metric float64) {
		net.Links = append(net.Links, Link{
			ID: len(net.Links), Kind: kind, Src: src, Dst: dst,
			CapacityMbps: capacity, Metric: metric,
		})
	}
	addL(Interior, 0, 1, 10, 1)
	addL(Interior, 1, 0, 10, 1)
	addL(Interior, 0, 2, 1000, 1)
	addL(Interior, 2, 0, 1000, 1)
	addL(Interior, 2, 1, 1000, 1)
	addL(Interior, 1, 2, 1000, 1)
	for i := 0; i < 3; i++ {
		addL(Ingress, i, i, 1e6, 0)
		// Egress: Src is head-end router, Dst is PoP.
		net.Links[len(net.Links)-1].Src = i
		addL(Egress, i, i, 1e6, 0)
	}
	if err := net.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	bw := linalg.NewVector(net.NumPairs())
	pAB := net.PairIndex(0, 1)
	bw[pAB] = 100
	rt, err := net.RouteCSPF(bw)
	if err != nil {
		t.Fatalf("RouteCSPF: %v", err)
	}
	path := rt.PairPaths[pAB]
	if len(path) != 2 {
		t.Fatalf("A→B path %v, want 2-hop detour via C", path)
	}
	for _, lid := range path {
		if net.Links[lid].CapacityMbps < 100 {
			t.Fatalf("CSPF used an over-capacity link %d", lid)
		}
	}
	// Plain routing would have used the direct link.
	plain, err := net.Route()
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(plain.PairPaths[pAB]) != 1 {
		t.Fatalf("plain path %v, want direct", plain.PairPaths[pAB])
	}
}

func TestRouteCSPFFallsBackWhenNothingFits(t *testing.T) {
	net := Europe(1)
	bw := linalg.NewVector(net.NumPairs())
	bw.Fill(1e9) // nothing fits anywhere
	rt, err := net.RouteCSPF(bw)
	if err != nil {
		t.Fatalf("RouteCSPF should fall back, got: %v", err)
	}
	for p, path := range rt.PairPaths {
		if len(path) == 0 {
			t.Fatalf("pair %d unrouted", p)
		}
	}
}

func TestAddRouterToPoP(t *testing.T) {
	net := Europe(1)
	grown := AddRouterToPoP(net, 0, 0.1)
	if len(grown.PoPs[0].Routers) != 2 {
		t.Fatalf("PoP 0 routers = %d, want 2", len(grown.PoPs[0].Routers))
	}
	if len(grown.Routers) != len(net.Routers)+1 {
		t.Fatal("router not added")
	}
	if len(grown.Links) != len(net.Links)+2 {
		t.Fatalf("links = %d, want +2", len(grown.Links))
	}
	// Original untouched.
	if len(net.PoPs[0].Routers) != 1 {
		t.Fatal("AddRouterToPoP mutated its input")
	}
	// Routing still works, and demands still terminate at head-ends.
	if _, err := grown.Route(); err != nil {
		t.Fatalf("Route on grown network: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Europe(99)
	b := Europe(99)
	if len(a.Links) != len(b.Links) {
		t.Fatal("same seed, different link counts")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("same seed, different link %d", i)
		}
	}
	c := Europe(100)
	diff := false
	for i := range a.Links {
		if a.Links[i] != c.Links[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical networks")
	}
}

func TestQuantizeMetrics(t *testing.T) {
	net := Europe(1)
	q := QuantizeMetrics(net, 150)
	for i, l := range q.Links {
		if l.Kind != Interior {
			continue
		}
		if rem := math.Mod(l.Metric, 150); rem > 1e-9 && rem < 150-1e-9 {
			t.Fatalf("link %d metric %v not on the grid", i, l.Metric)
		}
		if l.Metric < net.Links[i].Metric {
			t.Fatalf("link %d metric decreased", i)
		}
	}
	// Original untouched, structure preserved.
	if net.Links[0].Metric == q.Links[0].Metric && net.Links[0].Metric > 150 {
		t.Log("metric incidentally on grid; fine")
	}
	if _, err := q.Route(); err != nil {
		t.Fatalf("routing on quantized network: %v", err)
	}
}

func TestQuantizeMetricsPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QuantizeMetrics(Europe(1), 0)
}

func TestLinkKindString(t *testing.T) {
	if Interior.String() != "interior" || Ingress.String() != "ingress" || Egress.String() != "egress" {
		t.Fatal("LinkKind.String wrong")
	}
	if LinkKind(9).String() != "LinkKind(9)" {
		t.Fatal("unknown kind format wrong")
	}
}

func BenchmarkRouteAmerica(b *testing.B) {
	net := America(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Route(); err != nil {
			b.Fatal(err)
		}
	}
}
