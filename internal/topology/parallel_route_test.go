package topology

import (
	"sync"
	"testing"
)

// TestRouteMatchesPerPairShortestPath pins the contract of the parallel
// per-source-tree construction: for every ordered pair, the path read off
// the source's shortest-path tree is identical (link for link) to a
// dedicated ShortestPath run with the same deterministic tie-breaking —
// on the paper networks and on scaled/quantized (tie-heavy) backbones.
func TestRouteMatchesPerPairShortestPath(t *testing.T) {
	nets := []*Network{Europe(1), America(1), QuantizeMetrics(Europe(3), 150)}
	if sc, err := Scaled(2, 40); err != nil {
		t.Fatal(err)
	} else {
		nets = append(nets, sc, QuantizeMetrics(sc, 200))
	}
	for _, net := range nets {
		rt, err := net.Route()
		if err != nil {
			t.Fatalf("%s: Route: %v", net.Name, err)
		}
		for pair := 0; pair < net.NumPairs(); pair++ {
			src, dst := net.PairFromIndex(pair)
			want, err := net.ShortestPath(net.HeadEnd(src), net.HeadEnd(dst), nil)
			if err != nil {
				t.Fatalf("%s: ShortestPath pair %d: %v", net.Name, pair, err)
			}
			got := rt.PairPaths[pair]
			if len(got) != len(want) {
				t.Fatalf("%s pair %d: tree path %v, per-pair path %v", net.Name, pair, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s pair %d: tree path %v, per-pair path %v", net.Name, pair, got, want)
				}
			}
		}
	}
}

// TestRouteDeterministicAcrossRuns: repeated (and concurrent) Route calls
// over the same network produce identical matrices — the property the
// byte-stable experiment outputs stand on.
func TestRouteDeterministicAcrossRuns(t *testing.T) {
	net := QuantizeMetrics(America(5), 150)
	ref, err := net.Route()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*Routing, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt, err := net.Route()
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			results[i] = rt
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, rt := range results {
		if rt.R.NNZ() != ref.R.NNZ() {
			t.Fatalf("run %d: nnz %d vs %d", i, rt.R.NNZ(), ref.R.NNZ())
		}
		for r := 0; r < ref.R.Rows(); r++ {
			ref.R.Row(r, func(c int, v float64) {
				if rt.R.At(r, c) != v {
					t.Fatalf("run %d: R[%d,%d] differs", i, r, c)
				}
			})
		}
	}
}

// TestRouteUnreachable: a disconnected network must fail with the pair
// named, from the parallel construction path.
func TestRouteUnreachable(t *testing.T) {
	// Two PoPs with no interior adjacency.
	pops := []PoP{{ID: 0, Name: "A", Routers: []int{0}}, {ID: 1, Name: "B", Routers: []int{1}}}
	routers := []Router{{ID: 0, PoP: 0, Name: "A-cr1"}, {ID: 1, PoP: 1, Name: "B-cr1"}}
	links := []Link{
		{ID: 0, Kind: Ingress, Src: 0, Dst: 0, CapacityMbps: 1},
		{ID: 1, Kind: Egress, Src: 0, Dst: 0, CapacityMbps: 1},
		{ID: 2, Kind: Ingress, Src: 1, Dst: 1, CapacityMbps: 1},
		{ID: 3, Kind: Egress, Src: 1, Dst: 1, CapacityMbps: 1},
	}
	net, err := FromParts("disconnected", pops, routers, links)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Route(); err == nil {
		t.Fatal("Route on a disconnected network must fail")
	}
	if _, err := net.RouteECMP(); err == nil {
		t.Fatal("RouteECMP on a disconnected network must fail")
	}
}

// TestScaledGenerator covers the scaled backbone builder: size, naming,
// access links, and the adjacency-density cap on tiny networks.
func TestScaledGenerator(t *testing.T) {
	net, err := Scaled(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumPoPs() != 60 || net.NumPairs() != 60*59 {
		t.Fatalf("got %d PoPs / %d pairs", net.NumPoPs(), net.NumPairs())
	}
	if got, want := net.InteriorLinks(), 2*3*60; got != want {
		t.Fatalf("interior links %d, want %d", got, want)
	}
	ing, eg := 0, 0
	for _, l := range net.Links {
		switch l.Kind {
		case Ingress:
			ing++
		case Egress:
			eg++
		}
	}
	if ing != 60 || eg != 60 {
		t.Fatalf("access links %d/%d, want 60/60", ing, eg)
	}
	// Tiny network: 3·n exceeds n(n-1)/2, must cap instead of failing.
	small, err := Scaled(1, 4)
	if err != nil {
		t.Fatalf("Scaled(4): %v", err)
	}
	if got, want := small.InteriorLinks(), 2*(4*3/2); got != want {
		t.Fatalf("capped interior links %d, want %d", got, want)
	}
	// Names: the 37 real cities first, then synthetic.
	names := ScaledNames(40)
	if names[0] != "London" || names[12] != "NewYork" {
		t.Fatalf("unexpected leading names %v", names[:14])
	}
	if names[37] != "PoP038" || names[39] != "PoP040" {
		t.Fatalf("unexpected synthetic names %v", names[37:])
	}
	if len(ScaledNames(5)) != 5 {
		t.Fatal("ScaledNames must truncate")
	}
}
