package topology

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

// diamond builds a 4-PoP network where A→D has exactly two equal-cost
// two-hop paths (via B and via C).
func diamond(t *testing.T) *Network {
	t.Helper()
	net := &Network{
		Name: "diamond",
		PoPs: []PoP{
			{ID: 0, Name: "A", Routers: []int{0}},
			{ID: 1, Name: "B", Routers: []int{1}},
			{ID: 2, Name: "C", Routers: []int{2}},
			{ID: 3, Name: "D", Routers: []int{3}},
		},
		Routers: []Router{{0, 0, "a"}, {1, 1, "b"}, {2, 2, "c"}, {3, 3, "d"}},
	}
	add := func(kind LinkKind, src, dst int, metric float64) {
		net.Links = append(net.Links, Link{
			ID: len(net.Links), Kind: kind, Src: src, Dst: dst,
			CapacityMbps: 1e6, Metric: metric,
		})
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		add(Interior, e[0], e[1], 1)
		add(Interior, e[1], e[0], 1)
	}
	for i := 0; i < 4; i++ {
		add(Ingress, i, i, 0)
		add(Egress, i, i, 0)
	}
	if err := net.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return net
}

func TestECMPSplitsEvenlyOnDiamond(t *testing.T) {
	net := diamond(t)
	rt, err := net.RouteECMP()
	if err != nil {
		t.Fatalf("RouteECMP: %v", err)
	}
	pAD := net.PairIndex(0, 3)
	// The A→D demand must put exactly 0.5 on each of the four interior
	// links of the two paths.
	var halves, others int
	for _, l := range net.Links {
		if l.Kind != Interior {
			continue
		}
		v := rt.R.At(l.ID, pAD)
		switch {
		case math.Abs(v-0.5) < 1e-12:
			halves++
		case v == 0:
			others++
		default:
			t.Fatalf("link %d has fraction %v, want 0 or 0.5", l.ID, v)
		}
	}
	if halves != 4 {
		t.Fatalf("%d links carry 1/2, want 4", halves)
	}
}

func TestECMPMatchesSinglePathWhenUnique(t *testing.T) {
	// With unique shortest paths (Euclidean metrics), ECMP must coincide
	// with single-path routing.
	net := Europe(1)
	single, err := net.Route()
	if err != nil {
		t.Fatal(err)
	}
	ecmp, err := net.RouteECMP()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < net.NumPairs(); p++ {
		for _, l := range net.Links {
			a := single.R.At(l.ID, p)
			b := ecmp.R.At(l.ID, p)
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("pair %d link %d: single %v vs ecmp %v", p, l.ID, a, b)
			}
		}
	}
}

// Property: ECMP link loads conserve flow and each demand's ingress/egress
// fraction is exactly 1.
func TestECMPFlowConservation(t *testing.T) {
	net := diamond(t)
	rt, err := net.RouteECMP()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < net.NumPairs(); p++ {
		srcPoP, dstPoP := net.PairFromIndex(p)
		s := linalg.NewVector(net.NumPairs())
		s[p] = 1
		loads := rt.LinkLoads(s)
		in := make([]float64, len(net.Routers))
		out := make([]float64, len(net.Routers))
		for _, l := range net.Links {
			if l.Kind != Interior {
				continue
			}
			out[l.Src] += loads[l.ID]
			in[l.Dst] += loads[l.ID]
		}
		for r := range net.Routers {
			net1 := out[r] - in[r]
			want := 0.0
			if r == net.HeadEnd(srcPoP) {
				want = 1
			} else if r == net.HeadEnd(dstPoP) {
				want = -1
			}
			if math.Abs(net1-want) > 1e-9 {
				t.Fatalf("pair %d router %d imbalance %v want %v", p, r, net1, want)
			}
		}
		if loads[rt.IngressRow(srcPoP)] != 1 || loads[rt.EgressRow(dstPoP)] != 1 {
			t.Fatalf("pair %d access rows wrong", p)
		}
	}
}

func TestECMPAmericaRuns(t *testing.T) {
	net := America(1)
	rt, err := net.RouteECMP()
	if err != nil {
		t.Fatalf("RouteECMP: %v", err)
	}
	if rt.R.Rows() != net.NumLinks() || rt.R.Cols() != net.NumPairs() {
		t.Fatalf("R is %dx%d", rt.R.Rows(), rt.R.Cols())
	}
	// Every demand still fully enters and exits.
	for p := 0; p < net.NumPairs(); p++ {
		src, dst := net.PairFromIndex(p)
		if rt.R.At(rt.IngressRow(src), p) != 1 || rt.R.At(rt.EgressRow(dst), p) != 1 {
			t.Fatalf("pair %d access coverage wrong", p)
		}
	}
}
