package topology

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/linalg"
	"repro/internal/runner"
	"repro/internal/sparse"
)

// routePool bounds the concurrency of parallel routing construction across
// the whole process. Route and RouteECMP fan their per-source work out on
// it; because runner.Pool.ForEach always works on the calling goroutine,
// nesting routing construction inside jobs already running on other pools
// (experiment drivers, failure sweeps) cannot deadlock. The floor of 4
// keeps the concurrent construction paths exercised (and race-checked)
// even on single-core machines, where GOMAXPROCS alone would degenerate
// them to purely serial loops.
var routePool = runner.NewPool(max(4, runtime.GOMAXPROCS(0)))

// Routing holds the single-path routes of every ordered PoP pair and the
// resulting routing matrix R (equation (1) of the paper): R[l][p] = 1 iff
// the demand of pair p crosses link l. Rows cover all links, access links
// included, so the ingress row of PoP n is the total traffic entering at n
// (t_{e(n)}) and the egress row of PoP m is the total leaving at m
// (t_{x(m)}).
type Routing struct {
	Net       *Network
	PairPaths [][]int // demand p -> interior link IDs along its path
	R         *sparse.Matrix

	// ingressRows/egressRows cache the access-link row of each PoP.
	// IngressRow is on the hot path of the fanout estimator (one lookup
	// per demand per interval), where a linear scan over the links would
	// dominate at 100+ PoPs.
	ingressRows, egressRows []int
}

// dijkstraItem is a priority-queue entry.
type dijkstraItem struct {
	router int
	dist   float64
	index  int
}

type dijkstraPQ []*dijkstraItem

func (q dijkstraPQ) Len() int           { return len(q) }
func (q dijkstraPQ) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q dijkstraPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *dijkstraPQ) Push(x interface{}) {
	it := x.(*dijkstraItem)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *dijkstraPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// ShortestPath returns the interior link IDs of the metric-shortest path
// from router src to router dst, using only links for which usable returns
// true (nil means all interior links). Ties are broken deterministically by
// preferring the lexicographically smallest link-ID sequence (achieved by a
// strict improvement test plus ordered edge relaxation). Returns an error
// if dst is unreachable.
func (n *Network) ShortestPath(src, dst int, usable func(*Link) bool) ([]int, error) {
	const eps = 1e-12
	dist := make([]float64, len(n.Routers))
	prevLink := make([]int, len(n.Routers))
	for i := range dist {
		dist[i] = math.Inf(1)
		prevLink[i] = -1
	}
	dist[src] = 0
	pq := &dijkstraPQ{}
	heap.Init(pq)
	heap.Push(pq, &dijkstraItem{router: src, dist: 0})
	done := make([]bool, len(n.Routers))
	for pq.Len() > 0 {
		it := heap.Pop(pq).(*dijkstraItem)
		u := it.router
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, lid := range n.outLinks[u] {
			l := &n.Links[lid]
			if usable != nil && !usable(l) {
				continue
			}
			v := l.Dst
			nd := dist[u] + l.Metric
			if nd < dist[v]-eps {
				dist[v] = nd
				prevLink[v] = lid
				heap.Push(pq, &dijkstraItem{router: v, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, fmt.Errorf("topology: router %d unreachable from %d", dst, src)
	}
	var path []int
	for v := dst; v != src; {
		lid := prevLink[v]
		path = append(path, lid)
		v = n.Links[lid].Src
	}
	// Reverse into src→dst order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// shortestPathTree runs Dijkstra from src over all interior links and
// returns the distance array plus the predecessor link of every router —
// the full shortest-path tree. It performs exactly the same strict-
// improvement relaxations in the same order as ShortestPath(src, ·, nil),
// so the path extracted from the tree for any destination is identical to
// the one ShortestPath would return: every router on a shortest path to
// dst settles strictly before dst (interior metrics are strictly
// positive), at which point both computations have executed the same
// operation sequence.
func (n *Network) shortestPathTree(src int) (dist []float64, prevLink []int) {
	const eps = 1e-12
	dist = make([]float64, len(n.Routers))
	prevLink = make([]int, len(n.Routers))
	for i := range dist {
		dist[i] = math.Inf(1)
		prevLink[i] = -1
	}
	dist[src] = 0
	pq := &dijkstraPQ{}
	heap.Init(pq)
	heap.Push(pq, &dijkstraItem{router: src, dist: 0})
	done := make([]bool, len(n.Routers))
	for pq.Len() > 0 {
		it := heap.Pop(pq).(*dijkstraItem)
		u := it.router
		if done[u] {
			continue
		}
		done[u] = true
		for _, lid := range n.outLinks[u] {
			l := &n.Links[lid]
			v := l.Dst
			nd := dist[u] + l.Metric
			if nd < dist[v]-eps {
				dist[v] = nd
				prevLink[v] = lid
				heap.Push(pq, &dijkstraItem{router: v, dist: nd})
			}
		}
	}
	return dist, prevLink
}

// Route computes shortest-path routes for every ordered PoP pair between
// head-end routers and assembles the routing matrix. It is the plain
// (capacity-oblivious) routing used when LSP reservations are far below
// capacity.
//
// Construction runs one Dijkstra per source PoP (serving its N−1 demands
// from the shortest-path tree) instead of one per ordered pair, and the
// per-source work fans out over a process-wide pool — the difference
// between O(N²) and O(N) Dijkstra runs is what keeps 150-PoP backbones
// routable in milliseconds. The resulting paths are identical to the
// per-pair computation (see shortestPathTree).
func (n *Network) Route() (*Routing, error) {
	np := n.NumPoPs()
	rt := &Routing{Net: n, PairPaths: make([][]int, n.NumPairs())}
	err := routePool.ForEach(context.Background(), np, func(src int) error {
		head := n.HeadEnd(src)
		dist, prev := n.shortestPathTree(head)
		for dst := 0; dst < np; dst++ {
			if dst == src {
				continue
			}
			target := n.HeadEnd(dst)
			pair := n.PairIndex(src, dst)
			if math.IsInf(dist[target], 1) {
				return fmt.Errorf("topology: pair %d (%s→%s): router %d unreachable from %d",
					pair, n.PoPs[src].Name, n.PoPs[dst].Name, target, head)
			}
			var path []int
			for v := target; v != head; {
				lid := prev[v]
				path = append(path, lid)
				v = n.Links[lid].Src
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			rt.PairPaths[pair] = path
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rt.R = rt.buildMatrix()
	rt.indexAccessRows()
	return rt, nil
}

// RouteCSPF emulates constraint-based shortest-path routing the way the
// paper's network operates: LSPs are placed in descending bandwidth order,
// each on the metric-shortest path among links with sufficient unreserved
// capacity; if no such path exists the LSP falls back to the unconstrained
// shortest path (and the link is oversubscribed, as RSVP setup would simply
// fail and operators re-dimension). bandwidth[p] is the LSP reservation for
// demand p in Mbps.
func (n *Network) RouteCSPF(bandwidth linalg.Vector) (*Routing, error) {
	if len(bandwidth) != n.NumPairs() {
		return nil, fmt.Errorf("topology: RouteCSPF wants %d bandwidths, got %d", n.NumPairs(), len(bandwidth))
	}
	order := make([]int, n.NumPairs())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return bandwidth[order[a]] > bandwidth[order[b]] })
	reserved := make([]float64, len(n.Links))
	usable := func(bw float64) func(*Link) bool {
		return func(l *Link) bool { return reserved[l.ID]+bw <= l.CapacityMbps }
	}
	return n.routeWith(order, func(p int) (func(*Link) bool, func(path []int)) {
		bw := bandwidth[p]
		return usable(bw), func(path []int) {
			for _, lid := range path {
				reserved[lid] += bw
			}
		}
	})
}

// routeWith routes all pairs. order may be nil (natural order); constrain,
// when non-nil, returns for each pair a usability filter and a commit hook.
func (n *Network) routeWith(order []int, constrain func(p int) (func(*Link) bool, func([]int))) (*Routing, error) {
	p := n.NumPairs()
	rt := &Routing{Net: n, PairPaths: make([][]int, p)}
	if order == nil {
		order = make([]int, p)
		for i := range order {
			order[i] = i
		}
	}
	for _, pair := range order {
		src, dst := n.PairFromIndex(pair)
		var usable func(*Link) bool
		var commit func([]int)
		if constrain != nil {
			usable, commit = constrain(pair)
		}
		path, err := n.ShortestPath(n.HeadEnd(src), n.HeadEnd(dst), usable)
		if err != nil && usable != nil {
			// CSPF fallback: ignore capacity.
			path, err = n.ShortestPath(n.HeadEnd(src), n.HeadEnd(dst), nil)
		}
		if err != nil {
			return nil, fmt.Errorf("topology: pair %d (%s→%s): %w",
				pair, n.PoPs[src].Name, n.PoPs[dst].Name, err)
		}
		if commit != nil {
			commit(path)
		}
		rt.PairPaths[pair] = path
	}
	rt.R = rt.buildMatrix()
	rt.indexAccessRows()
	return rt, nil
}

// indexAccessRows fills the per-PoP access-link row caches.
func (rt *Routing) indexAccessRows() {
	n := rt.Net
	rt.ingressRows = make([]int, len(n.PoPs))
	rt.egressRows = make([]int, len(n.PoPs))
	for i := range rt.ingressRows {
		rt.ingressRows[i] = -1
		rt.egressRows[i] = -1
	}
	for _, l := range n.Links {
		switch l.Kind {
		case Ingress:
			rt.ingressRows[l.Src] = l.ID
		case Egress:
			rt.egressRows[l.Dst] = l.ID
		}
	}
}

// buildMatrix assembles R from the per-pair paths plus the access rows.
func (rt *Routing) buildMatrix() *sparse.Matrix {
	n := rt.Net
	b := sparse.NewBuilder(n.NumLinks(), n.NumPairs())
	for p, path := range rt.PairPaths {
		for _, lid := range path {
			b.Add(lid, p, 1)
		}
	}
	for _, l := range n.Links {
		switch l.Kind {
		case Ingress:
			srcPoP := l.Src
			for dst := range n.PoPs {
				if dst != srcPoP {
					b.Add(l.ID, n.PairIndex(srcPoP, dst), 1)
				}
			}
		case Egress:
			dstPoP := l.Dst
			for src := range n.PoPs {
				if src != dstPoP {
					b.Add(l.ID, n.PairIndex(src, dstPoP), 1)
				}
			}
		}
	}
	return b.Build()
}

// IngressRow returns the row index of PoP n's ingress access link in R.
// Routings built by Route/RouteECMP/RouteCSPF answer from the cached
// index; a hand-assembled Routing (tests) falls back to a link scan —
// deliberately without populating the cache, since a lazy write would
// race between the concurrent estimator calls an Instance permits.
func (rt *Routing) IngressRow(pop int) int {
	if rt.ingressRows != nil {
		if r := rt.ingressRows[pop]; r >= 0 {
			return r
		}
	} else {
		for _, l := range rt.Net.Links {
			if l.Kind == Ingress && l.Src == pop {
				return l.ID
			}
		}
	}
	panic(fmt.Sprintf("topology: PoP %d has no ingress link", pop))
}

// EgressRow returns the row index of PoP m's egress access link in R.
// Same caching contract as IngressRow.
func (rt *Routing) EgressRow(pop int) int {
	if rt.egressRows != nil {
		if r := rt.egressRows[pop]; r >= 0 {
			return r
		}
	} else {
		for _, l := range rt.Net.Links {
			if l.Kind == Egress && l.Dst == pop {
				return l.ID
			}
		}
	}
	panic(fmt.Sprintf("topology: PoP %d has no egress link", pop))
}

// LinkLoads computes t = R·s for a demand vector s (equation (2)).
func (rt *Routing) LinkLoads(s linalg.Vector) linalg.Vector {
	return rt.R.MulVec(nil, s)
}
