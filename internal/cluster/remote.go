package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/fleet"
	"repro/internal/stream"
)

// Remote is a tenant lifecycle handle over HTTP: the same fleet.Handle
// surface a local *fleet.Tenant has, backed by the owning node's v1
// API. This is the other half of the lifecycle refactor — code that
// syncs, ships or serves a tenant's state holds a Handle and never
// learns which side of the process boundary the engine runs on. The
// run half of the lifecycle stays with the owning node; Remote only
// observes (Status, Latest, Metrics) and moves state (Checkpoint out
// of the owner, Restore as an adopt on the target).
type Remote struct {
	name   string
	spec   fleet.TenantSpec
	addr   string // owning node's host:port
	client *http.Client
}

// Compile-time proof the remote handle is interchangeable with a
// locally-owned tenant.
var _ fleet.Handle = (*Remote)(nil)

// NewRemote builds a handle for a tenant owned by the node at addr.
// client may be nil for http.DefaultClient.
func NewRemote(spec fleet.TenantSpec, addr string, client *http.Client) *Remote {
	if client == nil {
		client = http.DefaultClient
	}
	return &Remote{name: spec.Name, spec: spec, addr: addr, client: client}
}

// Name returns the tenant's name.
func (r *Remote) Name() string { return r.name }

// Spec returns the spec the tenant was declared with in the cluster
// config.
func (r *Remote) Spec() fleet.TenantSpec { return r.spec }

func (r *Remote) url(path string) string { return "http://" + r.addr + path }

// getJSON is one bounded GET decoded into out; non-200 answers return
// the status code as the error.
func (r *Remote) getJSON(ctx context.Context, path string, out any) error {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Status reports the tenant's status as its owner sees it; an
// unreachable owner reports StateUnreachable rather than an error, so
// a fleet listing degrades instead of failing.
func (r *Remote) Status() fleet.Status {
	var listing struct {
		Tenants []fleet.Status `json:"tenants"`
	}
	if err := r.getJSON(context.Background(), "/v1/tenants", &listing); err == nil {
		for _, st := range listing.Tenants {
			if st.Name == r.name {
				return st
			}
		}
	}
	return fleet.Status{
		Name: r.name, Source: r.spec.Source, State: fleet.StateUnreachable,
	}
}

// Latest fetches the owner's current snapshot; (zero, false) when the
// owner has none yet or cannot be reached.
func (r *Remote) Latest() (stream.Snapshot, bool) {
	var snap stream.Snapshot
	if err := r.getJSON(context.Background(), "/v1/t/"+r.name+"/snapshot", &snap); err != nil {
		return stream.Snapshot{}, false
	}
	return snap, true
}

// WaitVersion long-polls the owner until a snapshot with Version >= min
// exists or ctx is done. The owner bounds each poll (504 on expiry) and
// sheds load (429), so the wait loops with a short backoff on those.
func (r *Remote) WaitVersion(ctx context.Context, min uint64) (stream.Snapshot, error) {
	path := fmt.Sprintf("/v1/t/%s/snapshot?min_version=%d", r.name, min)
	for {
		var snap stream.Snapshot
		err := r.getJSON(ctx, path, &snap)
		if err == nil {
			return snap, nil
		}
		if ctx.Err() != nil {
			return stream.Snapshot{}, ctx.Err()
		}
		select {
		case <-ctx.Done():
			return stream.Snapshot{}, ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// Metrics fetches the owner's estimation-error history; nil when
// unreachable.
func (r *Remote) Metrics() []stream.MetricPoint {
	var resp struct {
		Points []stream.MetricPoint `json:"points"`
	}
	if err := r.getJSON(context.Background(), "/v1/t/"+r.name+"/metrics", &resp); err != nil {
		return nil
	}
	return resp.Points
}

// Position reports the owner's latest snapshot position via its status
// row.
func (r *Remote) Position() (uint64, int, bool) {
	st := r.Status()
	return st.Version, st.Interval, st.HaveSnapshot
}

// Checkpoint pulls the owner's handoff document — what a standby syncs
// and a migration ships.
func (r *Remote) Checkpoint() (stream.Checkpoint, error) {
	var cp stream.Checkpoint
	if err := r.getJSON(context.Background(), "/v1/t/"+r.name+"/checkpoint", &cp); err != nil {
		return stream.Checkpoint{}, fmt.Errorf("cluster: pull checkpoint for %s from %s: %w", r.name, r.addr, err)
	}
	return cp, nil
}

// Restore ships a checkpoint to the node behind this handle as an
// adoption: the node starts hosting the tenant from the checkpoint's
// state. A 409 (already hosting) maps to fleet.ErrAlreadyHosted so a
// promotion retry reads as success to errors.Is.
func (r *Remote) Restore(cp stream.Checkpoint) error {
	body, err := json.Marshal(map[string]any{"tenant": r.name, "checkpoint": cp})
	if err != nil {
		return err
	}
	return postAdopt(context.Background(), r.client, r.addr, bytes.NewReader(body))
}

// postAdopt POSTs an adopt body to a node, mapping the v1 error
// envelope back onto the lifecycle sentinels.
func postAdopt(ctx context.Context, client *http.Client, addr string, body io.Reader) error {
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/v1/cluster/adopt", body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("cluster: adopt on %s: %w", addr, fleet.ErrAlreadyHosted)
	case http.StatusNotFound:
		return fmt.Errorf("cluster: adopt on %s: %w", addr, fleet.ErrUnknownTenant)
	}
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	msg := resp.Status
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error.Message != "" {
		msg = e.Error.Message
	}
	return errors.New("cluster: adopt on " + addr + ": " + msg)
}
