package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vpoints is how many virtual points each node contributes to the
// ring. 64 keeps the assignment spread within a few percent of even
// for small clusters while the ring stays tiny enough to rebuild per
// lookup (placement is resolved a handful of times at boot and on
// promotion, never per request).
const vpoints = 64

// ringLookup assigns a key to one of the nodes by consistent hashing:
// each node is hashed onto the ring at vpoints positions and the key
// goes to the first node clockwise from its own hash. Adding or
// removing one node moves only the keys that hashed to its arcs —
// which is why unpinned tenants mostly stay put when the cluster
// grows. Deterministic and order-independent: every process computes
// the same owner from the same node set.
func ringLookup(nodes []string, key string) string {
	switch len(nodes) {
	case 0:
		return ""
	case 1:
		return nodes[0]
	}
	type point struct {
		hash uint64
		node string
	}
	ring := make([]point, 0, len(nodes)*vpoints)
	for _, n := range nodes {
		for i := 0; i < vpoints; i++ {
			ring = append(ring, point{hash: fnvHash(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].node < ring[j].node // stable under hash collisions
	})
	h := fnvHash(key)
	i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	if i == len(ring) {
		i = 0 // wrap: the key hashed past the last point
	}
	return ring[i].node
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
