package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/fleet"
)

// ErrNodeDown reports that a tenant's owning node is failing health
// probes and no standby has taken over yet; the serving layer maps it
// to 503 + Retry-After.
var ErrNodeDown = errors.New("owning node is down")

// NodeReport is one node's row on the coordinator's /v1/tenants
// payload: the registry's health view plus routing counters and the
// tenants currently routed to it.
type NodeReport struct {
	NodeStatus
	// Proxied and Redirected count tenant-scoped requests the
	// coordinator sent this node's way, by answer style.
	Proxied    uint64   `json:"proxied"`
	Redirected uint64   `json:"redirected"`
	Tenants    []string `json:"tenants,omitempty"`
}

// Coordinator is the cluster's routing brain: it tracks which node
// owns each tenant (seeded from the config, repointed on failover and
// migration), probes node health through its registry, and promotes a
// tenant's standby when the owner goes down — an adopt without a
// shipped checkpoint, so the standby restores its freshest synced
// copy. The HTTP front door over it lives in internal/serve.
type Coordinator struct {
	cfg    Config
	client *http.Client
	logf   func(format string, args ...any)
	reg    *Registry

	mu         sync.Mutex
	owners     map[string]string // tenant -> node currently serving it
	proxied    map[string]uint64
	redirected map[string]uint64
}

// NewCoordinator builds the coordinator over a cluster config. client
// may be nil for http.DefaultClient; logf may be nil to discard.
func NewCoordinator(cfg Config, client *http.Client, logf func(string, ...any)) *Coordinator {
	if client == nil {
		client = http.DefaultClient
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:        cfg,
		client:     client,
		logf:       logf,
		owners:     make(map[string]string, len(cfg.Tenants)),
		proxied:    make(map[string]uint64),
		redirected: make(map[string]uint64),
	}
	for _, t := range cfg.Tenants {
		c.owners[t.Name] = cfg.Owner(t.Name)
	}
	c.reg = NewRegistry(cfg, client, logf)
	c.reg.OnSweep(c.reconcile)
	return c
}

// Run probes and reconciles until ctx is done.
func (c *Coordinator) Run(ctx context.Context) { c.reg.Run(ctx) }

// Registry exposes the health view (tests force sweeps through it).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Redirect reports the configured answer style for tenant reads.
func (c *Coordinator) Redirect() bool { return c.cfg.Redirect() }

// Owner returns the node currently serving a tenant.
func (c *Coordinator) Owner(tenant string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.owners[tenant]
	return n, ok
}

// Route resolves where a tenant-scoped request should go: the owning
// node's spec, fleet.ErrUnknownTenant for names outside the config, or
// ErrNodeDown while the owner is failing probes and no standby has
// been promoted.
func (c *Coordinator) Route(tenant string) (NodeSpec, error) {
	owner, ok := c.Owner(tenant)
	if !ok {
		return NodeSpec{}, fmt.Errorf("%w: %q", fleet.ErrUnknownTenant, tenant)
	}
	node, ok := c.cfg.Node(owner)
	if !ok || !c.reg.Healthy(owner) {
		return NodeSpec{}, fmt.Errorf("%w: %s (tenant %q)", ErrNodeDown, owner, tenant)
	}
	return node, nil
}

// reconcile promotes standbys for every tenant whose serving node is
// down: POST an adopt (no checkpoint — the standby restores its
// freshest synced copy) and repoint routing. Runs after every probe
// sweep; idempotent, because a 409 from a node already hosting the
// tenant counts as success.
func (c *Coordinator) reconcile(ctx context.Context) {
	for _, t := range c.cfg.Tenants {
		owner, _ := c.Owner(t.Name)
		if c.reg.Healthy(owner) {
			continue
		}
		standby, ok := c.pickStandby(t.Name, owner)
		if !ok {
			c.logf("cluster: tenant %s: owner %s is down and no healthy standby exists", t.Name, owner)
			continue
		}
		node, _ := c.cfg.Node(standby)
		err := postAdopt(ctx, c.client, node.Addr, strings.NewReader(fmt.Sprintf(`{"tenant":%q}`, t.Name)))
		if err != nil && !errors.Is(err, fleet.ErrAlreadyHosted) {
			c.logf("cluster: tenant %s: promote %s: %v", t.Name, standby, err)
			continue
		}
		c.mu.Lock()
		c.owners[t.Name] = standby
		c.mu.Unlock()
		c.logf("cluster: tenant %s: promoted standby %s (owner %s down)", t.Name, standby, owner)
	}
}

// pickStandby chooses where a tenant fails over to: its configured
// standby when healthy, else a healthy standby-marked node, else any
// healthy node — ring-picked so concurrent coordinators would agree.
func (c *Coordinator) pickStandby(tenant, current string) (string, bool) {
	if sb := c.cfg.StandbyFor(tenant); sb != "" && sb != current && c.reg.Healthy(sb) {
		return sb, true
	}
	var standbys, all []string
	for _, n := range c.cfg.Nodes {
		if n.Name == current || !c.reg.Healthy(n.Name) {
			continue
		}
		all = append(all, n.Name)
		if n.Standby {
			standbys = append(standbys, n.Name)
		}
	}
	if sb := ringLookup(standbys, tenant); sb != "" {
		return sb, true
	}
	if sb := ringLookup(all, tenant); sb != "" {
		return sb, true
	}
	return "", false
}

// Migrate moves a tenant to a named node via checkpoint handoff: pull
// the current owner's checkpoint, ship it to the target's adopt
// endpoint, repoint routing. The old owner keeps its engine running
// (draining it is future work); routing just stops sending readers
// there.
func (c *Coordinator) Migrate(ctx context.Context, tenant, to string) error {
	spec, ok := c.cfg.TenantSpec(tenant)
	if !ok {
		return fmt.Errorf("%w: %q", fleet.ErrUnknownTenant, tenant)
	}
	target, ok := c.cfg.Node(to)
	if !ok {
		return fmt.Errorf("cluster: migrate %s: unknown node %q", tenant, to)
	}
	if !c.reg.Healthy(to) {
		return fmt.Errorf("cluster: migrate %s: %w: %s", tenant, ErrNodeDown, to)
	}
	owner, _ := c.Owner(tenant)
	if owner == to {
		return fmt.Errorf("cluster: migrate %s: %w on %s", tenant, fleet.ErrAlreadyHosted, to)
	}
	source, err := c.Route(tenant)
	if err != nil {
		return fmt.Errorf("cluster: migrate %s: %w", tenant, err)
	}
	cp, err := NewRemote(spec, source.Addr, c.client).Checkpoint()
	if err != nil {
		return err
	}
	if err := NewRemote(spec, target.Addr, c.client).Restore(cp); err != nil {
		return err
	}
	c.mu.Lock()
	c.owners[tenant] = to
	c.mu.Unlock()
	c.logf("cluster: tenant %s: migrated %s -> %s (checkpoint at epoch %d)", tenant, owner, to, cp.TopologyEpoch)
	return nil
}

// CountProxied and CountRedirected record one routed request each —
// the serving layer calls them as it answers.
func (c *Coordinator) CountProxied(node string) {
	c.mu.Lock()
	c.proxied[node]++
	c.mu.Unlock()
}

func (c *Coordinator) CountRedirected(node string) {
	c.mu.Lock()
	c.redirected[node]++
	c.mu.Unlock()
}

// Report assembles the per-node observability rows for the
// coordinator's /v1/tenants payload.
func (c *Coordinator) Report() []NodeReport {
	status := c.reg.Status()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeReport, 0, len(status))
	for _, st := range status {
		row := NodeReport{
			NodeStatus: st,
			Proxied:    c.proxied[st.Name],
			Redirected: c.redirected[st.Name],
		}
		for _, t := range c.cfg.Tenants {
			if c.owners[t.Name] == st.Name {
				row.Tenants = append(row.Tenants, t.Name)
			}
		}
		out = append(out, row)
	}
	return out
}
