package cluster

import (
	"strings"
	"testing"
)

// validConfig is the smallest interesting cluster: two primaries, one
// standby, one pinned tenant, one ring-placed.
const validConfig = `{
  "format": 1,
  "tenants": [
    {"name": "eu", "source": "europe"},
    {"name": "us", "source": "america"}
  ],
  "nodes": [
    {"name": "n1", "addr": "127.0.0.1:9101"},
    {"name": "n2", "addr": "127.0.0.1:9102"},
    {"name": "n3", "addr": "127.0.0.1:9103", "standby": true}
  ],
  "placement": {"eu": "n1"},
  "standbys": {"eu": "n3"}
}`

func TestParseValid(t *testing.T) {
	cfg, err := Parse([]byte(validConfig))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Owner("eu") != "n1" {
		t.Fatalf("pinned owner %q, want n1", cfg.Owner("eu"))
	}
	// The ring places the unpinned tenant on a primary, never the standby.
	if o := cfg.Owner("us"); o != "n1" && o != "n2" {
		t.Fatalf("ring owner %q, want a primary", o)
	}
	if cfg.StandbyFor("eu") != "n3" {
		t.Fatalf("pinned standby %q, want n3", cfg.StandbyFor("eu"))
	}
	// The default standby comes from the standby-marked pool.
	if sb := cfg.StandbyFor("us"); sb != "n3" {
		t.Fatalf("ring standby %q, want n3", sb)
	}
	if cfg.Redirect() {
		t.Fatal("default routing should be proxy")
	}
	if cfg.probeEvery() != DefaultProbeEvery || cfg.probeFailures() != DefaultProbeFailures || cfg.syncEvery() != DefaultSyncEvery {
		t.Fatal("defaults not applied")
	}
	// OwnedBy/StandbyOn partition the tenants consistently with
	// Owner/StandbyFor.
	total := 0
	for _, n := range cfg.Nodes {
		for _, spec := range cfg.OwnedBy(n.Name) {
			if cfg.Owner(spec.Name) != n.Name {
				t.Fatalf("OwnedBy(%s) includes %s, Owner says %s", n.Name, spec.Name, cfg.Owner(spec.Name))
			}
			total++
		}
	}
	if total != len(cfg.Tenants) {
		t.Fatalf("OwnedBy partitions %d tenants, config has %d", total, len(cfg.Tenants))
	}
	if len(cfg.StandbyOn("n3")) != 2 {
		t.Fatalf("StandbyOn(n3) = %v, want both tenants", cfg.StandbyOn("n3"))
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct{ name, json, want string }{
		{"bad format", `{"format": 9, "tenants": [{"name":"a"}], "nodes": [{"name":"n","addr":"x:1"}]}`, "format 9"},
		{"unknown field", `{"format": 1, "wat": true, "tenants": [{"name":"a"}], "nodes": [{"name":"n","addr":"x:1"}]}`, "unknown field"},
		{"no tenants", `{"format": 1, "tenants": [], "nodes": [{"name":"n","addr":"x:1"}]}`, "no tenants"},
		{"bad tenant", `{"format": 1, "tenants": [{"name":"!"}], "nodes": [{"name":"n","addr":"x:1"}]}`, "identifier"},
		{"no nodes", `{"format": 1, "tenants": [{"name":"a"}], "nodes": []}`, "no nodes"},
		{"dup node", `{"format": 1, "tenants": [{"name":"a"}], "nodes": [{"name":"n","addr":"x:1"},{"name":"n","addr":"x:2"}]}`, "duplicate node"},
		{"no addr", `{"format": 1, "tenants": [{"name":"a"}], "nodes": [{"name":"n"}]}`, "no addr"},
		{"all standby", `{"format": 1, "tenants": [{"name":"a"}], "nodes": [{"name":"n","addr":"x:1","standby":true}]}`, "every node is a standby"},
		{"placement unknown tenant", `{"format": 1, "tenants": [{"name":"a"}], "nodes": [{"name":"n","addr":"x:1"}], "placement": {"b":"n"}}`, "unknown tenant"},
		{"placement unknown node", `{"format": 1, "tenants": [{"name":"a"}], "nodes": [{"name":"n","addr":"x:1"}], "placement": {"a":"m"}}`, "unknown node"},
		{"standby is owner", `{"format": 1, "tenants": [{"name":"a"}], "nodes": [{"name":"n","addr":"x:1"},{"name":"m","addr":"x:2"}], "placement": {"a":"n"}, "standbys": {"a":"n"}}`, "both owner and standby"},
		{"bad routing", `{"format": 1, "tenants": [{"name":"a"}], "nodes": [{"name":"n","addr":"x:1"}], "routing": "teleport"}`, "not proxy or redirect"},
		{"bad probe_every", `{"format": 1, "tenants": [{"name":"a"}], "nodes": [{"name":"n","addr":"x:1"}], "probe_every": "soon"}`, "not a positive duration"},
		{"negative sync_every", `{"format": 1, "tenants": [{"name":"a"}], "nodes": [{"name":"n","addr":"x:1"}], "sync_every": "-1s"}`, "not a positive duration"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.json))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestRingLookup: deterministic, order-independent, and stable under
// node addition for most keys — the properties placement leans on.
func TestRingLookup(t *testing.T) {
	if ringLookup(nil, "k") != "" {
		t.Fatal("empty ring should assign nothing")
	}
	if ringLookup([]string{"only"}, "k") != "only" {
		t.Fatal("single node takes everything")
	}
	nodes := []string{"n1", "n2", "n3"}
	reversed := []string{"n3", "n2", "n1"}
	counts := map[string]int{}
	moved := 0
	const keys = 200
	for i := 0; i < keys; i++ {
		key := "tenant-" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
		a := ringLookup(nodes, key)
		if b := ringLookup(reversed, key); a != b {
			t.Fatalf("key %q: order-dependent assignment %q vs %q", key, a, b)
		}
		if a != ringLookup(nodes, key) {
			t.Fatalf("key %q: nondeterministic", key)
		}
		counts[a]++
		if ringLookup(append([]string{"n4"}, nodes...), key) != a {
			moved++
		}
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s got no keys: %v", n, counts)
		}
	}
	// Consistency: adding a 4th node should move roughly a quarter of
	// the keys, not rehash everything. Allow a generous margin.
	if moved > keys/2 {
		t.Fatalf("adding one node moved %d/%d keys", moved, keys)
	}
}
