package cluster

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"path/filepath"
	"time"

	"repro/internal/fleet"
	"repro/internal/stream"
)

// Node is one cluster member's runtime around its local fleet: it
// answers the serve layer's NodeAdmin surface (name + adopt) and runs
// a checkpoint-sync loop for every tenant it stands by for, so a
// promotion restores from a file that is at most one sync interval
// stale — a warm restore, not a cold rebuild.
type Node struct {
	cfg    Config
	name   string
	f      *fleet.Fleet
	dir    string // checkpoint directory; standby copies land here too
	client *http.Client
	logf   func(format string, args ...any)
}

// NewNode builds the member runtime for the named node. dir is the
// node's checkpoint directory: standby copies are written to the same
// <dir>/<tenant>.ckpt path the fleet persists to, so an adopted tenant
// simply continues the file. client may be nil for http.DefaultClient;
// logf may be nil to discard.
func NewNode(cfg Config, name string, f *fleet.Fleet, dir string, client *http.Client, logf func(string, ...any)) (*Node, error) {
	if _, ok := cfg.Node(name); !ok {
		return nil, fmt.Errorf("cluster: node %q is not in the cluster config", name)
	}
	if client == nil {
		client = http.DefaultClient
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Node{cfg: cfg, name: name, f: f, dir: dir, client: client, logf: logf}, nil
}

// NodeName returns this node's name in the cluster config (the
// X-Tenant-Node header value).
func (n *Node) NodeName() string { return n.name }

// standbyPath is where a tenant's synced standby checkpoint lives —
// deliberately the fleet's own checkpoint path, so Adopt restores it
// and the post-adopt persist loop continues the same file.
func (n *Node) standbyPath(tenant string) string {
	return filepath.Join(n.dir, tenant+".ckpt")
}

// Run starts one checkpoint-sync loop per tenant this node stands by
// for and blocks until ctx is done. Safe to run with zero standby
// assignments (it just waits).
func (n *Node) Run(ctx context.Context) {
	for _, spec := range n.cfg.StandbyOn(n.name) {
		go n.syncLoop(ctx, spec)
	}
	<-ctx.Done()
}

// syncLoop periodically pulls the owning node's checkpoint for one
// tenant and persists it locally. Once the tenant is hosted here (the
// standby was promoted) the loop stops syncing — the local persist
// loop owns the file from then on. Pull failures are quietly retried:
// the owner being down is exactly when the last synced copy matters.
func (n *Node) syncLoop(ctx context.Context, spec fleet.TenantSpec) {
	owner, ok := n.cfg.Node(n.cfg.Owner(spec.Name))
	if !ok {
		return
	}
	remote := NewRemote(spec, owner.Addr, n.client)
	tick := time.NewTicker(n.cfg.syncEvery())
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if _, hosted := n.f.Tenant(spec.Name); hosted {
			return
		}
		cp, err := remote.Checkpoint()
		if err != nil {
			continue
		}
		if cp.Snapshot == nil {
			continue // nothing published yet; a cold checkpoint is not worth a standby file
		}
		if err := stream.SaveCheckpoint(n.standbyPath(spec.Name), cp); err != nil {
			n.logf("cluster: standby sync %s: %v", spec.Name, err)
		}
	}
}

// Adopt makes this node host a tenant — the receiving half of
// checkpoint handoff, wired into POST /v1/cluster/adopt. The restored
// state is, in order of preference: the checkpoint shipped in the
// request, else this node's synced standby copy, else nothing (a cold
// adopt). Returns fleet.ErrUnknownTenant for tenants outside the
// cluster config and fleet.ErrAlreadyHosted for promotion retries.
func (n *Node) Adopt(ctx context.Context, tenant string, cp *stream.Checkpoint) error {
	spec, ok := n.cfg.TenantSpec(tenant)
	if !ok {
		return fmt.Errorf("cluster: %w: %q is not in the cluster config", fleet.ErrUnknownTenant, tenant)
	}
	if _, hosted := n.f.Tenant(tenant); hosted {
		return fmt.Errorf("cluster: %w: %q", fleet.ErrAlreadyHosted, tenant)
	}
	if cp == nil {
		loaded, err := stream.LoadCheckpoint(n.standbyPath(tenant))
		switch {
		case err == nil:
			cp = &loaded
			n.logf("cluster: adopting %s from synced standby checkpoint", tenant)
		case errors.Is(err, fs.ErrNotExist):
			n.logf("cluster: adopting %s cold (no shipped or synced checkpoint)", tenant)
		default:
			return fmt.Errorf("cluster: adopt %s: standby checkpoint: %w", tenant, err)
		}
	}
	_, err := n.f.Adopt(spec, cp)
	return err
}
