// Package cluster turns the single-process fleet into a distributed
// one: a versioned cluster config assigning tenants to named nodes
// (explicit placement with a consistent-hash default), a node registry
// with health probing, and tenant migration via checkpoint handoff —
// the owning node's atomic checkpoint file is shipped to the new owner
// and restored warm, topology epoch and warm-start iterate intact.
// The split follows the paper's own decomposition: per-subnetwork
// estimation is independent, so tenants shard across processes with no
// cross-node coupling beyond the handoff document.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/fleet"
)

// ConfigFormat is the version tag every cluster config must carry;
// Parse rejects unknown versions instead of guessing.
const ConfigFormat = 1

// Defaults for the probe and sync loops.
const (
	DefaultProbeEvery    = time.Second
	DefaultProbeFailures = 3
	DefaultSyncEvery     = 2 * time.Second
)

// NodeSpec declares one member node: a name (for placement, the
// X-Tenant-Node header and logs) and the address its HTTP API listens
// on. Standby nodes take no tenants by default — they sync checkpoints
// and host tenants only on promotion.
type NodeSpec struct {
	Name string `json:"name"`
	// Addr is the node's host:port (no scheme; the cluster speaks plain
	// HTTP inside its own network).
	Addr    string `json:"addr"`
	Standby bool   `json:"standby,omitempty"`
}

// Config is the versioned cluster declaration `tmserve -cluster` loads:
// the fleet's tenant list plus node membership and placement. Every
// node and the coordinator load the same file, so ownership is a pure
// function of the config — no consensus protocol, which is the right
// trade for a read-serving tier whose unit of state is a checkpoint
// file.
type Config struct {
	Format  int                `json:"format"`
	Tenants []fleet.TenantSpec `json:"tenants"`
	Nodes   []NodeSpec         `json:"nodes"`
	// Placement pins tenants to nodes by name; unpinned tenants land on
	// the consistent-hash ring over the non-standby nodes.
	Placement map[string]string `json:"placement,omitempty"`
	// Standbys pins a tenant's warm standby; unpinned tenants get one
	// from the ring over the standby-marked nodes (all other nodes when
	// none are marked).
	Standbys map[string]string `json:"standbys,omitempty"`
	// Routing selects how the coordinator answers tenant-scoped reads:
	// "proxy" (default) forwards to the owner, "redirect" answers 307
	// with the owner's address.
	Routing string `json:"routing,omitempty"`
	// ProbeEvery is the registry's health-probe interval (Go duration,
	// default 1s); ProbeFailures is how many consecutive failures mark a
	// node down (default 3).
	ProbeEvery    string `json:"probe_every,omitempty"`
	ProbeFailures int    `json:"probe_failures,omitempty"`
	// SyncEvery is the standby checkpoint-sync interval (default 2s).
	SyncEvery string `json:"sync_every,omitempty"`
}

// Parse decodes and validates a cluster config.
func Parse(data []byte) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("cluster: parse config: %w", err)
	}
	if cfg.Format != ConfigFormat {
		return Config{}, fmt.Errorf("cluster: config format %d, this build reads %d", cfg.Format, ConfigFormat)
	}
	if len(cfg.Tenants) == 0 {
		return Config{}, fmt.Errorf("cluster: config declares no tenants")
	}
	if err := fleet.ValidateTenants(cfg.Tenants); err != nil {
		return Config{}, fmt.Errorf("cluster: %w", err)
	}
	if len(cfg.Nodes) == 0 {
		return Config{}, fmt.Errorf("cluster: config declares no nodes")
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	primaries := 0
	for i, n := range cfg.Nodes {
		if n.Name == "" {
			return Config{}, fmt.Errorf("cluster: node %d has no name", i)
		}
		if seen[n.Name] {
			return Config{}, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		if n.Addr == "" {
			return Config{}, fmt.Errorf("cluster: node %q has no addr", n.Name)
		}
		if !n.Standby {
			primaries++
		}
	}
	if primaries == 0 {
		return Config{}, fmt.Errorf("cluster: every node is a standby; at least one must take tenants")
	}
	for tenant, node := range cfg.Placement {
		if !cfg.hasTenant(tenant) {
			return Config{}, fmt.Errorf("cluster: placement names unknown tenant %q", tenant)
		}
		if _, ok := cfg.Node(node); !ok {
			return Config{}, fmt.Errorf("cluster: placement of %q names unknown node %q", tenant, node)
		}
	}
	for tenant, node := range cfg.Standbys {
		if !cfg.hasTenant(tenant) {
			return Config{}, fmt.Errorf("cluster: standbys names unknown tenant %q", tenant)
		}
		if _, ok := cfg.Node(node); !ok {
			return Config{}, fmt.Errorf("cluster: standby of %q names unknown node %q", tenant, node)
		}
		if cfg.Owner(tenant) == node {
			return Config{}, fmt.Errorf("cluster: tenant %q has node %q as both owner and standby", tenant, node)
		}
	}
	switch cfg.Routing {
	case "", "proxy", "redirect":
	default:
		return Config{}, fmt.Errorf("cluster: routing %q is not proxy or redirect", cfg.Routing)
	}
	for _, d := range []struct{ name, val string }{
		{"probe_every", cfg.ProbeEvery}, {"sync_every", cfg.SyncEvery},
	} {
		if d.val == "" {
			continue
		}
		if dur, err := time.ParseDuration(d.val); err != nil || dur <= 0 {
			return Config{}, fmt.Errorf("cluster: %s %q is not a positive duration", d.name, d.val)
		}
	}
	if cfg.ProbeFailures < 0 {
		return Config{}, fmt.Errorf("cluster: probe_failures %d is negative", cfg.ProbeFailures)
	}
	return cfg, nil
}

// Load reads and validates a cluster config file.
func Load(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	cfg, err := Parse(data)
	if err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

func (c Config) hasTenant(name string) bool {
	for _, t := range c.Tenants {
		if t.Name == name {
			return true
		}
	}
	return false
}

// TenantSpec looks a tenant's spec up by name.
func (c Config) TenantSpec(name string) (fleet.TenantSpec, bool) {
	for _, t := range c.Tenants {
		if t.Name == name {
			return t, true
		}
	}
	return fleet.TenantSpec{}, false
}

// Node looks a node up by name.
func (c Config) Node(name string) (NodeSpec, bool) {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return NodeSpec{}, false
}

// Owner resolves which node owns a tenant at boot: the explicit
// placement when pinned, else the consistent-hash ring over the
// non-standby nodes. Deterministic across processes — every node and
// the coordinator compute the same answer from the same config.
func (c Config) Owner(tenant string) string {
	if n, ok := c.Placement[tenant]; ok {
		return n
	}
	var primaries []string
	for _, n := range c.Nodes {
		if !n.Standby {
			primaries = append(primaries, n.Name)
		}
	}
	return ringLookup(primaries, tenant)
}

// StandbyFor resolves a tenant's warm standby: the explicit pin, else
// the ring over standby-marked nodes (all nodes when none are marked),
// excluding the owner. "" means the tenant has no standby (a one-node
// cluster).
func (c Config) StandbyFor(tenant string) string {
	if n, ok := c.Standbys[tenant]; ok {
		return n
	}
	owner := c.Owner(tenant)
	var pool []string
	for _, n := range c.Nodes {
		if n.Standby && n.Name != owner {
			pool = append(pool, n.Name)
		}
	}
	if len(pool) == 0 {
		for _, n := range c.Nodes {
			if n.Name != owner {
				pool = append(pool, n.Name)
			}
		}
	}
	return ringLookup(pool, tenant)
}

// OwnedBy returns the tenants a node owns at boot, in declaration order.
func (c Config) OwnedBy(node string) []fleet.TenantSpec {
	var out []fleet.TenantSpec
	for _, t := range c.Tenants {
		if c.Owner(t.Name) == node {
			out = append(out, t)
		}
	}
	return out
}

// StandbyOn returns the tenants a node is warm standby for, in
// declaration order — the set its sync loop pulls checkpoints for.
func (c Config) StandbyOn(node string) []fleet.TenantSpec {
	var out []fleet.TenantSpec
	for _, t := range c.Tenants {
		if c.StandbyFor(t.Name) == node {
			out = append(out, t)
		}
	}
	return out
}

// Redirect reports whether the coordinator answers 307 redirects
// instead of proxying.
func (c Config) Redirect() bool { return c.Routing == "redirect" }

func (c Config) probeEvery() time.Duration {
	if c.ProbeEvery == "" {
		return DefaultProbeEvery
	}
	d, _ := time.ParseDuration(c.ProbeEvery)
	return d
}

func (c Config) probeFailures() int {
	if c.ProbeFailures == 0 {
		return DefaultProbeFailures
	}
	return c.ProbeFailures
}

func (c Config) syncEvery() time.Duration {
	if c.SyncEvery == "" {
		return DefaultSyncEvery
	}
	d, _ := time.ParseDuration(c.SyncEvery)
	return d
}
