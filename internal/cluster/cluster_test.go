package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fleet"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/stream"
)

// member is one in-process cluster node: a real fleet behind a real
// serve handler on a real listener — everything but the process
// boundary.
type member struct {
	name string
	addr string
	f    *fleet.Fleet
	node *cluster.Node
	srv  *httptest.Server
	dir  string
	done chan error
}

// euSpec is the test tenant: a small endless replay that publishes
// every few tens of milliseconds.
var euSpec = fleet.TenantSpec{
	Name: "eu", Source: "europe", Cycles: -1, Pace: "20ms",
	Window: 3, ResolveEvery: 3,
}

// startMember boots one node: its fleet (owned tenants from the
// config), its cluster runtime (standby sync loops) and its HTTP
// server. A cleanup stops the member and waits its fleet out before
// the test's temp dirs vanish (the shutdown checkpoint save needs
// them).
func startMember(t *testing.T, ctx context.Context, cfg cluster.Config, name string, srv *httptest.Server) *member {
	t.Helper()
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(ctx)
	f := fleet.New(runner.NewPool(1), fleet.Options{
		CheckpointDir: dir, AllowEmpty: true, Logf: t.Logf,
	})
	for _, spec := range cfg.OwnedBy(name) {
		if _, err := f.Add(spec); err != nil {
			t.Fatal(err)
		}
	}
	node, err := cluster.NewNode(cfg, name, f, dir, nil, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	m := &member{
		name: name, addr: addrOf(srv),
		f: f, node: node, srv: srv, dir: dir, done: make(chan error, 1),
	}
	s := serve.New(ctx, f, serve.Options{Node: node})
	srv.Config.Handler = s.Handler()
	go func() { m.done <- f.Run(ctx) }()
	go node.Run(ctx)
	t.Cleanup(func() {
		cancel()
		<-m.done
	})
	return m
}

// newListeners allocates n unstarted servers so their addresses can go
// into the config before any handler exists.
func newListeners(t *testing.T, n int) []*httptest.Server {
	t.Helper()
	out := make([]*httptest.Server, n)
	for i := range out {
		out[i] = httptest.NewUnstartedServer(nil)
		t.Cleanup(out[i].Close)
	}
	return out
}

func addrOf(srv *httptest.Server) string {
	return srv.Listener.Addr().String()
}

// twoNodeConfig wires eu onto n1 with n2 as its standby.
func twoNodeConfig(srvs []*httptest.Server, standby bool) cluster.Config {
	return cluster.Config{
		Format:  cluster.ConfigFormat,
		Tenants: []fleet.TenantSpec{euSpec},
		Nodes: []cluster.NodeSpec{
			{Name: "n1", Addr: addrOf(srvs[0])},
			{Name: "n2", Addr: addrOf(srvs[1]), Standby: standby},
		},
		Placement:     map[string]string{"eu": "n1"},
		Standbys:      map[string]string{"eu": "n2"},
		ProbeEvery:    "30ms",
		ProbeFailures: 2,
		SyncEvery:     "30ms",
	}
}

func waitFor(t *testing.T, what string, timeout time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRemoteHandle: the HTTP-backed handle observes a remote tenant
// through the same surface a local one has.
func TestRemoteHandle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srvs := newListeners(t, 2)
	cfg := twoNodeConfig(srvs, true)
	m1 := startMember(t, ctx, cfg, "n1", srvs[0])
	m1.srv.Start()

	r := cluster.NewRemote(euSpec, m1.addr, nil)
	if r.Name() != "eu" || r.Spec().Source != "europe" {
		t.Fatalf("identity: %s %s", r.Name(), r.Spec().Source)
	}
	snap, err := r.WaitVersion(ctx, 2)
	if err != nil || snap.Version < 2 {
		t.Fatalf("WaitVersion: v%d, %v", snap.Version, err)
	}
	if got, ok := r.Latest(); !ok || got.Version < 2 {
		t.Fatalf("Latest: ok=%v v%d", ok, got.Version)
	}
	st := r.Status()
	if st.Name != "eu" || !st.HaveSnapshot {
		t.Fatalf("Status: %+v", st)
	}
	if v, _, ok := r.Position(); !ok || v < 2 {
		t.Fatalf("Position: ok=%v v%d", ok, v)
	}
	waitFor(t, "metrics", 5*time.Second, func() bool { return len(r.Metrics()) > 0 })
	cp, err := r.Checkpoint()
	if err != nil || cp.Snapshot == nil {
		t.Fatalf("Checkpoint: %v (snapshot %v)", err, cp.Snapshot != nil)
	}

	// An unreachable owner degrades, not errors.
	ghost := cluster.NewRemote(euSpec, "127.0.0.1:1", nil)
	if st := ghost.Status(); st.State != fleet.StateUnreachable {
		t.Fatalf("ghost status %q, want unreachable", st.State)
	}
	if _, ok := ghost.Latest(); ok {
		t.Fatal("ghost served a snapshot")
	}
}

// TestStandbySyncAndFailover is the tentpole's core loop in-process:
// the standby syncs the owner's checkpoint, the owner dies, the
// coordinator promotes the standby, and the tenant serves on from the
// synced state — warm, with its version history intact.
func TestStandbySyncAndFailover(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srvs := newListeners(t, 2)
	cfg := twoNodeConfig(srvs, true)
	m1 := startMember(t, ctx, cfg, "n1", srvs[0])
	m2 := startMember(t, ctx, cfg, "n2", srvs[1])
	m1.srv.Start()
	m2.srv.Start()

	// Let the owner publish, then let the standby sync a checkpoint
	// that has a snapshot in it.
	owner := cluster.NewRemote(euSpec, m1.addr, nil)
	if _, err := owner.WaitVersion(ctx, 3); err != nil {
		t.Fatal(err)
	}
	standbyFile := filepath.Join(m2.dir, "eu.ckpt")
	var synced stream.Checkpoint
	waitFor(t, "standby checkpoint sync", 10*time.Second, func() bool {
		cp, err := stream.LoadCheckpoint(standbyFile)
		if err != nil || cp.Snapshot == nil {
			return false
		}
		synced = cp
		return true
	})

	co := cluster.NewCoordinator(cfg, nil, t.Logf)
	co.Registry().Sweep(ctx)
	if node, err := co.Route("eu"); err != nil || node.Name != "n1" {
		t.Fatalf("route before failover: %+v, %v", node, err)
	}
	if _, err := co.Route("nosuch"); err == nil {
		t.Fatal("routing an unknown tenant did not error")
	}

	// The front door proxies to the owner and names it.
	front := serve.NewCoordinator(co, nil)
	handler := front.Handler()
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/t/eu/snapshot", nil))
	if rec.Code != http.StatusOK || rec.Header().Get("X-Tenant-Node") != "n1" {
		t.Fatalf("proxied read: %d via %q", rec.Code, rec.Header().Get("X-Tenant-Node"))
	}

	// Kill the owner (listener down ~ network partition: the engine may
	// still run, nobody can reach it).
	m1.srv.Close()
	waitFor(t, "failover to n2", 10*time.Second, func() bool {
		co.Registry().Sweep(ctx)
		node, err := co.Route("eu")
		return err == nil && node.Name == "n2"
	})

	// The standby restored the synced checkpoint: same tenant, version
	// history continued, marked restored.
	ten, ok := m2.f.Tenant("eu")
	if !ok {
		t.Fatal("standby does not host eu after failover")
	}
	waitFor(t, "standby serving past synced version", 10*time.Second, func() bool {
		v, _, ok := ten.Position()
		return ok && v >= synced.Snapshot.Version
	})
	if st := ten.Status(); !st.Restored {
		t.Fatalf("adopted tenant not marked restored: %+v", st)
	}

	// Reads through the front door now land on n2.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/t/eu/snapshot", nil))
	if rec.Code != http.StatusOK || rec.Header().Get("X-Tenant-Node") != "n2" {
		t.Fatalf("post-failover read: %d via %q", rec.Code, rec.Header().Get("X-Tenant-Node"))
	}

	// The aggregated listing annotates rows with their node and carries
	// the counters: proxied requests and n1's probe failures.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tenants", nil))
	var listing struct {
		Coordinator bool `json:"coordinator"`
		Nodes       []cluster.NodeReport
		Tenants     []struct {
			Name string `json:"name"`
			Node string `json:"node"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if !listing.Coordinator || len(listing.Tenants) != 1 || listing.Tenants[0].Node != "n2" {
		t.Fatalf("listing: %s", rec.Body.String())
	}
	var n1Report, n2Report cluster.NodeReport
	for _, n := range listing.Nodes {
		switch n.Name {
		case "n1":
			n1Report = n
		case "n2":
			n2Report = n
		}
	}
	if n1Report.Healthy || n1Report.ProbeFailures < 2 {
		t.Fatalf("n1 report: %+v", n1Report)
	}
	if !n2Report.Healthy || n2Report.Proxied < 1 || len(n2Report.Tenants) != 1 {
		t.Fatalf("n2 report: %+v", n2Report)
	}

	// Promotion retries are idempotent: adopting again is a 409 mapped
	// onto the sentinel.
	err := m2.node.Adopt(ctx, "eu", nil)
	if !errors.Is(err, fleet.ErrAlreadyHosted) {
		t.Fatalf("re-adopt: %v", err)
	}
	if err := m2.node.Adopt(ctx, "nosuch", nil); !errors.Is(err, fleet.ErrUnknownTenant) {
		t.Fatalf("adopt unknown: %v", err)
	}
}

// TestCoordinatorMigrate moves a tenant between two healthy nodes by
// checkpoint handoff and verifies the target serves it warm.
func TestCoordinatorMigrate(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srvs := newListeners(t, 2)
	cfg := twoNodeConfig(srvs, false) // n2 is a primary with no tenants
	m1 := startMember(t, ctx, cfg, "n1", srvs[0])
	m2 := startMember(t, ctx, cfg, "n2", srvs[1])
	m1.srv.Start()
	m2.srv.Start()

	owner := cluster.NewRemote(euSpec, m1.addr, nil)
	pre, err := owner.WaitVersion(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}

	co := cluster.NewCoordinator(cfg, nil, t.Logf)
	co.Registry().Sweep(ctx)

	front := serve.NewCoordinator(co, nil)
	handler := front.Handler()
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/cluster/migrate?tenant=eu&to=n2", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("migrate: %d %s", rec.Code, rec.Body.String())
	}
	if node, err := co.Route("eu"); err != nil || node.Name != "n2" {
		t.Fatalf("route after migrate: %+v, %v", node, err)
	}
	ten, ok := m2.f.Tenant("eu")
	if !ok {
		t.Fatal("target does not host eu after migrate")
	}
	// Warm handoff: the shipped checkpoint carried the version history,
	// so the target continues numbering instead of starting over.
	waitFor(t, "target serving past handoff version", 10*time.Second, func() bool {
		v, _, ok := ten.Position()
		return ok && v >= pre.Version
	})
	if st := ten.Status(); !st.Restored {
		t.Fatalf("migrated tenant not marked restored: %+v", st)
	}

	// Migrating onto the current owner is the 409 family.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/cluster/migrate?tenant=eu&to=n2", nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("migrate onto owner: %d %s", rec.Code, rec.Body.String())
	}
	// Unknown tenant and malformed queries keep the envelope.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/cluster/migrate?tenant=ghost&to=n2", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("migrate unknown tenant: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/cluster/migrate?tenant=eu", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("migrate without target: %d", rec.Code)
	}
}

// TestCoordinatorRedirect: routing "redirect" answers 307 with the
// owner's address instead of proxying.
func TestCoordinatorRedirect(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srvs := newListeners(t, 2)
	cfg := twoNodeConfig(srvs, true)
	cfg.Routing = "redirect"
	m1 := startMember(t, ctx, cfg, "n1", srvs[0])
	m1.srv.Start()

	owner := cluster.NewRemote(euSpec, m1.addr, nil)
	if _, err := owner.WaitVersion(ctx, 1); err != nil {
		t.Fatal(err)
	}
	co := cluster.NewCoordinator(cfg, nil, t.Logf)
	co.Registry().Sweep(ctx)
	handler := serve.NewCoordinator(co, nil).Handler()

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/t/eu/snapshot?min_version=1", nil))
	if rec.Code != http.StatusTemporaryRedirect {
		t.Fatalf("redirect mode answered %d", rec.Code)
	}
	loc := rec.Header().Get("Location")
	if loc != "http://"+m1.addr+"/v1/t/eu/snapshot?min_version=1" {
		t.Fatalf("Location %q", loc)
	}
	if rec.Header().Get("X-Tenant-Node") != "n1" {
		t.Fatalf("X-Tenant-Node %q", rec.Header().Get("X-Tenant-Node"))
	}
	// Following the redirect lands on the node and succeeds.
	resp, err := http.Get(loc)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("redirected fetch: %d", resp.StatusCode)
	}
	// The healthz view reports the down standby (never started).
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"coordinator":true`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
}

// TestNodeAdoptColdWithoutCheckpoint: adopting a tenant nobody ever
// checkpointed starts it cold — still a successful adoption.
func TestNodeAdoptColdWithoutCheckpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srvs := newListeners(t, 2)
	cfg := twoNodeConfig(srvs, true)
	m2 := startMember(t, ctx, cfg, "n2", srvs[1])
	m2.srv.Start()

	if err := m2.node.Adopt(ctx, "eu", nil); err != nil {
		t.Fatalf("cold adopt: %v", err)
	}
	ten, ok := m2.f.Tenant("eu")
	if !ok {
		t.Fatal("tenant not hosted after cold adopt")
	}
	waitFor(t, "cold-adopted tenant publishing", 10*time.Second, func() bool {
		_, _, ok := ten.Position()
		return ok
	})
	if st := ten.Status(); st.Restored {
		t.Fatalf("cold adopt claims restored state: %+v", st)
	}
	// A corrupt standby file fails the adopt loudly instead of starting
	// a silently-cold engine.
	if err := os.WriteFile(filepath.Join(m2.dir, "us.ckpt"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Tenants = append([]fleet.TenantSpec{}, cfg.Tenants...)
	cfg2.Tenants = append(cfg2.Tenants, fleet.TenantSpec{Name: "us", Source: "america", Cycles: -1, Pace: "20ms"})
	node2, err := cluster.NewNode(cfg2, "n2", m2.f, m2.dir, nil, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := node2.Adopt(ctx, "us", nil); err == nil {
		t.Fatal("corrupt standby checkpoint adopted silently")
	}
}
