package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// NodeStatus is one row of the registry's health view, surfaced on the
// coordinator's /v1/tenants payload.
type NodeStatus struct {
	Name    string `json:"name"`
	Addr    string `json:"addr"`
	Standby bool   `json:"standby,omitempty"`
	Healthy bool   `json:"healthy"`
	// ProbeFailures counts every failed probe since boot (not just the
	// current streak) — the observability counter, monotone so deltas
	// graph cleanly.
	ProbeFailures uint64 `json:"probe_failures"`
}

// nodeState is the registry's book-keeping for one node.
type nodeState struct {
	healthy     bool
	consecutive int    // current failure streak
	failures    uint64 // failures since boot
}

// Registry probes every node's /healthz and keeps the cluster's
// liveness view. A node goes down after probe_failures consecutive
// misses (one blip does not trigger a migration) and comes back on the
// first success. Nodes start optimistically healthy so a coordinator
// booting alongside its nodes does not promote standbys before anyone
// has had a chance to answer.
type Registry struct {
	nodes     []NodeSpec
	every     time.Duration
	threshold int
	client    *http.Client
	logf      func(format string, args ...any)
	// onSweep runs after each full probe sweep — the coordinator hangs
	// its reconcile (promote tenants off dead owners) here, so failure
	// detection and failover share one clock.
	onSweep func(ctx context.Context)

	mu     sync.Mutex
	states map[string]*nodeState
}

// NewRegistry builds a registry over the config's node set. client may
// be nil for http.DefaultClient; logf may be nil to discard.
func NewRegistry(cfg Config, client *http.Client, logf func(string, ...any)) *Registry {
	if client == nil {
		client = http.DefaultClient
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r := &Registry{
		nodes:     cfg.Nodes,
		every:     cfg.probeEvery(),
		threshold: cfg.probeFailures(),
		client:    client,
		logf:      logf,
		states:    make(map[string]*nodeState, len(cfg.Nodes)),
	}
	for _, n := range cfg.Nodes {
		r.states[n.Name] = &nodeState{healthy: true}
	}
	return r
}

// OnSweep registers the post-sweep hook; call before Run.
func (r *Registry) OnSweep(fn func(ctx context.Context)) { r.onSweep = fn }

// Run probes until ctx is done: one sweep immediately, then one per
// probe interval.
func (r *Registry) Run(ctx context.Context) {
	r.Sweep(ctx)
	tick := time.NewTicker(r.every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			r.Sweep(ctx)
		}
	}
}

// Sweep probes every node once (concurrently) and then runs the
// registered hook. Exported so tests and the coordinator can force a
// sweep without waiting out the ticker.
func (r *Registry) Sweep(ctx context.Context) {
	var wg sync.WaitGroup
	for _, n := range r.nodes {
		wg.Add(1)
		go func(n NodeSpec) {
			defer wg.Done()
			r.record(n.Name, r.probe(ctx, n))
		}(n)
	}
	wg.Wait()
	if r.onSweep != nil {
		r.onSweep(ctx)
	}
}

// probe is one GET /healthz with a bounded wait: a node that cannot
// answer within the probe interval is as good as down.
func (r *Registry) probe(ctx context.Context, n NodeSpec) bool {
	ctx, cancel := context.WithTimeout(ctx, r.every)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+n.Addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (r *Registry) record(name string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.states[name]
	if ok {
		if !st.healthy {
			r.logf("cluster: node %s is back", name)
		}
		st.healthy = true
		st.consecutive = 0
		return
	}
	st.consecutive++
	st.failures++
	if st.healthy && st.consecutive >= r.threshold {
		st.healthy = false
		r.logf("cluster: node %s is down (%d consecutive probe failures)", name, st.consecutive)
	}
}

// Healthy reports a node's current liveness; unknown nodes are down.
func (r *Registry) Healthy(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.states[name]
	return ok && st.healthy
}

// Status returns every node's health row, in config order.
func (r *Registry) Status() []NodeStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeStatus, 0, len(r.nodes))
	for _, n := range r.nodes {
		st := r.states[n.Name]
		out = append(out, NodeStatus{
			Name: n.Name, Addr: n.Addr, Standby: n.Standby,
			Healthy: st.healthy, ProbeFailures: st.failures,
		})
	}
	return out
}
