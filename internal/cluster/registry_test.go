package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// flakyNode is a /healthz endpoint whose answer a test flips.
type flakyNode struct {
	srv *httptest.Server
	ok  atomic.Bool
}

func newFlakyNode(t *testing.T) *flakyNode {
	t.Helper()
	n := &flakyNode{}
	n.ok.Store(true)
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || !n.ok.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(n.srv.Close)
	return n
}

func (n *flakyNode) addr() string { return strings.TrimPrefix(n.srv.URL, "http://") }

func TestRegistryThresholdAndRecovery(t *testing.T) {
	a, b := newFlakyNode(t), newFlakyNode(t)
	cfg := Config{
		Format:  ConfigFormat,
		Nodes:   []NodeSpec{{Name: "a", Addr: a.addr()}, {Name: "b", Addr: b.addr()}},
		Tenants: nil, // registry does not read tenants
	}
	cfg.ProbeFailures = 2
	sweeps := 0
	reg := NewRegistry(cfg, nil, t.Logf)
	reg.OnSweep(func(context.Context) { sweeps++ })
	ctx := context.Background()

	reg.Sweep(ctx)
	if !reg.Healthy("a") || !reg.Healthy("b") {
		t.Fatal("healthy nodes probed down")
	}
	if reg.Healthy("ghost") {
		t.Fatal("unknown node reported healthy")
	}

	// One miss is a blip, not an outage; the second crosses the threshold.
	b.ok.Store(false)
	reg.Sweep(ctx)
	if !reg.Healthy("b") {
		t.Fatal("one probe failure marked the node down (threshold is 2)")
	}
	reg.Sweep(ctx)
	if reg.Healthy("b") {
		t.Fatal("two consecutive failures did not mark the node down")
	}

	// Recovery is immediate on the first good probe.
	b.ok.Store(true)
	reg.Sweep(ctx)
	if !reg.Healthy("b") {
		t.Fatal("node did not recover on a good probe")
	}

	// The failure counter is monotone: the two misses stay counted.
	var bStatus NodeStatus
	for _, st := range reg.Status() {
		if st.Name == "b" {
			bStatus = st
		}
	}
	if bStatus.ProbeFailures != 2 || !bStatus.Healthy {
		t.Fatalf("status row %+v, want 2 lifetime failures and healthy", bStatus)
	}
	if sweeps != 4 {
		t.Fatalf("onSweep ran %d times, want 4", sweeps)
	}
}
