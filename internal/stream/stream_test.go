package stream

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/netsim"
)

// replayInto runs an engine against a store fed by a deterministic replay
// of the scenario's series, waits until minVersion is published, shuts
// the engine down cleanly, and returns the store for inspection.
func replayInto(t *testing.T, sc *netsim.Scenario, eng *Engine, cycles int, minVersion uint64) *collector.Store {
	t.Helper()
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()
	if err := collector.Replay(ctx, store, sc.Series, cycles, 0); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if _, err := eng.WaitVersion(ctx, minVersion); err != nil {
		t.Fatalf("WaitVersion(%d): %v", minVersion, err)
	}
	cancel()
	if err := <-done; err != context.Canceled && err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v, want context cancellation", err)
	}
	return store
}

// TestIncrementalMatchesBatch is the tentpole acceptance check: after a
// replayed collection with evictions, the engine's incremental gravity
// estimate must match a from-scratch batch gravity solve over the same
// window to within 1e-9.
func TestIncrementalMatchesBatch(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	const cycles, window = 10, 4
	eng, err := New(sc.Rt, Config{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, sc, eng, cycles, cycles)

	snap, ok := eng.Latest()
	if !ok {
		t.Fatal("no snapshot after replay")
	}
	if snap.Interval != cycles-1 || snap.Window != window {
		t.Fatalf("snapshot at interval %d window %d, want %d/%d", snap.Interval, snap.Window, cycles-1, window)
	}

	// Batch reference: average the window's link loads from the ground
	// truth (replay is lossless, so collected == true demands) and solve
	// gravity from scratch.
	meanLoads := linalg.NewVector(sc.Rt.R.Rows())
	meanDemand := linalg.NewVector(sc.Net.NumPairs())
	for k := cycles - window; k < cycles; k++ {
		linalg.Axpy(1, sc.Rt.LinkLoads(sc.Series.Demands[k]), meanLoads)
		linalg.Axpy(1, sc.Series.Demands[k], meanDemand)
	}
	meanLoads.Scale(1 / float64(window))
	meanDemand.Scale(1 / float64(window))
	inst, err := core.NewInstance(sc.Rt, meanLoads)
	if err != nil {
		t.Fatal(err)
	}
	batch := core.Gravity(inst)

	for p := range batch {
		if d := math.Abs(batch[p] - snap.Gravity[p]); d > 1e-9 {
			t.Fatalf("demand %d: incremental %v vs batch %v (diff %g > 1e-9)", p, snap.Gravity[p], batch[p], d)
		}
		if d := math.Abs(meanDemand[p] - snap.Mean[p]); d > 1e-9 {
			t.Fatalf("demand %d: window mean %v vs batch %v (diff %g > 1e-9)", p, snap.Mean[p], meanDemand[p], d)
		}
	}
}

// TestVersionsMonotonic checks that every publication bumps the version
// by exactly one and that the metric history matches; with
// PruneConsumed, the store must hold none of the consumed intervals
// afterwards (the O(window) memory property of an endless run).
func TestVersionsMonotonic(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{Window: 3, PruneConsumed: true})
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 8
	store := replayInto(t, sc, eng, cycles, cycles)
	if n := len(store.Intervals()); n != 0 {
		t.Fatalf("store still holds %d consumed intervals, want 0 (PruneConsumed)", n)
	}
	points := eng.Metrics()
	if len(points) != cycles {
		t.Fatalf("got %d metric points, want %d", len(points), cycles)
	}
	for i, p := range points {
		if p.Version != uint64(i+1) {
			t.Fatalf("point %d has version %d, want %d", i, p.Version, i+1)
		}
		if p.Interval != i {
			t.Fatalf("point %d covers interval %d, want %d", i, p.Interval, i)
		}
	}
}

// TestFanoutStateRowsSumToOne checks the sliding-window fanout state: per
// source PoP the fanouts must form a probability row.
func TestFanoutStateRowsSumToOne(t *testing.T) {
	sc, err := netsim.BuildEurope(2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, sc, eng, 6, 6)
	snap, _ := eng.Latest()
	n := sc.Net.NumPoPs()
	for src := 0; src < n; src++ {
		var row float64
		for dst := 0; dst < n; dst++ {
			if dst != src {
				row += snap.Fanouts[sc.Net.PairIndex(src, dst)]
			}
		}
		if math.Abs(row-1) > 1e-9 {
			t.Fatalf("fanout row of PoP %d sums to %v", src, row)
		}
	}
}

// TestResolvePublishes checks that periodic full re-solves land in the
// snapshot, scored against the window they were solved on, and that the
// re-solve (entropy) improves on the gravity estimate it refines.
func TestResolvePublishes(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{Window: 4, ResolveEvery: 3, Method: MethodEntropy})
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()
	if err := collector.Replay(ctx, store, sc.Series, 6, 0); err != nil {
		t.Fatal(err)
	}
	// The re-solve runs asynchronously: wait for the publication carrying it.
	var snap Snapshot
	for v := uint64(1); ; v++ {
		s, err := eng.WaitVersion(ctx, v)
		if err != nil {
			t.Fatalf("no re-solve published: %v", err)
		}
		if s.Resolve != nil {
			snap = s
			break
		}
		v = s.Version
	}
	cancel()
	<-done

	if snap.ResolveMethod != MethodEntropy {
		t.Fatalf("resolve method %q, want entropy", snap.ResolveMethod)
	}
	if len(snap.Resolve) != sc.Net.NumPairs() {
		t.Fatalf("resolve has %d demands, want %d", len(snap.Resolve), sc.Net.NumPairs())
	}
	if snap.ResolveDuration <= 0 {
		t.Fatal("resolve duration not recorded")
	}
	if math.IsNaN(snap.ResolveMRE) || snap.ResolveMRE < 0 {
		t.Fatalf("bad resolve MRE %v", snap.ResolveMRE)
	}
	// Entropy tomography refines the gravity prior with the interior
	// links, so on consistent loads it must not be worse than gravity on
	// the same window (the paper's Fig. 13 / Table 2 relationship).
	grav, ok := eng.Latest()
	if !ok {
		t.Fatal("no snapshot")
	}
	if snap.ResolveMRE > grav.GravityMRE {
		t.Fatalf("entropy re-solve MRE %.4f worse than gravity %.4f", snap.ResolveMRE, grav.GravityMRE)
	}
}

// TestSkipsUndercoveredInterval checks the close-out rule: an interval
// stuck below MinCoverage is skipped once a later interval has records,
// instead of stalling the stream.
func TestSkipsUndercoveredInterval(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	P := sc.Net.NumPairs()
	store := collector.NewStore(P)
	eng, err := New(sc.Rt, Config{MinCoverage: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()

	// Interval 0: only half the LSPs reported (below the 90% floor).
	for p := 0; p < P/2; p++ {
		store.Ingest(collector.RateRecord{LSP: p, Interval: 0, RateMbps: sc.Series.Demands[0][p]})
	}
	// Fully covered intervals 1 and 2: records two intervals ahead close
	// interval 0 out (one interval of grace for lagging pollers).
	for iv := 1; iv <= 2; iv++ {
		for p := 0; p < P; p++ {
			store.Ingest(collector.RateRecord{LSP: p, Interval: iv, RateMbps: sc.Series.Demands[iv][p]})
		}
	}
	snap, err := eng.WaitVersion(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done
	if snap.Skipped != 1 {
		t.Fatalf("skipped %d intervals, want 1", snap.Skipped)
	}
	if snap.Interval != 2 || snap.Window != 2 {
		t.Fatalf("snapshot interval %d window %d, want 2/2", snap.Interval, snap.Window)
	}
}

// TestPartialCoverageConsumedWhenClosed checks the complementary case: a
// closed interval above MinCoverage is used even though it is not fully
// covered — the backup-poller reality of §5.1.2.
func TestPartialCoverageConsumedWhenClosed(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	P := sc.Net.NumPairs()
	store := collector.NewStore(P)
	eng, err := New(sc.Rt, Config{MinCoverage: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()

	for p := 0; p < P-1; p++ { // one LSP lost: 131/132 ≈ 99% > 90%
		store.Ingest(collector.RateRecord{LSP: p, Interval: 0, RateMbps: sc.Series.Demands[0][p]})
	}
	// Interval 0 is consumed only once records exist two intervals ahead
	// (grace for lagging pollers), so fill intervals 1 and 2 completely.
	for iv := 1; iv <= 2; iv++ {
		for p := 0; p < P; p++ {
			store.Ingest(collector.RateRecord{LSP: p, Interval: iv, RateMbps: sc.Series.Demands[iv][p]})
		}
	}
	snap, err := eng.WaitVersion(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done
	if snap.Skipped != 0 {
		t.Fatalf("skipped %d intervals, want 0", snap.Skipped)
	}
	if snap.Window != 3 {
		t.Fatalf("window %d, want 3 (partial interval consumed)", snap.Window)
	}
	first := eng.Metrics()[0]
	if first.Covered != P-1 {
		t.Fatalf("first interval covered %d, want %d", first.Covered, P-1)
	}
}

// TestFinalDrainOnStoreStop checks the end-of-collection path: when the
// store shuts down, trailing intervals that the close-out grace would
// strand (nothing after them to close them out) are drained against
// MinCoverage alone, and Run returns nil as documented.
func TestFinalDrainOnStoreStop(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	P := sc.Net.NumPairs()
	store := collector.NewStore(P)
	eng, err := New(sc.Rt, Config{MinCoverage: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()

	// A finite lossy collection: the last two intervals are partially
	// covered and have nothing after them to close them out.
	for iv := 0; iv <= 2; iv++ {
		covered := P
		if iv >= 1 {
			covered = P - 2 // ~98%, above the 90% floor
		}
		for p := 0; p < covered; p++ {
			store.Ingest(collector.RateRecord{LSP: p, Interval: iv, RateMbps: sc.Series.Demands[iv][p]})
		}
	}
	store.Stop() // collection over: closes the engine's subscription
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v after store shutdown, want nil", err)
	}
	snap, ok := eng.Latest()
	if !ok {
		t.Fatal("no snapshot after final drain")
	}
	if snap.Interval != 2 || snap.Window != 3 || snap.Skipped != 0 {
		t.Fatalf("final snapshot interval=%d window=%d skipped=%d, want 2/3/0",
			snap.Interval, snap.Window, snap.Skipped)
	}
}

// TestWaitVersionCancellation checks that a blocked WaitVersion returns
// promptly when its context is cancelled.
func TestWaitVersionCancellation(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := eng.WaitVersion(ctx, 1); err != context.DeadlineExceeded {
		t.Fatalf("WaitVersion returned %v, want deadline exceeded", err)
	}
}

// TestConfigValidation exercises New's input checking.
func TestConfigValidation(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sc.Rt, Config{Window: -1}); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := New(sc.Rt, Config{Method: "nonsense"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}
