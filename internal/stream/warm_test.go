package stream

import (
	"context"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/netsim"
)

// waitResolve polls until a re-solve of the given interval has been
// published and returns the snapshot carrying it.
func waitResolve(t *testing.T, eng *Engine, ctx context.Context, interval int) Snapshot {
	t.Helper()
	for v := uint64(1); ; {
		snap, err := eng.WaitVersion(ctx, v)
		if err != nil {
			t.Fatalf("waiting for re-solve of interval %d: %v", interval, err)
		}
		if snap.Resolve != nil && snap.ResolveInterval >= interval {
			return snap
		}
		v = snap.Version + 1
	}
}

// TestRunTwiceReturnsError pins the double-Run guard: Run is documented
// "at most once", and the second call must return an error instead of
// double-closing the work channel and panicking.
func TestRunTwiceReturnsError(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()
	for !eng.started.Load() { // wait out the goroutine's startup
		time.Sleep(time.Millisecond)
	}
	// Second concurrent call must fail fast, not panic.
	if err := eng.Run(ctx, store); err == nil {
		t.Fatal("second concurrent Run succeeded")
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("first Run returned %v, want context.Canceled", err)
	}
	// And a call after the first has finished must fail too: the engine's
	// worker and subscription are gone for good.
	if err := eng.Run(context.Background(), store); err == nil {
		t.Fatal("Run after completed Run succeeded")
	}
}

// TestSnapshotVectorsAreDeepCopies pins the aliasing fix: scribbling
// over every vector of a returned snapshot must not change what the
// next reader sees (Latest and WaitVersion both hand out copies).
func TestSnapshotVectorsAreDeepCopies(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{Window: 3, ResolveEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()
	if err := collector.Replay(ctx, store, sc.Series, 4, 0); err != nil {
		t.Fatal(err)
	}
	got := waitResolve(t, eng, ctx, 1)
	for _, v := range [][]float64{got.Gravity, got.Mean, got.Fanouts, got.Resolve} {
		for i := range v {
			v[i] = -12345 // a reader gone rogue
		}
	}
	again, err := eng.WaitVersion(ctx, got.Version)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string][]float64{
		"gravity": again.Gravity, "mean": again.Mean, "fanouts": again.Fanouts, "resolve": again.Resolve,
	} {
		for i, x := range v {
			if x == -12345 {
				t.Fatalf("mutating a returned snapshot leaked into %s[%d]", name, i)
			}
		}
	}
	cancel()
	<-done
}

// TestWarmStartTelemetry is the engine-level half of the warm-start
// contract: the first re-solve is cold, the second is warm-started from
// the first's published estimate, consumes fewer solver iterations, and
// both land in the snapshot/metric telemetry.
func TestWarmStartTelemetry(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{Window: 4, ResolveEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()
	feed := func(interval int) {
		for p, mbps := range sc.Series.Demands[interval] {
			store.Ingest(collector.RateRecord{LSP: p, Interval: interval, RateMbps: mbps})
		}
	}
	// First cadence point: intervals 0–1, cold re-solve of interval 1.
	feed(0)
	feed(1)
	cold := waitResolve(t, eng, ctx, 1)
	if cold.ResolveWarm {
		t.Fatal("first re-solve reported as warm-started")
	}
	if cold.ResolveIterations <= 0 {
		t.Fatalf("cold re-solve iterations not reported (%d)", cold.ResolveIterations)
	}
	// Second cadence point: intervals 2–3, warm re-solve of interval 3.
	feed(2)
	feed(3)
	warm := waitResolve(t, eng, ctx, 3)
	if !warm.ResolveWarm {
		t.Fatal("second re-solve not warm-started")
	}
	if warm.ResolveIterations >= cold.ResolveIterations {
		t.Fatalf("warm re-solve consumed %d iterations vs %d cold — want fewer",
			warm.ResolveIterations, cold.ResolveIterations)
	}
	// The telemetry must reach the metric history too.
	var sawWarm bool
	for _, p := range eng.Metrics() {
		if p.ResolveWarm && p.ResolveIterations == warm.ResolveIterations && p.ResolveInterval == warm.ResolveInterval {
			sawWarm = true
		}
	}
	if !sawWarm {
		t.Fatal("warm re-solve telemetry missing from Metrics()")
	}
	cancel()
	<-done
}

// TestAdaptiveCadenceDriftTrigger checks the drift half of the adaptive
// cadence: a window-mean jump past DriftThreshold schedules a re-solve
// immediately, long before the fixed cadence would.
func TestAdaptiveCadenceDriftTrigger(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{Window: 4, ResolveEvery: 50, DriftThreshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()
	feed := func(interval int, scale float64) {
		for p, mbps := range sc.Series.Demands[0] {
			store.Ingest(collector.RateRecord{LSP: p, Interval: interval, RateMbps: mbps * scale})
		}
	}
	// Three steady intervals: drift ~0, far from the cadence point of 50,
	// so no re-solve may fire.
	for iv := 0; iv < 3; iv++ {
		feed(iv, 1)
	}
	snap, err := eng.WaitVersion(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Resolve != nil {
		t.Fatalf("re-solve fired on a steady window at interval %d", snap.ResolveInterval)
	}
	if snap.Drift > 1e-12 {
		t.Fatalf("steady window reports drift %v, want ~0", snap.Drift)
	}
	// A demand surge: the window mean jumps, drift exceeds the threshold,
	// and the re-solve must land for this interval without waiting out
	// the cadence.
	feed(3, 3)
	got := waitResolve(t, eng, ctx, 3)
	if got.ResolveInterval != 3 {
		t.Fatalf("drift-triggered re-solve covers interval %d, want 3", got.ResolveInterval)
	}
	if got.Drift <= 0.2 {
		t.Fatalf("surge interval reports drift %v, want > threshold 0.2", got.Drift)
	}
	cancel()
	<-done
}

// TestAdaptiveCadenceBackoff checks the steady half: with
// ResolveMaxEvery set, cadence re-solves of a steady window double the
// effective cadence (2 → 4), so the re-solve set over 8 steady
// intervals is exactly {1, 5} rather than the fixed-cadence {1, 3, 5, 7}.
func TestAdaptiveCadenceBackoff(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{Window: 4, ResolveEvery: 2, ResolveMaxEvery: 4, DriftThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()
	// Perfectly steady traffic, fed one interval at a time with the
	// re-solve awaited at each expected cadence point, so latest-wins
	// coalescing cannot blur the schedule.
	feed := func(interval int) {
		for p, mbps := range sc.Series.Demands[0] {
			store.Ingest(collector.RateRecord{LSP: p, Interval: interval, RateMbps: mbps})
		}
	}
	expect := map[int]bool{1: true, 5: true} // backed-off cadence 2, 4, 4...
	for iv := 0; iv < 8; iv++ {
		feed(iv)
		if expect[iv] {
			got := waitResolve(t, eng, ctx, iv)
			if got.ResolveInterval != iv {
				t.Fatalf("re-solve covers interval %d, want %d", got.ResolveInterval, iv)
			}
		}
	}
	// Drain to the final interval, then check no re-solve fired at the
	// fixed-cadence points the back-off skipped (3, 7).
	for v := uint64(1); ; {
		snap, err := eng.WaitVersion(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Interval >= 7 {
			break
		}
		v = snap.Version + 1
	}
	resolved := map[int]bool{}
	for _, p := range eng.Metrics() {
		if p.HasResolve {
			resolved[p.ResolveInterval] = true
		}
	}
	for iv := range resolved {
		if !expect[iv] {
			t.Fatalf("unexpected re-solve of interval %d (resolved set %v, want {1, 5})", iv, resolved)
		}
	}
	for iv := range expect {
		if !resolved[iv] {
			t.Fatalf("missing re-solve of interval %d (resolved set %v)", iv, resolved)
		}
	}
	cancel()
	<-done
}

// TestConfigValidationAdaptive exercises New's checks on the adaptive
// cadence knobs.
func TestConfigValidationAdaptive(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sc.Rt, Config{DriftThreshold: -0.1}); err == nil {
		t.Fatal("negative drift threshold accepted")
	}
	if _, err := New(sc.Rt, Config{DriftThreshold: 0.1}); err == nil {
		t.Fatal("drift threshold without re-solves accepted (it would be silently inert)")
	}
	if _, err := New(sc.Rt, Config{ResolveEvery: 2, ResolveMaxEvery: -4}); err == nil {
		t.Fatal("negative resolve-max-every accepted")
	}
	if _, err := New(sc.Rt, Config{ResolveEvery: 2, ResolveMaxEvery: 8}); err == nil {
		t.Fatal("back-off without a drift threshold accepted")
	}
	if _, err := New(sc.Rt, Config{ResolveEvery: 2, ResolveMaxEvery: 8, DriftThreshold: 0.1}); err != nil {
		t.Fatalf("valid adaptive config rejected: %v", err)
	}
}
