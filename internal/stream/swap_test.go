package stream

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// swapHarness drives one dispatch-mode engine interval by interval, so
// tests control exactly what is consumed and when parked re-solves run.
type swapHarness struct {
	t       *testing.T
	sc      *netsim.Scenario
	eng     *Engine
	store   *collector.Store
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan error
	version uint64
}

func newSwapHarness(t *testing.T, sc *netsim.Scenario, rt *topology.Routing, cfg Config) *swapHarness {
	t.Helper()
	cfg.ResolveDispatch = func() {}
	eng, err := New(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	h := &swapHarness{
		t: t, sc: sc, eng: eng,
		store: collector.NewStore(sc.Net.NumPairs()),
		ctx:   ctx, cancel: cancel,
		done: make(chan error, 1),
	}
	go func() { h.done <- eng.Run(ctx, h.store) }()
	t.Cleanup(func() {
		cancel()
		<-h.done
	})
	return h
}

// feed ingests base-series intervals [from, to) in full and waits for
// each publication; the engine never resolves on its own (dispatch
// mode), so versions advance exactly one per interval.
func (h *swapHarness) feed(from, to int) Snapshot {
	h.t.Helper()
	return h.feedShifted(from, to, 0)
}

// feedShifted ingests demands [from, to) under store interval numbers
// shifted by shift — a control engine can replay another engine's
// window content starting from its own interval 0.
func (h *swapHarness) feedShifted(from, to, shift int) Snapshot {
	h.t.Helper()
	var snap Snapshot
	for iv := from; iv < to; iv++ {
		d := h.sc.Series.Demands[iv%len(h.sc.Series.Demands)]
		for p, mbps := range d {
			h.store.Ingest(collector.RateRecord{LSP: p, Interval: iv + shift, RateMbps: mbps, Poller: "swap-test"})
		}
		h.version++
		var err error
		if snap, err = h.eng.WaitVersion(h.ctx, h.version); err != nil {
			h.t.Fatalf("WaitVersion(%d): %v", h.version, err)
		}
	}
	return snap
}

// resolve executes the parked re-solve and returns its publication.
func (h *swapHarness) resolve() Snapshot {
	h.t.Helper()
	if !h.eng.TryResolve(h.ctx) {
		h.t.Fatal("TryResolve consumed nothing; expected a parked re-solve")
	}
	h.version++
	snap, err := h.eng.WaitVersion(h.ctx, h.version)
	if err != nil {
		h.t.Fatalf("WaitVersion(%d): %v", h.version, err)
	}
	return snap
}

// failedRouting removes the first interior adjacency whose removal
// keeps the network routable and returns the surviving routing.
func failedRouting(t *testing.T, net *topology.Network) *topology.Routing {
	t.Helper()
	for _, l := range net.Links {
		if l.Kind != topology.Interior || l.Src > l.Dst {
			continue
		}
		reduced := topology.RemoveAdjacency(net, l.ID)
		if rt, err := reduced.Route(); err == nil {
			return rt
		}
	}
	t.Fatal("no removable interior adjacency")
	return nil
}

// stripClock zeroes the wall-clock fields so two runs can be compared
// byte for byte (publication time is the one intentionally
// non-deterministic snapshot field).
func stripClock(t *testing.T, s Snapshot) string {
	t.Helper()
	s.Time = time.Time{}
	s.ResolveDuration = 0
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSwapRoutingValidation(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SwapRouting(nil, 1, 0); err == nil {
		t.Error("nil routing accepted")
	}
	if err := eng.SwapRouting(sc.Rt, 1, -1); err == nil {
		t.Error("negative interval accepted")
	}
	other, err := netsim.BuildAmerica(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SwapRouting(other.Rt, 1, 0); err == nil {
		t.Error("dimension-changing routing accepted")
	}
	rt := failedRouting(t, sc.Net)
	if err := eng.SwapRouting(rt, 1, 5); err != nil {
		t.Fatalf("scheduling a valid swap: %v", err)
	}
	if err := eng.SwapRouting(rt, 2, 5); err == nil {
		t.Error("second swap at the same interval accepted")
	}
	if err := eng.SwapRouting(rt, 1, 9); err == nil {
		t.Error("non-increasing epoch accepted")
	}
	if err := eng.SwapRouting(rt, 0, 9); err == nil {
		t.Error("epoch behind the queue accepted")
	}
}

// TestSwapIdenticalRoutingIsNoOp pins the redundant-announcement
// contract: swapping to a routing whose matrix equals the active one
// changes nothing — the next published snapshot is byte-identical
// (modulo wall clock) to a run that never heard the announcement, and
// the epoch does not move.
func TestSwapIdenticalRoutingIsNoOp(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Window: 4, ResolveEvery: 3}
	a := newSwapHarness(t, sc, sc.Rt, cfg)
	b := newSwapHarness(t, sc, sc.Rt, cfg)

	a.feed(0, 4)
	b.feed(0, 4)
	// An independent re-route of the same network: a distinct Routing
	// object carrying the byte-identical matrix.
	same, err := sc.Net.Route()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.eng.SwapRouting(same, 7, 4); err != nil {
		t.Fatalf("identical swap rejected: %v", err)
	}
	sa := a.feed(4, 5)
	sb := b.feed(4, 5)
	if got, want := stripClock(t, sa), stripClock(t, sb); got != want {
		t.Fatalf("identical-matrix swap changed the next snapshot:\n got %s\nwant %s", got, want)
	}
	if ep := a.eng.TopologyEpoch(); ep != 0 {
		t.Fatalf("identical-matrix swap moved the epoch to %d, want 0", ep)
	}
	ra := a.resolve()
	rb := b.resolve()
	if got, want := stripClock(t, ra), stripClock(t, rb); got != want {
		t.Fatalf("identical-matrix swap changed the re-solve:\n got %s\nwant %s", got, want)
	}
}

// TestSwapRemapsWarmStart is the hot-swap property check: after a
// mid-stream reroute the remapped warm iterate is non-negative,
// consistent with the new routing's access rows (the per-PoP window
// totals), and measurably cheaper to refine than a cold start on the
// same window.
func TestSwapRemapsWarmStart(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	failed := failedRouting(t, sc.Net)

	const window = 6
	warm := newSwapHarness(t, sc, sc.Rt, Config{Window: window, ResolveEvery: 3})
	warm.feed(0, 6)
	pre := warm.resolve() // builds the warm iterate on the base topology
	if pre.Resolve == nil || pre.ResolveWarm {
		t.Fatalf("priming resolve: Resolve nil=%v warm=%v, want a cold first solve", pre.Resolve == nil, pre.ResolveWarm)
	}

	if err := warm.eng.SwapRouting(failed, 1, 6); err != nil {
		t.Fatalf("SwapRouting: %v", err)
	}
	snap := warm.feed(6, 9)
	if snap.TopologyEpoch != 1 {
		t.Fatalf("post-swap snapshot epoch %d, want 1", snap.TopologyEpoch)
	}
	post := warm.resolve() // window [3,9) under the failed routing
	if post.Resolve == nil || !post.ResolveWarm {
		t.Fatal("post-swap re-solve did not warm-start; the remapped iterate was lost")
	}
	for i, v := range post.Resolve {
		if v < 0 {
			t.Fatalf("post-swap estimate negative at pair %d: %v", i, v)
		}
	}

	// Consistency: the estimate must reproduce the access-link loads of
	// the new routing (per-PoP origin/destination totals of the window
	// mean) to solver tolerance.
	loads := failed.LinkLoads(post.Resolve)
	want := failed.LinkLoads(post.Mean)
	for _, l := range failed.Net.Links {
		if l.Kind == topology.Interior {
			continue
		}
		if w := want[l.ID]; w > 0 {
			if rel := (loads[l.ID] - w) / w; rel > 0.05 || rel < -0.05 {
				t.Fatalf("access link %d load %v, window total %v (off by %.1f%%)",
					l.ID, loads[l.ID], w, 100*rel)
			}
		}
	}

	// Cold control: a fresh engine on the failed routing fed the very
	// same window, first re-solve at the same interval. Same problem,
	// cold iterate — it must take more solver iterations than the
	// remapped warm start.
	cold := newSwapHarness(t, sc, failed, Config{Window: window, ResolveEvery: 6})
	cold.feedShifted(3, 9, -3) // A's window content, renumbered from 0
	coldSnap := cold.resolve()
	if coldSnap.ResolveWarm {
		t.Fatal("control solve unexpectedly warm")
	}
	if linalg.RelL1(coldSnap.Mean, post.Mean) > 1e-12 {
		t.Fatal("control window mean differs; the comparison is not like for like")
	}
	if post.ResolveIterations >= coldSnap.ResolveIterations {
		t.Fatalf("warm-started post-swap solve took %d iterations, cold start took %d; the remap bought nothing",
			post.ResolveIterations, coldSnap.ResolveIterations)
	}
}

// TestCheckpointCarriesTopologyEpoch pins the format-2 contract: a
// checkpoint taken past a swap records the epoch, a fresh engine must
// be moved onto that epoch before Restore, and the restored engine
// resumes on the post-swap topology with the warm iterate intact.
func TestCheckpointCarriesTopologyEpoch(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	failed := failedRouting(t, sc.Net)

	h := newSwapHarness(t, sc, sc.Rt, Config{Window: 4, ResolveEvery: 3})
	h.feed(0, 6)
	h.resolve()
	if err := h.eng.SwapRouting(failed, 1, 6); err != nil {
		t.Fatal(err)
	}
	h.feed(6, 9)
	h.resolve()
	cp := h.eng.Checkpoint()
	if cp.Format != CheckpointFormat || cp.TopologyEpoch != 1 {
		t.Fatalf("checkpoint format %d epoch %d, want %d and 1", cp.Format, cp.TopologyEpoch, CheckpointFormat)
	}

	fresh, err := New(sc.Rt, Config{Window: 4, ResolveEvery: 3, ResolveDispatch: func() {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(cp); err == nil {
		t.Fatal("Restore on the wrong topology epoch accepted")
	}
	if err := fresh.SwapRouting(failed, 1, 0); err != nil {
		t.Fatalf("moving onto the checkpointed epoch: %v", err)
	}
	if err := fresh.Restore(cp); err != nil {
		t.Fatalf("Restore after the epoch swap: %v", err)
	}
	want, _ := h.eng.Latest()
	got, ok := fresh.Latest()
	if !ok || snapJSON(t, got) != snapJSON(t, want) {
		t.Fatal("restored snapshot differs from the checkpointed one")
	}

	// Resume: the restored engine consumes the next intervals under the
	// failed routing and its next re-solve still warm-starts.
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fresh.Run(ctx, store) }()
	for iv := 9; iv < 12; iv++ {
		for p, mbps := range sc.Series.Demands[iv%len(sc.Series.Demands)] {
			store.Ingest(collector.RateRecord{LSP: p, Interval: iv, RateMbps: mbps, Poller: "swap-test"})
		}
	}
	base := want.Version
	if _, err := fresh.WaitVersion(ctx, base+3); err != nil {
		t.Fatalf("restored engine did not consume: %v", err)
	}
	if !fresh.TryResolve(ctx) {
		t.Fatal("no parked re-solve after resuming")
	}
	snap, err := fresh.WaitVersion(ctx, base+4)
	if err != nil {
		t.Fatal(err)
	}
	if snap.TopologyEpoch != 1 {
		t.Fatalf("resumed on epoch %d, want 1", snap.TopologyEpoch)
	}
	if !snap.ResolveWarm {
		t.Fatal("re-solve after restore did not warm-start; the checkpoint lost the iterate")
	}
	cancel()
	<-done
}

// TestRestoreReadsFormatOne keeps pre-epoch checkpoints loadable: a
// format-1 file (no topology_epoch field) restores as epoch 0.
func TestRestoreReadsFormatOne(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	h := newSwapHarness(t, sc, sc.Rt, Config{Window: 3})
	h.feed(0, 4)
	cp := h.eng.Checkpoint()
	cp.Format = 1
	cp.TopologyEpoch = 0
	fresh, err := New(sc.Rt, Config{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(cp); err != nil {
		t.Fatalf("format-1 checkpoint rejected: %v", err)
	}
}
