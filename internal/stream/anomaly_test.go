package stream

import (
	"context"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/netsim"
)

// TestDriftAnomalyDetector replays a flat demand series with one
// 2-interval surge and checks the detector's full trajectory: quiet
// baseline, a rising edge on the surge (one episode), recovery inside
// the surge plateau (drift returns to zero), a second episode on the
// step back down, and a clean tail.
func TestDriftAnomalyDetector(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	P := sc.Net.NumPairs()
	eng, err := New(sc.Rt, Config{
		Window:          1,
		MinCoverage:     1,
		AnomalyFactor:   4,
		AnomalyWindow:   3,
		AnomalyMinDrift: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(P)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()

	scales := []float64{1, 1, 1, 1, 3, 3, 1, 1}
	for iv, scale := range scales {
		for p := 0; p < P; p++ {
			store.Ingest(collector.RateRecord{LSP: p, Interval: iv, RateMbps: sc.Series.Demands[0][p] * scale})
		}
	}
	if _, err := eng.WaitVersion(ctx, uint64(len(scales))); err != nil {
		t.Fatalf("WaitVersion: %v", err)
	}
	cancel()
	<-done

	want := []struct {
		active    bool
		anomalies int
	}{
		{false, 0}, {false, 0}, {false, 0}, {false, 0},
		{true, 1},  // step up: drift ~2 against a zero baseline
		{false, 1}, // surge plateau: interval-to-interval drift back to 0
		{true, 2},  // step down: a second episode
		{false, 2},
	}
	points := eng.Metrics()
	if len(points) != len(want) {
		t.Fatalf("got %d metric points, want %d", len(points), len(want))
	}
	for i, w := range want {
		p := points[i]
		if p.AnomalyActive != w.active || p.Anomalies != w.anomalies {
			t.Errorf("interval %d: active=%v anomalies=%d, want %v/%d (drift %v)",
				i, p.AnomalyActive, p.Anomalies, w.active, w.anomalies, p.Drift)
		}
	}
	if lm, ok := eng.LastMetric(); !ok || lm.Version != points[len(points)-1].Version {
		t.Errorf("LastMetric = %+v ok=%v, want newest point", lm, ok)
	}

	// The flag and episode count survive a checkpoint round trip.
	eng2, err := New(sc.Rt, Config{Window: 1, MinCoverage: 1, AnomalyFactor: 4, AnomalyWindow: 3, AnomalyMinDrift: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Restore(eng.Checkpoint()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	snap, ok := eng2.Latest()
	if !ok || snap.Anomalies != 2 || snap.AnomalyActive {
		t.Fatalf("restored snapshot anomalies=%d active=%v ok=%v, want 2/false/true", snap.Anomalies, snap.AnomalyActive, ok)
	}
}

// TestAnomalyDisabledAndValidation: the detector is inert at factor 0,
// and negative knobs are rejected.
func TestAnomalyDisabledAndValidation(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, sc, eng, 4, 4)
	for _, p := range eng.Metrics() {
		if p.AnomalyActive || p.Anomalies != 0 {
			t.Fatalf("detector fired while disabled: %+v", p)
		}
	}
	for _, bad := range []Config{
		{AnomalyFactor: -1},
		{AnomalyWindow: -1},
		{AnomalyMinDrift: -0.1},
	} {
		if _, err := New(sc.Rt, bad); err == nil {
			t.Errorf("config %+v accepted, want error", bad)
		}
	}
}

// TestOnResolveHook: every completed re-solve reports through
// Config.OnResolve, warm flag included.
func TestOnResolveHook(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	type obsv struct {
		iters int
		warm  bool
	}
	ch := make(chan obsv, 64)
	eng, err := New(sc.Rt, Config{
		Window:       3,
		ResolveEvery: 2,
		OnResolve: func(d time.Duration, iters int, warm bool) {
			if d < 0 || iters <= 0 {
				t.Errorf("OnResolve(d=%v iters=%d)", d, iters)
			}
			ch <- obsv{iters, warm}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()
	// Paced, so the worker drains each parked re-solve before the next
	// interval lands (an instant replay collapses every schedule into
	// one latest-wins solve).
	if err := collector.Replay(ctx, store, sc.Series, 8, 25*time.Millisecond); err != nil {
		t.Fatalf("replay: %v", err)
	}
	var got []obsv
	for len(got) < 2 {
		select {
		case o := <-ch:
			got = append(got, o)
		case <-ctx.Done():
			t.Fatalf("OnResolve fired %d times before timeout, want >= 2", len(got))
		}
	}
	cancel()
	<-done
	if got[0].warm {
		t.Error("first resolve reported warm")
	}
	warmSeen := false
	for _, o := range got[1:] {
		warmSeen = warmSeen || o.warm
	}
	if !warmSeen {
		t.Error("no warm resolve reported")
	}
}
