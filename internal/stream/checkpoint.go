package stream

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/linalg"
)

// CheckpointFormat is the version tag written into every checkpoint
// file. Load rejects unknown versions instead of guessing, so a format
// change can never silently corrupt a restored engine. Format 2 added
// TopologyEpoch for routing hot-swaps (SwapRouting); format-1 files are
// still accepted and read as epoch 0, which is what every pre-swap
// engine was.
const CheckpointFormat = 2

// checkpointEntry is one sliding-window interval in a checkpoint. Only
// the collected demand vector is stored: link loads and the running
// window sums are recomputed from it on restore, so a checkpoint can
// never smuggle in loads inconsistent with the routing matrix.
type checkpointEntry struct {
	Interval int           `json:"interval"`
	Demand   linalg.Vector `json:"demand"`
}

// Checkpoint is a serializable image of an Engine's state: the window
// ring, the consumption cursor, the adaptive-cadence and warm-start
// state, the latest published snapshot and the metric history. Captured
// with Engine.Checkpoint, persisted with SaveCheckpoint, and applied to
// a fresh engine (same scenario, same method) with Engine.Restore — the
// crash-safe persistence behind `tmserve -checkpoint`.
type Checkpoint struct {
	Format int `json:"format"`
	// NumPairs and NumLinks pin the problem dimensions, so restoring
	// against a different scenario fails with a clear error instead of a
	// slice panic deep in a solver.
	NumPairs int    `json:"num_pairs"`
	NumLinks int    `json:"num_links"`
	Method   Method `json:"method"`
	// TopologyEpoch is the active topology epoch at capture time. Restore
	// demands the engine already be on the same epoch (hosts replay their
	// SwapRouting calls first), because the ring's demand vectors must be
	// re-expanded against the routing they will actually stream under.
	TopologyEpoch int `json:"topology_epoch,omitempty"`

	// Consumption state: the window ring and the next-interval cursor.
	Ring     []checkpointEntry `json:"ring"`
	Next     int               `json:"next"`
	Consumed int               `json:"consumed"`
	Skipped  int               `json:"skipped"`

	// Adaptive-cadence state.
	SinceResolve int           `json:"since_resolve"`
	CurEvery     int           `json:"cur_every"`
	DriftPeak    float64       `json:"drift_peak"`
	PrevMean     linalg.Vector `json:"prev_mean,omitempty"`

	// Warm-start state. WarmAlpha is MethodFanout's solved fanout
	// iterate; the estimate warm start is re-seeded from
	// Snapshot.Resolve on restore.
	WarmAlpha linalg.Vector `json:"warm_alpha,omitempty"`

	// Snapshot is the latest published state (nil before the first
	// publication); Metrics is the error history backing /metrics.
	Snapshot *Snapshot     `json:"snapshot,omitempty"`
	Metrics  []MetricPoint `json:"metrics,omitempty"`
}

// Checkpoint captures the engine's current state. Safe to call from any
// goroutine while the engine runs; the consumption state and the
// snapshot are each captured atomically (a publication may land between
// the two captures, which a Restore tolerates — the engine re-consumes
// at most one already-published interval).
func (e *Engine) Checkpoint() Checkpoint {
	cp := Checkpoint{
		Format: CheckpointFormat,
		Method: e.cfg.Method,
	}

	e.stateMu.Lock()
	cp.NumPairs = e.rt.Net.NumPairs()
	cp.NumLinks = e.rt.R.Rows()
	cp.TopologyEpoch = e.epoch
	cp.Ring = make([]checkpointEntry, len(e.ring))
	for i, w := range e.ring {
		cp.Ring[i] = checkpointEntry{Interval: w.interval, Demand: w.demand.Clone()}
	}
	cp.Next = e.next
	cp.Consumed = e.consumed
	cp.Skipped = e.skipped
	cp.SinceResolve = e.sinceResolve
	cp.CurEvery = e.curEvery
	cp.DriftPeak = e.driftPeak
	cp.PrevMean = cloneVec(e.prevMean)
	cp.WarmAlpha = cloneVec(e.warmAlpha)
	e.stateMu.Unlock()

	e.mu.RLock()
	if e.have {
		snap := e.snap.cloneForRead()
		cp.Snapshot = &snap
	}
	cp.Metrics = make([]MetricPoint, len(e.metrics))
	copy(cp.Metrics, e.metrics)
	e.mu.RUnlock()
	return cp
}

// Restore applies a checkpoint to a freshly created engine, before Run:
// the window ring (with loads and running sums recomputed against this
// engine's routing), the consumption cursor, the cadence and warm-start
// state, and the latest snapshot — which Latest/WaitVersion serve
// immediately, so a restarted daemon is never dark while the collector
// refills. The checkpoint must match the engine's problem dimensions
// and re-solve method.
//
// Cursor semantics across restarts: interval indices are the stream's
// identity, so records below the restored cursor are treated as
// re-deliveries of data the window already contains and are not
// consumed again — that is what makes a restart idempotent instead of
// double-counting. A restarted deterministic source that renumbers from
// interval 0 (collector.Replay, the simulated live deployment) is
// therefore deduplicated until it catches back up to the cursor and
// resumes the stream from there; tmserve's endless mode (-cycles 0)
// reaches that point after cursor×pace of replayed time. A source that
// numbers intervals by wall clock continues seamlessly.
func (e *Engine) Restore(cp Checkpoint) error {
	if e.started.Load() {
		return fmt.Errorf("stream: Restore after Run")
	}
	if cp.Format != 1 && cp.Format != CheckpointFormat {
		return fmt.Errorf("stream: checkpoint format %d, this build reads %d", cp.Format, CheckpointFormat)
	}
	e.stateMu.Lock()
	rt, epoch := e.rt, e.epoch
	e.stateMu.Unlock()
	if cp.TopologyEpoch != epoch {
		return fmt.Errorf("stream: checkpoint is on topology epoch %d, engine on %d (SwapRouting to the checkpointed epoch before Restore)",
			cp.TopologyEpoch, epoch)
	}
	if cp.NumPairs != rt.Net.NumPairs() || cp.NumLinks != rt.R.Rows() {
		return fmt.Errorf("stream: checkpoint is for a %d-pair/%d-link scenario, engine has %d/%d",
			cp.NumPairs, cp.NumLinks, rt.Net.NumPairs(), rt.R.Rows())
	}
	if cp.Method != e.cfg.Method {
		return fmt.Errorf("stream: checkpoint method %q, engine configured for %q (delete the checkpoint to switch)",
			cp.Method, e.cfg.Method)
	}

	ring := cp.Ring
	// A restart may shrink the window; keep the newest entries.
	if e.cfg.Window > 0 && len(ring) > e.cfg.Window {
		ring = ring[len(ring)-e.cfg.Window:]
	}
	entries := make([]windowEntry, len(ring))
	loadSum := linalg.NewVector(rt.R.Rows())
	demandSum := linalg.NewVector(rt.Net.NumPairs())
	next := cp.Next
	for i, ce := range ring {
		if len(ce.Demand) != rt.Net.NumPairs() {
			return fmt.Errorf("stream: checkpoint ring entry %d has %d demands, want %d",
				i, len(ce.Demand), rt.Net.NumPairs())
		}
		if i > 0 && ce.Interval <= entries[i-1].interval {
			return fmt.Errorf("stream: checkpoint ring intervals not increasing at entry %d", i)
		}
		demand := ce.Demand.Clone()
		loads := rt.LinkLoads(demand)
		entries[i] = windowEntry{interval: ce.Interval, demand: demand, loads: loads}
		linalg.Axpy(1, loads, loadSum)
		linalg.Axpy(1, demand, demandSum)
		if ce.Interval >= next {
			next = ce.Interval + 1 // cursor can never trail the ring
		}
	}
	if cp.PrevMean != nil && len(cp.PrevMean) != rt.Net.NumPairs() {
		return fmt.Errorf("stream: checkpoint prev-mean has %d demands, want %d",
			len(cp.PrevMean), rt.Net.NumPairs())
	}

	e.stateMu.Lock()
	e.ring = entries
	e.loadSum = loadSum
	e.demandSum = demandSum
	e.next = next
	e.consumed = cp.Consumed
	e.skipped = cp.Skipped
	e.sinceResolve = cp.SinceResolve
	e.curEvery = cp.CurEvery
	if e.cfg.ResolveMaxEvery > e.cfg.ResolveEvery && e.cfg.DriftThreshold > 0 {
		// Back-off still enabled: keep the checkpointed cadence, clamped
		// into the new config's range.
		if e.curEvery > e.cfg.ResolveMaxEvery {
			e.curEvery = e.cfg.ResolveMaxEvery
		}
		if e.curEvery < e.cfg.ResolveEvery {
			e.curEvery = e.cfg.ResolveEvery
		}
	} else {
		// The restart disabled the adaptive back-off (or never had it):
		// a backed-off cadence from the old config must not survive,
		// or a fixed-cadence daemon would re-solve far less often than
		// its -resolve-every asks.
		e.curEvery = e.cfg.ResolveEvery
	}
	e.driftPeak = cp.DriftPeak
	e.prevMean = cloneVec(cp.PrevMean)
	if cp.Snapshot != nil {
		// The anomaly flag and episode count ride the checkpointed
		// snapshot; the baseline ring re-seeds from live drifts (it
		// only judges once full, so the restart is a quiet ramp-up,
		// not a false positive).
		e.anomActive = cp.Snapshot.AnomalyActive
		e.anomCount = cp.Snapshot.Anomalies
	}
	if cp.Snapshot != nil && cp.Snapshot.Resolve != nil &&
		cp.Method != MethodFanout && len(cp.Snapshot.Resolve) == rt.Net.NumPairs() {
		e.warmEst = cp.Snapshot.Resolve.Clone()
	}
	if len(cp.WarmAlpha) == rt.Net.NumPairs() {
		e.warmAlpha = cp.WarmAlpha.Clone()
	}
	e.stateMu.Unlock()

	e.mu.Lock()
	if cp.Snapshot != nil {
		e.snap = cp.Snapshot.cloneForRead()
		e.have = true
	}
	e.metrics = append([]MetricPoint(nil), cp.Metrics...)
	if len(e.metrics) > e.cfg.MetricsHistory {
		e.metrics = e.metrics[len(e.metrics)-e.cfg.MetricsHistory:]
	}
	e.mu.Unlock()
	return nil
}

// SaveCheckpoint atomically persists a checkpoint: the JSON is written
// to a temporary file in the target directory, synced, and renamed over
// the destination, so a crash mid-write leaves the previous checkpoint
// intact rather than a truncated one.
func SaveCheckpoint(path string, cp Checkpoint) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("stream: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("stream: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stream: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("stream: install checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint. The
// caller distinguishes a missing file (fresh start) from a corrupt one
// with errors.Is(err, os.ErrNotExist).
func LoadCheckpoint(path string) (Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("stream: parse checkpoint %s: %w", path, err)
	}
	return cp, nil
}
