package stream

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/linalg"
	"repro/internal/netsim"
)

// runReplay drives an engine over a deterministic replay for the given
// cycles, waits until every interval has been published, and shuts it
// down.
func runReplay(t *testing.T, sc *netsim.Scenario, eng *Engine, cycles int) {
	t.Helper()
	runReplayResolve(t, sc, eng, cycles, -1)
}

// runReplayResolve is runReplay that additionally waits — while the
// engine is still running, so the re-solve worker cannot drop the job
// during shutdown — for a published re-solve covering resolveIv or
// later (-1 skips the wait).
func runReplayResolve(t *testing.T, sc *netsim.Scenario, eng *Engine, cycles, resolveIv int) {
	t.Helper()
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()
	if err := collector.Replay(ctx, store, sc.Series, cycles, 0); err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); ; {
		snap, err := eng.WaitVersion(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Interval >= cycles-1 {
			break
		}
		v = snap.Version + 1
	}
	if resolveIv >= 0 {
		waitResolve(t, eng, ctx, resolveIv)
	}
	cancel()
	<-done
}

// snapJSON canonicalizes a snapshot for comparison (reflect.DeepEqual
// trips over time.Time's monotonic clock reading).
func snapJSON(t *testing.T, s Snapshot) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCheckpointRoundTrip is the tentpole persistence check: Checkpoint
// → SaveCheckpoint → LoadCheckpoint → Restore must hand a fresh engine
// the same published snapshot (served immediately, before Run) and the
// same metric history, and the restored engine must resume consuming
// exactly where the original stopped, matching an uninterrupted run's
// estimates to within float tolerance.
func TestCheckpointRoundTrip(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Window: 4, ResolveEvery: 3}
	const firstLeg, total = 10, 14

	orig, err := New(sc.Rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runReplay(t, sc, orig, firstLeg)

	path := filepath.Join(t.TempDir(), "engine.ckpt")
	if err := SaveCheckpoint(path, orig.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(sc.Rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(cp); err != nil {
		t.Fatal(err)
	}

	// The restored engine serves the original's snapshot before Run — the
	// "restarted daemon is never dark" property.
	origSnap, ok := orig.Latest()
	if !ok {
		t.Fatal("original has no snapshot")
	}
	restSnap, ok := restored.Latest()
	if !ok {
		t.Fatal("restored engine dark before Run")
	}
	if a, b := snapJSON(t, origSnap), snapJSON(t, restSnap); a != b {
		t.Fatalf("restored snapshot differs:\n%s\nvs\n%s", a, b)
	}
	origMetrics, _ := json.Marshal(orig.Metrics())
	restMetrics, _ := json.Marshal(restored.Metrics())
	if string(origMetrics) != string(restMetrics) {
		t.Fatal("restored metric history differs")
	}

	// Resume: the restored engine must pick up at interval `firstLeg`
	// (replay re-feeds 0..firstLeg-1, which the cursor skips) and its
	// final window must match an uninterrupted engine's.
	runReplay(t, sc, restored, total)
	uninterrupted, err := New(sc.Rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runReplay(t, sc, uninterrupted, total)

	got, _ := restored.Latest()
	want, _ := uninterrupted.Latest()
	if got.Interval != want.Interval || got.Window != want.Window {
		t.Fatalf("resumed at interval %d window %d, want %d/%d", got.Interval, got.Window, want.Interval, want.Window)
	}
	for p := range want.Gravity {
		if d := math.Abs(got.Gravity[p] - want.Gravity[p]); d > 1e-9 {
			t.Fatalf("demand %d: resumed gravity %v vs uninterrupted %v (diff %g)", p, got.Gravity[p], want.Gravity[p], d)
		}
		if d := math.Abs(got.Mean[p] - want.Mean[p]); d > 1e-9 {
			t.Fatalf("demand %d: resumed mean %v vs uninterrupted %v (diff %g)", p, got.Mean[p], want.Mean[p], d)
		}
	}
	// Versions must continue from the restored point, never regress.
	if got.Version <= origSnap.Version {
		t.Fatalf("resumed version %d did not advance past restored %d", got.Version, origSnap.Version)
	}
}

// TestCheckpointWarmSeed checks that a restore re-seeds the warm-start
// state from the persisted Resolve: the restarted engine's first
// re-solve must report itself warm-started.
func TestCheckpointWarmSeed(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Window: 4, ResolveEvery: 2}
	orig, err := New(sc.Rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for a re-solve to land before the engine stops, so the
	// checkpoint definitely carries one.
	runReplayResolve(t, sc, orig, 4, 1)
	cp := orig.Checkpoint()
	if cp.Snapshot == nil || cp.Snapshot.Resolve == nil {
		t.Fatal("checkpoint lost the re-solve")
	}

	restored, err := New(sc.Rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(cp); err != nil {
		t.Fatal(err)
	}
	runReplayResolve(t, sc, restored, 8, 5)
	got, ok := restored.Latest()
	if !ok || got.Resolve == nil || got.ResolveInterval < 5 {
		t.Fatalf("no post-restore re-solve in the latest snapshot (%+v)", got.ResolveInterval)
	}
	if !got.ResolveWarm {
		t.Fatal("first re-solve after restore not warm-started from the checkpointed estimate")
	}
}

// TestRestoreValidation exercises every rejection path: wrong format,
// wrong dimensions, wrong method, mis-sized ring entries, and restoring
// into a running engine.
func TestRestoreValidation(t *testing.T) {
	eu, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	us, err := netsim.BuildAmerica(1)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := New(eu.Rt, Config{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	runReplay(t, eu, orig, 4)
	cp := orig.Checkpoint()

	if e, _ := New(eu.Rt, Config{Window: 3}); true {
		bad := cp
		bad.Format = 99
		if err := e.Restore(bad); err == nil {
			t.Fatal("unknown format accepted")
		}
	}
	if e, _ := New(us.Rt, Config{Window: 3}); true {
		if err := e.Restore(cp); err == nil {
			t.Fatal("checkpoint restored into a different scenario")
		}
	}
	if e, _ := New(eu.Rt, Config{Window: 3, Method: MethodVardi}); true {
		if err := e.Restore(cp); err == nil {
			t.Fatal("checkpoint restored into a different method")
		}
	}
	if e, _ := New(eu.Rt, Config{Window: 3}); true {
		bad := cp
		bad.Ring = append([]checkpointEntry(nil), cp.Ring...)
		bad.Ring[0] = checkpointEntry{Interval: bad.Ring[0].Interval, Demand: linalg.NewVector(3)}
		if err := e.Restore(bad); err == nil {
			t.Fatal("mis-sized ring entry accepted")
		}
	}
	if e, _ := New(eu.Rt, Config{Window: 3}); true {
		ctx, cancel := context.WithCancel(context.Background())
		store := collector.NewStore(eu.Net.NumPairs())
		done := make(chan error, 1)
		go func() { done <- e.Run(ctx, store) }()
		for !e.started.Load() {
			time.Sleep(time.Millisecond)
		}
		if err := e.Restore(cp); err == nil {
			t.Fatal("Restore accepted on a running engine")
		}
		cancel()
		<-done
	}
}

// TestRestoreShrinksWindow checks a restart with a smaller -window: the
// restored ring keeps the newest entries and the sums match them.
func TestRestoreShrinksWindow(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := New(sc.Rt, Config{Window: 6})
	if err != nil {
		t.Fatal(err)
	}
	runReplay(t, sc, orig, 8)
	cp := orig.Checkpoint()
	if len(cp.Ring) != 6 {
		t.Fatalf("checkpoint ring has %d entries, want 6", len(cp.Ring))
	}

	shrunk, err := New(sc.Rt, Config{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := shrunk.Restore(cp); err != nil {
		t.Fatal(err)
	}
	shrunk.stateMu.Lock()
	ring := shrunk.ring
	if len(ring) != 2 || ring[0].interval != 6 || ring[1].interval != 7 {
		t.Fatalf("shrunk ring holds intervals %+v, want [6 7]", ring)
	}
	wantSum := linalg.NewVector(sc.Net.NumPairs())
	linalg.Axpy(1, ring[0].demand, wantSum)
	linalg.Axpy(1, ring[1].demand, wantSum)
	for p := range wantSum {
		if d := math.Abs(shrunk.demandSum[p] - wantSum[p]); d > 1e-12 {
			t.Fatalf("demand sum rebuilt wrong at %d: %v vs %v", p, shrunk.demandSum[p], wantSum[p])
		}
	}
	shrunk.stateMu.Unlock()
}

// TestRestoreCadenceAcrossConfigChange pins the config-migration rule
// for the adaptive cadence: a backed-off curEvery survives a restart
// only while the new config still enables the back-off, and is clamped
// into its range; a fixed-cadence restart snaps back to ResolveEvery.
func TestRestoreCadenceAcrossConfigChange(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	backoff := Config{Window: 3, ResolveEvery: 2, ResolveMaxEvery: 16, DriftThreshold: 0.5}
	orig, err := New(sc.Rt, backoff)
	if err != nil {
		t.Fatal(err)
	}
	runReplay(t, sc, orig, 10) // steady enough to double the cadence at least once
	cp := orig.Checkpoint()
	if cp.CurEvery <= backoff.ResolveEvery {
		t.Fatalf("cadence never backed off (curEvery %d); test premise broken", cp.CurEvery)
	}

	curEveryAfter := func(cfg Config) int {
		e, err := New(sc.Rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Restore(cp); err != nil {
			t.Fatal(err)
		}
		e.stateMu.Lock()
		defer e.stateMu.Unlock()
		return e.curEvery
	}
	// Fixed cadence restart: the backed-off value must not survive.
	if got := curEveryAfter(Config{Window: 3, ResolveEvery: 2}); got != 2 {
		t.Fatalf("fixed-cadence restart kept curEvery %d, want 2", got)
	}
	// Back-off still on but with a tighter cap: clamp down into range.
	if got := curEveryAfter(Config{Window: 3, ResolveEvery: 2, ResolveMaxEvery: 3, DriftThreshold: 0.5}); got != 3 {
		t.Fatalf("tighter back-off cap gave curEvery %d, want clamp to 3", got)
	}
	// Same config: the cadence carries over untouched.
	if got := curEveryAfter(backoff); got != cp.CurEvery {
		t.Fatalf("same-config restart changed curEvery %d -> %d", cp.CurEvery, got)
	}
}

// TestSaveCheckpointAtomic checks the crash-safety contract: a save over
// an existing checkpoint either fully replaces it or leaves it intact,
// and no temp litter survives a successful save.
func TestSaveCheckpointAtomic(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, Config{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	runReplay(t, sc, eng, 4)

	dir := t.TempDir()
	path := filepath.Join(dir, "engine.ckpt")
	if err := os.WriteFile(path, []byte("{ garbage from a previous crash"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, eng.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("checkpoint unreadable after overwrite: %v", err)
	}
	if cp.Format != CheckpointFormat || len(cp.Ring) != 3 {
		t.Fatalf("reloaded checkpoint format %d ring %d, want %d/3", cp.Format, len(cp.Ring), CheckpointFormat)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left in checkpoint dir: %v", entries)
	}
	// A missing file surfaces as os.ErrNotExist for the fresh-start path.
	if _, err := LoadCheckpoint(filepath.Join(dir, "absent.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("missing checkpoint returned %v, want not-exist", err)
	}
	// Corrupt JSON must fail loudly, not restore garbage.
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bad); err == nil {
		t.Fatal("corrupt checkpoint parsed")
	}
}

// TestCheckpointDuringRun hammers Checkpoint while the engine consumes
// and re-solves: every captured checkpoint must be internally
// consistent (ring strictly increasing, cursor past the ring, restorable
// into a fresh engine).
func TestCheckpointDuringRun(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Window: 4, ResolveEvery: 2, ResolveMaxIter: 500}
	eng, err := New(sc.Rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, store) }()
	replayDone := make(chan error, 1)
	go func() { replayDone <- collector.Replay(ctx, store, sc.Series, 30, 0) }()

	for i := 0; ; i++ {
		cp := eng.Checkpoint()
		for j := 1; j < len(cp.Ring); j++ {
			if cp.Ring[j].Interval <= cp.Ring[j-1].Interval {
				t.Fatalf("checkpoint %d: ring intervals not increasing: %d then %d", i, cp.Ring[j-1].Interval, cp.Ring[j].Interval)
			}
		}
		if n := len(cp.Ring); n > 0 && cp.Next != cp.Ring[n-1].Interval+1 {
			t.Fatalf("checkpoint %d: cursor %d vs newest ring interval %d", i, cp.Next, cp.Ring[n-1].Interval)
		}
		if len(cp.Ring) > 0 {
			probe, err := New(sc.Rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := probe.Restore(cp); err != nil {
				t.Fatalf("checkpoint %d not restorable: %v", i, err)
			}
		}
		select {
		case err := <-replayDone:
			if err != nil {
				t.Fatal(err)
			}
			cancel()
			<-done
			return
		default:
		}
	}
}
