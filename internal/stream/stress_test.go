package stream

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/netsim"
)

// TestConcurrentReadersUnderRapidPublish is the -race stress test of the
// snapshot API: while a replay publishes as fast as the engine can
// consume (with re-solves and adaptive cadence enabled), goroutines
// hammer Latest, WaitVersion, Metrics and Checkpoint — and scribble over
// every vector they get back, so any internal aliasing either trips the
// race detector or corrupts a later reader's view (which the monotonic
// version check would catch).
func TestConcurrentReadersUnderRapidPublish(t *testing.T) {
	concurrentReaderStress(t, Config{
		Window:          3,
		ResolveEvery:    2,
		DriftThreshold:  0.05,
		ResolveMaxEvery: 8,
		ResolveMaxIter:  300, // keep re-solves cheap; this test is about locking, not convergence
	})
}

// TestConcurrentReadersFanoutPooledBuffers is the same stress against
// the constant-fanout method with prune-as-you-go storage: the re-solve
// path then exercises both warm-start slots (takeWarm/setWarm hand the
// previous estimate AND the fanout iterate across solves), the pooled
// engine workspaces, and collector.Take's ownership transfer — so any
// published vector that aliases a recycled buffer is scribbled on by the
// readers and trips the race detector.
func TestConcurrentReadersFanoutPooledBuffers(t *testing.T) {
	concurrentReaderStress(t, Config{
		Window:         3,
		Method:         MethodFanout,
		ResolveEvery:   2,
		ResolveMaxIter: 300,
		PruneConsumed:  true,
	})
}

func concurrentReaderStress(t *testing.T, cfg Config) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sc.Rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(sc.Net.NumPairs())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	engineDone := make(chan error, 1)
	go func() { engineDone <- eng.Run(ctx, store) }()

	const cycles = 40
	stop := make(chan struct{})
	var wg sync.WaitGroup
	scribble := func(vs ...[]float64) {
		for _, v := range vs {
			for i := range v {
				v[i] = -1
			}
		}
	}
	fail := make(chan string, 16)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, ok := eng.Latest()
				if ok {
					if snap.Version < lastVersion {
						select {
						case fail <- "version ran backwards":
						default:
						}
						return
					}
					lastVersion = snap.Version
					scribble(snap.Gravity, snap.Mean, snap.Fanouts, snap.Resolve)
				}
				eng.Metrics()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(1); ; v++ {
			wctx, wcancel := context.WithTimeout(ctx, time.Second)
			snap, err := eng.WaitVersion(wctx, v)
			wcancel()
			if err == nil {
				scribble(snap.Gravity, snap.Mean, snap.Fanouts, snap.Resolve)
				v = snap.Version
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cp := eng.Checkpoint()
			scribble(cp.PrevMean)
			if cp.Snapshot != nil {
				scribble(cp.Snapshot.Gravity, cp.Snapshot.Mean, cp.Snapshot.Fanouts, cp.Snapshot.Resolve)
			}
			for _, e := range cp.Ring {
				scribble(e.Demand)
			}
		}
	}()

	if err := collector.Replay(ctx, store, sc.Series, cycles, 0); err != nil {
		t.Fatal(err)
	}
	// Wait until every interval has been published, under the readers'
	// fire.
	for v := uint64(1); ; {
		snap, err := eng.WaitVersion(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Interval >= cycles-1 {
			break
		}
		v = snap.Version + 1
	}
	close(stop)
	wg.Wait()
	cancel()
	<-engineDone
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	// The stream itself must have stayed intact: one metric point per
	// publication, versions contiguous from 1.
	points := eng.Metrics()
	if len(points) == 0 {
		t.Fatal("no metric points after stress run")
	}
	for i, p := range points {
		if p.Version != uint64(i+1) {
			t.Fatalf("metric point %d has version %d — publications lost or duplicated under contention", i, p.Version)
		}
	}
}
