package stream

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/solver"
	"repro/internal/topology"
)

// pendingSwap is one scheduled routing hot-swap. at is the first
// interval measured under the new routing; epoch is the host-assigned
// tag the engine reports for it (Snapshot.TopologyEpoch).
type pendingSwap struct {
	at    int
	epoch int
	rt    *topology.Routing
}

// SwapRouting schedules a mid-stream routing hot-swap: from interval at
// onward the engine ingests, re-solves and checkpoints against rt,
// tagged as topology epoch. The swap applies lazily when the engine's
// own cursor reaches at (a feed never has to wait for consumption to
// catch up before announcing a topology change); at <= the current
// cursor applies immediately — in particular at 0 before Run, which is
// how a restored tenant is moved onto its checkpointed epoch.
//
// An effective swap re-expands the window: every ring interval's link
// loads and the running load sums are recomputed under rt (the
// collected demand vectors are routing-independent), and the warm-start
// iterate is remapped by iterative proportional fitting onto the
// window's per-PoP traffic totals instead of being thrown away — the
// post-reroute re-solve starts from the traffic matrix the engine
// already believed in, rescaled to be consistent with the new access
// rows, rather than from cold. A swap to a routing whose matrix is
// identical to the active one is a complete no-op (no epoch change, no
// state touched), so repeated announcements are harmless.
//
// The new routing must pose the same estimation problem: same PoP set,
// hence same demand dimension. Swaps must be scheduled in increasing
// interval order with increasing epoch tags.
func (e *Engine) SwapRouting(rt *topology.Routing, epoch, at int) error {
	if rt == nil {
		return fmt.Errorf("stream: SwapRouting with nil routing")
	}
	if at < 0 {
		return fmt.Errorf("stream: SwapRouting at negative interval %d", at)
	}
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if got, want := rt.Net.NumPairs(), e.rt.Net.NumPairs(); got != want {
		return fmt.Errorf("stream: SwapRouting to a %d-pair topology, engine estimates %d pairs", got, want)
	}
	if epoch < e.epoch {
		return fmt.Errorf("stream: SwapRouting to epoch %d behind active epoch %d", epoch, e.epoch)
	}
	if n := len(e.swaps); n > 0 {
		last := e.swaps[n-1]
		if at <= last.at {
			return fmt.Errorf("stream: SwapRouting at interval %d not after already scheduled swap at %d", at, last.at)
		}
		if epoch <= last.epoch {
			return fmt.Errorf("stream: SwapRouting epoch %d not after already scheduled epoch %d", epoch, last.epoch)
		}
	}
	sw := pendingSwap{at: at, epoch: epoch, rt: rt}
	if at <= e.next {
		e.applySwapLocked(sw)
		return nil
	}
	e.swaps = append(e.swaps, sw)
	return nil
}

// TopologyEpoch returns the active topology epoch tag (0 until the
// first effective SwapRouting has applied).
func (e *Engine) TopologyEpoch() int {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.epoch
}

// applySwapsLocked applies every scheduled swap due at or before the
// interval about to be consumed or skipped. Callers hold stateMu.
func (e *Engine) applySwapsLocked(interval int) {
	for len(e.swaps) > 0 && e.swaps[0].at <= interval {
		e.applySwapLocked(e.swaps[0])
		e.swaps = e.swaps[1:]
	}
}

// applySwapLocked installs one hot-swap: recompute the window's link
// loads under the new routing, remap the warm-start iterate, switch the
// active routing and epoch. Callers hold stateMu.
func (e *Engine) applySwapLocked(sw pendingSwap) {
	if sw.rt.R.Equal(e.rt.R) {
		// The "new" matrix is the one already installed: nothing was
		// measured differently, so nothing changes — including the epoch,
		// which keeps the next published snapshot byte-identical to a run
		// that never saw the announcement.
		return
	}
	loadSum := linalg.NewVector(sw.rt.R.Rows())
	for i := range e.ring {
		loads := sw.rt.LinkLoads(e.ring[i].demand)
		e.ring[i].loads = loads
		linalg.Axpy(1, loads, loadSum)
	}
	e.loadSum = loadSum
	if e.warmEst != nil && len(e.ring) > 0 {
		e.warmEst = remapWarm(sw.rt.Net, e.warmEst, e.demandSum, len(e.ring))
	}
	e.rt = sw.rt
	e.epoch = sw.epoch
}

// remapWarm rescales a warm-start iterate onto the current window's
// per-PoP origin/destination traffic totals by iterative proportional
// fitting (the Kruithof balancing the repo already uses for eq. 5
// refinement). The result is non-negative wherever the input was and
// exactly consistent with the access-link rows of the new routing
// matrix, which read those totals back out. The input vector is never
// mutated — it is shared with the published snapshot.
func remapWarm(net *topology.Network, warm, demandSum linalg.Vector, k int) linalg.Vector {
	n := net.NumPoPs()
	te := linalg.NewVector(n)
	tx := linalg.NewVector(n)
	for p := 0; p < net.NumPairs(); p++ {
		src, dst := net.PairFromIndex(p)
		v := demandSum[p] / float64(k)
		te[src] += v
		tx[dst] += v
	}
	tot := te.Sum()
	if tot <= 0 {
		return warm // an all-zero window pins no margins
	}
	pm := linalg.NewMatrix(n, n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst {
				pm.Set(src, dst, warm[net.PairIndex(src, dst)])
			}
		}
	}
	// IPF cannot scale mass into an empty row or column; seed any that
	// carry target traffic with the gravity product so balancing has
	// something to move.
	for src := 0; src < n; src++ {
		if te[src] > 0 && pm.Row(src).Sum() == 0 {
			for dst := 0; dst < n; dst++ {
				if dst != src {
					pm.Set(src, dst, te[src]*tx[dst]/tot)
				}
			}
		}
	}
	for dst := 0; dst < n; dst++ {
		var s float64
		for src := 0; src < n; src++ {
			s += pm.At(src, dst)
		}
		if tx[dst] > 0 && s == 0 {
			for src := 0; src < n; src++ {
				if src != dst {
					pm.Set(src, dst, te[src]*tx[dst]/tot)
				}
			}
		}
	}
	bal, _, err := solver.KruithofBalance(pm, te, tx, 200, 1e-9)
	if err != nil {
		return warm // keep the old iterate; it is still a usable start
	}
	out := linalg.NewVector(net.NumPairs())
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst {
				out[net.PairIndex(src, dst)] = bal.At(src, dst)
			}
		}
	}
	return out
}
