// Package stream turns the batch reproduction into the continuously
// running estimation service the paper's infrastructure implies (§5.1:
// measurements are collected "continuously, 24 hours per day"): an Engine
// subscribes to the collector's poll windows as the central store fills,
// maintains sliding-window link-load and fanout state, refreshes a cheap
// incremental gravity estimate (eq. 5) after every consumed interval, and
// periodically schedules a full re-solve — entropy (eq. 6), Bayesian
// (eq. 7), Vardi's second-moment method (§4.2.2) or the paper's
// constant-fanout estimator (§4.2.4) — on a dedicated latest-wins worker,
// so a slow solve never blocks interval ingestion and a stale pending
// window is superseded rather than queued.
//
// Because backbone demand drifts slowly between intervals (the premise
// of the paper's Figs. 4–5), each full re-solve is warm-started from the
// previously published estimate, which cuts the steady-state iteration
// count by several times versus a cold start; the cadence is optionally
// adaptive, re-solving immediately when the window mean drifts past a
// threshold and backing off while it is steady. The evolving traffic
// matrix is exposed through a versioned Snapshot API (Latest /
// WaitVersion) that cmd/tmserve serves over HTTP, and the whole engine
// state can be checkpointed to disk and restored across restarts
// (Checkpoint / Restore / SaveCheckpoint / LoadCheckpoint).
package stream

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Method selects the estimator used for the periodic full re-solves.
type Method string

// The full re-solve methods the engine can schedule. Gravity is not
// listed: it is the always-on incremental estimate, not a re-solve.
const (
	MethodEntropy  Method = "entropy" // entropy-regularized tomogravity, eq. (6)
	MethodBayesian Method = "bayes"   // Bayesian MAP estimate, eq. (7)
	MethodVardi    Method = "vardi"   // second-moment matching, §4.2.2
	MethodFanout   Method = "fanout"  // constant-fanout estimation, §4.2.4
)

// Config tunes an Engine.
type Config struct {
	// Window is the sliding-window length in polling intervals. 0 means an
	// expanding window (every consumed interval is kept).
	Window int
	// MinCoverage is the fraction of LSPs an interval must cover before it
	// may be consumed once later intervals have closed it out. Intervals
	// below it are skipped (counted in Snapshot.Skipped). Values <= 0 —
	// including the zero value — select the default of 1 (full coverage
	// required); to accept closed intervals at any coverage, pass a small
	// positive fraction instead.
	MinCoverage float64
	// ResolveEvery schedules a full re-solve after every ResolveEvery
	// consumed intervals; 0 disables re-solves. Only one re-solve is in
	// flight at a time — if the window advances while one runs, only the
	// newest pending window is solved (latest wins).
	ResolveEvery int
	// DriftThreshold makes the re-solve cadence adaptive: when the window
	// drift (relative L1 distance between consecutive window means,
	// Snapshot.Drift) exceeds it, a re-solve is scheduled immediately
	// instead of waiting out the cadence, and the backed-off cadence (see
	// ResolveMaxEvery) snaps back to ResolveEvery. 0 disables drift
	// triggering (pure fixed cadence).
	DriftThreshold float64
	// ResolveMaxEvery caps the adaptive back-off: every time a cadence
	// re-solve fires with all drift since the previous re-solve at or
	// below DriftThreshold/2 (a steady window), the effective cadence
	// doubles, up to ResolveMaxEvery; any drift trigger resets it to
	// ResolveEvery. Values <= ResolveEvery (including 0) disable the
	// back-off. Requires DriftThreshold > 0 — without a drift signal the
	// engine cannot tell steady from moving.
	ResolveMaxEvery int
	// Method is the re-solve estimator. Defaults to MethodEntropy.
	Method Method
	// Reg is the regularization parameter for MethodEntropy/MethodBayesian
	// (the paper sweeps it in Fig. 13). Defaults to 1000.
	Reg float64
	// ResolveMaxIter and ResolveTol budget each full re-solve. The
	// defaults (20000, 1e-6) stop at the point where the scoring metrics
	// have stabilized; the batch estimators' 1e-9 would spend the entire
	// budget crawling along the routing matrix's nullspace on every
	// re-solve, erasing the warm-start advantage.
	ResolveMaxIter int
	ResolveTol     float64
	// PruneConsumed discards each interval from the store once this
	// engine has consumed or skipped it, keeping an endless run at
	// O(window) store memory. Enable it only when this engine is the
	// store's sole consumer (tmserve does): pruning is store-wide, so a
	// second subscriber would silently lose the pruned intervals.
	PruneConsumed bool
	// SigmaInv2 is σ⁻² for MethodVardi (Table 1). Defaults to 0.01.
	SigmaInv2 float64
	// MetricsHistory bounds the error-metric ring kept for Metrics().
	// Defaults to 1024 points.
	MetricsHistory int
	// ResolveDispatch, when non-nil, moves full re-solves off the
	// engine's own worker goroutine and into the host's hands: each
	// scheduled window is parked as the engine's single pending re-solve
	// (latest wins, exactly as in worker mode) and ResolveDispatch is
	// called once per parking so the host knows work is waiting. The
	// host then calls TryResolve — typically on a shared worker pool
	// shared by many engines (internal/fleet) — to execute it.
	// ResolveDispatch runs on the engine's ingestion goroutine and must
	// not block.
	ResolveDispatch func()
	// Solve, when non-nil, shares routing-matrix-derived solver artifacts
	// (power-iteration operator norms, Vardi moment assemblies) across
	// engines: tenants whose routing matrices are equal reuse one entry
	// (internal/fleet passes its fleet-wide cache here). Nil gives the
	// engine a private cache, which still amortizes those artifacts
	// across its own re-solves.
	Solve *core.SolveCache
	// OnResolve, when non-nil, observes every completed full re-solve —
	// worker-mode and dispatch-mode alike — with its wall-clock
	// duration, solver iteration count and warm/cold start. The hook is
	// how hosts feed latency histograms (internal/fleet's Prometheus
	// registry) without polling. It runs on the solving goroutine,
	// outside the engine's locks, and must not call back into the
	// engine.
	OnResolve func(d time.Duration, iters int, warm bool)
	// AnomalyFactor, when > 0, enables the drift-anomaly detector — the
	// paper's classic downstream use of TM estimation. An interval
	// whose window drift exceeds AnomalyFactor times the rolling
	// baseline (the mean of the last AnomalyWindow non-anomalous
	// drifts, once the baseline is full) and AnomalyMinDrift marks the
	// tenant anomalous (Snapshot.AnomalyActive); the first anomalous
	// interval of an episode increments Snapshot.Anomalies. Anomalous
	// drifts are kept out of the baseline, so a sustained traffic shift
	// stays flagged instead of normalizing itself away.
	AnomalyFactor float64
	// AnomalyWindow is the rolling-baseline length in consumed
	// intervals. Defaults to 8.
	AnomalyWindow int
	// AnomalyMinDrift is the absolute drift floor: spikes below it
	// never fire, whatever the baseline says (a near-zero baseline
	// would otherwise flag noise). Defaults to 0.05.
	AnomalyMinDrift float64
}

// Snapshot is one published state of the evolving traffic matrix. All
// vectors returned by Latest/WaitVersion are private deep copies, safe
// to retain, mutate and serialize.
type Snapshot struct {
	// Version increases by one on every publication (a consumed interval
	// or a completed re-solve). It never runs backwards, so a client can
	// long-poll with WaitVersion(v+1).
	Version uint64 `json:"version"`
	// Interval is the newest polling interval included in the window.
	Interval int `json:"interval"`
	// Window is the number of intervals currently aggregated.
	Window int `json:"window"`
	// Covered is the LSP coverage of the newest consumed interval.
	Covered int `json:"covered"`
	// Skipped counts intervals dropped for insufficient coverage so far.
	Skipped int `json:"skipped"`
	// Drift is the relative L1 distance between this window mean and the
	// previous interval's — the signal the adaptive re-solve cadence
	// watches (0 on the first interval).
	Drift float64 `json:"drift"`
	// TopologyEpoch counts the routing hot-swaps applied so far (see
	// SwapRouting): 0 until the first swap, then the host-assigned tag
	// of the active topology. Intervals consumed under different epochs
	// were measured under different routing matrices.
	TopologyEpoch int `json:"topology_epoch"`
	// AnomalyActive reports the drift-anomaly detector's current state
	// (always false with the detector disabled — Config.AnomalyFactor).
	AnomalyActive bool `json:"anomaly_active,omitempty"`
	// Anomalies counts anomaly episodes so far: each rising edge of
	// AnomalyActive adds one, so a 5-interval flash crowd is one
	// anomaly, not five.
	Anomalies int `json:"anomalies,omitempty"`

	// Gravity is the incremental gravity estimate over the window mean
	// (Mbps per PoP pair).
	Gravity linalg.Vector `json:"gravity"`
	// Mean is the collected window-mean traffic matrix — the direct MPLS
	// measurement the estimates are scored against.
	Mean linalg.Vector `json:"mean"`
	// Fanouts is the sliding-window fanout state α_nm = Mean_nm / Σ_m
	// Mean_nm derived from the collected matrix (the paper's Figs. 4–5
	// quantity, updated online).
	Fanouts linalg.Vector `json:"fanouts"`
	// GravityMRE scores Gravity against Mean over the demands carrying
	// 90% of traffic (eq. 8).
	GravityMRE float64 `json:"gravity_mre"`

	// Resolve is the latest completed full re-solve (nil until the first
	// one lands — the JSON key is absent exactly then, which is the
	// sentinel clients should test). It may lag the window by a few
	// intervals. The companion fields below are always serialized, since
	// 0 is a legitimate value for an interval index or an MRE.
	Resolve linalg.Vector `json:"resolve,omitempty"`
	// ResolveMethod names the estimator that produced Resolve.
	ResolveMethod Method `json:"resolve_method,omitempty"`
	// ResolveMRE scores Resolve against the window mean it was solved on.
	ResolveMRE float64 `json:"resolve_mre"`
	// ResolveInterval is the newest interval of the re-solved window.
	ResolveInterval int `json:"resolve_interval"`
	// ResolveDuration is how long the re-solve took.
	ResolveDuration time.Duration `json:"resolve_duration_ns"`
	// ResolveIterations is the solver iteration count the re-solve
	// consumed — the quantity the warm-start pipeline drives down.
	ResolveIterations int `json:"resolve_iterations"`
	// ResolveWarm reports whether the re-solve was warm-started from a
	// previously published estimate (false for the cold first solve and
	// after a method change).
	ResolveWarm bool `json:"resolve_warm"`

	// Time is the wall-clock publication time.
	Time time.Time `json:"time"`
}

// sizedBuf returns *p resized to n, reusing its backing array when
// possible — the engine's arena primitive.
func sizedBuf(p *linalg.Vector, n int) linalg.Vector {
	if cap(*p) >= n {
		*p = (*p)[:n]
	} else {
		*p = linalg.NewVector(n)
	}
	return *p
}

// cloneVec deep-copies a vector, preserving nil (Resolve's "no re-solve
// yet" sentinel must stay nil, not become an empty slice).
func cloneVec(v linalg.Vector) linalg.Vector {
	if v == nil {
		return nil
	}
	return v.Clone()
}

// cloneForRead returns a deep copy of the snapshot whose vectors are
// private to the caller. Engine internals share snapshot vectors across
// versions (a publication without a fresh re-solve carries the previous
// Resolve forward), so handing interior slices out would let one reader
// corrupt every other reader's — and the engine's own — state.
func (s Snapshot) cloneForRead() Snapshot {
	s.Gravity = cloneVec(s.Gravity)
	s.Mean = cloneVec(s.Mean)
	s.Fanouts = cloneVec(s.Fanouts)
	s.Resolve = cloneVec(s.Resolve)
	return s
}

// MetricPoint is one entry of the estimation-error history: the scoring
// fields of a Snapshot without the matrices, cheap enough to keep and
// serve in bulk.
type MetricPoint struct {
	Version           uint64    `json:"version"`
	Interval          int       `json:"interval"`
	Window            int       `json:"window"`
	Covered           int       `json:"covered"`
	Skipped           int       `json:"skipped"`
	Drift             float64   `json:"drift"`
	TopologyEpoch     int       `json:"topology_epoch"`
	AnomalyActive     bool      `json:"anomaly_active,omitempty"`
	Anomalies         int       `json:"anomalies,omitempty"`
	GravityMRE        float64   `json:"gravity_mre"`
	ResolveMRE        float64   `json:"resolve_mre"`
	ResolveInterval   int       `json:"resolve_interval"`
	ResolveIterations int       `json:"resolve_iterations"`
	ResolveWarm       bool      `json:"resolve_warm"`
	HasResolve        bool      `json:"has_resolve"`
	Time              time.Time `json:"time"`
}

// windowEntry is one consumed interval held in the sliding window.
type windowEntry struct {
	interval int
	demand   linalg.Vector // collected rates (P)
	loads    linalg.Vector // R·demand (L)
}

// resolveWork is one pending full re-solve request (latest wins). It
// pins the routing the window's loads were computed under, so a re-solve
// in flight across a routing hot-swap solves a consistent system instead
// of mixing old loads with the new matrix.
type resolveWork struct {
	rt       *topology.Routing
	interval int
	loads    []linalg.Vector // window link loads, private copies
	mean     linalg.Vector   // window-mean collected matrix
	thresh   float64
}

// Engine is the continuous estimation service. Create it with New,
// optionally Restore a checkpoint, drive it with Run (once), and read it
// with Latest / WaitVersion / Metrics / Checkpoint from any goroutine.
type Engine struct {
	cfg Config

	// started flips once: Run is documented "at most once", and a second
	// call must fail cleanly instead of double-closing e.work.
	started atomic.Bool

	mu      sync.RWMutex
	snap    Snapshot
	have    bool
	waiters []chan struct{} // one per parked WaitVersion; closed on publication
	metrics []MetricPoint

	// stateMu guards the consumption and warm-start state below, so
	// Checkpoint can capture a consistent view while the Run goroutine
	// and the resolve worker advance it. Never held together with mu.
	// rt lives here too since SwapRouting replaces it mid-stream; the
	// ingestion path reads it under the lock and re-solves pin the
	// routing they were scheduled with (resolveWork.rt).
	stateMu   sync.Mutex
	rt        *topology.Routing
	epoch     int           // active topology epoch tag (0 = as created)
	swaps     []pendingSwap // scheduled hot-swaps, ordered by interval
	ring      []windowEntry
	loadSum   linalg.Vector
	demandSum linalg.Vector
	next      int // next interval index to consume
	consumed  int
	skipped   int
	prevMean  linalg.Vector // last window mean, for the drift signal
	// Adaptive cadence state: intervals since the last scheduled
	// re-solve, the effective cadence, and the worst drift seen since
	// the last re-solve (the steadiness judge for the back-off).
	sinceResolve int
	curEvery     int
	driftPeak    float64
	// Drift-anomaly detector state (Config.AnomalyFactor): the rolling
	// ring of non-anomalous drifts with its running sum, the active
	// flag and the episode counter.
	anomRing   []float64
	anomSum    float64
	anomIdx    int
	anomActive bool
	anomCount  int
	// Warm-start state, advanced by the resolve worker on every
	// successful solve: the previous estimate (the x0 of the next one)
	// and, for MethodFanout, the previous solved fanout iterate.
	warmEst   linalg.Vector
	warmAlpha linalg.Vector

	work     chan resolveWork
	workerWG sync.WaitGroup

	// Buffer arena, reused between publications instead of allocating per
	// interval / per re-solve. Single-owner invariants: the ingestion
	// goroutine (consume) owns teBuf/txBuf and ingestWS; whichever
	// goroutine executes resolve — the engine's own worker or the host's
	// TryResolve caller, never both at once — owns ws and meanBuf.
	// Everything a published Snapshot or a parked resolveWork retains
	// (mean, gravity, fanouts, estimates, ring load vectors) stays
	// freshly allocated and is never recycled.
	teBuf, txBuf linalg.Vector
	ingestWS     *core.Workspace
	ws           *core.Workspace
	meanBuf      linalg.Vector
	instBuf      core.Instance
}

// New creates an Engine estimating over the given routing.
func New(rt *topology.Routing, cfg Config) (*Engine, error) {
	if cfg.Window < 0 {
		return nil, fmt.Errorf("stream: negative window %d", cfg.Window)
	}
	if cfg.MinCoverage <= 0 || cfg.MinCoverage > 1 {
		cfg.MinCoverage = 1
	}
	if cfg.Method == "" {
		cfg.Method = MethodEntropy
	}
	switch cfg.Method {
	case MethodEntropy, MethodBayesian, MethodVardi, MethodFanout:
	default:
		return nil, fmt.Errorf("stream: unknown method %q", cfg.Method)
	}
	if cfg.Reg <= 0 {
		cfg.Reg = 1000
	}
	if cfg.SigmaInv2 <= 0 {
		cfg.SigmaInv2 = 0.01
	}
	if cfg.DriftThreshold < 0 {
		return nil, fmt.Errorf("stream: negative drift threshold %v", cfg.DriftThreshold)
	}
	if cfg.DriftThreshold > 0 && cfg.ResolveEvery <= 0 {
		return nil, fmt.Errorf("stream: drift threshold needs re-solves enabled (ResolveEvery > 0)")
	}
	if cfg.ResolveMaxEvery < 0 {
		return nil, fmt.Errorf("stream: negative resolve-max-every %d", cfg.ResolveMaxEvery)
	}
	if cfg.ResolveMaxEvery > cfg.ResolveEvery && cfg.DriftThreshold == 0 {
		return nil, fmt.Errorf("stream: cadence back-off needs a drift threshold")
	}
	if cfg.ResolveMaxIter <= 0 {
		cfg.ResolveMaxIter = 20000
	}
	if cfg.ResolveTol <= 0 {
		cfg.ResolveTol = 1e-6
	}
	if cfg.MetricsHistory <= 0 {
		cfg.MetricsHistory = 1024
	}
	if cfg.AnomalyFactor < 0 {
		return nil, fmt.Errorf("stream: negative anomaly factor %v", cfg.AnomalyFactor)
	}
	if cfg.AnomalyWindow < 0 {
		return nil, fmt.Errorf("stream: negative anomaly window %d", cfg.AnomalyWindow)
	}
	if cfg.AnomalyWindow == 0 {
		cfg.AnomalyWindow = 8
	}
	if cfg.AnomalyMinDrift < 0 {
		return nil, fmt.Errorf("stream: negative anomaly min drift %v", cfg.AnomalyMinDrift)
	}
	if cfg.AnomalyMinDrift == 0 {
		cfg.AnomalyMinDrift = 0.05
	}
	if cfg.Solve == nil {
		cfg.Solve = core.NewSolveCache()
	}
	// Presize the window ring (copy-down sliding keeps this its lifetime
	// capacity) and the metrics log's first growth steps.
	var ringCap int
	if cfg.Window > 0 {
		ringCap = cfg.Window + 1
	}
	return &Engine{
		ring:      make([]windowEntry, 0, ringCap),
		metrics:   make([]MetricPoint, 0, min(cfg.MetricsHistory, 64)),
		rt:        rt,
		cfg:       cfg,
		loadSum:   linalg.NewVector(rt.R.Rows()),
		demandSum: linalg.NewVector(rt.Net.NumPairs()),
		curEvery:  cfg.ResolveEvery,
		work:      make(chan resolveWork, 1),
		teBuf:     linalg.NewVector(rt.Net.NumPoPs()),
		txBuf:     linalg.NewVector(rt.Net.NumPoPs()),
		ingestWS:  core.NewWorkspace(cfg.Solve),
		ws:        core.NewWorkspace(cfg.Solve),
	}, nil
}

// Run subscribes to the store and processes poll windows until ctx is
// done (returning ctx.Err()) or the subscription is closed by the store
// shutting down (returning nil). It must be called at most once; a
// second call returns an error without touching the running stream. Any
// intervals already in the store are consumed immediately, so Run may be
// started before, during or after the collection it watches.
func (e *Engine) Run(ctx context.Context, store *collector.Store) error {
	if !e.started.CompareAndSwap(false, true) {
		return fmt.Errorf("stream: Engine.Run called more than once")
	}
	updates, cancel := store.Subscribe()
	defer cancel()
	if e.cfg.ResolveDispatch == nil {
		e.workerWG.Add(1)
		go e.resolveWorker(ctx)
		defer func() {
			close(e.work)
			e.workerWG.Wait()
		}()
	}
	e.scan(store)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case _, ok := <-updates:
			if !ok {
				// The store shut down: the collection is over and no
				// record is in flight anymore, so every remaining
				// interval is final — drain them without the close-out
				// grace, which would otherwise strand the last ones.
				e.finalDrain(store)
				return nil
			}
			e.scan(store)
		}
	}
}

// skip records one interval dropped for insufficient coverage (or lost
// entirely) and advances the cursor, atomically w.r.t. Checkpoint. A
// hot-swap scheduled at this interval still applies: the routing changed
// whether or not the measurement survived.
func (e *Engine) skip() {
	e.stateMu.Lock()
	e.applySwapsLocked(e.next)
	e.skipped++
	e.next++
	e.stateMu.Unlock()
}

// finalDrain consumes or skips every interval still pending after the
// collection has ended, applying MinCoverage alone (nothing can improve
// coverage anymore).
func (e *Engine) finalDrain(store *collector.Store) {
	for latest := store.LatestInterval(); e.next <= latest; {
		rates, covered, ok := e.intervalRates(store)
		if ok && float64(covered) >= e.cfg.MinCoverage*float64(store.NumLSPs()) {
			e.consume(e.next, rates, covered)
		} else {
			e.skip()
		}
	}
	if e.cfg.PruneConsumed {
		store.Prune(e.next)
	}
}

// intervalRates fetches the consumable interval's demand vector. A
// prune-as-you-go engine is the store's sole consumer by contract, so
// it takes ownership of the stored vector outright (no per-interval
// clone); otherwise it copies, leaving the interval for other readers.
func (e *Engine) intervalRates(store *collector.Store) (linalg.Vector, int, bool) {
	if e.cfg.PruneConsumed {
		return store.Take(e.next)
	}
	return store.Matrix(e.next)
}

// scan consumes every interval that is ready, in order, then (with
// Config.PruneConsumed) prunes the consumed prefix from the store so an
// endless run holds O(window) state. Updates are coalesced wake-ups,
// not a reliable per-interval stream, so readiness is always re-derived
// from the store itself.
func (e *Engine) scan(store *collector.Store) {
	if e.cfg.PruneConsumed {
		defer func() { store.Prune(e.next) }() // closure: e.next advances below
	}
	for {
		latest := store.LatestInterval()
		if latest < e.next {
			return
		}
		// Probe coverage first — Matrix clones the full rate vector, so
		// it is only called once the interval will actually be consumed.
		covered, ok := store.Coverage(e.next)
		// An interval is final once records exist two intervals ahead:
		// its pollers produced its records when reading interval k+1's
		// counters, so by the time k+2 records arrive, every poller's
		// round-k+1 uploads — including a lagging backup poller's, which
		// may trail the fastest poller by most of a round plus TCP
		// buffering — have had a full polling interval to land.
		closed := latest > e.next+1
		full := ok && covered == store.NumLSPs()
		switch {
		case full, closed && ok && float64(covered) >= e.cfg.MinCoverage*float64(store.NumLSPs()):
			rates, covered, ok := e.intervalRates(store)
			if !ok { // pruned under our feet; cannot happen with one consumer
				e.skip()
				continue
			}
			e.consume(e.next, rates, covered)
		case closed:
			// Final but under-covered (or entirely lost): skip it rather
			// than stalling the stream behind a hole.
			e.skip()
		default:
			return // still filling; wait for more records
		}
	}
}

// consume folds one collected interval into the sliding window and
// publishes a fresh snapshot with the incremental gravity estimate.
func (e *Engine) consume(interval int, rates linalg.Vector, covered int) {
	e.stateMu.Lock()
	e.applySwapsLocked(interval)
	rt := e.rt
	epoch := e.epoch
	net := rt.Net
	loads := rt.LinkLoads(rates)
	te := sizedBuf(&e.teBuf, net.NumPoPs())
	tx := sizedBuf(&e.txBuf, net.NumPoPs())
	e.ring = append(e.ring, windowEntry{interval: interval, demand: rates, loads: loads})
	linalg.Axpy(1, loads, e.loadSum)
	linalg.Axpy(1, rates, e.demandSum)
	if e.cfg.Window > 0 && len(e.ring) > e.cfg.Window {
		// Slide by copying down rather than re-slicing, so the ring keeps
		// its full capacity forever (a re-sliced ring sheds one slot per
		// interval and re-grows, allocating on an endless run).
		old := e.ring[0]
		copy(e.ring, e.ring[1:])
		e.ring = e.ring[:len(e.ring)-1]
		linalg.Axpy(-1, old.loads, e.loadSum)
		linalg.Axpy(-1, old.demand, e.demandSum)
	}
	e.consumed++
	e.next = interval + 1
	windowLen := len(e.ring)
	k := float64(windowLen)
	skipped := e.skipped

	// Incremental gravity inputs: te/tx are read off the running load
	// sums, so the per-interval cost is O(L + P) plus the gravity product
	// — no re-averaging of the window.
	for pop := 0; pop < net.NumPoPs(); pop++ {
		te[pop] = e.loadSum[rt.IngressRow(pop)] / k
		tx[pop] = e.loadSum[rt.EgressRow(pop)] / k
	}
	mean := e.demandSum.Clone()
	mean.Scale(1 / k)

	// Window drift and the re-solve schedule decision. A drift trigger
	// fires as soon as the window moves past the threshold; a cadence
	// re-solve of a steady window doubles the effective cadence up to
	// ResolveMaxEvery (see Config).
	var drift float64
	if e.prevMean != nil {
		drift = linalg.RelL1(mean, e.prevMean)
	}
	e.prevMean = mean // never mutated after this point; safe to retain
	anomActive, anomCount := e.detectAnomalyLocked(drift)
	schedule := false
	if e.cfg.ResolveEvery > 0 {
		e.sinceResolve++
		if drift > e.driftPeak {
			e.driftPeak = drift
		}
		switch {
		case e.cfg.DriftThreshold > 0 && drift > e.cfg.DriftThreshold:
			schedule = true
			e.curEvery = e.cfg.ResolveEvery
		case e.sinceResolve >= e.curEvery:
			schedule = true
			if e.cfg.ResolveMaxEvery > e.cfg.ResolveEvery && e.driftPeak <= e.cfg.DriftThreshold/2 {
				e.curEvery *= 2
				if e.curEvery > e.cfg.ResolveMaxEvery {
					e.curEvery = e.cfg.ResolveMaxEvery
				}
			} else {
				e.curEvery = e.cfg.ResolveEvery
			}
		}
		if schedule {
			e.sinceResolve = 0
			e.driftPeak = 0
		}
	}
	var loadsCopy []linalg.Vector
	if schedule {
		// The ring's load vectors are immutable once created (consume
		// builds each exactly once and the window only drops entries, it
		// never recycles them), so the parked re-solve shares them
		// directly; only the slice header is fresh, since a parked work
		// may still be read by the solving goroutine while later consumes
		// run.
		loadsCopy = make([]linalg.Vector, windowLen)
		for i, w := range e.ring {
			loadsCopy[i] = w.loads
		}
	}
	e.stateMu.Unlock()

	gravity := core.GravityFromTotals(net, te, tx, nil)
	thresh := core.ShareThresholdWS(e.ingestWS, mean, 0.9)
	snap := Snapshot{
		Interval:      interval,
		Window:        windowLen,
		Covered:       covered,
		Skipped:       skipped,
		Drift:         drift,
		TopologyEpoch: epoch,
		AnomalyActive: anomActive,
		Anomalies:     anomCount,
		Gravity:       gravity,
		Mean:          mean,
		Fanouts:       traffic.FanoutsOf(net.NumPoPs(), mean),
		GravityMRE:    core.MRE(gravity, mean, thresh),
	}
	e.publish(snap)

	if schedule {
		w := resolveWork{rt: rt, interval: interval, loads: loadsCopy, mean: mean, thresh: thresh}
		// Latest wins: drop a pending (not yet started) re-solve in favor
		// of the newer window.
		select {
		case e.work <- w:
		default:
			select {
			case <-e.work:
			default:
			}
			select {
			case e.work <- w:
			default:
			}
		}
		if e.cfg.ResolveDispatch != nil {
			e.cfg.ResolveDispatch()
		}
	}
}

// detectAnomalyLocked advances the drift-anomaly detector by one
// consumed interval (stateMu held, called from consume). The baseline
// is the mean of the last AnomalyWindow non-anomalous drifts; it only
// starts judging once full, so a cold start's ramp-up drifts seed it
// instead of tripping it.
func (e *Engine) detectAnomalyLocked(drift float64) (active bool, count int) {
	if e.cfg.AnomalyFactor <= 0 {
		return false, 0
	}
	spike := false
	if len(e.anomRing) == e.cfg.AnomalyWindow {
		base := e.anomSum / float64(len(e.anomRing))
		spike = drift > e.cfg.AnomalyMinDrift && drift > e.cfg.AnomalyFactor*base
	}
	if spike {
		if !e.anomActive {
			e.anomCount++
		}
		e.anomActive = true
	} else {
		e.anomActive = false
		// Only non-anomalous drifts feed the baseline: a sustained
		// traffic shift stays flagged instead of normalizing itself.
		if e.anomRing == nil {
			e.anomRing = make([]float64, 0, e.cfg.AnomalyWindow)
		}
		if len(e.anomRing) < e.cfg.AnomalyWindow {
			e.anomRing = append(e.anomRing, drift)
			e.anomSum += drift
		} else {
			e.anomSum += drift - e.anomRing[e.anomIdx]
			e.anomRing[e.anomIdx] = drift
			e.anomIdx = (e.anomIdx + 1) % len(e.anomRing)
		}
	}
	return e.anomActive, e.anomCount
}

// publish installs the next snapshot under the write lock, carrying the
// latest re-solve fields forward when the new snapshot has none.
func (e *Engine) publish(snap Snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	prev := e.snap
	snap.Version = prev.Version + 1
	snap.Time = time.Now()
	if snap.Resolve == nil && prev.Resolve != nil {
		snap.Resolve = prev.Resolve
		snap.ResolveMethod = prev.ResolveMethod
		snap.ResolveMRE = prev.ResolveMRE
		snap.ResolveInterval = prev.ResolveInterval
		snap.ResolveDuration = prev.ResolveDuration
		snap.ResolveIterations = prev.ResolveIterations
		snap.ResolveWarm = prev.ResolveWarm
	}
	e.installLocked(snap)
}

// publishResolve merges a completed re-solve into whatever the current
// snapshot is by then — never regressing the window state, which may
// have advanced while the solve ran — and publishes the result.
func (e *Engine) publishResolve(est linalg.Vector, w resolveWork, iters int, warm bool, d time.Duration) {
	if e.cfg.OnResolve != nil {
		e.cfg.OnResolve(d, iters, warm)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.snap
	snap.Version++
	snap.Time = time.Now()
	snap.Resolve = est
	snap.ResolveMethod = e.cfg.Method
	snap.ResolveMRE = core.MRE(est, w.mean, w.thresh)
	snap.ResolveInterval = w.interval
	snap.ResolveDuration = d
	snap.ResolveIterations = iters
	snap.ResolveWarm = warm
	e.installLocked(snap)
}

// installLocked records a fully assembled snapshot. Callers hold e.mu
// and have already set Version and Time.
func (e *Engine) installLocked(snap Snapshot) {
	e.snap = snap
	e.have = true
	e.metrics = append(e.metrics, MetricPoint{
		Version:           snap.Version,
		Interval:          snap.Interval,
		Window:            snap.Window,
		Covered:           snap.Covered,
		Skipped:           snap.Skipped,
		Drift:             snap.Drift,
		TopologyEpoch:     snap.TopologyEpoch,
		AnomalyActive:     snap.AnomalyActive,
		Anomalies:         snap.Anomalies,
		GravityMRE:        snap.GravityMRE,
		ResolveMRE:        snap.ResolveMRE,
		ResolveInterval:   snap.ResolveInterval,
		ResolveIterations: snap.ResolveIterations,
		ResolveWarm:       snap.ResolveWarm,
		HasResolve:        snap.Resolve != nil,
		Time:              snap.Time,
	})
	if len(e.metrics) > e.cfg.MetricsHistory {
		e.metrics = e.metrics[len(e.metrics)-e.cfg.MetricsHistory:]
	}
	// Wake every parked WaitVersion. Publishing with no waiters — the
	// steady state — touches no channel at all, where the old
	// close-and-replace channel scheme allocated one per publication.
	for _, ch := range e.waiters {
		close(ch)
	}
	e.waiters = e.waiters[:0]
}

// resolveWorker runs full re-solves one at a time on its own goroutine.
func (e *Engine) resolveWorker(ctx context.Context) {
	defer e.workerWG.Done()
	for w := range e.work {
		if ctx.Err() != nil {
			continue // drain without solving during shutdown
		}
		t0 := time.Now()
		est, iters, warm, err := e.resolve(w)
		if err != nil {
			continue // a failed re-solve never unpublishes the previous one
		}
		e.publishResolve(est, w, iters, warm, time.Since(t0))
	}
}

// ResolvePending reports whether a scheduled full re-solve is parked
// waiting for TryResolve. It is a scheduling hint for dispatch-mode
// hosts (Config.ResolveDispatch): the answer may be stale by the time
// the host acts on it, which TryResolve tolerates.
func (e *Engine) ResolvePending() bool { return len(e.work) > 0 }

// TryResolve executes at most one parked full re-solve on the calling
// goroutine and publishes its result, reporting whether it consumed
// one. It is the dispatch-mode (Config.ResolveDispatch) counterpart of
// the engine's own resolve worker and carries the same invariant: at
// most one re-solve per engine may be in flight, so a host must not
// call it concurrently for the same engine. A nothing-pending call
// returns false immediately; once ctx is done the parked work is still
// consumed — and reported as consumed — but no longer solved (the
// shutdown drain).
func (e *Engine) TryResolve(ctx context.Context) bool {
	select {
	case w := <-e.work:
		if ctx.Err() != nil {
			return true // consumed, deliberately unsolved
		}
		t0 := time.Now()
		est, iters, warm, err := e.resolve(w)
		if err != nil {
			return true // a failed re-solve never unpublishes the previous one
		}
		e.publishResolve(est, w, iters, warm, time.Since(t0))
		return true
	default:
		return false
	}
}

// takeWarm returns the warm-start iterates for the next re-solve (nil
// means cold). Locked: Restore seeds them before Run, the worker
// advances them, Checkpoint reads them.
func (e *Engine) takeWarm() (est, alpha linalg.Vector) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.warmEst, e.warmAlpha
}

// setWarm records the iterates a successful re-solve ended on. The
// stored slices are only ever handed to solvers as starting points
// (which clone them), never mutated in place, so sharing them with the
// published snapshot is safe.
func (e *Engine) setWarm(est, alpha linalg.Vector) {
	e.stateMu.Lock()
	e.warmEst = est
	if alpha != nil {
		e.warmAlpha = alpha
	}
	e.stateMu.Unlock()
}

// resolve executes the configured full estimation method on one window,
// warm-started from the previous published estimate when one exists.
func (e *Engine) resolve(w resolveWork) (est linalg.Vector, iters int, warm bool, err error) {
	warmEst, warmAlpha := e.takeWarm()
	switch e.cfg.Method {
	case MethodVardi:
		cfg := core.DefaultVardiConfig()
		cfg.SigmaInv2 = e.cfg.SigmaInv2
		cfg.MaxIter = e.cfg.ResolveMaxIter
		cfg.Tol = e.cfg.ResolveTol
		lam, n, err := core.VardiFromWS(e.ws, w.rt, w.loads, cfg, warmEst)
		if err != nil {
			return nil, 0, false, err
		}
		e.setWarm(lam, nil)
		return lam, n, warmEst != nil, nil
	case MethodFanout:
		cfg := core.DefaultFanoutConfig()
		cfg.MaxIter = e.cfg.ResolveMaxIter
		cfg.Tol = e.cfg.ResolveTol
		fe, err := core.EstimateFanoutsFromWS(e.ws, w.rt, w.loads, cfg, warmAlpha)
		if err != nil {
			return nil, 0, false, err
		}
		e.setWarm(fe.MeanDemand, fe.Alpha)
		return fe.MeanDemand, fe.Iterations, warmAlpha != nil, nil
	}
	meanLoads := sizedBuf(&e.meanBuf, len(w.loads[0]))
	meanLoads.Zero()
	for _, t := range w.loads {
		linalg.Axpy(1, t, meanLoads)
	}
	meanLoads.Scale(1 / float64(len(w.loads)))
	if len(meanLoads) != w.rt.R.Rows() {
		return nil, 0, false, fmt.Errorf("stream: %d loads for %d links", len(meanLoads), w.rt.R.Rows())
	}
	// The instance and gravity prior live only for this solve (solvers
	// read them, the published estimate is always fresh), so both come
	// out of the resolve-owned arena instead of being allocated per call.
	e.instBuf = core.Instance{Rt: w.rt, Loads: meanLoads}
	inst := &e.instBuf
	prior := core.GravityWS(e.ws, inst)
	var x linalg.Vector
	var n int
	if e.cfg.Method == MethodBayesian {
		x, n, err = core.BayesianFromWS(e.ws, inst, prior, e.cfg.Reg, warmEst, e.cfg.ResolveMaxIter, e.cfg.ResolveTol)
	} else {
		x, n, err = core.EntropyFromWS(e.ws, inst, prior, e.cfg.Reg, warmEst, e.cfg.ResolveMaxIter, e.cfg.ResolveTol)
	}
	if err != nil {
		return nil, 0, false, err
	}
	e.setWarm(x, nil)
	return x, n, warmEst != nil, nil
}

// Latest returns a deep copy of the newest snapshot; ok is false before
// the first interval has been consumed.
func (e *Engine) Latest() (snap Snapshot, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.snap.cloneForRead(), e.have
}

// Position returns the newest snapshot's version and interval without
// copying its matrices — the cheap read for status and health endpoints
// that poll every engine (the fleet's /tenants and /healthz), where
// Latest's deep copy of four vectors per tenant per probe would be pure
// waste.
func (e *Engine) Position() (version uint64, interval int, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.snap.Version, e.snap.Interval, e.have
}

// WaitVersion blocks until a snapshot with Version >= min is published
// (returning a deep copy of it) or ctx is done (returning ctx.Err()).
// WaitVersion(ctx, 0) waits for the first snapshot.
func (e *Engine) WaitVersion(ctx context.Context, min uint64) (Snapshot, error) {
	for {
		e.mu.Lock()
		if e.have && e.snap.Version >= min {
			snap := e.snap.cloneForRead()
			e.mu.Unlock()
			return snap, nil
		}
		// Park: the next publication closes ch. The channel is a one-shot
		// broadcast, so an abandoning waiter (ctx done) just leaves it for
		// installLocked to close — no removal bookkeeping needed.
		ch := make(chan struct{})
		e.waiters = append(e.waiters, ch)
		e.mu.Unlock()
		select {
		case <-ctx.Done():
			return Snapshot{}, ctx.Err()
		case <-ch:
		}
	}
}

// LastMetric returns the newest estimation-error point without copying
// the history — the cheap per-tenant read scrape-time collectors poll
// on every /metrics/prom render.
func (e *Engine) LastMetric() (MetricPoint, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(e.metrics) == 0 {
		return MetricPoint{}, false
	}
	return e.metrics[len(e.metrics)-1], true
}

// Metrics returns a copy of the estimation-error history, oldest first.
func (e *Engine) Metrics() []MetricPoint {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]MetricPoint, len(e.metrics))
	copy(out, e.metrics)
	return out
}
