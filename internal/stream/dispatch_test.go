package stream

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/netsim"
)

// TestDispatchModeParksResolves pins the injected-dispatch contract the
// fleet builds on: with Config.ResolveDispatch set the engine never
// solves on its own — scheduled windows park until the host calls
// TryResolve — and the hook fires once per parked window.
func TestDispatchModeParksResolves(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	const cycles, every = 6, 2
	var dispatched atomic.Int64
	eng, err := New(sc.Rt, Config{
		Window:       3,
		ResolveEvery: every,
		ResolveDispatch: func() {
			dispatched.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, sc, eng, cycles, cycles)

	if got, want := dispatched.Load(), int64(cycles/every); got != want {
		t.Fatalf("dispatch hook fired %d times, want %d (one per scheduled window)", got, want)
	}
	snap, ok := eng.Latest()
	if !ok {
		t.Fatal("no snapshot after replay")
	}
	if snap.Resolve != nil {
		t.Fatal("engine solved on its own despite dispatch mode")
	}
	if !eng.ResolvePending() {
		t.Fatal("no parked re-solve after scheduled windows")
	}

	// The host (here: the test) executes the parked solve inline.
	ctx := context.Background()
	if !eng.TryResolve(ctx) {
		t.Fatal("TryResolve consumed nothing with work parked")
	}
	if eng.TryResolve(ctx) {
		t.Fatal("TryResolve consumed a second solve; only one window was parked (latest wins)")
	}
	snap, _ = eng.Latest()
	if snap.Resolve == nil {
		t.Fatal("TryResolve did not publish the re-solve")
	}
	// Latest wins: the parked window is the newest scheduled one.
	if snap.ResolveInterval != cycles-1 {
		t.Fatalf("parked re-solve covered interval %d, want %d (latest wins)", snap.ResolveInterval, cycles-1)
	}
	if snap.ResolveMRE < 0 || math.IsNaN(snap.ResolveMRE) {
		t.Fatalf("implausible resolve MRE %v", snap.ResolveMRE)
	}
}

// TestDispatchMatchesWorker proves moving the re-solve onto a host
// goroutine changes nothing about the estimate: with exactly one solve
// scheduled (so both engines solve the same window cold, with the same
// budget), the dispatch-mode host's TryResolve must publish the same
// vector the worker-mode engine does.
func TestDispatchMatchesWorker(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 6
	base := Config{Window: 3, ResolveEvery: cycles} // one solve, at the last interval

	worker, err := New(sc.Rt, base)
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(sc.Net.NumPairs())
	runCtx, cancelRun := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelRun()
	done := make(chan error, 1)
	go func() { done <- worker.Run(runCtx, store) }()
	if err := collector.Replay(runCtx, store, sc.Series, cycles, 0); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// Wait for the one scheduled re-solve before shutting down: the
	// worker drains without solving once the context is cancelled.
	var want Snapshot
	deadline := time.Now().Add(time.Minute)
	for {
		var ok bool
		if want, ok = worker.Latest(); ok && want.Resolve != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker engine never published its re-solve")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancelRun()
	<-done
	if want.ResolveInterval != cycles-1 {
		t.Fatalf("worker re-solve covered interval %d, want %d", want.ResolveInterval, cycles-1)
	}

	cfgD := base
	cfgD.ResolveDispatch = func() {}
	dispatch, err := New(sc.Rt, cfgD)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, sc, dispatch, cycles, cycles)
	if !dispatch.TryResolve(context.Background()) {
		t.Fatal("no parked re-solve on the dispatch engine")
	}
	got, _ := dispatch.Latest()
	if got.Resolve == nil || got.ResolveInterval != cycles-1 {
		t.Fatalf("dispatch re-solve missing or at interval %d, want %d", got.ResolveInterval, cycles-1)
	}
	if len(got.Resolve) != len(want.Resolve) {
		t.Fatalf("dispatch resolve has %d demands, worker %d", len(got.Resolve), len(want.Resolve))
	}
	for p := range want.Resolve {
		if d := math.Abs(got.Resolve[p] - want.Resolve[p]); d > 1e-9 {
			t.Fatalf("demand %d: dispatch %v vs worker %v (diff %g)", p, got.Resolve[p], want.Resolve[p], d)
		}
	}
}
