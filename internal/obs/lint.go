package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-exposition (0.0.4) stream the way
// `promtool check metrics` would: metadata ordering (HELP/TYPE before
// samples, at most once each), metric and label name charsets, label
// escape sequences, parseable values, no duplicate samples, no family
// interleaving, and histogram coherence (cumulative buckets, a +Inf
// bucket matching _count, a _sum series). It returns the first error
// with its line number, or nil for a clean stream.
//
// The registry's own tests run Lint over live WriteTo output, and the
// obs-smoke script runs it against a running daemon's /metrics/prom
// (TestLintLiveURL), so a malformed encoder fails `go test` rather
// than a scrape.
func Lint(r io.Reader) error {
	l := &linter{
		help:    make(map[string]bool),
		typ:     make(map[string]Type),
		started: make(map[string]bool),
		closed:  make(map[string]bool),
		seen:    make(map[string]int),
		hists:   make(map[string]*histState),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if err := l.line(sc.Text()); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return l.finish()
}

type histState struct {
	// buckets maps a child's non-le label identity to its observed
	// (le, cumulative count) pairs in exposition order.
	buckets map[string][]bucketSample
	counts  map[string]float64
	sums    map[string]bool
}

type bucketSample struct {
	le  float64
	cum float64
}

type linter struct {
	help    map[string]bool
	typ     map[string]Type
	started map[string]bool
	closed  map[string]bool
	seen    map[string]int // full sample identity -> line seen
	hists   map[string]*histState
	current string
}

func (l *linter) line(s string) error {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	if strings.HasPrefix(s, "#") {
		return l.comment(s)
	}
	return l.sample(s)
}

func (l *linter) comment(s string) error {
	rest, kind := "", ""
	switch {
	case strings.HasPrefix(s, "# HELP "):
		kind, rest = "HELP", s[len("# HELP "):]
	case strings.HasPrefix(s, "# TYPE "):
		kind, rest = "TYPE", s[len("# TYPE "):]
	default:
		return nil // free-form comment: legal, carries no metadata
	}
	name, arg, _ := strings.Cut(rest, " ")
	if !validMetricName(name) {
		return fmt.Errorf("%s for invalid metric name %q", kind, name)
	}
	if l.started[name] || l.closed[name] {
		return fmt.Errorf("%s %s after its samples", kind, name)
	}
	if kind == "HELP" {
		if l.help[name] {
			return fmt.Errorf("second HELP for %s", name)
		}
		if err := checkHelpEscapes(arg); err != nil {
			return fmt.Errorf("HELP %s: %w", name, err)
		}
		l.help[name] = true
		return nil
	}
	if _, dup := l.typ[name]; dup {
		return fmt.Errorf("second TYPE for %s", name)
	}
	switch Type(arg) {
	case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
	default:
		return fmt.Errorf("TYPE %s: unknown type %q", name, arg)
	}
	l.typ[name] = Type(arg)
	if Type(arg) == TypeHistogram {
		l.hists[name] = &histState{
			buckets: make(map[string][]bucketSample),
			counts:  make(map[string]float64),
			sums:    make(map[string]bool),
		}
	}
	return nil
}

func checkHelpEscapes(s string) error {
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			continue
		}
		if i+1 >= len(s) || (s[i+1] != '\\' && s[i+1] != 'n') {
			return fmt.Errorf("invalid escape %q", s[i:min(i+2, len(s))])
		}
		i++
	}
	return nil
}

func (l *linter) sample(s string) error {
	name, labels, value, err := parseSample(s)
	if err != nil {
		return err
	}
	fam := l.familyOf(name)
	if l.closed[fam] {
		return fmt.Errorf("family %s interleaved: sample after other families started", fam)
	}
	if l.current != fam {
		if l.current != "" {
			l.closed[l.current] = true
		}
		l.current = fam
	}
	l.started[fam] = true

	id := sampleID(name, labels)
	if prev, dup := l.seen[id]; dup {
		return fmt.Errorf("duplicate sample %s (first at line %d)", id, prev)
	}
	l.seen[id] = 1

	typ := l.typ[fam]
	switch typ {
	case TypeCounter:
		if math.IsNaN(value) || value < 0 {
			return fmt.Errorf("counter %s has invalid value %v", name, value)
		}
	case TypeHistogram:
		return l.histSample(fam, name, labels, value)
	}
	return nil
}

// familyOf resolves a sample's metric name to its family: histogram
// series fold into their declared base family; everything else is its
// own family.
func (l *linter) familyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if t, ok := l.typ[base]; ok && (t == TypeHistogram || t == "summary") {
				return base
			}
		}
	}
	return name
}

func (l *linter) histSample(fam, name string, labels [][2]string, value float64) error {
	h := l.hists[fam]
	base := make([][2]string, 0, len(labels))
	var le string
	hasLe := false
	for _, kv := range labels {
		if kv[0] == "le" {
			le, hasLe = kv[1], true
			continue
		}
		base = append(base, kv)
	}
	key := sampleID("", base)
	switch name {
	case fam + "_bucket":
		if !hasLe {
			return fmt.Errorf("%s without le label", name)
		}
		ub, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("%s: unparseable le %q", name, le)
		}
		bs := h.buckets[key]
		if n := len(bs); n > 0 {
			if ub <= bs[n-1].le {
				return fmt.Errorf("%s: buckets out of order (le %q after %v)", name, le, bs[n-1].le)
			}
			if value < bs[n-1].cum {
				return fmt.Errorf("%s: cumulative count decreased at le %q", name, le)
			}
		}
		if value < 0 || math.IsNaN(value) {
			return fmt.Errorf("%s: invalid bucket count %v", name, value)
		}
		h.buckets[key] = append(bs, bucketSample{le: ub, cum: value})
	case fam + "_sum":
		h.sums[key] = true
	case fam + "_count":
		if value < 0 || math.IsNaN(value) {
			return fmt.Errorf("%s: invalid count %v", name, value)
		}
		h.counts[key] = value
	default:
		return fmt.Errorf("histogram %s has stray series %s", fam, name)
	}
	return nil
}

// finish runs the checks that only close out at end of stream: every
// histogram child has a +Inf bucket agreeing with _count, and a _sum.
func (l *linter) finish() error {
	fams := make([]string, 0, len(l.hists))
	for fam := range l.hists {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		h := l.hists[fam]
		keys := make([]string, 0, len(h.buckets))
		for k := range h.buckets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			bs := h.buckets[key]
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, 1) {
				return fmt.Errorf("histogram %s%s: no +Inf bucket", fam, key)
			}
			count, ok := h.counts[key]
			if !ok {
				return fmt.Errorf("histogram %s%s: no _count series", fam, key)
			}
			if count != last.cum {
				return fmt.Errorf("histogram %s%s: _count %v != +Inf bucket %v", fam, key, count, last.cum)
			}
			if !h.sums[key] {
				return fmt.Errorf("histogram %s%s: no _sum series", fam, key)
			}
		}
		for key := range h.counts {
			if _, ok := h.buckets[key]; !ok {
				return fmt.Errorf("histogram %s%s: _count without buckets", fam, key)
			}
		}
	}
	return nil
}

func sampleID(name string, labels [][2]string) string {
	kv := make([]string, 0, len(labels))
	for _, p := range labels {
		kv = append(kv, p[0]+"="+strconv.Quote(p[1]))
	}
	sort.Strings(kv)
	return name + "{" + strings.Join(kv, ",") + "}"
}

// parseSample parses `name{label="value",…} value [timestamp]`.
func parseSample(s string) (name string, labels [][2]string, value float64, err error) {
	i := 0
	for i < len(s) && s[i] != '{' && s[i] != ' ' && s[i] != '\t' {
		i++
	}
	name = s[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := s[i:]
	if strings.HasPrefix(rest, "{") {
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%s: %w", name, err)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("%s: want `value [timestamp]` after labels, got %q", name, strings.TrimSpace(rest))
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("%s: unparseable value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("%s: unparseable timestamp %q", name, fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels parses the body after `{` through the closing `}`,
// returning the pairs and the remainder of the line.
func parseLabels(s string) ([][2]string, string, error) {
	var labels [][2]string
	names := make(map[string]bool)
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		i := 0
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i == len(s) {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		lname := strings.TrimSpace(s[:i])
		if !validLabelName(lname) {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		if names[lname] {
			return nil, "", fmt.Errorf("duplicate label %s", lname)
		}
		names[lname] = true
		s = s[i+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: unquoted value", lname)
		}
		val, rest, err := parseQuoted(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", lname, err)
		}
		labels = append(labels, [2]string{lname, val})
		s = strings.TrimLeft(rest, " \t")
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
			return labels, s[1:], nil
		default:
			return nil, "", fmt.Errorf("label %s: want `,` or `}` after value", lname)
		}
	}
}

// parseQuoted consumes an escaped label value up to its closing
// quote. Only \\, \" and \n escapes are legal in 0.0.4.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling backslash")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i+1])
			}
			i++
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}
