package obs

import (
	"net/http"
	"os"
	"strings"
	"testing"
)

func TestLintAccepts(t *testing.T) {
	good := []string{
		"",
		"tm_untyped_ok 1\n",
		"# random comment\ntm_x 1\n",
		"# HELP tm_a Help with \\\\ and \\n escapes.\n# TYPE tm_a counter\ntm_a 0\n",
		"tm_ts{a=\"b\"} 1 1700000000000\n",
		"# TYPE tm_h histogram\ntm_h_bucket{le=\"1\"} 1\ntm_h_bucket{le=\"+Inf\"} 2\ntm_h_sum 3.5\ntm_h_count 2\n",
		"tm_esc{v=\"a\\\\b\\\"c\\nd\"} 1\n",
		"tm_inf 1\ntm_other NaN\n",
	}
	for _, in := range good {
		if err := Lint(strings.NewReader(in)); err != nil {
			t.Errorf("Lint(%q) = %v, want nil", in, err)
		}
	}
}

func TestLintRejects(t *testing.T) {
	bad := map[string]string{
		"HELP after sample":   "tm_a 1\n# HELP tm_a late\n",
		"TYPE after sample":   "tm_a 1\n# TYPE tm_a counter\n",
		"double HELP":         "# HELP tm_a x\n# HELP tm_a y\n",
		"double TYPE":         "# TYPE tm_a gauge\n# TYPE tm_a gauge\n",
		"unknown type":        "# TYPE tm_a chart\n",
		"bad metric name":     "0tm 1\n",
		"bad label name":      "tm_a{0b=\"x\"} 1\n",
		"duplicate label":     "tm_a{b=\"x\",b=\"y\"} 1\n",
		"bad escape":          "tm_a{b=\"x\\t\"} 1\n",
		"unterminated value":  "tm_a{b=\"x} 1\n",
		"unquoted value":      "tm_a{b=x} 1\n",
		"bad value":           "tm_a one\n",
		"bad timestamp":       "tm_a 1 soon\n",
		"duplicate sample":    "tm_a{b=\"x\"} 1\ntm_a{b=\"x\"} 2\n",
		"negative counter":    "# TYPE tm_a counter\ntm_a -1\n",
		"NaN counter":         "# TYPE tm_a counter\ntm_a NaN\n",
		"interleaved":         "tm_a 1\ntm_b 1\ntm_a{x=\"2\"} 1\n",
		"help bad escape":     "# HELP tm_a bad \\t escape\n",
		"hist no +Inf":        "# TYPE tm_h histogram\ntm_h_bucket{le=\"1\"} 1\ntm_h_sum 1\ntm_h_count 1\n",
		"hist no sum":         "# TYPE tm_h histogram\ntm_h_bucket{le=\"+Inf\"} 1\ntm_h_count 1\n",
		"hist no count":       "# TYPE tm_h histogram\ntm_h_bucket{le=\"+Inf\"} 1\ntm_h_sum 1\n",
		"hist count mismatch": "# TYPE tm_h histogram\ntm_h_bucket{le=\"+Inf\"} 1\ntm_h_sum 1\ntm_h_count 2\n",
		"hist not cumulative": "# TYPE tm_h histogram\ntm_h_bucket{le=\"1\"} 5\ntm_h_bucket{le=\"2\"} 3\ntm_h_bucket{le=\"+Inf\"} 5\ntm_h_sum 1\ntm_h_count 5\n",
		"hist le order":       "# TYPE tm_h histogram\ntm_h_bucket{le=\"2\"} 1\ntm_h_bucket{le=\"1\"} 1\ntm_h_bucket{le=\"+Inf\"} 1\ntm_h_sum 1\ntm_h_count 1\n",
		"hist bucket no le":   "# TYPE tm_h histogram\ntm_h_bucket 1\n",
		"hist bad le":         "# TYPE tm_h histogram\ntm_h_bucket{le=\"wide\"} 1\n",
		"hist stray series":   "# TYPE tm_h histogram\ntm_h 1\n",
		"hist orphan count":   "# TYPE tm_h histogram\ntm_h_count 1\n",
	}
	for name, in := range bad {
		if err := Lint(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Lint(%q) = nil, want error", name, in)
		}
	}
}

// TestLintLiveURL scrapes and lints a running daemon when
// OBS_LINT_URL is set — the hook scripts/obs_smoke.sh uses to gate a
// live /metrics/prom endpoint with the same validator.
func TestLintLiveURL(t *testing.T) {
	url := os.Getenv("OBS_LINT_URL")
	if url == "" {
		t.Skip("OBS_LINT_URL not set")
	}
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("scrape %s: status %d", url, res.StatusCode)
	}
	if got := res.Header.Get("Content-Type"); got != ContentType {
		t.Errorf("Content-Type = %q, want %q", got, ContentType)
	}
	if err := Lint(res.Body); err != nil {
		t.Fatalf("live exposition at %s fails lint: %v", url, err)
	}
}
