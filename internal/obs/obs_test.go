package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// populated builds a registry exercising every family kind, escaping
// edge cases included.
func populated() *Registry {
	r := NewRegistry()
	c := r.Counter("tm_requests_total", "Requests served.", "tenant", "route")
	c.With("eu", "/snapshot").Add(3)
	c.With("us", "/snapshot").Inc()
	c.With(`we"ird\ten`+"\nant", "/x").Inc()

	g := r.Gauge("tm_drift", "Window drift (relative L1).", "tenant")
	g.With("eu").Set(0.125)
	g.With("us").Set(math.Inf(1))

	h := r.Histogram("tm_resolve_seconds", "Resolve latency.", []float64{0.01, 0.1, 1}, "tenant")
	h.With("eu").Observe(0.005)
	h.With("eu").Observe(0.5)
	h.With("eu").Observe(5)

	r.GaugeFunc("tm_live", "Scrape-time gauge with a\nmultiline, back\\slash help.", []string{"node"}, func(emit Emit) {
		emit(2, "n2")
		emit(1, "n1")
	})
	r.CounterFunc("tm_proxied_total", "Proxied requests.", nil, func(emit Emit) {
		emit(42)
	})
	return r
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return sb.String()
}

func TestExposition(t *testing.T) {
	out := render(t, populated())
	for _, want := range []string{
		"# HELP tm_requests_total Requests served.\n# TYPE tm_requests_total counter\n",
		`tm_requests_total{tenant="eu",route="/snapshot"} 3` + "\n",
		`tm_requests_total{tenant="we\"ird\\ten\nant",route="/x"} 1` + "\n",
		`tm_drift{tenant="us"} +Inf` + "\n",
		`tm_resolve_seconds_bucket{tenant="eu",le="0.01"} 1` + "\n",
		`tm_resolve_seconds_bucket{tenant="eu",le="0.1"} 1` + "\n",
		`tm_resolve_seconds_bucket{tenant="eu",le="1"} 2` + "\n",
		`tm_resolve_seconds_bucket{tenant="eu",le="+Inf"} 3` + "\n",
		`tm_resolve_seconds_sum{tenant="eu"} 5.505` + "\n",
		`tm_resolve_seconds_count{tenant="eu"} 3` + "\n",
		`# HELP tm_live Scrape-time gauge with a\nmultiline, back\\slash help.` + "\n",
		"tm_proxied_total 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Collector samples sort by label values regardless of emit order.
	if strings.Index(out, `tm_live{node="n1"}`) > strings.Index(out, `tm_live{node="n2"}`) {
		t.Errorf("collector samples not sorted:\n%s", out)
	}
}

func TestExpositionDeterministic(t *testing.T) {
	r := populated()
	if a, b := render(t, r), render(t, r); a != b {
		t.Fatalf("consecutive renders differ:\n%s\n---\n%s", a, b)
	}
}

// TestLintLiveRegistry is the satellite gate: the full live registry
// output must pass the promtool-style validator.
func TestLintLiveRegistry(t *testing.T) {
	out := render(t, populated())
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("live registry output fails lint: %v\n%s", err, out)
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(populated().Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if got := res.Header.Get("Content-Type"); got != ContentType {
		t.Errorf("Content-Type = %q, want %q", got, ContentType)
	}
	if got := res.Header.Get("Cache-Control"); got != "no-cache" {
		t.Errorf("Cache-Control = %q, want no-cache", got)
	}
	if err := Lint(res.Body); err != nil {
		t.Errorf("served exposition fails lint: %v", err)
	}
	res2, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", res2.StatusCode)
	}
}

func TestFamilies(t *testing.T) {
	fams := populated().Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	want := []string{"tm_drift", "tm_live", "tm_proxied_total", "tm_requests_total", "tm_resolve_seconds"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Families() = %v, want %v", names, want)
	}
	for _, f := range fams {
		if f.Name == "tm_requests_total" {
			if strings.Join(f.Labels, ",") != "tenant,route" {
				t.Errorf("labels = %v", f.Labels)
			}
			if f.Type != TypeCounter {
				t.Errorf("type = %v", f.Type)
			}
		}
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := map[string]func(r *Registry){
		"duplicate":       func(r *Registry) { r.Gauge("tm_x", "x."); r.Counter("tm_x", "x.") },
		"bad name":        func(r *Registry) { r.Gauge("0bad", "x.") },
		"bad label":       func(r *Registry) { r.Gauge("tm_x", "x.", "0bad") },
		"no help":         func(r *Registry) { r.Gauge("tm_x", "") },
		"le reserved":     func(r *Registry) { r.Histogram("tm_x", "x.", nil, "le") },
		"bad buckets":     func(r *Registry) { r.Histogram("tm_x", "x.", []float64{1, 1}) },
		"arity mismatch":  func(r *Registry) { r.Gauge("tm_x", "x.", "a").With("v1", "v2") },
		"counter go down": func(r *Registry) { r.Counter("tm_x", "x.").With().Add(-1) },
		"set on counter":  func(r *Registry) { r.Counter("tm_x", "x.").With().Set(1) },
		"add on hist":     func(r *Registry) { r.Histogram("tm_x", "x.", nil).With().Add(1) },
		"observe gauge":   func(r *Registry) { r.Gauge("tm_x", "x.").With().Observe(1) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn(NewRegistry())
		})
	}
}

func TestFloatFormatting(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("tm_v", "v.", "k")
	g.With("nan").Set(math.NaN())
	g.With("neginf").Set(math.Inf(-1))
	g.With("small").Set(0.000001230000393)
	g.With("big").Set(1e21)
	out := render(t, r)
	for _, want := range []string{
		`tm_v{k="nan"} NaN`,
		`tm_v{k="neginf"} -Inf`,
		`tm_v{k="small"} 1.230000393e-06`,
		`tm_v{k="big"} 1e+21`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Errorf("lint: %v", err)
	}
}
