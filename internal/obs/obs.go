// Package obs is a dependency-free metrics registry with Prometheus
// text-exposition (version 0.0.4) rendering. It carries the fleet's
// operational telemetry — per-tenant resolve latency/iteration
// histograms, drift and coverage gauges, serving fan-out counters,
// per-node cluster routing counters — to `GET /metrics/prom` on every
// tmserve surface without pulling the Prometheus client library into
// the module.
//
// The model is a cut-down prometheus/client_golang: a Registry holds
// metric families (counter, gauge, histogram), each family a vector
// over a fixed label set. Two registration styles exist:
//
//   - Counter/Gauge/Histogram return a *Vec whose children are
//     updated imperatively (Inc/Add/Set/Observe) from hot paths;
//   - CounterFunc/GaugeFunc register a scrape-time collector that
//     emits samples from live state (engine snapshots, hub stats,
//     cluster reports) so the exporter never caches what the system
//     already knows.
//
// Rendering is deterministic: families sort by name, children by
// label values, so consecutive scrapes of identical state are
// byte-identical. Lint validates any 0.0.4 exposition stream and runs
// against the live registry output in tests, so a malformed encoding
// fails `go test` rather than a scrape.
package obs

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Type is a metric family's type as exposed on its `# TYPE` line.
type Type string

// The family types the registry can expose.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// Family describes one registered family — the registry's self-
// inventory, drift-tested against docs/METRICS.md.
type Family struct {
	Name   string
	Type   Type
	Help   string
	Labels []string
}

// Emit is the callback handed to scrape-time collectors: each call
// contributes one sample with the family's label values in
// registration order.
type Emit func(value float64, labelValues ...string)

// DefBuckets are the default histogram buckets (seconds), spanning
// sub-millisecond cache hits to minute-long cold solves.
var DefBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// Registry is a set of metric families. All methods are safe for
// concurrent use; registration panics on invalid or duplicate names
// (programmer error, caught by the doc-drift test at init).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name    string
	help    string
	typ     Type
	labels  []string
	buckets []float64 // histogram upper bounds, strictly increasing, +Inf implicit

	mu       sync.Mutex
	children map[string]*child

	collect func(Emit) // scrape-time collector; nil for static families
}

type child struct {
	values []string

	mu      sync.Mutex
	val     float64  // counter/gauge value
	bcounts []uint64 // histogram per-bucket (non-cumulative) counts
	binf    uint64   // observations above the last bucket
	sum     float64
	count   uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers a counter family and returns its vector.
func (r *Registry) Counter(name, help string, labels ...string) *Vec {
	return &Vec{r.register(name, help, TypeCounter, labels, nil, nil)}
}

// Gauge registers a gauge family and returns its vector.
func (r *Registry) Gauge(name, help string, labels ...string) *Vec {
	return &Vec{r.register(name, help, TypeGauge, labels, nil, nil)}
}

// Histogram registers a histogram family with the given upper bounds
// (strictly increasing, finite; +Inf is implicit; nil means
// DefBuckets) and returns its vector.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Vec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) || (i > 0 && b <= buckets[i-1]) {
			panic("obs: histogram " + name + ": buckets must be finite and strictly increasing")
		}
	}
	return &Vec{r.register(name, help, TypeHistogram, labels, append([]float64(nil), buckets...), nil)}
}

// GaugeFunc registers a gauge family whose samples are produced by
// collect at scrape time. collect must call emit with exactly
// len(labels) label values per sample and must not call back into the
// registry.
func (r *Registry) GaugeFunc(name, help string, labels []string, collect func(Emit)) {
	r.register(name, help, TypeGauge, labels, nil, collect)
}

// CounterFunc is GaugeFunc for monotone counters sourced from live
// state (e.g. lifetime totals the system already tracks).
func (r *Registry) CounterFunc(name, help string, labels []string, collect func(Emit)) {
	r.register(name, help, TypeCounter, labels, nil, collect)
}

func (r *Registry) register(name, help string, typ Type, labels []string, buckets []float64, collect func(Emit)) *family {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if help == "" {
		panic("obs: metric " + name + " has no help text")
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic("obs: metric " + name + ": invalid label name " + strconv.Quote(l))
		}
		if typ == TypeHistogram && l == "le" {
			panic("obs: metric " + name + ": histogram label \"le\" is reserved")
		}
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
		collect:  collect,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric family " + name)
	}
	if typ == TypeHistogram {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if _, dup := r.families[strings.TrimSuffix(name, suffix)]; dup && strings.HasSuffix(name, suffix) {
				panic("obs: metric family " + name + " collides with histogram series")
			}
		}
	}
	r.families[name] = f
	return f
}

// Families lists every registered family sorted by name.
func (r *Registry) Families() []Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, Family{Name: f.name, Type: f.typ, Help: f.help, Labels: append([]string(nil), f.labels...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Vec is one family's vector of children keyed by label values.
type Vec struct{ f *family }

// With returns the child for the given label values, creating it on
// first use. The number of values must match the family's label set.
func (v *Vec) With(labelValues ...string) *Metric {
	f := v.f
	if len(labelValues) != len(f.labels) {
		panic("obs: metric " + f.name + ": got " + strconv.Itoa(len(labelValues)) + " label values, want " + strconv.Itoa(len(f.labels)))
	}
	key := childKey(labelValues)
	f.mu.Lock()
	c, ok := f.children[key]
	if !ok {
		c = &child{values: append([]string(nil), labelValues...)}
		if f.typ == TypeHistogram {
			c.bcounts = make([]uint64, len(f.buckets))
		}
		f.children[key] = c
	}
	f.mu.Unlock()
	return &Metric{f: f, c: c}
}

func childKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	// \xff cannot appear in valid UTF-8 label values, so the join is
	// collision-free for the names the fleet produces; a pathological
	// collision would only merge two children, never corrupt output.
	return strings.Join(values, "\xff")
}

// Metric is one child of a family: a single counter, gauge, or
// histogram series.
type Metric struct {
	f *family
	c *child
}

// Inc adds 1 to a counter or gauge.
func (m *Metric) Inc() { m.Add(1) }

// Add adds delta to a counter or gauge. Counters reject negative
// deltas (panic — a programmer error the exposition format forbids).
func (m *Metric) Add(delta float64) {
	if m.f.typ == TypeHistogram {
		panic("obs: Add on histogram " + m.f.name)
	}
	if m.f.typ == TypeCounter && delta < 0 {
		panic("obs: counter " + m.f.name + " decreased")
	}
	m.c.mu.Lock()
	m.c.val += delta
	m.c.mu.Unlock()
}

// Set sets a gauge's value.
func (m *Metric) Set(v float64) {
	if m.f.typ != TypeGauge {
		panic("obs: Set on " + string(m.f.typ) + " " + m.f.name)
	}
	m.c.mu.Lock()
	m.c.val = v
	m.c.mu.Unlock()
}

// Observe records one histogram observation.
func (m *Metric) Observe(v float64) {
	if m.f.typ != TypeHistogram {
		panic("obs: Observe on " + string(m.f.typ) + " " + m.f.name)
	}
	c := m.c
	c.mu.Lock()
	placed := false
	for i, ub := range m.f.buckets {
		if v <= ub {
			c.bcounts[i]++
			placed = true
			break
		}
	}
	if !placed {
		c.binf++
	}
	c.sum += v
	c.count++
	c.mu.Unlock()
}

// sample is one rendered exposition line's payload.
type sample struct {
	values []string
	v      float64
}

// WriteTo renders the full registry in text-exposition 0.0.4:
// families sorted by name, each with `# HELP` and `# TYPE` lines
// followed by its samples (children sorted by label values).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	b := make([]byte, 0, 4096)
	for _, f := range fams {
		b = f.render(b)
	}
	n, err := w.Write(b)
	return int64(n), err
}

func (f *family) render(b []byte) []byte {
	b = append(b, "# HELP "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = appendEscapedHelp(b, f.help)
	b = append(b, "\n# TYPE "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = append(b, string(f.typ)...)
	b = append(b, '\n')

	if f.collect != nil {
		var samples []sample
		f.collect(func(v float64, labelValues ...string) {
			if len(labelValues) != len(f.labels) {
				panic("obs: collector for " + f.name + " emitted " + strconv.Itoa(len(labelValues)) + " label values, want " + strconv.Itoa(len(f.labels)))
			}
			samples = append(samples, sample{values: labelValues, v: v})
		})
		sort.Slice(samples, func(i, j int) bool { return lessValues(samples[i].values, samples[j].values) })
		for _, s := range samples {
			b = f.appendSample(b, f.name, s.values, "", 0, s.v)
		}
		return b
	}

	f.mu.Lock()
	children := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		children = append(children, c)
	}
	f.mu.Unlock()
	sort.Slice(children, func(i, j int) bool { return lessValues(children[i].values, children[j].values) })

	for _, c := range children {
		c.mu.Lock()
		if f.typ == TypeHistogram {
			cum := uint64(0)
			for i, ub := range f.buckets {
				cum += c.bcounts[i]
				b = f.appendHistLine(b, c.values, ub, false, float64(cum))
			}
			cum += c.binf
			b = f.appendHistLine(b, c.values, 0, true, float64(cum))
			sum, count := c.sum, c.count
			c.mu.Unlock()
			b = f.appendSample(b, f.name+"_sum", c.values, "", 0, sum)
			b = f.appendSample(b, f.name+"_count", c.values, "", 0, float64(count))
			continue
		}
		v := c.val
		c.mu.Unlock()
		b = f.appendSample(b, f.name, c.values, "", 0, v)
	}
	return b
}

func (f *family) appendHistLine(b []byte, values []string, ub float64, inf bool, cum float64) []byte {
	le := "+Inf"
	if !inf {
		le = strconv.FormatFloat(ub, 'g', -1, 64)
	}
	return f.appendSample(b, f.name+"_bucket", values, le, 1, cum)
}

// appendSample emits one line; extraN=1 adds the le label with value
// extraLe after the family labels.
func (f *family) appendSample(b []byte, name string, values []string, extraLe string, extraN int, v float64) []byte {
	b = append(b, name...)
	if len(values) > 0 || extraN > 0 {
		b = append(b, '{')
		for i, l := range f.labels {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, l...)
			b = append(b, '=', '"')
			b = appendEscapedValue(b, values[i])
			b = append(b, '"')
		}
		if extraN > 0 {
			if len(f.labels) > 0 {
				b = append(b, ',')
			}
			b = append(b, "le=\""...)
			b = append(b, extraLe...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = appendFloat(b, v)
	b = append(b, '\n')
	return b
}

func lessValues(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Handler returns the scrape endpoint: the full registry rendered
// with the 0.0.4 content type and the same no-cache policy as every
// other serving route.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		w.Header().Set("Cache-Control", "no-cache")
		if req.Method == http.MethodHead {
			return
		}
		if _, err := r.WriteTo(w); err != nil {
			return // client gone; headers already sent
		}
	})
}

// ContentType is the exposition content type for scrape responses.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

func appendEscapedValue(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
