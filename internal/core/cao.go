package core

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/topology"
)

// CaoConfig tunes the Cao et al. estimator.
type CaoConfig struct {
	// Phi and C are the scaling-law constants in Var{s_p} = Phi·λ_p^C.
	// The paper's §5.2.3 fits them from data; Cao et al. treat C as fixed
	// and estimate the rest.
	Phi, C float64
	// SigmaInv2 weights the second-moment equations, as in Vardi.
	SigmaInv2 float64
	// Rounds of the pseudo-EM alternation.
	Rounds  int
	MaxIter int
	Tol     float64
}

// DefaultCaoConfig uses the paper's fitted European scaling constants.
func DefaultCaoConfig() CaoConfig {
	return CaoConfig{Phi: 0.82, C: 1.6, SigmaInv2: 0.01, Rounds: 6, MaxIter: 20000, Tol: 1e-8}
}

// Cao implements (a simplified form of) the time-varying network tomography
// of Cao, Davis, Vander Wiel & Yu (JASA 2000), the generalized-scaling-law
// relative of Vardi's method: demands are modeled as s_p ~ N(λ_p, φ·λ_p^c)
// and λ is found by matching first and second sample moments of the link
// loads. Because the covariance model R·diag(φλ^c)·Rᵀ is nonlinear in λ,
// the estimate is computed by a pseudo-EM alternation (as the authors
// propose for fixed c): given the current λ, the model variances are
// linearized as v_p = φ·λ_p^c, the moment system is solved as a
// non-negative least-squares problem in λ with the variance rows weighted
// by the current linearization point, and the loop repeats.
//
// The paper lists evaluating this method as future work (§6); it is
// included here as an extension.
func Cao(rt *topology.Routing, loads []linalg.Vector, cfg CaoConfig) (linalg.Vector, error) {
	if len(loads) < 2 {
		return nil, fmt.Errorf("core: Cao needs a time series, got %d samples", len(loads))
	}
	if cfg.C <= 0 || cfg.Phi <= 0 {
		return nil, fmt.Errorf("core: Cao needs positive scaling constants, got phi=%v c=%v", cfg.Phi, cfg.C)
	}
	l := rt.R.Rows()
	p := rt.R.Cols()
	tHat := stats.MeanVector(loads)
	cov := stats.CovarianceMatrix(loads)

	// Second-moment structure, reused across rounds: row per unordered link
	// pair (i,j) with support = demands crossing both, each entry carrying
	// the R_ip·R_jp routing coefficient (1 on single-path 0/1 matrices,
	// fractional under ECMP).
	type momentKey = [2]int
	momentRow := map[momentKey]int{}
	next := 0
	var entries []struct {
		row, pair int
		coeff     float64
	}
	// Per-demand link sets and fractions via the transposed routing matrix
	// (O(nnz), not an O(L·P) dense scan — same assembly speedup as Vardi).
	rT := rt.R.T()
	var links []int
	var vals []float64
	for pair := 0; pair < p; pair++ {
		links = links[:0]
		vals = vals[:0]
		rT.Row(pair, func(c int, v float64) {
			links = append(links, c)
			vals = append(vals, v)
		})
		for a := 0; a < len(links); a++ {
			for c := a; c < len(links); c++ {
				key := momentKey{links[a], links[c]}
				row, ok := momentRow[key]
				if !ok {
					row = next
					momentRow[key] = row
					next++
				}
				entries = append(entries, struct {
					row, pair int
					coeff     float64
				}{row, pair, vals[a] * vals[c]})
			}
		}
	}
	rhs2 := linalg.NewVector(next)
	for key, row := range momentRow {
		rhs2[row] = cov.At(key[0], key[1])
	}

	// Initial λ: uniform spread of the mean total.
	lam := linalg.NewVector(p)
	lam.Fill(tHat.Sum() / float64(l) / float64(p) * float64(l))
	w := math.Sqrt(cfg.SigmaInv2)

	// Per-round buffers, allocated once: the builder keeps its entry
	// capacity across Build calls (it truncates rather than releases), and
	// the linearization/right-hand-side vectors are plain overwrites. Only
	// the solved iterate is fresh each round (it becomes the next λ).
	b := sparse.NewBuilder(l+next, p)
	rhs := linalg.NewVector(l + next)
	grad := make([]float64, p)
	vcur := make([]float64, p)
	residRHS := make([]float64, next)
	var ws solver.Workspace
	for round := 0; round < cfg.Rounds; round++ {
		// Linearize: the second-moment row contributes coefficient
		// d v_p / d λ_p = φ·c·λ_p^{c−1} at the current point; the constant
		// part is folded into the right-hand side.
		for li := 0; li < l; li++ {
			rt.R.Row(li, func(cc int, v float64) { b.Add(li, cc, v) })
		}
		copy(rhs[:l], tHat)
		for pair := 0; pair < p; pair++ {
			lp := math.Max(lam[pair], 1e-9)
			vcur[pair] = cfg.Phi * math.Pow(lp, cfg.C)
			grad[pair] = cfg.Phi * cfg.C * math.Pow(lp, cfg.C-1)
		}
		copy(residRHS, rhs2)
		for _, e := range entries {
			b.Add(l+e.row, e.pair, w*e.coeff*grad[e.pair])
			residRHS[e.row] -= e.coeff * (vcur[e.pair] - grad[e.pair]*lam[e.pair])
		}
		for i, v := range residRHS {
			rhs[l+i] = w * v
		}
		sys := b.Build()
		// Each round's linearized system is a different matrix, so the
		// cached operator norm never applies — drop it explicitly.
		ws.InvalidateOperator()
		nextLam, res := solver.LeastSquaresNonnegWS(&ws, sys, rhs, nil, 0, lam, cfg.MaxIter, cfg.Tol)
		if !nextLam.AllFinite() {
			return nil, fmt.Errorf("core: Cao diverged at round %d (%d iters)", round, res.Iterations)
		}
		diff := linalg.DiffNorm2(nextLam, lam)
		norm := lam.Norm2() + 1e-30
		lam = nextLam
		if diff/norm < 1e-5 {
			break
		}
	}
	return lam, nil
}
