package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/linalg"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/topology"
)

// SolveCache shares the expensive routing-matrix-derived artifacts of the
// estimation methods across solves and across engines: the power-iteration
// operator norm ‖R‖₂² and Vardi's second-moment assembly (transpose
// traversal, moment-row indexing, stacked system). Entries are keyed by
// matrix *equality*, not pointer identity, so tenants built from the same
// scenario (the fleet's common case) share one entry even though each holds
// its own *sparse.Matrix.
//
// A SolveCache is safe for concurrent use. Cached matrices are only ever
// read after construction, so sharing them between concurrently solving
// tenants is safe. All cached floats are computed by the same deterministic
// code paths as the uncached entry points, so serving a value from the
// cache never changes a solver's output bits.
type SolveCache struct {
	mu  sync.Mutex
	ops []*cachedOp
	// sw pools the power-iteration scratch for the cache's own norm
	// computations (guarded by mu, like everything else here).
	sw solver.Workspace
}

// cachedOp is everything derived from one distinct routing matrix.
type cachedOp struct {
	canon   *sparse.Matrix   // first matrix seen with these contents
	aliases []*sparse.Matrix // other pointers known equal to canon
	normSq  float64          // ‖canon‖₂²
	hasNorm bool
	vardi   map[float64]*vardiAssembly // keyed by the moment weight w
}

// vardiAssembly is the per-(matrix, weight) part of Vardi's moment system:
// everything except the right-hand side, which depends on the window's
// sample moments and is rebuilt per solve.
type vardiAssembly struct {
	keys    [][2]int       // stacked row -> unordered link pair, first-use order
	stacked *sparse.Matrix // [R; w·second], the solve operator
	normSq  float64        // ‖stacked‖₂²
}

// NewSolveCache returns an empty cache.
func NewSolveCache() *SolveCache {
	return &SolveCache{}
}

// lookup returns the cache entry for m, creating one if m's contents have
// not been seen. Caller must hold c.mu. The scan is linear over distinct
// matrices with a pointer fast path over known aliases — fleets hold a
// handful of topologies but hundreds of tenant pointers.
func (c *SolveCache) lookup(m *sparse.Matrix) *cachedOp {
	for _, op := range c.ops {
		if op.canon == m {
			return op
		}
		for _, a := range op.aliases {
			if a == m {
				return op
			}
		}
	}
	for _, op := range c.ops {
		if op.canon.Equal(m) {
			op.aliases = append(op.aliases, m)
			return op
		}
	}
	op := &cachedOp{canon: m}
	c.ops = append(c.ops, op)
	return op
}

// Canonical returns the representative matrix pointer for m's contents:
// the first Equal matrix the cache saw. Tenants sharing a topology map to
// the same pointer, which is what the fleet's same-topology batching keys
// on.
func (c *SolveCache) Canonical(m *sparse.Matrix) *sparse.Matrix {
	if c == nil || m == nil {
		return m
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookup(m).canon
}

// OpNormSq returns ‖m‖₂² as solver.OperatorNormSq computes it, running the
// power method once per distinct matrix contents. Equal matrices produce
// bit-identical power iterations, so serving the canonical matrix's norm
// for an alias returns exactly the float the alias's own power method
// would have.
func (c *SolveCache) OpNormSq(m *sparse.Matrix) float64 {
	if c == nil {
		return solver.OperatorNormSq(m)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	op := c.lookup(m)
	if !op.hasNorm {
		op.normSq = c.sw.OperatorNormSq(op.canon)
		op.hasNorm = true
	}
	return op.normSq
}

// vardiFor returns the cached moment assembly for (m, w), building it on
// first use. The assembly reproduces VardiFrom's construction exactly:
// per-demand link sets off the transpose, moment rows indexed in first-use
// order, the stacked system [R; w·second].
func (c *SolveCache) vardiFor(m *sparse.Matrix, w float64) *vardiAssembly {
	c.mu.Lock()
	defer c.mu.Unlock()
	op := c.lookup(m)
	if asm, ok := op.vardi[w]; ok {
		return asm
	}
	asm := buildVardiAssembly(&c.sw, op.canon, w)
	if op.vardi == nil {
		op.vardi = make(map[float64]*vardiAssembly, 1)
	}
	op.vardi[w] = asm
	return asm
}

// buildVardiAssembly assembles the window-independent part of Vardi's
// stacked moment system for routing matrix r and weight w.
func buildVardiAssembly(sw *solver.Workspace, r *sparse.Matrix, w float64) *vardiAssembly {
	p := r.Cols()
	rT := r.T()
	total := 0
	for pair := 0; pair < p; pair++ {
		k := rT.RowNNZ(pair)
		total += k * (k + 1) / 2
	}
	momentRow := make(map[[2]int]int, total/4)
	next := 0
	type entry struct {
		row, pair int
		coeff     float64
	}
	entries := make([]entry, 0, total)
	var keys [][2]int
	var links []int
	var vals []float64
	for pair := 0; pair < p; pair++ {
		links = links[:0]
		vals = vals[:0]
		rT.Row(pair, func(cc int, v float64) {
			links = append(links, cc)
			vals = append(vals, v)
		})
		for a := 0; a < len(links); a++ {
			for cc := a; cc < len(links); cc++ {
				key := [2]int{links[a], links[cc]}
				row, ok := momentRow[key]
				if !ok {
					row = next
					momentRow[key] = row
					keys = append(keys, key)
					next++
				}
				entries = append(entries, entry{row, pair, vals[a] * vals[cc]})
			}
		}
	}
	b := sparse.NewBuilder(next, p)
	b.Grow(len(entries))
	for _, e := range entries {
		b.Add(e.row, e.pair, e.coeff)
	}
	second := b.Build()
	stacked := sparse.VStack(r, second.Scale(w))
	return &vardiAssembly{
		keys:    keys,
		stacked: stacked,
		normSq:  sw.OperatorNormSq(stacked),
	}
}

// Workspace bundles the per-engine scratch state of the estimation
// methods: the solver-level buffers (gradients, residuals, momentum
// iterates) plus the method-level staging vectors (sample moments, moment
// right-hand sides, fanout scalings, simplex-projection scratch) and a
// handle on a SolveCache for the matrix-derived artifacts.
//
// Like solver.Workspace, a core Workspace serves one solving goroutine at
// a time; the streaming engine owns one per engine and reuses it across
// its periodic re-solves, which is what makes the steady-state resolve
// loop allocation-free. Every *WS entry point accepts a nil workspace and
// then matches its workspace-free counterpart exactly — including the
// output bits, since a workspace only changes where scratch lives, never
// the arithmetic.
type Workspace struct {
	sw    solver.Workspace
	cache *SolveCache

	te, tx linalg.Vector // marginal-total scratch
	prior  linalg.Vector // GravityWS output buffer
	share  []float64     // ShareThresholdWS sorting scratch

	// Vardi staging: sample moments and the stacked right-hand side.
	tHat    linalg.Vector
	cov     *linalg.Matrix
	covMean linalg.Vector
	covD    linalg.Vector
	rhs     linalg.Vector
	x0      linalg.Vector

	// Fanout staging.
	scales         []linalg.Vector
	groups         [][]int
	groupsFor      *topology.Network
	scaled         linalg.Vector
	resid          linalg.Vector
	back           linalg.Vector
	groupTmp       []float64
	simplexScratch []float64
}

// NewWorkspace returns a workspace backed by the given SolveCache; a nil
// cache gets a private one, so a standalone engine still amortizes its
// power iterations and Vardi assemblies across re-solves.
func NewWorkspace(cache *SolveCache) *Workspace {
	if cache == nil {
		cache = NewSolveCache()
	}
	return &Workspace{cache: cache}
}

// Solver exposes the underlying solver workspace (for callers that drive
// the solver package directly with the same buffers).
func (ws *Workspace) Solver() *solver.Workspace {
	if ws == nil {
		return nil
	}
	return &ws.sw
}

// Cache returns the workspace's SolveCache.
func (ws *Workspace) Cache() *SolveCache {
	if ws == nil {
		return nil
	}
	return ws.cache
}

// solverWS returns the embedded solver workspace primed so that solving
// against op skips the power method, and nil for a nil receiver.
func (ws *Workspace) solverWS(op *sparse.Matrix) *solver.Workspace {
	if ws == nil {
		return nil
	}
	ws.sw.Prime(op, ws.cache.OpNormSq(op))
	return &ws.sw
}

// vbuf returns *p resized to n, reusing its backing array when possible.
func vbuf(p *linalg.Vector, n int) linalg.Vector {
	if cap(*p) >= n {
		*p = (*p)[:n]
	} else {
		*p = linalg.NewVector(n)
	}
	return *p
}

// fbuf is vbuf for plain float slices.
func fbuf(p *[]float64, n int) []float64 {
	if cap(*p) >= n {
		*p = (*p)[:n]
	} else {
		*p = make([]float64, n)
	}
	return *p
}

// IngressTotals is Instance.IngressTotals writing into the workspace's
// scratch vector (overwritten by the next call). Nil ws allocates.
func (ws *Workspace) IngressTotals(in *Instance) linalg.Vector {
	if ws == nil {
		return in.IngressTotals()
	}
	n := in.Rt.Net.NumPoPs()
	te := vbuf(&ws.te, n)
	for pop := 0; pop < n; pop++ {
		te[pop] = in.Loads[in.Rt.IngressRow(pop)]
	}
	return te
}

// EgressTotals is Instance.EgressTotals into workspace scratch.
func (ws *Workspace) EgressTotals(in *Instance) linalg.Vector {
	if ws == nil {
		return in.EgressTotals()
	}
	n := in.Rt.Net.NumPoPs()
	tx := vbuf(&ws.tx, n)
	for pop := 0; pop < n; pop++ {
		tx[pop] = in.Loads[in.Rt.EgressRow(pop)]
	}
	return tx
}

// GravityWS computes the gravity prior like Gravity, drawing the marginal
// totals AND the returned vector from workspace scratch: the result is
// overwritten by the next GravityWS call on the same workspace, so a
// caller that publishes or otherwise retains the prior beyond one solve
// must Clone it (the regularized solvers only read the prior during the
// solve, which is the intended use). Nil ws allocates everything fresh.
func GravityWS(ws *Workspace, in *Instance) linalg.Vector {
	te := ws.IngressTotals(in)
	tx := ws.EgressTotals(in)
	if ws == nil {
		return GravityFromTotals(in.Rt.Net, te, tx, nil)
	}
	return GravityFromTotalsInto(vbuf(&ws.prior, in.Rt.Net.NumPairs()), in.Rt.Net, te, tx, nil)
}

// EntropyFromWS is EntropyFrom solving out of ws: solver buffers reused,
// operator norm served from the cache. Nil ws is exactly EntropyFrom.
func EntropyFromWS(ws *Workspace, in *Instance, prior linalg.Vector, reg float64, x0 linalg.Vector, maxIter int, tol float64) (linalg.Vector, int, error) {
	if reg <= 0 {
		return nil, 0, fmt.Errorf("core: Entropy needs positive regularization, got %v", reg)
	}
	x, res := solver.EntropyRegularizedFromWS(ws.solverWS(in.Rt.R), in.Rt.R, in.Loads, prior, 1/reg, x0, maxIter, tol)
	if !x.AllFinite() {
		return nil, 0, fmt.Errorf("core: Entropy produced non-finite estimate (%d iters)", res.Iterations)
	}
	return x, res.Iterations, nil
}

// BayesianFromWS is BayesianFrom solving out of ws. Nil ws is exactly
// BayesianFrom.
func BayesianFromWS(ws *Workspace, in *Instance, prior linalg.Vector, reg float64, x0 linalg.Vector, maxIter int, tol float64) (linalg.Vector, int, error) {
	if reg <= 0 {
		return nil, 0, fmt.Errorf("core: Bayesian needs positive regularization, got %v", reg)
	}
	x, res := solver.LeastSquaresNonnegWS(ws.solverWS(in.Rt.R), in.Rt.R, in.Loads, prior, 1/reg, x0, maxIter, tol)
	if !x.AllFinite() {
		return nil, 0, fmt.Errorf("core: Bayesian produced non-finite estimate (%d iters)", res.Iterations)
	}
	return x, res.Iterations, nil
}

// VardiFromWS is VardiFrom with the moment assembly (transpose traversal,
// row indexing, stacked system, operator norm) served from the cache and
// the sample moments, right-hand side and solver buffers drawn from ws.
// Only the returned estimate is freshly allocated. Nil ws is exactly
// VardiFrom.
func VardiFromWS(ws *Workspace, rt *topology.Routing, loads []linalg.Vector, cfg VardiConfig, x0 linalg.Vector) (linalg.Vector, int, error) {
	if ws == nil {
		return VardiFrom(rt, loads, cfg, x0)
	}
	if len(loads) < 2 {
		return nil, 0, fmt.Errorf("core: Vardi needs a time series, got %d samples", len(loads))
	}
	l := rt.R.Rows()
	p := rt.R.Cols()
	for i, t := range loads {
		if len(t) != l {
			return nil, 0, fmt.Errorf("core: Vardi sample %d has %d loads, want %d", i, len(t), l)
		}
	}
	tHat := stats.MeanVectorInto(vbuf(&ws.tHat, l), loads)
	if ws.cov == nil || ws.cov.Rows != l || ws.cov.Cols != l {
		ws.cov = linalg.NewMatrix(l, l)
	}
	cov := stats.CovarianceMatrixInto(ws.cov, vbuf(&ws.covMean, l), vbuf(&ws.covD, l), loads)

	w := 0.0
	if cfg.SigmaInv2 > 0 {
		w = math.Sqrt(cfg.SigmaInv2)
	}
	asm := ws.cache.vardiFor(rt.R, w)
	rhs := vbuf(&ws.rhs, l+len(asm.keys))
	copy(rhs[:l], tHat)
	for row, key := range asm.keys {
		rhs[l+row] = w * cov.At(key[0], key[1])
	}
	if x0 == nil {
		x0 = vbuf(&ws.x0, p)
		x0.Fill(tHat.Sum() / float64(l) / float64(p) * float64(l))
	} else if len(x0) != p {
		return nil, 0, fmt.Errorf("core: Vardi warm start has %d demands, want %d", len(x0), p)
	}
	ws.sw.Prime(asm.stacked, asm.normSq)
	lam, res := solver.LeastSquaresNonnegWS(&ws.sw, asm.stacked, rhs, nil, 0, x0, cfg.MaxIter, cfg.Tol)
	if !lam.AllFinite() {
		return nil, 0, fmt.Errorf("core: Vardi produced non-finite estimate (%d iters)", res.Iterations)
	}
	return lam, res.Iterations, nil
}

// EstimateFanoutsFromWS is EstimateFanoutsFrom with the per-interval
// scalings, gradient staging, source groups and simplex-projection
// scratch drawn from ws and the operator norm served from the cache. The
// returned estimate's Alpha and MeanDemand are freshly allocated (they
// are published and retained); everything else is pooled. Nil ws is
// exactly EstimateFanoutsFrom.
func EstimateFanoutsFromWS(ws *Workspace, rt *topology.Routing, loads []linalg.Vector, cfg FanoutConfig, alpha0 linalg.Vector) (*FanoutEstimate, error) {
	if ws == nil {
		return EstimateFanoutsFrom(rt, loads, cfg, alpha0)
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("core: EstimateFanouts needs at least one sample")
	}
	net := rt.Net
	p := net.NumPairs()
	n := net.NumPoPs()
	k := len(loads)

	// Per-interval source scalings te(src(p))[k], vectors reused across
	// re-solves (the window length is stable in steady state).
	if cap(ws.scales) >= k {
		ws.scales = ws.scales[:k]
	} else {
		ws.scales = append(ws.scales[:cap(ws.scales)], make([]linalg.Vector, k-cap(ws.scales))...)
	}
	for i, t := range loads {
		if len(t) != rt.R.Rows() {
			return nil, fmt.Errorf("core: sample %d has %d loads, want %d", i, len(t), rt.R.Rows())
		}
		sc := vbuf(&ws.scales[i], p)
		for pair := 0; pair < p; pair++ {
			src, _ := net.PairFromIndex(pair)
			sc[pair] = t[rt.IngressRow(src)]
		}
	}
	scales := ws.scales
	// Per-source index groups, rebuilt only when the topology changes.
	if ws.groupsFor != net {
		groups := make([][]int, n)
		for pair := 0; pair < p; pair++ {
			src, _ := net.PairFromIndex(pair)
			groups[src] = append(groups[src], pair)
		}
		ws.groups, ws.groupsFor = groups, net
	}
	groups := ws.groups

	scaled := vbuf(&ws.scaled, p)
	resid := vbuf(&ws.resid, rt.R.Rows())
	back := vbuf(&ws.back, p)
	grad := func(dst, a linalg.Vector) {
		dst.Zero()
		for i := 0; i < k; i++ {
			sc := scales[i]
			for j := range scaled {
				scaled[j] = sc[j] * a[j]
			}
			rt.R.MulVec(resid, scaled)
			linalg.Sub(resid, resid, loads[i])
			rt.R.MulVecT(back, resid)
			for j := range dst {
				dst[j] += 2 * sc[j] * back[j]
			}
		}
	}
	rNorm := ws.cache.OpNormSq(rt.R)
	var lip float64
	for i := 0; i < k; i++ {
		mx, _ := scales[i].Max()
		lip += 2 * rNorm * mx * mx
	}
	project := func(a linalg.Vector) {
		for _, g := range groups {
			ws.projectGroupSimplex(a, g)
		}
	}
	if cfg.Unconstrained {
		project = func(a linalg.Vector) { a.ClampNonNegative() }
	}
	var alpha linalg.Vector
	if alpha0 != nil {
		if len(alpha0) != p {
			return nil, fmt.Errorf("core: fanout warm start has %d entries, want %d", len(alpha0), p)
		}
		alpha = alpha0.Clone()
		project(alpha)
	} else {
		alpha = linalg.NewVector(p)
		alpha.Fill(1 / float64(n-1))
	}
	alpha, res := solver.FISTAWS(&ws.sw, alpha, grad, lip, project, cfg.MaxIter, cfg.Tol)

	mean := linalg.NewVector(p)
	for i := 0; i < k; i++ {
		for j := range mean {
			mean[j] += scales[i][j] * alpha[j]
		}
	}
	mean.Scale(1 / float64(k))
	return &FanoutEstimate{Alpha: alpha, MeanDemand: mean, Iterations: res.Iterations}, nil
}

// projectGroupSimplex is the pooled-scratch twin of the package-level
// projectGroupSimplex helper.
func (ws *Workspace) projectGroupSimplex(a linalg.Vector, group []int) {
	tmp := fbuf(&ws.groupTmp, len(group))
	for i, j := range group {
		tmp[i] = a[j]
	}
	ws.simplexScratch = solver.ProjectSimplexInto(tmp, 1, ws.simplexScratch)
	for i, j := range group {
		a[j] = tmp[i]
	}
}

// ShareThresholdWS is ShareThreshold sorting into workspace scratch. The
// copy is sorted ascending and both passes (the total and the running
// prefix) walk it backwards, visiting values in exactly the descending
// order ShareThreshold sums in, so the returned threshold is
// bit-identical. Nil ws is exactly ShareThreshold.
func ShareThresholdWS(ws *Workspace, truth linalg.Vector, share float64) float64 {
	if ws == nil {
		return ShareThreshold(truth, share)
	}
	s := fbuf(&ws.share, len(truth))
	copy(s, truth)
	sort.Float64s(s)
	var total float64
	for i := len(s) - 1; i >= 0; i-- {
		total += s[i]
	}
	if total <= 0 {
		return 0
	}
	var run float64
	for i := len(s) - 1; i >= 0; i-- {
		v := s[i]
		run += v
		if run >= share*total {
			// Everything >= v is in; a threshold a hair below v keeps v.
			return v * (1 - 1e-12)
		}
	}
	return 0
}
