package core

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/topology"
)

// VardiConfig tunes Vardi's second-moment estimator (§4.2.2).
type VardiConfig struct {
	// SigmaInv2 is σ⁻² ∈ [0, 1]: the weight on the covariance moment-
	// matching conditions relative to the first moments. 1 expresses full
	// faith in the Poisson assumption; 0 ignores second moments entirely.
	SigmaInv2 float64
	// MaxIter bounds the non-negative least-squares solve.
	MaxIter int
	// Tol is the relative-change stopping tolerance.
	Tol float64
}

// DefaultVardiConfig mirrors the paper's Table 1 setting σ⁻² = 0.01 with a
// solver budget adequate for the American network.
func DefaultVardiConfig() VardiConfig {
	return VardiConfig{SigmaInv2: 0.01, MaxIter: 30000, Tol: 1e-9}
}

// Vardi estimates the mean traffic matrix λ from a time series of link-load
// vectors by moment matching under the Poisson assumption: it solves
//
//	minimize ‖R·λ − t̂‖² + σ⁻²·‖R·diag(λ)·Rᵀ − Σ̂‖²   s.t. λ >= 0
//
// where t̂ and Σ̂ are the sample mean and covariance of the loads. The
// covariance conditions contribute one linear equation per unordered link
// pair; the stacked system is solved as a sparse non-negative least-squares
// problem. Following the paper (after [22]) a least-squares fit replaces
// Vardi's original EM on Kullback–Leibler moment distances, because sample
// moments may be negative.
func Vardi(rt *topology.Routing, loads []linalg.Vector, cfg VardiConfig) (linalg.Vector, error) {
	if len(loads) < 2 {
		return nil, fmt.Errorf("core: Vardi needs a time series, got %d samples", len(loads))
	}
	l := rt.R.Rows()
	p := rt.R.Cols()
	for i, t := range loads {
		if len(t) != l {
			return nil, fmt.Errorf("core: Vardi sample %d has %d loads, want %d", i, len(t), l)
		}
	}
	tHat := stats.MeanVector(loads)
	cov := stats.CovarianceMatrix(loads)

	// Second-moment rows: for each unordered link pair (i <= j), the model
	// says Σ_p R_ip·R_jp·λ_p = Σ̂_ij. A pair p contributes to row (i, j)
	// only if its path crosses both links, so we enumerate per-demand link
	// sets rather than the L² pairs.
	momentRow := make(map[[2]int]int) // (i,j) -> stacked row index
	var rowOfPair func(i, j int) int
	b := sparse.NewBuilder(l*(l+1)/2, p)
	next := 0
	rowOfPair = func(i, j int) int {
		if i > j {
			i, j = j, i
		}
		key := [2]int{i, j}
		if r, ok := momentRow[key]; ok {
			return r
		}
		momentRow[key] = next
		next++
		return next - 1
	}
	links := make([]int, 0, 32)
	for pair := 0; pair < p; pair++ {
		links = links[:0]
		// Column support of pair: all rows with a 1 (interior path links
		// plus its ingress and egress rows).
		for li := 0; li < l; li++ {
			if rt.R.At(li, pair) != 0 {
				links = append(links, li)
			}
		}
		for a := 0; a < len(links); a++ {
			for c := a; c < len(links); c++ {
				b.Add(rowOfPair(links[a], links[c]), pair, 1)
			}
		}
	}
	second := b.Build().SelectRows(seq(next))
	rhs2 := linalg.NewVector(next)
	for key, row := range momentRow {
		rhs2[row] = cov.At(key[0], key[1])
	}
	w := 0.0
	if cfg.SigmaInv2 > 0 {
		w = math.Sqrt(cfg.SigmaInv2)
	}
	stacked := sparse.VStack(rt.R, second.Scale(w))
	rhs := linalg.NewVector(l + next)
	copy(rhs[:l], tHat)
	for i, v := range rhs2 {
		rhs[l+i] = w * v
	}
	// Neutral warm start: total traffic spread uniformly over the demands.
	x0 := linalg.NewVector(p)
	x0.Fill(tHat.Sum() / float64(l) / float64(p) * float64(l))
	lam, res := solver.LeastSquaresNonneg(stacked, rhs, nil, 0, x0, cfg.MaxIter, cfg.Tol)
	if !lam.AllFinite() {
		return nil, fmt.Errorf("core: Vardi produced non-finite estimate (%d iters)", res.Iterations)
	}
	return lam, nil
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
