package core

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/topology"
)

// VardiConfig tunes Vardi's second-moment estimator (§4.2.2).
type VardiConfig struct {
	// SigmaInv2 is σ⁻² ∈ [0, 1]: the weight on the covariance moment-
	// matching conditions relative to the first moments. 1 expresses full
	// faith in the Poisson assumption; 0 ignores second moments entirely.
	SigmaInv2 float64
	// MaxIter bounds the non-negative least-squares solve.
	MaxIter int
	// Tol is the relative-change stopping tolerance.
	Tol float64
}

// DefaultVardiConfig mirrors the paper's Table 1 setting σ⁻² = 0.01 with a
// solver budget adequate for the American network.
func DefaultVardiConfig() VardiConfig {
	return VardiConfig{SigmaInv2: 0.01, MaxIter: 30000, Tol: 1e-9}
}

// Vardi estimates the mean traffic matrix λ from a time series of link-load
// vectors by moment matching under the Poisson assumption: it solves
//
//	minimize ‖R·λ − t̂‖² + σ⁻²·‖R·diag(λ)·Rᵀ − Σ̂‖²   s.t. λ >= 0
//
// where t̂ and Σ̂ are the sample mean and covariance of the loads. The
// covariance conditions contribute one linear equation per unordered link
// pair; the stacked system is solved as a sparse non-negative least-squares
// problem. Following the paper (after [22]) a least-squares fit replaces
// Vardi's original EM on Kullback–Leibler moment distances, because sample
// moments may be negative.
func Vardi(rt *topology.Routing, loads []linalg.Vector, cfg VardiConfig) (linalg.Vector, error) {
	lam, _, err := VardiIters(rt, loads, cfg)
	return lam, err
}

// VardiIters is Vardi with the solver iteration count exposed, for the
// cross-scenario evaluation harness (internal/scenario).
func VardiIters(rt *topology.Routing, loads []linalg.Vector, cfg VardiConfig) (linalg.Vector, int, error) {
	return VardiFrom(rt, loads, cfg, nil)
}

// VardiFrom is VardiIters with an explicit starting iterate x0 for the
// stacked non-negative least-squares solve (nil keeps the neutral
// uniform spread). The moment system is solved to a unique least-norm
// fixed point regardless of x0; a warm start from the previous window's
// estimate (internal/stream) cuts the iteration count on slowly
// drifting demand.
func VardiFrom(rt *topology.Routing, loads []linalg.Vector, cfg VardiConfig, x0 linalg.Vector) (linalg.Vector, int, error) {
	if len(loads) < 2 {
		return nil, 0, fmt.Errorf("core: Vardi needs a time series, got %d samples", len(loads))
	}
	l := rt.R.Rows()
	p := rt.R.Cols()
	for i, t := range loads {
		if len(t) != l {
			return nil, 0, fmt.Errorf("core: Vardi sample %d has %d loads, want %d", i, len(t), l)
		}
	}
	tHat := stats.MeanVector(loads)
	cov := stats.CovarianceMatrix(loads)

	// Second-moment rows: for each unordered link pair (i <= j), the model
	// says Σ_p R_ip·R_jp·λ_p = Σ̂_ij. A pair p contributes to row (i, j)
	// only if its path crosses both links, so we enumerate per-demand link
	// sets — read off the transposed routing matrix in O(nnz) rather than
	// by an O(L·P) dense scan, which is what keeps assembly sub-second at
	// 100+ PoPs. The transpose also carries the entry values, so
	// fractional (ECMP) routing matrices get their correct R_ip·R_jp
	// coefficients; on 0/1 single-path matrices the products are exactly
	// 1, identical to the classical assembly.
	rT := rt.R.T() // p×l: row pair -> (link, fraction) in ascending link order
	total := 0
	for pair := 0; pair < p; pair++ {
		k := rT.RowNNZ(pair)
		total += k * (k + 1) / 2
	}
	// Row indices are assigned in the same first-use order a dense scan
	// would produce, so the stacked system is bit-identical to the
	// classical assembly on 0/1 matrices; entries are collected in the
	// same single pass and emitted once the row count is known.
	momentRow := make(map[[2]int]int, total/4) // (i,j) -> stacked row index
	next := 0
	type entry struct {
		row, pair int
		coeff     float64
	}
	entries := make([]entry, 0, total)
	var links []int
	var vals []float64
	for pair := 0; pair < p; pair++ {
		links = links[:0]
		vals = vals[:0]
		rT.Row(pair, func(c int, v float64) {
			links = append(links, c)
			vals = append(vals, v)
		})
		for a := 0; a < len(links); a++ {
			for c := a; c < len(links); c++ {
				key := [2]int{links[a], links[c]}
				row, ok := momentRow[key]
				if !ok {
					row = next
					momentRow[key] = row
					next++
				}
				entries = append(entries, entry{row, pair, vals[a] * vals[c]})
			}
		}
	}
	b := sparse.NewBuilder(next, p)
	b.Grow(len(entries))
	for _, e := range entries {
		b.Add(e.row, e.pair, e.coeff)
	}
	second := b.Build()
	rhs2 := linalg.NewVector(next)
	for key, row := range momentRow {
		rhs2[row] = cov.At(key[0], key[1])
	}
	w := 0.0
	if cfg.SigmaInv2 > 0 {
		w = math.Sqrt(cfg.SigmaInv2)
	}
	stacked := sparse.VStack(rt.R, second.Scale(w))
	rhs := linalg.NewVector(l + next)
	copy(rhs[:l], tHat)
	for i, v := range rhs2 {
		rhs[l+i] = w * v
	}
	if x0 == nil {
		// Neutral start: total traffic spread uniformly over the demands.
		x0 = linalg.NewVector(p)
		x0.Fill(tHat.Sum() / float64(l) / float64(p) * float64(l))
	} else if len(x0) != p {
		return nil, 0, fmt.Errorf("core: Vardi warm start has %d demands, want %d", len(x0), p)
	}
	lam, res := solver.LeastSquaresNonneg(stacked, rhs, nil, 0, x0, cfg.MaxIter, cfg.Tol)
	if !lam.AllFinite() {
		return nil, 0, fmt.Errorf("core: Vardi produced non-finite estimate (%d iters)", res.Iterations)
	}
	return lam, res.Iterations, nil
}
