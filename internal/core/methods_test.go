package core

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/traffic"
)

func TestWorstCaseBoundsSandwichTruth(t *testing.T) {
	f := europe(t)
	b, err := WorstCaseBounds(f.inst)
	if err != nil {
		t.Fatalf("WorstCaseBounds: %v", err)
	}
	const tol = 1e-5
	for p := range f.truth {
		scale := 1 + f.truth[p]
		if b.Lower[p] > f.truth[p]+tol*scale {
			t.Fatalf("pair %d: lower %v > truth %v", p, b.Lower[p], f.truth[p])
		}
		if b.Upper[p] < f.truth[p]-tol*scale {
			t.Fatalf("pair %d: upper %v < truth %v", p, b.Upper[p], f.truth[p])
		}
		if b.Lower[p] < -tol {
			t.Fatalf("pair %d: negative lower bound %v", p, b.Lower[p])
		}
	}
}

func TestWorstCaseBoundsNontrivial(t *testing.T) {
	// Paper Fig. 8: most bounds are non-trivial (upper below the naive
	// min-link-load cap and often lower > 0).
	f := europe(t)
	b, err := WorstCaseBounds(f.inst)
	if err != nil {
		t.Fatalf("WorstCaseBounds: %v", err)
	}
	tot := f.truth.Sum()
	nontrivialUpper := 0
	for p := range f.truth {
		if b.Upper[p] < tot*0.5 {
			nontrivialUpper++
		}
	}
	if nontrivialUpper < f.net.NumPairs()/2 {
		t.Fatalf("only %d/%d upper bounds are non-trivial", nontrivialUpper, f.net.NumPairs())
	}
}

func TestWCBMidpointBeatsGravityPrior(t *testing.T) {
	// Paper Table 2: WCB prior 0.10 vs gravity 0.26 (EU).
	f := europe(t)
	b, err := WorstCaseBounds(f.inst)
	if err != nil {
		t.Fatalf("WorstCaseBounds: %v", err)
	}
	mid := b.Midpoint()
	mreMid := MRE(mid, f.truth, f.thresh)
	mreGrav := MRE(Gravity(f.inst), f.truth, f.thresh)
	t.Logf("EU: WCB-midpoint MRE %.3f vs gravity %.3f (paper: 0.10 vs 0.26)", mreMid, mreGrav)
	if mreMid >= mreGrav {
		t.Errorf("WCB midpoint (%.3f) should beat gravity (%.3f) as the paper found", mreMid, mreGrav)
	}
}

func TestWorstCaseBoundsWarmMatchesCold(t *testing.T) {
	// Use the smaller network but verify warm-started bounds are identical
	// to cold-started ones.
	f := europe(t)
	warm, err := WorstCaseBounds(f.inst)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	cold, err := WorstCaseBoundsCold(f.inst)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	for p := range warm.Lower {
		if math.Abs(warm.Lower[p]-cold.Lower[p]) > 1e-5*(1+cold.Lower[p]) {
			t.Fatalf("pair %d lower: warm %v cold %v", p, warm.Lower[p], cold.Lower[p])
		}
		if math.Abs(warm.Upper[p]-cold.Upper[p]) > 1e-5*(1+cold.Upper[p]) {
			t.Fatalf("pair %d upper: warm %v cold %v", p, warm.Upper[p], cold.Upper[p])
		}
	}
	if warm.Pivots <= 0 || cold.Pivots <= 0 {
		t.Fatalf("pivot counters not tracked: warm %d cold %d", warm.Pivots, cold.Pivots)
	}
	t.Logf("pivots: warm %d vs cold %d", warm.Pivots, cold.Pivots)
	if warm.Pivots >= cold.Pivots {
		t.Errorf("warm start (%d pivots) should use fewer pivots than cold (%d)", warm.Pivots, cold.Pivots)
	}
}

func TestBoundsWidthNonNegative(t *testing.T) {
	f := europe(t)
	b, err := WorstCaseBounds(f.inst)
	if err != nil {
		t.Fatal(err)
	}
	for p, w := range b.Width() {
		if w < -1e-6 {
			t.Fatalf("pair %d negative width %v", p, w)
		}
	}
}

func TestEstimateFanoutsRecoversDemands(t *testing.T) {
	f := europe(t)
	loads := f.loadSeries(10)
	est, err := EstimateFanouts(f.rt, loads, DefaultFanoutConfig())
	if err != nil {
		t.Fatalf("EstimateFanouts: %v", err)
	}
	// Fanouts must live on per-source simplices.
	for src := 0; src < f.net.NumPoPs(); src++ {
		var sum float64
		for dst := 0; dst < f.net.NumPoPs(); dst++ {
			if dst != src {
				a := est.Alpha[f.net.PairIndex(src, dst)]
				if a < -1e-9 {
					t.Fatalf("negative fanout %v", a)
				}
				sum += a
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("source %d fanouts sum to %v", src, sum)
		}
	}
	// And the reconstructed demands should be decent for large demands.
	mean := f.series.MeanDemand(f.start, 10)
	mre := MRE(est.MeanDemand, mean, ShareThreshold(mean, 0.9))
	t.Logf("EU fanout MRE (window 10) = %.3f (paper Fig. 11 plateaus near 0.2-0.25)", mre)
	if mre > 0.6 {
		t.Errorf("fanout MRE %v too large", mre)
	}
}

func TestFanoutWindowLengthHelps(t *testing.T) {
	// Fig. 11: the error drops with window length, then levels out. (A
	// window of 1 is excluded: a single-snapshot fit is evaluated against
	// that same snapshot, so it scores deceptively well on its own noise.)
	f := europe(t)
	mreAt := func(k int) float64 {
		est, err := EstimateFanouts(f.rt, f.loadSeries(k), DefaultFanoutConfig())
		if err != nil {
			t.Fatalf("EstimateFanouts(%d): %v", k, err)
		}
		mean := f.series.MeanDemand(f.start, k)
		return MRE(est.MeanDemand, mean, ShareThreshold(mean, 0.9))
	}
	m3, m20 := mreAt(3), mreAt(20)
	t.Logf("fanout MRE: window 3 = %.3f, window 20 = %.3f", m3, m20)
	if m20 >= m3 {
		t.Errorf("longer window should reduce the error: window 3 %.3f vs window 20 %.3f", m3, m20)
	}
}

func TestEstimateFanoutsRejectsEmpty(t *testing.T) {
	f := europe(t)
	if _, err := EstimateFanouts(f.rt, nil, DefaultFanoutConfig()); err == nil {
		t.Fatal("expected error for empty series")
	}
}

func TestVardiRunsAndRanks(t *testing.T) {
	f := europe(t)
	loads := f.loadSeries(50)
	cfg := DefaultVardiConfig()
	lam, err := Vardi(f.rt, loads, cfg)
	if err != nil {
		t.Fatalf("Vardi: %v", err)
	}
	if len(lam) != f.net.NumPairs() {
		t.Fatalf("Vardi returned %d estimates", len(lam))
	}
	for _, v := range lam {
		if v < 0 {
			t.Fatal("negative Vardi estimate")
		}
	}
	mean := f.series.MeanDemand(f.start, 50)
	mre := MRE(lam, mean, ShareThreshold(mean, 0.9))
	t.Logf("EU Vardi MRE (σ⁻²=0.01, K=50) = %.3f (paper: 0.47)", mre)
	// Vardi is the weakest method in the paper; just require sanity.
	if mre > 3 {
		t.Errorf("Vardi MRE %v beyond even the paper's poor result", mre)
	}
}

func TestVardiStrongPoissonFaithIsWorse(t *testing.T) {
	// Table 1: σ⁻² = 1 performs far worse than σ⁻² = 0.01 on real
	// (non-Poissonian) traffic.
	f := europe(t)
	loads := f.loadSeries(50)
	mean := f.series.MeanDemand(f.start, 50)
	th := ShareThreshold(mean, 0.9)
	weak, err := Vardi(f.rt, loads, VardiConfig{SigmaInv2: 0.01, MaxIter: 30000, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Vardi(f.rt, loads, VardiConfig{SigmaInv2: 1, MaxIter: 30000, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	mreWeak, mreStrong := MRE(weak, mean, th), MRE(strong, mean, th)
	t.Logf("Vardi MRE: σ⁻²=0.01 %.3f vs σ⁻²=1 %.3f (paper: 0.47 vs 302)", mreWeak, mreStrong)
	if mreStrong < mreWeak {
		t.Errorf("strong Poisson faith (%.3f) should be worse than weak (%.3f)", mreStrong, mreWeak)
	}
}

func TestVardiNeedsTimeSeries(t *testing.T) {
	f := europe(t)
	if _, err := Vardi(f.rt, f.loadSeries(1), DefaultVardiConfig()); err == nil {
		t.Fatal("expected error for single sample")
	}
}

func TestVardiOnSyntheticPoissonImprovesWithWindow(t *testing.T) {
	// Fig. 12's mechanism: even under a true Poisson model, short windows
	// give bad covariance estimates; error shrinks as the window grows.
	f := europe(t)
	mean := f.series.MeanDemand(f.start, 50)
	// Work on a scaled-down mean so Poisson noise is substantial.
	scaled := mean.Clone()
	scaled.Scale(0.01)
	th := ShareThreshold(scaled, 0.9)
	mreAt := func(k int) float64 {
		demands := traffic.SyntheticPoisson(scaled, k, 7)
		loads := make([]linalg.Vector, k)
		for i := range demands {
			loads[i] = f.rt.LinkLoads(demands[i])
		}
		lam, err := Vardi(f.rt, loads, VardiConfig{SigmaInv2: 1, MaxIter: 30000, Tol: 1e-9})
		if err != nil {
			t.Fatalf("Vardi: %v", err)
		}
		return MRE(lam, scaled, th)
	}
	m20, m400 := mreAt(20), mreAt(400)
	t.Logf("synthetic-Poisson Vardi MRE: K=20 %.3f, K=400 %.3f", m20, m400)
	if m400 >= m20 {
		t.Errorf("error should shrink with window: K=20 %.3f vs K=400 %.3f", m20, m400)
	}
}

func TestMeasuredInstancePinsDemand(t *testing.T) {
	f := europe(t)
	_, pMax := f.truth.Max()
	mi := MeasuredInstance(f.inst, map[int]float64{pMax: f.truth[pMax]})
	if mi.Rt.R.Rows() != f.rt.R.Rows()+1 {
		t.Fatalf("expected one extra row, got %d vs %d", mi.Rt.R.Rows(), f.rt.R.Rows())
	}
	if mi.Loads[len(mi.Loads)-1] != f.truth[pMax] {
		t.Fatal("measured value not appended to loads")
	}
	est, err := Entropy(mi, Gravity(f.inst), 1000)
	if err != nil {
		t.Fatalf("Entropy on measured instance: %v", err)
	}
	rel := math.Abs(est[pMax]-f.truth[pMax]) / f.truth[pMax]
	if rel > 0.05 {
		t.Fatalf("measured demand off by %.1f%%", rel*100)
	}
}

func TestDirectMeasurementCurveDecreases(t *testing.T) {
	f := europe(t)
	prior := Gravity(f.inst)
	curve, order, err := DirectMeasurementCurve(f.inst, f.truth, prior, 1000, f.thresh, 4, GreedyMRE)
	if err != nil {
		t.Fatalf("DirectMeasurementCurve: %v", err)
	}
	if len(curve) != 5 || len(order) != 4 {
		t.Fatalf("curve/order lengths %d/%d", len(curve), len(order))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-9 {
			t.Fatalf("greedy curve increased at step %d: %v -> %v", i, curve[i-1], curve[i])
		}
	}
	t.Logf("greedy MRE curve: %v", curve)
}

func TestDirectMeasurementLargestStrategy(t *testing.T) {
	f := europe(t)
	prior := Gravity(f.inst)
	curve, order, err := DirectMeasurementCurve(f.inst, f.truth, prior, 1000, f.thresh, 3, LargestDemand)
	if err != nil {
		t.Fatalf("DirectMeasurementCurve: %v", err)
	}
	// Order must be by decreasing true size.
	for i := 1; i < len(order); i++ {
		if f.truth[order[i]] > f.truth[order[i-1]]+1e-9 {
			t.Fatalf("largest-demand order violated at %d", i)
		}
	}
	if curve[len(curve)-1] > curve[0]+1e-9 {
		t.Fatalf("measuring largest demands should not hurt: %v", curve)
	}
}

func TestDirectMeasurementUnknownStrategy(t *testing.T) {
	f := europe(t)
	if _, _, err := DirectMeasurementCurve(f.inst, f.truth, Gravity(f.inst), 1000, f.thresh, 1, SelectionStrategy(99)); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}
