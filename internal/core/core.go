// Package core implements every traffic-matrix estimation method the paper
// evaluates (§4): the gravity model, Kruithof's projection, the
// entropy-regularized ("tomogravity") and Bayesian regularized estimators,
// Vardi's second-moment method, the paper's novel constant-fanout estimator
// over a time series of link loads, worst-case LP bounds, and estimation
// combined with direct measurement of selected demands — plus the mean
// relative error metric (eq. 8) used to score them all.
package core

import (
	"fmt"
	"sort"

	"repro/internal/linalg"
	"repro/internal/topology"
)

// Instance is one snapshot estimation problem: a routing matrix and the
// corresponding measured link loads t (Mbps). Loads covers every link,
// access links included, so the marginal totals te(n) and tx(m) of the
// paper's notation are observable.
//
// An Instance is read-only after construction, and every estimation
// method in this package allocates its own scratch state per call — so a
// single Instance may be shared freely by concurrent estimator calls
// (the experiment engine in internal/runner relies on this).
type Instance struct {
	Rt    *topology.Routing
	Loads linalg.Vector
}

// NewInstance validates dimensions and returns an Instance.
func NewInstance(rt *topology.Routing, loads linalg.Vector) (*Instance, error) {
	if len(loads) != rt.R.Rows() {
		return nil, fmt.Errorf("core: %d loads for %d links", len(loads), rt.R.Rows())
	}
	return &Instance{Rt: rt, Loads: loads}, nil
}

// NumPairs returns the number of demands P.
func (in *Instance) NumPairs() int { return in.Rt.Net.NumPairs() }

// IngressTotals returns te(n) for every PoP, read off the ingress access
// link loads.
func (in *Instance) IngressTotals() linalg.Vector {
	n := in.Rt.Net.NumPoPs()
	te := linalg.NewVector(n)
	for pop := 0; pop < n; pop++ {
		te[pop] = in.Loads[in.Rt.IngressRow(pop)]
	}
	return te
}

// EgressTotals returns tx(m) for every PoP, read off the egress access link
// loads.
func (in *Instance) EgressTotals() linalg.Vector {
	n := in.Rt.Net.NumPoPs()
	tx := linalg.NewVector(n)
	for pop := 0; pop < n; pop++ {
		tx[pop] = in.Loads[in.Rt.EgressRow(pop)]
	}
	return tx
}

// TotalTraffic returns the total network traffic Σ te(n).
func (in *Instance) TotalTraffic() float64 { return in.IngressTotals().Sum() }

// MRE is the paper's mean relative error (eq. 8): the average of
// |ŝ_i − s_i| / s_i over the true demands strictly larger than threshold.
// Returns 0 if no demand exceeds the threshold.
func MRE(estimate, truth linalg.Vector, threshold float64) float64 {
	if len(estimate) != len(truth) {
		panic("core: MRE length mismatch")
	}
	var sum float64
	var n int
	for i, s := range truth {
		if s > threshold {
			d := estimate[i] - s
			if d < 0 {
				d = -d
			}
			sum += d / s
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ShareThreshold returns the demand size threshold such that demands above
// it carry approximately the given fraction of total traffic (the paper
// uses 90%, which selects the 29 largest European and 155 largest American
// demands). It returns the largest threshold whose exceeders carry at least
// share of the total.
func ShareThreshold(truth linalg.Vector, share float64) float64 {
	s := append(linalg.Vector(nil), truth...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	total := s.Sum()
	if total <= 0 {
		return 0
	}
	var run float64
	for _, v := range s {
		run += v
		if run >= share*total {
			// Everything >= v is in; a threshold a hair below v keeps v.
			return v * (1 - 1e-12)
		}
	}
	return 0
}

// CountAbove returns how many elements of v exceed threshold.
func CountAbove(v linalg.Vector, threshold float64) int {
	n := 0
	for _, x := range v {
		if x > threshold {
			n++
		}
	}
	return n
}

// RankCorrelation returns Spearman's rank correlation between the estimate
// and the truth — the paper notes most methods rank demand sizes very
// accurately even when relative errors are substantial (§5.3.6).
func RankCorrelation(estimate, truth linalg.Vector) float64 {
	if len(estimate) != len(truth) {
		panic("core: RankCorrelation length mismatch")
	}
	re := ranks(estimate)
	rt := ranks(truth)
	n := float64(len(re))
	if n < 2 {
		return 0
	}
	var d2 float64
	for i := range re {
		d := re[i] - rt[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

// ranks assigns average ranks (1-based) with ties averaged.
func ranks(v linalg.Vector) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
