package core

import (
	"testing"
)

func TestIterativeBayesianConverges(t *testing.T) {
	f := europe(t)
	prior := Gravity(f.inst)
	est, rounds, err := IterativeBayesian(f.inst, prior, DefaultIterativeBayesianConfig())
	if err != nil {
		t.Fatalf("IterativeBayesian: %v", err)
	}
	if rounds < 1 {
		t.Fatalf("rounds = %d", rounds)
	}
	base, err := Bayesian(f.inst, prior, 1000)
	if err != nil {
		t.Fatal(err)
	}
	mreIter := MRE(est, f.truth, f.thresh)
	mreBase := MRE(base, f.truth, f.thresh)
	t.Logf("iterative Bayes MRE %.3f after %d rounds (one-shot %.3f)", mreIter, rounds, mreBase)
	// Refinement must not be substantially worse than the one-shot solve.
	if mreIter > mreBase*1.25+0.02 {
		t.Errorf("iterative refinement degraded the estimate: %.3f vs %.3f", mreIter, mreBase)
	}
	for _, v := range est {
		if v < 0 {
			t.Fatal("negative estimate")
		}
	}
}

func TestIterativeBayesianFreshSnapshots(t *testing.T) {
	f := europe(t)
	cfg := DefaultIterativeBayesianConfig()
	cfg.Rounds = 3
	cfg.Snapshots = f.loadSeries(3)
	est, _, err := IterativeBayesian(f.inst, Gravity(f.inst), cfg)
	if err != nil {
		t.Fatalf("IterativeBayesian with snapshots: %v", err)
	}
	if MRE(est, f.truth, f.thresh) > 1 {
		t.Fatal("snapshot-fed refinement diverged")
	}
}

func TestIterativeBayesianRejectsZeroRounds(t *testing.T) {
	f := europe(t)
	cfg := DefaultIterativeBayesianConfig()
	cfg.Rounds = 0
	if _, _, err := IterativeBayesian(f.inst, Gravity(f.inst), cfg); err == nil {
		t.Fatal("expected error for zero rounds")
	}
}

func TestCaoRunsAndBeatsOrMatchesVardi(t *testing.T) {
	f := europe(t)
	loads := f.loadSeries(50)
	mean := f.series.MeanDemand(f.start, 50)
	th := ShareThreshold(mean, 0.9)
	cfg := DefaultCaoConfig()
	cfg.Phi = f.series.Cfg.Phi
	cfg.C = f.series.Cfg.C
	cao, err := Cao(f.rt, loads, cfg)
	if err != nil {
		t.Fatalf("Cao: %v", err)
	}
	for _, v := range cao {
		if v < 0 {
			t.Fatal("negative Cao estimate")
		}
	}
	vardi, err := Vardi(f.rt, loads, DefaultVardiConfig())
	if err != nil {
		t.Fatal(err)
	}
	mreCao, mreVardi := MRE(cao, mean, th), MRE(vardi, mean, th)
	t.Logf("Cao MRE %.3f vs Vardi %.3f", mreCao, mreVardi)
	// The generalized scaling law matches the generating process, so Cao
	// should not lose badly to strict-Poisson Vardi.
	if mreCao > mreVardi*1.5 {
		t.Errorf("Cao (%.3f) much worse than Vardi (%.3f)", mreCao, mreVardi)
	}
}

func TestCaoRejectsBadConfig(t *testing.T) {
	f := europe(t)
	if _, err := Cao(f.rt, f.loadSeries(1), DefaultCaoConfig()); err == nil {
		t.Fatal("expected error for single sample")
	}
	cfg := DefaultCaoConfig()
	cfg.Phi = 0
	if _, err := Cao(f.rt, f.loadSeries(5), cfg); err == nil {
		t.Fatal("expected error for phi=0")
	}
}
