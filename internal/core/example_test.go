package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/netsim"
)

// MRE is the paper's scoring metric (eq. 8): the mean of |ŝ−s|/s over
// the true demands above the threshold. Here only the two demands above
// 20 Mbps count, each off by 10%.
func ExampleMRE() {
	truth := linalg.Vector{100, 50, 10}
	estimate := linalg.Vector{110, 45, 30}
	fmt.Printf("%.3f\n", core.MRE(estimate, truth, 20))
	// Output: 0.100
}

// ShareThreshold picks the demand size above which approximately the
// given share of total traffic lives — the paper uses 90%, restricting
// eq. 8 to the demands that matter for link utilization (§5.3.1).
func ExampleShareThreshold() {
	truth := linalg.Vector{800, 100, 50, 30, 20}
	thresh := core.ShareThreshold(truth, 0.9)
	fmt.Printf("threshold %.0f Mbps keeps %d demands\n", thresh, core.CountAbove(truth, thresh))
	// Output: threshold 100 Mbps keeps 2 demands
}

// Gravity estimates the traffic matrix of eq. (5) from access-link loads
// alone. On the European scenario it is a usable prior but a mediocre
// estimator — exactly the paper's Fig. 7 observation.
func ExampleGravity() {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		panic(err)
	}
	truth, inst, thresh, err := sc.Snapshot(50) // the paper's 250-minute busy window
	if err != nil {
		panic(err)
	}
	estimate := core.Gravity(inst)
	fmt.Printf("gravity MRE over the large demands: %.2f\n", core.MRE(estimate, truth, thresh))
	// Output: gravity MRE over the large demands: 0.43
}
