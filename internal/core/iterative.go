package core

import (
	"fmt"

	"repro/internal/linalg"
)

// IterativeBayesianConfig tunes IterativeBayesian.
type IterativeBayesianConfig struct {
	Reg       float64         // regularization of each inner MAP solve
	Rounds    int             // maximum prior-refinement rounds
	Tol       float64         // relative-change stopping criterion between rounds
	Snapshots []linalg.Vector // optional: per-round load snapshots; nil reuses the instance loads
}

// DefaultIterativeBayesianConfig mirrors the setting used in the extension
// experiments.
func DefaultIterativeBayesianConfig() IterativeBayesianConfig {
	return IterativeBayesianConfig{Reg: 1000, Rounds: 8, Tol: 1e-4}
}

// IterativeBayesian implements the prior-refinement scheme of Vaton &
// Gravey ("Network tomography: an iterative Bayesian analysis", ITC 2003),
// which the paper cites as a refinement of the Bayesian approach (§2): the
// MAP estimate obtained from one snapshot of link loads becomes the prior
// for the next round, either on fresh snapshots (cfg.Snapshots) or on the
// same measurement until the fixed point is reached.
func IterativeBayesian(in *Instance, prior linalg.Vector, cfg IterativeBayesianConfig) (linalg.Vector, int, error) {
	if cfg.Rounds <= 0 {
		return nil, 0, fmt.Errorf("core: IterativeBayesian needs at least one round")
	}
	cur := prior.Clone()
	for round := 0; round < cfg.Rounds; round++ {
		inst := in
		if cfg.Snapshots != nil {
			loads := cfg.Snapshots[round%len(cfg.Snapshots)]
			var err error
			if inst, err = NewInstance(in.Rt, loads); err != nil {
				return nil, round, err
			}
		}
		next, err := Bayesian(inst, cur, cfg.Reg)
		if err != nil {
			return nil, round, err
		}
		diff := linalg.DiffNorm2(next, cur)
		norm := cur.Norm2() + 1e-30
		cur = next
		if diff/norm < cfg.Tol {
			return cur, round + 1, nil
		}
	}
	return cur, cfg.Rounds, nil
}
