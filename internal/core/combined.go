package core

import (
	"fmt"
	"sort"

	"repro/internal/linalg"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// MeasuredInstance returns a new Instance whose routing matrix has one
// extra identity row per directly measured demand, with the measured value
// appended to the loads. This is how §5.3.6 combines tomography with direct
// measurements: a measured demand becomes a hard linear constraint
// s_p = measured[p].
func MeasuredInstance(in *Instance, measured map[int]float64) *Instance {
	extra := sparse.NewBuilder(len(measured), in.NumPairs())
	loads := in.Loads.Clone()
	i := 0
	// Deterministic order for reproducibility.
	for pair := 0; pair < in.NumPairs(); pair++ {
		v, ok := measured[pair]
		if !ok {
			continue
		}
		extra.Add(i, pair, 1)
		loads = append(loads, v)
		i++
	}
	stacked := sparse.VStack(in.Rt.R, extra.Build())
	rt := *in.Rt
	rt.R = stacked
	return &Instance{Rt: &rt, Loads: loads}
}

// SelectionStrategy chooses which demands to measure directly.
type SelectionStrategy int

const (
	// GreedyMRE measures, at each step, the demand whose measurement most
	// reduces the MRE — the paper's exhaustive-search procedure (Fig. 16).
	GreedyMRE SelectionStrategy = iota
	// LargestDemand measures demands in decreasing size order — the
	// practical alternative §5.3.6 discusses (methods rank sizes well, so
	// the largest demands are identifiable without ground truth).
	LargestDemand
)

// DirectMeasurementCurve runs the §5.3.6 experiment: starting from the
// base estimator (entropy with the given prior and regularization), demands
// are measured one at a time according to the strategy, and the MRE over
// the large demands (above threshold) is recorded after each addition.
// Returned curve[i] is the MRE with i demands measured (curve[0] = no
// measurements). The candidate set is restricted to demands above the
// threshold for GreedyMRE — measuring a below-threshold demand cannot
// change the numerator of eq. (8) much, and it keeps the exhaustive search
// at the paper's scale.
func DirectMeasurementCurve(in *Instance, truth linalg.Vector, prior linalg.Vector,
	reg float64, threshold float64, steps int, strategy SelectionStrategy) ([]float64, []int, error) {

	// Warm-started entropy solves: successive problems differ by a single
	// extra constraint, so starting from the previous solution cuts the
	// iteration count dramatically. The solve budget is looser than the
	// headline estimators' because the greedy search only compares MREs to
	// about three decimals.
	const searchIter, searchTol = 6000, 1e-7
	var warm linalg.Vector
	estimate := func(measured map[int]float64) (linalg.Vector, error) {
		inst := in
		if len(measured) > 0 {
			inst = MeasuredInstance(in, measured)
		}
		s, res := solver.EntropyRegularizedFrom(inst.Rt.R, inst.Loads, prior, 1/reg, warm, searchIter, searchTol)
		if !s.AllFinite() {
			return nil, fmt.Errorf("core: entropy solve diverged (%d iters)", res.Iterations)
		}
		// Measured demands are known exactly; pin them (the solver drives
		// them to the constraint, pinning removes residual solver error
		// from the curve).
		for p, v := range measured {
			s[p] = v
		}
		return s, nil
	}

	var candidates []int
	for p, v := range truth {
		if v > threshold {
			candidates = append(candidates, p)
		}
	}
	if steps > len(candidates) {
		steps = len(candidates)
	}
	measured := make(map[int]float64)
	curve := make([]float64, 0, steps+1)
	order := make([]int, 0, steps)
	s, err := estimate(nil)
	if err != nil {
		return nil, nil, fmt.Errorf("core: direct-measurement base estimate: %w", err)
	}
	warm = s
	curve = append(curve, MRE(s, truth, threshold))

	// Greedy pruning: the MRE change from measuring demand p is dominated
	// by the removal of p's own relative-error term, so only the
	// maxGreedyCandidates worst-estimated demands need to be tried
	// exhaustively each step. This keeps the search at the paper's scale
	// on the 600-demand American network.
	const maxGreedyCandidates = 16
	for step := 0; step < steps; step++ {
		bestPair, bestMRE := -1, curve[len(curve)-1]+1
		switch strategy {
		case GreedyMRE:
			pool := greedyPool(s, truth, candidates, measured, maxGreedyCandidates)
			for _, cand := range pool {
				measured[cand] = truth[cand]
				est, err := estimate(measured)
				delete(measured, cand)
				if err != nil {
					return nil, nil, err
				}
				if m := MRE(est, truth, threshold); m < bestMRE {
					bestMRE, bestPair = m, cand
				}
			}
		case LargestDemand:
			var bestVal float64
			for _, cand := range candidates {
				if _, done := measured[cand]; done {
					continue
				}
				if truth[cand] > bestVal {
					bestVal, bestPair = truth[cand], cand
				}
			}
		default:
			return nil, nil, fmt.Errorf("core: unknown selection strategy %d", strategy)
		}
		if bestPair < 0 {
			break
		}
		measured[bestPair] = truth[bestPair]
		if s, err = estimate(measured); err != nil {
			return nil, nil, err
		}
		warm = s
		curve = append(curve, MRE(s, truth, threshold))
		order = append(order, bestPair)
	}
	return curve, order, nil
}

// greedyPool returns the unmeasured candidates with the largest current
// relative errors, capped at max.
func greedyPool(est, truth linalg.Vector, candidates []int, measured map[int]float64, max int) []int {
	type scored struct {
		p   int
		rel float64
	}
	var pool []scored
	for _, c := range candidates {
		if _, done := measured[c]; done {
			continue
		}
		rel := est[c] - truth[c]
		if rel < 0 {
			rel = -rel
		}
		pool = append(pool, scored{c, rel / truth[c]})
	}
	sort.Slice(pool, func(a, b int) bool { return pool[a].rel > pool[b].rel })
	if len(pool) > max {
		pool = pool[:max]
	}
	out := make([]int, len(pool))
	for i, s := range pool {
		out[i] = s.p
	}
	return out
}
