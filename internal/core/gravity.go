package core

import (
	"repro/internal/linalg"
	"repro/internal/topology"
)

// Gravity computes the simple gravity model estimate of eq. (5):
//
//	ŝ_nm = C·te(n)·tx(m),
//
// normalized so the estimated total equals the measured total network
// traffic. It uses only the access-link loads, never the interior links, so
// its estimate is generally not consistent with the interior measurements —
// which is why it serves as a prior for the regularized methods rather than
// as an estimator of its own.
func Gravity(in *Instance) linalg.Vector {
	te := in.IngressTotals()
	tx := in.EgressTotals()
	return gravityFrom(in, te, tx, nil)
}

// GeneralizedGravity is the peering-aware variant (§4.1): traffic between
// two peering PoPs is forced to zero, everything else follows the gravity
// form, renormalized to the measured total. peers[n] marks PoP n as a
// peering point.
func GeneralizedGravity(in *Instance, peers map[int]bool) linalg.Vector {
	te := in.IngressTotals()
	tx := in.EgressTotals()
	return gravityFrom(in, te, tx, peers)
}

func gravityFrom(in *Instance, te, tx linalg.Vector, peers map[int]bool) linalg.Vector {
	return GravityFromTotals(in.Rt.Net, te, tx, peers)
}

// GravityFromTotals computes the (generalized) gravity estimate of eq. (5)
// directly from per-PoP ingress totals te(n) and egress totals tx(m),
// without materializing an Instance. It is the kernel shared by Gravity /
// GeneralizedGravity and by internal/stream's incremental estimator, which
// maintains te and tx as running sums over a sliding window of collected
// intervals — sharing the arithmetic is what lets the incremental estimate
// match a batch solve bit-for-bit (up to the running sums themselves).
// peers may be nil.
func GravityFromTotals(net *topology.Network, te, tx linalg.Vector, peers map[int]bool) linalg.Vector {
	return GravityFromTotalsInto(nil, net, te, tx, peers)
}

// GravityFromTotalsInto is GravityFromTotals writing into dst, which is
// used when it has exactly NumPairs elements and reallocated otherwise
// (nil dst always allocates). The arithmetic — fill order, totals,
// normalization — is identical to GravityFromTotals, so reusing a buffer
// cannot perturb an estimate.
func GravityFromTotalsInto(dst linalg.Vector, net *topology.Network, te, tx linalg.Vector, peers map[int]bool) linalg.Vector {
	n := net.NumPoPs()
	s := dst
	if len(s) != net.NumPairs() {
		s = linalg.NewVector(net.NumPairs())
	} else {
		s.Zero()
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			if peers != nil && peers[src] && peers[dst] {
				continue // transit between peers is forced to zero
			}
			s[net.PairIndex(src, dst)] = te[src] * tx[dst]
		}
	}
	// Normalize the estimated total to the measured total traffic.
	tot := te.Sum()
	est := s.Sum()
	if est > 0 {
		s.Scale(tot / est)
	}
	return s
}

// GravityFanouts returns the fanout interpretation of the simple gravity
// model: α_nm = tx(m) / Σ tx — identical for every source PoP.
func GravityFanouts(in *Instance) linalg.Vector {
	net := in.Rt.Net
	tx := in.EgressTotals()
	tot := tx.Sum()
	a := linalg.NewVector(net.NumPairs())
	if tot <= 0 {
		return a
	}
	for src := 0; src < net.NumPoPs(); src++ {
		var rowTot float64
		for dst := 0; dst < net.NumPoPs(); dst++ {
			if dst != src {
				rowTot += tx[dst]
			}
		}
		for dst := 0; dst < net.NumPoPs(); dst++ {
			if dst != src && rowTot > 0 {
				a[net.PairIndex(src, dst)] = tx[dst] / rowTot
			}
		}
	}
	return a
}
