package core

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/solver"
)

// regIter and regTol are the iteration budget and relative-change tolerance
// shared by the regularized solvers. The objectives are strongly smooth and
// the problems small (≤ 600 variables), so these are generous.
const (
	regIter = 20000
	regTol  = 1e-9
)

// Bayesian computes the MAP estimate of eq. (7):
//
//	minimize ‖R·s − t‖² + σ⁻²·‖s − prior‖²   subject to s >= 0,
//
// where reg = σ² is the regularization parameter swept in Fig. 13: small
// values trust the prior, large values trust the link measurements. Solved
// with accelerated projected gradient (FISTA).
func Bayesian(in *Instance, prior linalg.Vector, reg float64) (linalg.Vector, error) {
	x, _, err := BayesianFrom(in, prior, reg, nil, regIter, regTol)
	return x, err
}

// BayesianFrom is Bayesian with an explicit starting iterate x0 (nil
// starts from the prior), an explicit iteration budget and stopping
// tolerance, and the consumed FISTA iteration count exposed. The MAP
// objective is strongly convex, so the solution is independent of x0;
// note that FISTA's momentum makes a warm start shorten the *distance*
// to the fixed point without reliably shortening the iteration count —
// streaming re-solves (internal/stream) get their warm-start iteration
// savings from the entropy and fanout solvers, and use this entry point
// for its budget control and telemetry.
func BayesianFrom(in *Instance, prior linalg.Vector, reg float64, x0 linalg.Vector, maxIter int, tol float64) (linalg.Vector, int, error) {
	if reg <= 0 {
		return nil, 0, fmt.Errorf("core: Bayesian needs positive regularization, got %v", reg)
	}
	x, res := solver.LeastSquaresNonneg(in.Rt.R, in.Loads, prior, 1/reg, x0, maxIter, tol)
	if !x.AllFinite() {
		return nil, 0, fmt.Errorf("core: Bayesian produced non-finite estimate (%d iters)", res.Iterations)
	}
	return x, res.Iterations, nil
}

// BayesianNNLS solves the same MAP problem exactly with Lawson–Hanson NNLS
// on the stacked system [R; σ⁻¹·I]·s = [t; σ⁻¹·prior]. Exponentially more
// expensive than FISTA on large networks; retained as the reference
// implementation for the solver-ablation benchmark.
func BayesianNNLS(in *Instance, prior linalg.Vector, reg float64) (linalg.Vector, error) {
	if reg <= 0 {
		return nil, fmt.Errorf("core: BayesianNNLS needs positive regularization, got %v", reg)
	}
	l, p := in.Rt.R.Rows(), in.Rt.R.Cols()
	w := 1 / math.Sqrt(reg)
	a := linalg.NewMatrix(l+p, p)
	dense := in.Rt.R.ToDense()
	copy(a.Data[:l*p], dense.Data)
	for i := 0; i < p; i++ {
		a.Set(l+i, i, w)
	}
	b := linalg.NewVector(l + p)
	copy(b[:l], in.Loads)
	for i := 0; i < p; i++ {
		b[l+i] = w * prior[i]
	}
	return solver.NNLS(a, b), nil
}

// Entropy computes the entropy-penalized estimate of eq. (6) (Zhang et
// al.'s tomogravity criterion):
//
//	minimize ‖R·s − t‖² + σ⁻²·D(s‖prior)   subject to s >= 0,
//
// with reg = σ² the regularization parameter. Solved by forward–backward
// splitting with an exact per-coordinate KL proximal step.
func Entropy(in *Instance, prior linalg.Vector, reg float64) (linalg.Vector, error) {
	x, _, err := EntropyBudget(in, prior, reg, regIter, regTol)
	return x, err
}

// EntropyBudget is Entropy with an explicit iteration budget and stopping
// tolerance, and the consumed iteration count exposed. Large-backbone
// evaluations (internal/scenario) trade the last digits of convergence
// for bounded runtime on 10k-demand instances; the defaults used by
// Entropy itself are regIter/regTol.
func EntropyBudget(in *Instance, prior linalg.Vector, reg float64, maxIter int, tol float64) (linalg.Vector, int, error) {
	return EntropyFrom(in, prior, reg, nil, maxIter, tol)
}

// EntropyFrom is EntropyBudget with an explicit starting iterate x0 (nil
// starts from the prior, as Entropy does). The objective is strictly
// convex on the prior's support, so the fixed point does not depend on
// x0 — only the iteration count does. Streaming re-solves over a slowly
// drifting window (internal/stream) warm-start each solve from the
// previous published estimate and converge in a fraction of the
// cold-start iterations.
func EntropyFrom(in *Instance, prior linalg.Vector, reg float64, x0 linalg.Vector, maxIter int, tol float64) (linalg.Vector, int, error) {
	if reg <= 0 {
		return nil, 0, fmt.Errorf("core: Entropy needs positive regularization, got %v", reg)
	}
	x, res := solver.EntropyRegularizedFrom(in.Rt.R, in.Loads, prior, 1/reg, x0, maxIter, tol)
	if !x.AllFinite() {
		return nil, 0, fmt.Errorf("core: Entropy produced non-finite estimate (%d iters)", res.Iterations)
	}
	return x, res.Iterations, nil
}

// Kruithof adjusts a prior traffic matrix to be consistent with the
// measured ingress and egress totals by classical iterative proportional
// fitting — the 1937 method, which uses only the marginals, not the
// interior links.
func Kruithof(in *Instance, prior linalg.Vector) (linalg.Vector, error) {
	net := in.Rt.Net
	n := net.NumPoPs()
	pm := linalg.NewMatrix(n, n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst {
				pm.Set(src, dst, prior[net.PairIndex(src, dst)])
			}
		}
	}
	te := in.IngressTotals()
	tx := in.EgressTotals()
	// Balance the marginal totals (they can disagree slightly when loads
	// come from noisy collection).
	if s := tx.Sum(); s > 0 {
		tx.Scale(te.Sum() / s)
	}
	bal, _, err := solver.KruithofBalance(pm, te, tx, 2000, 1e-10)
	if err != nil {
		return nil, fmt.Errorf("core: Kruithof: %w", err)
	}
	s := linalg.NewVector(net.NumPairs())
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst {
				s[net.PairIndex(src, dst)] = bal.At(src, dst)
			}
		}
	}
	return s, nil
}

// KruithofGeneral applies Krupp's extension of Kruithof's projection to the
// full linear system R·s = t: cyclic multiplicative scaling over every link
// constraint. It minimizes D(s‖prior) over the solution set when the system
// is consistent.
func KruithofGeneral(in *Instance, prior linalg.Vector, maxIter int) (linalg.Vector, solver.IPFResult) {
	return solver.IterativeScaling(in.Rt.R, in.Loads, prior, maxIter, 1e-9)
}
