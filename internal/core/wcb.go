package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/solver"
)

// Bounds holds per-demand worst-case bounds (§4.3.1): for each pair p, the
// minimum and maximum of s_p over the polytope {s >= 0 : R·s = t}.
type Bounds struct {
	Lower, Upper linalg.Vector
	// Pivots is the total number of simplex pivots spent, a measure of the
	// warm-start effectiveness.
	Pivots int
}

// Midpoint returns (lower+upper)/2, the paper's worst-case-bound prior
// (Fig. 9), which it found to beat the gravity prior on its data.
func (b *Bounds) Midpoint() linalg.Vector {
	m := linalg.NewVector(len(b.Lower))
	for i := range m {
		m[i] = 0.5 * (b.Lower[i] + b.Upper[i])
	}
	return m
}

// Width returns upper − lower, the per-demand uncertainty.
func (b *Bounds) Width() linalg.Vector {
	w := linalg.NewVector(len(b.Lower))
	for i := range w {
		w[i] = b.Upper[i] - b.Lower[i]
	}
	return w
}

// WorstCaseBounds solves the 2·P linear programs
//
//	max / min  s_p   subject to  R·s = t,  s >= 0
//
// sharing a single warm-started simplex instance across all objectives:
// phase 1 runs once and each successive objective re-optimizes from the
// previous optimal basis, which cuts the pivot count by an order of
// magnitude versus cold starts (see BenchmarkAblationWCBWarmStart).
func WorstCaseBounds(in *Instance) (*Bounds, error) {
	return worstCaseBounds(in, true)
}

// WorstCaseBoundsCold recreates the LP from scratch for every objective.
// Functionally identical to WorstCaseBounds; exists for the warm-start
// ablation.
func WorstCaseBoundsCold(in *Instance) (*Bounds, error) {
	return worstCaseBounds(in, false)
}

func worstCaseBounds(in *Instance, warm bool) (*Bounds, error) {
	dense := in.Rt.R.ToDense()
	p := in.NumPairs()
	b := &Bounds{Lower: linalg.NewVector(p), Upper: linalg.NewVector(p)}
	lp, err := solver.NewLP(dense, in.Loads)
	if err != nil {
		return nil, fmt.Errorf("core: worst-case bounds: %w", err)
	}
	c := linalg.NewVector(p)
	coldPivots := 0
	for pair := 0; pair < p; pair++ {
		if !warm {
			coldPivots += lp.Pivots()
			if lp, err = solver.NewLP(dense, in.Loads); err != nil {
				return nil, fmt.Errorf("core: worst-case bounds: %w", err)
			}
		}
		c.Zero()
		c[pair] = 1
		_, hi, err := lp.Maximize(c)
		if err != nil {
			if errors.Is(err, solver.ErrUnbounded) {
				hi = math.Inf(1)
			} else {
				return nil, fmt.Errorf("core: upper bound for pair %d: %w", pair, err)
			}
		}
		_, lo, err := lp.Minimize(c)
		if err != nil {
			return nil, fmt.Errorf("core: lower bound for pair %d: %w", pair, err)
		}
		if lo < 0 {
			lo = 0 // numerical dust
		}
		b.Lower[pair], b.Upper[pair] = lo, hi
	}
	if warm {
		b.Pivots = lp.Pivots()
	} else {
		b.Pivots = coldPivots + lp.Pivots()
	}
	return b, nil
}
