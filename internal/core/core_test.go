package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/linalg"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// fixture bundles a network, its routing, a generated series and the
// busy-window snapshot used across the estimation tests.
type fixture struct {
	net    *topology.Network
	rt     *topology.Routing
	series *traffic.Series
	start  int           // busy window start
	truth  linalg.Vector // busy-window mean demands
	inst   *Instance     // loads = R·truth
	thresh float64       // 90%-of-traffic threshold
}

var (
	euOnce sync.Once
	euFix  *fixture
	usOnce sync.Once
	usFix  *fixture
)

func buildFixture(t testing.TB, net *topology.Network, cfg traffic.Config) *fixture {
	t.Helper()
	rt, err := net.Route()
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	series, err := traffic.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	start := series.BusyWindow(50)
	truth := series.MeanDemand(start, 50)
	inst, err := NewInstance(rt, rt.LinkLoads(truth))
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return &fixture{
		net: net, rt: rt, series: series, start: start, truth: truth,
		inst: inst, thresh: ShareThreshold(truth, 0.9),
	}
}

func europe(t testing.TB) *fixture {
	euOnce.Do(func() { euFix = buildFixture(t, topology.Europe(1), traffic.Europe(1)) })
	return euFix
}

func america(t testing.TB) *fixture {
	usOnce.Do(func() { usFix = buildFixture(t, topology.America(1), traffic.America(1)) })
	return usFix
}

// loadSeries returns the consistent link-load time series of the busy
// window: t[k] = R·s[k].
func (f *fixture) loadSeries(k int) []linalg.Vector {
	out := make([]linalg.Vector, k)
	for i := 0; i < k; i++ {
		out[i] = f.rt.LinkLoads(f.series.Demands[f.start+i])
	}
	return out
}

func TestMREBasics(t *testing.T) {
	truth := linalg.Vector{10, 20, 1}
	est := linalg.Vector{11, 18, 100}
	got := MRE(est, truth, 5) // only the first two count
	want := (0.1 + 0.1) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MRE = %v, want %v", got, want)
	}
	if MRE(truth, truth, 0) != 0 {
		t.Fatal("MRE of exact estimate should be 0")
	}
	if MRE(est, truth, 1000) != 0 {
		t.Fatal("MRE with nothing above threshold should be 0")
	}
}

func TestShareThreshold(t *testing.T) {
	truth := linalg.Vector{50, 30, 10, 5, 5}
	th := ShareThreshold(truth, 0.9)
	// 50+30+10 = 90 of 100: threshold keeps the top three.
	if n := CountAbove(truth, th); n != 3 {
		t.Fatalf("threshold %v keeps %d demands, want 3", th, n)
	}
	if ShareThreshold(linalg.Vector{0, 0}, 0.9) != 0 {
		t.Fatal("all-zero demands should give 0 threshold")
	}
}

func TestShareThresholdPaperCounts(t *testing.T) {
	// The paper's 90% criterion selects 29 EU and 155 US demands; our
	// synthetic networks should land in the same regime.
	eu, us := europe(t), america(t)
	nEU := CountAbove(eu.truth, eu.thresh)
	nUS := CountAbove(us.truth, us.thresh)
	if nEU < 10 || nEU > 60 {
		t.Errorf("EU: %d demands carry 90%%, paper has 29", nEU)
	}
	if nUS < 60 || nUS > 300 {
		t.Errorf("US: %d demands carry 90%%, paper has 155", nUS)
	}
}

func TestRankCorrelation(t *testing.T) {
	a := linalg.Vector{1, 2, 3, 4}
	if r := RankCorrelation(a, a); math.Abs(r-1) > 1e-12 {
		t.Fatalf("self correlation = %v", r)
	}
	b := linalg.Vector{4, 3, 2, 1}
	if r := RankCorrelation(a, b); math.Abs(r+1) > 1e-12 {
		t.Fatalf("reversed correlation = %v", r)
	}
}

func TestInstanceTotals(t *testing.T) {
	f := europe(t)
	te := f.inst.IngressTotals()
	tx := f.inst.EgressTotals()
	// Ingress totals must equal per-source demand sums.
	for src := 0; src < f.net.NumPoPs(); src++ {
		var want float64
		for dst := 0; dst < f.net.NumPoPs(); dst++ {
			if dst != src {
				want += f.truth[f.net.PairIndex(src, dst)]
			}
		}
		if math.Abs(te[src]-want) > 1e-6*(1+want) {
			t.Fatalf("te[%d] = %v, want %v", src, te[src], want)
		}
	}
	if math.Abs(te.Sum()-tx.Sum()) > 1e-6*te.Sum() {
		t.Fatalf("ingress total %v != egress total %v", te.Sum(), tx.Sum())
	}
	if math.Abs(f.inst.TotalTraffic()-f.truth.Sum()) > 1e-6*f.truth.Sum() {
		t.Fatal("TotalTraffic mismatch")
	}
}

func TestNewInstanceRejectsBadLoads(t *testing.T) {
	f := europe(t)
	if _, err := NewInstance(f.rt, linalg.NewVector(3)); err == nil {
		t.Fatal("expected error for wrong load length")
	}
}

func TestGravityPreservesTotalsAndMarginals(t *testing.T) {
	f := europe(t)
	g := Gravity(f.inst)
	if math.Abs(g.Sum()-f.truth.Sum()) > 1e-6*f.truth.Sum() {
		t.Fatalf("gravity total %v != true total %v", g.Sum(), f.truth.Sum())
	}
	for _, v := range g {
		if v < 0 {
			t.Fatal("negative gravity estimate")
		}
	}
}

func TestGravityBetterInEuropeThanAmerica(t *testing.T) {
	// Paper: gravity MRE ≈ 0.26 EU vs ≈ 0.8 US (Fig. 7, Table 2) because
	// American PoPs have dominating destinations.
	eu, us := europe(t), america(t)
	mreEU := MRE(Gravity(eu.inst), eu.truth, eu.thresh)
	mreUS := MRE(Gravity(us.inst), us.truth, us.thresh)
	t.Logf("gravity MRE: EU=%.3f US=%.3f (paper: 0.26 / 0.78)", mreEU, mreUS)
	if mreEU > 0.5 {
		t.Errorf("EU gravity MRE %v too large", mreEU)
	}
	if mreUS < 1.3*mreEU {
		t.Errorf("US gravity MRE %v should clearly exceed EU %v", mreUS, mreEU)
	}
}

func TestGeneralizedGravityZerosPeers(t *testing.T) {
	f := europe(t)
	peers := map[int]bool{0: true, 1: true}
	g := GeneralizedGravity(f.inst, peers)
	if g[f.net.PairIndex(0, 1)] != 0 || g[f.net.PairIndex(1, 0)] != 0 {
		t.Fatal("peer-to-peer demand not zeroed")
	}
	if g[f.net.PairIndex(0, 2)] == 0 {
		t.Fatal("peer-to-access demand wrongly zeroed")
	}
	if math.Abs(g.Sum()-f.truth.Sum()) > 1e-6*f.truth.Sum() {
		t.Fatal("generalized gravity not renormalized")
	}
}

func TestGravityFanoutsSumToOne(t *testing.T) {
	f := europe(t)
	a := GravityFanouts(f.inst)
	for src := 0; src < f.net.NumPoPs(); src++ {
		var sum float64
		for dst := 0; dst < f.net.NumPoPs(); dst++ {
			if dst != src {
				sum += a[f.net.PairIndex(src, dst)]
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("source %d fanouts sum to %v", src, sum)
		}
	}
}

func TestKruithofMatchesMarginals(t *testing.T) {
	f := europe(t)
	prior := Gravity(f.inst)
	s, err := Kruithof(f.inst, prior)
	if err != nil {
		t.Fatalf("Kruithof: %v", err)
	}
	te := f.inst.IngressTotals()
	for src := 0; src < f.net.NumPoPs(); src++ {
		var sum float64
		for dst := 0; dst < f.net.NumPoPs(); dst++ {
			if dst != src {
				sum += s[f.net.PairIndex(src, dst)]
			}
		}
		if math.Abs(sum-te[src]) > 1e-4*(1+te[src]) {
			t.Fatalf("row %d sum %v, want %v", src, sum, te[src])
		}
	}
}

func TestKruithofGeneralReachesConsistency(t *testing.T) {
	f := europe(t)
	prior := Gravity(f.inst)
	s, res := KruithofGeneral(f.inst, prior, 3000)
	if !res.Converged {
		t.Logf("KruithofGeneral max error %v after %d iters", res.MaxError, res.Iterations)
	}
	loads := f.rt.LinkLoads(s)
	for l := range loads {
		if f.inst.Loads[l] > 0 {
			rel := math.Abs(loads[l]-f.inst.Loads[l]) / f.inst.Loads[l]
			if rel > 0.01 {
				t.Fatalf("link %d load off by %.2f%%", l, 100*rel)
			}
		}
	}
	// Consistency should also improve the estimate versus the raw prior.
	if m, mp := MRE(s, f.truth, f.thresh), MRE(prior, f.truth, f.thresh); m > mp {
		t.Errorf("KruithofGeneral MRE %v worse than prior %v", m, mp)
	}
}

func TestBayesianImprovesOnPrior(t *testing.T) {
	for _, f := range []*fixture{europe(t), america(t)} {
		prior := Gravity(f.inst)
		est, err := Bayesian(f.inst, prior, 1000)
		if err != nil {
			t.Fatalf("Bayesian: %v", err)
		}
		mre := MRE(est, f.truth, f.thresh)
		mrePrior := MRE(prior, f.truth, f.thresh)
		t.Logf("%s: Bayes MRE %.3f vs gravity prior %.3f", f.net.Name, mre, mrePrior)
		if mre >= mrePrior {
			t.Errorf("%s: Bayesian (%.3f) did not beat its prior (%.3f)", f.net.Name, mre, mrePrior)
		}
	}
}

func TestEntropyImprovesOnPrior(t *testing.T) {
	for _, f := range []*fixture{europe(t), america(t)} {
		prior := Gravity(f.inst)
		est, err := Entropy(f.inst, prior, 1000)
		if err != nil {
			t.Fatalf("Entropy: %v", err)
		}
		mre := MRE(est, f.truth, f.thresh)
		mrePrior := MRE(prior, f.truth, f.thresh)
		t.Logf("%s: Entropy MRE %.3f vs gravity prior %.3f", f.net.Name, mre, mrePrior)
		if mre >= mrePrior {
			t.Errorf("%s: Entropy (%.3f) did not beat its prior (%.3f)", f.net.Name, mre, mrePrior)
		}
	}
}

func TestRegularizationSweepShape(t *testing.T) {
	// Fig. 13: small regularization ≈ prior MRE; large regularization
	// should do better on consistent data.
	f := europe(t)
	prior := Gravity(f.inst)
	mrePrior := MRE(prior, f.truth, f.thresh)
	smallEst, err := Bayesian(f.inst, prior, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	largeEst, err := Bayesian(f.inst, prior, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	small := MRE(smallEst, f.truth, f.thresh)
	large := MRE(largeEst, f.truth, f.thresh)
	if math.Abs(small-mrePrior) > 0.05 {
		t.Errorf("tiny regularization MRE %v should sit near prior MRE %v", small, mrePrior)
	}
	if large >= small {
		t.Errorf("large-reg MRE %v should beat small-reg %v", large, small)
	}
}

func TestBayesianRejectsBadReg(t *testing.T) {
	f := europe(t)
	if _, err := Bayesian(f.inst, Gravity(f.inst), 0); err == nil {
		t.Fatal("expected error for reg=0")
	}
	if _, err := Entropy(f.inst, Gravity(f.inst), -1); err == nil {
		t.Fatal("expected error for negative reg")
	}
}

func TestBayesianNNLSAgreesWithFISTA(t *testing.T) {
	f := europe(t)
	prior := Gravity(f.inst)
	exact, err := BayesianNNLS(f.inst, prior, 100)
	if err != nil {
		t.Fatalf("BayesianNNLS: %v", err)
	}
	approx, err := Bayesian(f.inst, prior, 100)
	if err != nil {
		t.Fatalf("Bayesian: %v", err)
	}
	// Compare objectives — the quadratic is strongly convex so both should
	// reach the same optimum.
	obj := func(s linalg.Vector) float64 {
		r := linalg.Sub(linalg.NewVector(len(f.inst.Loads)), f.rt.LinkLoads(s), f.inst.Loads)
		d := linalg.Sub(linalg.NewVector(len(s)), s, prior)
		return r.Norm2()*r.Norm2() + d.Norm2()*d.Norm2()/100
	}
	oe, oa := obj(exact), obj(approx)
	if oa > oe*(1+1e-3)+1e-6 {
		t.Fatalf("FISTA objective %v worse than NNLS %v", oa, oe)
	}
}
