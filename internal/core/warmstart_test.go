// Warm-start equivalence and efficiency tests: the From variants
// (EntropyFrom, BayesianFrom, VardiFrom, EstimateFanoutsFrom) must reach
// the same fixed point as their cold-started counterparts on the same
// window — the objectives are convex, so the start only changes the path
// — and, for the solvers the streaming engine leans on (entropy,
// fanout), a warm start taken from the solution of an adjacent
// (one-interval-shifted) window must consume measurably fewer
// iterations. This is the property internal/stream's re-solve pipeline
// rests on.
package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/netsim"
)

// warmWindows builds two overlapping busy-window instances of the
// European scenario, one interval apart — the steady-state drift a
// streaming engine sees between consecutive re-solves.
func warmWindows(t *testing.T) (in0, in1 *core.Instance, sc *netsim.Scenario, loads0, loads1 []linalg.Vector) {
	t.Helper()
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	const k = 6
	start := sc.BusyWindow(k)
	if start+k+1 > len(sc.Series.Demands) {
		start--
	}
	loads0 = sc.LoadSeries(start, k)
	loads1 = sc.LoadSeries(start+1, k)
	mean := func(loads []linalg.Vector) linalg.Vector {
		m := linalg.NewVector(len(loads[0]))
		for _, l := range loads {
			linalg.Axpy(1, l, m)
		}
		m.Scale(1 / float64(len(loads)))
		return m
	}
	if in0, err = core.NewInstance(sc.Rt, mean(loads0)); err != nil {
		t.Fatal(err)
	}
	if in1, err = core.NewInstance(sc.Rt, mean(loads1)); err != nil {
		t.Fatal(err)
	}
	return in0, in1, sc, loads0, loads1
}

// relL1 returns ‖a − b‖₁ / ‖b‖₁.
func relL1(a, b linalg.Vector) float64 {
	var num, den float64
	for i := range a {
		num += math.Abs(a[i] - b[i])
		den += math.Abs(b[i])
	}
	return num / den
}

// TestEntropyWarmStartEquivalentAndFaster pins both halves of the warm
// start contract for the entropy solver at the streaming tolerance:
// same fixed point (within the solver's sublinear tail — the KL-prox
// iteration crawls along the routing matrix's nullspace, so two starts
// park within a couple percent of each other, far closer than the
// estimates are to the truth), and at least 2x fewer iterations when
// started from the adjacent window's solution. This is the ratio the
// BenchmarkStreamResolveCold/Warm CI gate tracks.
func TestEntropyWarmStartEquivalentAndFaster(t *testing.T) {
	in0, in1, _, _, _ := warmWindows(t)
	const reg, maxIter, tol = 1000, 20000, 1e-6
	prev, _, err := core.EntropyFrom(in0, core.Gravity(in0), reg, nil, maxIter, tol)
	if err != nil {
		t.Fatal(err)
	}
	prior1 := core.Gravity(in1)
	cold, coldIters, err := core.EntropyFrom(in1, prior1, reg, nil, maxIter, tol)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmIters, err := core.EntropyFrom(in1, prior1, reg, prev, maxIter, tol)
	if err != nil {
		t.Fatal(err)
	}
	if d := relL1(warm, cold); d > 0.05 {
		t.Fatalf("warm and cold entropy solves disagree: rel L1 %g", d)
	}
	if warmIters*2 > coldIters {
		t.Fatalf("warm start consumed %d iterations vs %d cold — want at least 2x fewer", warmIters, coldIters)
	}
}

// TestBayesianWarmStartEquivalent checks BayesianFrom's equivalence: the
// strongly convex MAP problem lands on the same estimate from any start.
// No iteration assertion — FISTA's momentum makes warm-start iteration
// counts a wash (see BayesianFrom's doc comment), which is exactly why
// the streaming engine's headline warm-start ratio is measured on the
// entropy solver.
func TestBayesianWarmStartEquivalent(t *testing.T) {
	in0, in1, _, _, _ := warmWindows(t)
	const reg, maxIter, tol = 1000, 20000, 1e-9
	prev, prevIters, err := core.BayesianFrom(in0, core.Gravity(in0), reg, nil, maxIter, tol)
	if err != nil {
		t.Fatal(err)
	}
	if prevIters <= 0 {
		t.Fatalf("iteration count not reported (%d)", prevIters)
	}
	prior1 := core.Gravity(in1)
	cold, _, err := core.BayesianFrom(in1, prior1, reg, nil, maxIter, tol)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := core.BayesianFrom(in1, prior1, reg, prev, maxIter, tol)
	if err != nil {
		t.Fatal(err)
	}
	if d := relL1(warm, cold); d > 1e-4 {
		t.Fatalf("warm and cold Bayesian solves disagree: rel L1 %g", d)
	}
}

// TestVardiWarmStartEquivalent checks VardiFrom against the neutral
// start on the shifted window: same estimate within solver tolerance,
// and no more iterations from the adjacent solution than from the
// neutral spread.
func TestVardiWarmStartEquivalent(t *testing.T) {
	_, _, sc, loads0, loads1 := warmWindows(t)
	cfg := core.DefaultVardiConfig()
	prev, _, err := core.VardiFrom(sc.Rt, loads0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, coldIters, err := core.VardiFrom(sc.Rt, loads1, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmIters, err := core.VardiFrom(sc.Rt, loads1, cfg, prev)
	if err != nil {
		t.Fatal(err)
	}
	if d := relL1(warm, cold); d > 1e-3 {
		t.Fatalf("warm and cold Vardi solves disagree: rel L1 %g", d)
	}
	if warmIters > coldIters {
		t.Fatalf("warm start consumed %d iterations vs %d cold — want no more", warmIters, coldIters)
	}
	if _, _, err := core.VardiFrom(sc.Rt, loads1, cfg, linalg.NewVector(3)); err == nil {
		t.Fatal("mis-sized warm start accepted")
	}
}

// TestFanoutWarmStartEquivalent checks EstimateFanoutsFrom: warm-started
// from the previous window's alpha it must land on the same fanouts and
// demands with fewer FISTA iterations (the slowly-drifting-fanout
// premise of the paper's Figs. 4–5).
func TestFanoutWarmStartEquivalent(t *testing.T) {
	_, _, sc, loads0, loads1 := warmWindows(t)
	cfg := core.DefaultFanoutConfig()
	prev, err := core.EstimateFanoutsFrom(sc.Rt, loads0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.EstimateFanoutsFrom(sc.Rt, loads1, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := core.EstimateFanoutsFrom(sc.Rt, loads1, cfg, prev.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if d := relL1(warm.Alpha, cold.Alpha); d > 1e-4 {
		t.Fatalf("warm and cold fanout solves disagree: rel L1 %g", d)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("warm start consumed %d iterations vs %d cold — want fewer", warm.Iterations, cold.Iterations)
	}
	if _, err := core.EstimateFanoutsFrom(sc.Rt, loads1, cfg, linalg.NewVector(2)); err == nil {
		t.Fatal("mis-sized fanout warm start accepted")
	}
}
