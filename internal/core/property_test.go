// Property-based invariant tests: every estimator is run on a family of
// seeded random instances (generated backbones of several sizes) and
// checked against the invariants its derivation promises — non-negative
// finite estimates, consistency with the observations it uses, gravity's
// scale equivariance, fanout rows on the unit simplex, worst-case bounds
// that bracket the truth. Unlike the golden experiment outputs these hold
// for *every* instance, so they catch regressions the two paper networks
// happen to miss.
package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

// instances yields the seeded random test universe: three backbone sizes
// times two seeds. Kept small so the full estimator battery stays fast
// under -race.
func instances(t *testing.T) []*scenario.Instance {
	t.Helper()
	var out []*scenario.Instance
	for _, spec := range []string{"scaled:6", "scaled:9", "scaled:12"} {
		for _, seed := range []int64{1, 2} {
			in, err := scenario.Build(spec, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec, seed, err)
			}
			out = append(out, in)
		}
	}
	return out
}

func checkNonNegFinite(t *testing.T, tag string, v linalg.Vector) {
	t.Helper()
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("%s: entry %d is %v", tag, i, x)
		}
		if x < 0 {
			t.Fatalf("%s: entry %d is negative (%v)", tag, i, x)
		}
	}
}

// relLinkErr measures how consistent an estimate is with the measured
// loads: ‖R·ŝ − t‖₂ / ‖t‖₂.
func relLinkErr(in *scenario.Instance, est linalg.Vector) float64 {
	pred := in.Sc.Rt.LinkLoads(est)
	var num, den float64
	for i, tl := range in.Inst.Loads {
		d := pred[i] - tl
		num += d * d
		den += tl * tl
	}
	return math.Sqrt(num / den)
}

// TestPropertyGravity: non-negative, reproduces the measured total, and
// is scale-equivariant — scaling every load by c scales the estimate by
// exactly c (the gravity formula is 1-homogeneous after normalization).
func TestPropertyGravity(t *testing.T) {
	for _, in := range instances(t) {
		g := core.Gravity(in.Inst)
		checkNonNegFinite(t, in.Spec+"/gravity", g)
		if got, want := g.Sum(), in.Inst.TotalTraffic(); math.Abs(got-want) > 1e-9*want {
			t.Fatalf("%s: gravity total %v != measured total %v", in.Spec, got, want)
		}
		const c = 3.25
		scaled := in.Inst.Loads.Clone()
		scaled.Scale(c)
		instScaled, err := core.NewInstance(in.Sc.Rt, scaled)
		if err != nil {
			t.Fatal(err)
		}
		gs := core.Gravity(instScaled)
		for i := range g {
			if math.Abs(gs[i]-c*g[i]) > 1e-9*(1+c*g[i]) {
				t.Fatalf("%s: gravity not scale-equivariant at %d: %v vs %v", in.Spec, i, gs[i], c*g[i])
			}
		}
		// The generalized variant with no peers must equal plain gravity;
		// with peers, peer-to-peer demands must be exactly zero.
		gg := core.GeneralizedGravity(in.Inst, nil)
		for i := range g {
			if gg[i] != g[i] {
				t.Fatalf("%s: GeneralizedGravity(nil) differs from Gravity at %d", in.Spec, i)
			}
		}
		peers := map[int]bool{0: true, 1: true}
		gp := core.GeneralizedGravity(in.Inst, peers)
		checkNonNegFinite(t, in.Spec+"/generalized-gravity", gp)
		net := in.Sc.Net
		if v := gp[net.PairIndex(0, 1)]; v != 0 {
			t.Fatalf("%s: peer-to-peer demand %v, want 0", in.Spec, v)
		}
	}
}

// TestPropertyFanoutRows: every fanout interpretation — the gravity
// fanouts, the generator's ground-truth fanouts and the constant-fanout
// estimate — puts each source's row on the unit simplex.
func TestPropertyFanoutRows(t *testing.T) {
	for _, in := range instances(t) {
		net := in.Sc.Net
		n := net.NumPoPs()
		rowSums := func(a linalg.Vector) []float64 {
			sums := make([]float64, n)
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if dst != src {
						sums[src] += a[net.PairIndex(src, dst)]
					}
				}
			}
			return sums
		}
		gf := core.GravityFanouts(in.Inst)
		checkNonNegFinite(t, in.Spec+"/gravity-fanouts", gf)
		for src, s := range rowSums(gf) {
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("%s: gravity fanout row %d sums to %v", in.Spec, src, s)
			}
		}
		tf := traffic.FanoutsOf(n, in.Truth)
		for src, s := range rowSums(tf) {
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("%s: truth fanout row %d sums to %v", in.Spec, src, s)
			}
		}
		// The simplex projection runs every iteration, so the row-sum
		// invariant holds at any budget — no need for full convergence.
		cfg := core.DefaultFanoutConfig()
		cfg.MaxIter = 2000
		est, err := core.EstimateFanouts(in.Sc.Rt, in.Loads[:10], cfg)
		if err != nil {
			t.Fatalf("%s: %v", in.Spec, err)
		}
		checkNonNegFinite(t, in.Spec+"/fanout-estimate", est.Alpha)
		checkNonNegFinite(t, in.Spec+"/fanout-demand", est.MeanDemand)
		for src, s := range rowSums(est.Alpha) {
			if math.Abs(s-1) > 1e-6 {
				t.Fatalf("%s: estimated fanout row %d sums to %v", in.Spec, src, s)
			}
		}
	}
}

// TestPropertyRegularized: the entropy and Bayesian estimates are
// non-negative and, on a clean consistent instance with the paper's
// regularization, reproduce the measured link loads to within a few
// percent — the defining property separating them from the pure prior.
func TestPropertyRegularized(t *testing.T) {
	for _, in := range instances(t) {
		prior := core.Gravity(in.Inst)
		ent, err := core.Entropy(in.Inst, prior, 1000)
		if err != nil {
			t.Fatalf("%s: %v", in.Spec, err)
		}
		checkNonNegFinite(t, in.Spec+"/entropy", ent)
		if e := relLinkErr(in, ent); e > 0.05 {
			t.Fatalf("%s: entropy link-load error %.4f > 5%%", in.Spec, e)
		}
		bay, err := core.Bayesian(in.Inst, prior, 1000)
		if err != nil {
			t.Fatalf("%s: %v", in.Spec, err)
		}
		checkNonNegFinite(t, in.Spec+"/bayes", bay)
		if e := relLinkErr(in, bay); e > 0.05 {
			t.Fatalf("%s: bayes link-load error %.4f > 5%%", in.Spec, e)
		}
		// Both must fit the interior observations better than the prior
		// they started from (gravity ignores interior links entirely).
		if pe := relLinkErr(in, prior); relLinkErr(in, ent) > pe || relLinkErr(in, bay) > pe {
			t.Fatalf("%s: regularized estimate fits loads worse than its prior", in.Spec)
		}
	}
}

// TestPropertyKruithof: the projection reproduces the ingress/egress
// marginal totals it balances against.
func TestPropertyKruithof(t *testing.T) {
	for _, in := range instances(t) {
		prior := core.Gravity(in.Inst)
		est, err := core.Kruithof(in.Inst, prior)
		if err != nil {
			t.Fatalf("%s: %v", in.Spec, err)
		}
		checkNonNegFinite(t, in.Spec+"/kruithof", est)
		net := in.Sc.Net
		te := in.Inst.IngressTotals()
		tx := in.Inst.EgressTotals()
		n := net.NumPoPs()
		for src := 0; src < n; src++ {
			var row float64
			for dst := 0; dst < n; dst++ {
				if dst != src {
					row += est[net.PairIndex(src, dst)]
				}
			}
			if math.Abs(row-te[src]) > 1e-6*(1+te[src]) {
				t.Fatalf("%s: kruithof row %d total %v, want te %v", in.Spec, src, row, te[src])
			}
		}
		for dst := 0; dst < n; dst++ {
			var col float64
			for src := 0; src < n; src++ {
				if src != dst {
					col += est[net.PairIndex(src, dst)]
				}
			}
			if math.Abs(col-tx[dst]) > 1e-6*(1+tx[dst]) {
				t.Fatalf("%s: kruithof col %d total %v, want tx %v", in.Spec, dst, col, tx[dst])
			}
		}
		// Krupp's generalization enforces every link constraint, so on a
		// consistent instance it must fit the loads tightly.
		gen, _ := core.KruithofGeneral(in.Inst, prior, 3000)
		checkNonNegFinite(t, in.Spec+"/kruithof-general", gen)
		if e := relLinkErr(in, gen); e > 0.02 {
			t.Fatalf("%s: iterative scaling link error %.4f > 2%%", in.Spec, e)
		}
	}
}

// TestPropertyVardi: the second-moment estimate is non-negative and
// finite under the paper's configuration, and with the covariance weight
// σ⁻² set to zero the method degenerates to non-negative least squares on
// the mean loads — which must fit a consistent system tightly. (Under the
// full configuration the misestimated covariance rows legitimately pull
// the first moments off, the paper's own diagnosis in Fig. 12, so no
// tight moment-fit invariant exists there.)
func TestPropertyVardi(t *testing.T) {
	for _, in := range instances(t) {
		lam, iters, err := core.VardiIters(in.Sc.Rt, in.Loads, core.DefaultVardiConfig())
		if err != nil {
			t.Fatalf("%s: %v", in.Spec, err)
		}
		if iters <= 0 {
			t.Fatalf("%s: Vardi reported %d iterations", in.Spec, iters)
		}
		checkNonNegFinite(t, in.Spec+"/vardi", lam)

		first, _, err := core.VardiIters(in.Sc.Rt, in.Loads,
			core.VardiConfig{SigmaInv2: 0, MaxIter: 30000, Tol: 1e-9})
		if err != nil {
			t.Fatalf("%s: %v", in.Spec, err)
		}
		checkNonNegFinite(t, in.Spec+"/vardi-firstmoment", first)
		pred := in.Sc.Rt.LinkLoads(first)
		mean := linalg.NewVector(len(in.Loads[0]))
		for _, l := range in.Loads {
			linalg.Axpy(1, l, mean)
		}
		mean.Scale(1 / float64(len(in.Loads)))
		var num, den float64
		for i := range mean {
			d := pred[i] - mean[i]
			num += d * d
			den += mean[i] * mean[i]
		}
		if e := math.Sqrt(num / den); e > 0.02 {
			t.Fatalf("%s: first-moment-only Vardi link error %.4f > 2%%", in.Spec, e)
		}
	}
}

// TestPropertyWorstCaseBounds: on a consistent instance the truth is a
// feasible point of {s >= 0 : Rs = t}, so the per-demand LP bounds must
// bracket it; the midpoint prior inherits the bracket.
func TestPropertyWorstCaseBounds(t *testing.T) {
	for _, in := range instances(t) {
		b, err := core.WorstCaseBounds(in.Inst)
		if err != nil {
			t.Fatalf("%s: %v", in.Spec, err)
		}
		checkNonNegFinite(t, in.Spec+"/wcb-lower", b.Lower)
		tol := 1e-6 * (1 + in.Truth.Sum())
		mid := b.Midpoint()
		for p := range in.Truth {
			if b.Lower[p] > in.Truth[p]+tol {
				t.Fatalf("%s: lower bound %v above truth %v (pair %d)", in.Spec, b.Lower[p], in.Truth[p], p)
			}
			if b.Upper[p] < in.Truth[p]-tol {
				t.Fatalf("%s: upper bound %v below truth %v (pair %d)", in.Spec, b.Upper[p], in.Truth[p], p)
			}
			if mid[p] < b.Lower[p]-tol || mid[p] > b.Upper[p]+tol {
				t.Fatalf("%s: midpoint outside bounds (pair %d)", in.Spec, p)
			}
		}
	}
}

// TestPropertyCitedMethods: the Vaton iterative-Bayesian refinement and
// Cao's scaling-law tomography obey the shared invariants too.
func TestPropertyCitedMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("cited-method property battery is slow under -race")
	}
	for _, in := range instances(t) {
		prior := core.Gravity(in.Inst)
		iter, rounds, err := core.IterativeBayesian(in.Inst, prior, core.DefaultIterativeBayesianConfig())
		if err != nil {
			t.Fatalf("%s: %v", in.Spec, err)
		}
		if rounds < 1 {
			t.Fatalf("%s: IterativeBayesian ran %d rounds", in.Spec, rounds)
		}
		checkNonNegFinite(t, in.Spec+"/iterative-bayes", iter)
		cao, err := core.Cao(in.Sc.Rt, in.Loads, core.DefaultCaoConfig())
		if err != nil {
			t.Fatalf("%s: %v", in.Spec, err)
		}
		checkNonNegFinite(t, in.Spec+"/cao", cao)
	}
}
