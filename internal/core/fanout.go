package core

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/solver"
	"repro/internal/topology"
)

// FanoutConfig tunes the constant-fanout estimator (§4.2.4), the paper's
// novel method.
type FanoutConfig struct {
	MaxIter int
	Tol     float64
	// Unconstrained drops the per-source simplex constraint (Σ_m α_nm = 1,
	// α >= 0), solving the plain least-squares problem instead. Kept for
	// the constraint-ablation benchmark; the constrained form is the
	// paper's.
	Unconstrained bool
}

// DefaultFanoutConfig returns the settings used in the paper reproduction.
func DefaultFanoutConfig() FanoutConfig {
	return FanoutConfig{MaxIter: 20000, Tol: 1e-9}
}

// FanoutEstimate holds the result of the constant-fanout estimation.
type FanoutEstimate struct {
	// Alpha[p] is the estimated fanout of demand p: the fraction of its
	// source PoP's ingress traffic destined to its destination PoP.
	Alpha linalg.Vector
	// MeanDemand[p] is the estimated average demand over the window:
	// mean_k( te(src(p))[k] · α_p ).
	MeanDemand linalg.Vector
	// Iterations used by the projected-gradient solve.
	Iterations int
}

// EstimateFanouts solves the paper's constant-fanout problem over a window
// of link-load measurements:
//
//	minimize Σ_k ‖R·S[k]·α − t[k]‖²
//	subject to Σ_m α_nm = 1 for every source n,  α >= 0
//
// where S[k] = diag(te(src(p))[k]) scales each pair's fanout by its source
// PoP's total ingress traffic during interval k (read off the ingress
// access-link loads). The constraint set is a product of per-source
// simplices; the problem is solved with accelerated projected gradient.
func EstimateFanouts(rt *topology.Routing, loads []linalg.Vector, cfg FanoutConfig) (*FanoutEstimate, error) {
	return EstimateFanoutsFrom(rt, loads, cfg, nil)
}

// EstimateFanoutsFrom is EstimateFanouts with an explicit starting fanout
// iterate alpha0 (nil starts from uniform fanouts). The paper's Figs. 4–5
// point is precisely that fanouts drift slowly, so the previous window's
// solved alpha is an excellent warm start for the next one
// (internal/stream); the constrained objective's solution set does not
// depend on the start.
func EstimateFanoutsFrom(rt *topology.Routing, loads []linalg.Vector, cfg FanoutConfig, alpha0 linalg.Vector) (*FanoutEstimate, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("core: EstimateFanouts needs at least one sample")
	}
	net := rt.Net
	p := net.NumPairs()
	n := net.NumPoPs()
	k := len(loads)

	// Per-interval source scalings te(src(p))[k].
	scales := make([]linalg.Vector, k)
	for i, t := range loads {
		if len(t) != rt.R.Rows() {
			return nil, fmt.Errorf("core: sample %d has %d loads, want %d", i, len(t), rt.R.Rows())
		}
		sc := linalg.NewVector(p)
		for pair := 0; pair < p; pair++ {
			src, _ := net.PairFromIndex(pair)
			sc[pair] = t[rt.IngressRow(src)]
		}
		scales[i] = sc
	}
	// Per-source index groups for the simplex projection.
	groups := make([][]int, n)
	for pair := 0; pair < p; pair++ {
		src, _ := net.PairFromIndex(pair)
		groups[src] = append(groups[src], pair)
	}

	// Gradient of Σ_k ‖R·S_k·α − t_k‖²: Σ_k 2·S_k·Rᵀ·(R·S_k·α − t_k).
	scaled := linalg.NewVector(p)
	resid := linalg.NewVector(rt.R.Rows())
	back := linalg.NewVector(p)
	grad := func(dst, a linalg.Vector) {
		dst.Zero()
		for i := 0; i < k; i++ {
			sc := scales[i]
			for j := range scaled {
				scaled[j] = sc[j] * a[j]
			}
			rt.R.MulVec(resid, scaled)
			linalg.Sub(resid, resid, loads[i])
			rt.R.MulVecT(back, resid)
			for j := range dst {
				dst[j] += 2 * sc[j] * back[j]
			}
		}
	}
	// Lipschitz constant of the summed quadratic: Σ_k ‖R·S_k‖² bounded by
	// ‖R‖²·Σ_k max(S_k)².
	rNorm := solver.OperatorNormSq(rt.R)
	var lip float64
	for i := 0; i < k; i++ {
		mx, _ := scales[i].Max()
		lip += 2 * rNorm * mx * mx
	}
	project := func(a linalg.Vector) {
		for _, g := range groups {
			projectGroupSimplex(a, g)
		}
	}
	if cfg.Unconstrained {
		project = func(a linalg.Vector) { a.ClampNonNegative() }
	}
	var alpha linalg.Vector
	if alpha0 != nil {
		if len(alpha0) != p {
			return nil, fmt.Errorf("core: fanout warm start has %d entries, want %d", len(alpha0), p)
		}
		alpha = alpha0.Clone()
		project(alpha) // re-project: the caller's iterate may be slightly off the simplex
	} else {
		// Start from uniform fanouts.
		alpha = linalg.NewVector(p)
		alpha.Fill(1 / float64(n-1))
	}
	alpha, res := solver.FISTA(alpha, grad, lip, project, cfg.MaxIter, cfg.Tol)

	// Demand reconstruction: average of S_k·α over the window.
	mean := linalg.NewVector(p)
	for i := 0; i < k; i++ {
		for j := range mean {
			mean[j] += scales[i][j] * alpha[j]
		}
	}
	mean.Scale(1 / float64(k))
	return &FanoutEstimate{Alpha: alpha, MeanDemand: mean, Iterations: res.Iterations}, nil
}

// projectGroupSimplex projects the coordinates of a listed in group onto
// the unit simplex, in place.
func projectGroupSimplex(a linalg.Vector, group []int) {
	tmp := make([]float64, len(group))
	for i, j := range group {
		tmp[i] = a[j]
	}
	solver.ProjectSimplex(tmp, 1)
	for i, j := range group {
		a[j] = tmp[i]
	}
}
