// Package te implements the traffic-engineering consumer that motivates
// traffic-matrix estimation in the paper's introduction: link-utilization
// analysis and what-if failure evaluation. The paper chooses its MRE metric
// precisely because "it is most important to have accurate estimation of
// the largest demands since the small demands have little influence on the
// link utilizations in the backbone" (§5.3.1) — this package closes that
// loop by measuring how wrong TE conclusions get when they are drawn from
// an estimated rather than the true matrix.
package te

import (
	"fmt"
	"sort"

	"repro/internal/linalg"
	"repro/internal/topology"
)

// Utilizations returns the per-link utilization (load / capacity) of the
// interior links under demand vector s and the given routing.
func Utilizations(rt *topology.Routing, s linalg.Vector) linalg.Vector {
	loads := rt.LinkLoads(s)
	u := linalg.NewVector(len(rt.Net.Links))
	for _, l := range rt.Net.Links {
		if l.Kind != topology.Interior || l.CapacityMbps <= 0 {
			continue
		}
		u[l.ID] = loads[l.ID] / l.CapacityMbps
	}
	return u
}

// MaxUtilization returns the highest interior-link utilization and the link
// that attains it (-1 if there are no interior links).
func MaxUtilization(rt *topology.Routing, s linalg.Vector) (float64, int) {
	u := Utilizations(rt, s)
	best, at := 0.0, -1
	for _, l := range rt.Net.Links {
		if l.Kind == topology.Interior && u[l.ID] >= best {
			best, at = u[l.ID], l.ID
		}
	}
	return best, at
}

// TopLinks returns the k most-utilized interior link IDs, descending.
func TopLinks(rt *topology.Routing, s linalg.Vector, k int) []int {
	u := Utilizations(rt, s)
	var ids []int
	for _, l := range rt.Net.Links {
		if l.Kind == topology.Interior {
			ids = append(ids, l.ID)
		}
	}
	sort.SliceStable(ids, func(a, b int) bool { return u[ids[a]] > u[ids[b]] })
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// DecisionReport compares the TE view of the network under the true and an
// estimated traffic matrix.
type DecisionReport struct {
	// MaxUtilTrue/MaxUtilEst are the maximum interior-link utilizations.
	MaxUtilTrue, MaxUtilEst float64
	// MaxUtilRelErr is |est − true| / true of the maximum utilization —
	// the headline number a capacity planner would act on.
	MaxUtilRelErr float64
	// HotSetOverlap is the fraction of the true top-k hottest links that
	// the estimate also places in its top k.
	HotSetOverlap float64
	// MeanLinkRelErr averages the per-link relative load error over
	// interior links with nonzero true load.
	MeanLinkRelErr float64
}

// String renders the report compactly.
func (r DecisionReport) String() string {
	return fmt.Sprintf("max-util true %.3f est %.3f (rel err %.1f%%), hot-set overlap %.0f%%, mean link err %.1f%%",
		r.MaxUtilTrue, r.MaxUtilEst, 100*r.MaxUtilRelErr, 100*r.HotSetOverlap, 100*r.MeanLinkRelErr)
}

// CompareDecisions evaluates how TE decisions drawn from the estimate
// deviate from those drawn from the truth, using the top-k hot set.
func CompareDecisions(rt *topology.Routing, truth, estimate linalg.Vector, k int) DecisionReport {
	var r DecisionReport
	r.MaxUtilTrue, _ = MaxUtilization(rt, truth)
	r.MaxUtilEst, _ = MaxUtilization(rt, estimate)
	if r.MaxUtilTrue > 0 {
		d := r.MaxUtilEst - r.MaxUtilTrue
		if d < 0 {
			d = -d
		}
		r.MaxUtilRelErr = d / r.MaxUtilTrue
	}
	trueHot := TopLinks(rt, truth, k)
	estHot := TopLinks(rt, estimate, k)
	in := make(map[int]bool, len(estHot))
	for _, id := range estHot {
		in[id] = true
	}
	matched := 0
	for _, id := range trueHot {
		if in[id] {
			matched++
		}
	}
	if len(trueHot) > 0 {
		r.HotSetOverlap = float64(matched) / float64(len(trueHot))
	}
	lt := rt.LinkLoads(truth)
	le := rt.LinkLoads(estimate)
	var sum float64
	var n int
	for _, l := range rt.Net.Links {
		if l.Kind != topology.Interior || lt[l.ID] <= 0 {
			continue
		}
		d := le[l.ID] - lt[l.ID]
		if d < 0 {
			d = -d
		}
		sum += d / lt[l.ID]
		n++
	}
	if n > 0 {
		r.MeanLinkRelErr = sum / float64(n)
	}
	return r
}

// FailureImpact simulates the failure of an interior link adjacency (the
// link and its reverse), reroutes all demands on the surviving topology,
// and reports the new maximum utilization under the demand vector s. This
// is the failure-analysis task the paper lists among TE applications.
func FailureImpact(net *topology.Network, s linalg.Vector, linkID int) (float64, error) {
	failed := net.Links[linkID]
	if failed.Kind != topology.Interior {
		return 0, fmt.Errorf("te: link %d is not interior", linkID)
	}
	survivor := topology.RemoveAdjacency(net, linkID)
	rt, err := survivor.Route()
	if err != nil {
		return 0, fmt.Errorf("te: rerouting after failing link %d: %w", linkID, err)
	}
	max, _ := MaxUtilization(rt, s)
	return max, nil
}

// WorstCaseFailure tries failing every interior adjacency and returns the
// adjacency whose failure yields the highest post-failure utilization.
func WorstCaseFailure(net *topology.Network, s linalg.Vector) (worstLink int, maxUtil float64, err error) {
	worstLink = -1
	seen := map[[2]int]bool{}
	for _, l := range net.Links {
		if l.Kind != topology.Interior {
			continue
		}
		key := [2]int{l.Src, l.Dst}
		if l.Src > l.Dst {
			key = [2]int{l.Dst, l.Src}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		u, ferr := FailureImpact(net, s, l.ID)
		if ferr != nil {
			// A failure that partitions the network is itself the worst
			// case; report it with infinite utilization semantics skipped —
			// generated backbones are 2-connected via the ring, so treat as
			// an error instead.
			return -1, 0, ferr
		}
		if u > maxUtil {
			maxUtil, worstLink = u, l.ID
		}
	}
	return worstLink, maxUtil, nil
}
