package te

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func scenario(t *testing.T) (*topology.Network, *topology.Routing, linalg.Vector) {
	t.Helper()
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatalf("BuildEurope: %v", err)
	}
	truth, _, _, err := sc.Snapshot(50)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return sc.Net, sc.Rt, truth
}

func TestUtilizationsMatchLoads(t *testing.T) {
	net, rt, s := scenario(t)
	u := Utilizations(rt, s)
	loads := rt.LinkLoads(s)
	for _, l := range net.Links {
		switch l.Kind {
		case topology.Interior:
			want := loads[l.ID] / l.CapacityMbps
			if math.Abs(u[l.ID]-want) > 1e-12 {
				t.Fatalf("link %d utilization %v, want %v", l.ID, u[l.ID], want)
			}
		default:
			if u[l.ID] != 0 {
				t.Fatalf("access link %d has interior utilization %v", l.ID, u[l.ID])
			}
		}
	}
}

func TestMaxUtilization(t *testing.T) {
	_, rt, s := scenario(t)
	max, at := MaxUtilization(rt, s)
	if at < 0 || max <= 0 {
		t.Fatalf("MaxUtilization = %v at %d", max, at)
	}
	u := Utilizations(rt, s)
	for i, v := range u {
		if v > max+1e-12 {
			t.Fatalf("link %d utilization %v exceeds reported max %v", i, v, max)
		}
	}
	if math.Abs(u[at]-max) > 1e-12 {
		t.Fatal("reported argmax does not attain the max")
	}
}

func TestTopLinksSortedAndInterior(t *testing.T) {
	net, rt, s := scenario(t)
	u := Utilizations(rt, s)
	top := TopLinks(rt, s, 5)
	if len(top) != 5 {
		t.Fatalf("TopLinks returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if u[top[i]] > u[top[i-1]]+1e-12 {
			t.Fatal("TopLinks not sorted")
		}
	}
	for _, id := range top {
		if net.Links[id].Kind != topology.Interior {
			t.Fatal("TopLinks returned a non-interior link")
		}
	}
	if got := TopLinks(rt, s, 10_000); len(got) != net.InteriorLinks() {
		t.Fatalf("k clamp failed: %d", len(got))
	}
}

func TestCompareDecisionsPerfectEstimate(t *testing.T) {
	_, rt, s := scenario(t)
	rep := CompareDecisions(rt, s, s, 10)
	if rep.MaxUtilRelErr != 0 || rep.HotSetOverlap != 1 || rep.MeanLinkRelErr != 0 {
		t.Fatalf("perfect estimate should score perfectly: %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestCompareDecisionsScaledEstimate(t *testing.T) {
	_, rt, s := scenario(t)
	est := s.Clone()
	est.Scale(1.2)
	rep := CompareDecisions(rt, s, est, 10)
	if math.Abs(rep.MaxUtilRelErr-0.2) > 1e-9 {
		t.Fatalf("uniform 20%% overestimate should give 20%% max-util error, got %v", rep.MaxUtilRelErr)
	}
	if rep.HotSetOverlap != 1 {
		t.Fatalf("scaling must not change the hot set: %v", rep.HotSetOverlap)
	}
	if math.Abs(rep.MeanLinkRelErr-0.2) > 1e-9 {
		t.Fatalf("mean link error %v, want 0.2", rep.MeanLinkRelErr)
	}
}

func TestFailureImpactIncreasesUtilization(t *testing.T) {
	net, rt, s := scenario(t)
	base, _ := MaxUtilization(rt, s)
	// Fail the most utilized adjacency: rerouting must not reduce the max
	// utilization below the unfailed network's.
	top := TopLinks(rt, s, 1)
	after, err := FailureImpact(net, s, top[0])
	if err != nil {
		t.Fatalf("FailureImpact: %v", err)
	}
	if after < base-1e-9 {
		t.Fatalf("failing the hottest link reduced max utilization: %v -> %v", base, after)
	}
}

func TestFailureImpactRejectsAccessLink(t *testing.T) {
	net, _, s := scenario(t)
	var access int
	for _, l := range net.Links {
		if l.Kind == topology.Ingress {
			access = l.ID
			break
		}
	}
	if _, err := FailureImpact(net, s, access); err == nil {
		t.Fatal("expected error for non-interior link")
	}
}

func TestWorstCaseFailure(t *testing.T) {
	net, rt, s := scenario(t)
	worst, maxU, err := WorstCaseFailure(net, s)
	if err != nil {
		t.Fatalf("WorstCaseFailure: %v", err)
	}
	if worst < 0 {
		t.Fatal("no worst link found")
	}
	base, _ := MaxUtilization(rt, s)
	if maxU < base-1e-9 {
		t.Fatalf("worst-case failure utilization %v below baseline %v", maxU, base)
	}
	// Verify the reported link is actually the argmax over a few samples.
	u, err := FailureImpact(net, s, worst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-maxU) > 1e-9 {
		t.Fatalf("reported worst utilization %v, recomputed %v", maxU, u)
	}
}

func TestRemoveAdjacencyKeepsValidNetwork(t *testing.T) {
	net, _, _ := scenario(t)
	before := net.InteriorLinks()
	removed := topology.RemoveAdjacency(net, 0)
	if removed.InteriorLinks() != before-2 {
		t.Fatalf("interior links %d, want %d", removed.InteriorLinks(), before-2)
	}
	if _, err := removed.Route(); err != nil {
		t.Fatalf("routing after removal: %v", err)
	}
	// Original untouched.
	if net.InteriorLinks() != before {
		t.Fatal("RemoveAdjacency mutated its input")
	}
}
