package te

import (
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/topology"
)

// handNet assembles a network from explicit parts: one router per PoP,
// bidirectional interior adjacencies with the given metric, and one
// ingress/egress access link per PoP — the shapes the seeded generator
// cannot produce (bridges, 2-PoP networks, exact metric ties).
func handNet(t *testing.T, popNames []string, adjacencies [][2]int, metric float64) *topology.Network {
	t.Helper()
	var pops []topology.PoP
	var routers []topology.Router
	for i, name := range popNames {
		pops = append(pops, topology.PoP{ID: i, Name: name, Routers: []int{i}})
		routers = append(routers, topology.Router{ID: i, PoP: i, Name: name + "-cr1"})
	}
	var links []topology.Link
	for _, adj := range adjacencies {
		for _, pair := range [2][2]int{adj, {adj[1], adj[0]}} {
			links = append(links, topology.Link{
				ID: len(links), Kind: topology.Interior,
				Src: pair[0], Dst: pair[1],
				CapacityMbps: 1000, Metric: metric,
			})
		}
	}
	for i := range pops {
		links = append(links, topology.Link{
			ID: len(links), Kind: topology.Ingress, Src: i, Dst: i,
			CapacityMbps: 2000,
		})
		links = append(links, topology.Link{
			ID: len(links), Kind: topology.Egress, Src: i, Dst: i,
			CapacityMbps: 2000,
		})
	}
	net, err := topology.FromParts("hand", pops, routers, links)
	if err != nil {
		t.Fatalf("FromParts: %v", err)
	}
	return net
}

// uniformDemands returns a demand vector with every ordered pair at v.
func uniformDemands(net *topology.Network, v float64) linalg.Vector {
	s := linalg.NewVector(net.NumPairs())
	s.Fill(v)
	return s
}

// TestFailureImpactBridgeLink: failing a bridge adjacency partitions the
// network; FailureImpact must surface the rerouting error instead of a
// utilization.
func TestFailureImpactBridgeLink(t *testing.T) {
	// Barbell: triangle {0,1,2} — bridge 2–3 — triangle {3,4,5}.
	net := handNet(t, []string{"A", "B", "C", "D", "E", "F"},
		[][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}}, 10)
	s := uniformDemands(net, 5)

	// Sanity: the intact network routes and the bridge carries all
	// cross-side traffic.
	rt, err := net.Route()
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	var bridgeID = -1
	for _, l := range net.Links {
		if l.Kind == topology.Interior && l.Src == 2 && l.Dst == 3 {
			bridgeID = l.ID
		}
	}
	if bridgeID < 0 {
		t.Fatal("no bridge link found")
	}
	loads := rt.LinkLoads(s)
	if want := 9 * 5.0; loads[bridgeID] != want { // 3 sources x 3 dests across the bridge
		t.Fatalf("bridge load %v, want %v", loads[bridgeID], want)
	}

	// Failing a triangle edge reroutes fine.
	var triangleID = -1
	for _, l := range net.Links {
		if l.Kind == topology.Interior && l.Src == 0 && l.Dst == 1 {
			triangleID = l.ID
		}
	}
	if _, err := FailureImpact(net, s, triangleID); err != nil {
		t.Fatalf("triangle-edge failure should reroute, got %v", err)
	}

	// Failing the bridge partitions: error, not a number.
	if _, err := FailureImpact(net, s, bridgeID); err == nil {
		t.Fatal("bridge failure must return a disconnection error")
	} else if !strings.Contains(err.Error(), "rerouting") {
		t.Fatalf("error %q does not mention rerouting", err)
	}

	// Failing an access link is rejected up front.
	var accessID = -1
	for _, l := range net.Links {
		if l.Kind == topology.Ingress {
			accessID = l.ID
			break
		}
	}
	if _, err := FailureImpact(net, s, accessID); err == nil || !strings.Contains(err.Error(), "not interior") {
		t.Fatalf("access-link failure must be rejected, got %v", err)
	}

	// WorstCaseFailure sweeps all adjacencies including the bridge, so on
	// this network it must propagate the disconnection error.
	if link, _, err := WorstCaseFailure(net, s); err == nil {
		t.Fatalf("WorstCaseFailure on a bridged network returned link %d, want error", link)
	}
}

// TestTopLinksTiedUtilizations: on a fully symmetric network every
// interior link carries identical load; TopLinks must break ties
// deterministically (ascending link ID, from the stable sort) and respect
// every k, including k beyond the link count.
func TestTopLinksTiedUtilizations(t *testing.T) {
	// Triangle with equal metrics and uniform demands: all six directed
	// interior links carry exactly one demand each.
	net := handNet(t, []string{"A", "B", "C"}, [][2]int{{0, 1}, {1, 2}, {0, 2}}, 10)
	rt, err := net.Route()
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	s := uniformDemands(net, 7)
	u := Utilizations(rt, s)
	var interior []int
	for _, l := range net.Links {
		if l.Kind == topology.Interior {
			interior = append(interior, l.ID)
			if u[l.ID] != u[interior[0]] {
				t.Fatalf("asymmetric utilization: link %d %v vs link %d %v",
					l.ID, u[l.ID], interior[0], u[interior[0]])
			}
		}
	}
	got := TopLinks(rt, s, len(interior))
	for i, id := range got {
		if id != interior[i] {
			t.Fatalf("tied TopLinks order %v, want ascending IDs %v", got, interior)
		}
	}
	// k larger than the interior set: clamped, not padded.
	if all := TopLinks(rt, s, 100); len(all) != len(interior) {
		t.Fatalf("TopLinks(k=100) returned %d links, want %d", len(all), len(interior))
	}
	if none := TopLinks(rt, s, 0); len(none) != 0 {
		t.Fatalf("TopLinks(k=0) returned %v", none)
	}
	// MaxUtilization must agree with the tied top link.
	max, at := MaxUtilization(rt, s)
	if max != u[got[0]] {
		t.Fatalf("MaxUtilization %v, want %v", max, u[got[0]])
	}
	if at < 0 || net.Links[at].Kind != topology.Interior {
		t.Fatalf("MaxUtilization link %d not interior", at)
	}
}

// TestWorstCaseFailureTwoPoPs: a 2-PoP network has exactly one adjacency;
// failing it disconnects the pair, so the sweep must report the error
// path rather than inventing a survivor.
func TestWorstCaseFailureTwoPoPs(t *testing.T) {
	net := handNet(t, []string{"A", "B"}, [][2]int{{0, 1}}, 10)
	rt, err := net.Route()
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	s := uniformDemands(net, 100)
	// Both demands cross the single adjacency: utilization 100/1000 each
	// direction.
	max, _ := MaxUtilization(rt, s)
	if max != 0.1 {
		t.Fatalf("max utilization %v, want 0.1", max)
	}
	link, util, err := WorstCaseFailure(net, s)
	if err == nil {
		t.Fatalf("WorstCaseFailure on 2 PoPs returned link %d util %v, want error", link, util)
	}
	if link != -1 {
		t.Fatalf("error path must return link -1, got %d", link)
	}
}
