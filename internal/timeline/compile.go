package timeline

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"repro/internal/collector"
	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Epoch is one topology regime of a compiled timeline: the network and
// routing in force from interval At until the next epoch begins. Index
// is the tag the engine reports as Snapshot.TopologyEpoch; epoch 0 is
// the base scenario unchanged.
type Epoch struct {
	Index int
	At    int
	Net   *topology.Network
	Rt    *topology.Routing
	// Failed names the adjacencies down in this epoch, in failure order,
	// as canonical "RouterA-RouterB" strings.
	Failed []string
}

// Step is one compiled interval: the scripted true demand, the epoch it
// is measured under, and whether the collection missed it entirely (an
// outage window).
type Step struct {
	Interval int
	Epoch    int
	Missing  bool
	Demand   linalg.Vector
}

// Timeline is a compiled script: the scripted demand series plus the
// epoch sequence, everything a replay feed and an evaluation harness
// need. Compilation is pure — same scenario and script always yield the
// same timeline.
type Timeline struct {
	Script *Script
	Base   *netsim.Scenario
	// Start is the base-series interval the timeline's interval 0 maps to.
	Start  int
	Epochs []Epoch
	Steps  []Step
}

// adjacency is a bidirectional interior link pair, canonicalized by
// router ID order.
type adjacency struct {
	a, b int
	name string
}

// resolveAdjacency maps a fail_link/restore spec — an interior link ID
// of the base network or "RouterA-RouterB" — to its canonical adjacency.
func resolveAdjacency(net *topology.Network, spec string) (adjacency, error) {
	canon := func(src, dst int) adjacency {
		if src > dst {
			src, dst = dst, src
		}
		return adjacency{a: src, b: dst, name: net.Routers[src].Name + "-" + net.Routers[dst].Name}
	}
	if id, err := strconv.Atoi(spec); err == nil {
		if id < 0 || id >= net.NumLinks() || net.Links[id].Kind != topology.Interior {
			return adjacency{}, fmt.Errorf("link %d is not an interior link of the base network", id)
		}
		return canon(net.Links[id].Src, net.Links[id].Dst), nil
	}
	names := func(src, dst int) (string, string) {
		return net.Routers[src].Name, net.Routers[dst].Name
	}
	for _, l := range net.Links {
		if l.Kind != topology.Interior {
			continue
		}
		a, b := names(l.Src, l.Dst)
		if spec == a+"-"+b || spec == b+"-"+a {
			return canon(l.Src, l.Dst), nil
		}
	}
	return adjacency{}, fmt.Errorf("unknown link %q", spec)
}

// resolvePoP maps a PoP name or decimal index to its index.
func resolvePoP(net *topology.Network, name string) (int, error) {
	for i, p := range net.PoPs {
		if p.Name == name {
			return i, nil
		}
	}
	if i, err := strconv.Atoi(name); err == nil && i >= 0 && i < net.NumPoPs() {
		return i, nil
	}
	return 0, fmt.Errorf("unknown PoP %q", name)
}

// routeFailed derives the network and routing with the given adjacency
// set removed from the base, under the base scenario's routing model.
// An empty set returns the base's own network and routing object, so a
// full restoration swaps back to the byte-identical matrix.
func routeFailed(sc *netsim.Scenario, failed []adjacency) (*topology.Network, *topology.Routing, error) {
	if len(failed) == 0 {
		return sc.Net, sc.Rt, nil
	}
	net := sc.Net
	for _, adj := range failed {
		id := -1
		for _, l := range net.Links {
			if l.Kind == topology.Interior &&
				((l.Src == adj.a && l.Dst == adj.b) || (l.Src == adj.b && l.Dst == adj.a)) {
				id = l.ID
				break
			}
		}
		if id < 0 {
			return nil, nil, fmt.Errorf("adjacency %s vanished", adj.name)
		}
		net = topology.RemoveAdjacency(net, id)
	}
	var rt *topology.Routing
	var err error
	if sc.Model == netsim.RoutingECMP {
		rt, err = net.RouteECMP()
	} else {
		rt, err = net.Route()
	}
	if err != nil {
		return nil, nil, err
	}
	return net, rt, nil
}

// Compile materializes a script against its base scenario: the demand
// series starting at base-series interval start (cycling modulo the
// series length), with flash crowds and diurnal cycles applied, outage
// windows marked missing, and one epoch per fail_link/restore event.
func Compile(sc *netsim.Scenario, start int, s *Script) (*Timeline, error) {
	n := len(sc.Series.Demands)
	if n == 0 {
		return nil, fmt.Errorf("timeline: base scenario has an empty demand series")
	}
	if start < 0 || start >= n {
		return nil, fmt.Errorf("timeline: start interval %d outside the base series [0, %d)", start, n)
	}

	type crowd struct {
		pair      int
		factor    float64
		at, until int
	}
	type cycle struct {
		period    int
		amplitude float64
		at        int
	}
	var crowds []crowd
	var cycles []cycle
	var outages []*Outage
	var outageAt []int

	var failed []adjacency
	epochs := []Epoch{{Index: 0, At: 0, Net: sc.Net, Rt: sc.Rt}}
	lastTopoAt := -1
	for _, ev := range s.Events {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("timeline: event %d (at %d): %s", ev.Index, ev.At, fmt.Sprintf(format, args...))
		}
		switch ev.Kind {
		case "flash_crowd":
			src, err := resolvePoP(sc.Net, ev.FlashCrowd.Src)
			if err != nil {
				return nil, fail("%v", err)
			}
			dst, err := resolvePoP(sc.Net, ev.FlashCrowd.Dst)
			if err != nil {
				return nil, fail("%v", err)
			}
			if src == dst {
				return nil, fail("flash_crowd pair is the diagonal (%s to itself)", ev.FlashCrowd.Src)
			}
			crowds = append(crowds, crowd{
				pair: sc.Net.PairIndex(src, dst), factor: ev.FlashCrowd.Factor,
				at: ev.At, until: ev.FlashCrowd.Until,
			})
		case "fail_link", "restore":
			adj, err := resolveAdjacency(sc.Net, ev.Link)
			if err != nil {
				return nil, fail("%v", err)
			}
			if ev.At <= lastTopoAt {
				return nil, fail("second topology change at or before the previous one (at %d); the engine swaps at most once per interval", lastTopoAt)
			}
			pos := -1
			for i, f := range failed {
				if f == adj {
					pos = i
					break
				}
			}
			if ev.Kind == "fail_link" {
				if pos >= 0 {
					return nil, fail("link %s is already failed", adj.name)
				}
				failed = append(failed, adj)
			} else {
				if pos < 0 {
					return nil, fail("restore of link %s, which is not failed", adj.name)
				}
				failed = append(failed[:pos:pos], failed[pos+1:]...)
			}
			net, rt, err := routeFailed(sc, failed)
			if err != nil {
				return nil, fail("%v", err)
			}
			names := make([]string, len(failed))
			for i, f := range failed {
				names[i] = f.name
			}
			epochs = append(epochs, Epoch{Index: len(epochs), At: ev.At, Net: net, Rt: rt, Failed: names})
			lastTopoAt = ev.At
		case "diurnal":
			cycles = append(cycles, cycle{period: ev.Diurnal.Period, amplitude: ev.Diurnal.Amplitude, at: ev.At})
		case "outage":
			outages = append(outages, ev.Outage)
			outageAt = append(outageAt, ev.At)
		}
	}

	steps := make([]Step, s.Intervals)
	epochIdx := 0
	for t := 0; t < s.Intervals; t++ {
		for epochIdx+1 < len(epochs) && epochs[epochIdx+1].At <= t {
			epochIdx++
		}
		d := sc.Series.Demands[(start+t)%n].Clone()
		for _, c := range crowds {
			if t >= c.at && t < c.until {
				d[c.pair] *= c.factor
			}
		}
		for _, c := range cycles {
			if t >= c.at {
				d.Scale(1 + c.amplitude*math.Sin(2*math.Pi*float64(t-c.at)/float64(c.period)))
			}
		}
		missing := false
		for i, o := range outages {
			if t >= outageAt[i] && t < o.Until {
				missing = true
				break
			}
		}
		steps[t] = Step{Interval: t, Epoch: epochs[epochIdx].Index, Missing: missing, Demand: d}
	}
	return &Timeline{Script: s, Base: sc, Start: start, Epochs: epochs, Steps: steps}, nil
}

// EpochRouting returns the routing of the given epoch tag.
func (tl *Timeline) EpochRouting(epoch int) (*topology.Routing, bool) {
	if epoch < 0 || epoch >= len(tl.Epochs) {
		return nil, false
	}
	return tl.Epochs[epoch].Rt, true
}

// RegisterSwaps arms every topology change of the timeline on an engine
// via SwapRouting, skipping epochs the engine is already at or past (a
// checkpoint-restored engine was moved onto its epoch before Restore).
// Call it before the replay starts feeding; the engine applies each
// swap when its own cursor reaches the epoch boundary.
func (tl *Timeline) RegisterSwaps(eng *stream.Engine) error {
	cur := eng.TopologyEpoch()
	for _, ep := range tl.Epochs {
		if ep.Index <= cur {
			continue
		}
		if err := eng.SwapRouting(ep.Rt, ep.Index, ep.At); err != nil {
			return fmt.Errorf("timeline: arming swap to epoch %d at interval %d: %w", ep.Index, ep.At, err)
		}
	}
	return nil
}

// Replay ingests the compiled steps into a collector store as a
// lossless poller would have measured them — outage intervals ingest
// nothing, and the engine's close-out rule skips the hole once later
// records arrive. cycles repeats the whole timeline (minimum 1); pace
// is wall-clock time per interval (0 = as fast as possible). Repeats
// continue the interval numbering, so a second cycle does not rewind
// the engine's cursor; topology epochs only ever advance, so repeated
// cycles stay on the final epoch's routing.
func (tl *Timeline) Replay(ctx context.Context, store *collector.Store, cycles int, pace time.Duration) error {
	if cycles < 1 {
		cycles = 1
	}
	total := len(tl.Steps)
	for c := 0; c < cycles; c++ {
		for _, st := range tl.Steps {
			if err := ctx.Err(); err != nil {
				return err
			}
			if !st.Missing {
				interval := c*total + st.Interval
				for p, mbps := range st.Demand {
					store.Ingest(collector.RateRecord{LSP: p, Interval: interval, RateMbps: mbps, Poller: "timeline"})
				}
			}
			if pace > 0 {
				select {
				case <-time.After(pace):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
	}
	return nil
}

// compiledFile is the JSON schema WriteCompiled emits — the scripted
// series in the open, for tmgen -timeline and the golden-file tests.
type compiledFile struct {
	Base      string          `json:"base"`
	Intervals int             `json:"intervals"`
	Epochs    []compiledEpoch `json:"epochs"`
	Steps     []compiledStep  `json:"steps"`
}

type compiledEpoch struct {
	Index  int      `json:"index"`
	At     int      `json:"at"`
	Links  int      `json:"links"`
	Failed []string `json:"failed,omitempty"`
}

type compiledStep struct {
	Interval int       `json:"interval"`
	Epoch    int       `json:"epoch"`
	Missing  bool      `json:"missing,omitempty"`
	TotalMbp float64   `json:"total_mbps"`
	Demand   []float64 `json:"demand,omitempty"`
}

// WriteCompiled emits the compiled timeline as indented JSON. demands
// controls whether full demand vectors are included (tmgen -timeline)
// or only per-interval totals (the golden files, which would otherwise
// drown the diff in matrix entries).
func (tl *Timeline) WriteCompiled(w io.Writer, demands bool) error {
	f := compiledFile{Base: tl.Script.Base, Intervals: tl.Script.Intervals}
	for _, ep := range tl.Epochs {
		f.Epochs = append(f.Epochs, compiledEpoch{
			Index: ep.Index, At: ep.At, Links: ep.Net.NumLinks(), Failed: ep.Failed,
		})
	}
	for _, st := range tl.Steps {
		cs := compiledStep{
			Interval: st.Interval, Epoch: st.Epoch, Missing: st.Missing,
			TotalMbp: math.Round(st.Demand.Sum()*1e6) / 1e6,
		}
		if demands {
			cs.Demand = st.Demand
		}
		f.Steps = append(f.Steps, cs)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
