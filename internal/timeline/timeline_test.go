package timeline

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/collector"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// interiorAdjacency names the first interior adjacency of the network
// as "RouterA-RouterB".
func interiorAdjacency(t *testing.T, net *topology.Network) string {
	t.Helper()
	for _, l := range net.Links {
		if l.Kind == topology.Interior && l.Src < l.Dst {
			return net.Routers[l.Src].Name + "-" + net.Routers[l.Dst].Name
		}
	}
	t.Fatal("no interior link")
	return ""
}

func mustParse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

// TestParseRejectsMalformedScripts pins the must-fail surface: every
// rejection names the offending event by position (and anchor where it
// has one), so a hand-written script fails with a pointer, not a shrug.
func TestParseRejectsMalformedScripts(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			"unknown event kind",
			`{"format":1,"intervals":10,"events":[{"at":2,"melt_link":"X"}]}`,
			`event 0`,
		},
		{
			"out of order timestamps",
			`{"format":1,"intervals":10,"events":[{"at":5,"fail_link":"X"},{"at":3,"restore":"X"}]}`,
			`event 1 (at 3): out of order`,
		},
		{
			"anchor outside the timeline",
			`{"format":1,"intervals":10,"events":[{"at":10,"fail_link":"X"}]}`,
			`event 0 (at 10): outside the timeline [0, 10)`,
		},
		{
			"no kind",
			`{"format":1,"intervals":10,"events":[{"at":1}]}`,
			`event 0 (at 1): no event kind`,
		},
		{
			"two kinds on one event",
			`{"format":1,"intervals":10,"events":[{"at":1,"fail_link":"X","restore":"X"}]}`,
			`2 event kinds`,
		},
		{
			"bad flash crowd pair",
			`{"format":1,"intervals":10,"events":[{"at":1,"flash_crowd":{"pair":["A"],"factor":2}}]}`,
			`pair has 1 PoPs`,
		},
		{
			"non-positive factor",
			`{"format":1,"intervals":10,"events":[{"at":1,"flash_crowd":{"pair":["A","B"],"factor":0}}]}`,
			`factor 0`,
		},
		{
			"outage until before at",
			`{"format":1,"intervals":10,"events":[{"at":5,"outage":{"until":5}}]}`,
			`until 5 outside (5, 10]`,
		},
		{
			"duration anchor without step",
			`{"format":1,"intervals":10,"events":[{"at":"25m","outage":{"until":9}}]}`,
			`needs the script's step`,
		},
		{
			"duration not a step multiple",
			`{"format":1,"step":"10m","intervals":10,"events":[{"at":"25m","outage":{"until":9}}]}`,
			`not a multiple of step`,
		},
		{
			"wrong format",
			`{"format":9,"intervals":10}`,
			`format 9`,
		},
		{
			"no intervals",
			`{"format":1,"intervals":0}`,
			`intervals 0`,
		},
		{
			"diurnal amplitude out of range",
			`{"format":1,"intervals":10,"events":[{"at":0,"diurnal":{"period":4,"amplitude":1.5}}]}`,
			`amplitude 1.5`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.src))
			if err == nil {
				t.Fatalf("accepted %s", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not name the offense %q", err, c.want)
			}
		})
	}
}

func TestParseDurationAnchors(t *testing.T) {
	s := mustParse(t, `{"format":1,"base":"scaled:europe","step":"5m","intervals":48,
		"events":[{"at":"30m","flash_crowd":{"pair":["London","Paris"],"factor":4,"until":"75m"}},
		          {"at":10,"outage":{"until":"1h"}}]}`)
	if s.Events[0].At != 6 || s.Events[0].FlashCrowd.Until != 15 {
		t.Fatalf("flash crowd anchors [%d, %d), want [6, 15)", s.Events[0].At, s.Events[0].FlashCrowd.Until)
	}
	if s.Events[1].At != 10 || s.Events[1].Outage.Until != 12 {
		t.Fatalf("outage anchors [%d, %d), want [10, 12)", s.Events[1].At, s.Events[1].Outage.Until)
	}
}

// TestCompileRejectsUnknownTargets pins compile-time must-fails: an
// unknown link or PoP names the offending event.
func TestCompileRejectsUnknownTargets(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ name, src, want string }{
		{
			"unknown link",
			`{"format":1,"intervals":10,"events":[{"at":2,"fail_link":"Atlantis-cr1-Lemuria-cr1"}]}`,
			`event 0 (at 2): unknown link "Atlantis-cr1-Lemuria-cr1"`,
		},
		{
			"unknown PoP",
			`{"format":1,"intervals":10,"events":[{"at":2,"flash_crowd":{"pair":["London","Narnia"],"factor":2}}]}`,
			`unknown PoP "Narnia"`,
		},
		{
			"restore of a healthy link",
			`{"format":1,"intervals":10,"events":[{"at":2,"restore":"` + interiorAdjacency(t, sc.Net) + `"}]}`,
			`not failed`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := mustParse(t, c.src)
			_, err := Compile(sc, 0, s)
			if err == nil {
				t.Fatal("compiled a script with an unknown target")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not name %q", err, c.want)
			}
		})
	}
}

// TestCompileSemantics checks the compiled series: crowd windows scale
// exactly one pair, outage intervals are missing, diurnal bends every
// demand, and a fail/restore pair produces three epochs with the final
// routing matrix byte-identical to the base.
func TestCompileSemantics(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	link := interiorAdjacency(t, sc.Net)
	s := mustParse(t, `{"format":1,"intervals":20,"events":[
		{"at":2,"flash_crowd":{"pair":["London","Paris"],"factor":3,"until":5}},
		{"at":6,"fail_link":"`+link+`"},
		{"at":10,"outage":{"until":12}},
		{"at":14,"restore":"`+link+`"}]}`)
	tl, err := Compile(sc, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Epochs) != 3 {
		t.Fatalf("%d epochs, want 3 (base, failed, restored)", len(tl.Epochs))
	}
	if !tl.Epochs[2].Rt.R.Equal(tl.Epochs[0].Rt.R) {
		t.Fatal("full restoration did not return the byte-identical base matrix")
	}
	if tl.Epochs[1].Rt.R.Equal(tl.Epochs[0].Rt.R) {
		t.Fatal("failure epoch routing equals the base; the link removal had no effect")
	}
	london, paris := -1, -1
	for i, p := range sc.Net.PoPs {
		if p.Name == "London" {
			london = i
		}
		if p.Name == "Paris" {
			paris = i
		}
	}
	idx := sc.Net.PairIndex(london, paris)
	for iv := 0; iv < 20; iv++ {
		st := tl.Steps[iv]
		base := sc.Series.Demands[iv]
		wantMissing := iv >= 10 && iv < 12
		if st.Missing != wantMissing {
			t.Fatalf("interval %d missing=%v, want %v", iv, st.Missing, wantMissing)
		}
		factor := 1.0
		if iv >= 2 && iv < 5 {
			factor = 3
		}
		if got, want := st.Demand[idx], base[idx]*factor; math.Abs(got-want) > 1e-9 {
			t.Fatalf("interval %d crowd pair %v, want %v", iv, got, want)
		}
		// Any other pair is untouched.
		other := (idx + 1) % len(base)
		if st.Demand[other] != base[other] {
			t.Fatalf("interval %d non-crowd pair scaled", iv)
		}
		wantEpoch := 0
		switch {
		case iv >= 14:
			wantEpoch = 2
		case iv >= 6:
			wantEpoch = 1
		}
		if st.Epoch != wantEpoch {
			t.Fatalf("interval %d epoch %d, want %d", iv, st.Epoch, wantEpoch)
		}
	}
}

// TestCompileDeterministic pins byte-identical recompilation: the same
// script against the same scenario yields the same compiled JSON, and
// Replay ingests the same records.
func TestCompileDeterministic(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	src := `{"format":1,"intervals":12,"events":[
		{"at":3,"flash_crowd":{"pair":["London","Paris"],"factor":2,"until":8}},
		{"at":5,"outage":{"until":7}}]}`
	render := func() string {
		tl, err := Compile(sc, 4, mustParse(t, src))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := tl.WriteCompiled(&b, true); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatal("recompiling the same script produced different bytes")
	}
}

// TestReplayFeedsStore checks the replay feed honors outage holes and
// cycle renumbering.
func TestReplayFeedsStore(t *testing.T) {
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Compile(sc, 0, mustParse(t,
		`{"format":1,"intervals":6,"events":[{"at":2,"outage":{"until":3}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	store := collector.NewStore(sc.Net.NumPairs())
	if err := tl.Replay(context.Background(), store, 2, 0); err != nil {
		t.Fatal(err)
	}
	// Two cycles of 6 intervals, interval 2 of each missing: the second
	// cycle continues the numbering, so the last ingested interval is 11
	// and both holes (2 and 8) carry zero coverage.
	if got := store.LatestInterval(); got != 11 {
		t.Fatalf("latest interval %d, want 11", got)
	}
	for _, hole := range []int{2, 8} {
		if n, _ := store.Coverage(hole); n != 0 {
			t.Fatalf("outage interval %d has coverage %d, want 0", hole, n)
		}
	}
	if n, _ := store.Coverage(3); n != sc.Net.NumPairs() {
		t.Fatal("non-outage interval under-covered")
	}
}
