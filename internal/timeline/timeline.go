// Package timeline compiles declarative event scripts — flash crowds,
// link failures and restorations, diurnal demand cycles, SNMP outage
// windows — against a base scenario into a deterministic replay feed
// for the streaming engines. A script is JSON: a base scenario family
// spec, a timeline length in polling intervals, and a list of events
// each anchored at an interval (or at a duration that is a multiple of
// the script's step). Compile materializes the scripted demand series
// and the sequence of topology epochs (one per effective routing
// change), which Replay feeds into a collector store while
// RegisterSwaps arms the engine's mid-stream routing hot-swaps
// (stream.Engine.SwapRouting) — the production shape the paper's
// continuously collected measurements imply, where the network under
// the estimator changes while it runs.
package timeline

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Format is the script format tag. Parse rejects other values instead
// of guessing at field semantics.
const Format = 1

// Script is one parsed timeline script, with every event anchor
// resolved to a polling-interval index.
type Script struct {
	// Base is the scenario family spec the timeline runs over (the
	// vocabulary of scenario.Build, e.g. "scaled:12"). The timeline
	// package treats it as opaque; scenario.BuildScript resolves it.
	Base string
	// Step is the polling-interval duration, used only to resolve
	// duration-string anchors ("30m" with step "5m" is interval 6).
	// Zero when the script never uses duration anchors.
	Step time.Duration
	// Intervals is the timeline length.
	Intervals int
	// Events, in non-decreasing anchor order.
	Events []Event
}

// Event is one script event. Kind is the JSON key that introduced it
// ("flash_crowd", "fail_link", "restore", "diurnal", "outage"); exactly
// one of the payload fields below is set accordingly.
type Event struct {
	// Index is the event's position in the script, used to name it in
	// errors.
	Index int
	// At is the first interval the event affects.
	At   int
	Kind string

	FlashCrowd *FlashCrowd
	// Link is the fail_link/restore adjacency spec: an interior link ID
	// of the base network, or "RouterA-RouterB" router names (either
	// direction; the whole bidirectional adjacency fails).
	Link    string
	Diurnal *Diurnal
	Outage  *Outage
}

// FlashCrowd multiplies one demand by Factor over [At, Until).
type FlashCrowd struct {
	// Src and Dst name the PoP pair, by PoP name or decimal index.
	Src, Dst string
	Factor   float64
	// Until is the first interval back at base demand (the script's
	// length when the event is open-ended).
	Until int
}

// Diurnal scales every demand by 1 + Amplitude·sin(2π(t−At)/Period)
// from At onward — the paper's dominant daily cycle (§5.3.1).
type Diurnal struct {
	Period    int
	Amplitude float64
}

// Outage marks intervals [At, Until) as missing: nothing is collected,
// and the engine skips the hole once later intervals close it out.
type Outage struct {
	Until int
}

// rawScript is the JSON schema of a script file. Events decode in a
// second pass so errors can name the offending event.
type rawScript struct {
	Format    int               `json:"format"`
	Base      string            `json:"base"`
	Step      string            `json:"step,omitempty"`
	Intervals int               `json:"intervals"`
	Events    []json.RawMessage `json:"events"`
}

type rawEvent struct {
	At         json.RawMessage `json:"at"`
	FlashCrowd *rawFlash       `json:"flash_crowd,omitempty"`
	FailLink   *string         `json:"fail_link,omitempty"`
	Restore    *string         `json:"restore,omitempty"`
	Diurnal    *rawDiurnal     `json:"diurnal,omitempty"`
	Outage     *rawOutage      `json:"outage,omitempty"`
}

type rawFlash struct {
	Pair   []string        `json:"pair"`
	Factor float64         `json:"factor"`
	Until  json.RawMessage `json:"until,omitempty"`
}

type rawDiurnal struct {
	Period    json.RawMessage `json:"period"`
	Amplitude float64         `json:"amplitude"`
}

type rawOutage struct {
	Until json.RawMessage `json:"until"`
}

// parseTicks resolves an anchor that is either a JSON integer (interval
// index) or a duration string measured against step.
func parseTicks(raw json.RawMessage, step time.Duration, what string) (int, error) {
	if len(raw) == 0 {
		return 0, fmt.Errorf("missing %s", what)
	}
	var n int
	if err := json.Unmarshal(raw, &n); err == nil {
		return n, nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return 0, fmt.Errorf("%s %s is neither an interval index nor a duration string", what, raw)
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%s %q: %v", what, s, err)
	}
	if step <= 0 {
		return 0, fmt.Errorf("%s %q needs the script's step set", what, s)
	}
	if d%step != 0 {
		return 0, fmt.Errorf("%s %q is not a multiple of step %v", what, s, step)
	}
	return int(d / step), nil
}

// Parse decodes and validates a script. Unknown fields — including
// unknown event kinds, which are just unknown keys on an event object —
// are rejected, and every event error names the event by its position
// in the script.
func Parse(data []byte) (*Script, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var raw rawScript
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("timeline: parse script: %v", err)
	}
	if raw.Format != Format {
		return nil, fmt.Errorf("timeline: script format %d, this build reads %d", raw.Format, Format)
	}
	if raw.Intervals < 1 {
		return nil, fmt.Errorf("timeline: intervals %d, need at least 1", raw.Intervals)
	}
	s := &Script{Base: raw.Base, Intervals: raw.Intervals}
	if raw.Step != "" {
		d, err := time.ParseDuration(raw.Step)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("timeline: step %q is not a positive duration", raw.Step)
		}
		s.Step = d
	}
	prevAt := 0
	for i, rawEv := range raw.Events {
		ev, err := parseEvent(i, rawEv, s)
		if err != nil {
			return nil, err
		}
		if ev.At < 0 || ev.At >= s.Intervals {
			return nil, fmt.Errorf("timeline: event %d (at %d): outside the timeline [0, %d)", i, ev.At, s.Intervals)
		}
		if ev.At < prevAt {
			return nil, fmt.Errorf("timeline: event %d (at %d): out of order, previous event is at %d", i, ev.At, prevAt)
		}
		prevAt = ev.At
		s.Events = append(s.Events, ev)
	}
	return s, nil
}

// ParseFile reads and parses the script at path.
func ParseFile(path string) (*Script, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("timeline: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func parseEvent(i int, data json.RawMessage, s *Script) (Event, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var raw rawEvent
	if err := dec.Decode(&raw); err != nil {
		// An unknown key on the event object is an unknown event kind;
		// json names the key, we name the event.
		return Event{}, fmt.Errorf("timeline: event %d: %v", i, err)
	}
	at, err := parseTicks(raw.At, s.Step, "at")
	if err != nil {
		return Event{}, fmt.Errorf("timeline: event %d: %v", i, err)
	}
	ev := Event{Index: i, At: at}
	fail := func(format string, args ...any) (Event, error) {
		return Event{}, fmt.Errorf("timeline: event %d (at %d): %s", i, at, fmt.Sprintf(format, args...))
	}
	kinds := 0
	if raw.FlashCrowd != nil {
		kinds++
		ev.Kind = "flash_crowd"
		if len(raw.FlashCrowd.Pair) != 2 {
			return fail("flash_crowd pair has %d PoPs, want 2", len(raw.FlashCrowd.Pair))
		}
		if raw.FlashCrowd.Factor <= 0 {
			return fail("flash_crowd factor %g, want > 0", raw.FlashCrowd.Factor)
		}
		until := s.Intervals
		if len(raw.FlashCrowd.Until) > 0 {
			if until, err = parseTicks(raw.FlashCrowd.Until, s.Step, "until"); err != nil {
				return fail("%v", err)
			}
			if until <= at || until > s.Intervals {
				return fail("until %d outside (%d, %d]", until, at, s.Intervals)
			}
		}
		ev.FlashCrowd = &FlashCrowd{
			Src: raw.FlashCrowd.Pair[0], Dst: raw.FlashCrowd.Pair[1],
			Factor: raw.FlashCrowd.Factor, Until: until,
		}
	}
	if raw.FailLink != nil {
		kinds++
		ev.Kind = "fail_link"
		ev.Link = *raw.FailLink
	}
	if raw.Restore != nil {
		kinds++
		ev.Kind = "restore"
		ev.Link = *raw.Restore
	}
	if raw.Diurnal != nil {
		kinds++
		ev.Kind = "diurnal"
		period, err := parseTicks(raw.Diurnal.Period, s.Step, "period")
		if err != nil {
			return fail("%v", err)
		}
		if period < 2 {
			return fail("diurnal period %d, want at least 2 intervals", period)
		}
		if a := raw.Diurnal.Amplitude; a < 0 || a >= 1 {
			return fail("diurnal amplitude %g outside [0, 1)", a)
		}
		ev.Diurnal = &Diurnal{Period: period, Amplitude: raw.Diurnal.Amplitude}
	}
	if raw.Outage != nil {
		kinds++
		ev.Kind = "outage"
		until, err := parseTicks(raw.Outage.Until, s.Step, "until")
		if err != nil {
			return fail("%v", err)
		}
		if until <= at || until > s.Intervals {
			return fail("outage until %d outside (%d, %d]", until, at, s.Intervals)
		}
		ev.Outage = &Outage{Until: until}
	}
	switch kinds {
	case 0:
		return fail("no event kind (want one of flash_crowd, fail_link, restore, diurnal, outage)")
	case 1:
		return ev, nil
	default:
		return fail("%d event kinds on one event, want exactly 1", kinds)
	}
}
