package collector

import "testing"

// The streaming-consumer surface of the store: O(1) latest-interval
// tracking, coalesced subscriptions, and pruning of consumed intervals.

func TestLatestIntervalTracksIngest(t *testing.T) {
	s := NewStore(4)
	if got := s.LatestInterval(); got != -1 {
		t.Fatalf("empty store LatestInterval = %d, want -1", got)
	}
	s.Ingest(RateRecord{LSP: 0, Interval: 3, RateMbps: 1})
	s.Ingest(RateRecord{LSP: 1, Interval: 1, RateMbps: 1})
	if got := s.LatestInterval(); got != 3 {
		t.Fatalf("LatestInterval = %d, want 3", got)
	}
}

func TestPruneDiscardsAndRefusesLateRecords(t *testing.T) {
	s := NewStore(2)
	for iv := 0; iv < 4; iv++ {
		s.Ingest(RateRecord{LSP: 0, Interval: iv, RateMbps: float64(iv)})
	}
	s.Prune(2)
	if _, _, ok := s.Matrix(1); ok {
		t.Fatal("interval 1 still present after Prune(2)")
	}
	if _, _, ok := s.Matrix(2); !ok {
		t.Fatal("interval 2 missing after Prune(2)")
	}
	// A straggling upload for a pruned interval must not resurrect it.
	s.Ingest(RateRecord{LSP: 1, Interval: 0, RateMbps: 9})
	if _, _, ok := s.Matrix(0); ok {
		t.Fatal("late record resurrected pruned interval 0")
	}
	if got := s.LatestInterval(); got != 3 {
		t.Fatalf("LatestInterval = %d after prune, want 3", got)
	}
	if got := len(s.Intervals()); got != 2 {
		t.Fatalf("%d intervals after prune, want 2", got)
	}
}

func TestSubscribeDeliversLatestState(t *testing.T) {
	s := NewStore(3)
	ch, cancel := s.Subscribe()
	defer cancel()
	// Burst more updates than the 1-slot buffer holds: the pending
	// update must be the newest one.
	for lsp := 0; lsp < 3; lsp++ {
		s.Ingest(RateRecord{LSP: lsp, Interval: 0, RateMbps: 1})
	}
	u := <-ch
	if u.Interval != 0 || u.Covered != 3 || u.NumLSPs != 3 {
		t.Fatalf("update %+v, want interval 0 covered 3/3", u)
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after cancel")
	}
	// Ingest after cancel must not panic or block.
	s.Ingest(RateRecord{LSP: 0, Interval: 1, RateMbps: 1})
}
