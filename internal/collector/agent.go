// Package collector simulates the paper's measurement infrastructure
// (§5.1.2) over real sockets: router agents expose per-LSP byte counters
// over UDP (standing in for SNMP, which also runs over UDP and shares its
// loss semantics), geographically distributed pollers query them at fixed
// intervals and adjust rates for the actual inter-poll spacing, and a
// central store ingests the rate records over TCP (a reliable transport,
// as in the paper).
//
// Time is simulated: a Clock maps wall time to measurement time at a
// configurable speedup so a 24-hour collection run takes milliseconds per
// interval in tests. Counters are derived from a traffic.Series, so the
// collected traffic matrix can be compared interval-by-interval with the
// ground truth.
package collector

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Clock converts wall-clock time to simulation minutes at a fixed speedup.
type Clock struct {
	start   time.Time
	speedup float64 // simulated minutes per wall millisecond
}

// NewClock starts a simulation clock. minutesPerMilli is how many simulated
// minutes elapse per wall-clock millisecond.
func NewClock(minutesPerMilli float64) *Clock {
	return &Clock{start: time.Now(), speedup: minutesPerMilli}
}

// Now returns the current simulation time in minutes.
func (c *Clock) Now() float64 {
	return float64(time.Since(c.start).Microseconds()) / 1000 * c.speedup
}

// SleepSim blocks until the given number of simulated minutes has passed.
func (c *Clock) SleepSim(minutes float64) {
	time.Sleep(time.Duration(minutes / c.speedup * float64(time.Millisecond)))
}

// CounterSource provides cumulative per-LSP byte counters at a given
// simulation time. SeriesCounters adapts a traffic.Series.
type CounterSource interface {
	// BytesAt returns the cumulative bytes carried by LSP (pair) p from
	// simulation time 0 to simMinutes.
	BytesAt(p int, simMinutes float64) uint64
	// NumLSPs returns the number of LSPs.
	NumLSPs() int
}

// pollRequest is the UDP query datagram: a poll of all LSPs in the given
// half-open ID range (a full-table walk splits into ranged GetBulk-style
// requests exactly like SNMP pollers do).
type pollRequest struct {
	Seq      uint64 `json:"seq"`
	FromLSP  int    `json:"from"`
	ToLSP    int    `json:"to"`
	RouterID int    `json:"router"`
}

// pollResponse is the UDP reply.
type pollResponse struct {
	Seq      uint64            `json:"seq"`
	RouterID int               `json:"router"`
	SimTime  float64           `json:"sim_time"` // simulation minutes at counter read
	Counters map[string]uint64 `json:"counters"` // LSP id (decimal) -> cumulative bytes
}

// Agent is a simulated router: it owns a contiguous set of LSP head-ends
// and answers counter polls over UDP. A seeded drop probability simulates
// the unreliability the paper's distributed poller design defends against.
type Agent struct {
	RouterID int
	lsps     []int // LSP (pair) IDs head-ended at this router
	src      CounterSource
	clock    *Clock
	dropProb float64
	rng      *rand.Rand
	rngMu    sync.Mutex

	conn *net.UDPConn
	wg   sync.WaitGroup
}

// NewAgent creates an agent for the given router serving the listed LSPs.
func NewAgent(routerID int, lsps []int, src CounterSource, clock *Clock, dropProb float64, seed int64) *Agent {
	return &Agent{
		RouterID: routerID, lsps: lsps, src: src, clock: clock,
		dropProb: dropProb, rng: rand.New(rand.NewSource(seed)),
	}
}

// Start begins serving on an ephemeral UDP port on the loopback interface
// and returns the bound address.
func (a *Agent) Start() (*net.UDPAddr, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("collector: agent %d listen: %w", a.RouterID, err)
	}
	a.conn = conn
	a.wg.Add(1)
	go a.serve()
	return conn.LocalAddr().(*net.UDPAddr), nil
}

// Stop shuts the agent down and waits for its serve loop to exit.
func (a *Agent) Stop() {
	if a.conn != nil {
		a.conn.Close()
	}
	a.wg.Wait()
}

func (a *Agent) serve() {
	defer a.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, addr, err := a.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		var req pollRequest
		if err := json.Unmarshal(buf[:n], &req); err != nil {
			continue // malformed datagram; drop like a real agent would
		}
		a.rngMu.Lock()
		drop := a.rng.Float64() < a.dropProb
		a.rngMu.Unlock()
		if drop {
			continue // simulated UDP loss
		}
		now := a.clock.Now()
		resp := pollResponse{Seq: req.Seq, RouterID: a.RouterID, SimTime: now,
			Counters: make(map[string]uint64)}
		for _, p := range a.lsps {
			if p >= req.FromLSP && p < req.ToLSP {
				resp.Counters[fmt.Sprint(p)] = a.src.BytesAt(p, now)
			}
		}
		out, err := json.Marshal(resp)
		if err != nil {
			continue
		}
		if _, err := a.conn.WriteToUDP(out, addr); err != nil {
			return
		}
	}
}

// ErrPollTimeout is returned when an agent does not answer within the
// poller's per-attempt deadline (after retries).
var ErrPollTimeout = errors.New("collector: poll timed out")
