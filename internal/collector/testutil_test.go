package collector

import "repro/internal/topology"

// buildTestNetwork returns a 4-PoP backbone matching smallSeries.
func buildTestNetwork() (*topology.Network, error) {
	return topology.Generate(topology.GeneratorConfig{
		Name:            "test4",
		PoPNames:        []string{"A", "B", "C", "D"},
		UndirectedEdges: 5,
		Seed:            3,
		CapacityMbps:    100000,
		AccessCapacity:  100000,
	})
}
