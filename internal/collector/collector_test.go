package collector

import (
	"math"
	"testing"
	"time"

	"repro/internal/traffic"
)

// smallSeries builds a tiny deterministic series for socket tests.
func smallSeries(t *testing.T, samples int) *traffic.Series {
	t.Helper()
	cfg := traffic.Config{
		Seed: 1, NumPoPs: 4, Samples: samples, StepMinutes: 5,
		PeakMinute: 0, OffPeakLevel: 1, PeakSharpness: 1, // flat profile
		TotalPeakMbps: 1000, PoPSkew: 1,
		DominantPerPoP: 1, DominantStrength: 1,
		Phi: 1e-6, C: 1.5, SourceNoise: 0.01,
		FanoutDrift: 0, NodeWobble: 0, PairSpread: 0.3,
	}
	s, err := traffic.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return s
}

func TestSeriesCountersMonotone(t *testing.T) {
	s := smallSeries(t, 6)
	sc := NewSeriesCounters(s)
	if sc.NumLSPs() != s.P {
		t.Fatalf("NumLSPs = %d", sc.NumLSPs())
	}
	for p := 0; p < s.P; p++ {
		var prev uint64
		for m := 0.0; m <= 35; m += 1.25 {
			b := sc.BytesAt(p, m)
			if b < prev {
				t.Fatalf("counter decreased for LSP %d at %v min", p, m)
			}
			prev = b
		}
	}
}

func TestSeriesCountersRateRecovery(t *testing.T) {
	// The delta over exactly one interval must reproduce the Mbps rate.
	s := smallSeries(t, 6)
	sc := NewSeriesCounters(s)
	for _, p := range []int{0, 3, s.P - 1} {
		for k := 0; k < 5; k++ {
			t0, t1 := float64(k)*5, float64(k+1)*5
			bits := float64(sc.BytesAt(p, t1)-sc.BytesAt(p, t0)) * 8
			mbps := bits / (5 * 60) / 1e6
			want := s.Demands[k][p]
			if math.Abs(mbps-want) > 0.01*(1+want) {
				t.Fatalf("LSP %d interval %d: recovered %v Mbps, want %v", p, k, mbps, want)
			}
		}
	}
}

func TestSeriesCountersClampsPastEnd(t *testing.T) {
	s := smallSeries(t, 3)
	sc := NewSeriesCounters(s)
	end := sc.BytesAt(0, 15)
	if sc.BytesAt(0, 500) != end {
		t.Fatal("counter should freeze after the series ends")
	}
	if sc.BytesAt(0, -1) != 0 {
		t.Fatal("negative time should give 0")
	}
}

func TestAgentAnswersPoll(t *testing.T) {
	s := smallSeries(t, 4)
	src := NewSeriesCounters(s)
	clock := NewClock(1) // 1 sim minute per wall ms
	agent := NewAgent(0, []int{0, 1, 2}, src, clock, 0, 1)
	addr, err := agent.Start()
	if err != nil {
		t.Fatalf("agent.Start: %v", err)
	}
	defer agent.Stop()
	p := NewPoller(PollerConfig{
		Name: "t", StepMinutes: 5, TotalLSPRange: s.P,
		Timeout: 500 * time.Millisecond,
	}, clock, nil)
	samples, err := p.pollAgent(addr)
	if err != nil {
		t.Fatalf("pollAgent: %v", err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
}

func TestAgentDropsAndPollerRetries(t *testing.T) {
	s := smallSeries(t, 4)
	src := NewSeriesCounters(s)
	clock := NewClock(1)
	agent := NewAgent(0, []int{0}, src, clock, 0.5, 42) // 50% loss
	addr, err := agent.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Stop()
	p := NewPoller(PollerConfig{
		Name: "t", StepMinutes: 5, TotalLSPRange: s.P,
		Retries: 10, Timeout: 100 * time.Millisecond,
	}, clock, nil)
	samples, err := p.pollAgent(addr)
	if err != nil {
		t.Fatalf("pollAgent: %v", err)
	}
	if len(samples) != 1 {
		t.Fatalf("retries failed to recover the sample (got %d)", len(samples))
	}
}

func TestStoreIngestAndMatrix(t *testing.T) {
	st := NewStore(4)
	st.Ingest(RateRecord{LSP: 1, Interval: 0, RateMbps: 10})
	st.Ingest(RateRecord{LSP: 2, Interval: 0, RateMbps: 20})
	st.Ingest(RateRecord{LSP: 1, Interval: 0, RateMbps: 11}) // re-upload wins
	st.Ingest(RateRecord{LSP: 99, Interval: 0, RateMbps: 1}) // out of range: dropped
	v, covered, ok := st.Matrix(0)
	if !ok || covered != 2 {
		t.Fatalf("Matrix: ok=%v covered=%d", ok, covered)
	}
	if v[1] != 11 || v[2] != 20 {
		t.Fatalf("stored rates wrong: %v", v)
	}
	if _, _, ok := st.Matrix(7); ok {
		t.Fatal("unknown interval should report !ok")
	}
	if got := st.Intervals(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Intervals = %v", got)
	}
}

func TestStoreTCPIngest(t *testing.T) {
	st := NewStore(4)
	addr, err := st.Start()
	if err != nil {
		t.Fatalf("store.Start: %v", err)
	}
	up, err := DialUplink(addr.String())
	if err != nil {
		t.Fatalf("DialUplink: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := up.Send(RateRecord{LSP: i, Interval: 2, RateMbps: float64(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	up.Close()
	deadline := time.Now().Add(2 * time.Second)
	for st.Records() < 4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st.Stop()
	v, covered, ok := st.Matrix(2)
	if !ok || covered != 4 {
		t.Fatalf("TCP ingest incomplete: ok=%v covered=%d", ok, covered)
	}
	if v[3] != 3 {
		t.Fatalf("rate wrong: %v", v)
	}
}

func TestEndToEndDeployment(t *testing.T) {
	// Full pipeline over loopback: 4-PoP network, 2 pollers, mild loss.
	// The collected matrices must match the generating series.
	s := smallSeries(t, 5)
	net4, err := buildTestNetwork()
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	d := NewDeployment(net4, s, DeploymentConfig{
		Pollers:         2,
		DropProb:        0.05,
		MinutesPerMilli: 0.5, // 5-min interval = 10 wall ms
		StepMinutes:     5,
		Seed:            7,
	})
	if err := d.Run(4); err != nil {
		t.Fatalf("deployment run: %v", err)
	}
	ivs := d.Store.Intervals()
	if len(ivs) == 0 {
		t.Fatal("no intervals collected")
	}
	checked := 0
	for _, iv := range ivs {
		got, covered, _ := d.Store.Matrix(iv)
		if covered < s.P/2 {
			continue // partially lost interval
		}
		if iv >= len(s.Demands) {
			continue
		}
		for p := 0; p < s.P; p++ {
			if got[p] == 0 {
				continue // lost sample
			}
			want := s.Demands[iv][p]
			// Counter reads within an interval include partial-interval
			// traffic of the neighbouring intervals; the profile is nearly
			// flat so 25% is a generous envelope for timing skew.
			if want > 1 && math.Abs(got[p]-want)/want > 0.25 {
				t.Fatalf("interval %d LSP %d: collected %v, true %v", iv, p, got[p], want)
			}
			checked++
		}
	}
	if checked < s.P {
		t.Fatalf("too few verified samples: %d", checked)
	}
}
