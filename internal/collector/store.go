package collector

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/linalg"
)

// Store is the central database of §5.1.2: it accepts JSON-lines rate
// records over TCP and assembles them into per-interval traffic matrices.
type Store struct {
	numLSPs int

	mu        sync.Mutex
	intervals map[int]linalg.Vector // interval -> per-LSP rates
	seen      map[int]map[int]bool  // interval -> LSP set
	records   int

	ln net.Listener
	wg sync.WaitGroup
}

// NewStore creates a store for the given LSP count.
func NewStore(numLSPs int) *Store {
	return &Store{
		numLSPs:   numLSPs,
		intervals: make(map[int]linalg.Vector),
		seen:      make(map[int]map[int]bool),
	}
}

// Start listens on an ephemeral loopback TCP port and returns its address.
func (s *Store) Start() (net.Addr, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("collector: store listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.accept()
	return ln.Addr(), nil
}

// Stop closes the listener and waits for in-flight connections to finish.
func (s *Store) Stop() {
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
}

func (s *Store) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 1024*1024), 1024*1024)
			for sc.Scan() {
				var rec RateRecord
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					continue
				}
				s.Ingest(rec)
			}
		}()
	}
}

// Ingest adds one rate record (thread-safe; also usable without TCP).
func (s *Store) Ingest(rec RateRecord) {
	if rec.LSP < 0 || rec.LSP >= s.numLSPs {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.intervals[rec.Interval]
	if !ok {
		v = linalg.NewVector(s.numLSPs)
		s.intervals[rec.Interval] = v
		s.seen[rec.Interval] = make(map[int]bool)
	}
	// Backup pollers may report the same LSP twice; last write wins, which
	// is also what the paper's central database does with re-uploads.
	v[rec.LSP] = rec.RateMbps
	s.seen[rec.Interval][rec.LSP] = true
	s.records++
}

// Records returns the total number of ingested records.
func (s *Store) Records() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Matrix returns the demand vector of an interval and how many LSPs it
// covers. The bool is false if the interval is unknown.
func (s *Store) Matrix(interval int) (linalg.Vector, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.intervals[interval]
	if !ok {
		return nil, 0, false
	}
	return v.Clone(), len(s.seen[interval]), true
}

// Intervals returns the sorted list of known interval indices.
func (s *Store) Intervals() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.intervals))
	for k := range s.intervals {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; interval counts are small
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Uplink streams rate records to a store over TCP as JSON lines. It is the
// poller-side transport client.
type Uplink struct {
	conn net.Conn
	enc  *json.Encoder
	mu   sync.Mutex
}

// DialUplink connects to the store.
func DialUplink(addr string) (*Uplink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: dial store: %w", err)
	}
	return &Uplink{conn: conn, enc: json.NewEncoder(conn)}, nil
}

// Send uploads one record.
func (u *Uplink) Send(rec RateRecord) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.enc.Encode(rec)
}

// Close closes the connection.
func (u *Uplink) Close() error { return u.conn.Close() }
