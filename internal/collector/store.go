package collector

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/linalg"
)

// Store is the central database of §5.1.2: it accepts JSON-lines rate
// records over TCP and assembles them into per-interval traffic matrices.
type Store struct {
	numLSPs int

	mu        sync.Mutex
	intervals map[int]*intervalState // interval -> rates + coverage
	// free recycles the state of pruned intervals: a streaming consumer
	// prunes as it goes, so an endless run creates each interval's rate
	// vector and coverage set once and then cycles the same buffers
	// forever. Stored vectors are never handed out (Matrix clones, Take
	// transfers ownership out of the store first), so a pruned interval's
	// buffers cannot be retained by anyone.
	free    []*intervalState
	records int
	latest  int // max interval ever ingested (-1 before the first)
	pruned  int // intervals below this have been discarded for good
	stopped bool
	subs    map[int]chan IntervalUpdate
	nextSub int

	ln net.Listener
	wg sync.WaitGroup
}

// intervalState is everything the store holds for one polling interval:
// the per-LSP rate vector and a fixed bitset (plus running popcount)
// tracking which LSPs have reported. The previous design kept a
// map[int]bool per interval that grew bucket by bucket as records
// arrived, making ingestion the hottest allocation site in the whole
// fleet; the bitset state is two allocations per interval (the struct —
// with the bits inlined for backbones up to 512 LSPs — and the vector),
// and both are recycled through Store.free once the interval is pruned.
type intervalState struct {
	v       linalg.Vector
	covered int
	bits    []uint64
	small   [8]uint64 // inline backing for bits when numLSPs <= 512
}

func newIntervalState(numLSPs int) *intervalState {
	st := &intervalState{}
	if words := (numLSPs + 63) / 64; words <= len(st.small) {
		st.bits = st.small[:words]
	} else {
		st.bits = make([]uint64, words)
	}
	st.v = linalg.NewVector(numLSPs)
	return st
}

// reset clears a recycled state for a new interval, re-allocating the
// rate vector only if Take transferred the previous one away.
func (st *intervalState) reset(numLSPs int) {
	if st.v == nil {
		st.v = linalg.NewVector(numLSPs)
	} else {
		st.v.Zero()
	}
	for i := range st.bits {
		st.bits[i] = 0
	}
	st.covered = 0
}

func (st *intervalState) add(lsp int) {
	word, bit := lsp/64, uint64(1)<<(lsp%64)
	if st.bits[word]&bit == 0 {
		st.bits[word] |= bit
		st.covered++
	}
}

// IntervalUpdate notifies a subscriber that the store's view of an interval
// changed: Covered is how many distinct LSPs now have a rate for it.
type IntervalUpdate struct {
	Interval int
	Covered  int
	NumLSPs  int
}

// NewStore creates a store for the given LSP count.
func NewStore(numLSPs int) *Store {
	return &Store{
		numLSPs:   numLSPs,
		intervals: make(map[int]*intervalState),
		latest:    -1,
		subs:      make(map[int]chan IntervalUpdate),
	}
}

// LatestInterval returns the highest interval index ever ingested, or -1
// if the store is empty. O(1); streaming consumers use it to detect that
// earlier intervals have been closed out.
func (s *Store) LatestInterval() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest
}

// Prune discards every interval below the given index and refuses late
// records for them from then on. A streaming consumer that has folded an
// interval into its own window calls this so an endless collection run
// holds O(window) rather than O(elapsed time) in the store. Batch users
// (tmcollect, the examples) never call it and keep the full history.
func (s *Store) Prune(before int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if before > s.pruned {
		s.pruned = before
	}
	for iv, st := range s.intervals {
		if iv < s.pruned {
			s.free = append(s.free, st)
			delete(s.intervals, iv)
		}
	}
}

// NumLSPs returns the LSP count the store was sized for.
func (s *Store) NumLSPs() int { return s.numLSPs }

// Subscribe registers for interval-coverage notifications and returns the
// update channel plus a cancel function. One coalesced update is delivered
// per ingested record; a subscriber that falls behind misses intermediate
// updates but always receives the latest state (the channel holds one
// pending update which newer ones overwrite), so a consumer polling
// Matrix() on each update never observes stale coverage forever.
func (s *Store) Subscribe() (<-chan IntervalUpdate, func()) {
	ch := make(chan IntervalUpdate, 1)
	s.mu.Lock()
	if s.stopped {
		// Subscribing after Stop yields an already-closed channel, so a
		// consumer that raced the shutdown still observes end-of-stream
		// (after draining whatever the store ingested) instead of
		// blocking forever.
		s.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
		s.mu.Unlock()
	}
	return ch, cancel
}

// notifyLocked pushes an update to every subscriber, overwriting any
// pending one. Callers hold s.mu.
func (s *Store) notifyLocked(u IntervalUpdate) {
	for _, ch := range s.subs {
		select {
		case ch <- u:
		default:
			select {
			case <-ch: // drop the stale pending update
			default:
			}
			select {
			case ch <- u:
			default:
			}
		}
	}
}

// Start listens on an ephemeral loopback TCP port and returns its address.
func (s *Store) Start() (net.Addr, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("collector: store listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.accept()
	return ln.Addr(), nil
}

// Stop closes the listener, waits for in-flight connections to finish,
// and then closes every subscription channel — so a streaming consumer
// blocked on Subscribe's channel observes the end of the collection.
func (s *Store) Stop() {
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
	s.mu.Lock()
	s.stopped = true
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
	s.mu.Unlock()
}

func (s *Store) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 1024*1024), 1024*1024)
			for sc.Scan() {
				var rec RateRecord
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					continue
				}
				s.Ingest(rec)
			}
		}()
	}
}

// Ingest adds one rate record (thread-safe; also usable without TCP).
// Records for intervals already discarded by Prune are dropped, so a
// straggling backup-poller upload cannot resurrect a pruned interval.
func (s *Store) Ingest(rec RateRecord) {
	if rec.LSP < 0 || rec.LSP >= s.numLSPs {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.Interval < s.pruned {
		return
	}
	if rec.Interval > s.latest {
		s.latest = rec.Interval
	}
	st, ok := s.intervals[rec.Interval]
	if !ok {
		if n := len(s.free); n > 0 {
			st = s.free[n-1]
			s.free = s.free[:n-1]
			st.reset(s.numLSPs)
		} else {
			st = newIntervalState(s.numLSPs)
		}
		s.intervals[rec.Interval] = st
	}
	// Backup pollers may report the same LSP twice; last write wins, which
	// is also what the paper's central database does with re-uploads.
	st.v[rec.LSP] = rec.RateMbps
	st.add(rec.LSP)
	s.records++
	s.notifyLocked(IntervalUpdate{
		Interval: rec.Interval,
		Covered:  st.covered,
		NumLSPs:  s.numLSPs,
	})
}

// Records returns the total number of ingested records.
func (s *Store) Records() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Coverage returns how many LSPs an interval covers, without copying
// its rates — the cheap readiness probe for streaming consumers. The
// bool is false if the interval is unknown (or pruned).
func (s *Store) Coverage(interval int) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.intervals[interval]
	if !ok {
		return 0, false
	}
	return st.covered, true
}

// Matrix returns the demand vector of an interval and how many LSPs it
// covers. The bool is false if the interval is unknown.
func (s *Store) Matrix(interval int) (linalg.Vector, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.intervals[interval]
	if !ok {
		return nil, 0, false
	}
	return st.v.Clone(), st.covered, true
}

// Take is Matrix transferring ownership of the interval's rate vector to
// the caller instead of cloning it: the interval is removed from the
// store (its bookkeeping recycled), so the vector can never be written
// again and the caller may retain it without a copy. It exists for the
// store's sole consumer on the streaming path — a consumer that prunes
// as it consumes (stream.Config.PruneConsumed) already owns the store's
// history by contract; with multiple consumers, Take would make the
// interval vanish for the others, so they must use Matrix. A record
// arriving for a taken interval after the caller has pruned past it is
// dropped like any other late record for a pruned interval.
func (s *Store) Take(interval int) (linalg.Vector, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.intervals[interval]
	if !ok {
		return nil, 0, false
	}
	v, covered := st.v, st.covered
	st.v = nil // ownership moved out; reset re-allocates on reuse
	delete(s.intervals, interval)
	s.free = append(s.free, st)
	return v, covered, true
}

// Intervals returns the sorted list of known interval indices.
func (s *Store) Intervals() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.intervals))
	for k := range s.intervals {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; interval counts are small
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Uplink streams rate records to a store over TCP as JSON lines. It is the
// poller-side transport client.
type Uplink struct {
	conn net.Conn
	enc  *json.Encoder
	mu   sync.Mutex
}

// DialUplink connects to the store.
func DialUplink(addr string) (*Uplink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: dial store: %w", err)
	}
	return &Uplink{conn: conn, enc: json.NewEncoder(conn)}, nil
}

// Send uploads one record.
func (u *Uplink) Send(rec RateRecord) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.enc.Encode(rec)
}

// Close closes the connection.
func (u *Uplink) Close() error { return u.conn.Close() }
