package collector

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/linalg"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// SeriesCounters adapts a traffic.Series to the CounterSource interface:
// the cumulative byte counter of LSP p at simulation time T integrates the
// series' piecewise-constant 5-minute rates from 0 to T.
type SeriesCounters struct {
	series *traffic.Series
	// prefix[k][p] = bytes carried by LSP p in intervals [0, k).
	prefix []linalg.Vector
}

// NewSeriesCounters precomputes cumulative counters for a series.
func NewSeriesCounters(s *traffic.Series) *SeriesCounters {
	sc := &SeriesCounters{series: s, prefix: make([]linalg.Vector, len(s.Demands)+1)}
	sc.prefix[0] = linalg.NewVector(s.P)
	secondsPerStep := s.Cfg.StepMinutes * 60
	for k, d := range s.Demands {
		next := sc.prefix[k].Clone()
		for p, mbps := range d {
			next[p] += mbps * 1e6 / 8 * secondsPerStep // bytes in interval k
		}
		sc.prefix[k+1] = next
	}
	return sc
}

// NumLSPs returns the LSP count.
func (sc *SeriesCounters) NumLSPs() int { return sc.series.P }

// BytesAt returns cumulative bytes for LSP p at simMinutes, interpolating
// within the current interval.
func (sc *SeriesCounters) BytesAt(p int, simMinutes float64) uint64 {
	if simMinutes <= 0 {
		return 0
	}
	step := sc.series.Cfg.StepMinutes
	k := int(simMinutes / step)
	if k >= len(sc.series.Demands) {
		return uint64(sc.prefix[len(sc.prefix)-1][p])
	}
	frac := simMinutes - float64(k)*step
	bytes := sc.prefix[k][p] + sc.series.Demands[k][p]*1e6/8*frac*60
	return uint64(bytes)
}

// Deployment wires a complete collection pipeline for a scenario: one agent
// per head-end router, pollers sharing the agents geographically (round
// robin), and a central store.
type Deployment struct {
	Store     *Store
	Agents    []*Agent
	Pollers   []*Poller
	clock     *Clock
	netw      *topology.Network
	pollerCfg PollerConfig
}

// DeploymentConfig configures NewDeployment.
type DeploymentConfig struct {
	Pollers         int     // number of distributed pollers
	DropProb        float64 // per-datagram loss probability at agents
	MinutesPerMilli float64 // simulation speedup
	StepMinutes     float64 // polling period (the paper's 5 minutes)
	Seed            int64
}

// NewDeployment builds (but does not start) the pipeline.
func NewDeployment(netw *topology.Network, series *traffic.Series, cfg DeploymentConfig) *Deployment {
	if cfg.Pollers <= 0 {
		cfg.Pollers = 1
	}
	clock := NewClock(cfg.MinutesPerMilli)
	src := NewSeriesCounters(series)
	// LSPs are head-ended at the source PoP's head-end router.
	lspsByRouter := make(map[int][]int)
	for p := 0; p < netw.NumPairs(); p++ {
		src2, _ := netw.PairFromIndex(p)
		r := netw.HeadEnd(src2)
		lspsByRouter[r] = append(lspsByRouter[r], p)
	}
	d := &Deployment{Store: NewStore(series.P), clock: clock, netw: netw}
	for r, lsps := range lspsByRouter {
		d.Agents = append(d.Agents, NewAgent(r, lsps, src, clock, cfg.DropProb, cfg.Seed+int64(r)))
	}
	// Poller construction is completed in Run, once agent addresses are
	// known. The retry timeout must track the simulation speedup: a retry
	// that waits a sizeable fraction of a polling interval would smear the
	// rate-adjustment window (the real infrastructure's 5-minute interval
	// dwarfs its SNMP timeouts, and the same ratio must hold here).
	wallMsPerStep := cfg.StepMinutes / cfg.MinutesPerMilli
	timeout := time.Duration(wallMsPerStep/20) * time.Millisecond
	if timeout < 2*time.Millisecond {
		timeout = 2 * time.Millisecond
	}
	d.Pollers = make([]*Poller, cfg.Pollers)
	d.pollerCfg = PollerConfig{
		StepMinutes:   cfg.StepMinutes,
		TotalLSPRange: series.P,
		Retries:       4,
		Timeout:       timeout,
	}
	return d
}

// Run starts everything, performs `cycles` polling rounds on every poller
// concurrently, uploads to the store over TCP, and shuts down. It returns
// the store for inspection.
func (d *Deployment) Run(cycles int) error {
	return d.RunContext(context.Background(), cycles)
}

// RunContext is Run with cooperative cancellation: once ctx is done every
// poller stops between rounds, in-flight uploads drain, and the agents and
// store shut down cleanly. A cancelled run returns ctx.Err(); intervals
// already uploaded remain available in d.Store.
func (d *Deployment) RunContext(ctx context.Context, cycles int) error {
	addr, err := d.Store.Start()
	if err != nil {
		return err
	}
	defer d.Store.Stop()
	addrs := make([]*net.UDPAddr, len(d.Agents))
	for i, a := range d.Agents {
		if addrs[i], err = a.Start(); err != nil {
			return err
		}
		defer a.Stop()
	}
	// Assign agents to pollers round robin ("a dedicated set of routers in
	// its area").
	assign := make([][]*net.UDPAddr, len(d.Pollers))
	for i, a := range addrs {
		assign[i%len(d.Pollers)] = append(assign[i%len(d.Pollers)], a)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(d.Pollers))
	for i := range d.Pollers {
		cfg := d.pollerCfg
		cfg.Name = fmt.Sprintf("poller-%d", i)
		d.Pollers[i] = NewPoller(cfg, d.clock, assign[i])
		up, err := DialUplink(addr.String())
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(p *Poller, up *Uplink) {
			defer wg.Done()
			defer up.Close()
			errs <- p.CollectContext(ctx, cycles, func(rec RateRecord) {
				// Transport failures surface as missing records; the
				// backup-poller path re-covers them on the next cycle.
				_ = up.Send(rec)
			})
		}(d.Pollers[i], up)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Replay feeds a store directly from a demand series, bypassing the
// socket pipeline: every interval's true rates are ingested as if a
// lossless poller had measured them, paced at pace wall-clock time per
// interval (0 = as fast as possible). It is the deterministic stand-in
// for a live Deployment — same store contents every run, no UDP loss, no
// clock jitter — and what tmserve's replay mode and the streaming-engine
// tests are built on. Replay stops early (returning ctx.Err()) if ctx is
// done; cycles beyond the series length wrap around modulo its intervals,
// so an arbitrarily long streaming session can be replayed from one
// recorded day.
func Replay(ctx context.Context, store *Store, series *traffic.Series, cycles int, pace time.Duration) error {
	if len(series.Demands) == 0 {
		return fmt.Errorf("collector: replay of empty series")
	}
	for cycle := 0; cycle < cycles; cycle++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		d := series.Demands[cycle%len(series.Demands)]
		for p, mbps := range d {
			store.Ingest(RateRecord{LSP: p, Interval: cycle, RateMbps: mbps, Poller: "replay"})
		}
		if pace > 0 && cycle < cycles-1 {
			select {
			case <-time.After(pace):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}
