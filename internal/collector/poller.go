package collector

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// RateRecord is one rate measurement shipped from a poller to the central
// store: the average rate of one LSP over one polling interval, already
// adjusted for the actual spacing between the two counter reads (§5.1.2 —
// "the corresponding utilization rate data is adjusted for the length of
// the real measurement interval").
type RateRecord struct {
	LSP      int     `json:"lsp"`
	Interval int     `json:"interval"` // nominal interval index
	RateMbps float64 `json:"rate_mbps"`
	Poller   string  `json:"poller"`
}

// PollerConfig configures a Poller.
type PollerConfig struct {
	Name          string
	StepMinutes   float64       // nominal polling period in simulated minutes
	Retries       int           // per-poll retry attempts after a loss
	Timeout       time.Duration // wall-clock wait per attempt
	BatchSize     int           // LSP IDs per request datagram
	TotalLSPRange int           // upper bound of LSP id space
}

// Poller polls a set of agents every StepMinutes of simulated time,
// converts counter deltas to rates, and uploads them to the store over TCP.
type Poller struct {
	cfg    PollerConfig
	clock  *Clock
	agents []*net.UDPAddr // primary assignment
	seq    atomic.Uint64

	mu       sync.Mutex
	lastSeen map[int]counterSample // per LSP
	lost     int                   // datagrams lost (after retries)
}

type counterSample struct {
	bytes   uint64
	simTime float64
}

// NewPoller creates a poller for the given agent addresses.
func NewPoller(cfg PollerConfig, clock *Clock, agents []*net.UDPAddr) *Poller {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	return &Poller{cfg: cfg, clock: clock, agents: agents, lastSeen: make(map[int]counterSample)}
}

// Lost reports how many poll requests went unanswered after retries.
func (p *Poller) Lost() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lost
}

// pollAgent walks one agent's full LSP table once and returns its samples.
func (p *Poller) pollAgent(addr *net.UDPAddr) (map[int]counterSample, error) {
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, fmt.Errorf("collector: dial agent: %w", err)
	}
	defer conn.Close()
	out := make(map[int]counterSample)
	buf := make([]byte, 256*1024)
	for from := 0; from < p.cfg.TotalLSPRange; from += p.cfg.BatchSize {
		req := pollRequest{
			Seq:     p.seq.Add(1),
			FromLSP: from,
			ToLSP:   from + p.cfg.BatchSize,
		}
		payload, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("collector: marshal request: %w", err)
		}
		var resp *pollResponse
		for attempt := 0; attempt <= p.cfg.Retries; attempt++ {
			if _, err := conn.Write(payload); err != nil {
				return nil, fmt.Errorf("collector: send poll: %w", err)
			}
			if err := conn.SetReadDeadline(time.Now().Add(p.cfg.Timeout)); err != nil {
				return nil, err
			}
			n, err := conn.Read(buf)
			if err != nil {
				continue // timeout: retry
			}
			var r pollResponse
			if err := json.Unmarshal(buf[:n], &r); err != nil {
				continue
			}
			if r.Seq != req.Seq {
				continue // stale reply from an earlier retry
			}
			resp = &r
			break
		}
		if resp == nil {
			p.mu.Lock()
			p.lost++
			p.mu.Unlock()
			continue // this batch is lost for this cycle; rates resync next poll
		}
		for k, v := range resp.Counters {
			var lsp int
			if _, err := fmt.Sscanf(k, "%d", &lsp); err != nil {
				continue
			}
			out[lsp] = counterSample{bytes: v, simTime: resp.SimTime}
		}
	}
	return out, nil
}

// Collect runs `cycles` polling rounds against all assigned agents and
// streams rate records to sink. The first round only primes the counters
// (a rate needs two reads). sink is called from the polling goroutine.
func (p *Poller) Collect(cycles int, sink func(RateRecord)) error {
	return p.CollectContext(context.Background(), cycles, sink)
}

// CollectContext is Collect with cooperative cancellation: it stops
// between polling rounds (and between waits for the next nominal
// timestamp) once ctx is done, returning ctx.Err(). A round that has
// already started polling finishes first, so the store never sees a
// half-reported cycle from this poller.
func (p *Poller) CollectContext(ctx context.Context, cycles int, sink func(RateRecord)) error {
	for cycle := 0; cycle < cycles; cycle++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		target := float64(cycle) * p.cfg.StepMinutes
		// Wait for the nominal timestamp (fixed timestamps as in §5.1.2).
		for p.clock.Now() < target {
			if err := ctx.Err(); err != nil {
				return err
			}
			p.clock.SleepSim(p.cfg.StepMinutes / 50)
		}
		// Poll all assigned agents concurrently so the whole round completes
		// as close to the nominal timestamp as possible.
		var wg sync.WaitGroup
		results := make([]map[int]counterSample, len(p.agents))
		errs := make([]error, len(p.agents))
		for i, addr := range p.agents {
			wg.Add(1)
			go func(i int, addr *net.UDPAddr) {
				defer wg.Done()
				results[i], errs[i] = p.pollAgent(addr)
			}(i, addr)
		}
		wg.Wait()
		for i, samples := range results {
			if errs[i] != nil {
				return errs[i]
			}
			p.mu.Lock()
			for lsp, s := range samples {
				if prev, ok := p.lastSeen[lsp]; ok && s.simTime > prev.simTime {
					// Rate adjustment: divide by the *actual* spacing of the
					// two reads, not the nominal step.
					minutes := s.simTime - prev.simTime
					bits := float64(s.bytes-prev.bytes) * 8
					rate := bits / (minutes * 60) / 1e6 // Mbps
					interval := int(prev.simTime/p.cfg.StepMinutes + 0.5)
					sink(RateRecord{LSP: lsp, Interval: interval, RateMbps: rate, Poller: p.cfg.Name})
				}
				p.lastSeen[lsp] = s
			}
			p.mu.Unlock()
		}
	}
	return nil
}
