package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice moments should be 0")
	}
}

func TestMeanVector(t *testing.T) {
	samples := []linalg.Vector{{1, 2}, {3, 4}, {5, 6}}
	m := MeanVector(samples)
	if m[0] != 3 || m[1] != 4 {
		t.Fatalf("MeanVector = %v", m)
	}
}

func TestCovarianceMatrixKnown(t *testing.T) {
	// Two perfectly correlated coordinates.
	samples := []linalg.Vector{{1, 2}, {2, 4}, {3, 6}}
	c := CovarianceMatrix(samples)
	// Population variance of {1,2,3} is 2/3.
	if math.Abs(c.At(0, 0)-2.0/3) > 1e-12 {
		t.Fatalf("c00 = %v", c.At(0, 0))
	}
	if math.Abs(c.At(1, 1)-8.0/3) > 1e-12 {
		t.Fatalf("c11 = %v", c.At(1, 1))
	}
	if math.Abs(c.At(0, 1)-4.0/3) > 1e-12 || c.At(0, 1) != c.At(1, 0) {
		t.Fatalf("c01 = %v, c10 = %v", c.At(0, 1), c.At(1, 0))
	}
}

func TestCovarianceMatrixSymmetricPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var samples []linalg.Vector
	for k := 0; k < 50; k++ {
		v := linalg.NewVector(5)
		for i := range v {
			v[i] = rng.NormFloat64() * float64(i+1)
		}
		samples = append(samples, v)
	}
	c := CovarianceMatrix(samples)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if c.At(i, j) != c.At(j, i) {
				t.Fatal("covariance not symmetric")
			}
		}
		if c.At(i, i) < 0 {
			t.Fatal("negative diagonal variance")
		}
	}
	// PSD check via Cholesky of C + tiny ridge.
	r := c.Clone()
	for i := 0; i < 5; i++ {
		r.Add(i, i, 1e-9)
	}
	if _, err := linalg.NewCholesky(r); err != nil {
		t.Fatalf("covariance not PSD: %v", err)
	}
}

func TestFitPowerLawRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	phi, c := 2.44, 1.5
	var means, vars []float64
	for i := 0; i < 400; i++ {
		m := math.Pow(10, -4+8*rng.Float64())
		v := phi * math.Pow(m, c) * math.Exp(0.05*rng.NormFloat64())
		means = append(means, m)
		vars = append(vars, v)
	}
	fit := FitPowerLaw(means, vars)
	if math.Abs(fit.C-c) > 0.05 {
		t.Fatalf("fitted c = %v, want ≈ %v", fit.C, c)
	}
	if math.Abs(fit.Phi-phi)/phi > 0.15 {
		t.Fatalf("fitted phi = %v, want ≈ %v", fit.Phi, phi)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R² = %v too low", fit.R2)
	}
}

func TestFitPowerLawIgnoresNonPositive(t *testing.T) {
	fit := FitPowerLaw([]float64{0, -1, 1, 2}, []float64{1, 1, 1, 2})
	if fit.N != 2 {
		t.Fatalf("N = %d, want 2", fit.N)
	}
}

func TestLinearRegressionExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	slope, intercept, r2 := LinearRegression(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Fatalf("got slope=%v intercept=%v r2=%v", slope, intercept, r2)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("median = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestCumulativeShare(t *testing.T) {
	cs := CumulativeShare([]float64{1, 3, 4, 2})
	want := []float64{0.4, 0.7, 0.9, 1.0}
	for i := range want {
		if math.Abs(cs[i]-want[i]) > 1e-12 {
			t.Fatalf("cs[%d] = %v, want %v", i, cs[i], want[i])
		}
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	want := 0.5*math.Log(2) + 0.5*math.Log(2.0/3)
	if got := KLDivergence(p, q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("KL = %v, want %v", got, want)
	}
	if KLDivergence(p, p) != 0 {
		t.Fatal("KL(p,p) != 0")
	}
	if !math.IsInf(KLDivergence([]float64{1}, []float64{0}), 1) {
		t.Fatal("KL with zero q should be +Inf")
	}
	if KLDivergence([]float64{0, 1}, []float64{0.5, 0.5}) < 0 {
		t.Fatal("0·log(0/q) convention broken")
	}
}

// Property: KL divergence of normalized distributions is non-negative.
func TestKLNonNegativeQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		p := make([]float64, n)
		q := make([]float64, n)
		var sp, sq float64
		for i := 0; i < n; i++ {
			p[i] = math.Abs(raw[i])
			q[i] = math.Abs(raw[n+i]) + 1e-6
			if math.IsNaN(p[i]) || math.IsInf(p[i], 0) || p[i] > 1e100 ||
				math.IsNaN(q[i]) || math.IsInf(q[i], 0) || q[i] > 1e100 {
				return true
			}
			sp += p[i]
			sq += q[i]
		}
		if sp == 0 {
			return true
		}
		for i := 0; i < n; i++ {
			p[i] /= sp
			q[i] /= sq
		}
		return KLDivergence(p, q) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, lambda := range []float64{0.5, 5, 50, 500} {
		const n = 20000
		var xs []float64
		for i := 0; i < n; i++ {
			xs = append(xs, PoissonSample(rng, lambda))
		}
		m, v := Mean(xs), Variance(xs)
		if math.Abs(m-lambda)/lambda > 0.05 {
			t.Fatalf("lambda=%v: mean %v off", lambda, m)
		}
		if math.Abs(v-lambda)/lambda > 0.10 {
			t.Fatalf("lambda=%v: variance %v off", lambda, v)
		}
	}
}

func TestPoissonSampleEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if PoissonSample(rng, 0) != 0 || PoissonSample(rng, -1) != 0 {
		t.Fatal("non-positive lambda should give 0")
	}
}

func TestTruncatedNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		if x := TruncatedNormal(rng, 0, 1, 0); x < 0 {
			t.Fatal("truncated sample below bound")
		}
	}
	// Impossible region: falls back to the bound.
	if x := TruncatedNormal(rng, -100, 0.001, 0); x != 0 {
		t.Fatalf("clamp fallback = %v", x)
	}
}

func TestLognormalPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		if Lognormal(rng, 0, 1) <= 0 {
			t.Fatal("lognormal must be positive")
		}
	}
}
