// Package stats provides the statistical utilities the traffic-matrix
// analysis relies on: sample moments and covariance matrices (the inputs
// to Vardi's second-moment method, §4.2.2), log-log power-law regression
// (for the paper's mean–variance scaling law Var = φ·λ^c of Fig. 6),
// empirical distributions (the cumulative demand shares of Figs. 2–3),
// KL divergence, and seeded Poisson/Gaussian samplers (the synthetic
// experiment of Fig. 12).
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/linalg"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// samples). The paper's moment matching uses population (1/K) normalization,
// matching its definition of Σ̂.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// MeanVector returns the element-wise mean of a set of equal-length samples.
func MeanVector(samples []linalg.Vector) linalg.Vector {
	if len(samples) == 0 {
		return nil
	}
	return MeanVectorInto(linalg.NewVector(len(samples[0])), samples)
}

// MeanVectorInto writes the element-wise mean of the samples into dst
// (which must have the samples' length) and returns it — the reusable
// kernel behind MeanVector for callers that recompute window means every
// re-solve.
func MeanVectorInto(dst linalg.Vector, samples []linalg.Vector) linalg.Vector {
	dst.Zero()
	for _, s := range samples {
		linalg.Axpy(1, s, dst)
	}
	dst.Scale(1 / float64(len(samples)))
	return dst
}

// CovarianceMatrix returns the sample covariance matrix (population
// normalization 1/K, as in the paper's Σ̂) of the given equal-length samples.
func CovarianceMatrix(samples []linalg.Vector) *linalg.Matrix {
	if len(samples) == 0 {
		return linalg.NewMatrix(0, 0)
	}
	n := len(samples[0])
	return CovarianceMatrixInto(linalg.NewMatrix(n, n), linalg.NewVector(n), linalg.NewVector(n), samples)
}

// CovarianceMatrixInto is CovarianceMatrix writing into caller-supplied
// scratch: cov must be n×n, mean and d length n (n the sample length).
// All three are overwritten; cov is returned. Reusing them across the
// streaming engine's periodic Vardi re-solves removes the largest
// per-solve allocation (the dense L×L covariance).
func CovarianceMatrixInto(cov *linalg.Matrix, mean, d linalg.Vector, samples []linalg.Vector) *linalg.Matrix {
	n := len(samples[0])
	if cov.Rows != n || cov.Cols != n || len(mean) != n || len(d) != n {
		panic("stats: CovarianceMatrixInto scratch size mismatch")
	}
	MeanVectorInto(mean, samples)
	for i := range cov.Data {
		cov.Data[i] = 0
	}
	for _, s := range samples {
		linalg.Sub(d, s, mean)
		for i := 0; i < n; i++ {
			if d[i] == 0 {
				continue
			}
			ci := cov.Row(i)
			for j := i; j < n; j++ {
				ci[j] += d[i] * d[j]
			}
		}
	}
	k := 1 / float64(len(samples))
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := cov.At(i, j) * k
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return cov
}

// PowerLawFit is the result of fitting Var = φ·Mean^c by least squares in
// log-log space.
type PowerLawFit struct {
	Phi float64 // multiplicative constant φ
	C   float64 // exponent c
	R2  float64 // coefficient of determination of the log-log regression
	N   int     // number of (mean, variance) pairs used
}

// String renders the fit like the paper reports it.
func (f PowerLawFit) String() string {
	return fmt.Sprintf("Var = %.3g·mean^%.3g (R²=%.3f, n=%d)", f.Phi, f.C, f.R2, f.N)
}

// FitPowerLaw fits variance = φ·mean^c over all pairs with strictly positive
// mean and variance, by ordinary least squares on (log mean, log variance).
func FitPowerLaw(means, variances []float64) PowerLawFit {
	if len(means) != len(variances) {
		panic("stats: FitPowerLaw length mismatch")
	}
	var xs, ys []float64
	for i := range means {
		if means[i] > 0 && variances[i] > 0 {
			xs = append(xs, math.Log(means[i]))
			ys = append(ys, math.Log(variances[i]))
		}
	}
	if len(xs) < 2 {
		return PowerLawFit{Phi: 1, C: 1, N: len(xs)}
	}
	slope, intercept, r2 := LinearRegression(xs, ys)
	return PowerLawFit{Phi: math.Exp(intercept), C: slope, R2: r2, N: len(xs)}
}

// LinearRegression fits y = slope·x + intercept by ordinary least squares and
// returns the slope, intercept and R².
func LinearRegression(xs, ys []float64) (slope, intercept, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LinearRegression needs >= 2 equal-length samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation. xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// CumulativeShare sorts xs descending and returns, for each prefix, the
// fraction of the total accounted for by the prefix. Used for the paper's
// Figure 2 ("top 20% of demands carry 80% of traffic").
func CumulativeShare(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	var total float64
	for _, x := range s {
		total += x
	}
	out := make([]float64, len(s))
	var run float64
	for i, x := range s {
		run += x
		if total > 0 {
			out[i] = run / total
		}
	}
	return out
}

// KLDivergence returns Σ p_i·log(p_i/q_i) for non-negative vectors,
// with the conventions 0·log(0/q)=0 and p·log(p/0)=+Inf.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: KLDivergence length mismatch")
	}
	var d float64
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	return d
}

// PoissonSample draws a Poisson(λ) variate. For large λ it uses the
// Gaussian approximation with continuity correction (exact inversion would
// be prohibitively slow for the Mbps-scale rates we simulate).
func PoissonSample(rng *rand.Rand, lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		// Knuth inversion.
		l := math.Exp(-lambda)
		k, p := 0, 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return float64(k)
			}
			k++
		}
	}
	x := lambda + math.Sqrt(lambda)*rng.NormFloat64()
	return math.Max(0, math.Round(x))
}

// TruncatedNormal draws from N(mean, stddev²) truncated below at lo, by
// rejection with a clamp fallback after a bounded number of attempts.
func TruncatedNormal(rng *rand.Rand, mean, stddev, lo float64) float64 {
	for i := 0; i < 32; i++ {
		x := mean + stddev*rng.NormFloat64()
		if x >= lo {
			return x
		}
	}
	return lo
}

// Lognormal draws exp(N(mu, sigma²)).
func Lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}
