package solver

import (
	"math"

	"repro/internal/linalg"
)

// LinOp is a linear operator with products against vectors. Both
// *sparse.Matrix and the DenseOp wrapper satisfy it.
type LinOp interface {
	MulVec(dst, x linalg.Vector) linalg.Vector
	MulVecT(dst, x linalg.Vector) linalg.Vector
	Rows() int
	Cols() int
}

// DenseOp adapts a dense *linalg.Matrix to the LinOp interface.
type DenseOp struct{ M *linalg.Matrix }

// MulVec computes dst = M·x.
func (o DenseOp) MulVec(dst, x linalg.Vector) linalg.Vector { return o.M.MulVec(dst, x) }

// MulVecT computes dst = Mᵀ·x.
func (o DenseOp) MulVecT(dst, x linalg.Vector) linalg.Vector { return o.M.MulVecT(dst, x) }

// Rows returns the row count.
func (o DenseOp) Rows() int { return o.M.Rows }

// Cols returns the column count.
func (o DenseOp) Cols() int { return o.M.Cols }

// OperatorNormSq estimates ‖A‖₂² (the largest eigenvalue of AᵀA) by power
// iteration, within a few percent — sufficient for a safe gradient step.
func OperatorNormSq(a LinOp) float64 {
	if a.Cols() == 0 || a.Rows() == 0 {
		return 0
	}
	return operatorNormSq(a, linalg.NewVector(a.Cols()), linalg.NewVector(a.Rows()), linalg.NewVector(a.Cols()))
}

// operatorNormSq is the power iteration behind OperatorNormSq, writing
// into caller-supplied scratch (x: cols, y: rows, z: cols).
func operatorNormSq(a LinOp, x, y, z linalg.Vector) float64 {
	if a.Cols() == 0 || a.Rows() == 0 {
		return 0
	}
	for i := range x {
		x[i] = 1 + float64(i%7)*0.1 // deterministic, not axis-aligned
	}
	var lam float64
	for iter := 0; iter < 60; iter++ {
		a.MulVec(y, x)
		a.MulVecT(z, y)
		nz := z.Norm2()
		if nz == 0 {
			return 0
		}
		newLam := linalg.Dot(x, z) / linalg.Dot(x, x)
		copy(x, z)
		x.Scale(1 / nz)
		if iter > 4 && math.Abs(newLam-lam) <= 1e-6*newLam {
			return newLam * 1.02
		}
		lam = newLam
	}
	return lam * 1.05
}

// FISTAResult reports how an accelerated projected-gradient run ended.
type FISTAResult struct {
	Iterations int
	Converged  bool
}

// FISTA minimizes a smooth convex function with L-Lipschitz gradient over a
// convex set, using Beck & Teboulle's accelerated projected gradient with
// restart on non-monotonicity. grad must write ∇f(x) into dst; project must
// project its argument onto the feasible set in place. x is updated in
// place and also returned.
func FISTA(x linalg.Vector, grad func(dst, x linalg.Vector), l float64, project func(linalg.Vector), maxIter int, tol float64) (linalg.Vector, FISTAResult) {
	return fista(x, x.Clone(), x.Clone(), linalg.NewVector(len(x)), grad, l, project, maxIter, tol)
}

// fista is the acceleration loop behind FISTA / FISTAWS, with the
// momentum iterate y, previous iterate xPrev and gradient buffer g
// supplied by the caller (y and xPrev already holding copies of x).
func fista(x, y, xPrev, g linalg.Vector, grad func(dst, x linalg.Vector), l float64, project func(linalg.Vector), maxIter int, tol float64) (linalg.Vector, FISTAResult) {
	if l <= 0 {
		l = 1
	}
	step := 1 / l
	t := 1.0
	for iter := 0; iter < maxIter; iter++ {
		grad(g, y)
		copy(xPrev, x)
		// x = project(y − step·g)
		for i := range x {
			x[i] = y[i] - step*g[i]
		}
		project(x)
		tNext := (1 + math.Sqrt(1+4*t*t)) / 2
		// Momentum with gradient-based restart: if the update reverses the
		// momentum direction, reset t (O'Donoghue & Candès).
		var dot float64
		for i := range x {
			dot += (y[i] - x[i]) * (x[i] - xPrev[i])
		}
		if dot > 0 {
			t, tNext = 1, 1
			copy(y, x)
		} else {
			beta := (t - 1) / tNext
			for i := range y {
				y[i] = x[i] + beta*(x[i]-xPrev[i])
			}
		}
		t = tNext
		// Relative-change stopping rule.
		var diff, norm float64
		for i := range x {
			d := x[i] - xPrev[i]
			diff += d * d
			norm += x[i] * x[i]
		}
		if diff <= tol*tol*(norm+1e-30) {
			return x, FISTAResult{Iterations: iter + 1, Converged: true}
		}
	}
	return x, FISTAResult{Iterations: maxIter, Converged: false}
}

// LeastSquaresNonneg solves  min ‖A·x − b‖² + damp·‖x − prior‖²  s.t. x >= 0
// with FISTA. prior may be nil (treated as the origin) and damp may be 0.
// x0 may be nil (starts from prior, or zero).
func LeastSquaresNonneg(a LinOp, b linalg.Vector, prior linalg.Vector, damp float64, x0 linalg.Vector, maxIter int, tol float64) (linalg.Vector, FISTAResult) {
	return LeastSquaresNonnegWS(nil, a, b, prior, damp, x0, maxIter, tol)
}
