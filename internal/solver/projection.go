package solver

import "sort"

// ProjectSimplex overwrites v with its Euclidean projection onto the scaled
// probability simplex { x >= 0 : Σ x_i = radius }. It implements the exact
// O(n log n) sort-based algorithm (Held, Wolfe & Crowder 1974).
func ProjectSimplex(v []float64, radius float64) {
	n := len(v)
	if n == 0 {
		return
	}
	if radius <= 0 {
		for i := range v {
			v[i] = 0
		}
		return
	}
	u := append([]float64(nil), v...)
	sort.Sort(sort.Reverse(sort.Float64Slice(u)))
	var cssv float64
	rho := -1
	var theta float64
	for i, ui := range u {
		cssv += ui
		t := (cssv - radius) / float64(i+1)
		if ui-t > 0 {
			rho = i
			theta = t
		}
	}
	if rho < 0 {
		// All mass concentrates on the largest coordinate.
		theta = u[0] - radius
	}
	for i := range v {
		x := v[i] - theta
		if x < 0 {
			x = 0
		}
		v[i] = x
	}
}

// ProjectBox overwrites v with its projection onto { x : lo <= x_i <= hi }.
// Use lo = 0, hi = +Inf for the non-negative orthant.
func ProjectBox(v []float64, lo, hi float64) {
	for i, x := range v {
		if x < lo {
			v[i] = lo
		} else if x > hi {
			v[i] = hi
		}
	}
}
