package solver

import "sort"

// ProjectSimplex overwrites v with its Euclidean projection onto the scaled
// probability simplex { x >= 0 : Σ x_i = radius }. It implements the exact
// O(n log n) sort-based algorithm (Held, Wolfe & Crowder 1974).
func ProjectSimplex(v []float64, radius float64) {
	ProjectSimplexInto(v, radius, nil)
}

// ProjectSimplexInto is ProjectSimplex using scratch (grown as needed and
// returned by value for reuse) to hold the sorted copy of v, so repeated
// projections — one per source group per FISTA iteration in the fanout
// solver — stop allocating. The projection is bit-identical to
// ProjectSimplex: the copy is sorted ascending and walked backwards,
// which visits coordinates in exactly the descending order the
// allocating version sorts into.
func ProjectSimplexInto(v []float64, radius float64, scratch []float64) []float64 {
	n := len(v)
	if n == 0 {
		return scratch
	}
	if radius <= 0 {
		for i := range v {
			v[i] = 0
		}
		return scratch
	}
	if cap(scratch) >= n {
		scratch = scratch[:n]
	} else {
		scratch = make([]float64, n)
	}
	u := scratch
	copy(u, v)
	sort.Float64s(u)
	var cssv float64
	rho := -1
	var theta float64
	for i := 0; i < n; i++ {
		ui := u[n-1-i]
		cssv += ui
		t := (cssv - radius) / float64(i+1)
		if ui-t > 0 {
			rho = i
			theta = t
		}
	}
	if rho < 0 {
		// All mass concentrates on the largest coordinate.
		theta = u[n-1] - radius
	}
	for i := range v {
		x := v[i] - theta
		if x < 0 {
			x = 0
		}
		v[i] = x
	}
	return scratch
}

// ProjectBox overwrites v with its projection onto { x : lo <= x_i <= hi }.
// Use lo = 0, hi = +Inf for the non-negative orthant.
func ProjectBox(v []float64, lo, hi float64) {
	for i, x := range v {
		if x < lo {
			v[i] = lo
		} else if x > hi {
			v[i] = hi
		}
	}
}
