package solver

import (
	"testing"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// TestFISTAWSWarmLoopAllocFree pins the workspace contract on the
// iteration loop itself: once a Workspace has sized its momentum,
// gradient and previous-iterate buffers (first call), re-solving with
// the same workspace allocates nothing — the steady-state cost of a
// streaming re-solve is pure arithmetic.
func TestFISTAWSWarmLoopAllocFree(t *testing.T) {
	const n = 64
	c := linalg.NewVector(n)
	for i := range c {
		c[i] = float64(i%7) + 0.5
	}
	grad := func(dst, x linalg.Vector) {
		for i := range dst {
			dst[i] = 2 * (x[i] - c[i])
		}
	}
	project := func(v linalg.Vector) { v.ClampNonNegative() }
	ws := &Workspace{}
	x := linalg.NewVector(n)
	FISTAWS(ws, x, grad, 2, project, 30, 0) // size the buffers
	allocs := testing.AllocsPerRun(20, func() {
		x.Zero()
		FISTAWS(ws, x, grad, 2, project, 30, 0)
	})
	if allocs != 0 {
		t.Errorf("warm FISTAWS allocated %.0f times per solve, want 0", allocs)
	}
}

// TestLeastSquaresNonnegWSIterationsDontAllocate separates the fixed
// per-solve cost (the returned estimate is always a fresh clone, plus
// the gradient closure) from the iteration loop: a warm re-solve must
// allocate the same small constant whether it runs 5 iterations or 200,
// proving the loop itself draws everything from the workspace and the
// operator norm comes from the cache rather than a fresh power method.
func TestLeastSquaresNonnegWSIterationsDontAllocate(t *testing.T) {
	bd := sparse.NewBuilder(12, 8)
	for r := 0; r < 12; r++ {
		for c := r % 2; c < 8; c += 2 {
			bd.Add(r, c, float64((r*3+c)%5)+1)
		}
	}
	a := bd.Build()
	b := linalg.NewVector(a.Rows())
	for i := range b {
		b[i] = float64(i%4) + 1
	}
	x0 := linalg.NewVector(a.Cols())
	ws := &Workspace{}
	LeastSquaresNonnegWS(ws, a, b, nil, 0, x0, 200, 0) // warm buffers + norm cache
	measure := func(iters int) float64 {
		return testing.AllocsPerRun(20, func() {
			LeastSquaresNonnegWS(ws, a, b, nil, 0, x0, iters, 0)
		})
	}
	short, long := measure(5), measure(200)
	if short != long {
		t.Errorf("warm re-solve allocations scale with iterations: %v at 5 iters vs %v at 200", short, long)
	}
	if long > 8 {
		t.Errorf("warm re-solve fixed overhead is %.0f allocations, want a small constant (<= 8)", long)
	}
}
