package solver

import (
	"repro/internal/linalg"
)

// Workspace holds the scratch state of the iterative solvers — gradient,
// residual, momentum and power-iteration buffers plus a cached operator
// norm — so a caller that solves a sequence of related problems (the
// streaming re-solve loop of internal/stream, the pseudo-EM rounds of
// core.Cao) allocates them once instead of once per solve.
//
// A Workspace is owned by one solving goroutine at a time; it is not
// safe for concurrent use. Buffers are sized lazily on first use and
// resized when a larger problem arrives, so one workspace may serve
// differently sized systems back to back. The zero value is ready to
// use; every WS entry point also accepts a nil workspace and then
// behaves exactly like its workspace-free counterpart.
//
// Numerical contract: a workspace changes where intermediate values are
// stored and whether the operator norm is recomputed — never the
// arithmetic — so solutions are bit-identical with and without one.
type Workspace struct {
	r     linalg.Vector // residual, sized to the operator's row count
	g     linalg.Vector // gradient, sized to the column count
	y     linalg.Vector // FISTA momentum iterate
	xPrev linalg.Vector // previous iterate, for the stopping rule

	px, py, pz linalg.Vector // power-iteration scratch

	// Cached ‖A‖₂² keyed by operator identity: re-solving against the
	// same routing matrix skips the 60-iteration power method entirely,
	// and returns the exact float the first call computed.
	op   LinOp
	opSq float64
}

// buf returns *p resized to n, reusing its backing array when possible.
func buf(p *linalg.Vector, n int) linalg.Vector {
	if cap(*p) >= n {
		*p = (*p)[:n]
	} else {
		*p = linalg.NewVector(n)
	}
	return *p
}

// OperatorNormSq returns ‖a‖₂² like the package-level OperatorNormSq,
// but reuses the workspace's power-iteration buffers and caches the
// result per operator identity: repeated calls against the same LinOp
// value return the first call's float without re-running the power
// method. A nil receiver falls back to the uncached computation.
func (ws *Workspace) OperatorNormSq(a LinOp) float64 {
	if ws == nil {
		return OperatorNormSq(a)
	}
	if ws.op == a {
		return ws.opSq
	}
	sq := operatorNormSq(a, buf(&ws.px, a.Cols()), buf(&ws.py, a.Rows()), buf(&ws.pz, a.Cols()))
	ws.op, ws.opSq = a, sq
	return sq
}

// Prime seeds the workspace's operator-norm cache with an externally
// computed value (e.g. from a cross-tenant cache keyed by matrix
// equality), so the next solve against a skips the power method even
// though this workspace never ran it. No-op on a nil workspace.
func (ws *Workspace) Prime(a LinOp, normSq float64) {
	if ws != nil {
		ws.op, ws.opSq = a, normSq
	}
}

// InvalidateOperator drops the cached operator norm (e.g. after a
// routing hot-swap replaces the matrix behind the same pointer — which
// the sparse package never does, but a custom LinOp might).
func (ws *Workspace) InvalidateOperator() {
	if ws != nil {
		ws.op, ws.opSq = nil, 0
	}
}

// FISTAWS is FISTA with the momentum, gradient and previous-iterate
// buffers drawn from ws (nil ws allocates fresh ones, exactly as FISTA
// does). The iterate x is still updated in place and returned.
func FISTAWS(ws *Workspace, x linalg.Vector, grad func(dst, x linalg.Vector), l float64, project func(linalg.Vector), maxIter int, tol float64) (linalg.Vector, FISTAResult) {
	var y, xPrev, g linalg.Vector
	if ws != nil {
		n := len(x)
		y = buf(&ws.y, n)
		copy(y, x)
		xPrev = buf(&ws.xPrev, n)
		copy(xPrev, x)
		g = buf(&ws.g, n)
	} else {
		y = x.Clone()
		xPrev = x.Clone()
		g = linalg.NewVector(len(x))
	}
	return fista(x, y, xPrev, g, grad, l, project, maxIter, tol)
}

// LeastSquaresNonnegWS is LeastSquaresNonneg with its residual and FISTA
// buffers drawn from ws, and the operator norm served from ws's cache
// when the same operator is solved repeatedly (the warm re-solve loop).
// A nil ws behaves exactly like LeastSquaresNonneg.
func LeastSquaresNonnegWS(ws *Workspace, a LinOp, b linalg.Vector, prior linalg.Vector, damp float64, x0 linalg.Vector, maxIter int, tol float64) (linalg.Vector, FISTAResult) {
	n := a.Cols()
	var x linalg.Vector
	switch {
	case x0 != nil:
		x = x0.Clone()
	case prior != nil:
		x = prior.Clone()
	default:
		x = linalg.NewVector(n)
	}
	x.ClampNonNegative()
	l := 2*ws.OperatorNormSq(a) + 2*damp
	var r linalg.Vector
	if ws != nil {
		r = buf(&ws.r, a.Rows())
	} else {
		r = linalg.NewVector(a.Rows())
	}
	grad := func(dst, xx linalg.Vector) {
		a.MulVec(r, xx)
		linalg.Sub(r, r, b)
		a.MulVecT(dst, r)
		dst.Scale(2)
		if damp > 0 {
			for i := range dst {
				p := 0.0
				if prior != nil {
					p = prior[i]
				}
				dst[i] += 2 * damp * (xx[i] - p)
			}
		}
	}
	return FISTAWS(ws, x, grad, l, func(v linalg.Vector) { v.ClampNonNegative() }, maxIter, tol)
}

// EntropyRegularizedFromWS is EntropyRegularizedFrom with the residual,
// gradient and previous-iterate buffers drawn from ws and the operator
// norm served from ws's cache. A nil ws behaves exactly like
// EntropyRegularizedFrom. The returned iterate is always freshly
// allocated (it is the published estimate), never a workspace buffer.
func EntropyRegularizedFromWS(ws *Workspace, a LinOp, b linalg.Vector, prior linalg.Vector, tau float64, x0 linalg.Vector, maxIter int, tol float64) (linalg.Vector, FISTAResult) {
	n := a.Cols()
	if len(prior) != n {
		panic("solver: EntropyRegularized prior length mismatch")
	}
	var x linalg.Vector
	if x0 != nil {
		x = x0.Clone()
	} else {
		x = prior.Clone()
	}
	x.ClampNonNegative()
	l := 2 * ws.OperatorNormSq(a)
	if l <= 0 {
		l = 1
	}
	step := 1 / l
	eta := step * tau // prox weight on the KL term

	var r, g, xPrev linalg.Vector
	if ws != nil {
		r = buf(&ws.r, a.Rows())
		g = buf(&ws.g, n)
		xPrev = buf(&ws.xPrev, n)
	} else {
		r = linalg.NewVector(a.Rows())
		g = linalg.NewVector(n)
		xPrev = linalg.NewVector(n)
	}
	res := FISTAResult{}
	for iter := 0; iter < maxIter; iter++ {
		copy(xPrev, x)
		// Forward step on the quadratic part.
		a.MulVec(r, x)
		linalg.Sub(r, r, b)
		a.MulVecT(g, r)
		for i := range x {
			z := x[i] - 2*step*g[i]
			if prior[i] <= 0 {
				x[i] = 0
				continue
			}
			x[i] = klProx(z, prior[i], eta)
		}
		var diff, norm float64
		for i := range x {
			d := x[i] - xPrev[i]
			diff += d * d
			norm += x[i] * x[i]
		}
		res.Iterations = iter + 1
		if diff <= tol*tol*(norm+1e-30) {
			res.Converged = true
			break
		}
	}
	return x, res
}
