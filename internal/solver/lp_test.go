package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestLPSimpleMaximize(t *testing.T) {
	// max x1 + x2 s.t. x1 + x2 + s = 4, x1 + 3x2 + s2 = 6 → optimum 4.
	a := linalg.NewMatrixFromRows([][]float64{
		{1, 1, 1, 0},
		{1, 3, 0, 1},
	})
	b := linalg.Vector{4, 6}
	lp, err := NewLP(a, b)
	if err != nil {
		t.Fatalf("NewLP: %v", err)
	}
	x, obj, err := lp.Maximize(linalg.Vector{1, 1, 0, 0})
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if math.Abs(obj-4) > 1e-8 {
		t.Fatalf("obj = %v, want 4", obj)
	}
	if math.Abs(x[0]+x[1]-4) > 1e-8 {
		t.Fatalf("x = %v", x)
	}
}

func TestLPMinimize(t *testing.T) {
	// min x1 + 2x2 s.t. x1 + x2 = 3, x >= 0 → x = (3,0), obj 3.
	a := linalg.NewMatrixFromRows([][]float64{{1, 1}})
	lp, err := NewLP(a, linalg.Vector{3})
	if err != nil {
		t.Fatalf("NewLP: %v", err)
	}
	x, obj, err := lp.Minimize(linalg.Vector{1, 2})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if math.Abs(obj-3) > 1e-8 || math.Abs(x[0]-3) > 1e-8 || math.Abs(x[1]) > 1e-8 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestLPInfeasible(t *testing.T) {
	// x1 = 1 and x1 = 2 simultaneously.
	a := linalg.NewMatrixFromRows([][]float64{{1}, {1}})
	if _, err := NewLP(a, linalg.Vector{1, 2}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestLPNegativeRHSFeasible(t *testing.T) {
	// -x1 = -2 → x1 = 2.
	a := linalg.NewMatrixFromRows([][]float64{{-1}})
	lp, err := NewLP(a, linalg.Vector{-2})
	if err != nil {
		t.Fatalf("NewLP: %v", err)
	}
	x, _, err := lp.Maximize(linalg.Vector{1})
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if math.Abs(x[0]-2) > 1e-8 {
		t.Fatalf("x = %v", x)
	}
}

func TestLPUnbounded(t *testing.T) {
	// max x2 s.t. x1 - x2 = 0: x can grow without bound.
	a := linalg.NewMatrixFromRows([][]float64{{1, -1}})
	lp, err := NewLP(a, linalg.Vector{0})
	if err != nil {
		t.Fatalf("NewLP: %v", err)
	}
	if _, _, err := lp.Maximize(linalg.Vector{0, 1}); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestLPRedundantRows(t *testing.T) {
	// Second row duplicates the first; solver must not declare infeasible.
	a := linalg.NewMatrixFromRows([][]float64{
		{1, 1},
		{2, 2},
	})
	lp, err := NewLP(a, linalg.Vector{3, 6})
	if err != nil {
		t.Fatalf("NewLP with redundant rows: %v", err)
	}
	x, obj, err := lp.Maximize(linalg.Vector{1, 0})
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if math.Abs(obj-3) > 1e-8 {
		t.Fatalf("obj = %v want 3 (x=%v)", obj, x)
	}
}

func TestLPWarmStartConsistency(t *testing.T) {
	// Re-optimizing several objectives over one feasible set must match
	// fresh cold solves.
	rng := rand.New(rand.NewSource(42))
	m, n := 8, 20
	a := linalg.NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = float64(rng.Intn(2)) // 0/1 like a routing matrix
	}
	xFeas := linalg.NewVector(n)
	for i := range xFeas {
		xFeas[i] = rng.Float64()
	}
	b := a.MulVec(nil, xFeas)

	warm, err := NewLP(a, b)
	if err != nil {
		t.Fatalf("NewLP: %v", err)
	}
	for trial := 0; trial < 10; trial++ {
		c := linalg.NewVector(n)
		c[rng.Intn(n)] = 1
		_, objWarm, err := warm.Maximize(c)
		if err != nil {
			t.Fatalf("warm Maximize: %v", err)
		}
		cold, err := NewLP(a, b)
		if err != nil {
			t.Fatalf("cold NewLP: %v", err)
		}
		_, objCold, err := cold.Maximize(c)
		if err != nil {
			t.Fatalf("cold Maximize: %v", err)
		}
		if math.Abs(objWarm-objCold) > 1e-6*(1+math.Abs(objCold)) {
			t.Fatalf("trial %d: warm obj %v != cold obj %v", trial, objWarm, objCold)
		}
	}
}

func TestLPSolutionFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, n := 6, 15
	a := linalg.NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = float64(rng.Intn(2))
	}
	xFeas := linalg.NewVector(n)
	for i := range xFeas {
		xFeas[i] = rng.Float64()
	}
	b := a.MulVec(nil, xFeas)
	lp, err := NewLP(a, b)
	if err != nil {
		t.Fatalf("NewLP: %v", err)
	}
	c := linalg.NewVector(n)
	c[3] = 1
	x, _, err := lp.Maximize(c)
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	ax := a.MulVec(nil, x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-6*(1+b[i]) {
			t.Fatalf("constraint %d violated: %v vs %v", i, ax[i], b[i])
		}
	}
	for j, xi := range x {
		if xi < -1e-9 {
			t.Fatalf("x[%d] = %v negative", j, xi)
		}
	}
}

// Property: the maximum of x_p over {Rx=b, x>=0} is at least the value of
// any known feasible point's coordinate, and bounds are ordered.
func TestLPBoundsSandwichTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		m, n := 5, 12
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = float64(rng.Intn(2))
		}
		truth := linalg.NewVector(n)
		for i := range truth {
			truth[i] = rng.Float64() * 10
		}
		b := a.MulVec(nil, truth)
		lp, err := NewLP(a, b)
		if err != nil {
			t.Fatalf("NewLP: %v", err)
		}
		for p := 0; p < n; p++ {
			c := linalg.NewVector(n)
			c[p] = 1
			up := math.Inf(1) // a column no constraint touches is unbounded
			if _, v, err := lp.Maximize(c); err == nil {
				up = v
			} else if !errors.Is(err, ErrUnbounded) {
				t.Fatalf("Maximize: %v", err)
			}
			_, lo, err := lp.Minimize(c)
			if err != nil {
				t.Fatalf("Minimize: %v", err)
			}
			if lo > truth[p]+1e-6 || up < truth[p]-1e-6 {
				t.Fatalf("trial %d p=%d: bounds [%v,%v] exclude truth %v", trial, p, lo, up, truth[p])
			}
		}
	}
}

func TestLPDegenerateCycling(t *testing.T) {
	// Beale's classic cycling example (needs anti-cycling to terminate).
	// Optimum is -0.05 at x = (0.04, 0, 1, 0).
	a := linalg.NewMatrixFromRows([][]float64{
		{0.25, -60, -0.04, 9, 1, 0, 0},
		{0.5, -90, -0.02, 3, 0, 1, 0},
		{0, 0, 1, 0, 0, 0, 1},
	})
	b := linalg.Vector{0, 0, 1}
	lp, err := NewLP(a, b)
	if err != nil {
		t.Fatalf("NewLP: %v", err)
	}
	c := linalg.Vector{-0.75, 150, -0.02, 6, 0, 0, 0}
	_, obj, err := lp.Minimize(c)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if math.Abs(obj-(-0.05)) > 1e-8 {
		t.Fatalf("Beale optimum = %v, want -0.05", obj)
	}
}

func BenchmarkLPWarmVsCold(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m, n := 30, 90
	a := linalg.NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = float64(rng.Intn(2))
	}
	x := linalg.NewVector(n)
	for i := range x {
		x[i] = rng.Float64()
	}
	rhs := a.MulVec(nil, x)
	b.Run("warm", func(b *testing.B) {
		lp, err := NewLP(a, rhs)
		if err != nil {
			b.Fatal(err)
		}
		c := linalg.NewVector(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Zero()
			c[i%n] = 1
			if _, _, err := lp.Maximize(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		c := linalg.NewVector(n)
		for i := 0; i < b.N; i++ {
			lp, err := NewLP(a, rhs)
			if err != nil {
				b.Fatal(err)
			}
			c.Zero()
			c[i%n] = 1
			if _, _, err := lp.Maximize(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}
