// Package solver provides the mathematical-programming building blocks
// behind the estimation methods of the paper's §4: a two-phase primal
// simplex LP solver with warm starting (the worst-case bound programs of
// §4.3.1), Lawson–Hanson non-negative least squares (Vardi's moment
// systems, §4.2.2), accelerated projected gradient (FISTA) for
// box-constrained quadratics (the Bayesian estimator of eq. 7 and the
// constant-fanout problem of §4.2.4), a projected-gradient solver for
// entropy-regularized objectives (eq. 6), Euclidean projection onto the
// probability simplex (the per-source fanout constraints), and
// Kruithof/Krupp iterative proportional fitting (§4.2.1).
//
// All solvers are deterministic and depend only on the standard library.
package solver

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrInfeasible is returned when an LP has no feasible point.
var ErrInfeasible = errors.New("solver: linear program is infeasible")

// ErrUnbounded is returned when an LP objective is unbounded over the
// feasible set.
var ErrUnbounded = errors.New("solver: linear program is unbounded")

// ErrIterations is returned when an iterative solver hits its iteration
// budget before reaching its convergence tolerance.
var ErrIterations = errors.New("solver: iteration limit reached")

const lpTol = 1e-9

// LP solves linear programs over the standard-form feasible set
//
//	{ x >= 0 : A·x = b }.
//
// Construction runs simplex phase 1 once; subsequent Minimize/Maximize calls
// re-optimize from the current basis, which makes sweeps of many objectives
// over one feasible set (the worst-case-bound computation solves 2·P of
// them) dramatically cheaper than solving each LP cold.
type LP struct {
	m, n    int            // active rows, structural columns
	tab     *linalg.Matrix // m × (n+nArt+1) tableau: B⁻¹A | B⁻¹b
	basis   []int          // basis[i] = structural column basic in row i, or artificial (>= n)
	inBasis []bool         // column j currently basic
	nArt    int            // number of artificial columns (phase 1 only)
	rowsOff []bool         // redundant rows discovered in phase 1
	pivots  int            // cumulative pivot count (for ablation benches)
	price   linalg.Vector  // scratch: c_Bᵀ·B⁻¹A for all columns
}

// NewLP builds the feasible set {x >= 0 : A x = b} and finds an initial
// basic feasible solution via phase-1 simplex. Redundant equality rows are
// detected and deactivated. Returns ErrInfeasible if the set is empty.
func NewLP(a *linalg.Matrix, b linalg.Vector) (*LP, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("solver: LP shape mismatch: %d rows vs %d rhs", a.Rows, len(b))
	}
	m, n := a.Rows, a.Cols
	lp := &LP{m: m, n: n, nArt: m, rowsOff: make([]bool, m)}
	// Tableau columns: n structural, m artificial, 1 rhs.
	lp.tab = linalg.NewMatrix(m, n+m+1)
	lp.basis = make([]int, m)
	lp.inBasis = make([]bool, n+m)
	lp.price = linalg.NewVector(n + m)
	for i := 0; i < m; i++ {
		sign := 1.0
		if b[i] < 0 {
			sign = -1
		}
		row := lp.tab.Row(i)
		for j := 0; j < n; j++ {
			row[j] = sign * a.At(i, j)
		}
		row[n+i] = 1
		row[n+m] = sign * b[i]
		lp.basis[i] = n + i // artificial basic
		lp.inBasis[n+i] = true
	}
	if err := lp.phase1(); err != nil {
		return nil, err
	}
	return lp, nil
}

// rhs returns the current right-hand-side (basic variable values) column
// index.
func (lp *LP) rhsCol() int { return lp.n + lp.nArt }

// phase1 minimizes the sum of artificials and then eliminates them.
func (lp *LP) phase1() error {
	cost := make(linalg.Vector, lp.n+lp.nArt)
	for j := lp.n; j < lp.n+lp.nArt; j++ {
		cost[j] = 1
	}
	if _, err := lp.optimize(cost, true); err != nil {
		if errors.Is(err, ErrUnbounded) {
			// Phase-1 objective is bounded below by 0; cannot happen.
			return fmt.Errorf("solver: internal: unbounded phase 1: %w", err)
		}
		return err
	}
	// Feasibility check: all artificials must be zero.
	rhs := lp.rhsCol()
	var artSum float64
	for i := 0; i < lp.m; i++ {
		if lp.rowsOff[i] {
			continue
		}
		if lp.basis[i] >= lp.n {
			artSum += lp.tab.At(i, rhs)
		}
	}
	if artSum > 1e-7 {
		return ErrInfeasible
	}
	// Drive remaining (zero-valued) artificials out of the basis.
	for i := 0; i < lp.m; i++ {
		if lp.rowsOff[i] || lp.basis[i] < lp.n {
			continue
		}
		pivoted := false
		row := lp.tab.Row(i)
		for j := 0; j < lp.n; j++ {
			if math.Abs(row[j]) > 1e-8 {
				lp.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is redundant (all structural coefficients zero).
			lp.rowsOff[i] = true
		}
	}
	return nil
}

// pivot makes column col basic in row prow.
func (lp *LP) pivot(prow, col int) {
	lp.pivots++
	ncols := lp.n + lp.nArt + 1
	p := lp.tab.Row(prow)
	inv := 1 / p[col]
	for j := 0; j < ncols; j++ {
		p[j] *= inv
	}
	p[col] = 1 // kill round-off
	for i := 0; i < lp.m; i++ {
		if i == prow || lp.rowsOff[i] {
			continue
		}
		r := lp.tab.Row(i)
		f := r[col]
		if f == 0 {
			continue
		}
		for j := 0; j < ncols; j++ {
			r[j] -= f * p[j]
		}
		r[col] = 0
	}
	lp.inBasis[lp.basis[prow]] = false
	lp.basis[prow] = col
	lp.inBasis[col] = true
}

// optimize runs primal simplex for cost vector c (length n+nArt) from the
// current basis. When allowArt is false, artificial columns are never
// entered. It uses Dantzig pricing with a Bland fallback against cycling.
func (lp *LP) optimize(cost linalg.Vector, allowArt bool) (float64, error) {
	rhs := lp.rhsCol()
	nCandidate := lp.n
	if allowArt {
		nCandidate = lp.n + lp.nArt
	}
	maxIter := 200 * (lp.m + lp.n + 10)
	staleLimit := 2 * (lp.m + 10)
	lastObj := math.Inf(1)
	stale := 0
	for iter := 0; iter < maxIter; iter++ {
		// Price all columns at once: price_j = c_Bᵀ·(B⁻¹A)_j, accumulated
		// row-sequentially for cache friendliness.
		price := lp.price
		price.Zero()
		for i := 0; i < lp.m; i++ {
			if lp.rowsOff[i] {
				continue
			}
			cb := cost[lp.basis[i]]
			if cb == 0 {
				continue
			}
			linalg.Axpy(cb, lp.tab.Row(i)[:len(price)], price)
		}
		// Reduced costs: r_j = c_j − price_j.
		bland := stale > staleLimit
		enter := -1
		best := -lpTol
		for j := 0; j < nCandidate; j++ {
			if lp.inBasis[j] {
				continue
			}
			r := cost[j] - price[j]
			if bland {
				if r < -lpTol {
					enter = j
					break
				}
			} else if r < best {
				best = r
				enter = j
			}
		}
		if enter < 0 {
			return lp.objective(cost), nil
		}
		// Ratio test.
		leave := -1
		var minRatio float64
		for i := 0; i < lp.m; i++ {
			if lp.rowsOff[i] {
				continue
			}
			a := lp.tab.At(i, enter)
			if a <= lpTol {
				continue
			}
			ratio := lp.tab.At(i, rhs) / a
			if leave < 0 || ratio < minRatio-lpTol ||
				(math.Abs(ratio-minRatio) <= lpTol && lp.basis[i] < lp.basis[leave]) {
				leave = i
				minRatio = ratio
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		lp.pivot(leave, enter)
		obj := lp.objective(cost)
		if obj < lastObj-1e-12 {
			lastObj = obj
			stale = 0
		} else {
			stale++
		}
	}
	return 0, fmt.Errorf("solver: simplex iteration limit: %w", ErrIterations)
}

func (lp *LP) objective(cost linalg.Vector) float64 {
	rhs := lp.rhsCol()
	var obj float64
	for i := 0; i < lp.m; i++ {
		if lp.rowsOff[i] {
			continue
		}
		obj += cost[lp.basis[i]] * lp.tab.At(i, rhs)
	}
	return obj
}

// Solution returns the current basic feasible solution (length n).
func (lp *LP) Solution() linalg.Vector {
	x := linalg.NewVector(lp.n)
	rhs := lp.rhsCol()
	for i := 0; i < lp.m; i++ {
		if lp.rowsOff[i] {
			continue
		}
		if j := lp.basis[i]; j < lp.n {
			if v := lp.tab.At(i, rhs); v > 0 {
				x[j] = v
			}
		}
	}
	return x
}

// Pivots returns the cumulative number of simplex pivots performed,
// including phase 1. Useful for measuring warm-start savings.
func (lp *LP) Pivots() int { return lp.pivots }

// Minimize re-optimizes min cᵀx over the feasible set from the current
// basis and returns the optimal point and value.
func (lp *LP) Minimize(c linalg.Vector) (linalg.Vector, float64, error) {
	if len(c) != lp.n {
		return nil, 0, fmt.Errorf("solver: Minimize cost length %d, want %d", len(c), lp.n)
	}
	// Artificial columns get zero cost; they can never re-enter the basis
	// because optimize is called with allowArt=false, and any artificial
	// still basic sits at value zero on a redundant-but-active row.
	cost := make(linalg.Vector, lp.n+lp.nArt)
	copy(cost, c)
	obj, err := lp.optimize(cost, false)
	if err != nil {
		return nil, 0, err
	}
	return lp.Solution(), obj, nil
}

// Maximize re-optimizes max cᵀx over the feasible set from the current
// basis and returns the optimal point and value.
func (lp *LP) Maximize(c linalg.Vector) (linalg.Vector, float64, error) {
	neg := make(linalg.Vector, len(c))
	for i, x := range c {
		neg[i] = -x
	}
	x, obj, err := lp.Minimize(neg)
	return x, -obj, err
}
