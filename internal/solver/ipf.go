package solver

import (
	"errors"
	"math"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// IPFResult reports the outcome of an iterative-proportional-fitting run.
type IPFResult struct {
	Iterations int
	Converged  bool
	MaxError   float64 // largest relative constraint violation at exit
}

// KruithofBalance implements Kruithof's classical 1937 projection (also
// known as RAS or biproportional fitting): starting from a prior matrix it
// alternately rescales rows and columns until the row sums match rowSums and
// the column sums match colSums. The marginals must have (approximately)
// equal totals; the prior must be non-negative with at least one positive
// entry in every row and column whose target marginal is positive.
//
// The iterate converges to the matrix that minimizes the KL divergence from
// the prior subject to the marginal constraints (Krupp 1979).
func KruithofBalance(prior *linalg.Matrix, rowSums, colSums linalg.Vector, maxIter int, tol float64) (*linalg.Matrix, IPFResult, error) {
	n, m := prior.Rows, prior.Cols
	if len(rowSums) != n || len(colSums) != m {
		return nil, IPFResult{}, errors.New("solver: KruithofBalance marginal size mismatch")
	}
	x := prior.Clone()
	res := IPFResult{}
	for iter := 0; iter < maxIter; iter++ {
		// Row scaling.
		for i := 0; i < n; i++ {
			row := x.Row(i)
			s := row.Sum()
			switch {
			case s > 0:
				f := rowSums[i] / s
				row.Scale(f)
			case rowSums[i] > tol:
				return nil, res, errors.New("solver: KruithofBalance prior has empty row with positive target")
			}
		}
		// Column scaling.
		for j := 0; j < m; j++ {
			var s float64
			for i := 0; i < n; i++ {
				s += x.At(i, j)
			}
			switch {
			case s > 0:
				f := colSums[j] / s
				for i := 0; i < n; i++ {
					x.Set(i, j, x.At(i, j)*f)
				}
			case colSums[j] > tol:
				return nil, res, errors.New("solver: KruithofBalance prior has empty column with positive target")
			}
		}
		res.Iterations = iter + 1
		// Check convergence on row sums (columns are exact right after the
		// column scaling step).
		res.MaxError = 0
		for i := 0; i < n; i++ {
			s := x.Row(i).Sum()
			denom := math.Max(rowSums[i], 1e-30)
			if e := math.Abs(s-rowSums[i]) / denom; e > res.MaxError {
				res.MaxError = e
			}
		}
		if res.MaxError <= tol {
			res.Converged = true
			break
		}
	}
	return x, res, nil
}

// IterativeScaling implements Krupp's generalization of Kruithof's method to
// arbitrary non-negative linear constraints A·x = b: cyclic multiplicative
// Bregman projections onto each constraint. For 0/1 constraint matrices
// (routing matrices) the projection onto constraint l multiplies every
// x_j with a_lj = 1 by b_l / (A·x)_l. The iterate stays on the prior's
// support and converges to the KL projection of the prior onto the
// constraint set when the system is consistent.
func IterativeScaling(a *sparse.Matrix, b linalg.Vector, prior linalg.Vector, maxIter int, tol float64) (linalg.Vector, IPFResult) {
	x := prior.Clone()
	x.ClampNonNegative()
	res := IPFResult{}
	ax := linalg.NewVector(a.Rows())
	for iter := 0; iter < maxIter; iter++ {
		for l := 0; l < a.Rows(); l++ {
			// Current value of constraint l.
			var s float64
			a.Row(l, func(c int, v float64) { s += v * x[c] })
			if s <= 0 {
				continue // constraint unreachable on this support
			}
			f := b[l] / s
			if f <= 0 {
				f = 0
			}
			// Multiplicative update on the support of row l, tempered for
			// non-0/1 coefficients by exponent v (exact for v=1).
			a.Row(l, func(c int, v float64) {
				if v == 1 {
					x[c] *= f
				} else if v > 0 {
					x[c] *= math.Pow(f, v)
				}
			})
		}
		res.Iterations = iter + 1
		a.MulVec(ax, x)
		res.MaxError = 0
		for l := range ax {
			denom := math.Max(math.Abs(b[l]), 1e-30)
			if e := math.Abs(ax[l]-b[l]) / denom; e > res.MaxError {
				res.MaxError = e
			}
		}
		if res.MaxError <= tol {
			res.Converged = true
			break
		}
	}
	return x, res
}
