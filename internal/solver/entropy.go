package solver

import (
	"math"

	"repro/internal/linalg"
)

// EntropyRegularized solves the entropy-penalized tomography problem of
// Zhang et al. (eq. 6 in the paper):
//
//	minimize ‖A·x − b‖₂² + tau·D(x‖prior)   subject to x >= 0
//
// where D(x‖p) = Σ x_i·log(x_i/p_i) − x_i + p_i is the generalized
// Kullback–Leibler divergence. It uses forward–backward splitting: a
// gradient step on the quadratic term followed by the exact proximal
// operator of the KL term, which is separable and solved per coordinate by
// safeguarded Newton. Coordinates whose prior is zero are pinned to zero
// (the KL term is +Inf off the prior's support).
func EntropyRegularized(a LinOp, b linalg.Vector, prior linalg.Vector, tau float64, maxIter int, tol float64) (linalg.Vector, FISTAResult) {
	return EntropyRegularizedFrom(a, b, prior, tau, nil, maxIter, tol)
}

// EntropyRegularizedFrom is EntropyRegularized with an explicit starting
// point x0 (nil starts from the prior). Warm starting pays off when a
// sequence of closely related problems is solved, e.g. the greedy
// direct-measurement search of §5.3.6.
func EntropyRegularizedFrom(a LinOp, b linalg.Vector, prior linalg.Vector, tau float64, x0 linalg.Vector, maxIter int, tol float64) (linalg.Vector, FISTAResult) {
	return EntropyRegularizedFromWS(nil, a, b, prior, tau, x0, maxIter, tol)
}

// klProx solves the scalar proximal problem
//
//	argmin_{u>0}  (u−z)²/2 + eta·(u·log(u/p) − u + p)
//
// whose optimality condition is u + eta·log(u/p) = z. The left side is
// strictly increasing in u, so safeguarded Newton from a positive start
// converges quadratically.
func klProx(z, p, eta float64) float64 {
	if eta <= 0 {
		if z < 0 {
			return 0
		}
		return z
	}
	// Bracket: g(u) = u + eta·log(u/p) − z is -Inf at 0+, +Inf at +Inf.
	lo, hi := 0.0, math.Max(z, p)+eta+1
	u := z
	if z <= 0 {
		// For z <= 0 the optimality condition u = p·exp((z−u)/eta)
		// bounds the solution by ub = p·exp(z/eta), and g(ub) = ub > 0,
		// so [0, ub] brackets the root tightly. When ub underflows the
		// solution is zero at double precision — the common case for
		// the many near-zero demands of a heavy-tailed matrix, whose
		// gradient step drives z far below zero. Starting inside the
		// tight bracket (rather than at 1e-300, where g' = 1 + eta/u
		// explodes and every Newton step stalls into bisection over
		// [0, p]) keeps the per-coordinate cost at a few iterations;
		// without it, large backbones spend their entire entropy solve
		// bisecting dead coordinates.
		ub := p * math.Exp(z/eta)
		if ub < 1e-300 {
			return 0
		}
		if ub < hi {
			hi = ub
		}
		// First Newton step from ub in closed form: ub − ub/(1+eta/ub).
		u = ub * (eta / (ub + eta))
		if u <= 0 {
			u = ub / 2
		}
	}
	for iter := 0; iter < 60; iter++ {
		g := u + eta*math.Log(u/p) - z
		if math.Abs(g) <= 1e-12*(1+math.Abs(z)) {
			return u
		}
		if g > 0 {
			hi = u
		} else {
			lo = u
		}
		dg := 1 + eta/u
		next := u - g/dg
		if next <= lo || next >= hi || math.IsNaN(next) {
			next = (lo + hi) / 2 // bisection safeguard
			if next <= 0 {
				next = hi / 2
			}
		}
		if next <= 0 {
			next = u / 2
		}
		u = next
	}
	return u
}

// GeneralizedKL returns D(x‖p) = Σ x·log(x/p) − x + p over the coordinates,
// with the convention 0·log(0/p) = 0, and +Inf if x_i > 0 where p_i = 0.
func GeneralizedKL(x, p linalg.Vector) float64 {
	var d float64
	for i := range x {
		switch {
		case x[i] == 0:
			d += p[i]
		case p[i] <= 0:
			return math.Inf(1)
		default:
			d += x[i]*math.Log(x[i]/p[i]) - x[i] + p[i]
		}
	}
	return d
}
