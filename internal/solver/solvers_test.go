package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

func randDense(rng *rand.Rand, rows, cols int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNNLSUnconstrainedInterior(t *testing.T) {
	// If the unconstrained LS solution is positive, NNLS must find it.
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 12, 4)
	xTrue := linalg.Vector{1, 2, 0.5, 3}
	b := a.MulVec(nil, xTrue)
	x := NNLS(a, b)
	for i := range xTrue {
		if math.Abs(x[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestNNLSActiveConstraint(t *testing.T) {
	// Known textbook case: unconstrained optimum has a negative coordinate,
	// NNLS must clamp it to zero and satisfy KKT.
	a := linalg.NewMatrixFromRows([][]float64{
		{1, 0},
		{0, 1},
		{1, 1},
	})
	b := linalg.Vector{-1, 2, 1}
	x := NNLS(a, b)
	if x[0] != 0 {
		t.Fatalf("x[0] = %v, want 0", x[0])
	}
	if x[1] <= 0 {
		t.Fatalf("x[1] = %v, want > 0", x[1])
	}
	checkNNLSKKT(t, a, b, x)
}

func checkNNLSKKT(t *testing.T, a *linalg.Matrix, b, x linalg.Vector) {
	t.Helper()
	r := linalg.Sub(linalg.NewVector(len(b)), b, a.MulVec(nil, x))
	w := a.MulVecT(nil, r) // gradient of -0.5‖Ax-b‖² wrt x
	for j := range x {
		if x[j] < 0 {
			t.Fatalf("x[%d] = %v negative", j, x[j])
		}
		if x[j] > 1e-8 && math.Abs(w[j]) > 1e-5 {
			t.Fatalf("KKT stationarity violated at %d: w=%v x=%v", j, w[j], x[j])
		}
		if x[j] <= 1e-8 && w[j] > 1e-5 {
			t.Fatalf("KKT sign violated at %d: w=%v", j, w[j])
		}
	}
}

// Property: NNLS satisfies the KKT conditions on random instances.
func TestNNLSKKTQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		m, n := 5+rng.Intn(15), 2+rng.Intn(8)
		a := randDense(rng, m, n)
		b := linalg.NewVector(m)
		for i := range b {
			b[i] = rng.NormFloat64() * 3
		}
		x := NNLS(a, b)
		checkNNLSKKT(t, a, b, x)
	}
}

func TestProjectSimplexBasic(t *testing.T) {
	v := []float64{0.5, 0.5}
	ProjectSimplex(v, 1)
	if math.Abs(v[0]-0.5) > 1e-12 || math.Abs(v[1]-0.5) > 1e-12 {
		t.Fatalf("interior point moved: %v", v)
	}
	v = []float64{2, 0}
	ProjectSimplex(v, 1)
	if math.Abs(v[0]-1) > 1e-12 || v[1] != 0 {
		t.Fatalf("projection = %v", v)
	}
}

func TestProjectSimplexNegativeRadius(t *testing.T) {
	v := []float64{1, 2}
	ProjectSimplex(v, 0)
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("radius 0 should zero the vector: %v", v)
	}
}

// Property: projection lands on the simplex and is idempotent.
func TestProjectSimplexPropertiesQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e10 {
				return true
			}
		}
		v := append([]float64(nil), raw...)
		ProjectSimplex(v, 1)
		var sum float64
		for _, x := range v {
			if x < 0 {
				return false
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			return false
		}
		w := append([]float64(nil), v...)
		ProjectSimplex(w, 1)
		for i := range v {
			if math.Abs(w[i]-v[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the projection is the nearest simplex point (checked against
// random feasible candidates).
func TestProjectSimplexOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 2
		}
		p := append([]float64(nil), v...)
		ProjectSimplex(p, 1)
		distP := 0.0
		for i := range v {
			distP += (p[i] - v[i]) * (p[i] - v[i])
		}
		// Random candidate on the simplex.
		cand := make([]float64, n)
		var s float64
		for i := range cand {
			cand[i] = rng.Float64()
			s += cand[i]
		}
		for i := range cand {
			cand[i] /= s
		}
		distC := 0.0
		for i := range v {
			distC += (cand[i] - v[i]) * (cand[i] - v[i])
		}
		if distP > distC+1e-9 {
			t.Fatalf("projection farther than candidate: %v > %v", distP, distC)
		}
	}
}

func TestProjectBox(t *testing.T) {
	v := []float64{-1, 0.5, 2}
	ProjectBox(v, 0, 1)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("ProjectBox = %v", v)
		}
	}
}

func TestOperatorNormSqDiagonal(t *testing.T) {
	d := linalg.NewMatrix(3, 3)
	d.Set(0, 0, 3)
	d.Set(1, 1, 1)
	d.Set(2, 2, 2)
	got := OperatorNormSq(DenseOp{d})
	if got < 9 || got > 9*1.1 {
		t.Fatalf("OperatorNormSq = %v, want ≈ 9", got)
	}
}

func TestLeastSquaresNonnegMatchesNNLS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		m, n := 10, 6
		a := randDense(rng, m, n)
		b := linalg.NewVector(m)
		for i := range b {
			b[i] = rng.NormFloat64() * 2
		}
		exact := NNLS(a, b)
		approx, res := LeastSquaresNonneg(DenseOp{a}, b, nil, 0, nil, 20000, 1e-10)
		if !res.Converged {
			t.Fatalf("FISTA did not converge")
		}
		// Compare objective values (solutions may differ in a null space).
		fe := linalg.Sub(linalg.NewVector(m), a.MulVec(nil, exact), b).Norm2()
		fa := linalg.Sub(linalg.NewVector(m), a.MulVec(nil, approx), b).Norm2()
		if fa > fe+1e-5*(1+fe) {
			t.Fatalf("trial %d: FISTA objective %v worse than NNLS %v", trial, fa, fe)
		}
	}
}

func TestLeastSquaresNonnegDamped(t *testing.T) {
	// With huge damping the solution must stick to the prior.
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 8, 5)
	prior := linalg.Vector{1, 2, 3, 4, 5}
	b := linalg.NewVector(8)
	x, _ := LeastSquaresNonneg(DenseOp{a}, b, prior, 1e9, nil, 5000, 1e-12)
	for i := range prior {
		if math.Abs(x[i]-prior[i]) > 1e-3 {
			t.Fatalf("x[%d] = %v, want ≈ prior %v", i, x[i], prior[i])
		}
	}
}

func TestEntropyRegularizedRecoversConsistent(t *testing.T) {
	// Consistent system, weak regularization: solution should nearly
	// satisfy Ax = b.
	rng := rand.New(rand.NewSource(6))
	m, n := 6, 10
	a := linalg.NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = float64(rng.Intn(2))
	}
	xTrue := linalg.NewVector(n)
	for i := range xTrue {
		xTrue[i] = 0.5 + rng.Float64()
	}
	b := a.MulVec(nil, xTrue)
	prior := linalg.NewVector(n)
	prior.Fill(1)
	x, _ := EntropyRegularized(DenseOp{a}, b, prior, 1e-6, 50000, 1e-12)
	r := linalg.Sub(linalg.NewVector(m), a.MulVec(nil, x), b)
	if r.Norm2() > 1e-3*b.Norm2() {
		t.Fatalf("residual too large: %v", r.Norm2())
	}
}

func TestEntropyRegularizedStrongPriorSticks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randDense(rng, 4, 6)
	for i := range a.Data {
		a.Data[i] = math.Abs(a.Data[i])
	}
	prior := linalg.Vector{1, 2, 3, 1, 2, 3}
	b := linalg.NewVector(4)
	b.Fill(100)
	x, _ := EntropyRegularized(DenseOp{a}, b, prior, 1e9, 5000, 1e-12)
	for i := range prior {
		if math.Abs(x[i]-prior[i]) > 0.05*prior[i] {
			t.Fatalf("x[%d] = %v strayed from prior %v", i, x[i], prior[i])
		}
	}
}

func TestEntropyZeroPriorPinsCoordinate(t *testing.T) {
	a := linalg.NewMatrixFromRows([][]float64{{1, 1}})
	prior := linalg.Vector{0, 1}
	x, _ := EntropyRegularized(DenseOp{a}, linalg.Vector{5}, prior, 0.01, 2000, 1e-12)
	if x[0] != 0 {
		t.Fatalf("coordinate with zero prior must stay zero, got %v", x[0])
	}
	// Exact optimum of (x−5)² + 0.01·x·log x is ≈ 5 − 0.005·log 5.
	if math.Abs(x[1]-5) > 0.02 {
		t.Fatalf("x[1] = %v, want ≈ 5", x[1])
	}
}

func TestKLProxProperties(t *testing.T) {
	// The prox must satisfy its optimality condition u + eta·log(u/p) = z.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		z := rng.NormFloat64() * 5
		p := math.Exp(rng.NormFloat64())
		eta := math.Exp(rng.NormFloat64())
		u := klProx(z, p, eta)
		if u <= 0 {
			t.Fatalf("prox not positive: %v", u)
		}
		g := u + eta*math.Log(u/p) - z
		if math.Abs(g) > 1e-6*(1+math.Abs(z)) {
			t.Fatalf("optimality residual %v at z=%v p=%v eta=%v", g, z, p, eta)
		}
	}
}

func TestKLProxNonpositiveInput(t *testing.T) {
	// The z <= 0 regime is the hot path on heavy-tailed instances (most
	// demands are near zero, so the gradient step drives z negative).
	// The tight bracket [0, p·exp(z/eta)] must still satisfy optimality…
	for _, tc := range []struct{ z, p, eta float64 }{
		{0, 1000, 1e-6},
		{-1e-3, 3, 0.2},
		{-0.5, 3, 0.2},
		{-5, 0.01, 2},
	} {
		u := klProx(tc.z, tc.p, tc.eta)
		if u <= 0 {
			t.Fatalf("z=%v p=%v eta=%v: prox %v not positive", tc.z, tc.p, tc.eta, u)
		}
		g := u + tc.eta*math.Log(u/tc.p) - tc.z
		if math.Abs(g) > 1e-6*(1+math.Abs(tc.z)) {
			t.Fatalf("z=%v p=%v eta=%v: optimality residual %v (u=%v)", tc.z, tc.p, tc.eta, g, u)
		}
	}
	// …and when the upper bound p·exp(z/eta) underflows, the solution is
	// exactly zero at double precision (previously these coordinates each
	// burned the full 60-iteration bisection budget). With eta = 1e-6 a z
	// of just −0.001 already puts the optimum at ~p·e^(−1000) ≈ 10^−431.
	for _, tc := range []struct{ z, p, eta float64 }{
		{-1e-3, 1000, 1e-6},
		{-1, 1000, 1e-6},
		{-800, 1, 1},
	} {
		if u := klProx(tc.z, tc.p, tc.eta); u != 0 {
			t.Fatalf("z=%v p=%v eta=%v: underflow prox = %v, want 0", tc.z, tc.p, tc.eta, u)
		}
	}
}

func TestGeneralizedKL(t *testing.T) {
	x := linalg.Vector{1, 2}
	if d := GeneralizedKL(x, x); math.Abs(d) > 1e-12 {
		t.Fatalf("KL(x,x) = %v", d)
	}
	if !math.IsInf(GeneralizedKL(linalg.Vector{1}, linalg.Vector{0}), 1) {
		t.Fatal("KL with zero prior should be +Inf")
	}
	if d := GeneralizedKL(linalg.Vector{0}, linalg.Vector{2}); d != 2 {
		t.Fatalf("KL(0,p) = %v, want p", d)
	}
}

func TestKruithofBalanceMatchesMarginals(t *testing.T) {
	prior := linalg.NewMatrixFromRows([][]float64{
		{1, 1, 1},
		{1, 1, 1},
		{1, 1, 1},
	})
	rows := linalg.Vector{6, 3, 1}
	cols := linalg.Vector{4, 4, 2}
	x, res, err := KruithofBalance(prior, rows, cols, 500, 1e-10)
	if err != nil {
		t.Fatalf("KruithofBalance: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(x.Row(i).Sum()-rows[i]) > 1e-6 {
			t.Fatalf("row %d sum %v, want %v", i, x.Row(i).Sum(), rows[i])
		}
	}
	for j := 0; j < 3; j++ {
		if math.Abs(x.Col(j).Sum()-cols[j]) > 1e-6 {
			t.Fatalf("col %d sum %v", j, x.Col(j).Sum())
		}
	}
}

func TestKruithofBalancePreservesZeros(t *testing.T) {
	prior := linalg.NewMatrixFromRows([][]float64{
		{0, 1},
		{1, 1},
	})
	x, _, err := KruithofBalance(prior, linalg.Vector{1, 2}, linalg.Vector{1.5, 1.5}, 500, 1e-10)
	if err != nil {
		t.Fatalf("KruithofBalance: %v", err)
	}
	if x.At(0, 0) != 0 {
		t.Fatalf("zero of prior not preserved: %v", x.At(0, 0))
	}
}

func TestKruithofBalanceEmptyRowError(t *testing.T) {
	prior := linalg.NewMatrixFromRows([][]float64{
		{0, 0},
		{1, 1},
	})
	if _, _, err := KruithofBalance(prior, linalg.Vector{1, 1}, linalg.Vector{1, 1}, 100, 1e-9); err == nil {
		t.Fatal("expected error for empty prior row with positive target")
	}
}

func TestIterativeScalingConsistentSystem(t *testing.T) {
	// 0/1 constraints with a consistent rhs: must converge to Ax = b.
	rng := rand.New(rand.NewSource(9))
	m, n := 5, 12
	bld := sparse.NewBuilder(m, n)
	dense := linalg.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				bld.Add(i, j, 1)
				dense.Set(i, j, 1)
			}
		}
	}
	a := bld.Build()
	xTrue := linalg.NewVector(n)
	for i := range xTrue {
		xTrue[i] = 0.5 + 2*rng.Float64()
	}
	b := dense.MulVec(nil, xTrue)
	prior := linalg.NewVector(n)
	prior.Fill(1)
	x, res := IterativeScaling(a, b, prior, 5000, 1e-9)
	if !res.Converged {
		t.Fatalf("IterativeScaling did not converge: %+v", res)
	}
	ax := dense.MulVec(nil, x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-6*(1+b[i]) {
			t.Fatalf("constraint %d: %v vs %v", i, ax[i], b[i])
		}
	}
}

func TestIterativeScalingKeepsSupport(t *testing.T) {
	bld := sparse.NewBuilder(1, 3)
	bld.Add(0, 0, 1)
	bld.Add(0, 1, 1)
	bld.Add(0, 2, 1)
	a := bld.Build()
	prior := linalg.Vector{0, 1, 1}
	x, _ := IterativeScaling(a, linalg.Vector{10}, prior, 100, 1e-10)
	if x[0] != 0 {
		t.Fatalf("zero-prior coordinate moved: %v", x[0])
	}
	if math.Abs(x[1]+x[2]-10) > 1e-6 {
		t.Fatalf("constraint not met: %v", x)
	}
}

func BenchmarkNNLS(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	a := randDense(rng, 72, 132)
	x := linalg.NewVector(132)
	for i := range x {
		x[i] = math.Abs(rng.NormFloat64())
	}
	rhs := a.MulVec(nil, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NNLS(a, rhs)
	}
}

func BenchmarkFISTANonneg(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 72, 132)
	x := linalg.NewVector(132)
	for i := range x {
		x[i] = math.Abs(rng.NormFloat64())
	}
	rhs := a.MulVec(nil, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LeastSquaresNonneg(DenseOp{a}, rhs, nil, 0, nil, 2000, 1e-8)
	}
}
