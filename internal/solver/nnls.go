package solver

import (
	"math"

	"repro/internal/linalg"
)

// NNLS solves the non-negative least-squares problem
//
//	minimize ‖A·x − b‖₂²  subject to  x >= 0
//
// with the active-set algorithm of Lawson & Hanson (1974). The returned
// solution satisfies the KKT conditions to within tol: x >= 0, the gradient
// w = Aᵀ(b − A·x) has w_j <= tol on the zero set and |w_j| <= tol on the
// positive set.
func NNLS(a *linalg.Matrix, b linalg.Vector) linalg.Vector {
	n := a.Cols
	x := linalg.NewVector(n)
	passive := make([]bool, n) // true: in passive (positive) set
	w := linalg.NewVector(n)   // gradient Aᵀ(b − A·x)
	resid := b.Clone()         // b − A·x

	tol := 1e-10 * (1 + a.MaxAbs()) * (1 + b.NormInf())
	maxOuter := 3 * n
	for outer := 0; outer < maxOuter; outer++ {
		a.MulVecT(w, resid)
		// Most-violating zero-set coordinate.
		best, bestJ := tol, -1
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > best {
				best, bestJ = w[j], j
			}
		}
		if bestJ < 0 {
			break // KKT satisfied
		}
		passive[bestJ] = true

		// Inner loop: solve unconstrained LS on the passive set; walk back
		// if any passive coordinate would go negative.
		for {
			z, cols := lsOnPassive(a, b, passive)
			if len(cols) == 0 {
				break
			}
			minZ := math.Inf(1)
			for _, zi := range z {
				if zi < minZ {
					minZ = zi
				}
			}
			if minZ > 0 {
				x.Zero()
				for i, j := range cols {
					x[j] = z[i]
				}
				break
			}
			// Step toward z only as far as feasibility allows.
			alpha := math.Inf(1)
			for i, j := range cols {
				if z[i] <= 0 {
					if d := x[j] - z[i]; d > 0 {
						if r := x[j] / d; r < alpha {
							alpha = r
						}
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for i, j := range cols {
				x[j] += alpha * (z[i] - x[j])
				if x[j] <= tol {
					x[j] = 0
					passive[j] = false
				}
			}
		}
		av := a.MulVec(nil, x)
		linalg.Sub(resid, b, av)
	}
	x.ClampNonNegative()
	return x
}

// lsOnPassive solves the least-squares problem restricted to the passive
// columns, returning the solution and the column indices it corresponds to.
func lsOnPassive(a *linalg.Matrix, b linalg.Vector, passive []bool) (linalg.Vector, []int) {
	var cols []int
	for j, p := range passive {
		if p {
			cols = append(cols, j)
		}
	}
	if len(cols) == 0 {
		return nil, nil
	}
	sub := linalg.NewMatrix(a.Rows, len(cols))
	for i := 0; i < a.Rows; i++ {
		ri := a.Row(i)
		si := sub.Row(i)
		for k, j := range cols {
			si[k] = ri[j]
		}
	}
	return linalg.SolveLeastSquares(sub, b), cols
}
