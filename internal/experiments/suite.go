// Package experiments contains one driver per table and figure of the
// paper's evaluation section (§5). Each driver runs the corresponding
// experiment on the synthetic Global Crossing stand-in scenarios and
// renders the same rows/series the paper reports, so the shape of every
// result (who wins, by what factor, where the crossovers fall) can be
// compared directly against the original.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/runner"
)

// BusyWindowSamples is the paper's busy-period length: 250 minutes = 50
// five-minute samples (§5.3.4).
const BusyWindowSamples = 50

// Report is a rendered experiment result.
type Report struct {
	ID    string
	Title string
	Lines []string
}

// Render writes the report as text.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, l := range r.Lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func (r *Report) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Suite holds the two evaluation scenarios and their busy-window snapshots,
// shared across all experiment drivers. After NewSuite returns, the Suite
// is read-only: drivers never mutate it, which is what makes it safe to
// run many drivers concurrently against the same Suite.
type Suite struct {
	EU, US *netsim.Scenario

	// Seed is the scenario seed the suite was built with; drivers that
	// construct additional scenarios (the scenario lab) reuse it so one
	// seed determines the whole evaluation universe.
	Seed int64

	// Busy-window snapshot per region.
	TruthEU, TruthUS   linalg.Vector
	InstEU, InstUS     *core.Instance
	ThreshEU, ThreshUS float64
	StartEU, StartUS   int

	// pool bounds the concurrency of the whole evaluation: RunAll
	// schedules drivers on it and the sweep loops inside drivers borrow
	// its free slots for their inner fan-out.
	pool *runner.Pool
}

// NewSuite builds both scenarios with the given seed, using a pool sized
// to the machine (runtime.GOMAXPROCS).
func NewSuite(seed int64) (*Suite, error) {
	return NewSuiteWithPool(seed, runner.NewPool(0))
}

// NewSuiteWithPool builds both scenarios with the given seed and runs all
// parallel work on the given pool. NewSuiteWithPool(seed, runner.NewPool(1))
// reproduces the fully serial evaluation.
func NewSuiteWithPool(seed int64, pool *runner.Pool) (*Suite, error) {
	eu, err := netsim.BuildEurope(seed)
	if err != nil {
		return nil, err
	}
	us, err := netsim.BuildAmerica(seed)
	if err != nil {
		return nil, err
	}
	if pool == nil {
		pool = runner.NewPool(0)
	}
	s := &Suite{EU: eu, US: us, Seed: seed, pool: pool}
	if s.TruthEU, s.InstEU, s.ThreshEU, err = eu.Snapshot(BusyWindowSamples); err != nil {
		return nil, err
	}
	if s.TruthUS, s.InstUS, s.ThreshUS, err = us.Snapshot(BusyWindowSamples); err != nil {
		return nil, err
	}
	s.StartEU = eu.BusyWindow(BusyWindowSamples)
	s.StartUS = us.BusyWindow(BusyWindowSamples)
	return s, nil
}

// Pool returns the concurrency pool the suite schedules work on.
func (s *Suite) Pool() *runner.Pool { return s.pool }

// forEach fans an inner sweep loop out over the suite's pool. The body
// must write its result into an index-addressed slot so that report
// assembly stays deterministic regardless of execution order.
func (s *Suite) forEach(ctx context.Context, n int, fn func(i int) error) error {
	return s.pool.ForEach(ctx, n, fn)
}

// regions iterates over both subnetworks uniformly.
type region struct {
	name   string
	sc     *netsim.Scenario
	truth  linalg.Vector
	inst   *core.Instance
	thresh float64
	start  int
}

func (s *Suite) regions() []region {
	return []region{
		{"Europe", s.EU, s.TruthEU, s.InstEU, s.ThreshEU, s.StartEU},
		{"America", s.US, s.TruthUS, s.InstUS, s.ThreshUS, s.StartUS},
	}
}

// Driver is a runnable experiment. Run is a Suite method expression, so
// the receiver comes first and the context second. Cancellation is
// cooperative: RunAll stops scheduling drivers once the context is
// done, and the expensive drivers additionally check it between sweep
// iterations (via Suite.forEach) — but an individual solver call that
// is already running always finishes. Cheap drivers may ignore the
// context entirely.
type Driver struct {
	ID    string
	Title string
	Run   func(*Suite, context.Context) (*Report, error)
}

// RunOn executes the driver against a suite.
func (d Driver) RunOn(ctx context.Context, s *Suite) (*Report, error) {
	return d.Run(s, ctx)
}

// RunResult is the outcome of one driver in a RunAll fan-out.
type RunResult = runner.Result[*Report]

// RunAll executes the drivers concurrently on the suite's pool and
// returns their results in input order. Drivers execute in any order,
// but emit (if non-nil) is called strictly in input order as soon as
// every earlier driver has finished, so rendered output is byte-for-byte
// identical between a 1-worker and an N-worker pool. Driver failures are
// reported per-result; only context cancellation (or an emit error)
// aborts the whole run.
func RunAll(ctx context.Context, s *Suite, drivers []Driver, emit func(RunResult) error) ([]RunResult, error) {
	jobs := make([]runner.Job[*Report], len(drivers))
	for i, d := range drivers {
		d := d
		jobs[i] = runner.Job[*Report]{
			ID:  d.ID,
			Run: func(ctx context.Context) (*Report, error) { return d.Run(s, ctx) },
		}
	}
	return runner.Run(ctx, s.pool, jobs, emit)
}

// Drivers returns every experiment in paper order.
func Drivers() []Driver {
	return []Driver{
		{"fig1", "Total network traffic over time", (*Suite).Fig01TotalTraffic},
		{"fig2", "Cumulative demand distributions", (*Suite).Fig02CumulativeDemand},
		{"fig3", "Spatial distribution of traffic", (*Suite).Fig03SpatialDistribution},
		{"fig4", "Largest demands over time", (*Suite).Fig04DemandTimeSeries},
		{"fig5", "Fanout stability", (*Suite).Fig05FanoutStability},
		{"fig6", "Mean-variance scaling law", (*Suite).Fig06MeanVariance},
		{"fig7", "Gravity model vs actual demands", (*Suite).Fig07GravityScatter},
		{"fig8", "Worst-case bounds on demands", (*Suite).Fig08WorstCaseBounds},
		{"fig9", "Priors from worst-case bounds", (*Suite).Fig09WCBPrior},
		{"fig10", "Fanout estimation vs window length (scatter)", (*Suite).Fig10FanoutWindows},
		{"fig11", "Fanout MRE vs window length", (*Suite).Fig11FanoutMRE},
		{"table1", "Vardi MRE for sigma^-2 in {0.01, 1}, K=50", (*Suite).Table1Vardi},
		{"fig12", "Vardi MRE vs window size on synthetic Poisson", (*Suite).Fig12VardiSynthetic},
		{"fig13", "Bayesian/Entropy MRE vs regularization", (*Suite).Fig13RegularizationSweep},
		{"fig14", "Regularized estimates vs actual (America)", (*Suite).Fig14RegularizedScatter},
		{"fig15", "Gravity vs WCB prior under regularization", (*Suite).Fig15PriorComparison},
		{"fig16", "Entropy MRE vs directly measured demands", (*Suite).Fig16DirectMeasurement},
		{"table2", "Best-MRE summary of all methods", (*Suite).Table2Summary},
	}
}

// DriverByID returns the driver with the given ID, searching the paper
// experiments, the extensions and the scenario-lab drivers.
func DriverByID(id string) (Driver, bool) {
	for _, d := range Registry() {
		if d.ID == id {
			return d, true
		}
	}
	return Driver{}, false
}

// sparkline renders a numeric series as a compact unicode bar chart,
// normalized to its own maximum.
func sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	mx := xs[0]
	for _, x := range xs {
		if x > mx {
			mx = x
		}
	}
	if mx <= 0 {
		return strings.Repeat("▁", len(xs))
	}
	var b strings.Builder
	for _, x := range xs {
		i := int(x / mx * float64(len(ramp)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(ramp) {
			i = len(ramp) - 1
		}
		b.WriteRune(ramp[i])
	}
	return b.String()
}

// downsample reduces xs to n points by averaging buckets.
func downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(xs) / n
		hi := (i + 1) * len(xs) / n
		var s float64
		for _, x := range xs[lo:hi] {
			s += x
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

// topIndices returns the indices of the k largest values of v, descending.
func topIndices(v linalg.Vector, k int) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
