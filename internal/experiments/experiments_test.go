package experiments

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func getSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() { suite, suiteErr = NewSuite(1) })
	if suiteErr != nil {
		t.Fatalf("NewSuite: %v", suiteErr)
	}
	return suite
}

func TestDriversRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "table1", "fig12", "fig13", "fig14",
		"fig15", "fig16", "table2",
	}
	ds := Drivers()
	if len(ds) != len(want) {
		t.Fatalf("%d drivers, want %d", len(ds), len(want))
	}
	for i, id := range want {
		if ds[i].ID != id {
			t.Fatalf("driver %d = %s, want %s", i, ds[i].ID, id)
		}
	}
	if _, ok := DriverByID("fig7"); !ok {
		t.Fatal("DriverByID(fig7) not found")
	}
	if _, ok := DriverByID("nope"); ok {
		t.Fatal("DriverByID(nope) should not resolve")
	}
	exts := ExtDrivers()
	if len(exts) != 4 {
		t.Fatalf("%d extension drivers, want 4", len(exts))
	}
	for _, id := range []string{"ext1", "ext2", "ext3", "ext4"} {
		if _, ok := DriverByID(id); !ok {
			t.Fatalf("extension driver %s not resolvable", id)
		}
	}
	if got := len(AllDrivers()); got != len(ds)+len(exts) {
		t.Fatalf("AllDrivers = %d, want %d", got, len(ds)+len(exts))
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	s := sparkline([]float64{0, 1, 2, 4})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	flat := sparkline([]float64{0, 0})
	if !strings.Contains(flat, "▁") {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

func TestDownsample(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ds := downsample(xs, 3)
	want := []float64{1.5, 3.5, 5.5}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("downsample = %v", ds)
		}
	}
	if got := downsample(xs, 10); len(got) != 6 {
		t.Fatal("downsample should not upsample")
	}
}

func TestTopIndices(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5}
	top := topIndices(v, 2)
	if top[0] != 4 || top[1] != 2 {
		t.Fatalf("topIndices = %v", top)
	}
	if got := topIndices(v, 99); len(got) != 5 {
		t.Fatal("k clamp failed")
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Lines: []string{"a", "b"}}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"=== x: t ===", "a\n", "b\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in %q", want, out)
		}
	}
}

// TestAnalysisFigures runs the data-analysis drivers (cheap) and checks
// their qualitative claims.
func TestAnalysisFigures(t *testing.T) {
	s := getSuite(t)
	for _, id := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
		d, ok := DriverByID(id)
		if !ok {
			t.Fatalf("driver %s missing", id)
		}
		rep, err := d.RunOn(context.Background(), s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Lines) == 0 {
			t.Fatalf("%s produced no output", id)
		}
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
		t.Logf("%s:\n%s", id, buf.String())
	}
}

// TestEstimationFiguresRun exercises the cheap estimation drivers
// end-to-end. The expensive sweeps (fig11-16, tables) are covered by the
// benchmark harness and by the method-level tests in internal/core.
func TestEstimationFiguresRun(t *testing.T) {
	if testing.Short() {
		t.Skip("estimation drivers are slow")
	}
	s := getSuite(t)
	for _, id := range []string{"fig7", "fig9", "fig10", "fig14"} {
		d, _ := DriverByID(id)
		rep, err := d.RunOn(context.Background(), s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s:\n%s", id, buf.String())
	}
}
