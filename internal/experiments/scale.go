package experiments

import (
	"context"
	"fmt"

	"repro/internal/scenario"
)

// scaleSpecs are the scenario-lab instances the scale driver evaluates:
// growth steps past the paper's largest (25-PoP) network up to a 300-PoP
// / ~90k-demand backbone (solver budgets shrink linearly past 100 PoPs —
// see scenario.Budget.ForSize), plus one instance of each perturbation
// family at paper-adjacent sizes.
var scaleSpecs = []string{
	"scaled:50",
	"scaled:100",
	"scaled:300",
	"failure:25:worst",
	"ecmp:25:150",
	"noisy:50:0.05",
}

// ScaleDrivers returns the scenario-lab drivers. They are registered (so
// `tmbench -run scale` and DriverByID find them) but deliberately not
// part of AllDrivers: their reports include wall-clock runtimes, which
// would break the byte-identical serial-vs-parallel guarantee of the
// default suite, and a 100-PoP evaluation does not belong in every
// default tmbench run.
func ScaleDrivers() []Driver {
	return []Driver{
		{"scale", "Scenario lab: estimator scale-out across generated families", (*Suite).ScaleLab},
	}
}

// Registry returns every driver an ID can resolve to: the paper
// experiments, the extensions, and the scenario-lab drivers.
func Registry() []Driver {
	return append(AllDrivers(), ScaleDrivers()...)
}

// ScaleLab builds the scenario-lab instances and scores gravity, entropy
// and Vardi on each, reporting the paper's MRE alongside relative L1/L2
// error, solver iterations and wall-clock runtime. Instance construction
// and the method × instance grid both fan out on the suite's pool.
func (s *Suite) ScaleLab(ctx context.Context) (*Report, error) {
	r := &Report{ID: "scale", Title: "Scenario lab: estimator scale-out across generated families"}
	insts := make([]*scenario.Instance, len(scaleSpecs))
	if err := s.forEach(ctx, len(scaleSpecs), func(i int) error {
		in, err := scenario.Build(scaleSpecs[i], s.Seed)
		if err != nil {
			return err
		}
		insts[i] = in
		return nil
	}); err != nil {
		return nil, err
	}
	for _, in := range insts {
		line := fmt.Sprintf("%-16s %3d PoPs %5d pairs %4d links",
			in.Spec, in.Sc.Net.NumPoPs(), in.Sc.Net.NumPairs(), in.Sc.Net.InteriorLinks())
		if in.Note != "" {
			line += "  (" + in.Note + ")"
		}
		r.Lines = append(r.Lines, line)
	}
	r.addf("%-16s %-8s %7s %7s %7s %7s %9s", "spec", "method", "MRE", "relL1", "relL2", "iters", "seconds")
	results, err := scenario.Evaluate(ctx, s.pool, insts, scenario.Methods(scenario.DefaultBudget()))
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		if res.Err != nil {
			r.addf("%-16s %-8s FAILED: %v", res.Spec, res.Method, res.Err)
			continue
		}
		r.addf("%-16s %-8s %7.3f %7.3f %7.3f %7d %9.2f",
			res.Spec, res.Method, res.MRE, res.RelL1, res.RelL2,
			res.Iterations, res.Runtime.Seconds())
	}
	r.addf("(the lab extends the paper's two fixed subnetworks to arbitrary sizes and")
	r.addf(" perturbations; runtimes are wall-clock, so this report is not byte-stable)")
	return r, nil
}
