package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/traffic"
)

// scatterStats summarizes an estimate-vs-truth scatter plot in numbers:
// MRE over the large demands, rank correlation over all demands, and the
// worst relative error among the large demands.
func scatterStats(est, truth linalg.Vector, thresh float64) string {
	mre := core.MRE(est, truth, thresh)
	rho := core.RankCorrelation(est, truth)
	worst := 0.0
	for i, v := range truth {
		if v > thresh {
			rel := (est[i] - v) / v
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
	}
	return fmt.Sprintf("MRE=%.3f  rank-corr=%.3f  worst-rel-err=%.2f", mre, rho, worst)
}

// Fig07GravityScatter reproduces Figure 7: simple gravity estimates versus
// the actual demands. Reasonable in Europe, poor in America because of
// dominant per-source destinations.
func (s *Suite) Fig07GravityScatter(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig7", Title: "Gravity model vs actual demands"}
	for _, reg := range s.regions() {
		g := core.Gravity(reg.inst)
		r.addf("%-8s %s", reg.name, scatterStats(g, reg.truth, reg.thresh))
	}
	r.addf("(paper: gravity MRE 0.26 Europe / 0.78 America)")
	return r, nil
}

// Fig08WorstCaseBounds reproduces Figure 8: per-demand LP bounds over
// {s >= 0 : Rs = t}. Most bounds are non-trivial but relatively loose.
func (s *Suite) Fig08WorstCaseBounds(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig8", Title: "Worst-case bounds on demands"}
	for _, reg := range s.regions() {
		b, err := core.WorstCaseBounds(reg.inst)
		if err != nil {
			return nil, err
		}
		var tightLo, tightHi, exact int
		var relWidth float64
		var counted int
		for p, v := range reg.truth {
			if b.Lower[p] > 1e-6 {
				tightLo++
			}
			if b.Upper[p] < reg.truth.Sum()/2 {
				tightHi++
			}
			if b.Upper[p]-b.Lower[p] < 1e-6*(1+v) {
				exact++
			}
			if v > reg.thresh {
				relWidth += (b.Upper[p] - b.Lower[p]) / v
				counted++
			}
		}
		r.addf("%-8s lower>0: %d/%d  nontrivial upper: %d/%d  measured exactly: %d  mean rel width (large demands): %.2f  pivots: %d",
			reg.name, tightLo, len(reg.truth), tightHi, len(reg.truth), exact,
			relWidth/float64(counted), b.Pivots)
	}
	r.addf("(paper: most bounds non-trivial, only very few demands pinned exactly)")
	return r, nil
}

// Fig09WCBPrior reproduces Figure 9: the midpoint of the worst-case bounds
// as a demand estimate ("WCB prior"), which the paper found surprisingly
// accurate.
func (s *Suite) Fig09WCBPrior(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig9", Title: "Priors obtained from worst-case bounds (midpoints)"}
	for _, reg := range s.regions() {
		b, err := core.WorstCaseBounds(reg.inst)
		if err != nil {
			return nil, err
		}
		r.addf("%-8s %s", reg.name, scatterStats(b.Midpoint(), reg.truth, reg.thresh))
	}
	r.addf("(paper Table 2: WCB prior MRE 0.10 Europe / 0.39 America)")
	return r, nil
}

// Fig10FanoutWindows reproduces Figure 10: fanout-based estimates against
// the window-average demands for window lengths 1, 3 and 10 (America).
func (s *Suite) Fig10FanoutWindows(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig10", Title: "Fanout estimation scatter vs window length (America)"}
	reg := s.regions()[1]
	windows := []int{1, 3, 10}
	rows := make([]string, len(windows))
	err := s.forEach(ctx, len(windows), func(i int) error {
		k := windows[i]
		loads := reg.sc.LoadSeries(reg.start, k)
		est, err := core.EstimateFanouts(reg.sc.Rt, loads, core.DefaultFanoutConfig())
		if err != nil {
			return err
		}
		mean := reg.sc.Series.MeanDemand(reg.start, k)
		rows[i] = fmt.Sprintf("window %2d: %s", k, scatterStats(est.MeanDemand, mean, core.ShareThreshold(mean, 0.9)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Lines = append(r.Lines, rows...)
	return r, nil
}

// Fig11FanoutMRE reproduces Figure 11: fanout-estimation MRE as a function
// of the window length for both networks. The error drops for short
// time-series and then levels out.
func (s *Suite) Fig11FanoutMRE(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig11", Title: "Fanout MRE vs window length"}
	windows := []int{1, 2, 3, 5, 10, 20, 30, 40}
	r.addf("%-8s %s", "window:", fmt.Sprint(windows))
	for _, reg := range s.regions() {
		reg := reg
		row := make([]float64, len(windows))
		err := s.forEach(ctx, len(windows), func(i int) error {
			k := windows[i]
			loads := reg.sc.LoadSeries(reg.start, k)
			est, err := core.EstimateFanouts(reg.sc.Rt, loads, core.DefaultFanoutConfig())
			if err != nil {
				return err
			}
			mean := reg.sc.Series.MeanDemand(reg.start, k)
			row[i] = core.MRE(est.MeanDemand, mean, core.ShareThreshold(mean, 0.9))
			return nil
		})
		if err != nil {
			return nil, err
		}
		line := reg.name
		for _, m := range row {
			line += fmt.Sprintf(" %6.3f", m)
		}
		r.Lines = append(r.Lines, line)
	}
	r.addf("(paper: error decreases for short series, levels out for longer windows)")
	return r, nil
}

// Table1Vardi reproduces Table 1: Vardi-method MRE over the busy period
// (K=50) for σ⁻² = 0.01 and σ⁻² = 1 on both networks.
func (s *Suite) Table1Vardi(ctx context.Context) (*Report, error) {
	r := &Report{ID: "table1", Title: "Vardi MRE, K=50 (paper: EU 0.47/302, US 0.98/1183)"}
	r.addf("%-14s %10s %10s", "", "Europe", "America")
	sigmas := []float64{0.01, 1}
	regions := s.regions()
	// Flatten the sigma × region grid so all four Vardi solves can run
	// at once.
	cells := make([]string, len(sigmas)*len(regions))
	err := s.forEach(ctx, len(cells), func(i int) error {
		sig, reg := sigmas[i/len(regions)], regions[i%len(regions)]
		loads := reg.sc.LoadSeries(reg.start, BusyWindowSamples)
		lam, err := core.Vardi(reg.sc.Rt, loads, core.VardiConfig{
			SigmaInv2: sig, MaxIter: 30000, Tol: 1e-9,
		})
		if err != nil {
			return err
		}
		cells[i] = fmt.Sprintf("%10.2f", core.MRE(lam, reg.truth, reg.thresh))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, sig := range sigmas {
		r.addf("sigma^-2=%-5g %s %s", sig, cells[si*len(regions)], cells[si*len(regions)+1])
	}
	return r, nil
}

// Fig12VardiSynthetic reproduces Figure 12: MRE of the Vardi method
// (σ⁻² = 1) as a function of the window size on synthetic traffic whose
// elements are truly Poisson — isolating the covariance-estimation error
// that the paper blames for Vardi's poor showing.
func (s *Suite) Fig12VardiSynthetic(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig12", Title: "Vardi MRE vs window size, synthetic Poisson traffic (sigma^-2=1)"}
	windows := []int{20, 50, 100, 200, 400, 800}
	r.addf("%-8s %s", "window:", fmt.Sprint(windows))
	for _, reg := range s.regions() {
		reg := reg
		// Poisson demands with the busy-period means, scaled down so the
		// relative Poisson noise is material (as it is at packet scale).
		mean := reg.truth.Clone()
		mean.Scale(0.01)
		th := core.ShareThreshold(mean, 0.9)
		row := make([]float64, len(windows))
		err := s.forEach(ctx, len(windows), func(i int) error {
			k := windows[i]
			demands := traffic.SyntheticPoisson(mean, k, 99)
			loads := make([]linalg.Vector, k)
			for j := range demands {
				loads[j] = reg.sc.Rt.LinkLoads(demands[j])
			}
			lam, err := core.Vardi(reg.sc.Rt, loads, core.VardiConfig{
				SigmaInv2: 1, MaxIter: 30000, Tol: 1e-9,
			})
			if err != nil {
				return err
			}
			row[i] = core.MRE(lam, mean, th)
			return nil
		})
		if err != nil {
			return nil, err
		}
		line := reg.name
		for _, m := range row {
			line += fmt.Sprintf(" %6.3f", m)
		}
		r.Lines = append(r.Lines, line)
	}
	r.addf("(paper: even under a true Poisson model, ~100+ samples are needed for <20%% error)")
	return r, nil
}
