package experiments

import (
	"context"
	"math"

	"repro/internal/stats"
)

// Fig01TotalTraffic reproduces Figure 1: normalized total traffic over the
// 24-hour period for both subnetworks, showing the diurnal cycle and the
// partly overlapping busy periods.
func (s *Suite) Fig01TotalTraffic(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig1", Title: "Total network traffic over time (normalized)"}
	var mx float64
	totals := map[string][]float64{}
	for _, reg := range s.regions() {
		tot := reg.sc.Series.TotalTraffic()
		totals[reg.name] = tot
		if m, _ := tot.Max(); m > mx {
			mx = m
		}
	}
	for _, reg := range s.regions() {
		tot := totals[reg.name]
		norm := make([]float64, len(tot))
		for i, x := range tot {
			norm[i] = x / mx
		}
		ds := downsample(norm, 48) // one glyph per half hour
		peakMin := reg.sc.Series.Times[reg.start+BusyWindowSamples/2]
		r.addf("%-8s %s  busy-period center %02d:%02d GMT",
			reg.name, sparkline(ds), int(peakMin)/60, int(peakMin)%60)
	}
	euPeak := s.EU.Series.Times[s.StartEU+BusyWindowSamples/2]
	usPeak := s.US.Series.Times[s.StartUS+BusyWindowSamples/2]
	r.addf("busy periods %0.0f minutes apart (paper: partial overlap around 18:00 GMT)",
		math.Abs(usPeak-euPeak))
	return r, nil
}

// Fig02CumulativeDemand reproduces Figure 2: cumulative traffic share of
// demands ranked by volume. The paper's headline: the top 20%% of demands
// carry about 80%% of the traffic in both networks.
func (s *Suite) Fig02CumulativeDemand(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig2", Title: "Cumulative demand distribution (ranked by volume)"}
	r.addf("%-8s %6s %6s %6s %6s %6s", "network", "10%", "20%", "30%", "50%", "75%")
	for _, reg := range s.regions() {
		cs := stats.CumulativeShare(reg.truth)
		at := func(q float64) float64 {
			i := int(q*float64(len(cs))) - 1
			if i < 0 {
				i = 0
			}
			return cs[i]
		}
		r.addf("%-8s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%",
			reg.name, 100*at(0.10), 100*at(0.20), 100*at(0.30), 100*at(0.50), 100*at(0.75))
	}
	r.addf("(paper: top 20%% of demands carry ~80%% of traffic)")
	return r, nil
}

// Fig03SpatialDistribution reproduces Figure 3: the source×destination
// demand heat map, rendered as a character raster, plus the share of
// traffic touching the top PoPs.
func (s *Suite) Fig03SpatialDistribution(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig3", Title: "Spatial distribution of traffic"}
	ramp := []byte(" .:-=+*#%@")
	for _, reg := range s.regions() {
		n := reg.sc.Net.NumPoPs()
		mx := 0.0
		for _, v := range reg.truth {
			if v > mx {
				mx = v
			}
		}
		r.addf("%s (rows = source PoP, cols = destination PoP, log scale):", reg.name)
		for src := 0; src < n; src++ {
			row := make([]byte, n)
			for dst := 0; dst < n; dst++ {
				if src == dst {
					row[dst] = ' '
					continue
				}
				v := reg.truth[reg.sc.Net.PairIndex(src, dst)]
				var lvl int
				if v > 0 && mx > 0 {
					// Log scale over 4 decades.
					lvl = int((math.Log10(v/mx) + 4) / 4 * float64(len(ramp)-1))
					if lvl < 0 {
						lvl = 0
					}
				}
				row[dst] = ramp[lvl]
			}
			r.addf("  %s", string(row))
		}
		// Share of traffic sourced at the top 3 PoPs.
		te := reg.inst.IngressTotals()
		top := topIndices(te, 3)
		var share float64
		for _, i := range top {
			share += te[i]
		}
		r.addf("  top-3 source PoPs carry %.0f%% of traffic (%s, %s, %s)",
			100*share/te.Sum(), reg.sc.Net.PoPs[top[0]].Name,
			reg.sc.Net.PoPs[top[1]].Name, reg.sc.Net.PoPs[top[2]].Name)
	}
	return r, nil
}

// fourByFour returns, for the 4 largest source PoPs, the 4 largest demands
// of each (as pair indices) — the panels of Figures 4 and 5.
func fourByFour(reg region) [][]int {
	te := reg.inst.IngressTotals()
	srcs := topIndices(te, 4)
	out := make([][]int, 0, 4)
	for _, src := range srcs {
		var pairs []int
		for dst := 0; dst < reg.sc.Net.NumPoPs(); dst++ {
			if dst != src {
				pairs = append(pairs, reg.sc.Net.PairIndex(src, dst))
			}
		}
		vals := make([]float64, len(pairs))
		for i, p := range pairs {
			vals[i] = reg.truth[p]
		}
		sel := topIndices(vals, 4)
		row := make([]int, len(sel))
		for i, j := range sel {
			row[i] = pairs[j]
		}
		out = append(out, row)
	}
	return out
}

// Fig04DemandTimeSeries reproduces Figure 4: the four largest outgoing
// demands of the four largest American PoPs over 24 hours.
func (s *Suite) Fig04DemandTimeSeries(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig4", Title: "Four largest demands of the four largest US PoPs over 24h"}
	reg := s.regions()[1]
	for _, panel := range fourByFour(reg) {
		src, _ := reg.sc.Net.PairFromIndex(panel[0])
		r.addf("source %s:", reg.sc.Net.PoPs[src].Name)
		for _, p := range panel {
			series := make([]float64, len(reg.sc.Series.Demands))
			for k := range series {
				series[k] = reg.sc.Series.Demands[k][p]
			}
			_, dst := reg.sc.Net.PairFromIndex(p)
			cv := math.Sqrt(stats.Variance(series)) / stats.Mean(series)
			r.addf("  →%-13s %s  CV=%.2f", reg.sc.Net.PoPs[dst].Name,
				sparkline(downsample(series, 48)), cv)
		}
	}
	return r, nil
}

// Fig05FanoutStability reproduces Figure 5: the fanouts of the same
// demands, which are much more stable than the demands themselves.
func (s *Suite) Fig05FanoutStability(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig5", Title: "Fanouts of the same demands (stability vs Figure 4)"}
	reg := s.regions()[1]
	var demandCVs, fanoutCVs []float64
	fanouts := make([][]float64, len(reg.sc.Series.Demands))
	for k := range fanouts {
		fanouts[k] = reg.sc.Series.Fanouts(k)
	}
	for _, panel := range fourByFour(reg) {
		src, _ := reg.sc.Net.PairFromIndex(panel[0])
		r.addf("source %s:", reg.sc.Net.PoPs[src].Name)
		for _, p := range panel {
			d := make([]float64, len(reg.sc.Series.Demands))
			f := make([]float64, len(reg.sc.Series.Demands))
			for k := range d {
				d[k] = reg.sc.Series.Demands[k][p]
				f[k] = fanouts[k][p]
			}
			_, dst := reg.sc.Net.PairFromIndex(p)
			cvD := math.Sqrt(stats.Variance(d)) / stats.Mean(d)
			cvF := math.Sqrt(stats.Variance(f)) / stats.Mean(f)
			demandCVs = append(demandCVs, cvD)
			fanoutCVs = append(fanoutCVs, cvF)
			r.addf("  →%-13s %s  fanout CV=%.2f (demand CV=%.2f)",
				reg.sc.Net.PoPs[dst].Name, sparkline(downsample(f, 48)), cvF, cvD)
		}
	}
	r.addf("mean CV: fanouts %.3f vs demands %.3f (paper: fanouts much more stable)",
		stats.Mean(fanoutCVs), stats.Mean(demandCVs))
	return r, nil
}

// Fig06MeanVariance reproduces Figure 6: the mean-variance relation of the
// normalized 5-minute busy-hour demands and the fitted scaling law
// Var = φ·mean^c. The paper fits (φ=0.82, c=1.6) in Europe and (φ=2.44,
// c=1.5) in America; the reproduction matches the exponent and the
// strength of the relation (the absolute φ is scaled down — see DESIGN.md).
func (s *Suite) Fig06MeanVariance(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig6", Title: "Mean-variance scaling law (busy hour, normalized)"}
	r.addf("%-8s %8s %6s %6s %5s", "network", "phi", "c", "R^2", "n")
	for _, reg := range s.regions() {
		win := reg.sc.Series.Window(reg.start, BusyWindowSamples)
		s0, _ := reg.sc.Series.TotalTraffic().Max()
		var means, vars []float64
		for p := 0; p < reg.sc.Series.P; p++ {
			xs := make([]float64, len(win))
			for k := range win {
				xs[k] = win[k][p] / s0
			}
			means = append(means, stats.Mean(xs))
			vars = append(vars, stats.Variance(xs))
		}
		fit := stats.FitPowerLaw(means, vars)
		r.addf("%-8s %8.4f %6.2f %6.3f %5d", reg.name, fit.Phi, fit.C, fit.R2, fit.N)
	}
	r.addf("(paper: Europe c=1.6, America c=1.5, both with a remarkably strong fit)")
	return r, nil
}
