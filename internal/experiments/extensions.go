package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/te"
	"repro/internal/topology"
)

// ExtDrivers returns the extension experiments — the open questions the
// paper's §6 lists as future work, built on the same scenarios.
func ExtDrivers() []Driver {
	return []Driver{
		{"ext1", "Measurement-noise sensitivity of the regularized estimators", (*Suite).Ext1NoiseSensitivity},
		{"ext2", "Methods the paper cites but does not evaluate (Vaton, Cao)", (*Suite).Ext2UnevaluatedMethods},
		{"ext3", "ECMP routing-model mismatch", (*Suite).Ext3ECMPMismatch},
		{"ext4", "Traffic-engineering decisions from estimated matrices", (*Suite).Ext4TrafficEngineering},
	}
}

// AllDrivers returns the paper experiments followed by the extensions.
func AllDrivers() []Driver {
	return append(Drivers(), ExtDrivers()...)
}

// Ext1NoiseSensitivity sweeps multiplicative SNMP measurement noise over
// the link loads and reports the entropy estimator's MRE. The paper's data
// set is noise-free by construction (§5.1.4) and §6 lists measurement
// errors as unexplored.
func (s *Suite) Ext1NoiseSensitivity(ctx context.Context) (*Report, error) {
	r := &Report{ID: "ext1", Title: "Entropy MRE vs relative measurement noise (reg=1000)"}
	noises := []float64{0, 0.005, 0.01, 0.02, 0.05, 0.10}
	r.addf("%-8s %s", "noise:", fmt.Sprint(noises))
	for _, reg := range s.regions() {
		reg := reg
		prior := core.Gravity(reg.inst)
		row := make([]float64, len(noises))
		err := s.forEach(ctx, len(noises), func(i int) error {
			loads := netsim.PerturbLoads(reg.inst.Loads, noises[i], int64(1000+i))
			inst, err := core.NewInstance(reg.sc.Rt, loads)
			if err != nil {
				return err
			}
			est, err := core.Entropy(inst, prior, 1000)
			if err != nil {
				return err
			}
			row[i] = core.MRE(est, reg.truth, reg.thresh)
			return nil
		})
		if err != nil {
			return nil, err
		}
		line := reg.name
		for _, m := range row {
			line += fmt.Sprintf(" %6.3f", m)
		}
		r.Lines = append(r.Lines, line)
	}
	r.addf("(noise in the loads degrades the estimate gracefully; the regularized")
	r.addf(" objective absorbs inconsistency that hard-constrained methods cannot)")
	return r, nil
}

// Ext2UnevaluatedMethods runs the two methods the paper cites but does not
// benchmark: Vaton & Gravey's iterative Bayesian prior refinement and the
// Cao et al. scaling-law moment matching (named in §6 as the missing
// comparison).
func (s *Suite) Ext2UnevaluatedMethods(ctx context.Context) (*Report, error) {
	r := &Report{ID: "ext2", Title: "Iterative Bayesian (Vaton) and scaling-law tomography (Cao)"}
	for _, reg := range s.regions() {
		prior := core.Gravity(reg.inst)
		base, err := core.Bayesian(reg.inst, prior, 1000)
		if err != nil {
			return nil, err
		}
		iter, rounds, err := core.IterativeBayesian(reg.inst, prior, core.DefaultIterativeBayesianConfig())
		if err != nil {
			return nil, err
		}
		caoCfg := core.DefaultCaoConfig()
		caoCfg.Phi = reg.sc.Series.Cfg.Phi
		caoCfg.C = reg.sc.Series.Cfg.C
		loads := reg.sc.LoadSeries(reg.start, BusyWindowSamples)
		cao, err := core.Cao(reg.sc.Rt, loads, caoCfg)
		if err != nil {
			return nil, err
		}
		vardi, err := core.Vardi(reg.sc.Rt, loads, core.DefaultVardiConfig())
		if err != nil {
			return nil, err
		}
		r.addf("%-8s one-shot Bayes %.3f | iterative Bayes %.3f (%d rounds) | Cao %.3f | Vardi %.3f",
			reg.name,
			core.MRE(base, reg.truth, reg.thresh),
			core.MRE(iter, reg.truth, reg.thresh), rounds,
			core.MRE(cao, reg.truth, reg.thresh),
			core.MRE(vardi, reg.truth, reg.thresh))
	}
	r.addf("(iterative refinement reproduces the one-shot result on consistent data;")
	r.addf(" both second-moment methods — Cao's scaling law no less than Vardi's")
	r.addf(" strict Poisson — founder on covariance estimation from 50 samples,")
	r.addf(" extending the paper's Fig. 12 diagnosis to the method it left unevaluated)")
	return r, nil
}

// Ext3ECMPMismatch evaluates what happens when the network actually splits
// traffic over equal-cost multipaths but the estimator assumes the
// single-path routing matrix, and how much repair using the correct
// fractional matrix provides (eq. 1's fractional generalization).
func (s *Suite) Ext3ECMPMismatch(ctx context.Context) (*Report, error) {
	r := &Report{ID: "ext3", Title: "ECMP mismatch: estimating with the wrong routing model"}
	for _, reg := range s.regions() {
		// Coarse IGP weights (operators assign small integers) create the
		// equal-cost ties that make ECMP actually split traffic.
		coarse := topology.QuantizeMetrics(reg.sc.Net, 150)
		single, err := coarse.Route()
		if err != nil {
			return nil, err
		}
		ecmp, err := coarse.RouteECMP()
		if err != nil {
			return nil, err
		}
		// Count demands that are actually split.
		split := 0
		for p := 0; p < coarse.NumPairs(); p++ {
			for _, l := range coarse.Links {
				if l.Kind != topology.Interior {
					continue
				}
				if v := ecmp.R.At(l.ID, p); v > 1e-9 && v < 1-1e-9 {
					split++
					break
				}
			}
		}
		trueLoads := ecmp.LinkLoads(reg.truth)
		instTrue, err := core.NewInstance(ecmp, trueLoads)
		if err != nil {
			return nil, err
		}
		prior := core.Gravity(instTrue)

		// Estimator believes single-path routing.
		instWrong, err := core.NewInstance(single, trueLoads)
		if err != nil {
			return nil, err
		}
		wrong, err := core.Entropy(instWrong, prior, 1000)
		if err != nil {
			return nil, err
		}
		// Estimator knows the fractional ECMP matrix.
		right, err := core.Entropy(instTrue, prior, 1000)
		if err != nil {
			return nil, err
		}
		r.addf("%-8s %d/%d demands ECMP-split | single-path model MRE %.3f | fractional model MRE %.3f",
			reg.name, split, coarse.NumPairs(),
			core.MRE(wrong, reg.truth, reg.thresh),
			core.MRE(right, reg.truth, reg.thresh))
	}
	r.addf("(the single-path assumption misattributes split traffic; the fractional")
	r.addf(" routing matrix of eq. 1 repairs it)")
	return r, nil
}

// Ext4TrafficEngineering closes the loop the paper's introduction opens:
// how wrong do traffic-engineering decisions get when they are based on
// each method's estimated matrix instead of the truth.
func (s *Suite) Ext4TrafficEngineering(ctx context.Context) (*Report, error) {
	r := &Report{ID: "ext4", Title: "TE decisions from estimated matrices (hot set k=10)"}
	for _, reg := range s.regions() {
		prior := core.Gravity(reg.inst)
		entropy, err := core.Entropy(reg.inst, prior, 1000)
		if err != nil {
			return nil, err
		}
		bounds, err := core.WorstCaseBounds(reg.inst)
		if err != nil {
			return nil, err
		}
		r.addf("%s:", reg.name)
		for _, m := range []struct {
			name string
			est  []float64
		}{
			{"gravity", prior},
			{"entropy", entropy},
			{"wcb-mid", bounds.Midpoint()},
		} {
			rep := te.CompareDecisions(reg.sc.Rt, reg.truth, m.est, 10)
			r.addf("  %-8s %s", m.name, rep.String())
		}
	}
	r.addf("(estimated matrices reproduce link-level TE views far better than their")
	r.addf(" demand-level MREs suggest — consistency with the measured loads is")
	r.addf(" exactly what TE consumes, cf. the paper's motivation in §1 and §5.3.1)")
	return r, nil
}
