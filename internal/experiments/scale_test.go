package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestScaleRegistry: the scenario-lab driver is resolvable by ID (so
// `tmbench -run scale` works) but stays out of the byte-stable default
// suite.
func TestScaleRegistry(t *testing.T) {
	d, ok := DriverByID("scale")
	if !ok {
		t.Fatal("DriverByID(scale) not found")
	}
	if d.ID != "scale" || d.Run == nil {
		t.Fatalf("bad scale driver %+v", d)
	}
	for _, def := range AllDrivers() {
		if def.ID == "scale" {
			t.Fatal("scale must not be part of the default (byte-stable) suite")
		}
	}
	reg := Registry()
	if len(reg) != len(AllDrivers())+len(ScaleDrivers()) {
		t.Fatalf("Registry has %d drivers, want %d", len(reg), len(AllDrivers())+len(ScaleDrivers()))
	}
	// Every spec the driver evaluates must parse.
	for _, spec := range scaleSpecs {
		if !strings.Contains(spec, ":") {
			t.Fatalf("spec %q has no family argument", spec)
		}
	}
}

// TestScaleLabCancellation: a canceled context stops the lab before any
// instance is built.
func TestScaleLabCancellation(t *testing.T) {
	s := getSuite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ScaleLab(ctx); err == nil {
		t.Fatal("canceled ScaleLab must fail")
	}
}

// TestScaleLabSmall runs the lab machinery end to end on a reduced spec
// set (tiny instances) by exercising scenario.Evaluate through the same
// pool the driver uses — the full 100-PoP run lives in the benchmarks
// and CI's bench job.
func TestScaleLabSmall(t *testing.T) {
	s := getSuite(t)
	specs := []string{"scaled:6", "ecmp:6:150"}
	insts := make([]*scenario.Instance, len(specs))
	for i, spec := range specs {
		in, err := scenario.Build(spec, s.Seed)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		insts[i] = in
	}
	results, err := scenario.Evaluate(context.Background(), s.Pool(), insts, scenario.Methods(scenario.DefaultBudget()))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs)*3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s/%s: %v", r.Spec, r.Method, r.Err)
		}
	}
}
