package experiments

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
)

// TestExt4TrafficEngineering checks the TE-decision experiment's core
// claim: the entropy estimate reproduces TE views (nearly) exactly because
// it is consistent with the measured loads, while the gravity prior is not.
func TestExt4TrafficEngineering(t *testing.T) {
	s := getSuite(t)
	rep, err := s.Ext4TrafficEngineering(context.Background())
	if err != nil {
		t.Fatalf("Ext4: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	t.Log("\n" + out)
	if !strings.Contains(out, "entropy") || !strings.Contains(out, "gravity") {
		t.Fatal("report missing method rows")
	}
	// Entropy rows must show 100% hot-set overlap.
	for _, line := range rep.Lines {
		if strings.Contains(line, "entropy") && !strings.Contains(line, "overlap 100%") {
			t.Fatalf("entropy estimate should reproduce the hot set exactly: %q", line)
		}
	}
}

// TestExt1NoiseMonotonicTrend verifies noise hurts: the MRE at 10% noise
// must exceed the noise-free MRE in both networks.
func TestExt1NoiseMonotonicTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("noise sweep is slow")
	}
	s := getSuite(t)
	rep, err := s.Ext1NoiseSensitivity(context.Background())
	if err != nil {
		t.Fatalf("Ext1: %v", err)
	}
	for _, line := range rep.Lines {
		if !strings.HasPrefix(line, "Europe") && !strings.HasPrefix(line, "America") {
			continue
		}
		fields := strings.Fields(line)
		first, err1 := strconv.ParseFloat(fields[1], 64)
		last, err2 := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %q", line)
		}
		if last <= first {
			t.Errorf("10%% noise should hurt: %q", line)
		}
	}
}

// TestExt3ECMPRepair verifies the fractional routing matrix repairs the
// single-path mismatch.
func TestExt3ECMPRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("ECMP sweep is slow")
	}
	s := getSuite(t)
	rep, err := s.Ext3ECMPMismatch(context.Background())
	if err != nil {
		t.Fatalf("Ext3: %v", err)
	}
	for _, line := range rep.Lines {
		if !strings.Contains(line, "single-path model") {
			continue
		}
		// Parse "... single-path model MRE X | fractional model MRE Y".
		var wrong, right float64
		fields := strings.Fields(line)
		for i, f := range fields {
			if f == "MRE" && i+1 < len(fields) {
				v, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					t.Fatalf("unparseable MRE in %q", line)
				}
				if wrong == 0 {
					wrong = v
				} else {
					right = v
				}
			}
		}
		if right >= wrong {
			t.Errorf("fractional model (%.3f) should beat single-path (%.3f): %q", right, wrong, line)
		}
	}
}
