package experiments

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/runner"
)

// renderAll runs the given drivers on a fresh suite with the given pool
// size and returns the concatenated rendered reports, emitted in input
// order as RunAll guarantees.
func renderAll(t *testing.T, workers int, ids []string) string {
	t.Helper()
	s, err := NewSuiteWithPool(1, runner.NewPool(workers))
	if err != nil {
		t.Fatalf("NewSuiteWithPool: %v", err)
	}
	var drivers []Driver
	for _, id := range ids {
		d, ok := DriverByID(id)
		if !ok {
			t.Fatalf("driver %s missing", id)
		}
		drivers = append(drivers, d)
	}
	var buf bytes.Buffer
	results, err := RunAll(context.Background(), s, drivers, func(res RunResult) error {
		if res.Err != nil {
			return res.Err
		}
		return res.Value.Render(&buf)
	})
	if err != nil {
		t.Fatalf("RunAll(workers=%d): %v", workers, err)
	}
	if len(results) != len(drivers) {
		t.Fatalf("RunAll returned %d results, want %d", len(results), len(drivers))
	}
	for i, res := range results {
		if res.ID != ids[i] {
			t.Fatalf("result %d = %s, want %s (input order violated)", i, res.ID, ids[i])
		}
	}
	return buf.String()
}

// TestParallelMatchesSerial is the determinism contract of the engine:
// the rendered output of a parallel run must be byte-identical to the
// serial run, both across whole drivers and across the parallelized
// sweep loops inside them.
func TestParallelMatchesSerial(t *testing.T) {
	ids := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6"}
	if !testing.Short() {
		// Cover the parallelized inner sweeps too: fanout windows
		// (fig10), the regularization sweep (fig13) and Vardi (table1).
		ids = append(ids, "fig7", "fig10", "fig13", "table1")
	}
	serial := renderAll(t, 1, ids)
	parallel := renderAll(t, 8, ids)
	if serial != parallel {
		t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if serial == "" {
		t.Fatal("no output produced")
	}
}

// TestRunAllDriverErrorIsPerResult checks that a failing driver does not
// abort the others and surfaces its error on its own result.
func TestRunAllDriverErrorIsPerResult(t *testing.T) {
	s := getSuite(t)
	boom := errors.New("boom")
	drivers := []Driver{
		{ID: "ok1", Title: "ok", Run: func(s *Suite, ctx context.Context) (*Report, error) {
			return &Report{ID: "ok1", Title: "ok", Lines: []string{"fine"}}, nil
		}},
		{ID: "bad", Title: "bad", Run: func(s *Suite, ctx context.Context) (*Report, error) {
			return nil, boom
		}},
		{ID: "ok2", Title: "ok", Run: func(s *Suite, ctx context.Context) (*Report, error) {
			return &Report{ID: "ok2", Title: "ok", Lines: []string{"fine"}}, nil
		}},
	}
	results, err := RunAll(context.Background(), s, drivers, nil)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy drivers failed: %v, %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, boom) {
		t.Fatalf("results[1].Err = %v, want boom", results[1].Err)
	}
}

// TestRunAllCancellation checks that cancelling the context aborts the
// run and reaches into a driver's inner sweep loop.
func TestRunAllCancellation(t *testing.T) {
	s := getSuite(t)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	blocked := Driver{ID: "blocked", Title: "waits for cancel",
		Run: func(s *Suite, ctx context.Context) (*Report, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}}
	go func() {
		<-started
		cancel()
	}()
	_, err := RunAll(ctx, s, []Driver{blocked}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll after cancel = %v, want context.Canceled", err)
	}
	// The suite's sweep helper must refuse to start new work, too.
	calls := 0
	if err := s.forEach(ctx, 10, func(int) error { calls++; return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("forEach on cancelled ctx = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("forEach ran %d iterations on a cancelled context", calls)
	}
}
