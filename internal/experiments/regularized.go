package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/linalg"
)

// RegSweep is the regularization-parameter grid of Figures 13 and 15.
var RegSweep = []float64{1e-5, 1e-3, 1e-1, 1, 1e1, 1e3, 1e5}

// Fig13RegularizationSweep reproduces Figure 13: MRE of the Bayesian and
// Entropy estimators (gravity prior) as a function of the regularization
// parameter, for both networks. Small values reduce to the prior; large
// values trust the measurements and perform best on consistent data.
func (s *Suite) Fig13RegularizationSweep(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig13", Title: "Bayesian/Entropy MRE vs regularization parameter (gravity prior)"}
	r.addf("%-18s %s", "reg:", fmtRegRow())
	for _, reg := range s.regions() {
		reg := reg
		prior := core.Gravity(reg.inst)
		// Both estimators at every regularization value, fanned out over
		// the pool; each (lam, method) cell has its own slot.
		bayMRE := make([]float64, len(RegSweep))
		entMRE := make([]float64, len(RegSweep))
		err := s.forEach(ctx, 2*len(RegSweep), func(i int) error {
			lam := RegSweep[i/2]
			if i%2 == 0 {
				eb, err := core.Bayesian(reg.inst, prior, lam)
				if err != nil {
					return err
				}
				bayMRE[i/2] = core.MRE(eb, reg.truth, reg.thresh)
				return nil
			}
			ee, err := core.Entropy(reg.inst, prior, lam)
			if err != nil {
				return err
			}
			entMRE[i/2] = core.MRE(ee, reg.truth, reg.thresh)
			return nil
		})
		if err != nil {
			return nil, err
		}
		bay := fmt.Sprintf("%-8s Bayesian", reg.name)
		ent := fmt.Sprintf("%-8s Entropy ", reg.name)
		for i := range RegSweep {
			bay += fmt.Sprintf(" %6.3f", bayMRE[i])
			ent += fmt.Sprintf(" %6.3f", entMRE[i])
		}
		r.Lines = append(r.Lines, bay, ent)
		r.addf("%-8s gravity prior MRE %.3f", reg.name, core.MRE(prior, reg.truth, reg.thresh))
	}
	r.addf("(paper: best results at large regularization; no single best method)")
	return r, nil
}

func fmtRegRow() string {
	out := ""
	for _, l := range RegSweep {
		out += fmt.Sprintf(" %6.0e", l)
	}
	return out
}

// Fig14RegularizedScatter reproduces Figure 14: Bayesian and Entropy
// estimates against the true demands for the American network at
// regularization 1000 — the setting that produced the paper's best result.
func (s *Suite) Fig14RegularizedScatter(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig14", Title: "Regularized estimates vs actual demands (America, reg=1000)"}
	reg := s.regions()[1]
	prior := core.Gravity(reg.inst)
	eb, err := core.Bayesian(reg.inst, prior, 1000)
	if err != nil {
		return nil, err
	}
	ee, err := core.Entropy(reg.inst, prior, 1000)
	if err != nil {
		return nil, err
	}
	r.addf("Bayesian: %s", scatterStats(eb, reg.truth, reg.thresh))
	r.addf("Entropy:  %s", scatterStats(ee, reg.truth, reg.thresh))
	r.addf("(paper: both capture the demands across the whole spectrum)")
	return r, nil
}

// Fig15PriorComparison reproduces Figure 15: Bayesian MRE under the gravity
// prior versus the worst-case-bound midpoint prior across the
// regularization sweep. The WCB prior wins at small regularization; the two
// coincide at large regularization.
func (s *Suite) Fig15PriorComparison(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig15", Title: "Bayesian MRE: gravity prior vs WCB prior"}
	r.addf("%-18s %s", "reg:", fmtRegRow())
	for _, reg := range s.regions() {
		reg := reg
		b, err := core.WorstCaseBounds(reg.inst)
		if err != nil {
			return nil, err
		}
		priors := []struct {
			name string
			v    linalg.Vector
		}{
			{"Gravity", core.Gravity(reg.inst)},
			{"WCB", b.Midpoint()},
		}
		// Flatten the prior × regularization grid into one fan-out.
		mres := make([]float64, len(priors)*len(RegSweep))
		err = s.forEach(ctx, len(mres), func(i int) error {
			pr, lam := priors[i/len(RegSweep)], RegSweep[i%len(RegSweep)]
			est, err := core.Bayesian(reg.inst, pr.v, lam)
			if err != nil {
				return err
			}
			mres[i] = core.MRE(est, reg.truth, reg.thresh)
			return nil
		})
		if err != nil {
			return nil, err
		}
		for pi, pr := range priors {
			line := fmt.Sprintf("%-8s %-8s", reg.name, pr.name)
			for li := range RegSweep {
				line += fmt.Sprintf(" %6.3f", mres[pi*len(RegSweep)+li])
			}
			r.Lines = append(r.Lines, line)
		}
	}
	r.addf("(paper: WCB prior clearly better at small reg, equal at large reg)")
	return r, nil
}

// Fig16DirectMeasurement reproduces Figure 16 and the §5.3.6 discussion:
// the MRE of the Entropy method as demands are measured directly one at a
// time — greedily (exhaustive search, as in the paper) and by measuring the
// largest demands first (the practical strategy).
func (s *Suite) Fig16DirectMeasurement(ctx context.Context) (*Report, error) {
	r := &Report{ID: "fig16", Title: "Entropy MRE vs number of directly measured demands"}
	steps := map[string]int{"Europe": 12, "America": 17}
	for _, reg := range s.regions() {
		prior := core.Gravity(reg.inst)
		greedy, _, err := core.DirectMeasurementCurve(
			reg.inst, reg.truth, prior, 1000, reg.thresh, steps[reg.name], core.GreedyMRE)
		if err != nil {
			return nil, err
		}
		largest, _, err := core.DirectMeasurementCurve(
			reg.inst, reg.truth, prior, 1000, reg.thresh, steps[reg.name], core.LargestDemand)
		if err != nil {
			return nil, err
		}
		r.addf("%s greedy:  %s", reg.name, fmtCurve(greedy))
		r.addf("%s largest: %s", reg.name, fmtCurve(largest))
	}
	r.addf("(paper: 6 greedy measurements take Europe from 11%% to <1%%; largest-first needs more)")
	return r, nil
}

func fmtCurve(c []float64) string {
	out := ""
	for _, v := range c {
		out += fmt.Sprintf(" %5.3f", v)
	}
	return out
}

// Table2Summary reproduces Table 2: the best MRE of every method on both
// subnetworks.
func (s *Suite) Table2Summary(ctx context.Context) (*Report, error) {
	r := &Report{ID: "table2", Title: "Best MRE of all methods (paper values in parentheses)"}
	paper := map[string][2]string{
		"Worst-case bound prior": {"0.10", "0.39"},
		"Simple gravity prior":   {"0.26", "0.78"},
		"Entropy w. gravity":     {"0.11", "0.22"},
		"Bayes w. gravity":       {"0.08", "0.25"},
		"Bayes w. WCB prior":     {"0.07", "0.23"},
		"Fanout":                 {"0.22", "0.40"},
		"Vardi":                  {"0.47", "0.98"},
	}
	rows := []string{
		"Worst-case bound prior", "Simple gravity prior", "Entropy w. gravity",
		"Bayes w. gravity", "Bayes w. WCB prior", "Fanout", "Vardi",
	}
	results := map[string][2]float64{}
	for i, reg := range s.regions() {
		prior := core.Gravity(reg.inst)
		b, err := core.WorstCaseBounds(reg.inst)
		if err != nil {
			return nil, err
		}
		wcb := b.Midpoint()
		set := func(name string, v float64) {
			cur := results[name]
			cur[i] = v
			results[name] = cur
		}
		set("Worst-case bound prior", core.MRE(wcb, reg.truth, reg.thresh))
		set("Simple gravity prior", core.MRE(prior, reg.truth, reg.thresh))
		set("Entropy w. gravity", s.bestOverSweep(ctx, func(lam float64) (linalg.Vector, error) {
			return core.Entropy(reg.inst, prior, lam)
		}, reg))
		set("Bayes w. gravity", s.bestOverSweep(ctx, func(lam float64) (linalg.Vector, error) {
			return core.Bayesian(reg.inst, prior, lam)
		}, reg))
		set("Bayes w. WCB prior", s.bestOverSweep(ctx, func(lam float64) (linalg.Vector, error) {
			return core.Bayesian(reg.inst, wcb, lam)
		}, reg))
		// Fanout: best over a few window lengths.
		fanWindows := []int{3, 10, 20, 40}
		fanMRE := make([]float64, len(fanWindows))
		err = s.forEach(ctx, len(fanWindows), func(i int) error {
			k := fanWindows[i]
			loads := reg.sc.LoadSeries(reg.start, k)
			est, err := core.EstimateFanouts(reg.sc.Rt, loads, core.DefaultFanoutConfig())
			if err != nil {
				return err
			}
			mean := reg.sc.Series.MeanDemand(reg.start, k)
			fanMRE[i] = core.MRE(est.MeanDemand, mean, core.ShareThreshold(mean, 0.9))
			return nil
		})
		if err != nil {
			return nil, err
		}
		bestFan := math.Inf(1)
		for _, m := range fanMRE {
			if m < bestFan {
				bestFan = m
			}
		}
		set("Fanout", bestFan)
		// Vardi: best of the two σ⁻² settings of Table 1.
		sigmas := []float64{0.01, 1}
		vardiMRE := make([]float64, len(sigmas))
		err = s.forEach(ctx, len(sigmas), func(i int) error {
			loads := reg.sc.LoadSeries(reg.start, BusyWindowSamples)
			lam, err := core.Vardi(reg.sc.Rt, loads, core.VardiConfig{SigmaInv2: sigmas[i], MaxIter: 30000, Tol: 1e-9})
			if err != nil {
				return err
			}
			vardiMRE[i] = core.MRE(lam, reg.truth, reg.thresh)
			return nil
		})
		if err != nil {
			return nil, err
		}
		bestVardi := math.Inf(1)
		for _, m := range vardiMRE {
			if m < bestVardi {
				bestVardi = m
			}
		}
		set("Vardi", bestVardi)
	}
	r.addf("%-24s %16s %16s", "method", "Europe", "America")
	for _, name := range rows {
		v := results[name]
		p := paper[name]
		r.addf("%-24s %6.3f (%s) %8.3f (%s)", name, v[0], p[0], v[1], p[1])
	}
	return r, nil
}

// bestOverSweep returns the best MRE over the regularization sweep,
// evaluating the sweep points concurrently on the suite's pool. Failed
// sweep points are skipped, as in the serial loop it replaces.
func (s *Suite) bestOverSweep(ctx context.Context, est func(float64) (linalg.Vector, error), reg region) float64 {
	mres := make([]float64, len(RegSweep))
	for i := range mres {
		mres[i] = math.Inf(1)
	}
	s.forEach(ctx, len(RegSweep), func(i int) error {
		v, err := est(RegSweep[i])
		if err != nil {
			return nil // skip failed sweep points
		}
		mres[i] = core.MRE(v, reg.truth, reg.thresh)
		return nil
	})
	best := math.Inf(1)
	for _, m := range mres {
		if m < best {
			best = m
		}
	}
	return best
}
