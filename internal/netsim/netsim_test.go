package netsim

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func TestBuildEurope(t *testing.T) {
	sc, err := BuildEurope(1)
	if err != nil {
		t.Fatalf("BuildEurope: %v", err)
	}
	if sc.Net.NumPoPs() != 12 || sc.Net.InteriorLinks() != 72 || sc.Series.P != 132 {
		t.Fatalf("unexpected dimensions: %d PoPs, %d interior links, %d pairs",
			sc.Net.NumPoPs(), sc.Net.InteriorLinks(), sc.Series.P)
	}
}

func TestBuildAmerica(t *testing.T) {
	sc, err := BuildAmerica(1)
	if err != nil {
		t.Fatalf("BuildAmerica: %v", err)
	}
	if sc.Net.NumPoPs() != 25 || sc.Net.InteriorLinks() != 284 || sc.Series.P != 600 {
		t.Fatalf("unexpected dimensions")
	}
}

func TestLinkLoadsConsistent(t *testing.T) {
	sc, err := BuildEurope(2)
	if err != nil {
		t.Fatal(err)
	}
	loads := sc.LinkLoads(100)
	want := sc.Rt.R.MulVec(nil, sc.Series.Demands[100])
	for i := range want {
		if loads[i] != want[i] {
			t.Fatal("LinkLoads inconsistent with R·s")
		}
	}
	series := sc.LoadSeries(10, 3)
	if len(series) != 3 {
		t.Fatalf("LoadSeries length %d", len(series))
	}
}

func TestSnapshot(t *testing.T) {
	sc, err := BuildEurope(3)
	if err != nil {
		t.Fatal(err)
	}
	truth, inst, th, err := sc.Snapshot(50)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if len(truth) != 132 || th <= 0 {
		t.Fatalf("snapshot truth %d, threshold %v", len(truth), th)
	}
	if math.Abs(inst.TotalTraffic()-truth.Sum()) > 1e-6*truth.Sum() {
		t.Fatal("instance total inconsistent with truth")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sc, err := BuildEurope(4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Region != sc.Region || back.Net.NumPoPs() != sc.Net.NumPoPs() {
		t.Fatal("region/topology mismatch after round trip")
	}
	if len(back.Series.Demands) != len(sc.Series.Demands) {
		t.Fatal("series length mismatch")
	}
	for k := range sc.Series.Demands {
		for p := range sc.Series.Demands[k] {
			if back.Series.Demands[k][p] != sc.Series.Demands[k][p] {
				t.Fatal("demand mismatch after round trip")
			}
		}
	}
	// Routing must be identical (it is recomputed from the same topology).
	for l := 0; l < sc.Rt.R.Rows(); l++ {
		if sc.Rt.R.RowNNZ(l) != back.Rt.R.RowNNZ(l) {
			t.Fatal("routing mismatch after round trip")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	sc, err := BuildEurope(5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := sc.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if back.Series.P != sc.Series.P {
		t.Fatal("file round trip mismatch")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := LoadFile("/nonexistent/path.json"); err == nil {
		t.Fatal("expected open error")
	}
}
