package netsim

import (
	"bytes"
	"testing"

	"repro/internal/topology"
	"repro/internal/traffic"
)

// ecmpScenario builds a small scenario whose quantized metrics create
// equal-cost ties, routed with fractional ECMP splitting.
func ecmpScenario(t *testing.T) *Scenario {
	t.Helper()
	net := topology.QuantizeMetrics(topology.Europe(1), 150)
	sc, err := BuildWith("europe-ecmp", net, traffic.Europe(1), RoutingECMP)
	if err != nil {
		t.Fatalf("BuildWith: %v", err)
	}
	return sc
}

// fractionalEntries counts routing-matrix entries strictly between 0 and 1.
func fractionalEntries(sc *Scenario) int {
	n := 0
	for l := 0; l < sc.Rt.R.Rows(); l++ {
		sc.Rt.R.Row(l, func(c int, v float64) {
			if v > 1e-12 && v < 1-1e-12 {
				n++
			}
		})
	}
	return n
}

// TestECMPRoundTrip: an ECMP-routed scenario must survive Save/Load with
// its routing model, every fractional routing entry and every link load
// intact — the regression this test pins is Load silently rebuilding
// single-path routes for a scenario that was built fractional.
func TestECMPRoundTrip(t *testing.T) {
	sc := ecmpScenario(t)
	if sc.Model != RoutingECMP {
		t.Fatalf("model %q", sc.Model)
	}
	frac := fractionalEntries(sc)
	if frac == 0 {
		t.Fatal("quantized European network produced no fractional entries; test is vacuous")
	}

	var buf bytes.Buffer
	if err := sc.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Model != RoutingECMP {
		t.Fatalf("loaded model %q, want %q", got.Model, RoutingECMP)
	}
	if got.Region != sc.Region {
		t.Fatalf("region %q, want %q", got.Region, sc.Region)
	}

	// The rebuilt routing matrix must match entry for entry, fractions
	// included.
	if got.Rt.R.Rows() != sc.Rt.R.Rows() || got.Rt.R.Cols() != sc.Rt.R.Cols() {
		t.Fatalf("matrix shape %dx%d, want %dx%d",
			got.Rt.R.Rows(), got.Rt.R.Cols(), sc.Rt.R.Rows(), sc.Rt.R.Cols())
	}
	if got.Rt.R.NNZ() != sc.Rt.R.NNZ() {
		t.Fatalf("nnz %d, want %d", got.Rt.R.NNZ(), sc.Rt.R.NNZ())
	}
	for l := 0; l < sc.Rt.R.Rows(); l++ {
		sc.Rt.R.Row(l, func(c int, v float64) {
			if gv := got.Rt.R.At(l, c); gv != v {
				t.Fatalf("R[%d,%d] = %v after round trip, want %v", l, c, gv, v)
			}
		})
	}
	if gotFrac := fractionalEntries(got); gotFrac != frac {
		t.Fatalf("fractional entries %d after round trip, want %d", gotFrac, frac)
	}

	// Demands and the loads derived from them are identical too.
	if len(got.Series.Demands) != len(sc.Series.Demands) {
		t.Fatalf("got %d intervals, want %d", len(got.Series.Demands), len(sc.Series.Demands))
	}
	for _, k := range []int{0, 100, len(sc.Series.Demands) - 1} {
		want := sc.LinkLoads(k)
		have := got.LinkLoads(k)
		for i := range want {
			if have[i] != want[i] {
				t.Fatalf("interval %d link %d load %v, want %v", k, i, have[i], want[i])
			}
		}
	}
}

// TestSPFRoundTripModel: scenarios built before the routing-model field
// existed (empty model) and explicit SPF scenarios both load as SPF.
func TestSPFRoundTripModel(t *testing.T) {
	sc, err := BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Model != RoutingSPF {
		t.Fatalf("BuildEurope model %q", sc.Model)
	}
	var buf bytes.Buffer
	if err := sc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != RoutingSPF {
		t.Fatalf("loaded model %q, want spf", got.Model)
	}
	// Legacy file without the routing field: strip it by re-marshalling a
	// zero-model scenario.
	legacy := *sc
	legacy.Model = ""
	buf.Reset()
	if err := legacy.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"region"`)) || bytes.Contains(buf.Bytes(), []byte(`"routing"`)) {
		t.Fatal("zero-model scenario must omit the routing field (legacy schema)")
	}
	got, err = Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != RoutingSPF {
		t.Fatalf("legacy file loaded as %q, want spf", got.Model)
	}
	// Unknown models are rejected, not silently defaulted.
	bad := bytes.Replace(bufWithModel(t, sc), []byte(`"routing":"spf"`), []byte(`"routing":"warp"`), 1)
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown routing model must fail to load")
	}
}

func bufWithModel(t *testing.T, sc *Scenario) []byte {
	t.Helper()
	withModel := *sc
	withModel.Model = RoutingSPF
	var buf bytes.Buffer
	if err := withModel.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"routing":"spf"`)) {
		t.Fatal("expected explicit routing field")
	}
	return buf.Bytes()
}
