// Package netsim bundles a generated backbone, its routing and a calibrated
// demand time series into an evaluation scenario, mirroring the paper's
// evaluation data set (§5.1.4): link loads are always computed from the
// true demands via t = R·s, so routing, traffic matrix and loads are
// mutually consistent and estimator error is never confounded with
// measurement error.
package netsim

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// RoutingModel selects how a scenario's routing matrix is computed from
// its topology. It is part of the serialized scenario schema, so a loaded
// scenario reconstructs the same (possibly fractional) matrix it was
// built with.
type RoutingModel string

const (
	// RoutingSPF is single shortest-path routing (the default; matches
	// the paper's CSPF-derived single-path LSPs at low reservation).
	RoutingSPF RoutingModel = "spf"
	// RoutingECMP splits demands evenly over all equal-cost shortest
	// paths, producing fractional routing-matrix entries (the
	// generalization the paper notes below eq. 1).
	RoutingECMP RoutingModel = "ecmp"
)

// Scenario is a complete evaluation data set for one subnetwork.
type Scenario struct {
	Region string
	Net    *topology.Network
	Rt     *topology.Routing
	Series *traffic.Series
	Model  RoutingModel
}

// BuildEurope constructs the European evaluation scenario (12 PoPs, 132
// demands, 72 interior links) with deterministic seeding.
func BuildEurope(seed int64) (*Scenario, error) {
	return BuildWith("europe", topology.Europe(seed), traffic.Europe(seed), RoutingSPF)
}

// BuildAmerica constructs the American evaluation scenario (25 PoPs, 600
// demands, 284 interior links).
func BuildAmerica(seed int64) (*Scenario, error) {
	return BuildWith("america", topology.America(seed), traffic.America(seed), RoutingSPF)
}

// BuildWith bundles an arbitrary generated network and traffic
// configuration into a scenario under the given routing model — the
// constructor the scenario-family registry uses to go beyond the paper's
// two fixed subnetworks.
func BuildWith(region string, net *topology.Network, cfg traffic.Config, model RoutingModel) (*Scenario, error) {
	series, err := traffic.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("netsim: traffic %s: %w", region, err)
	}
	return FromSeries(region, net, series, model)
}

// FromSeries bundles a network and an existing demand series into a
// scenario, routing the network under the given model. It is what lets a
// derived scenario (link failure, re-quantized metrics, ECMP) keep the
// exact demand ground truth of its base scenario while the routing — and
// therefore every link load — changes underneath it.
func FromSeries(region string, net *topology.Network, series *traffic.Series, model RoutingModel) (*Scenario, error) {
	rt, err := routeFor(net, model)
	if err != nil {
		return nil, fmt.Errorf("netsim: routing %s: %w", region, err)
	}
	if series.P != net.NumPairs() {
		return nil, fmt.Errorf("netsim: %s traffic has %d pairs, network %d", region, series.P, net.NumPairs())
	}
	return &Scenario{Region: region, Net: net, Rt: rt, Series: series, Model: model}, nil
}

func routeFor(net *topology.Network, model RoutingModel) (*topology.Routing, error) {
	switch model {
	case RoutingECMP:
		return net.RouteECMP()
	case RoutingSPF, "":
		return net.Route()
	default:
		return nil, fmt.Errorf("netsim: unknown routing model %q", model)
	}
}

// LinkLoads returns the consistent link loads of interval k.
func (sc *Scenario) LinkLoads(k int) linalg.Vector {
	return sc.Rt.LinkLoads(sc.Series.Demands[k])
}

// LoadSeries returns loads of the half-open window [start, start+k).
func (sc *Scenario) LoadSeries(start, k int) []linalg.Vector {
	out := make([]linalg.Vector, k)
	for i := 0; i < k; i++ {
		out[i] = sc.LinkLoads(start + i)
	}
	return out
}

// BusyWindow returns the start of the length-k busiest window.
func (sc *Scenario) BusyWindow(k int) int { return sc.Series.BusyWindow(k) }

// Snapshot builds the evaluation snapshot the paper's single-measurement
// methods use: the mean demand over the busy window of length k, the
// consistent Instance for it, and the threshold above which demands carry
// 90% of traffic.
func (sc *Scenario) Snapshot(k int) (truth linalg.Vector, inst *core.Instance, threshold float64, err error) {
	start := sc.BusyWindow(k)
	truth = sc.Series.MeanDemand(start, k)
	inst, err = core.NewInstance(sc.Rt, sc.Rt.LinkLoads(truth))
	if err != nil {
		return nil, nil, 0, err
	}
	return truth, inst, core.ShareThreshold(truth, 0.9), nil
}

// PerturbLoads returns a copy of loads with multiplicative Gaussian noise
// of the given relative standard deviation applied to every entry —
// simulating SNMP measurement error, which the paper's clean evaluation
// data set deliberately excludes (§6 lists its effect as future work).
// Negative results are clamped to zero.
func PerturbLoads(loads linalg.Vector, relStd float64, seed int64) linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := loads.Clone()
	if relStd <= 0 {
		return out
	}
	for i, v := range out {
		out[i] = v * (1 + relStd*rng.NormFloat64())
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// file is the JSON serialization schema of a Scenario. Routing is the
// RoutingModel; absent (older files) means single shortest-path. The
// routing matrix itself is never serialized — it is rebuilt from the
// topology and the model on load, which keeps fractional ECMP entries
// intact without storing L×P matrices.
type file struct {
	Region  string         `json:"region"`
	Routing string         `json:"routing,omitempty"`
	Network networkFile    `json:"network"`
	Traffic traffic.Config `json:"traffic_config"`
	Times   []float64      `json:"times"`
	Demands [][]float64    `json:"demands"`
	Fanouts []float64      `json:"base_fanouts"`
	Weights []float64      `json:"pop_weights"`
}

type networkFile struct {
	Name    string            `json:"name"`
	PoPs    []topology.PoP    `json:"pops"`
	Routers []topology.Router `json:"routers"`
	Links   []topology.Link   `json:"links"`
}

// Save writes the scenario (topology + full demand series) as JSON.
func (sc *Scenario) Save(w io.Writer) error {
	f := file{
		Region:  sc.Region,
		Routing: string(sc.Model),
		Network: networkFile{
			Name: sc.Net.Name, PoPs: sc.Net.PoPs,
			Routers: sc.Net.Routers, Links: sc.Net.Links,
		},
		Traffic: sc.Series.Cfg,
		Times:   sc.Series.Times,
		Fanouts: sc.Series.BaseFanouts,
		Weights: sc.Series.PoPWeights,
	}
	f.Demands = make([][]float64, len(sc.Series.Demands))
	for k, d := range sc.Series.Demands {
		f.Demands[k] = d
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// SaveFile writes the scenario to the named file.
func (sc *Scenario) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("netsim: save: %w", err)
	}
	defer f.Close()
	if err := sc.Save(f); err != nil {
		return fmt.Errorf("netsim: save: %w", err)
	}
	return f.Close()
}

// Load reads a scenario written by Save, rebuilding the routing matrix from
// the stored topology.
func Load(r io.Reader) (*Scenario, error) {
	var f file
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("netsim: load: %w", err)
	}
	net, err := topology.FromParts(f.Network.Name, f.Network.PoPs, f.Network.Routers, f.Network.Links)
	if err != nil {
		return nil, fmt.Errorf("netsim: load network: %w", err)
	}
	model := RoutingModel(f.Routing)
	if model == "" {
		model = RoutingSPF
	}
	rt, err := routeFor(net, model)
	if err != nil {
		return nil, fmt.Errorf("netsim: load routing: %w", err)
	}
	n := net.NumPoPs()
	series := &traffic.Series{
		Cfg: f.Traffic, N: n, P: net.NumPairs(),
		Times:       f.Times,
		BaseFanouts: f.Fanouts,
		PoPWeights:  f.Weights,
	}
	series.Demands = make([]linalg.Vector, len(f.Demands))
	for k, d := range f.Demands {
		if len(d) != series.P {
			return nil, fmt.Errorf("netsim: load: interval %d has %d demands, want %d", k, len(d), series.P)
		}
		series.Demands[k] = d
	}
	return &Scenario{Region: f.Region, Net: net, Rt: rt, Series: series, Model: model}, nil
}

// LoadFile reads a scenario from the named file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netsim: load: %w", err)
	}
	defer f.Close()
	return Load(f)
}
