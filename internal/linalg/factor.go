package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular (or numerically indistinguishable from singular).
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	n int
	l *Matrix
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read. It returns ErrSingular if a is not positive
// definite to working precision.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			li, lj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrSingular
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve solves A·x = b and returns x. b is not modified.
func (c *Cholesky) Solve(b Vector) Vector {
	if len(b) != c.n {
		panic("linalg: Cholesky.Solve bad length")
	}
	// Forward: L y = b.
	y := b.Clone()
	for i := 0; i < c.n; i++ {
		li := c.l.Row(i)
		for k := 0; k < i; k++ {
			y[i] -= li[k] * y[k]
		}
		y[i] /= li[i]
	}
	// Backward: Lᵀ x = y.
	for i := c.n - 1; i >= 0; i-- {
		for k := i + 1; k < c.n; k++ {
			y[i] -= c.l.At(k, i) * y[k]
		}
		y[i] /= c.l.At(i, i)
	}
	return y
}

// QR holds a Householder QR factorization of an m×n matrix with m >= n.
type QR struct {
	m, n int
	qr   *Matrix // packed: R in upper triangle, Householder vectors below
	tau  Vector
}

// NewQR factors a (m×n, m >= n) via Householder reflections. a is not
// modified.
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, errors.New("linalg: QR requires rows >= cols")
	}
	qr := a.Clone()
	tau := NewVector(n)
	for k := 0; k < n; k++ {
		// Householder vector for column k, rows k..m-1.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			tau[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		tau[k] = norm
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Add(i, j, s*qr.At(i, k))
			}
		}
	}
	return &QR{m: m, n: n, qr: qr, tau: tau}, nil
}

// Solve returns the least-squares solution x of a·x ≈ b, i.e. the minimizer
// of ‖a·x − b‖₂. It returns ErrSingular if a is rank deficient.
func (f *QR) Solve(b Vector) (Vector, error) {
	if len(b) != f.m {
		return nil, errors.New("linalg: QR.Solve bad length")
	}
	// Rank check: a diagonal of R that is tiny relative to the largest one
	// marks the matrix as numerically rank deficient.
	var maxTau float64
	for _, t := range f.tau {
		if a := math.Abs(t); a > maxTau {
			maxTau = a
		}
	}
	thresh := maxTau * float64(f.m) * 1e-14
	for k := 0; k < f.n; k++ {
		if math.Abs(f.tau[k]) <= thresh || f.qr.At(k, k) == 0 {
			return nil, ErrSingular
		}
	}
	y := b.Clone()
	// Apply Qᵀ to y.
	for k := 0; k < f.n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < f.m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R x = y[0:n]. Diagonal of R is -tau (sign folded in).
	x := NewVector(f.n)
	for i := f.n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := -f.tau[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveLeastSquares returns the minimizer of ‖a·x − b‖₂ using QR when a has
// full column rank, falling back to a Tikhonov-damped normal-equation solve
// otherwise. It never returns an error: the fallback is always solvable.
func SolveLeastSquares(a *Matrix, b Vector) Vector {
	if a.Rows >= a.Cols {
		if f, err := NewQR(a); err == nil {
			if x, err := f.Solve(b); err == nil {
				return x
			}
		}
	}
	// Damped normal equations: (AᵀA + εI) x = Aᵀ b.
	g := MulAtA(a)
	eps := 1e-10 * (1 + g.MaxAbs())
	for i := 0; i < g.Rows; i++ {
		g.Add(i, i, eps)
	}
	atb := a.MulVecT(nil, b)
	ch, err := NewCholesky(g)
	if err != nil {
		// Extremely ill-conditioned; damp harder until it factors.
		for k := 0; k < 40 && err != nil; k++ {
			eps *= 10
			for i := 0; i < g.Rows; i++ {
				g.Add(i, i, eps)
			}
			ch, err = NewCholesky(g)
		}
		if err != nil {
			return NewVector(a.Cols)
		}
	}
	return ch.Solve(atb)
}
