package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from a slice of equal-length rows.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: got %d want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Add increments element (i, j) by x.
func (m *Matrix) Add(i, j int, x float64) { m.Data[i*m.Cols+j] += x }

// Row returns row i as a mutable slice view.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col copies column j into a new vector.
func (m *Matrix) Col(j int) Vector {
	v := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		v[i] = m.At(i, j)
	}
	return v
}

// Clone returns an independent deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, x := range ri {
			t.Data[j*t.Cols+i] = x
		}
	}
	return t
}

// MulVec computes dst = m * x and returns dst. If dst is nil a new vector is
// allocated. dst must not alias x.
func (m *Matrix) MulVec(dst, x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	if dst == nil {
		dst = NewVector(m.Rows)
	} else if len(dst) != m.Rows {
		panic("linalg: MulVec bad dst length")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
	return dst
}

// MulVecT computes dst = mᵀ * x and returns dst. If dst is nil a new vector
// is allocated. dst must not alias x.
func (m *Matrix) MulVecT(dst, x Vector) Vector {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecT shape mismatch %dx%d^T * %d", m.Rows, m.Cols, len(x)))
	}
	if dst == nil {
		dst = NewVector(m.Cols)
	} else if len(dst) != m.Cols {
		panic("linalg: MulVecT bad dst length")
	}
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), dst)
	}
	return dst
}

// Mul computes a * b as a new matrix.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ci := c.Row(i)
		ai := a.Row(i)
		for k, aik := range ai {
			if aik == 0 {
				continue
			}
			Axpy(aik, b.Row(k), ci)
		}
	}
	return c
}

// MulAtA computes mᵀ·m (the Gram matrix) exploiting symmetry.
func MulAtA(m *Matrix) *Matrix {
	g := NewMatrix(m.Cols, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i, xi := range row {
			if xi == 0 {
				continue
			}
			gi := g.Row(i)
			for j := i; j < len(row); j++ {
				gi[j] += xi * row[j]
			}
		}
	}
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < i; j++ {
			g.Set(i, j, g.At(j, i))
		}
	}
	return g
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, x := range m.Data {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 { return Vector(m.Data).Norm2() }

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		for i := 0; i < m.Rows; i++ {
			s += "\n"
			for j := 0; j < m.Cols; j++ {
				s += fmt.Sprintf(" %9.4g", m.At(i, j))
			}
		}
	}
	return s
}
