package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randomVector(rng *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestDot(t *testing.T) {
	u := Vector{1, 2, 3}
	v := Vector{4, 5, 6}
	if got := Dot(u, v); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestAxpy(t *testing.T) {
	x := Vector{1, 2, 3}
	y := Vector{10, 20, 30}
	Axpy(2, x, y)
	want := Vector{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestAddSub(t *testing.T) {
	u := Vector{1, 2}
	v := Vector{3, 5}
	dst := NewVector(2)
	Add(dst, u, v)
	if dst[0] != 4 || dst[1] != 7 {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, v, u)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("Sub = %v", dst)
	}
}

func TestNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm2(); !almostEqual(got, 5, tol) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	v := Vector{1e200, 1e200}
	want := 1e200 * math.Sqrt(2)
	if got := v.Norm2(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Norm2 overflow-guard failed: %v want %v", got, want)
	}
}

func TestMinMaxSum(t *testing.T) {
	v := Vector{2, -1, 5, 3}
	if mx, i := v.Max(); mx != 5 || i != 2 {
		t.Errorf("Max = %v,%d", mx, i)
	}
	if mn, i := v.Min(); mn != -1 || i != 1 {
		t.Errorf("Min = %v,%d", mn, i)
	}
	if s := v.Sum(); s != 9 {
		t.Errorf("Sum = %v", s)
	}
}

func TestClampNonNegative(t *testing.T) {
	v := Vector{-1, 0, 2, -3}
	v.ClampNonNegative()
	for i, x := range v {
		if x < 0 {
			t.Fatalf("element %d still negative: %v", i, x)
		}
	}
	if v[2] != 2 {
		t.Fatalf("positive element modified")
	}
}

func TestAllFinite(t *testing.T) {
	if !(Vector{1, 2}).AllFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).AllFinite() {
		t.Error("NaN not detected")
	}
	if (Vector{math.Inf(1)}).AllFinite() {
		t.Error("Inf not detected")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Fatalf("At = %v", m.At(0, 1))
	}
	r := m.Row(0)
	r[2] = 9
	if m.At(0, 2) != 9 {
		t.Fatal("Row is not a view")
	}
	c := m.Col(2)
	if c[0] != 9 || c[1] != 0 {
		t.Fatalf("Col = %v", c)
	}
}

func TestMatrixFromRowsAndTranspose(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T shape %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMulVecAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 7, 5)
	x := randomVector(rng, 5)
	y := m.MulVec(nil, x)
	for i := 0; i < m.Rows; i++ {
		var want float64
		for j := 0; j < m.Cols; j++ {
			want += m.At(i, j) * x[j]
		}
		if !almostEqual(y[i], want, tol) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, y[i], want)
		}
	}
}

func TestMulVecTEqualsTransposeMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 6, 4)
	x := randomVector(rng, 6)
	got := m.MulVecT(nil, x)
	want := m.T().MulVec(nil, x)
	for i := range want {
		if !almostEqual(got[i], want[i], tol) {
			t.Fatalf("MulVecT[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 4, 4)
	p := Mul(m, Identity(4))
	for i := range m.Data {
		if !almostEqual(p.Data[i], m.Data[i], tol) {
			t.Fatal("M*I != M")
		}
	}
}

func TestMulAtA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 8, 5)
	got := MulAtA(m)
	want := Mul(m.T(), m)
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], tol) {
			t.Fatalf("MulAtA mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 6, 6)
	spd := MulAtA(a)
	for i := 0; i < 6; i++ {
		spd.Add(i, i, 1)
	}
	xTrue := randomVector(rng, 6)
	b := spd.MulVec(nil, xTrue)
	ch, err := NewCholesky(spd)
	if err != nil {
		t.Fatalf("NewCholesky: %v", err)
	}
	x := ch.Solve(b)
	for i := range x {
		if !almostEqual(x[i], xTrue[i], 1e-7) {
			t.Fatalf("Cholesky solve x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestQRSolveSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 5, 5)
	xTrue := randomVector(rng, 5)
	b := a.MulVec(nil, xTrue)
	f, err := NewQR(a)
	if err != nil {
		t.Fatalf("NewQR: %v", err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := range x {
		if !almostEqual(x[i], xTrue[i], 1e-7) {
			t.Fatalf("QR solve x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestQRLeastSquaresResidualOrthogonal(t *testing.T) {
	// The least-squares residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 10, 4)
	b := randomVector(rng, 10)
	f, err := NewQR(a)
	if err != nil {
		t.Fatalf("NewQR: %v", err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	r := Sub(NewVector(10), a.MulVec(nil, x), b)
	atr := a.MulVecT(nil, r)
	if atr.NormInf() > 1e-8 {
		t.Fatalf("residual not orthogonal: |Aᵀr|∞ = %v", atr.NormInf())
	}
}

func TestQRRankDeficientReturnsError(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	f, err := NewQR(a)
	if err != nil {
		t.Fatalf("NewQR: %v", err)
	}
	if _, err := f.Solve(Vector{1, 2, 3}); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient system")
	}
}

func TestSolveLeastSquaresFallback(t *testing.T) {
	// Rank-deficient: fallback must still return a finite minimizer.
	a := NewMatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := Vector{2, 4, 6}
	x := SolveLeastSquares(a, b)
	if !x.AllFinite() {
		t.Fatal("fallback produced non-finite solution")
	}
	r := Sub(NewVector(3), a.MulVec(nil, x), b)
	if r.Norm2() > 1e-4 {
		t.Fatalf("fallback residual too large: %v", r.Norm2())
	}
}

// Property: for any vectors, Dot(u,v) == Dot(v,u) and |Dot| <= |u||v|.
func TestDotPropertiesQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		u, v := Vector(raw[:n]), Vector(raw[n:2*n])
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		d1, d2 := Dot(u, v), Dot(v, u)
		if d1 != d2 {
			return false
		}
		return math.Abs(d1) <= u.Norm2()*v.Norm2()*(1+1e-9)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		m := randomMatrix(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		tt := m.T().T()
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				t.Fatal("(Mᵀ)ᵀ != M")
			}
		}
	}
}

// Property: Cholesky solve of A=LLᵀ reproduces b.
func TestCholeskyRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		a := randomMatrix(rng, n+2, n)
		spd := MulAtA(a)
		for i := 0; i < n; i++ {
			spd.Add(i, i, 0.5)
		}
		ch, err := NewCholesky(spd)
		if err != nil {
			t.Fatalf("NewCholesky: %v", err)
		}
		x := randomVector(rng, n)
		b := spd.MulVec(nil, x)
		got := ch.Solve(b)
		back := spd.MulVec(nil, got)
		for i := range b {
			if !almostEqual(back[i], b[i], 1e-6) {
				t.Fatalf("round trip failed: %v vs %v", back[i], b[i])
			}
		}
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := randomMatrix(rng, 284, 600)
	x := randomVector(rng, 600)
	dst := NewVector(284)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkCholesky(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 140, 120)
	spd := MulAtA(a)
	for i := 0; i < 120; i++ {
		spd.Add(i, i, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(spd); err != nil {
			b.Fatal(err)
		}
	}
}
