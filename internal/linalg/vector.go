// Package linalg provides the dense linear-algebra kernels used by the
// traffic-matrix estimation library: vectors, row-major matrices,
// Householder QR, Cholesky factorization and the associated solvers.
// These are the primitives behind every estimator of the paper's §4 —
// the gravity products of eq. (5), the regularized least-squares systems
// of eqs. (6)–(7) and the moment systems of Vardi's method (§4.2.2) all
// reduce to the dense operations defined here.
//
// The package is deliberately small and allocation-conscious: every routine
// that can write into a caller-supplied destination does so, and the hot
// kernels (Dot, Axpy, MulVec) are written as straight loops that the Go
// compiler vectorizes well.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector backed by a []float64.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every element of v to 0.
func (v Vector) Zero() { v.Fill(0) }

// Dot returns the inner product of u and v. It panics if the lengths differ.
func Dot(u, v Vector) float64 {
	if len(u) != len(v) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(u), len(v)))
	}
	var s float64
	for i, x := range u {
		s += x * v[i]
	}
	return s
}

// Axpy computes y += a*x in place. It panics if the lengths differ.
func Axpy(a float64, x, y Vector) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, xi := range x {
		y[i] += a * xi
	}
}

// Scale multiplies every element of v by a in place.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Add computes dst = u + v and returns dst. dst may alias u or v.
func Add(dst, u, v Vector) Vector {
	checkLen3(dst, u, v)
	for i := range dst {
		dst[i] = u[i] + v[i]
	}
	return dst
}

// Sub computes dst = u - v and returns dst. dst may alias u or v.
func Sub(dst, u, v Vector) Vector {
	checkLen3(dst, u, v)
	for i := range dst {
		dst[i] = u[i] - v[i]
	}
	return dst
}

func checkLen3(a, b, c Vector) {
	if len(a) != len(b) || len(b) != len(c) {
		panic(fmt.Sprintf("linalg: length mismatch %d/%d/%d", len(a), len(b), len(c)))
	}
}

// Norm2 returns the Euclidean norm of v, guarding against overflow for
// large entries by scaling.
func (v Vector) Norm2() float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// DiffNorm2 returns ‖a − b‖₂ without materializing the difference vector,
// using the same overflow-guarded scaling as Norm2 — so it is bit-for-bit
// the value of Sub(NewVector(len(a)), a, b).Norm2(), minus the allocation.
// It is the convergence-check kernel of every iterative solver in this
// repository. It panics if the lengths differ.
func DiffNorm2(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: DiffNorm2 length mismatch %d vs %d", len(a), len(b)))
	}
	var scale, ssq float64 = 0, 1
	for i, x := range a {
		x -= b[i]
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// RelL1 returns the relative L1 distance ‖a − b‖₁ / ‖b‖₁, or 0 when b
// has no mass — the scale-free "how much did this move" metric shared
// by the scenario lab's error scoring and the streaming engine's window
// drift signal. It panics if the lengths differ.
func RelL1(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: RelL1 length mismatch %d vs %d", len(a), len(b)))
	}
	var num, den float64
	for i := range a {
		num += math.Abs(a[i] - b[i])
		den += math.Abs(b[i])
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Norm1 returns the sum of absolute values of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the maximum absolute value of v (0 for an empty vector).
func (v Vector) NormInf() float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum element of v and its index, or (-Inf, -1) for an
// empty vector.
func (v Vector) Max() (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Min returns the minimum element of v and its index, or (+Inf, -1) for an
// empty vector.
func (v Vector) Min() (float64, int) {
	best, idx := math.Inf(1), -1
	for i, x := range v {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}

// ClampNonNegative sets every negative element of v to zero.
func (v Vector) ClampNonNegative() {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// AllFinite reports whether every element of v is finite (no NaN or Inf).
func (v Vector) AllFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
