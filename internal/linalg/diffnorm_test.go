package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// TestDiffNorm2MatchesSubNorm2 is the equivalence property behind every
// solver convergence check that switched to the fused kernel: on a
// corpus spanning sizes, magnitudes (denormal-adjacent through 1e150,
// exercising the overflow-guarded scaling) and sparsity patterns,
// DiffNorm2(a, b) must agree with materializing a−b and taking Norm2 to
// within 1e-12 relative — the kernel replays the identical scale/ssq
// recurrence, so in practice the two are bit-equal.
func TestDiffNorm2MatchesSubNorm2(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	scales := []float64{1e-300, 1e-12, 1, 1e12, 1e150}
	for _, n := range []int{1, 2, 7, 64, 513} {
		for _, s := range scales {
			for trial := 0; trial < 20; trial++ {
				a, b := NewVector(n), NewVector(n)
				for i := range a {
					a[i] = (rng.Float64()*2 - 1) * s
					b[i] = (rng.Float64()*2 - 1) * s
				}
				// Mix in exact zeros and exact ties so the skip-zero
				// branch and equal-magnitude rescale paths both run.
				if n > 2 {
					a[0], b[0] = 0, 0
					a[1] = b[1]
				}
				got := DiffNorm2(a, b)
				d := NewVector(n)
				Sub(d, a, b)
				want := d.Norm2()
				if want == 0 {
					if got != 0 {
						t.Fatalf("n=%d scale=%g: DiffNorm2=%g, want exactly 0", n, s, got)
					}
					continue
				}
				if rel := math.Abs(got-want) / want; rel > 1e-12 {
					t.Fatalf("n=%d scale=%g: DiffNorm2=%g vs Sub+Norm2=%g (rel err %g > 1e-12)", n, s, got, want, rel)
				}
			}
		}
	}
}

// TestDiffNorm2ZeroAlloc pins the point of the fused kernel: no
// difference vector is materialized.
func TestDiffNorm2ZeroAlloc(t *testing.T) {
	a, b := NewVector(256), NewVector(256)
	for i := range a {
		a[i], b[i] = float64(i), float64(255-i)
	}
	if allocs := testing.AllocsPerRun(100, func() { DiffNorm2(a, b) }); allocs != 0 {
		t.Errorf("DiffNorm2 allocated %.0f times per run, want 0", allocs)
	}
}

func TestDiffNorm2PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DiffNorm2 on mismatched lengths must panic")
		}
	}()
	DiffNorm2(NewVector(3), NewVector(4))
}
