package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"
	"time"
)

// ConfigFormat is the version tag every fleet config must carry.
// ParseConfig rejects unknown versions instead of guessing, so a schema
// change can never silently misconfigure a running fleet.
const ConfigFormat = 1

// TenantSpec declares one tenant: a named subnetwork (topology or
// scenario-lab instance) with its measurement replay and estimation
// parameters. The zero value of every optional field selects the same
// default the corresponding tmserve flag has, so a spec written from
// the flag documentation behaves identically.
type TenantSpec struct {
	// Name identifies the tenant in URLs (/t/{name}/...), checkpoint
	// file names and logs. Required; letters, digits, '.', '_', '-'.
	Name string `json:"name"`
	// Source selects the subnetwork and its demand series:
	//
	//	europe | america        the paper's two subnetworks
	//	scenario:<family spec>  a scenario-lab instance (internal/scenario),
	//	                        replayed over its busy evaluation window
	//	scenario:script:<file>  a timeline script (internal/timeline):
	//	                        scripted demand events replayed with the
	//	                        scripted routing hot-swaps armed on the
	//	                        engine
	//	file:<path>             a scenario JSON produced by tmgen
	//
	// Defaults to "europe".
	Source string `json:"source,omitempty"`
	// Seed flows into topology, traffic and noise generation for
	// generated sources (ignored by file:). Defaults to 1; a spec
	// cannot express seed 0 (0 selects the default — a pinned seed-0
	// scenario can be materialized with `tmgen` and loaded via file:).
	Seed int64 `json:"seed,omitempty"`
	// Cycles is the number of polling intervals to replay; 0 selects the
	// default of 24, -1 replays forever (until the fleet stops). A
	// scenario:script tenant counts whole timeline passes instead (its
	// script fixes the intervals per pass): default 1, -1 forever.
	Cycles int `json:"cycles,omitempty"`
	// Pace is the wall-clock time per replayed interval as a Go duration
	// string ("100ms", "2s", "0"). Defaults to "100ms".
	Pace string `json:"pace,omitempty"`

	// Estimation parameters, mirroring stream.Config / tmserve flags.
	Window          int     `json:"window,omitempty"`            // default 6; -1 = expanding
	MinCoverage     float64 `json:"min_coverage,omitempty"`      // default 0.9
	ResolveEvery    int     `json:"resolve_every,omitempty"`     // default 3; -1 = gravity only
	ResolveMaxEvery int     `json:"resolve_max_every,omitempty"` // default 0 (fixed cadence)
	DriftThreshold  float64 `json:"drift_threshold,omitempty"`   // default 0 (no drift trigger)
	Method          string  `json:"method,omitempty"`            // default entropy
	Reg             float64 `json:"reg,omitempty"`               // default 1000
	SigmaInv2       float64 `json:"sigma_inv2,omitempty"`        // default 0.01
	ResolveMaxIter  int     `json:"resolve_max_iter,omitempty"`  // default 20000
	ResolveTol      float64 `json:"resolve_tol,omitempty"`       // default 1e-6

	// Checkpoint overrides the tenant's checkpoint file path. Empty
	// selects <checkpoint-dir>/<name>.ckpt when the fleet has a
	// checkpoint directory, and no checkpointing otherwise.
	Checkpoint string `json:"checkpoint,omitempty"`

	// MaxWaiters caps this tenant's concurrent long-poll waiters plus
	// SSE subscribers on the serving side (internal/serve); excess
	// clients get 429 + Retry-After. 0 selects the daemon-wide
	// -max-waiters value.
	MaxWaiters int `json:"max_waiters,omitempty"`

	// Per-tenant SLO thresholds. When any is exceeded the tenant
	// reports Degraded with a named cause in its Status, /healthz flips
	// to degraded (the HTTP status stays 200 — cluster liveness probes
	// gate on it; degradation is an operator signal, not a failover
	// trigger), and the tm_tenant_degraded gauge raises. 0 disables
	// each threshold.
	SLOMaxDrift      float64 `json:"slo_max_drift,omitempty"`
	SLOMaxResolveMRE float64 `json:"slo_max_resolve_mre,omitempty"`
	// SLOMaxCheckpointAge is a Go duration string ("30s"): the maximum
	// acceptable age of the tenant's last successful checkpoint save.
	// It only ever fires for checkpointed tenants.
	SLOMaxCheckpointAge string `json:"slo_max_checkpoint_age,omitempty"`

	// Drift-anomaly detector knobs (stream.Config.Anomaly*): a window
	// drift beyond AnomalyFactor times the rolling baseline (and the
	// AnomalyMinDrift floor) marks the tenant anomalous — the paper's
	// downstream traffic-anomaly-detection use. Factor 0 disables the
	// detector; window and floor 0 select the stream defaults (8,
	// 0.05).
	AnomalyFactor   float64 `json:"anomaly_factor,omitempty"`
	AnomalyWindow   int     `json:"anomaly_window,omitempty"`
	AnomalyMinDrift float64 `json:"anomaly_min_drift,omitempty"`
}

// Config is the versioned fleet declaration `tmserve -fleet` loads.
type Config struct {
	Format  int          `json:"format"`
	Tenants []TenantSpec `json:"tenants"`
}

var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// ParseConfig decodes and validates a fleet config. Tenant-level
// resource construction (scenario build, engine creation) happens later
// in Fleet.Add, so a config can be validated without paying for its
// topologies.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("fleet: parse config: %w", err)
	}
	if cfg.Format != ConfigFormat {
		return Config{}, fmt.Errorf("fleet: config format %d, this build reads %d", cfg.Format, ConfigFormat)
	}
	if len(cfg.Tenants) == 0 {
		return Config{}, fmt.Errorf("fleet: config declares no tenants")
	}
	if err := ValidateTenants(cfg.Tenants); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// ValidateTenants checks a tenant list the way ParseConfig does: names
// well-formed and unique, paces parse, ranges sane. The cluster config
// (internal/cluster) embeds the same tenant list and validates it with
// this, so the two config formats can never diverge on what a legal
// tenant is.
func ValidateTenants(tenants []TenantSpec) error {
	seen := make(map[string]bool, len(tenants))
	for i, t := range tenants {
		if !nameRe.MatchString(t.Name) {
			return fmt.Errorf("fleet: tenant %d name %q is not a [A-Za-z0-9._-]+ identifier", i, t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("fleet: duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = true
		if _, err := t.pace(); err != nil {
			return fmt.Errorf("fleet: tenant %q: %w", t.Name, err)
		}
		if t.Cycles < -1 {
			return fmt.Errorf("fleet: tenant %q: cycles %d out of range (>= -1)", t.Name, t.Cycles)
		}
		if t.MaxWaiters < 0 {
			return fmt.Errorf("fleet: tenant %q: max_waiters %d is negative", t.Name, t.MaxWaiters)
		}
		if t.SLOMaxDrift < 0 {
			return fmt.Errorf("fleet: tenant %q: slo_max_drift %v is negative", t.Name, t.SLOMaxDrift)
		}
		if t.SLOMaxResolveMRE < 0 {
			return fmt.Errorf("fleet: tenant %q: slo_max_resolve_mre %v is negative", t.Name, t.SLOMaxResolveMRE)
		}
		if _, err := t.sloMaxCheckpointAge(); err != nil {
			return fmt.Errorf("fleet: tenant %q: %w", t.Name, err)
		}
		if t.AnomalyFactor < 0 || t.AnomalyWindow < 0 || t.AnomalyMinDrift < 0 {
			return fmt.Errorf("fleet: tenant %q: negative anomaly parameter", t.Name)
		}
	}
	return nil
}

// LoadConfig reads and validates a fleet config file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	cfg, err := ParseConfig(data)
	if err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// pace parses the spec's replay pace, applying the 100ms default.
func (s TenantSpec) pace() (time.Duration, error) {
	if s.Pace == "" {
		return 100 * time.Millisecond, nil
	}
	d, err := time.ParseDuration(s.Pace)
	if err != nil {
		return 0, fmt.Errorf("pace %q is not a duration", s.Pace)
	}
	if d < 0 {
		return 0, fmt.Errorf("pace %q is negative", s.Pace)
	}
	return d, nil
}

// sloMaxCheckpointAge parses the checkpoint-age SLO; zero means no
// threshold.
func (s TenantSpec) sloMaxCheckpointAge() (time.Duration, error) {
	if s.SLOMaxCheckpointAge == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s.SLOMaxCheckpointAge)
	if err != nil {
		return 0, fmt.Errorf("slo_max_checkpoint_age %q is not a duration", s.SLOMaxCheckpointAge)
	}
	if d <= 0 {
		return 0, fmt.Errorf("slo_max_checkpoint_age %q is not positive", s.SLOMaxCheckpointAge)
	}
	return d, nil
}

// cycles resolves the spec's replay length: default 24, -1 = forever.
func (s TenantSpec) cycles() int {
	switch {
	case s.Cycles == 0:
		return 24
	case s.Cycles < 0:
		return int(^uint(0) >> 1) // run until the fleet stops
	}
	return s.Cycles
}
