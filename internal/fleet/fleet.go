// Package fleet shards many independent estimation engines behind one
// process: each tenant is a named subnetwork — one of the paper's two
// backbones, a scenario-lab instance, or a tmgen scenario file — with
// its own collector store, its own stream.Engine and its own checkpoint
// file, while every tenant's full re-solves are multiplexed onto one
// shared runner.Pool. The paper estimates traffic matrices per
// subnetwork (its two backbones are instances of a family); the fleet
// is the serving layer that operates many such subnetworks at once,
// which is what cmd/tmserve's -fleet mode exposes over HTTP.
//
// Scheduling is fair by construction: engines park scheduled re-solves
// (stream.Config.ResolveDispatch) instead of solving, and the fleet's
// scheduler claims parked work round-robin across tenants with at most
// one solve in flight per tenant — so a drifting 150-PoP tenant queues
// behind its own previous solve, never ahead of a small tenant's first.
// Claimed solves run on pool helper slots when one is free and on the
// claiming goroutine otherwise, the same caller-participates discipline
// as runner.Pool.ForEach.
//
// Lifecycle is aggregated: Run starts every tenant's collection,
// ingestion and checkpoint persistence and blocks until the context is
// done; RestoreAll restores every tenant from its checkpoint file under
// one directory before Run; SaveAll persists every tenant, and Run does
// a final SaveAll after the engines have stopped.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sparse"
	"repro/internal/stream"
	"repro/internal/timeline"
	"repro/internal/traffic"
)

// Feed is one tenant's measurement feed: the store its records land in
// and the collection that fills it. Replay tenants get one built from
// their spec; AddFeed lets a host (tmserve's live mode) supply its own.
type Feed struct {
	Store *collector.Store
	// Collect fills Store until the source is exhausted (return nil) or
	// ctx is done (return ctx.Err()).
	Collect func(ctx context.Context) error
}

// TenantState is the lifecycle phase /healthz reports per tenant.
type TenantState string

const (
	// StateIdle: added but Run has not started yet.
	StateIdle TenantState = "idle"
	// StateRunning: collection in progress, snapshots evolving.
	StateRunning TenantState = "running"
	// StateServing: collection finished; the last snapshot is served
	// until the fleet stops.
	StateServing TenantState = "serving"
	// StateFailed: the tenant's engine or collection failed. Other
	// tenants are unaffected; the error is in Status.Error.
	StateFailed TenantState = "failed"
)

// Tenant is one hosted subnetwork: spec, scenario, engine, feed, state.
type Tenant struct {
	spec TenantSpec
	sc   *netsim.Scenario
	eng  *stream.Engine
	feed Feed
	// tl is non-nil for scenario:script tenants: the compiled timeline
	// whose replay drives the feed and whose topology swaps are armed on
	// the engine (by Run, or by RestoreAll after moving a restored engine
	// onto its checkpointed epoch).
	tl *timeline.Timeline
	// canon is the fleet SolveCache's canonical pointer for the tenant's
	// routing matrix at Add time — the key the scheduler batches on, so
	// tenants sharing a topology solve back-to-back and hit the cached
	// operator norms / moment assemblies while they are hot. A scripted
	// hot-swap makes it stale, which only weakens the batching hint;
	// correctness never depends on it.
	canon *sparse.Matrix

	// lastSave is the UnixNano of the last successful checkpoint write
	// (persistLoop or SaveAll), 0 before the first. Atomic so the
	// scrape-time tm_checkpoint_age_seconds collector and the SLO
	// evaluation never contend with the persist loop.
	lastSave atomic.Int64

	mu         sync.Mutex
	state      TenantState
	err        error
	restored   bool
	swapsArmed bool
}

// Name returns the tenant's unique name.
func (t *Tenant) Name() string { return t.spec.Name }

// Spec returns the spec the tenant was added with.
func (t *Tenant) Spec() TenantSpec { return t.spec }

// Engine exposes the tenant's estimation engine for reading (Latest,
// WaitVersion, Metrics). Lifecycle stays with the fleet.
func (t *Tenant) Engine() *stream.Engine { return t.eng }

// Scenario returns the subnetwork the tenant estimates over.
func (t *Tenant) Scenario() *netsim.Scenario { return t.sc }

// Timeline returns the compiled timeline of a scenario:script tenant,
// nil for every other source.
func (t *Tenant) Timeline() *timeline.Timeline { return t.tl }

// noteSaved records a successful checkpoint write.
func (t *Tenant) noteSaved() { t.lastSave.Store(time.Now().UnixNano()) }

// CheckpointAge is the time since the tenant's last successful
// checkpoint save; ok is false when none has happened yet (including
// every un-checkpointed tenant).
func (t *Tenant) CheckpointAge() (time.Duration, bool) {
	ns := t.lastSave.Load()
	if ns == 0 {
		return 0, false
	}
	return time.Since(time.Unix(0, ns)), true
}

// armSwaps arms a script tenant's scripted topology swaps on its
// engine, once; a no-op for other tenants and on repeat calls.
func (t *Tenant) armSwaps() error {
	t.mu.Lock()
	armed := t.swapsArmed
	t.swapsArmed = true
	t.mu.Unlock()
	if t.tl == nil || armed {
		return nil
	}
	return t.tl.RegisterSwaps(t.eng)
}

func (t *Tenant) setState(s TenantState) {
	t.mu.Lock()
	if t.state != StateFailed { // a failure is terminal
		t.state = s
	}
	t.mu.Unlock()
}

// fail marks the tenant failed, reporting whether this call was the
// transition (a tenant can lose both its engine and its collection;
// only the first error sticks and counts).
func (t *Tenant) fail(err error) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == StateFailed {
		return false
	}
	t.state = StateFailed
	t.err = err
	return true
}

// Status is the JSON shape /tenants and /healthz serve per tenant.
type Status struct {
	Name     string      `json:"name"`
	Source   string      `json:"source"`
	State    TenantState `json:"state"`
	Error    string      `json:"error,omitempty"`
	PoPs     int         `json:"pops"`
	Pairs    int         `json:"pairs"`
	Method   string      `json:"method"`
	Restored bool        `json:"restored"`
	// TopologyEpoch is the engine's active topology epoch — 0 except for
	// scenario:script tenants past a scripted routing change.
	TopologyEpoch int `json:"topology_epoch"`
	// HaveSnapshot/Version/Interval mirror the engine's latest snapshot.
	HaveSnapshot bool   `json:"have_snapshot"`
	Version      uint64 `json:"version"`
	Interval     int    `json:"interval"`
	// Drift/ResolveMRE/AnomalyActive/Anomalies mirror the newest
	// estimation metric point — the observability fields the SLO
	// thresholds judge.
	Drift         float64 `json:"drift"`
	ResolveMRE    float64 `json:"resolve_mre"`
	AnomalyActive bool    `json:"anomaly_active,omitempty"`
	Anomalies     int     `json:"anomalies,omitempty"`
	// CheckpointAgeSeconds is the age of the last successful checkpoint
	// save; absent until one lands (and for un-checkpointed tenants).
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds,omitempty"`
	// Degraded reports an exceeded SLO threshold (TenantSpec.SLO*);
	// DegradedCause names the first one. /healthz aggregates these
	// without changing its HTTP status.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedCause string `json:"degraded_cause,omitempty"`
}

// Status reports the tenant's current lifecycle and snapshot position.
func (t *Tenant) Status() Status {
	t.mu.Lock()
	st, terr, restored := t.state, t.err, t.restored
	t.mu.Unlock()
	s := Status{
		Name:          t.spec.Name,
		Source:        t.spec.Source,
		State:         st,
		PoPs:          t.sc.Net.NumPoPs(),
		Pairs:         t.sc.Net.NumPairs(),
		Method:        t.spec.Method,
		Restored:      restored,
		TopologyEpoch: t.eng.TopologyEpoch(),
	}
	if terr != nil {
		s.Error = terr.Error()
	}
	if version, interval, ok := t.eng.Position(); ok {
		s.HaveSnapshot = true
		s.Version = version
		s.Interval = interval
	}
	if lm, ok := t.eng.LastMetric(); ok {
		s.Drift = lm.Drift
		s.ResolveMRE = lm.ResolveMRE
		s.AnomalyActive = lm.AnomalyActive
		s.Anomalies = lm.Anomalies
	}
	if age, ok := t.CheckpointAge(); ok {
		s.CheckpointAgeSeconds = age.Seconds()
	}
	s.Degraded, s.DegradedCause = t.degraded(s)
	return s
}

// degraded evaluates the spec's SLO thresholds against the live
// status; the first exceeded threshold names the cause.
func (t *Tenant) degraded(s Status) (bool, string) {
	spec := t.spec
	if !s.HaveSnapshot {
		return false, ""
	}
	if spec.SLOMaxDrift > 0 && s.Drift > spec.SLOMaxDrift {
		return true, fmt.Sprintf("drift %.4g above SLO max %g", s.Drift, spec.SLOMaxDrift)
	}
	if spec.SLOMaxResolveMRE > 0 && s.ResolveMRE > spec.SLOMaxResolveMRE {
		return true, fmt.Sprintf("resolve MRE %.4g above SLO max %g", s.ResolveMRE, spec.SLOMaxResolveMRE)
	}
	if maxAge, _ := spec.sloMaxCheckpointAge(); maxAge > 0 {
		if age, ok := t.CheckpointAge(); ok && age > maxAge {
			return true, fmt.Sprintf("checkpoint age %s above SLO max %s", age.Round(time.Millisecond), maxAge)
		}
	}
	return false, ""
}

// Options tunes a Fleet.
type Options struct {
	// CheckpointDir, when non-empty, gives every tenant a checkpoint
	// file <dir>/<name>.ckpt (unless its spec overrides the path):
	// RestoreAll reads them, Run persists them on every publication and
	// once more at shutdown. The directory is created if missing.
	CheckpointDir string
	// Logf receives per-tenant lifecycle messages (restore, collection
	// finished, checkpoint trouble). Nil discards them.
	Logf func(format string, args ...any)
	// AllowEmpty lets Run start with zero tenants. A cluster standby
	// node boots empty and receives its tenants later through Adopt;
	// everything else keeps the "no tenants is a misconfiguration"
	// error.
	AllowEmpty bool
	// Metrics, when non-nil, is the Prometheus-format registry
	// (internal/obs) the fleet registers its telemetry families on:
	// per-tenant resolve latency/iteration histograms and warm-vs-cold
	// counters fed by every engine's OnResolve hook, plus scrape-time
	// collectors over live engine and scheduler state. The host shares
	// one registry with the serving layer (serve.Options.Metrics) so a
	// single /metrics/prom scrape covers estimation and serving alike.
	Metrics *obs.Registry
}

// Fleet hosts many tenants over one shared re-solve pool. Create with
// New, declare tenants with Add/AddFeed, optionally RestoreAll, then
// Run once.
type Fleet struct {
	pool    *runner.Pool
	opts    Options
	started atomic.Bool
	// solve shares routing-matrix-derived solver artifacts (operator
	// norms, Vardi moment assemblies) across all tenants: engines with
	// equal routing matrices — the common case when many tenants replay
	// the same scenario family — compute them once fleet-wide.
	solve *core.SolveCache

	// metrics is non-nil when Options.Metrics wired a registry in.
	metrics *fleetMetrics

	mu       sync.Mutex
	tenants  []*Tenant
	byName   map[string]*Tenant
	inflight map[string]bool // per-tenant in-flight cap: one solve each
	rr       int             // round-robin claim cursor

	kick chan struct{} // coalesced "work parked" wake-ups

	// Run-lifetime state, guarded by runMu so Adopt can join tenants to
	// a fleet that is already running: runCtx is non-nil exactly while
	// Run's goroutines may still be started (cleared before the final
	// wg.Wait, so a late Adopt can never race the WaitGroup), and
	// ntotal/nfailed keep the all-failed accounting live as adopted
	// tenants arrive.
	runMu     sync.Mutex
	runCtx    context.Context
	wg        sync.WaitGroup
	ntotal    int
	nfailed   int
	allFailed chan struct{}
}

// New creates an empty fleet multiplexing re-solves onto pool.
func New(pool *runner.Pool, opts Options) *Fleet {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	f := &Fleet{
		pool:     pool,
		opts:     opts,
		solve:    core.NewSolveCache(),
		byName:   make(map[string]*Tenant),
		inflight: make(map[string]bool),
		kick:     make(chan struct{}, 1),
	}
	if opts.Metrics != nil {
		f.registerMetrics(opts.Metrics)
	}
	return f
}

// Pool returns the shared re-solve pool.
func (f *Fleet) Pool() *runner.Pool { return f.pool }

// Add materializes a tenant from its spec: the source is built (or
// loaded), the engine created in dispatch mode, and a deterministic
// replay feed attached. Must be called before Run.
func (f *Fleet) Add(spec TenantSpec) (*Tenant, error) {
	return f.addSpec(spec, false)
}

// addSpec materializes a tenant from its spec; adopt relaxes the
// "before Run" restriction for Adopt's running-fleet path.
func (f *Fleet) addSpec(spec TenantSpec, adopt bool) (*Tenant, error) {
	if strings.HasPrefix(spec.Source, "scenario:script:") {
		return f.addScript(spec, adopt)
	}
	sc, series, err := buildSource(spec)
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %q: %w", spec.Name, err)
	}
	pace, err := spec.pace()
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %q: %w", spec.Name, err)
	}
	if spec.Cycles < -1 {
		return nil, fmt.Errorf("fleet: tenant %q: cycles %d out of range (>= -1)", spec.Name, spec.Cycles)
	}
	cycles := spec.cycles()
	store := collector.NewStore(sc.Net.NumPairs())
	feed := Feed{
		Store: store,
		Collect: func(ctx context.Context) error {
			return collector.Replay(ctx, store, series, cycles, pace)
		},
	}
	return f.add(spec, sc, feed, adopt)
}

// addScript materializes a scenario:script:<path> tenant: the timeline
// script is parsed and compiled against its base instance, the feed
// replays the compiled steps (outage holes and all), and the scripted
// routing hot-swaps are armed on the engine when the fleet starts — or
// replayed up to the checkpointed topology epoch by RestoreAll first.
func (f *Fleet) addScript(spec TenantSpec, adopt bool) (*Tenant, error) {
	fail := func(err error) (*Tenant, error) {
		return nil, fmt.Errorf("fleet: tenant %q: %w", spec.Name, err)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	script, err := timeline.ParseFile(strings.TrimPrefix(spec.Source, "scenario:script:"))
	if err != nil {
		return fail(err)
	}
	tl, _, err := scenario.BuildScript(script, seed)
	if err != nil {
		return fail(err)
	}
	pace, err := spec.pace()
	if err != nil {
		return fail(err)
	}
	// For a script tenant Cycles counts whole timeline passes — the
	// script defines its own length in intervals — not single intervals:
	// default 1, -1 repeats until the fleet stops.
	cycles := spec.Cycles
	switch {
	case cycles == 0:
		cycles = 1
	case cycles < 0:
		cycles = int(^uint(0) >> 1)
	}
	store := collector.NewStore(tl.Base.Net.NumPairs())
	feed := Feed{
		Store: store,
		Collect: func(ctx context.Context) error {
			return tl.Replay(ctx, store, cycles, pace)
		},
	}
	t, err := f.add(spec, tl.Base, feed, adopt)
	if err != nil {
		return nil, err
	}
	t.tl = tl
	return t, nil
}

// AddFeed declares a tenant over a caller-supplied measurement feed —
// tmserve's live UDP/TCP deployment mode. The spec's Source/Seed/
// Cycles/Pace fields are documentation only here; the feed rules.
func (f *Fleet) AddFeed(spec TenantSpec, sc *netsim.Scenario, feed Feed) (*Tenant, error) {
	if feed.Store == nil || feed.Collect == nil {
		return nil, fmt.Errorf("fleet: tenant %q: feed needs both a store and a collect function", spec.Name)
	}
	return f.add(spec, sc, feed, false)
}

func (f *Fleet) add(spec TenantSpec, sc *netsim.Scenario, feed Feed, adopt bool) (*Tenant, error) {
	if f.started.Load() && !adopt {
		return nil, fmt.Errorf("fleet: Add after Run (Adopt joins tenants to a running fleet)")
	}
	if !nameRe.MatchString(spec.Name) {
		return nil, fmt.Errorf("fleet: tenant name %q is not a [A-Za-z0-9._-]+ identifier", spec.Name)
	}
	if _, err := spec.sloMaxCheckpointAge(); err != nil {
		return nil, fmt.Errorf("fleet: tenant %q: %w", spec.Name, err)
	}
	if spec.SLOMaxDrift < 0 || spec.SLOMaxResolveMRE < 0 {
		return nil, fmt.Errorf("fleet: tenant %q: negative SLO threshold", spec.Name)
	}
	cfg, err := streamConfig(spec)
	if err != nil {
		return nil, err
	}
	cfg.ResolveDispatch = f.kickScheduler
	cfg.Solve = f.solve
	if f.metrics != nil {
		cfg.OnResolve = f.metrics.onResolve(spec.Name)
	}
	eng, err := stream.New(sc.Rt, cfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %q: %w", spec.Name, err)
	}
	// Echo the engine's effective method back into the spec, so Status
	// (and hosts printing banners) report "entropy", not "".
	spec.Method = string(cfg.Method)
	t := &Tenant{spec: spec, sc: sc, eng: eng, feed: feed, state: StateIdle,
		canon: f.solve.Canonical(sc.Rt.R)}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.byName[spec.Name] != nil {
		return nil, fmt.Errorf("fleet: duplicate tenant name %q", spec.Name)
	}
	f.tenants = append(f.tenants, t)
	f.byName[spec.Name] = t
	return t, nil
}

// streamConfig maps a spec onto stream.Config, translating the spec's
// "-1 means off" sentinels (0 is taken by "use the default").
func streamConfig(spec TenantSpec) (stream.Config, error) {
	cfg := stream.Config{
		Window:          6,
		MinCoverage:     0.9,
		ResolveEvery:    3,
		ResolveMaxEvery: spec.ResolveMaxEvery,
		DriftThreshold:  spec.DriftThreshold,
		Method:          stream.MethodEntropy,
		Reg:             spec.Reg,
		SigmaInv2:       spec.SigmaInv2,
		ResolveMaxIter:  spec.ResolveMaxIter,
		ResolveTol:      spec.ResolveTol,
		AnomalyFactor:   spec.AnomalyFactor,
		AnomalyWindow:   spec.AnomalyWindow,
		AnomalyMinDrift: spec.AnomalyMinDrift,
		// Each tenant's engine is its store's only consumer, so consumed
		// intervals are discarded — endless tenants hold O(window) state.
		PruneConsumed: true,
	}
	switch {
	case spec.Window > 0:
		cfg.Window = spec.Window
	case spec.Window == -1:
		cfg.Window = 0 // expanding
	case spec.Window < -1:
		return cfg, fmt.Errorf("fleet: tenant %q: window %d out of range (>= -1)", spec.Name, spec.Window)
	}
	switch {
	case spec.ResolveEvery > 0:
		cfg.ResolveEvery = spec.ResolveEvery
	case spec.ResolveEvery == -1:
		cfg.ResolveEvery = 0 // incremental gravity only
	case spec.ResolveEvery < -1:
		return cfg, fmt.Errorf("fleet: tenant %q: resolve_every %d out of range (>= -1)", spec.Name, spec.ResolveEvery)
	}
	if spec.MinCoverage > 0 {
		cfg.MinCoverage = spec.MinCoverage
	}
	if spec.Method != "" {
		cfg.Method = stream.Method(spec.Method)
	}
	return cfg, nil
}

// buildSource resolves a spec's Source string into a scenario and the
// demand series its replay feeds.
func buildSource(spec TenantSpec) (*netsim.Scenario, *traffic.Series, error) {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	src := spec.Source
	if src == "" {
		src = "europe"
	}
	switch {
	case src == "europe":
		sc, err := netsim.BuildEurope(seed)
		if err != nil {
			return nil, nil, err
		}
		return sc, sc.Series, nil
	case src == "america":
		sc, err := netsim.BuildAmerica(seed)
		if err != nil {
			return nil, nil, err
		}
		return sc, sc.Series, nil
	case strings.HasPrefix(src, "scenario:"):
		in, err := scenario.Build(strings.TrimPrefix(src, "scenario:"), seed)
		if err != nil {
			return nil, nil, err
		}
		// The busy evaluation window, so the streaming window mean
		// converges to the instance's ground truth.
		return in.Sc, in.BusySeries(), nil
	case strings.HasPrefix(src, "file:"):
		sc, err := netsim.LoadFile(strings.TrimPrefix(src, "file:"))
		if err != nil {
			return nil, nil, err
		}
		return sc, sc.Series, nil
	}
	return nil, nil, fmt.Errorf("source %q is not europe, america, scenario:<spec>, scenario:script:<file> or file:<path>", src)
}

// Tenants returns the tenants in declaration order.
func (f *Fleet) Tenants() []*Tenant {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Tenant, len(f.tenants))
	copy(out, f.tenants)
	return out
}

// Tenant looks a tenant up by name.
func (f *Fleet) Tenant(name string) (*Tenant, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.byName[name]
	return t, ok
}

// checkpointPath resolves a tenant's checkpoint file; "" disables it.
func (f *Fleet) checkpointPath(t *Tenant) string {
	if t.spec.Checkpoint != "" {
		return t.spec.Checkpoint
	}
	if f.opts.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(f.opts.CheckpointDir, t.spec.Name+".ckpt")
}

// RestoreAll restores every checkpointed tenant from its file, before
// Run: a missing file is a fresh start, an unreadable or mismatched one
// is an operator problem and fails loudly (naming the tenant) rather
// than silently discarding state. Returns how many tenants restored.
func (f *Fleet) RestoreAll() (int, error) {
	restored := 0
	for _, t := range f.Tenants() {
		path := f.checkpointPath(t)
		if path == "" {
			continue
		}
		cp, err := stream.LoadCheckpoint(path)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return restored, fmt.Errorf("fleet: tenant %q: %w", t.spec.Name, err)
		}
		// Tenant.Restore replays a script tenant's swaps up to the
		// checkpoint's topology epoch, installs the checkpoint and arms
		// the remaining scripted swaps.
		if err := t.Restore(cp); err != nil {
			return restored, fmt.Errorf("fleet: tenant %q: restore %s: %w", t.spec.Name, path, err)
		}
		if snap, ok := t.eng.Latest(); ok {
			f.opts.Logf("tenant %s: restored checkpoint %s (version %d, interval %d) — serving it now",
				t.spec.Name, path, snap.Version, snap.Interval)
		}
		restored++
	}
	return restored, nil
}

// SaveAll checkpoints every checkpointed tenant now. Safe while the
// fleet runs; errors are joined, one per failing tenant.
func (f *Fleet) SaveAll() error {
	var errs []error
	for _, t := range f.Tenants() {
		path := f.checkpointPath(t)
		if path == "" {
			continue
		}
		if err := stream.SaveCheckpoint(path, t.eng.Checkpoint()); err != nil {
			errs = append(errs, fmt.Errorf("fleet: tenant %q: %w", t.spec.Name, err))
			continue
		}
		t.noteSaved()
	}
	return errors.Join(errs...)
}

// Run starts every tenant — ingestion engine, collection feed and (with
// checkpointing) a persist loop — plus the shared re-solve scheduler,
// and blocks until ctx is done. A tenant failure marks that tenant
// failed and never takes its neighbors down; only when EVERY tenant has
// failed does Run stop early and return an error, so a one-tenant fleet
// (tmserve's single-tenant mode) exits on failure exactly as the
// pre-fleet daemon did instead of serving nothing forever. After the
// engines have stopped, a final SaveAll persists every tenant's last
// state. Run may be called at most once.
func (f *Fleet) Run(ctx context.Context) error {
	if !f.started.CompareAndSwap(false, true) {
		return fmt.Errorf("fleet: Run called more than once")
	}
	tenants := f.Tenants()
	if len(tenants) == 0 && !f.opts.AllowEmpty {
		return fmt.Errorf("fleet: Run with no tenants")
	}
	if f.opts.CheckpointDir != "" {
		if err := os.MkdirAll(f.opts.CheckpointDir, 0o755); err != nil {
			return fmt.Errorf("fleet: checkpoint dir: %w", err)
		}
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// allFailed closes when the last healthy tenant fails — the one
	// tenant-level error that must surface to the host, because a fleet
	// with nothing left to estimate would otherwise serve stale
	// snapshots forever while looking alive. The count is kept under
	// runMu, not a snapshot of len(tenants), so tenants adopted
	// mid-flight extend the ledger instead of corrupting it.
	allFailed := make(chan struct{})
	f.runMu.Lock()
	f.runCtx = runCtx
	f.allFailed = allFailed
	f.ntotal = len(tenants)
	f.wg.Add(1)
	f.runMu.Unlock()
	go func() {
		defer f.wg.Done()
		f.schedule(runCtx)
	}()

	for _, t := range tenants {
		if err := f.startTenant(runCtx, t); err != nil {
			f.noteFail(t, err, "timeline")
		}
	}

	var runErr error
	select {
	case <-ctx.Done():
		runErr = ctx.Err()
	case <-allFailed:
		var parts []string
		for _, t := range f.Tenants() {
			parts = append(parts, t.spec.Name+": "+t.Status().Error)
		}
		runErr = fmt.Errorf("fleet: every tenant has failed (%s)", strings.Join(parts, "; "))
	}
	cancel()
	// Close the adoption window before waiting: once runCtx is cleared
	// no new goroutine joins the WaitGroup, so Wait cannot race an Add.
	f.runMu.Lock()
	f.runCtx = nil
	f.runMu.Unlock()
	f.wg.Wait()
	f.quiesce()
	// Final persistence after every engine and solve has stopped, so the
	// files hold the very last published state.
	if err := f.SaveAll(); err != nil {
		f.opts.Logf("final checkpoint save: %v", err)
	}
	return runErr
}

// noteFail records a tenant failure exactly once and closes allFailed
// when no healthy tenant is left.
func (f *Fleet) noteFail(t *Tenant, err error, what string) {
	if !t.fail(fmt.Errorf("%s: %w", what, err)) {
		return
	}
	f.opts.Logf("tenant %s: %s failed: %v", t.spec.Name, what, err)
	f.runMu.Lock()
	f.nfailed++
	if f.nfailed == f.ntotal && f.allFailed != nil {
		close(f.allFailed)
	}
	f.runMu.Unlock()
}

// startTenant launches one tenant's goroutines — ingestion engine,
// collection feed and (when checkpointed) the persist loop — after
// arming a script tenant's scripted swaps. An arming error is returned
// (not noted), so Run can count it against the all-failed ledger while
// Adopt refuses the tenant outright.
func (f *Fleet) startTenant(ctx context.Context, t *Tenant) error {
	if err := t.armSwaps(); err != nil {
		return err
	}
	t.setState(StateRunning)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		if err := t.eng.Run(ctx, t.feed.Store); err != nil && !errors.Is(err, context.Canceled) {
			f.noteFail(t, err, "engine")
		}
	}()
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		if err := t.feed.Collect(ctx); err != nil {
			if !errors.Is(err, context.Canceled) {
				f.noteFail(t, err, "collect")
			}
			return
		}
		t.setState(StateServing)
		f.opts.Logf("tenant %s: collection finished; serving last snapshot", t.spec.Name)
	}()
	if path := f.checkpointPath(t); path != "" {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			f.persistLoop(ctx, t, path)
		}()
	}
	return nil
}

// Adopt joins a tenant to the fleet after declaration time — the
// cluster promotion path: a node materializes the tenant from its
// spec, restores the shipped (or locally synced) checkpoint warm, and
// starts serving it immediately when the fleet is already running. A
// nil checkpoint adopts cold. Before Run, Adopt is Add + Restore and
// Run starts the tenant with everything else; after shutdown it fails.
func (f *Fleet) Adopt(spec TenantSpec, cp *stream.Checkpoint) (*Tenant, error) {
	if _, hosted := f.Tenant(spec.Name); hosted {
		return nil, fmt.Errorf("fleet: %w: %q", ErrAlreadyHosted, spec.Name)
	}
	t, err := f.addSpec(spec, true)
	if err != nil {
		return nil, err
	}
	if cp != nil {
		if err := t.Restore(*cp); err != nil {
			f.remove(t)
			return nil, fmt.Errorf("fleet: tenant %q: restore handoff checkpoint: %w", spec.Name, err)
		}
		if snap, ok := t.eng.Latest(); ok {
			f.opts.Logf("tenant %s: adopted checkpoint (version %d, interval %d, topology epoch %d) — serving it now",
				spec.Name, snap.Version, snap.Interval, cp.TopologyEpoch)
		}
	}
	f.runMu.Lock()
	defer f.runMu.Unlock()
	if f.runCtx == nil {
		if f.started.Load() {
			f.remove(t)
			return nil, fmt.Errorf("fleet: tenant %q: Adopt on a stopped fleet", spec.Name)
		}
		return t, nil // Run has not started yet; it will start the tenant
	}
	f.ntotal++
	if err := f.startTenant(f.runCtx, t); err != nil {
		f.ntotal--
		f.remove(t)
		return nil, fmt.Errorf("fleet: tenant %q: %w", spec.Name, err)
	}
	return t, nil
}

// remove unregisters a tenant whose adoption failed before it started.
func (f *Fleet) remove(t *Tenant) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.byName, t.spec.Name)
	for i, o := range f.tenants {
		if o == t {
			f.tenants = append(f.tenants[:i], f.tenants[i+1:]...)
			break
		}
	}
}

// persistLoop checkpoints one tenant after every publication (long-poll
// coalesces bursts into one save per turn). A failed save is reported
// and retried on the next publication — persistence trouble must not
// take the estimation service down.
func (f *Fleet) persistLoop(ctx context.Context, t *Tenant, path string) {
	var seen uint64
	save := func() {
		if err := stream.SaveCheckpoint(path, t.eng.Checkpoint()); err != nil {
			f.opts.Logf("tenant %s: checkpoint save: %v", t.spec.Name, err)
			return
		}
		t.noteSaved()
	}
	if snap, ok := t.eng.Latest(); ok {
		// Persist what is already published before waiting: a restored
		// or fast tenant may be quiescent before this loop starts.
		seen = snap.Version
		save()
	}
	for {
		snap, err := t.eng.WaitVersion(ctx, seen+1)
		if err != nil {
			return // shutting down; Run does the final SaveAll
		}
		seen = snap.Version
		save()
	}
}

// kickScheduler is every engine's ResolveDispatch hook: a non-blocking
// coalesced wake-up. It runs on the engines' ingestion goroutines.
func (f *Fleet) kickScheduler() {
	select {
	case f.kick <- struct{}{}:
	default:
	}
}

// schedule is the fleet's re-solve dispatcher: it sleeps until an
// engine parks work, then drains everything parked.
func (f *Fleet) schedule(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-f.kick:
			f.drain(ctx)
		}
	}
}

// claimNext picks the next tenant with a parked re-solve, skipping
// tenants that are already solving — the per-tenant in-flight cap of
// one that keeps a big drifting tenant from occupying more than one
// pool slot. When the claiming slot just solved a tenant, prefer is
// that tenant's canonical routing matrix and a pending tenant sharing
// it is claimed first, so same-topology solves run back-to-back over
// one hot set of cached matrix artifacts (a single routing-matrix
// traversal/column-support build per wave instead of interleaving
// topologies); otherwise the claim is round-robin from where the
// previous one left off, preserving fairness across topology groups.
func (f *Fleet) claimNext(prefer *sparse.Matrix) *Tenant {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.tenants)
	claim := func(t *Tenant) bool {
		if f.inflight[t.spec.Name] || !t.eng.ResolvePending() {
			return false
		}
		f.inflight[t.spec.Name] = true
		return true
	}
	if prefer != nil {
		for i := 0; i < n; i++ {
			t := f.tenants[(f.rr+i)%n]
			if t.canon == prefer && claim(t) {
				return t
			}
		}
	}
	for i := 0; i < n; i++ {
		t := f.tenants[(f.rr+i)%n]
		if claim(t) {
			f.rr = (f.rr + i + 1) % n
			return t
		}
	}
	return nil
}

func (f *Fleet) release(t *Tenant) {
	f.mu.Lock()
	delete(f.inflight, t.spec.Name)
	f.mu.Unlock()
}

// quiesce waits until no solve is in flight (used by Run before the
// final SaveAll; claims made after cancellation consume their parked
// work without solving, so this converges quickly at shutdown).
func (f *Fleet) quiesce() {
	for {
		f.mu.Lock()
		n := len(f.inflight)
		f.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// drain claims parked re-solves and executes them until none are left:
// each claim is handed to a free pool helper when one exists and solved
// on the calling goroutine otherwise, and a helper rejoins the drain
// when its solve finishes — so every pool slot keeps pulling work until
// the fleet is idle again. Each slot remembers the topology it just
// solved and asks claimNext for a same-topology tenant first (see
// claimNext for why).
func (f *Fleet) drain(ctx context.Context) {
	var last *sparse.Matrix
	for ctx.Err() == nil {
		t := f.claimNext(last)
		if t == nil {
			return
		}
		last = t.canon
		solve := func() {
			t.eng.TryResolve(ctx)
			f.release(t)
		}
		if !f.pool.TryGo(func() { solve(); f.drain(ctx) }) {
			solve()
		}
	}
}

// Statuses reports every tenant's Status in declaration order (the
// /tenants payload).
func (f *Fleet) Statuses() []Status {
	tenants := f.Tenants()
	out := make([]Status, len(tenants))
	for i, t := range tenants {
		out[i] = t.Status()
	}
	return out
}

// Healthy reports whether no tenant has failed.
func (f *Fleet) Healthy() bool {
	for _, t := range f.Tenants() {
		if t.Status().State == StateFailed {
			return false
		}
	}
	return true
}
