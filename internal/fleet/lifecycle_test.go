package fleet

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/stream"
)

// TestHandleDelegation: the lifecycle interface view of a tenant is
// the tenant — same snapshots, same metrics, same checkpoint.
func TestHandleDelegation(t *testing.T) {
	f := New(runner.NewPool(1), Options{})
	if _, err := f.Add(TenantSpec{Name: "eu", Source: "europe", Cycles: 3, Pace: "0", Window: 3, ResolveEvery: -1}); err != nil {
		t.Fatal(err)
	}
	hs := f.Handles()
	if len(hs) != 1 || hs[0].Name() != "eu" || hs[0].Spec().Source != "europe" {
		t.Fatalf("Handles: %v", hs)
	}
	h, ok := f.Handle("eu")
	if !ok {
		t.Fatal("Handle(eu) missing")
	}
	if _, ok := f.Handle("ghost"); ok {
		t.Fatal("Handle(ghost) exists")
	}
	if _, ok := h.Latest(); ok {
		t.Fatal("snapshot before Run")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	wctx, wcancel := context.WithTimeout(ctx, time.Minute)
	defer wcancel()
	snap, err := h.WaitVersion(wctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := h.Latest(); !ok || got.Version < snap.Version {
		t.Fatalf("Latest after WaitVersion: ok=%v v%d", ok, got.Version)
	}
	if v, _, ok := h.Position(); !ok || v < snap.Version {
		t.Fatalf("Position: ok=%v v%d", ok, v)
	}
	if len(h.Metrics()) == 0 {
		t.Fatal("no metric points after three intervals")
	}
	cp, err := h.Checkpoint()
	if err != nil || cp.Snapshot == nil {
		t.Fatalf("Checkpoint: %v (snapshot %v)", err, cp.Snapshot != nil)
	}
	if st := h.Status(); st.Name != "eu" || !st.HaveSnapshot {
		t.Fatalf("Status: %+v", st)
	}
	cancel()
	<-done
}

// TestAdoptLifecycle: Adopt before Run queues the tenant, Adopt on a
// running fleet starts it immediately (warm when a checkpoint is
// shipped), Adopt after shutdown refuses.
func TestAdoptLifecycle(t *testing.T) {
	dir := t.TempDir()
	spec := TenantSpec{Name: "eu", Source: "europe", Cycles: -1, Pace: "5ms", Window: 3, ResolveEvery: -1}

	// Seed a checkpoint to ship: run a twin briefly and save its state.
	seed := New(runner.NewPool(1), Options{CheckpointDir: dir})
	seedTen, err := seed.Add(spec)
	if err != nil {
		t.Fatal(err)
	}
	sctx, scancel := context.WithCancel(context.Background())
	seedDone := make(chan error, 1)
	go func() { seedDone <- seed.Run(sctx) }()
	wctx, wcancel := context.WithTimeout(context.Background(), time.Minute)
	snap, err := seedTen.WaitVersion(wctx, 3)
	wcancel()
	if err != nil {
		t.Fatal(err)
	}
	scancel()
	<-seedDone // shutdown saved <dir>/eu.ckpt
	shipped, err := stream.LoadCheckpoint(filepath.Join(dir, "eu.ckpt"))
	if err != nil {
		t.Fatal(err)
	}

	// Adopt before Run: the tenant is queued and started by Run.
	f := New(runner.NewPool(1), Options{CheckpointDir: t.TempDir(), AllowEmpty: true})
	if _, err := f.Adopt(spec, &shipped); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	ten, _ := f.Tenant("eu")
	deadline := time.Now().Add(time.Minute)
	for {
		if v, _, ok := ten.Position(); ok && v >= snap.Version {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("adopted-before-Run tenant never passed the shipped version %d", snap.Version)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := ten.Status(); !st.Restored {
		t.Fatalf("shipped checkpoint not restored: %+v", st)
	}

	// Adopt on the running fleet: a second tenant joins live, cold.
	us := TenantSpec{Name: "us", Source: "america", Cycles: -1, Pace: "5ms", Window: 3, ResolveEvery: -1}
	adopted, err := f.Adopt(us, nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, _, ok := adopted.Position(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("live-adopted tenant never published")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Duplicate adoption is the sentinel, not a second engine.
	if _, err := f.Adopt(us, nil); !errors.Is(err, ErrAlreadyHosted) {
		t.Fatalf("duplicate adopt: %v", err)
	}
	// A checkpoint that cannot restore rolls the adoption back.
	bad := shipped
	bad.NumPairs++
	if _, err := f.Adopt(TenantSpec{Name: "broken", Source: "europe", Cycles: -1, Pace: "5ms"}, &bad); err == nil {
		t.Fatal("mismatched checkpoint adopted")
	}
	if _, hosted := f.Tenant("broken"); hosted {
		t.Fatal("failed adoption left the tenant behind")
	}

	cancel()
	<-done
	if _, err := f.Adopt(TenantSpec{Name: "late", Source: "europe"}, nil); err == nil {
		t.Fatal("Adopt on a stopped fleet accepted")
	}
}
