package fleet

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/stream"
)

// Lifecycle sentinels, shared by whatever hosts handles (the serving
// layer's adopt endpoint, the cluster runtime): callers classify with
// errors.Is and map them onto their own surface.
var (
	// ErrUnknownTenant: the named tenant is not declared anywhere the
	// callee can see (fleet, cluster config).
	ErrUnknownTenant = errors.New("unknown tenant")
	// ErrAlreadyHosted: an adoption was asked of a node that already
	// runs the tenant — idempotent success for a promotion retry.
	ErrAlreadyHosted = errors.New("tenant already hosted here")
)

// StateUnreachable is the lifecycle state a remotely-owned tenant
// reports when its owning node cannot be reached: not failed (the
// engine may be fine behind a partition), but not observable either.
const StateUnreachable TenantState = "unreachable"

// Handle is the tenant lifecycle surface the serving and cluster
// layers program against: status, snapshot serving (Latest,
// WaitVersion, Metrics, Position) and the checkpoint half of
// persistence — Checkpoint ships the tenant's state out, Restore
// installs shipped state. A locally-owned *Tenant and a remotely-owned
// tenant (internal/cluster's HTTP-backed handle) satisfy it
// identically, which is what makes checkpoint-handoff migration
// possible: the code that syncs, ships and restores state never knows
// which side of the process boundary a tenant lives on. The run half
// of the lifecycle (ingestion, collection, the persist loop) stays
// with the owning runtime — Fleet.Run or Fleet.Adopt locally, the peer
// node's fleet remotely — and moves between owners only through
// Checkpoint/Restore.
type Handle interface {
	// Name returns the tenant's unique name.
	Name() string
	// Spec returns the spec the tenant was declared with.
	Spec() TenantSpec
	// Status reports lifecycle state and snapshot position.
	Status() Status
	// Latest returns the most recent published snapshot, if any.
	Latest() (stream.Snapshot, bool)
	// WaitVersion blocks until a snapshot with Version >= min is
	// published, ctx is done, or the tenant stops.
	WaitVersion(ctx context.Context, min uint64) (stream.Snapshot, error)
	// Metrics returns the estimation-error history.
	Metrics() []stream.MetricPoint
	// Position reports the latest snapshot's version and interval.
	Position() (version uint64, interval int, ok bool)
	// Checkpoint captures the tenant's current engine state — the
	// migration handoff document.
	Checkpoint() (stream.Checkpoint, error)
	// Restore installs a checkpoint: warm-start iterate, topology epoch,
	// metrics history and all. For a local tenant the engine must not
	// have consumed past it; a remote handle ships the checkpoint to the
	// owning node instead.
	Restore(cp stream.Checkpoint) error
}

// Compile-time proof that a locally-owned tenant satisfies the
// lifecycle interface.
var _ Handle = (*Tenant)(nil)

// Latest returns the tenant's most recent published snapshot.
func (t *Tenant) Latest() (stream.Snapshot, bool) { return t.eng.Latest() }

// WaitVersion blocks until the tenant publishes version >= min.
func (t *Tenant) WaitVersion(ctx context.Context, min uint64) (stream.Snapshot, error) {
	return t.eng.WaitVersion(ctx, min)
}

// Metrics returns the tenant's estimation-error history.
func (t *Tenant) Metrics() []stream.MetricPoint { return t.eng.Metrics() }

// Position reports the latest snapshot's version and interval.
func (t *Tenant) Position() (uint64, int, bool) { return t.eng.Position() }

// Checkpoint captures the tenant's current engine state. Safe while
// the tenant runs; never fails locally (the error is for remote
// handles, where the wire can).
func (t *Tenant) Checkpoint() (stream.Checkpoint, error) { return t.eng.Checkpoint(), nil }

// Restore installs a checkpoint on the tenant's engine. A script
// tenant is first moved onto the checkpoint's topology epoch by
// replaying its timeline's routing swaps (each applies immediately at
// interval 0); the remaining scripted swaps are then armed. Used by
// Fleet.RestoreAll at boot and by Fleet.Adopt when a shipped
// checkpoint arrives from a previous owner.
func (t *Tenant) Restore(cp stream.Checkpoint) error {
	if t.tl != nil {
		for ep := t.eng.TopologyEpoch() + 1; ep <= cp.TopologyEpoch; ep++ {
			rt, ok := t.tl.EpochRouting(ep)
			if !ok {
				return fmt.Errorf("checkpoint is at topology epoch %d, the script only has %d",
					cp.TopologyEpoch, len(t.tl.Epochs))
			}
			if err := t.eng.SwapRouting(rt, ep, 0); err != nil {
				return fmt.Errorf("moving onto checkpointed epoch %d: %w", ep, err)
			}
		}
	}
	if err := t.eng.Restore(cp); err != nil {
		return err
	}
	t.mu.Lock()
	t.restored = true
	t.mu.Unlock()
	return t.armSwaps()
}

// Handles returns every tenant as a lifecycle handle, in declaration
// order — the view the serving layer reads through.
func (f *Fleet) Handles() []Handle {
	tenants := f.Tenants()
	out := make([]Handle, len(tenants))
	for i, t := range tenants {
		out[i] = t
	}
	return out
}

// Handle looks a tenant's lifecycle handle up by name.
func (f *Fleet) Handle(name string) (Handle, bool) {
	t, ok := f.Tenant(name)
	if !ok {
		return nil, false
	}
	return t, true
}
