package fleet

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/stream"
)

// scriptFile writes a failure+restore timeline script and returns its
// path: 18 intervals over the default base, one adjacency failing at
// interval 5 and coming back at interval 14.
func scriptFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "failover.json")
	script := `{"format":1,"intervals":18,"events":[
		{"at":5,"fail_link":"Frankfurt-cr1-Brussels-cr1"},
		{"at":14,"restore":"Frankfurt-cr1-Brussels-cr1"}]}`
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScriptTenantCheckpointAcrossSwap is the timeline e2e: a
// scenario:script tenant runs a scripted failure mid-stream, is killed
// after the topology swap with a checkpoint on disk, and a fresh fleet
// restores it onto the post-swap topology — warm iterate intact — and
// finishes the timeline through the scripted restoration.
func TestScriptTenantCheckpointAcrossSwap(t *testing.T) {
	spec := TenantSpec{
		Name: "script-eu", Source: "scenario:script:" + scriptFile(t),
		Cycles: 1, Pace: "20ms", Window: 3, ResolveEvery: 3,
		Method: "entropy", ResolveMaxIter: 2000, ResolveTol: 1e-5,
	}
	ckptDir := t.TempDir()

	f := New(runner.NewPool(0), Options{CheckpointDir: ckptDir})
	ten, err := f.Add(spec)
	if err != nil {
		t.Fatal(err)
	}
	tl := ten.Timeline()
	if tl == nil || len(tl.Epochs) != 3 {
		t.Fatalf("script tenant compiled %v epochs, want 3", tl)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	// Kill mid-timeline: as soon as a re-solve published on the failed
	// topology (epoch 1), stop the fleet. Run's exit writes the
	// checkpoint.
	deadline := time.Now().Add(time.Minute)
	waitTenant(t, ten, "post-swap re-solve", deadline, func(s stream.Snapshot) bool {
		return s.TopologyEpoch >= 1 && s.Resolve != nil && s.ResolveInterval >= 5
	})
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("Run: %v", err)
	}

	cp, err := stream.LoadCheckpoint(filepath.Join(ckptDir, "script-eu.ckpt"))
	if err != nil {
		t.Fatalf("checkpoint not on disk: %v", err)
	}
	if cp.TopologyEpoch < 1 {
		t.Fatalf("checkpoint carries epoch %d, want the post-swap epoch", cp.TopologyEpoch)
	}

	// Fresh fleet, same spec and checkpoint dir: RestoreAll must replay
	// the script's swaps up to the checkpoint epoch before restoring.
	f2 := New(runner.NewPool(0), Options{CheckpointDir: ckptDir})
	ten2, err := f2.Add(spec)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := f2.RestoreAll()
	if err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	if restored != 1 {
		t.Fatalf("restored %d tenants, want 1", restored)
	}
	if got := ten2.Engine().TopologyEpoch(); got != cp.TopologyEpoch {
		t.Fatalf("restored engine on epoch %d, checkpoint says %d", got, cp.TopologyEpoch)
	}
	st := ten2.Status()
	if !st.Restored || st.TopologyEpoch != cp.TopologyEpoch {
		t.Fatalf("status %+v does not report the restored epoch", st)
	}
	snap, have := ten2.Engine().Latest()
	if !have || snap.Resolve == nil {
		t.Fatal("restored tenant serves no re-solved snapshot")
	}

	// Resume: the replay feed re-runs the timeline from interval 0; the
	// engine ignores everything at or below its restored cursor and
	// continues through the scripted restoration to the end.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel2()
	done2 := make(chan error, 1)
	go func() { done2 <- f2.Run(ctx2) }()
	final := waitTenant(t, ten2, "post-restore completion", time.Now().Add(time.Minute), func(s stream.Snapshot) bool {
		return s.Interval == 17 && s.Resolve != nil && s.ResolveInterval == 17
	})
	if final.TopologyEpoch != 2 {
		t.Fatalf("finished on epoch %d, want 2 (restored topology)", final.TopologyEpoch)
	}
	if !final.ResolveWarm {
		t.Fatal("final re-solve was cold; the restored warm iterate was lost")
	}
	cancel2()
	if err := <-done2; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("resumed Run: %v", err)
	}
}
