package fleet

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// TestMetricsRegistrationAndScrape: a fleet built with a registry
// exports the estimation families, the OnResolve hook feeds the
// latency/iteration histograms, and the rendered exposition passes the
// lint gate.
func TestMetricsRegistrationAndScrape(t *testing.T) {
	reg := obs.NewRegistry()
	f := New(runner.NewPool(1), Options{Metrics: reg})
	if _, err := f.Add(TenantSpec{
		Name: "eu", Cycles: 6, Pace: "0", Window: 2, ResolveEvery: 2,
		AnomalyFactor: 4,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	ten, _ := f.Tenant("eu")
	if _, err := ten.WaitVersion(ctx, 6); err != nil {
		t.Fatal(err)
	}

	scrape := func() string {
		var b strings.Builder
		if _, err := reg.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	// Re-solves land asynchronously after the last publication; poll the
	// scrape until the hook-fed counter shows one.
	deadline := time.Now().Add(30 * time.Second)
	var body string
	for {
		body = scrape()
		if strings.Contains(body, `tm_resolves_total{tenant="eu",warm="false"}`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no resolve counted before deadline:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done

	if err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("fleet scrape fails exposition lint: %v", err)
	}
	for _, want := range []string{
		"# TYPE tm_resolve_duration_seconds histogram",
		`tm_resolve_duration_seconds_bucket{tenant="eu",le="+Inf"}`,
		`tm_resolve_iterations_count{tenant="eu"}`,
		"tm_fleet_tenants 1",
		"# TYPE tm_pool_workers gauge",
		`tm_snapshot_version{tenant="eu"}`,
		`tm_window_intervals{tenant="eu"} 2`,
		`tm_window_coverage{tenant="eu"} 1`,
		`tm_drift{tenant="eu"}`,
		`tm_topology_epoch{tenant="eu"} 0`,
		`tm_gravity_mre{tenant="eu"}`,
		`tm_anomaly_active{tenant="eu"} 0`,
		`tm_anomalies_total{tenant="eu"}`,
		`tm_intervals_skipped_total{tenant="eu"} 0`,
		`tm_tenant_degraded{tenant="eu"} 0`,
		"# TYPE tm_checkpoint_age_seconds gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
}

// TestStatusDegradedSLO: crossing an SLO threshold flips the tenant's
// Status to degraded with a named cause; the checkpoint-age SLO only
// fires once a save has happened.
func TestStatusDegradedSLO(t *testing.T) {
	ckptDir := t.TempDir()
	f := New(runner.NewPool(1), Options{CheckpointDir: ckptDir})
	// drifty: the diurnal demand series moves every interval, so any
	// positive drift crosses this absurdly low SLO.
	if _, err := f.Add(TenantSpec{
		Name: "drifty", Cycles: 6, Pace: "0", Window: 1, ResolveEvery: -1,
		SLOMaxDrift: 1e-12,
	}); err != nil {
		t.Fatal(err)
	}
	// stale: every checkpoint save is immediately older than 1ns.
	if _, err := f.Add(TenantSpec{
		Name: "stale", Cycles: 6, Pace: "0", Window: 1, ResolveEvery: -1,
		SLOMaxCheckpointAge: "1ns",
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	wantDegraded := func(name, causeFragment string) {
		t.Helper()
		ten, _ := f.Tenant(name)
		deadline := time.Now().Add(30 * time.Second)
		for {
			st := ten.Status()
			if st.Degraded && strings.Contains(st.DegradedCause, causeFragment) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("tenant %s not degraded on %q: %+v", name, causeFragment, st)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	wantDegraded("drifty", "drift")
	wantDegraded("stale", "checkpoint age")
	cancel()
	<-done

	// Degradation is an operator signal, not a failure: the fleet stays
	// healthy and both tenants keep serving.
	if !f.Healthy() {
		t.Fatal("fleet unhealthy on SLO degradation")
	}
}

// TestValidateTenantsSLO: malformed SLO and anomaly knobs are rejected
// at config-parse time.
func TestValidateTenantsSLO(t *testing.T) {
	for _, bad := range []TenantSpec{
		{Name: "x", SLOMaxDrift: -1},
		{Name: "x", SLOMaxResolveMRE: -0.5},
		{Name: "x", SLOMaxCheckpointAge: "soon"},
		{Name: "x", SLOMaxCheckpointAge: "-5s"},
		{Name: "x", SLOMaxCheckpointAge: "0s"},
		{Name: "x", AnomalyFactor: -2},
		{Name: "x", AnomalyWindow: -1},
		{Name: "x", AnomalyMinDrift: -0.01},
	} {
		if err := ValidateTenants([]TenantSpec{bad}); err == nil {
			t.Errorf("spec %+v accepted, want error", bad)
		}
	}
	ok := TenantSpec{
		Name: "x", SLOMaxDrift: 0.5, SLOMaxResolveMRE: 0.4,
		SLOMaxCheckpointAge: "30s", AnomalyFactor: 4, AnomalyWindow: 8,
		AnomalyMinDrift: 0.05,
	}
	if err := ValidateTenants([]TenantSpec{ok}); err != nil {
		t.Errorf("valid SLO spec rejected: %v", err)
	}
}
