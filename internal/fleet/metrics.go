package fleet

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/stream"
)

// fleetMetrics holds the imperative instruments the engines feed
// through their OnResolve hooks; everything else the fleet exports is
// a scrape-time collector over live state.
type fleetMetrics struct {
	resolveSeconds *obs.Vec // histogram{tenant}
	resolveIters   *obs.Vec // histogram{tenant}
	resolves       *obs.Vec // counter{tenant,warm}
}

// onResolve builds one tenant's OnResolve hook. It runs on solving
// goroutines (pool slots), so it only touches the vecs' own locks.
func (m *fleetMetrics) onResolve(tenant string) func(d time.Duration, iters int, warm bool) {
	return func(d time.Duration, iters int, warm bool) {
		m.resolveSeconds.With(tenant).Observe(d.Seconds())
		m.resolveIters.With(tenant).Observe(float64(iters))
		m.resolves.With(tenant, strconv.FormatBool(warm)).Inc()
	}
}

// registerMetrics declares the fleet's telemetry families on reg
// (called once from New when Options.Metrics is set). Collector
// closures capture the fleet and read live tenant state per scrape, so
// the exporter can never serve stale values and tenants adopted after
// registration appear automatically.
func (f *Fleet) registerMetrics(reg *obs.Registry) {
	f.metrics = &fleetMetrics{
		resolveSeconds: reg.Histogram("tm_resolve_duration_seconds",
			"Wall-clock latency of completed full re-solves.", nil, "tenant"),
		resolveIters: reg.Histogram("tm_resolve_iterations",
			"Solver iterations consumed per completed full re-solve (the quantity warm starts drive down).",
			[]float64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 20000}, "tenant"),
		resolves: reg.Counter("tm_resolves_total",
			"Completed full re-solves by warm-vs-cold start.", "tenant", "warm"),
	}

	// Fleet-wide scheduler state: queue depth and occupancy of the
	// shared re-solve pool.
	reg.GaugeFunc("tm_fleet_tenants", "Tenants hosted by this process.", nil, func(emit obs.Emit) {
		emit(float64(len(f.Tenants())))
	})
	reg.GaugeFunc("tm_fleet_resolves_pending", "Parked re-solves waiting for a pool slot (fleet queue depth).", nil, func(emit obs.Emit) {
		n := 0
		for _, t := range f.Tenants() {
			if t.eng.ResolvePending() {
				n++
			}
		}
		emit(float64(n))
	})
	reg.GaugeFunc("tm_fleet_resolves_inflight", "Re-solves executing on the shared pool right now.", nil, func(emit obs.Emit) {
		f.mu.Lock()
		n := 0
		for _, busy := range f.inflight {
			if busy {
				n++
			}
		}
		f.mu.Unlock()
		emit(float64(n))
	})
	reg.GaugeFunc("tm_pool_workers", "Helper workers in the shared re-solve pool.", nil, func(emit obs.Emit) {
		emit(float64(f.pool.Workers()))
	})

	// Per-tenant estimation state, read off each engine's newest metric
	// point (LastMetric — no matrix copies at scrape time).
	eachMetric := func(emit obs.Emit, field func(t *Tenant, v uint64, lm lastMetric) (float64, bool)) {
		for _, t := range f.Tenants() {
			v, _, ok := t.eng.Position()
			if !ok {
				continue
			}
			lm, ok := t.eng.LastMetric()
			if !ok {
				continue
			}
			if val, ok := field(t, v, lastMetric(lm)); ok {
				emit(val, t.Name())
			}
		}
	}
	perTenantGauges := []struct {
		name, help string
		field      func(t *Tenant, v uint64, lm lastMetric) (float64, bool)
	}{
		{"tm_snapshot_version", "Newest published snapshot version.",
			func(t *Tenant, v uint64, lm lastMetric) (float64, bool) { return float64(v), true }},
		{"tm_interval", "Newest polling interval included in the window.",
			func(t *Tenant, v uint64, lm lastMetric) (float64, bool) { return float64(lm.Interval), true }},
		{"tm_window_intervals", "Intervals aggregated in the sliding window.",
			func(t *Tenant, v uint64, lm lastMetric) (float64, bool) { return float64(lm.Window), true }},
		{"tm_window_coverage", "LSP coverage fraction of the newest consumed interval.",
			func(t *Tenant, v uint64, lm lastMetric) (float64, bool) {
				return float64(lm.Covered) / float64(t.sc.Net.NumPairs()), true
			}},
		{"tm_drift", "Window drift (relative L1 of consecutive window means) at the newest interval.",
			func(t *Tenant, v uint64, lm lastMetric) (float64, bool) { return lm.Drift, true }},
		{"tm_topology_epoch", "Active topology epoch (routing hot-swaps applied so far).",
			func(t *Tenant, v uint64, lm lastMetric) (float64, bool) { return float64(lm.TopologyEpoch), true }},
		{"tm_gravity_mre", "Incremental gravity estimate's error against the window mean (eq. 8).",
			func(t *Tenant, v uint64, lm lastMetric) (float64, bool) { return lm.GravityMRE, true }},
		{"tm_resolve_mre", "Latest full re-solve's error against its window mean.",
			func(t *Tenant, v uint64, lm lastMetric) (float64, bool) { return lm.ResolveMRE, lm.HasResolve }},
		{"tm_anomaly_active", "1 while the drift-anomaly detector flags the tenant, else 0.",
			func(t *Tenant, v uint64, lm lastMetric) (float64, bool) { return boolGauge(lm.AnomalyActive), true }},
	}
	for _, g := range perTenantGauges {
		field := g.field
		reg.GaugeFunc(g.name, g.help, []string{"tenant"}, func(emit obs.Emit) {
			eachMetric(emit, field)
		})
	}
	reg.CounterFunc("tm_anomalies_total", "Drift-anomaly episodes detected (rising edges of tm_anomaly_active).",
		[]string{"tenant"}, func(emit obs.Emit) {
			eachMetric(emit, func(t *Tenant, v uint64, lm lastMetric) (float64, bool) {
				return float64(lm.Anomalies), true
			})
		})
	reg.CounterFunc("tm_intervals_skipped_total", "Polling intervals dropped for insufficient coverage.",
		[]string{"tenant"}, func(emit obs.Emit) {
			eachMetric(emit, func(t *Tenant, v uint64, lm lastMetric) (float64, bool) {
				return float64(lm.Skipped), true
			})
		})

	// SLO and persistence state come off Status/CheckpointAge rather
	// than the metric ring.
	reg.GaugeFunc("tm_checkpoint_age_seconds", "Age of the last successful checkpoint save.",
		[]string{"tenant"}, func(emit obs.Emit) {
			for _, t := range f.Tenants() {
				if age, ok := t.CheckpointAge(); ok {
					emit(age.Seconds(), t.Name())
				}
			}
		})
	reg.GaugeFunc("tm_tenant_degraded", "1 while any of the tenant's SLO thresholds is exceeded, else 0.",
		[]string{"tenant"}, func(emit obs.Emit) {
			for _, t := range f.Tenants() {
				emit(boolGauge(t.Status().Degraded), t.Name())
			}
		})
}

// lastMetric is a local alias so the collector table reads tersely.
type lastMetric = stream.MetricPoint

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
