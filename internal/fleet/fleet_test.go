package fleet

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/runner"
	"repro/internal/stream"
)

func TestParseConfig(t *testing.T) {
	good := `{"format":1,"tenants":[{"name":"eu","source":"europe"},{"name":"us","source":"america","pace":"10ms"}]}`
	cfg, err := ParseConfig([]byte(good))
	if err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if len(cfg.Tenants) != 2 || cfg.Tenants[1].Name != "us" {
		t.Fatalf("parsed %+v", cfg)
	}
	bad := map[string]string{
		"wrong format":    `{"format":2,"tenants":[{"name":"eu"}]}`,
		"no tenants":      `{"format":1,"tenants":[]}`,
		"duplicate name":  `{"format":1,"tenants":[{"name":"eu"},{"name":"eu"}]}`,
		"bad name":        `{"format":1,"tenants":[{"name":"e u"}]}`,
		"empty name":      `{"format":1,"tenants":[{"source":"europe"}]}`,
		"bad pace":        `{"format":1,"tenants":[{"name":"eu","pace":"fast"}]}`,
		"negative cycles": `{"format":1,"tenants":[{"name":"eu","cycles":-2}]}`,
		"unknown field":   `{"format":1,"tenants":[{"name":"eu","wibble":3}]}`,
	}
	for what, doc := range bad {
		if _, err := ParseConfig([]byte(doc)); err == nil {
			t.Errorf("config with %s accepted", what)
		}
	}
}

func TestAddValidation(t *testing.T) {
	f := New(runner.NewPool(1), Options{})
	if _, err := f.Add(TenantSpec{Name: "x", Source: "atlantis"}); err == nil || !strings.Contains(err.Error(), "atlantis") {
		t.Fatalf("unknown source gave %v", err)
	}
	if _, err := f.Add(TenantSpec{Name: "x", Source: "scenario:warp:9"}); err == nil {
		t.Fatal("unknown scenario family accepted")
	}
	if _, err := f.Add(TenantSpec{Name: "x", Method: "psychic"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := f.Add(TenantSpec{Name: "x", Window: -3}); err == nil {
		t.Fatal("window -3 accepted")
	}
	if _, err := f.Add(TenantSpec{Name: "bad name"}); err == nil {
		t.Fatal("unparseable name accepted")
	}
	if _, err := f.AddFeed(TenantSpec{Name: "x"}, nil, Feed{}); err == nil {
		t.Fatal("feed without store/collect accepted")
	}
	if _, err := f.Add(TenantSpec{Name: "ok", Cycles: 2, Pace: "0"}); err != nil {
		t.Fatalf("valid tenant rejected: %v", err)
	}
	if _, err := f.Add(TenantSpec{Name: "ok", Cycles: 2, Pace: "0"}); err == nil {
		t.Fatal("duplicate tenant name accepted at Add")
	}
}

// parkWork drives a dispatch-mode tenant's engine directly (outside
// Fleet.Run) until a re-solve is parked, so scheduler internals can be
// tested white-box.
func parkWork(t *testing.T, ten *Tenant) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- ten.eng.Run(ctx, ten.feed.Store) }()
	if err := ten.feed.Collect(ctx); err != nil {
		t.Fatalf("collect: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !ten.eng.ResolvePending() {
		if time.Now().After(deadline) {
			t.Fatal("no re-solve parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
}

// TestClaimRoundRobinAndCap pins the fairness mechanics: claims rotate
// round-robin across tenants with parked work, a claimed tenant is
// skipped until released (the per-tenant in-flight cap of one), and
// rotation resumes where the previous claim left off.
func TestClaimRoundRobinAndCap(t *testing.T) {
	f := New(runner.NewPool(1), Options{})
	spec := TenantSpec{Cycles: 4, Pace: "0", Window: 2, ResolveEvery: 2}
	var tens []*Tenant
	for _, name := range []string{"a", "b", "c"} {
		s := spec
		s.Name = name
		ten, err := f.Add(s)
		if err != nil {
			t.Fatal(err)
		}
		tens = append(tens, ten)
	}
	for _, ten := range tens {
		parkWork(t, ten)
	}

	if got := f.claimNext(nil); got != tens[0] {
		t.Fatalf("first claim = %v, want tenant a", got.Name())
	}
	if got := f.claimNext(nil); got != tens[1] {
		t.Fatalf("second claim = %v, want tenant b (round-robin)", got.Name())
	}
	// a and b are in flight: the cap must skip them even though their
	// parked work is still pending.
	if got := f.claimNext(nil); got != tens[2] {
		t.Fatalf("third claim = %v, want tenant c", got.Name())
	}
	if got := f.claimNext(nil); got != nil {
		t.Fatalf("all tenants in flight, but claimed %s", got.Name())
	}
	f.release(tens[1])
	if got := f.claimNext(nil); got != tens[1] {
		t.Fatalf("after releasing b, claim = %v, want b", got)
	}
	// Consume a's parked work: released but nothing pending -> skipped.
	if !tens[0].eng.TryResolve(context.Background()) {
		t.Fatal("tenant a had no parked work to consume")
	}
	f.release(tens[0])
	f.release(tens[2])
	if got := f.claimNext(nil); got != tens[2] {
		t.Fatalf("claim = %v, want c (a consumed, b in flight)", got)
	}
}

// TestClaimPrefersSharedTopology pins the same-topology batching: a
// slot that just solved a tenant claims a pending tenant with an equal
// routing matrix before rotating on, and falls back to plain
// round-robin when no same-topology work is pending.
func TestClaimPrefersSharedTopology(t *testing.T) {
	f := New(runner.NewPool(1), Options{})
	spec := TenantSpec{Cycles: 4, Pace: "0", Window: 2, ResolveEvery: 2}
	var tens []*Tenant
	for _, tc := range []struct{ name, source string }{
		{"a", "europe"}, {"b", "america"}, {"c", "europe"},
	} {
		s := spec
		s.Name = tc.name
		s.Source = tc.source
		ten, err := f.Add(s)
		if err != nil {
			t.Fatal(err)
		}
		tens = append(tens, ten)
	}
	if tens[0].canon != tens[2].canon {
		t.Fatal("tenants a and c share a topology but got distinct canonical matrices")
	}
	if tens[0].canon == tens[1].canon {
		t.Fatal("tenants a and b have different topologies but share a canonical matrix")
	}
	for _, ten := range tens {
		parkWork(t, ten)
	}

	first := f.claimNext(nil)
	if first != tens[0] {
		t.Fatalf("first claim = %v, want tenant a", first.Name())
	}
	// Round-robin alone would give b next; the topology preference must
	// jump to c, the other europe tenant.
	if got := f.claimNext(first.canon); got != tens[2] {
		t.Fatalf("same-topology claim = %v, want tenant c", got.Name())
	}
	// No europe work is pending anymore: fall back to round-robin (b).
	if got := f.claimNext(first.canon); got != tens[1] {
		t.Fatalf("fallback claim = %v, want tenant b", got.Name())
	}
}

// waitTenant polls until the tenant's engine has published a snapshot
// satisfying ok, failing the test at the deadline.
func waitTenant(t *testing.T, ten *Tenant, what string, deadline time.Time, ok func(stream.Snapshot) bool) stream.Snapshot {
	t.Helper()
	for {
		if snap, have := ten.Engine().Latest(); have && ok(snap) {
			return snap
		}
		if time.Now().After(deadline) {
			st := ten.Status()
			t.Fatalf("tenant %s: still waiting for %s (state %s, err %q)", ten.Name(), what, st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// eightTenantSpecs is the acceptance-scale fleet: mixed sizes from the
// 12-PoP backbone to a 100-PoP scaled instance, every re-solve method,
// and every source kind (regions, scenario families, a tmgen file).
func eightTenantSpecs(t *testing.T) []TenantSpec {
	t.Helper()
	// A tmgen-equivalent scenario file exercises the file: source.
	f := New(runner.NewPool(1), Options{})
	ten, err := f.Add(TenantSpec{Name: "seed", Source: "europe", Cycles: 1, Pace: "0"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "europe.json")
	if err := ten.Scenario().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	small := func(name, source, method string) TenantSpec {
		return TenantSpec{
			Name: name, Source: source, Method: method,
			Cycles: 6, Pace: "0", Window: 3, ResolveEvery: 3,
			ResolveMaxIter: 4000, ResolveTol: 1e-5,
		}
	}
	specs := []TenantSpec{
		small("eu-entropy", "europe", "entropy"),
		small("eu-vardi", "europe", "vardi"),
		small("eu-fanout", "europe", "fanout"),
		small("us-bayes", "america", "bayes"),
		small("lab-noisy", "scenario:noisy:europe:0.05", "entropy"),
		small("lab-ecmp", "scenario:ecmp:europe", "entropy"),
		small("file-eu", "file:"+path, "entropy"),
		// The big one: a 100-PoP generated backbone (9900 demands) doing
		// one bounded entropy re-solve on the shared pool.
		{
			Name: "lab-100", Source: "scenario:scaled:100",
			Cycles: 6, Pace: "0", Window: 3, ResolveEvery: 6,
			Method: "entropy", ResolveMaxIter: 300, ResolveTol: 1e-3,
		},
	}
	return specs
}

// TestFleetEightTenants is the PR's acceptance demo: a single fleet
// serves 8 concurrent tenants of mixed sizes (including a scaled:100
// instance) on one shared runner pool; every tenant finishes its
// collection, publishes a full re-solve, keeps its snapshots isolated
// from other tenants' (and from its readers'), and the whole fleet
// restarts from per-tenant checkpoint files under one directory with
// every tenant serving its restored snapshot immediately.
func TestFleetEightTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant acceptance run is slow; skipped in -short")
	}
	specs := eightTenantSpecs(t)
	ckptDir := t.TempDir()

	f := New(runner.NewPool(0), Options{CheckpointDir: ckptDir})
	for _, s := range specs {
		if _, err := f.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	deadline := time.Now().Add(3 * time.Minute)
	finals := make(map[string]stream.Snapshot, len(specs))
	for _, ten := range f.Tenants() {
		want := ten.Spec().Cycles
		// Quiescence, not just progress: once the re-solve of the final
		// window has published, the tenant has nothing left in flight,
		// so the snapshots recorded here are stable until shutdown.
		snap := waitTenant(t, ten, "final window + re-solve", deadline, func(s stream.Snapshot) bool {
			return s.Interval == want-1 && s.Resolve != nil && s.ResolveInterval == want-1
		})
		if snap.ResolveMethod != stream.Method(ten.Spec().Method) {
			t.Fatalf("tenant %s solved with %q, want %q", ten.Name(), snap.ResolveMethod, ten.Spec().Method)
		}
		if len(snap.Resolve) != ten.Scenario().Net.NumPairs() {
			t.Fatalf("tenant %s re-solve has %d demands, want %d",
				ten.Name(), len(snap.Resolve), ten.Scenario().Net.NumPairs())
		}
		finals[ten.Name()] = snap
	}

	// Snapshot isolation: trash every vector of one tenant's returned
	// snapshot; neither its own next read nor any other tenant's may
	// move. (Engines share snapshot vectors across versions internally,
	// so this is a real aliasing hazard, not a formality.)
	victim, _ := f.Tenant("eu-entropy")
	mut, _ := victim.Engine().Latest()
	for _, v := range [][]float64{mut.Gravity, mut.Mean, mut.Fanouts, mut.Resolve} {
		for i := range v {
			v[i] = -1e18
		}
	}
	for name, want := range finals {
		ten, _ := f.Tenant(name)
		got, _ := ten.Engine().Latest()
		for p := range want.Resolve {
			if got.Resolve[p] != want.Resolve[p] || got.Mean[p] != want.Mean[p] {
				t.Fatalf("tenant %s snapshot changed under another reader's mutation (demand %d)", name, p)
			}
		}
	}

	// All collections have finished (final interval reached), so every
	// tenant must be serving; /healthz-level state must show no failure.
	for _, st := range f.Statuses() {
		if st.State != StateServing {
			t.Fatalf("tenant %s in state %s after collection end (err %q)", st.Name, st.State, st.Error)
		}
		if !st.HaveSnapshot {
			t.Fatalf("tenant %s serving without a snapshot", st.Name)
		}
	}
	if !f.Healthy() {
		t.Fatal("fleet unhealthy with all tenants serving")
	}

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}

	// Every tenant must have left a checkpoint file behind.
	for _, s := range specs {
		if _, err := os.Stat(filepath.Join(ckptDir, s.Name+".ckpt")); err != nil {
			t.Fatalf("tenant %s left no checkpoint: %v", s.Name, err)
		}
	}

	// Fleet restart: same specs, same checkpoint dir, paced so slowly
	// that nothing new can be consumed — every tenant must serve its
	// restored snapshot immediately, before Run even starts.
	f2 := New(runner.NewPool(0), Options{CheckpointDir: ckptDir})
	for _, s := range specs {
		s.Pace = "1h"
		if _, err := f2.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := f2.RestoreAll()
	if err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	if restored != len(specs) {
		t.Fatalf("restored %d of %d tenants", restored, len(specs))
	}
	for name, want := range finals {
		ten, ok := f2.Tenant(name)
		if !ok {
			t.Fatalf("restored fleet lost tenant %s", name)
		}
		got, have := ten.Engine().Latest()
		if !have {
			t.Fatalf("tenant %s dark after restore", name)
		}
		if got.Version < want.Version || got.Interval != want.Interval {
			t.Fatalf("tenant %s restored to version %d interval %d, want >= %d / %d",
				name, got.Version, got.Interval, want.Version, want.Interval)
		}
		if got.Resolve == nil || got.ResolveInterval < want.ResolveInterval {
			t.Fatalf("tenant %s lost its re-solve across the restart", name)
		}
		for p := range want.Mean {
			if got.Mean[p] != want.Mean[p] {
				t.Fatalf("tenant %s restored mean differs at demand %d", name, p)
			}
		}
		if !ten.Status().Restored {
			t.Fatalf("tenant %s status does not report the restore", name)
		}
	}
}

// TestSharedPoolSerialDrain pins the saturated-pool path: with a pool
// of one worker TryGo never hands work off, so every re-solve runs
// inline on the claiming goroutine — and even then, every tenant's
// re-solves all complete (liveness under round-robin, no starvation).
func TestSharedPoolSerialDrain(t *testing.T) {
	f := New(runner.NewPool(1), Options{})
	const cycles = 5
	for _, name := range []string{"a", "b", "c", "d"} {
		if _, err := f.Add(TenantSpec{
			Name: name, Cycles: cycles, Pace: "0",
			Window: 2, ResolveEvery: 1, ResolveMaxIter: 2000, ResolveTol: 1e-4,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	deadline := time.Now().Add(time.Minute)
	for _, ten := range f.Tenants() {
		waitTenant(t, ten, "a re-solve on the serial pool", deadline, func(s stream.Snapshot) bool {
			return s.Interval == cycles-1 && s.Resolve != nil
		})
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
}

// TestRunLifecycle covers the aggregate lifecycle edges: Run without
// tenants fails, Add after Run fails, Run twice fails, and a tenant
// whose collection errors is marked failed without taking the fleet
// (or its neighbors) down.
func TestRunLifecycle(t *testing.T) {
	if _, err := New(runner.NewPool(1), Options{}).Add(TenantSpec{Name: "x", Cycles: -2}); err == nil {
		t.Fatal("cycles -2 accepted")
	}

	f := New(runner.NewPool(2), Options{})
	if err := f.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "no tenants") {
		t.Fatalf("Run with no tenants gave %v", err)
	}

	f = New(runner.NewPool(2), Options{})
	good, err := f.Add(TenantSpec{Name: "good", Cycles: 3, Pace: "0", ResolveEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	broken, err := f.AddFeed(TenantSpec{Name: "broken"}, good.Scenario(), Feed{
		Store:   collector.NewStore(good.Scenario().Net.NumPairs()),
		Collect: func(ctx context.Context) error { return errors.New("feed exploded") },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	deadline := time.Now().Add(time.Minute)
	waitTenant(t, good, "snapshots despite a failed neighbor", deadline, func(s stream.Snapshot) bool {
		return s.Interval == 2
	})
	for broken.Status().State != StateFailed {
		if time.Now().After(deadline) {
			t.Fatal("broken tenant never marked failed")
		}
		time.Sleep(time.Millisecond)
	}
	if st := broken.Status(); !strings.Contains(st.Error, "feed exploded") {
		t.Fatalf("failed tenant error %q does not carry the cause", st.Error)
	}
	if f.Healthy() {
		t.Fatal("fleet healthy with a failed tenant")
	}
	if _, err := f.Add(TenantSpec{Name: "late"}); err == nil {
		t.Fatal("Add after Run accepted")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
	if err := f.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Fatalf("second Run gave %v", err)
	}
}

// TestRestoreAllRejectsCorruptCheckpoint: a checkpoint that exists but
// cannot be read is an operator problem and must fail loudly, naming
// the tenant, instead of silently starting fresh.
func TestRestoreAllRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "eu.ckpt"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := New(runner.NewPool(1), Options{CheckpointDir: dir})
	if _, err := f.Add(TenantSpec{Name: "eu", Cycles: 2, Pace: "0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RestoreAll(); err == nil || !strings.Contains(err.Error(), `"eu"`) {
		t.Fatalf("corrupt checkpoint gave %v, want an error naming the tenant", err)
	}
}

// TestRunExitsWhenAllTenantsFail pins the fleet-wide failure contract:
// one tenant failing never stops the fleet (TestRunLifecycle), but when
// EVERY tenant has failed Run returns an error carrying the causes —
// which is what makes a one-tenant fleet (tmserve's single-tenant mode)
// exit on failure like the pre-fleet daemon instead of serving nothing
// forever.
func TestRunExitsWhenAllTenantsFail(t *testing.T) {
	f := New(runner.NewPool(1), Options{})
	seed, err := f.Add(TenantSpec{Name: "seed", Cycles: 1, Pace: "0"})
	if err != nil {
		t.Fatal(err)
	}
	sc := seed.Scenario()
	for _, name := range []string{"a", "b"} {
		name := name
		if _, err := f.AddFeed(TenantSpec{Name: name}, sc, Feed{
			Store:   collector.NewStore(sc.Net.NumPairs()),
			Collect: func(ctx context.Context) error { return errors.New(name + " feed down") },
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Tenant "seed" is healthy, so Run must NOT exit on its own...
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	deadline := time.Now().Add(30 * time.Second)
	waitTenant(t, seed, "snapshots with both neighbors down", deadline, func(s stream.Snapshot) bool {
		return s.Interval == 0
	})
	select {
	case err := <-done:
		t.Fatalf("Run exited (%v) with a healthy tenant left", err)
	default:
	}
	cancel()
	<-done

	// ...but with every tenant failing, Run exits by itself, naming them.
	f2 := New(runner.NewPool(1), Options{})
	if _, err := f2.AddFeed(TenantSpec{Name: "only"}, sc, Feed{
		Store:   collector.NewStore(sc.Net.NumPairs()),
		Collect: func(ctx context.Context) error { return errors.New("socket melted") },
	}); err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- f2.Run(context.Background()) }()
	select {
	case err := <-runDone:
		if err == nil || !strings.Contains(err.Error(), "every tenant has failed") || !strings.Contains(err.Error(), "socket melted") {
			t.Fatalf("all-failed Run returned %v, want the fleet-wide failure with its cause", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not exit with every tenant failed")
	}
}
