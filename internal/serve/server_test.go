package serve

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/fleet"
	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/runner"
	"repro/internal/stream"
)

// testFleet builds a one-tenant fleet around an idle feed, the same
// shape cmd/tmserve's handler tests use.
func testFleet(t *testing.T) *fleet.Fleet {
	t.Helper()
	sc, err := netsim.BuildEurope(1)
	if err != nil {
		t.Fatal(err)
	}
	f := fleet.New(runner.NewPool(1), fleet.Options{})
	if _, err := f.AddFeed(fleet.TenantSpec{Name: "default"}, sc, fleet.Feed{
		Store:   collector.NewStore(sc.Net.NumPairs()),
		Collect: func(context.Context) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

// testServer builds a Server over an idle fleet and swaps the tenant's
// hub for one over a hand-driven fake source, so tests control exactly
// what is published. Returns the server, the source, and the handler.
func testServer(t *testing.T, runCtx context.Context, opts Options) (*Server, *fakeSource, http.Handler) {
	t.Helper()
	opts.Single = true
	s := New(runCtx, testFleet(t), opts)
	src := newFakeSource()
	max := opts.MaxWaiters
	h := NewHub(src, HubConfig{
		MaxWaiters:       max,
		CacheVersions:    opts.CacheVersions,
		DeltaRatio:       opts.DeltaRatio,
		SubscriberBuffer: opts.SubscriberBuffer,
	})
	s.hubs["default"] = h
	go h.Run(runCtx)
	return s, src, s.Handler()
}

// serveSnap is a snapshot big enough that one-coordinate drifts beat
// the delta size ratio.
func serveSnap(version uint64) stream.Snapshot {
	v := linalg.NewVector(300)
	for i := range v {
		v[i] = float64(i) + 0.5
	}
	v[0] += float64(version)
	return stream.Snapshot{
		Version: version, Interval: int(version), Window: 3,
		Gravity: v, Mean: v.Clone(), Fanouts: v.Clone(),
		Time: time.Unix(1700000000+int64(version), 0).UTC(),
	}
}

func get(t *testing.T, handler http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	return rec
}

// TestServerLegacyByteCompat: the legacy routes serve exactly the bytes
// the pre-cache daemon's json.Encoder wrote, now with the uniform
// serving headers.
func TestServerLegacyByteCompat(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, src, handler := testServer(t, ctx, Options{})
	snap := serveSnap(3)
	src.Publish(snap)

	want, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	for _, path := range []string{"/snapshot", "/t/default/snapshot"} {
		rec := get(t, handler, path, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: %d", path, rec.Code)
		}
		if rec.Body.String() != string(want) {
			t.Fatalf("GET %s: body differs from json.Encoder output", path)
		}
		h := rec.Header()
		if h.Get("Content-Type") != "application/json" ||
			h.Get("Cache-Control") != "no-cache" ||
			h.Get("X-Snapshot-Version") != "3" {
			t.Fatalf("GET %s: headers %v", path, h)
		}
		if h.Get("Content-Encoding") != "" {
			t.Fatalf("GET %s: legacy route negotiated an encoding", path)
		}
	}
	// min_version long-poll satisfied from cache, same bytes.
	rec := get(t, handler, "/snapshot?min_version=3", nil)
	if rec.Code != http.StatusOK || rec.Body.String() != string(want) {
		t.Fatalf("long-poll fast path: %d", rec.Code)
	}
	// Legacy error envelope is the flat string.
	rec = get(t, handler, "/t/nosuch/snapshot", nil)
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || rec.Code != http.StatusNotFound || !strings.Contains(e.Error, "nosuch") {
		t.Fatalf("legacy unknown tenant: %d %q", rec.Code, rec.Body.String())
	}
}

// TestServerV1ConditionalGet: ETag round trip — 200 with the tag, then
// 304 when the client presents it, then 200 again once the version moves.
func TestServerV1ConditionalGet(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, src, handler := testServer(t, ctx, Options{})
	src.Publish(serveSnap(1))

	rec := get(t, handler, "/v1/t/default/snapshot", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("v1 snapshot: %d %s", rec.Code, rec.Body.String())
	}
	etag := rec.Header().Get("ETag")
	if etag != `"v1"` {
		t.Fatalf("etag %q", etag)
	}
	if rec.Header().Get("X-Snapshot-Version") != "1" || rec.Header().Get("Cache-Control") != "no-cache" {
		t.Fatalf("v1 headers: %v", rec.Header())
	}
	rec = get(t, handler, "/v1/t/default/snapshot", map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("conditional get: %d, %dB body", rec.Code, rec.Body.Len())
	}
	src.Publish(serveSnap(2))
	waitVersion(t, handler, 2)
	rec = get(t, handler, "/v1/t/default/snapshot", map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusOK || rec.Header().Get("ETag") != `"v2"` {
		t.Fatalf("stale conditional get: %d etag %q", rec.Code, rec.Header().Get("ETag"))
	}
}

// waitVersion polls the handler until the served version reaches v (the
// hub observation loop is asynchronous to Publish).
func waitVersion(t *testing.T, handler http.Handler, v uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec := get(t, handler, "/v1/t/default/snapshot", nil)
		if rec.Code == http.StatusOK {
			var snap struct {
				Version uint64 `json:"version"`
			}
			if json.Unmarshal(rec.Body.Bytes(), &snap) == nil && snap.Version >= v {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("version %d never served", v)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerV1Delta: a client at version 1 asking for deltas gets the
// patch document, and applying it reproduces version 2 byte-exactly;
// ?since at the current version is a 304; without a usable chain the
// response falls back to the full snapshot.
func TestServerV1Delta(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, src, handler := testServer(t, ctx, Options{})
	s1, s2 := serveSnap(1), serveSnap(2)
	src.Publish(s1)
	waitVersion(t, handler, 1)
	src.Publish(s2)
	waitVersion(t, handler, 2)

	hdr := map[string]string{"Accept": DeltaMediaType + ", application/json"}
	rec := get(t, handler, "/v1/t/default/snapshot?since=1", hdr)
	if rec.Code != http.StatusOK {
		t.Fatalf("delta get: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != DeltaMediaType {
		t.Fatalf("delta content type %q", ct)
	}
	if rec.Header().Get("X-Delta-From") != "1" || rec.Header().Get("X-Snapshot-Version") != "2" {
		t.Fatalf("delta headers: %v", rec.Header())
	}
	var doc DeltaDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.From != 1 || doc.To != 2 || len(doc.Steps) != 1 {
		t.Fatalf("doc from=%d to=%d steps=%d", doc.From, doc.To, len(doc.Steps))
	}
	cur := s1
	for _, step := range doc.Steps {
		d, err := DecodeDelta(step)
		if err != nil {
			t.Fatal(err)
		}
		if cur, err = Apply(cur, d); err != nil {
			t.Fatal(err)
		}
	}
	gotB, _ := json.Marshal(cur)
	wantB, _ := json.Marshal(s2)
	if string(gotB) != string(wantB) {
		t.Fatal("applied delta differs from the served snapshot")
	}

	// Already current: 304.
	rec = get(t, handler, "/v1/t/default/snapshot?since=2", hdr)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("since=current: %d", rec.Code)
	}
	// Unknown base: full snapshot fallback.
	rec = get(t, handler, "/v1/t/default/snapshot?since=99", hdr)
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("broken-chain fallback: %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	// The If-None-Match ETag works as the delta base too.
	rec = get(t, handler, "/v1/t/default/snapshot", map[string]string{
		"Accept": DeltaMediaType, "If-None-Match": `"v1"`,
	})
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != DeltaMediaType {
		t.Fatalf("etag-based delta: %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
}

// TestServerV1Gzip: Accept-Encoding negotiates the shared gzip body on
// v1 full snapshots.
func TestServerV1Gzip(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, src, handler := testServer(t, ctx, Options{})
	snap := serveSnap(1)
	src.Publish(snap)
	rec := get(t, handler, "/v1/t/default/snapshot", map[string]string{"Accept-Encoding": "gzip"})
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip get: %d, encoding %q", rec.Code, rec.Header().Get("Content-Encoding"))
	}
	if rec.Header().Get("Vary") != "Accept-Encoding" {
		t.Fatal("gzip response without Vary")
	}
	zr, err := gzip.NewReader(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(snap)
	want = append(want, '\n')
	if string(body) != string(want) {
		t.Fatal("gzip body does not inflate to the JSON snapshot")
	}
}

// TestServerV1Errors: the uniform envelope and status codes across the
// v1 error surface.
func TestServerV1Errors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, handler := testServer(t, ctx, Options{LongPollTimeout: 50 * time.Millisecond})

	cases := []struct {
		path, method string
		status       int
		code         string
	}{
		{"/v1/t/nosuch/snapshot", "GET", http.StatusNotFound, "unknown_tenant"},
		{"/v1/t/default", "GET", http.StatusNotFound, "missing_endpoint"},
		{"/v1/t/default/teapot", "GET", http.StatusNotFound, "unknown_endpoint"},
		{"/v1/t/default/snapshot?min_version=nope", "GET", http.StatusBadRequest, "bad_request"},
		{"/v1/t/default/snapshot", "POST", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"/v1/tenants", "POST", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"/v1/t/default/snapshot", "GET", http.StatusServiceUnavailable, "no_snapshot"},
		{"/v1/t/default/snapshot?min_version=9", "GET", http.StatusGatewayTimeout, "timeout"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != tc.status {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, rec.Code, tc.status)
			continue
		}
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Errorf("%s: envelope does not parse: %v (%s)", tc.path, err, rec.Body.String())
			continue
		}
		if e.Error.Code != tc.code || e.Error.Message == "" {
			t.Errorf("%s: code %q message %q, want code %q", tc.path, e.Error.Code, e.Error.Message, tc.code)
		}
	}
}

// TestServerWaiterCap429: both surfaces shed load with 429 +
// Retry-After at the waiter cap.
func TestServerWaiterCap429(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, _, handler := testServer(t, ctx, Options{MaxWaiters: 1, LongPollTimeout: 5 * time.Second})

	park := make(chan int, 1)
	go func() {
		rec := get(t, handler, "/v1/t/default/snapshot?min_version=9", nil)
		park <- rec.Code
	}()
	h, _ := s.Hub("default")
	deadline := time.Now().Add(2 * time.Second)
	for h.Stats().Waiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first long-poll never parked")
		}
		time.Sleep(time.Millisecond)
	}
	rec := get(t, handler, "/v1/t/default/snapshot?min_version=9", nil)
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("v1 over-cap: %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if json.Unmarshal(rec.Body.Bytes(), &e) != nil || e.Error.Code != "too_many_waiters" {
		t.Fatalf("v1 over-cap envelope: %s", rec.Body.String())
	}
	rec = get(t, handler, "/snapshot?min_version=9", nil)
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("legacy over-cap: %d", rec.Code)
	}
	// SSE subscription is refused at the cap too.
	rec = get(t, handler, "/v1/t/default/events", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("events over-cap: %d", rec.Code)
	}
	cancel() // release the parked poll (shutdown path)
	if code := <-park; code != http.StatusServiceUnavailable {
		t.Fatalf("parked poll released with %d, want 503", code)
	}
}

// TestServerV1Events: the SSE stream announces the current version on
// connect and every publication (with its delta) after; a live network
// server exercises real flushing.
func TestServerV1Events(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, src, handler := testServer(t, ctx, Options{})
	src.Publish(serveSnap(1))
	waitVersion(t, handler, 1)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/t/default/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("events: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	expect := func(what string, pred func(string) bool) string {
		t.Helper()
		timeout := time.After(5 * time.Second)
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("stream ended waiting for %s", what)
				}
				if pred(line) {
					return line
				}
			case <-timeout:
				t.Fatalf("no %s within 5s", what)
			}
		}
	}
	expect("initial announcement", func(l string) bool { return l == "event: version" })
	expect("initial data", func(l string) bool {
		return strings.HasPrefix(l, "data: ") && strings.Contains(l, `"version":1`)
	})
	src.Publish(serveSnap(2))
	expect("v2 announcement data", func(l string) bool {
		return strings.HasPrefix(l, "data: ") && strings.Contains(l, `"version":2`) && strings.Contains(l, `"delta_from":1`)
	})
	expect("v2 delta event", func(l string) bool { return l == "event: delta" })
}

// TestRoutesAllServed: every pattern in the route table resolves to a
// real handler (no drift between Routes() and the mux).
func TestRoutesAllServed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, src, handler := testServer(t, ctx, Options{})
	src.Publish(serveSnap(1))
	waitVersion(t, handler, 1)
	for _, rt := range Routes() {
		if rt.ClusterOnly {
			continue // mounted only with Options.Node; TestServerClusterEndpoints covers them
		}
		path := strings.ReplaceAll(rt.Pattern, "{name}", "default")
		reqCtx, reqCancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		req := httptest.NewRequest(rt.Method, path, nil).WithContext(reqCtx)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // events returns on reqCtx expiry
		reqCancel()
		if rec.Code == http.StatusNotFound {
			t.Errorf("route %s %s is in the table but served 404", rt.Method, rt.Pattern)
		}
	}
	// /v1/tenants carries the serving stats block.
	rec := get(t, handler, "/v1/tenants", nil)
	var tl struct {
		Tenants []struct {
			Name    string   `json:"name"`
			Serving HubStats `json:"serving"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil || len(tl.Tenants) != 1 {
		t.Fatalf("/v1/tenants: %v %s", err, rec.Body.String())
	}
	if tl.Tenants[0].Name != "default" || tl.Tenants[0].Serving.Version != 1 || tl.Tenants[0].Serving.MaxWaiters == 0 {
		t.Fatalf("serving stats: %+v", tl.Tenants[0])
	}
}
