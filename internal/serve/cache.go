package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/stream"
)

// Entry is one published snapshot, encoded exactly once and shared
// immutably by every client that reads that version: the full JSON
// body, the ETag, a lazily-computed gzip variant, and (when the
// publication drifted little enough from the previously observed one)
// the encoded delta from that predecessor. All fields except the gzip
// state are written before the entry is installed and never after.
type Entry struct {
	Version  uint64
	Interval int
	Time     time.Time
	// ETag is the strong validator v1 conditional gets use ("v<version>").
	ETag string
	// JSON is json.Marshal(snapshot) plus a trailing newline — the exact
	// bytes the pre-hub daemon's json.Encoder wrote, so legacy routes
	// serving cache entries stay byte-compatible.
	JSON []byte
	// DeltaFrom/Delta encode the patch from the previously observed
	// version; Delta is nil when this entry is a chain head (first
	// observation) or the delta blew past the size-ratio fallback.
	DeltaFrom uint64
	Delta     []byte

	gzOnce sync.Once
	gz     []byte
}

// NewEntry encodes one snapshot into an immutable cache entry. prev is
// the previously observed snapshot (nil for the first), the delta base.
func NewEntry(snap stream.Snapshot, prev *stream.Snapshot, deltaRatio float64) (*Entry, error) {
	body, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("serve: encode snapshot v%d: %w", snap.Version, err)
	}
	body = append(body, '\n')
	e := &Entry{
		Version:  snap.Version,
		Interval: snap.Interval,
		Time:     snap.Time,
		ETag:     ETag(snap.Version),
		JSON:     body,
	}
	if prev != nil {
		if data := EncodeDelta(*prev, snap, len(body), deltaRatio); data != nil {
			e.DeltaFrom = prev.Version
			e.Delta = data
		}
	}
	return e, nil
}

// ETag formats a version as the strong validator the v1 API serves and
// parses ("v<version>", quoted on the wire).
func ETag(version uint64) string { return fmt.Sprintf(`"v%d"`, version) }

// Gzip returns the gzip encoding of the full JSON body, computed once
// per entry on first use and shared by every gzip-accepting client.
func (e *Entry) Gzip() []byte {
	e.gzOnce.Do(func() {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(e.JSON); err == nil && zw.Close() == nil {
			e.gz = buf.Bytes()
		} else {
			zw.Close()
		}
	})
	return e.gz
}

// Cache keeps the last K encoded snapshot versions, newest first. One
// writer (the hub loop) installs entries; any number of readers fetch
// them. Entries are immutable once installed.
type Cache struct {
	mu      sync.RWMutex
	cap     int
	entries map[uint64]*Entry
	order   []uint64 // insertion order, oldest first
	latest  *Entry
}

// DefaultCacheVersions is how many versions a cache retains when the
// host does not say otherwise: enough to delta-serve clients a few
// publications behind, small enough to be per-tenant negligible.
const DefaultCacheVersions = 16

// NewCache creates a cache holding up to capacity versions (<= 0
// selects DefaultCacheVersions).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheVersions
	}
	return &Cache{cap: capacity, entries: make(map[uint64]*Entry, capacity)}
}

// Add installs an entry as the newest version, evicting the oldest past
// capacity. Versions must be installed in increasing order (the hub's
// single observation loop guarantees it).
func (c *Cache) Add(e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[e.Version]; dup {
		return
	}
	c.entries[e.Version] = e
	c.order = append(c.order, e.Version)
	c.latest = e
	for len(c.order) > c.cap {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// Latest returns the newest installed entry, nil before the first.
func (c *Cache) Latest() *Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.latest
}

// Get fetches one version.
func (c *Cache) Get(version uint64) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[version]
	return e, ok
}

// Len reports how many versions are cached.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// DeltaChain collects the encoded deltas leading from version `from` to
// the latest entry, oldest first. It returns nil (meaning "serve the
// full snapshot instead") when the chain is broken: `from` is not the
// chain predecessor of some cached entry, any link lacks a delta, or
// the summed delta sizes exceed maxBytes. A `from` equal to the latest
// version returns an empty non-nil chain (nothing to send).
func (c *Cache) DeltaChain(from uint64, maxBytes int) [][]byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.latest == nil {
		return nil
	}
	if from == c.latest.Version {
		return [][]byte{}
	}
	var chain [][]byte
	total := 0
	// Walk back from the latest entry through DeltaFrom links until
	// reaching `from`; reverse at the end.
	for at := c.latest; ; {
		if at.Delta == nil {
			return nil // chain head or ratio fallback: no path to `from`
		}
		total += len(at.Delta)
		if maxBytes > 0 && total > maxBytes {
			return nil
		}
		chain = append(chain, at.Delta)
		if at.DeltaFrom == from {
			break
		}
		prev, ok := c.entries[at.DeltaFrom]
		if !ok {
			return nil // predecessor evicted
		}
		at = prev
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}
