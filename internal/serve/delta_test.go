package serve

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/linalg"
	"repro/internal/scenario"
	"repro/internal/stream"
)

// demandSnapshot builds a snapshot whose vectors come from a scenario's
// demand series — realistic slow-drift data for the round-trip property.
func demandSnapshot(version uint64, d linalg.Vector, resolve linalg.Vector) stream.Snapshot {
	fan := d.Clone()
	fan.Scale(0.5)
	return stream.Snapshot{
		Version:  version,
		Interval: int(version) - 1,
		Window:   6,
		Covered:  len(d),
		Skipped:  int(version) % 2,
		Drift:    0.01 * float64(version),
		Gravity:  d.Clone(),
		Mean:     d.Clone(),
		Fanouts:  fan,

		GravityMRE:        0.2 / float64(version),
		Resolve:           resolve,
		ResolveMethod:     stream.MethodEntropy,
		ResolveMRE:        0.1,
		ResolveInterval:   int(version) - 2,
		ResolveDuration:   1234567 * time.Duration(version),
		ResolveIterations: 42,
		ResolveWarm:       version > 1,
		Time:              time.Date(2026, 8, 8, 12, 0, int(version), 987654321, time.UTC),
	}
}

// TestDeltaRoundTripScenarioFamilies is the wire-format property test:
// for consecutive snapshots built from real scenario demand series —
// including topology churn (failure:*) and 100-PoP scale — the delta
// must survive a JSON round trip and apply back to the target snapshot
// byte-exactly under json.Marshal.
func TestDeltaRoundTripScenarioFamilies(t *testing.T) {
	specs := []string{"scaled:16", "noisy:europe:0.05", "failure:europe:worst", "ecmp:europe"}
	if !testing.Short() {
		specs = append(specs, "scaled:100", "failure:america:worst")
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			in, err := scenario.Build(spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			demands := in.Sc.Series.Demands
			steps := 8
			if len(demands) < steps+1 {
				steps = len(demands) - 1
			}
			// Resolve toggles through nil→set→set→nil to cover every
			// transition the apply rule documents.
			resolveFor := func(k int, d linalg.Vector) linalg.Vector {
				if k%4 == 0 {
					return nil
				}
				return d.Clone()
			}
			prev := demandSnapshot(1, demands[0], resolveFor(0, demands[0]))
			for k := 1; k <= steps; k++ {
				next := demandSnapshot(uint64(k+1), demands[k], resolveFor(k, demands[k]))
				wire, err := json.Marshal(ComputeDelta(prev, next))
				if err != nil {
					t.Fatal(err)
				}
				d, err := DecodeDelta(wire)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Apply(prev, d)
				if err != nil {
					t.Fatalf("step %d: %v", k, err)
				}
				wantB, err := json.Marshal(next)
				if err != nil {
					t.Fatal(err)
				}
				gotB, err := json.Marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotB, wantB) {
					t.Fatalf("step %d: applied snapshot differs from the original\n got: %.200s\nwant: %.200s", k, gotB, wantB)
				}
				prev = next
			}
		})
	}
}

// TestDeltaDimensionChange covers a topology swap mid-stream: the
// vectors resize and the patch must rebuild them, still byte-exactly.
func TestDeltaDimensionChange(t *testing.T) {
	small := linalg.NewVector(4)
	for i := range small {
		small[i] = float64(i + 1)
	}
	big := linalg.NewVector(7)
	for i := range big {
		big[i] = float64(10 * (i + 1))
	}
	prev := demandSnapshot(3, small, small.Clone())
	next := demandSnapshot(4, big, nil) // also the resolve non-nil→nil leg
	d := ComputeDelta(prev, next)
	if !d.ResolveNil {
		t.Fatal("resolve removal not recorded")
	}
	got, err := Apply(prev, d)
	if err != nil {
		t.Fatal(err)
	}
	gotB, _ := json.Marshal(got)
	wantB, _ := json.Marshal(next)
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("resized apply differs:\n got %s\nwant %s", gotB, wantB)
	}
}

// TestApplyRejects pins the guardrails: wrong format, wrong base
// version, and corrupt patches must all fail loudly.
func TestApplyRejects(t *testing.T) {
	v := linalg.NewVector(3)
	prev := demandSnapshot(1, v, nil)
	next := demandSnapshot(2, v, nil)
	d := ComputeDelta(prev, next)

	bad := *d
	bad.Format = 99
	if _, err := Apply(prev, &bad); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := Apply(next, d); err == nil {
		t.Error("wrong base version accepted")
	}
	corrupt := *d
	corrupt.Gravity = &VecPatch{Len: 2, I: []int{5}, V: []float64{1}}
	if _, err := Apply(prev, &corrupt); err == nil {
		t.Error("out-of-range patch index accepted")
	}
	corrupt.Gravity = &VecPatch{Len: 2, I: []int{0, 1}, V: []float64{1}}
	if _, err := Apply(prev, &corrupt); err == nil {
		t.Error("index/value length mismatch accepted")
	}
}

// TestEncodeDeltaRatioFallback: a barely-changed snapshot encodes as a
// small delta, while one where every coordinate moved (a re-solve
// landing, a topology swap) must fall back to nil so callers serve the
// full body instead.
func TestEncodeDeltaRatioFallback(t *testing.T) {
	n := 200
	base := linalg.NewVector(n)
	for i := range base {
		base[i] = float64(i) + 0.25
	}
	prev := demandSnapshot(1, base, nil)

	drift := base.Clone()
	drift[17] += 1
	small := demandSnapshot(2, drift, nil)
	full, err := json.Marshal(small)
	if err != nil {
		t.Fatal(err)
	}
	data := EncodeDelta(prev, small, len(full), DefaultDeltaRatio)
	if data == nil {
		t.Fatal("one-coordinate drift did not produce a delta")
	}
	if len(data) > len(full)/2 {
		t.Fatalf("delta is %dB against a %dB snapshot — no win", len(data), len(full))
	}

	moved := base.Clone()
	for i := range moved {
		moved[i] *= 1.7
	}
	big := demandSnapshot(2, moved, nil)
	fullBig, _ := json.Marshal(big)
	if EncodeDelta(prev, big, len(fullBig), DefaultDeltaRatio) != nil {
		t.Fatal("every-coordinate change still emitted a delta; want full-snapshot fallback")
	}
}

// TestVecPatchNilAndIdentity: identical vectors diff to nil, and a nil
// patch applies as a clone that shares no backing array with the base.
func TestVecPatchNilAndIdentity(t *testing.T) {
	v := linalg.NewVector(5)
	for i := range v {
		v[i] = float64(i)
	}
	if diffVec(v, v.Clone()) != nil {
		t.Fatal("identical vectors produced a patch")
	}
	out, err := applyVec(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	out[0] = 99
	if v[0] == 99 {
		t.Fatal("nil-patch apply shares memory with the base")
	}
	if got, err := applyVec(nil, nil); err != nil || got != nil {
		t.Fatalf("nil base + nil patch gave (%v, %v), want (nil, nil)", got, err)
	}
}
