package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/stream"
)

// TestMetricsPromEndpoint: the node-mode /metrics/prom scrape carries
// the serving families for every hosted tenant, renders valid
// exposition (the promtool-style linter accepts it), and advertises the
// Prometheus content type.
func TestMetricsPromEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, src, handler := testServer(t, ctx, Options{})
	src.Publish(serveSnap(1))
	waitVersion(t, handler, 1)

	rec := get(t, handler, "/metrics/prom", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics/prom: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q, want %q", ct, obs.ContentType)
	}
	body := rec.Body.String()
	if err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("scrape fails exposition lint: %v", err)
	}
	for _, want := range []string{
		`tm_serving_waiters{tenant="default"}`,
		`tm_serving_subscribers{tenant="default"}`,
		`tm_serving_cached_versions{tenant="default"}`,
		`tm_served_waits_total{tenant="default"}`,
		`tm_snapshot_broadcasts_total{tenant="default"}`,
		`tm_dropped_subscribers_total{tenant="default"}`,
		`tm_shed_waiters_total{tenant="default"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape is missing %s:\n%s", want, body)
		}
	}
	// A shared registry means one scrape carries fleet families too;
	// the private fallback must still serve, and non-GET is refused.
	if rec := get(t, handler, "/metrics/prom?x=1", nil); rec.Code != http.StatusOK {
		t.Errorf("query string rejected: %d", rec.Code)
	}
	req := httptest.NewRequest("POST", "/metrics/prom", nil)
	post := httptest.NewRecorder()
	handler.ServeHTTP(post, req)
	if post.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics/prom: %d, want 405", post.Code)
	}
}

// TestTenantMetricsHeaders: the three JSON metrics routes carry the
// same X-Snapshot-Version serving header the snapshot routes do (and
// the v1 route its ETag), so a dashboard can correlate an error-history
// read with the snapshot it belongs to.
func TestTenantMetricsHeaders(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, _, handler := testServer(t, ctx, Options{})

	// The fleet's engine has consumed nothing: no version header yet.
	rec := get(t, handler, "/metrics", nil)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Snapshot-Version") != "" {
		t.Fatalf("pre-snapshot /metrics: %d version=%q", rec.Code, rec.Header().Get("X-Snapshot-Version"))
	}

	// Swap in a backend whose handle reports a position, mirroring a
	// tenant with published state.
	st := &stubBackend{handle: stubHandle{name: "default", version: 7}}
	s.f = st
	for _, route := range []struct {
		path string
		v1   bool
	}{
		{"/metrics", false},
		{"/t/default/metrics", false},
		{"/v1/t/default/metrics", true},
	} {
		rec := get(t, handler, route.path, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d", route.path, rec.Code)
		}
		if route.path == "/metrics" {
			// The single-tenant alias captured the original handle at
			// mux-build time; it has no position. The tenant-scoped
			// routes read through the backend.
			continue
		}
		if got := rec.Header().Get("X-Snapshot-Version"); got != "7" {
			t.Errorf("%s: X-Snapshot-Version %q, want 7", route.path, got)
		}
		if etag := rec.Header().Get("ETag"); route.v1 && etag != ETag(7) {
			t.Errorf("%s: ETag %q, want %q", route.path, etag, ETag(7))
		} else if !route.v1 && etag != "" {
			t.Errorf("%s: legacy route grew an ETag %q", route.path, etag)
		}
		if cc := rec.Header().Get("Cache-Control"); cc != "no-cache" {
			t.Errorf("%s: Cache-Control %q", route.path, cc)
		}
	}
}

// stubBackend/stubHandle fake just enough of the fleet for header
// tests: one named tenant at a fixed version.
type stubBackend struct{ handle stubHandle }

func (b *stubBackend) Handles() []fleet.Handle { return []fleet.Handle{b.handle} }
func (b *stubBackend) Handle(name string) (fleet.Handle, bool) {
	if name == b.handle.name {
		return b.handle, true
	}
	return nil, false
}
func (b *stubBackend) Statuses() []fleet.Status { return []fleet.Status{{Name: b.handle.name}} }
func (b *stubBackend) Healthy() bool            { return true }

type stubHandle struct {
	name    string
	version uint64
}

func (h stubHandle) Name() string           { return h.name }
func (h stubHandle) Spec() fleet.TenantSpec { return fleet.TenantSpec{Name: h.name} }
func (h stubHandle) Status() fleet.Status   { return fleet.Status{Name: h.name} }
func (h stubHandle) Metrics() []stream.MetricPoint {
	return []stream.MetricPoint{{Version: h.version}}
}
func (h stubHandle) Position() (uint64, int, bool) { return h.version, 0, h.version != 0 }
func (h stubHandle) Latest() (stream.Snapshot, bool) {
	return stream.Snapshot{Version: h.version}, h.version != 0
}
func (h stubHandle) WaitVersion(ctx context.Context, min uint64) (stream.Snapshot, error) {
	return stream.Snapshot{Version: h.version}, nil
}
func (h stubHandle) Checkpoint() (stream.Checkpoint, error) { return stream.Checkpoint{}, nil }
func (h stubHandle) Restore(cp stream.Checkpoint) error     { return nil }

// TestHubShedWaiters: refusals at the waiter cap are counted — the
// signal behind tm_shed_waiters_total.
func TestHubShedWaiters(t *testing.T) {
	h := NewHub(newFakeSource(), HubConfig{MaxWaiters: 1})
	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	if _, err := h.Subscribe(); err != ErrTooManyWaiters {
		t.Fatalf("second subscribe: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.WaitMin(ctx, 99); err != ErrTooManyWaiters {
		t.Fatalf("capped WaitMin: %v", err)
	}
	if got := h.Stats().ShedWaiters; got != 2 {
		t.Fatalf("ShedWaiters = %d, want 2", got)
	}
}

// TestHealthzDegraded: a tenant past an SLO threshold surfaces on
// /healthz as degraded=true plus a named cause — with the HTTP status
// still 200, because cluster liveness probes gate on it.
func TestHealthzDegraded(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := &degradedBackend{}
	handler := New(ctx, b, Options{}).Handler()

	rec := get(t, handler, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded healthz status %d, want 200", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"degraded":true`) ||
		!strings.Contains(body, `"eu: drift 0.5 above SLO max 0.2"`) {
		t.Fatalf("degraded healthz body: %s", body)
	}

	b.healed = true
	if body := get(t, handler, "/healthz", nil).Body.String(); strings.Contains(body, "degraded") {
		t.Fatalf("healed healthz still degraded: %s", body)
	}
}

type degradedBackend struct{ healed bool }

func (b *degradedBackend) Handles() []fleet.Handle            { return nil }
func (b *degradedBackend) Handle(string) (fleet.Handle, bool) { return nil, false }
func (b *degradedBackend) Healthy() bool                      { return true }
func (b *degradedBackend) Statuses() []fleet.Status {
	if b.healed {
		return []fleet.Status{{Name: "eu"}}
	}
	return []fleet.Status{{Name: "eu", Degraded: true, DegradedCause: "drift 0.5 above SLO max 0.2"}}
}

// TestCoordinatorMetricsProm: the coordinator's own /metrics/prom
// scrape reports per-node health and routing counters, and the output
// passes the exposition linter.
func TestCoordinatorMetricsProm(t *testing.T) {
	ctx := context.Background()
	adopts1, adopts2 := 0, 0
	n1 := stubNode(t, "n1", &adopts1)
	n2 := stubNode(t, "n2", &adopts2)
	c := cluster.NewCoordinator(stubConfig(t, "", n1, n2), nil, t.Logf)
	c.Registry().Sweep(ctx)
	handler := NewCoordinator(c, nil).Handler()

	// One proxied read so the routing counter has something to show.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/t/eu/snapshot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("proxied read: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/prom", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics/prom: %d", rec.Code)
	}
	body := rec.Body.String()
	if err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("coordinator scrape fails exposition lint: %v", err)
	}
	for _, want := range []string{
		`tm_node_healthy{node="n1"} 1`,
		`tm_node_healthy{node="n2"} 1`,
		`tm_node_proxied_total{node="n1"} 1`,
		`tm_node_redirected_total{node="n1"} 0`,
		`tm_node_probe_failures_total{node="n1"} 0`,
		`tm_node_tenants{node="n1"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("coordinator scrape is missing %q:\n%s", want, body)
		}
	}
}
