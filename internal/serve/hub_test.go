package serve

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/linalg"
	"repro/internal/stream"
)

// fakeSource is a hand-driven Source: tests publish snapshots and any
// number of WaitVersion calls observe them, like a stream.Engine.
type fakeSource struct {
	mu     sync.Mutex
	latest stream.Snapshot
	have   bool
	wake   chan struct{}
}

func newFakeSource() *fakeSource { return &fakeSource{wake: make(chan struct{})} }

func (f *fakeSource) Publish(s stream.Snapshot) {
	f.mu.Lock()
	f.latest = s
	f.have = true
	close(f.wake)
	f.wake = make(chan struct{})
	f.mu.Unlock()
}

func (f *fakeSource) Latest() (stream.Snapshot, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.latest, f.have
}

func (f *fakeSource) WaitVersion(ctx context.Context, min uint64) (stream.Snapshot, error) {
	for {
		f.mu.Lock()
		if f.have && f.latest.Version >= min {
			s := f.latest
			f.mu.Unlock()
			return s, nil
		}
		wake := f.wake
		f.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return stream.Snapshot{}, ctx.Err()
		}
	}
}

func hubSnap(version uint64) stream.Snapshot {
	v := linalg.NewVector(4)
	for i := range v {
		v[i] = float64(version)*10 + float64(i)
	}
	return stream.Snapshot{
		Version: version, Interval: int(version), Window: 3,
		Gravity: v, Mean: v.Clone(), Fanouts: v.Clone(),
		Time: time.Unix(1700000000+int64(version), 0).UTC(),
	}
}

// TestHubFanout: many concurrent waiters, one publication — every
// waiter receives the same shared encoded entry, whose bytes are the
// snapshot's one-time encoding.
func TestHubFanout(t *testing.T) {
	src := newFakeSource()
	h := NewHub(src, HubConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go h.Run(ctx)

	const waiters = 64
	got := make(chan *Entry, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := h.WaitMin(ctx, 1)
			if err != nil {
				t.Errorf("WaitMin: %v", err)
				return
			}
			got <- e
		}()
	}
	time.Sleep(20 * time.Millisecond) // park the waiters
	snap := hubSnap(1)
	src.Publish(snap)
	wg.Wait()
	close(got)

	want, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	var first *Entry
	n := 0
	for e := range got {
		n++
		if first == nil {
			first = e
		}
		if e != first {
			t.Fatal("waiters received different entry pointers; encoding was not shared")
		}
	}
	if n != waiters {
		t.Fatalf("%d of %d waiters served", n, waiters)
	}
	if string(first.JSON) != string(want) {
		t.Fatalf("entry bytes differ from json.Marshal(snapshot)+\\n")
	}
	if first.ETag != `"v1"` {
		t.Fatalf("etag %q, want %q", first.ETag, `"v1"`)
	}
	if st := h.Stats(); st.Version != 1 || st.ServedWaits < waiters {
		t.Fatalf("stats after fanout: %+v", st)
	}
}

// TestHubWaiterCap: with MaxWaiters=2, a third concurrent waiter is
// refused with ErrTooManyWaiters, and the parked two still complete.
func TestHubWaiterCap(t *testing.T) {
	src := newFakeSource()
	h := NewHub(src, HubConfig{MaxWaiters: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go h.Run(ctx)

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := h.WaitMin(ctx, 1)
			results <- err
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.Stats().Waiters < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never parked")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := h.WaitMin(ctx, 1); err != ErrTooManyWaiters {
		t.Fatalf("third waiter got %v, want ErrTooManyWaiters", err)
	}
	// Subscribe counts against the same cap.
	if _, err := h.Subscribe(); err != ErrTooManyWaiters {
		t.Fatalf("subscribe at cap got %v, want ErrTooManyWaiters", err)
	}
	src.Publish(hubSnap(1))
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("parked waiter failed: %v", err)
		}
	}
}

// TestHubLazyPrime: a hub whose Run loop never observed anything (the
// restored-from-checkpoint boot race) still serves the source's latest
// snapshot on the first read.
func TestHubLazyPrime(t *testing.T) {
	src := newFakeSource()
	src.Publish(hubSnap(7))
	h := NewHub(src, HubConfig{}) // Run intentionally not started
	e := h.Current()
	if e == nil || e.Version != 7 {
		t.Fatalf("Current() = %+v, want primed version 7", e)
	}
	if e2, err := h.WaitMin(context.Background(), 7); err != nil || e2 != e {
		t.Fatalf("WaitMin fast path gave (%v, %v), want the primed entry", e2, err)
	}
	// No snapshot at all: Current is nil, not a panic.
	empty := NewHub(newFakeSource(), HubConfig{})
	if empty.Current() != nil {
		t.Fatal("empty source primed an entry")
	}
}

// TestHubWaitMinCancel: a cancelled waiter leaves no registration
// behind, and the cancellation error is the context's.
func TestHubWaitMinCancel(t *testing.T) {
	h := NewHub(newFakeSource(), HubConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := h.WaitMin(ctx, 1)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for h.Stats().Waiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled WaitMin returned %v", err)
	}
	if st := h.Stats(); st.Waiters != 0 {
		t.Fatalf("%d waiters left registered after cancellation", st.Waiters)
	}
}

// TestHubSubscribeAndDrop: subscribers receive every publication in
// order; one that stops draining is dropped (channel closed) instead of
// stalling the broadcast.
func TestHubSubscribeAndDrop(t *testing.T) {
	h := NewHub(newFakeSource(), HubConfig{SubscriberBuffer: 2})
	live, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	stuck, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 4; v++ {
		h.observe(hubSnap(v))
		if e, ok := <-live.C; !ok || e.Version != v {
			t.Fatalf("live subscriber got (%v, %v) at version %d", e, ok, v)
		}
	}
	// stuck never drained its buffer of 2: version 3's broadcast must
	// have dropped it.
	var versions []uint64
	for e := range stuck.C { // closed by the hub
		versions = append(versions, e.Version)
	}
	if len(versions) != 2 || versions[0] != 1 || versions[1] != 2 {
		t.Fatalf("dropped subscriber drained %v, want [1 2]", versions)
	}
	if st := h.Stats(); st.DroppedSubscribers != 1 || st.Subscribers != 1 {
		t.Fatalf("stats after drop: %+v", st)
	}
	live.Cancel()
	if st := h.Stats(); st.Subscribers != 0 {
		t.Fatalf("cancel left %d subscribers", st.Subscribers)
	}
	stuck.Cancel() // idempotent after the hub-side drop
}

// TestHubDeltaChain: consecutive small drifts produce a cache whose
// delta chain from an old version applies back to the latest snapshot
// byte-exactly.
func TestHubDeltaChain(t *testing.T) {
	h := NewHub(newFakeSource(), HubConfig{})
	// Vectors large enough that a one-coordinate drift beats the size
	// ratio (a 4-element snapshot's delta never would — the scalar block
	// dominates, and the ratio fallback correctly serves full bodies).
	base := linalg.NewVector(200)
	for i := range base {
		base[i] = float64(i) + 0.5
	}
	snaps := map[uint64]stream.Snapshot{}
	for v := uint64(1); v <= 5; v++ {
		s := hubSnap(1)
		s.Version = v
		s.Interval = int(v)
		s.Gravity = base.Clone()
		s.Gravity[0] += float64(v)
		s.Mean = base.Clone()
		s.Fanouts = base.Clone()
		snaps[v] = s
		h.observe(s)
	}
	chain := h.Cache().DeltaChain(2, 1<<20)
	if len(chain) != 3 {
		t.Fatalf("chain from v2 has %d steps, want 3", len(chain))
	}
	cur := snaps[2]
	for _, raw := range chain {
		d, err := DecodeDelta(raw)
		if err != nil {
			t.Fatal(err)
		}
		if cur, err = Apply(cur, d); err != nil {
			t.Fatal(err)
		}
	}
	gotB, _ := json.Marshal(cur)
	wantB, _ := json.Marshal(snaps[5])
	if string(gotB) != string(wantB) {
		t.Fatal("delta chain did not reproduce the latest snapshot")
	}
	// Chain to the latest version itself is empty but present.
	if c := h.Cache().DeltaChain(5, 1<<20); c == nil || len(c) != 0 {
		t.Fatalf("chain from the latest version = %v, want empty non-nil", c)
	}
	// A byte budget below the chain size reports nil (serve full).
	if c := h.Cache().DeltaChain(2, 1); c != nil {
		t.Fatal("over-budget chain did not fall back to full")
	}
	// An evicted-from base breaks the chain.
	if c := h.Cache().DeltaChain(0, 1<<20); c != nil {
		t.Fatal("chain from an unknown version did not fall back to full")
	}
}

// TestCacheEviction: the cache retains only its capacity, newest wins.
func TestCacheEviction(t *testing.T) {
	c := NewCache(3)
	for v := uint64(1); v <= 5; v++ {
		e, err := NewEntry(hubSnap(v), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		c.Add(e)
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d versions, want 3", c.Len())
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("evicted version still present")
	}
	if e, ok := c.Get(5); !ok || c.Latest() != e {
		t.Fatal("latest version missing or inconsistent")
	}
}

// TestEntryGzip: the gzip body is computed once and round-trips.
func TestEntryGzip(t *testing.T) {
	e, err := NewEntry(hubSnap(1), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	gz1 := e.Gzip()
	gz2 := e.Gzip()
	if len(gz1) == 0 {
		t.Fatal("empty gzip body")
	}
	if &gz1[0] != &gz2[0] {
		t.Fatal("gzip recomputed per call")
	}
}
