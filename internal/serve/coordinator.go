package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// proxyTargetKey carries the resolved owner through the request
// context into the reverse proxy's Director.
type proxyTargetKey struct{}

// Coordinator is the cluster's HTTP front door: /v1/tenants aggregates
// every member node, and tenant-scoped reads are proxied (or
// 307-redirected) to the owning node with the v1 error envelope and
// the ETag/delta/SSE semantics passing through unchanged — a client
// cannot tell a coordinator from a node except by the extra rows in
// the listing and the X-Tenant-Node header naming who actually
// answered.
type Coordinator struct {
	c       *cluster.Coordinator
	client  *http.Client
	proxy   *httputil.ReverseProxy
	metrics *obs.Registry
}

// NewCoordinator builds the front door over a cluster coordinator.
// client is used for the fan-out listing; nil selects
// http.DefaultClient.
func NewCoordinator(c *cluster.Coordinator, client *http.Client) *Coordinator {
	if client == nil {
		client = http.DefaultClient
	}
	co := &Coordinator{c: c, client: client, metrics: obs.NewRegistry()}
	RegisterCoordinatorMetrics(co.metrics, c.Report)
	co.proxy = &httputil.ReverseProxy{
		Director: func(r *http.Request) {
			addr := r.Context().Value(proxyTargetKey{}).(string)
			r.URL.Scheme = "http"
			r.URL.Host = addr
		},
		// Flush immediately: SSE streams must not sit in a proxy buffer.
		FlushInterval: -1,
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			writeV1Error(w, http.StatusBadGateway, "node_unreachable", err.Error())
		},
	}
	return co
}

// Handler builds the coordinator mux over CoordinatorRoutes.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", co.handleHealthz)
	mux.HandleFunc("/v1/tenants", co.handleTenants)
	mux.HandleFunc("/v1/t/", co.handleTenant)
	mux.HandleFunc("/v1/cluster/", co.handleCluster)
	mux.Handle("/metrics/prom", co.metrics.Handler())
	return mux
}

// RegisterCoordinatorMetrics declares the coordinator's per-node
// telemetry families on reg, collected from the cluster report each
// scrape: health, cumulative probe failures, and the proxy/redirect
// routing counters. Exported (with the report function as a seam) so
// the doc drift gate can enumerate the coordinator's families without
// standing up a cluster.
func RegisterCoordinatorMetrics(reg *obs.Registry, report func() []cluster.NodeReport) {
	node := []string{"node"}
	each := func(emit obs.Emit, field func(n cluster.NodeReport) float64) {
		for _, n := range report() {
			emit(field(n), n.Name)
		}
	}
	reg.GaugeFunc("tm_node_healthy", "1 while the member node passes health probes, else 0.", node,
		func(emit obs.Emit) {
			each(emit, func(n cluster.NodeReport) float64 { return boolSample(n.Healthy) })
		})
	reg.GaugeFunc("tm_node_tenants", "Tenants currently routed to the member node.", node,
		func(emit obs.Emit) {
			each(emit, func(n cluster.NodeReport) float64 { return float64(len(n.Tenants)) })
		})
	reg.CounterFunc("tm_node_probe_failures_total", "Failed health probes against the member node since coordinator boot.", node,
		func(emit obs.Emit) {
			each(emit, func(n cluster.NodeReport) float64 { return float64(n.ProbeFailures) })
		})
	reg.CounterFunc("tm_node_proxied_total", "Tenant-scoped requests proxied to the member node.", node,
		func(emit obs.Emit) {
			each(emit, func(n cluster.NodeReport) float64 { return float64(n.Proxied) })
		})
	reg.CounterFunc("tm_node_redirected_total", "Tenant-scoped requests 307-redirected to the member node.", node,
		func(emit obs.Emit) {
			each(emit, func(n cluster.NodeReport) float64 { return float64(n.Redirected) })
		})
}

func boolSample(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	nodes := co.c.Registry().Status()
	ok := true
	for _, n := range nodes {
		if !n.Healthy {
			ok = false
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok": ok, "coordinator": true, "nodes": nodes,
	})
}

// handleTenants fans /v1/tenants out to every healthy node in
// parallel and merges the rows, each annotated with the node it came
// from, plus the per-node health/routing report — the fleet-wide view
// one node alone cannot give.
func (co *Coordinator) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeV1Error(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	report := co.c.Report()
	var (
		mu   sync.Mutex
		rows []map[string]any
		wg   sync.WaitGroup
	)
	for _, n := range report {
		if !n.Healthy {
			continue
		}
		wg.Add(1)
		go func(name, addr string) {
			defer wg.Done()
			var listing struct {
				Tenants []map[string]any `json:"tenants"`
			}
			if err := co.getJSON(r.Context(), addr, "/v1/tenants", &listing); err != nil {
				return // the node report already shows its health
			}
			mu.Lock()
			defer mu.Unlock()
			for _, row := range listing.Tenants {
				row["node"] = name
				rows = append(rows, row)
			}
		}(n.Name, n.Addr)
	}
	wg.Wait()
	sort.Slice(rows, func(i, j int) bool {
		a, _ := rows[i]["name"].(string)
		b, _ := rows[j]["name"].(string)
		return a < b
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"coordinator": true,
		"nodes":       report,
		"tenants":     rows,
	})
}

func (co *Coordinator) getJSON(ctx context.Context, addr, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return err
	}
	resp, err := co.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s%s: %s", addr, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// handleTenant routes one tenant-scoped read to its owning node:
// proxy (default) or 307 redirect, per the cluster config.
func (co *Coordinator) handleTenant(w http.ResponseWriter, r *http.Request) {
	name, _, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/v1/t/"), "/")
	node, err := co.c.Route(name)
	if err != nil {
		switch {
		case errors.Is(err, fleet.ErrUnknownTenant):
			writeV1Error(w, http.StatusNotFound, "unknown_tenant",
				fmt.Sprintf("unknown tenant %q (see /v1/tenants)", name))
		case errors.Is(err, cluster.ErrNodeDown):
			// The owner is failing probes; failover is at most one probe
			// sweep away, so tell the client when to come back.
			w.Header().Set("Retry-After", "1")
			writeV1Error(w, http.StatusServiceUnavailable, "node_down", err.Error())
		default:
			writeV1Error(w, http.StatusInternalServerError, "routing_failed", err.Error())
		}
		return
	}
	w.Header().Set("X-Tenant-Node", node.Name)
	if co.c.Redirect() {
		co.c.CountRedirected(node.Name)
		loc := url.URL{Scheme: "http", Host: node.Addr, Path: r.URL.Path, RawQuery: r.URL.RawQuery}
		http.Redirect(w, r, loc.String(), http.StatusTemporaryRedirect)
		return
	}
	co.c.CountProxied(node.Name)
	ctx := context.WithValue(r.Context(), proxyTargetKey{}, node.Addr)
	co.proxy.ServeHTTP(w, r.WithContext(ctx))
}

// handleCluster is the coordinator's admin surface: POST
// /v1/cluster/migrate?tenant=X&to=node moves a tenant by checkpoint
// handoff.
func (co *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, "/v1/cluster/")
	if op != "migrate" {
		writeV1Error(w, http.StatusNotFound, "unknown_endpoint",
			fmt.Sprintf("unknown cluster endpoint %q (migrate)", op))
		return
	}
	if r.Method != http.MethodPost {
		writeV1Error(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	tenant, to := r.URL.Query().Get("tenant"), r.URL.Query().Get("to")
	if tenant == "" || to == "" {
		writeV1Error(w, http.StatusBadRequest, "bad_request", "migrate needs ?tenant=<name>&to=<node>")
		return
	}
	if err := co.c.Migrate(r.Context(), tenant, to); err != nil {
		code, errCode := http.StatusBadGateway, "migrate_failed"
		switch {
		case errors.Is(err, fleet.ErrUnknownTenant):
			code, errCode = http.StatusNotFound, "unknown_tenant"
		case errors.Is(err, fleet.ErrAlreadyHosted):
			code, errCode = http.StatusConflict, "already_hosted"
		case errors.Is(err, cluster.ErrNodeDown):
			code, errCode = http.StatusServiceUnavailable, "node_down"
		}
		writeV1Error(w, code, errCode, err.Error())
		return
	}
	owner, _ := co.c.Owner(tenant)
	writeJSON(w, http.StatusOK, map[string]any{"migrated": tenant, "node": owner})
}
